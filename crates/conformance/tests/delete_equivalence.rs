//! Delete equivalence: the repair path is indistinguishable from rebuild.
//!
//! The serving engine applies a deletion by repairing only the affected
//! component(s) — tombstone the point, decrement neighbour counts,
//! demote cores, replay union rules locally — falling back to an exact
//! compacting rebuild when the blast radius exceeds its budget
//! (`ServeOptions::repair_budget`). The contract (`docs/SERVING.md`) is
//! that the budget is **purely a performance knob**: every published
//! epoch must be bit-identical no matter which path produced it.
//!
//! This harness replays one trace through three engines side by side —
//! repair-always (adaptive budget), rebuild-always (`Some(0)`), and a
//! tiny budget (`Some(2)`) that mixes repairs with fallback rebuilds —
//! and asserts every epoch agrees across all three *and* with a
//! one-shot batch run over the live prefix, which is itself checked
//! exact against the naive oracle.

use geom::{Dataset, DbscanParams};
use mudbscan::prelude::{Family, Runner, ServeOp, ServeOptions, Snapshot};
use mudbscan::{check_exact, naive_dbscan};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

const DIM: usize = 2;

fn params() -> DbscanParams {
    DbscanParams::new(0.3, 3)
}

/// One raw trace operation; `Delete(raw)` resolves to
/// `raw % inserted_before_this_batch` like the linearizability harness,
/// so deletes always target ids assigned in earlier batches.
#[derive(Debug, Clone)]
enum RawOp {
    Insert { coords: Vec<f64>, ttl: Option<u64> },
    Delete { raw: u64 },
}

/// Sequential model of the live set, mirroring the engine's epoch rules
/// (expire, then delete, then insert) to derive the batch-prefix oracle.
#[derive(Default, Clone)]
struct Model {
    /// `(ext_id, coords, first_dead_epoch)` per live point, insertion order.
    live: Vec<(u64, Vec<f64>, u64)>,
    next_ext: u64,
    epoch: u64,
}

impl Model {
    fn apply(&mut self, raw: &[RawOp]) -> Vec<ServeOp> {
        self.epoch += 1;
        let epoch = self.epoch;
        self.live.retain(|(_, _, dead_at)| *dead_at > epoch);
        let inserted_before = self.next_ext;
        let mut ops = Vec::new();
        for op in raw {
            match op {
                RawOp::Delete { raw } => {
                    if inserted_before == 0 {
                        continue;
                    }
                    let target = raw % inserted_before;
                    ops.push(ServeOp::delete(target));
                    self.live.retain(|(ext, _, _)| *ext != target);
                }
                RawOp::Insert { coords, ttl } => {
                    let dead_at = ttl.map_or(u64::MAX, |d| epoch.saturating_add(d.max(1)));
                    ops.push(match ttl {
                        Some(d) => ServeOp::insert_ttl(coords.clone(), *d),
                        None => ServeOp::insert(coords.clone()),
                    });
                    self.live.push((self.next_ext, coords.clone(), dead_at));
                    self.next_ext += 1;
                }
            }
        }
        ops
    }

    fn dataset(&self) -> Dataset {
        let mut d = Dataset::empty(DIM);
        for (_, coords, _) in &self.live {
            d.push(coords);
        }
        d
    }

    fn ext_ids(&self) -> Vec<u64> {
        self.live.iter().map(|(e, _, _)| *e).collect()
    }
}

/// Two snapshots from differently-budgeted engines must be bit-identical.
fn assert_snapshots_identical(a: &Snapshot, b: &Snapshot, ctx: &str) {
    assert_eq!(a.epoch(), b.epoch(), "{ctx}: epoch diverged");
    assert_eq!(a.live_ids(), b.live_ids(), "{ctx}: live ids diverged");
    assert_eq!(a.dataset().len(), b.dataset().len(), "{ctx}: live count diverged");
    for (p, coords) in a.dataset().iter() {
        assert_eq!(b.dataset().point(p), coords, "{ctx}: point {p} coords diverged");
    }
    assert_eq!(*a.clustering(), *b.clustering(), "{ctx}: clustering diverged");
}

/// Replay one trace through the three budget configurations in lockstep
/// and validate every epoch against each other and the batch prefix.
fn run_equivalence(trace: &[Vec<RawOp>], ctx: &str) {
    let p = params();
    // (label, engine): repair-always, rebuild-always, mixed via tiny budget.
    let arms = [("repair", None), ("rebuild", Some(0usize)), ("tiny-budget", Some(2usize))];
    let handles: Vec<_> = arms
        .iter()
        .map(|(_, budget)| {
            Runner::new(p)
                .serve_options(ServeOptions { repair_budget: *budget, ..Default::default() })
                .serve(DIM)
                .expect("serving configuration")
        })
        .collect();

    let mut model = Model::default();
    for raw in trace {
        let ops = model.apply(raw);
        let snaps: Vec<Arc<Snapshot>> = handles
            .iter()
            .map(|h| {
                h.ingest(ops.clone()).expect("writer alive");
                h.drain().expect("writer alive").snapshot
            })
            .collect();
        let ctx = format!("{ctx}/epoch{}", model.epoch);

        // All three budget arms publish the same bits.
        for (i, snap) in snaps.iter().enumerate().skip(1) {
            assert_snapshots_identical(
                &snaps[0],
                snap,
                &format!("{ctx}/{} vs {}", arms[0].0, arms[i].0),
            );
        }

        // …and those bits are the one-shot batch run on the live prefix.
        let expected_data = model.dataset();
        assert_eq!(snaps[0].live_ids(), model.ext_ids().as_slice(), "{ctx}: live ids");
        let batch =
            Runner::new(p).family(Family::Streaming).run(&expected_data).expect("batch oracle");
        assert_eq!(
            *snaps[0].clustering(),
            batch.clustering,
            "{ctx}: repaired epoch is not bit-identical to the batch prefix run"
        );
        if !expected_data.is_empty() {
            let reference = naive_dbscan(&expected_data, &p);
            let report = check_exact(snaps[0].clustering(), &reference, &expected_data, &p);
            assert!(report.is_exact(), "{ctx}: epoch inexact vs naive oracle: {report:?}");
        }
    }
}

/// A seeded delete-heavy trace: one pure-insert warm-up batch, then
/// ~60% deletions — enough churn to demote cores, split clusters, trip
/// the tiny-budget fallback, and cross the tombstone-compaction
/// threshold in the repair arm.
fn delete_heavy_trace(seed: u64, batches: usize, per_batch: usize) -> Vec<Vec<RawOp>> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut inserted = 0u64;
    (0..batches)
        .map(|b| {
            (0..per_batch)
                .map(|_| {
                    if b > 0 && inserted > 0 && rng.gen_range(0..5) < 3 {
                        RawOp::Delete { raw: rng.gen_range(0..inserted * 2) }
                    } else {
                        let cx = rng.gen_range(0..3) as f64;
                        let coords =
                            vec![cx + rng.gen_range(-0.25..0.25), cx + rng.gen_range(-0.25..0.25)];
                        let ttl = (rng.gen_range(0..6) == 0).then(|| rng.gen_range(1..3u64));
                        inserted += 1;
                        RawOp::Insert { coords, ttl }
                    }
                })
                .collect()
        })
        .collect()
}

#[test]
fn seeded_delete_heavy_trace_is_budget_invariant() {
    let trace = delete_heavy_trace(4242, 6, 48);
    run_equivalence(&trace, "seeded");
}

/// Raw-op strategy biased towards deletions (2-in-5), on a coarse
/// lattice so ε-relations, shared borders, and duplicate coordinates
/// actually occur.
fn raw_op() -> impl Strategy<Value = RawOp> {
    (0u32..5, proptest::collection::vec(0u32..12, DIM), 0u64..5, 0u64..1_000).prop_map(
        |(kind, grid, ttl, raw)| {
            if kind < 2 {
                RawOp::Delete { raw }
            } else {
                RawOp::Insert {
                    coords: grid.into_iter().map(|g| g as f64 * 0.18).collect(),
                    ttl: (ttl >= 4).then(|| ttl - 3),
                }
            }
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Every epoch of a random delete-biased trace is bit-identical
    /// across repair-always, rebuild-always, and tiny-budget engines,
    /// and equals the one-shot batch run on its live prefix.
    #[test]
    fn random_traces_are_budget_invariant(
        trace in proptest::collection::vec(
            proptest::collection::vec(raw_op(), 0..12),
            3..6,
        )
    ) {
        run_equivalence(&trace, "prop");
    }
}
