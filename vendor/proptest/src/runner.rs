//! The test runner: deterministic case generation, failure reporting.

use crate::strategy::Strategy;
use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};
use std::panic::{catch_unwind, AssertUnwindSafe};

/// RNG handed to strategies. Deterministic per (test, case, seed).
pub struct TestRng(StdRng);

impl TestRng {
    pub fn from_seed(seed: u64) -> Self {
        TestRng(StdRng::seed_from_u64(seed))
    }
}

impl RngCore for TestRng {
    fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }
}

/// How a single test case can fail.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// Assertion failure — the property does not hold for this input.
    Fail(String),
    /// Input rejected by `prop_assume!` — does not count as a failure.
    Reject(String),
}

impl TestCaseError {
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }

    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError::Reject(msg.into())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TestCaseError::Fail(m) => write!(f, "{m}"),
            TestCaseError::Reject(m) => write!(f, "rejected: {m}"),
        }
    }
}

/// Runner configuration (`ProptestConfig` in the prelude).
#[derive(Clone, Debug)]
pub struct Config {
    pub cases: u32,
    /// Maximum `prop_assume!` rejections tolerated before erroring out.
    pub max_global_rejects: u32,
}

impl Config {
    pub fn with_cases(cases: u32) -> Self {
        Config { cases, ..Config::default() }
    }
}

impl Default for Config {
    fn default() -> Self {
        Config { cases: 256, max_global_rejects: 65_536 }
    }
}

/// FNV-1a over the fully qualified test name: stable across runs and
/// platforms, so every CI run replays the same cases unless PROPTEST_SEED
/// changes it.
fn name_seed(name: &str) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

fn env_u64(var: &str) -> Option<u64> {
    std::env::var(var).ok().and_then(|v| v.trim().parse().ok())
}

/// Executes `cases` random cases of `test` over inputs drawn from
/// `strategy`. Panics (failing the surrounding `#[test]`) on the first
/// failing case, printing the input and the seed needed to replay it.
pub fn run_property<S, F>(config: &Config, name: &str, strategy: &S, test: F)
where
    S: Strategy,
    F: Fn(S::Value) -> Result<(), TestCaseError>,
{
    let cases = env_u64("PROPTEST_CASES").map(|c| c as u32).unwrap_or(config.cases).max(1);
    let base_seed = env_u64("PROPTEST_SEED").unwrap_or_else(|| name_seed(name));

    let mut rejects = 0u32;
    let mut case = 0u32;
    let mut attempts = 0u64;
    while case < cases {
        // Mix the case counter in non-trivially so neighbouring cases do
        // not share RNG prefixes.
        let seed = base_seed ^ (attempts.wrapping_mul(0x9E3779B97F4A7C15));
        attempts += 1;
        let mut rng = TestRng::from_seed(seed);
        let value = strategy.generate(&mut rng);

        let outcome = catch_unwind(AssertUnwindSafe(|| test(value.clone())));
        match outcome {
            Ok(Ok(())) => case += 1,
            Ok(Err(TestCaseError::Reject(_))) => {
                rejects += 1;
                if rejects > config.max_global_rejects {
                    panic!("{name}: too many prop_assume! rejections ({rejects})");
                }
            }
            Ok(Err(TestCaseError::Fail(msg))) => {
                panic!(
                    "{name}: property failed at case {case} (replay with \
                     PROPTEST_SEED={base_seed}): {msg}\ninput: {value:?}"
                );
            }
            Err(panic_payload) => {
                let msg = panic_message(&panic_payload);
                panic!(
                    "{name}: test panicked at case {case} (replay with \
                     PROPTEST_SEED={base_seed}): {msg}\ninput: {value:?}"
                );
            }
        }
    }
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prelude::*;

    #[test]
    fn deterministic_generation() {
        let strat = (crate::collection::vec(0.0..1.0f64, 3..10), 0usize..5);
        let mut a = TestRng::from_seed(1234);
        let mut b = TestRng::from_seed(1234);
        assert_eq!(strat.generate(&mut a), strat.generate(&mut b));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn macro_roundtrip(xs in crate::collection::vec(-5.0..5.0f64, 0..8), k in 1usize..4) {
            prop_assert!(xs.len() < 8);
            prop_assert!((1..4).contains(&k));
            for x in &xs {
                prop_assert!((-5.0..5.0).contains(x), "x={x}");
            }
        }

        #[test]
        fn flat_map_and_map_compose(v in (1usize..5).prop_flat_map(|n| crate::collection::vec(0..10i32, n..=n)).prop_map(|v| v.len())) {
            prop_assert!((1..5).contains(&v));
        }
    }

    #[test]
    #[should_panic(expected = "property failed")]
    fn failures_report_input_and_seed() {
        run_property(
            &Config::with_cases(50),
            "runner::tests::failures_report_input_and_seed",
            &(500usize..1000),
            |n| {
                prop_assert!(n < 500, "n={n}");
                Ok(())
            },
        );
    }
}
