#!/usr/bin/env python3
"""Assemble EXPERIMENTS.md from the repro harness outputs in results/.

Usage: python3 tools/make_experiments.py > EXPERIMENTS.md
Each section embeds the corresponding harness output verbatim (the
harness already prints measured vs paper tables and its shape checks),
preceded by curated commentary on what reproduced and what deviated.
"""

import datetime
import pathlib
import sys

ROOT = pathlib.Path(__file__).resolve().parent.parent
RESULTS = ROOT / "results"

SECTIONS = [
    (
        "Table I — complexity validation",
        "repro_complexity",
        """Claim: average time O(n log m + n log r). The harness doubles n three
times and reports the runtime normalised by n·(log m + log r). **Outcome:
reproduced** — the normalised cost stays within a small constant factor
while t/n drifts upward (an O(n²) algorithm would drift 8× over this
range).""",
    ),
    (
        "Table II — sequential comparison",
        "repro_table2",
        """**Outcome: shape reproduced.** μDBSCAN is the fastest R-tree-family
algorithm on every analogue (1.8–32× over R-DBSCAN; paper: 1.6–28×);
G-DBSCAN collapses on large low-dimensional data exactly as in the paper
(>12 h there, slowest by an order of magnitude here) while staying
competitive at high dimension; GridDBSCAN memory-errors at d ≥ 14 (the
paper's "Mem Err" rows); m ≪ n everywhere; query savings are highest on
the HHP/KDDB/3DSRN analogues and lowest on the diffuse DGB galaxy data
(paper 43.6 %, ours ≈ 39 %).

**Deviation to note:** at these scaled-down sizes (≤ 100K points) our
hash-grid GridDBSCAN is faster than μDBSCAN on the 3-d analogues, whereas
the paper's GridDBSCAN loses from 0.43M points upward. The grid's
neighbour-list memory (Table IV) and its high-d failure reproduce
regardless.""",
    ),
    (
        "Table III — μDBSCAN phase split-up",
        "repro_table3",
        """**Outcome: shape reproduced in the paper-faithful configuration.** The
harness prints two profiles. With Algorithm 7 exactly as written
(per-member post-processing scan), post-processing is the dominant or
co-dominant phase and peaks on the high-query-savings datasets (KDDB14),
matching the paper's 36–97 % pattern directionally. The second profile
shows this repo's MC-granularity skip (DESIGN.md §8.1) collapsing that
phase to a few percent — an implementation improvement the paper's
numbers say the original code did not have.""",
    ),
    (
        "Table IV — peak memory",
        "repro_table4",
        """**Outcome: shape mostly reproduced.** G-DBSCAN is smallest (no index);
μDBSCAN's two-level μR-tree costs more than R-DBSCAN's single R-tree
(paper: ×1.1–1.8, ours similar); GridDBSCAN explodes with dimension and
hits the memory budget at d = 14 (paper: 20.17 GB / Mem Err). At our
scaled 3-d sizes the grid's absolute footprint is comparable to the
trees rather than 3–4× larger — a small-scale effect; the qualitative
ordering and the high-d blow-up are the reproduced phenomena.""",
    ),
    (
        "Table V — distributed comparison (32 ranks)",
        "repro_table5",
        """**Outcome: headline reproduced.** Only μDBSCAN-D completes every row
(billion-scale and high-dimensional analogues); μDBSCAN-D beats
PDSDBSCAN-D wherever both run; RP-DBSCAN is the slowest by an order of
magnitude and approximate — we quantify its deviation with the
cluster-count delta and the Adjusted Rand Index against the exact
clustering (the paper reports cluster-count deviations for approximate
competitors). Rows the paper marks '-' (binaries not capable) are
skipped identically; GridDBSCAN-D's d = 14 cell (paper: 483.87 s on 32
nodes) is a MemErr here because our per-rank budget models a single
host's share. HPDBSCAN's speed on low-d grids reproduces; unlike the
original (inconsistent cluster counts, ~27 % deviation noted in the
paper) our port is exactness-fixed through the shared merge.""",
    ),
    (
        "Table VI — 32 → 128 cores",
        "repro_table6",
        """**Outcome: reproduced.** Runtime keeps dropping as ranks double from 32
to 128 (paper: ~2.3× over the span on both datasets; our virtual
makespans show the same monotone scaling).""",
    ),
    (
        "Table VII — μDBSCAN-D phase split-up",
        "repro_table7",
        """**Outcome: partially reproduced, deviation documented.** In the paper
merging stays < 4 % of a much larger local runtime. Here the local
phases are far cheaper (MC-skip post-processing, small analogues) while
our merge *includes* the per-halo-point edge queries that restore
exactness (DESIGN.md §8.3) — so the merge SHARE is inflated even though
its absolute cost is a few milliseconds and scales with the halo
fraction, not with n. What does transfer: tree construction is a large
share on 3-d galaxy data, and among local phases clustering dominates at
high dimension exactly as the paper reports for FOF28M14D.""",
    ),
    (
        "Table VIII — per-step speedup (32 ranks vs sequential)",
        "repro_table8",
        """**Outcome: reproduced.** Every step of μDBSCAN-D speeds up
individually; finding reachable groups scales super-linearly (32 small
level-1 trees beat one large one — the same effect the paper reports at
176×); merging is a small additive cost with no sequential counterpart.""",
    ),
    (
        "Fig. 5 — runtime vs ε",
        "repro_fig5",
        """**Outcome: reproduced.** μDBSCAN-D is the lowest curve at every ε on
both datasets, and its relative growth over the sweep is milder than
PDSDBSCAN-D's (paper's observation: saved queries turn into cheaper
post-processing as ε grows).""",
    ),
    (
        "Fig. 6 — runtime vs dimensionality",
        "repro_fig6",
        """**Outcome: reproduced.** μDBSCAN-D runtime grows steeply and
monotonically from d = 14 to d = 74 (paper: 8.15 s → 460.83 s, a 56×
growth driven by per-distance cost and R-tree overlap).""",
    ),
    (
        "Fig. 7 — speedup vs number of nodes",
        "repro_fig7",
        """**Outcome: reproduced with one scale artifact.** Speedup grows
monotonically with p for every dataset up to 32 ranks, super-linear at
small p on the tree-bound workloads (paper: up to 70×; the
super-linearity comes from smaller per-rank R-trees, which the
virtual-clock model captures). The KDDB145K14D analogue is the artifact:
at 10K points its ε=45 halo covers nearly the whole dataset, so every
rank repeats nearly full work and speedup saturates near 1× — at the
paper's real 145K scale the halos are a small fraction and it reports
~15×. The 3-d rows, where halos are thin, show the paper's shape.""",
    ),
    (
        "Ablations (DESIGN.md §7–§8)",
        "repro_ablation",
        """Design-choice ablations on one workload; every variant produces the
identical exact clustering, only cost moves. See also the criterion
benches (`cargo bench -p bench`) for the μR-tree-vs-flat query ablation,
union–find compaction variants and the partitioning comparison.""",
    ),
]

HEADER = f"""# EXPERIMENTS — paper vs measured

This file records, for every table and figure in the paper's evaluation
(§VI), the paper's reported values next to the values measured by the
corresponding `repro_*` harness in this repository. Regenerate any
section with `cargo run --release -p bench --bin <harness>`; regenerate
this file with `python3 tools/make_experiments.py > EXPERIMENTS.md`.

**Reading guide.** The paper ran C++/MPI binaries on a 32-node cluster
(Xeon E3-1230v2, 32 GB/node) against proprietary datasets of 145K–1B
points. This reproduction runs on a single-core host against seeded
synthetic analogues of 6K–150K points (DESIGN.md §2), with the cluster
replaced by a deterministic BSP simulator with virtual clocks
(`cluster-sim`). Absolute times are therefore not comparable; the
reproduction targets are the **shapes** — which algorithm wins, by what
rough factor, where memory errors appear, how phases split, how speedup
scales. Each harness prints both tables and asserts its shape checks.

Recorded: {datetime.date.today().isoformat()}, single-core x86-64 VM,
Rust 1.95, `--release`.

## Exactness (paper Theorem 1) — verified continuously

Not a table, but the paper's central claim. Enforced by the test suite
rather than a harness: property-based exactness against the naive O(n²)
oracle for μDBSCAN (sequential / parallel / no-promotion), all exact
baselines, μDBSCAN-D / PDSDBSCAN-D / GridDBSCAN-D / HPDBSCAN at
arbitrary rank counts, the streaming variant at arbitrary prefixes, and
OPTICS extraction at arbitrary radii. See THEORY.md for the claim-to-test
map and `test_output.txt` for the full run.
"""


def main() -> None:
    out = [HEADER]
    for title, harness, commentary in SECTIONS:
        path = RESULTS / f"{harness}.txt"
        out.append(f"\n---\n\n## {title}\n")
        out.append(f"Harness: `cargo run --release -p bench --bin {harness}`\n")
        out.append(commentary.strip() + "\n")
        if path.exists() and path.stat().st_size > 0:
            body = path.read_text().rstrip()
            out.append("\n```text\n" + body + "\n```\n")
        else:
            out.append("\n*(harness output missing — re-run the harness)*\n")
            print(f"warning: {path} missing", file=sys.stderr)
    print("\n".join(out))


if __name__ == "__main__":
    main()
