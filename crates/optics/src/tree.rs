//! Automatic hierarchical cluster extraction from the reachability plot
//! (Sander, Qin, Lu, Niu, Kovarsky — PAKDD 2003, simplified).
//!
//! The reachability plot of an OPTICS ordering is a sequence of
//! "valleys" (dense regions) separated by "peaks" (sparse gaps). The
//! cluster tree is built by recursively splitting at the most
//! significant local maximum: a split point `s` separates two
//! subclusters when the points around it are substantially denser than
//! the peak (`avg_reach < ratio · reach[s]`). Unlike a DBSCAN cut at one
//! ε′, the tree exposes clusters at *every* density level at once.

use crate::algorithm::OpticsOutput;

/// One node of the cluster tree: a contiguous run of the OPTICS order.
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterNode {
    /// Start position in the OPTICS order (inclusive).
    pub start: usize,
    /// End position in the OPTICS order (exclusive).
    pub end: usize,
    /// Nested denser subclusters (possibly empty).
    pub children: Vec<ClusterNode>,
}

impl ClusterNode {
    /// Number of points covered by this node.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// True when the node covers no points (never produced by
    /// extraction; for API completeness).
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// The point ids covered by this node, in OPTICS order.
    pub fn points<'a>(&self, out: &'a OpticsOutput) -> &'a [u32] {
        &out.order[self.start..self.end]
    }

    /// Depth-first leaves (the finest clusters).
    pub fn leaves(&self) -> Vec<&ClusterNode> {
        if self.children.is_empty() {
            vec![self]
        } else {
            self.children.iter().flat_map(|c| c.leaves()).collect()
        }
    }

    /// Total number of nodes in this subtree.
    pub fn size(&self) -> usize {
        1 + self.children.iter().map(|c| c.size()).sum::<usize>()
    }
}

/// Extraction parameters.
#[derive(Debug, Clone, Copy)]
pub struct TreeParams {
    /// Minimum points for a region to count as a cluster.
    pub min_cluster_size: usize,
    /// Significance ratio: a peak at `s` splits its region when both
    /// sides' average reachability is below `ratio * reach[s]`
    /// (Sander et al. suggest ~0.75).
    pub ratio: f64,
}

impl Default for TreeParams {
    fn default() -> Self {
        Self { min_cluster_size: 5, ratio: 0.75 }
    }
}

/// Build the cluster tree of an OPTICS ordering. Returns the forest of
/// top-level clusters (one tree per connected region of the plot).
pub fn cluster_tree(out: &OpticsOutput, params: &TreeParams) -> Vec<ClusterNode> {
    assert!(params.min_cluster_size >= 2, "clusters need at least 2 points");
    assert!((0.0..1.0).contains(&params.ratio), "ratio must be in (0, 1)");
    let n = out.order.len();
    if n == 0 {
        return Vec::new();
    }
    // Reachability in ORDER position space; position 0 and component
    // starts carry INFINITY. Split the sequence at infinite peaks first
    // (separate components / unreachable points), then recurse.
    let reach_at = |pos: usize| out.reachability[out.order[pos] as usize];
    let mut forest = Vec::new();
    let mut lo = 0usize;
    for hi in 1..=n {
        if hi == n || reach_at(hi).is_infinite() {
            if hi - lo >= params.min_cluster_size {
                if let Some(node) = build(out, lo, hi, params) {
                    forest.push(node);
                }
            }
            lo = hi;
        }
    }
    forest
}

fn build(out: &OpticsOutput, lo: usize, hi: usize, params: &TreeParams) -> Option<ClusterNode> {
    if hi - lo < params.min_cluster_size {
        return None;
    }
    let reach_at = |pos: usize| out.reachability[out.order[pos] as usize];

    // Most significant interior peak. Only positions leaving BOTH sides
    // viable (>= min_cluster_size) are candidates: this guarantees that
    // children tile their parent, and it ignores the spurious high
    // reachability right next to region boundaries (chain endpoints have
    // inflated core distances).
    let s_lo = lo + params.min_cluster_size;
    let s_hi = hi.saturating_sub(params.min_cluster_size);
    if s_lo > s_hi {
        return Some(ClusterNode { start: lo, end: hi, children: Vec::new() });
    }
    let mut split: Option<(usize, f64)> = None;
    for pos in s_lo..=s_hi {
        let r = reach_at(pos);
        if split.is_none_or(|(_, best)| r > best) {
            split = Some((pos, r));
        }
    }
    let (s, peak) = split?;
    if peak <= 0.0 || !peak.is_finite() {
        return Some(ClusterNode { start: lo, end: hi, children: Vec::new() });
    }

    // Significance test: both sides denser than the peak by the ratio.
    let avg = |a: usize, b: usize| -> f64 {
        let vals: Vec<f64> =
            ((a + 1).max(lo + 1)..b).map(reach_at).filter(|r| r.is_finite()).collect();
        if vals.is_empty() {
            0.0
        } else {
            vals.iter().sum::<f64>() / vals.len() as f64
        }
    };
    let left_avg = avg(lo, s);
    let right_avg = avg(s, hi);
    let significant = left_avg < params.ratio * peak && right_avg < params.ratio * peak;

    if !significant {
        return Some(ClusterNode { start: lo, end: hi, children: Vec::new() });
    }
    let mut children = Vec::new();
    if let Some(l) = build(out, lo, s, params) {
        children.push(l);
    }
    if let Some(r) = build(out, s, hi, params) {
        children.push(r);
    }
    Some(ClusterNode { start: lo, end: hi, children })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithm::Optics;
    use geom::{Dataset, DbscanParams};

    /// Two super-clusters; the left one splits into two sub-blobs at a
    /// finer density level.
    fn two_scale_data() -> Dataset {
        let mut rows = Vec::new();
        for i in 0..40 {
            rows.push(vec![0.0 + 0.01 * i as f64]); // sub-blob A: [0, 0.4]
        }
        for i in 0..40 {
            rows.push(vec![2.0 + 0.01 * i as f64]); // sub-blob B: [2, 2.4]
        }
        for i in 0..60 {
            rows.push(vec![50.0 + 0.01 * i as f64]); // far cluster C
        }
        Dataset::from_rows(&rows)
    }

    #[test]
    fn hierarchy_reflects_two_density_scales() {
        let data = two_scale_data();
        // Generating eps large enough to connect A and B but not C.
        let out = Optics::from_params(DbscanParams::new(3.0, 4)).run(&data);
        let forest = cluster_tree(&out, &TreeParams { min_cluster_size: 10, ratio: 0.75 });
        // Two top-level regions: {A ∪ B} and {C} (C is a separate
        // component at eps = 3).
        assert_eq!(forest.len(), 2, "{forest:?}");
        // The A∪B node must split into exactly two children.
        let ab = forest.iter().find(|node| node.len() == 80).expect("A∪B node");
        assert_eq!(ab.children.len(), 2, "A∪B should split: {ab:?}");
        assert!(ab.children.iter().all(|c| c.len() == 40));
        // C stays unsplit (uniform density).
        let c = forest.iter().find(|node| node.len() == 60).expect("C node");
        assert!(c.children.is_empty(), "C must not split: {c:?}");
    }

    #[test]
    fn leaves_partition_their_root() {
        let data = two_scale_data();
        let out = Optics::from_params(DbscanParams::new(3.0, 4)).run(&data);
        let forest = cluster_tree(&out, &TreeParams::default());
        for root in &forest {
            let leaves = root.leaves();
            let covered: usize = leaves.iter().map(|l| l.len()).sum();
            assert_eq!(covered, root.len(), "leaves must tile the root");
            assert!(root.size() >= leaves.len());
            for l in &leaves {
                assert!(!l.points(&out).is_empty());
            }
        }
    }

    #[test]
    fn uniform_data_yields_flat_tree() {
        let rows: Vec<Vec<f64>> = (0..100).map(|i| vec![0.05 * i as f64]).collect();
        let data = Dataset::from_rows(&rows);
        let out = Optics::from_params(DbscanParams::new(1.0, 4)).run(&data);
        let forest = cluster_tree(&out, &TreeParams::default());
        assert_eq!(forest.len(), 1);
        assert!(forest[0].children.is_empty(), "uniform chain must not split");
    }

    #[test]
    fn empty_and_tiny_inputs() {
        let data = Dataset::from_rows(&[vec![0.0], vec![10.0]]);
        let out = Optics::from_params(DbscanParams::new(1.0, 2)).run(&data);
        let forest = cluster_tree(&out, &TreeParams::default());
        assert!(forest.is_empty(), "two isolated points form no cluster");
    }
}
