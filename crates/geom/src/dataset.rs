//! Flat, structure-of-arrays point storage.

use std::fmt;

/// Index of a point inside a [`Dataset`].
///
/// `u32` keeps per-point bookkeeping structures (union–find parents, labels,
/// neighbour lists) half the size of `usize` on 64-bit targets; datasets of
/// up to ~4.2 billion points fit, which covers the paper's 1B-point runs.
pub type PointId = u32;

/// An immutable collection of `n` points of dimension `dim`, stored
/// row-major in one flat buffer (`coords[i * dim .. (i + 1) * dim]` is
/// point `i`).
#[derive(Clone, PartialEq)]
pub struct Dataset {
    dim: usize,
    coords: Vec<f64>,
}

impl Dataset {
    /// Build a dataset from a flat row-major buffer.
    ///
    /// # Panics
    /// Panics if `dim == 0` or `coords.len()` is not a multiple of `dim`.
    pub fn from_flat(dim: usize, coords: Vec<f64>) -> Self {
        assert!(dim > 0, "dimension must be positive");
        assert!(
            coords.len().is_multiple_of(dim),
            "flat buffer length {} is not a multiple of dim {}",
            coords.len(),
            dim
        );
        Self { dim, coords }
    }

    /// Build a dataset from per-point rows. All rows must share one length.
    pub fn from_rows(rows: &[Vec<f64>]) -> Self {
        assert!(!rows.is_empty(), "cannot infer dimension from zero rows");
        let dim = rows[0].len();
        let mut coords = Vec::with_capacity(rows.len() * dim);
        for (i, r) in rows.iter().enumerate() {
            assert_eq!(r.len(), dim, "row {i} has length {} != dim {dim}", r.len());
            coords.extend_from_slice(r);
        }
        Self::from_flat(dim, coords)
    }

    /// An empty dataset of the given dimension.
    pub fn empty(dim: usize) -> Self {
        Self::from_flat(dim, Vec::new())
    }

    /// Number of points.
    #[inline]
    pub fn len(&self) -> usize {
        self.coords.len() / self.dim
    }

    /// True when the dataset holds no points.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.coords.is_empty()
    }

    /// Point dimensionality.
    #[inline]
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Borrow the coordinates of point `id`.
    #[inline]
    pub fn point(&self, id: PointId) -> &[f64] {
        let i = id as usize * self.dim;
        &self.coords[i..i + self.dim]
    }

    /// The full flat coordinate buffer.
    #[inline]
    pub fn coords(&self) -> &[f64] {
        &self.coords
    }

    /// Iterate over `(id, coords)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (PointId, &[f64])> {
        self.coords.chunks_exact(self.dim).enumerate().map(|(i, c)| (i as PointId, c))
    }

    /// Iterate over all point ids.
    pub fn ids(&self) -> std::ops::Range<PointId> {
        0..self.len() as PointId
    }

    /// Copy the given points into a new dataset (used by the spatial
    /// partitioner to materialise per-rank shards).
    pub fn gather(&self, ids: &[PointId]) -> Dataset {
        let mut coords = Vec::with_capacity(ids.len() * self.dim);
        for &id in ids {
            coords.extend_from_slice(self.point(id));
        }
        Dataset::from_flat(self.dim, coords)
    }

    /// Append one point, returning its id. Only used during construction
    /// (generators, halo exchange); algorithms treat datasets as immutable.
    pub fn push(&mut self, coords: &[f64]) -> PointId {
        assert_eq!(coords.len(), self.dim);
        let id = self.len() as PointId;
        self.coords.extend_from_slice(coords);
        id
    }

    /// Append every point of `other` (same dimension), returning the id the
    /// first appended point received.
    pub fn extend_from(&mut self, other: &Dataset) -> PointId {
        assert_eq!(self.dim, other.dim);
        let first = self.len() as PointId;
        self.coords.extend_from_slice(&other.coords);
        first
    }

    /// Check that every coordinate is finite (no NaN/∞). DBSCAN distances
    /// are undefined on non-finite inputs; callers ingesting external
    /// files (the CLI) should validate before clustering.
    pub fn validate_finite(&self) -> Result<(), String> {
        for (i, x) in self.coords.iter().enumerate() {
            if !x.is_finite() {
                return Err(format!(
                    "non-finite coordinate {x} at point {}, component {}",
                    i / self.dim,
                    i % self.dim
                ));
            }
        }
        Ok(())
    }

    /// Component-wise bounding box of all points, as `(lo, hi)` vectors.
    /// Returns `None` for an empty dataset.
    pub fn bounding_box(&self) -> Option<(Vec<f64>, Vec<f64>)> {
        if self.is_empty() {
            return None;
        }
        let mut lo = self.point(0).to_vec();
        let mut hi = lo.clone();
        for (_, p) in self.iter().skip(1) {
            for k in 0..self.dim {
                if p[k] < lo[k] {
                    lo[k] = p[k];
                }
                if p[k] > hi[k] {
                    hi[k] = p[k];
                }
            }
        }
        Some((lo, hi))
    }
}

impl fmt::Debug for Dataset {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Dataset {{ n: {}, dim: {} }}", self.len(), self.dim)
    }
}

/// Incremental builder that avoids intermediate `Vec<Vec<f64>>` rows.
pub struct DatasetBuilder {
    dim: usize,
    coords: Vec<f64>,
}

impl DatasetBuilder {
    /// Start a builder for points of dimension `dim`, reserving room for
    /// `capacity` points.
    pub fn with_capacity(dim: usize, capacity: usize) -> Self {
        assert!(dim > 0);
        Self { dim, coords: Vec::with_capacity(capacity * dim) }
    }

    /// Append one point.
    #[inline]
    pub fn push(&mut self, coords: &[f64]) {
        debug_assert_eq!(coords.len(), self.dim);
        self.coords.extend_from_slice(coords);
    }

    /// Number of points appended so far.
    pub fn len(&self) -> usize {
        self.coords.len() / self.dim
    }

    /// True if no point has been appended yet.
    pub fn is_empty(&self) -> bool {
        self.coords.is_empty()
    }

    /// Finish, producing the immutable [`Dataset`].
    pub fn build(self) -> Dataset {
        Dataset::from_flat(self.dim, self.coords)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Dataset {
        Dataset::from_rows(&[vec![0.0, 0.0], vec![1.0, 2.0], vec![-3.0, 4.5]])
    }

    #[test]
    fn from_rows_roundtrip() {
        let d = sample();
        assert_eq!(d.len(), 3);
        assert_eq!(d.dim(), 2);
        assert_eq!(d.point(1), &[1.0, 2.0]);
        assert_eq!(d.point(2), &[-3.0, 4.5]);
    }

    #[test]
    fn iter_matches_point() {
        let d = sample();
        for (id, p) in d.iter() {
            assert_eq!(p, d.point(id));
        }
        assert_eq!(d.iter().count(), 3);
    }

    #[test]
    fn gather_subset() {
        let d = sample();
        let g = d.gather(&[2, 0]);
        assert_eq!(g.len(), 2);
        assert_eq!(g.point(0), d.point(2));
        assert_eq!(g.point(1), d.point(0));
    }

    #[test]
    fn bounding_box_covers_all() {
        let d = sample();
        let (lo, hi) = d.bounding_box().unwrap();
        assert_eq!(lo, vec![-3.0, 0.0]);
        assert_eq!(hi, vec![1.0, 4.5]);
        assert!(Dataset::empty(2).bounding_box().is_none());
    }

    #[test]
    fn builder_matches_from_rows() {
        let mut b = DatasetBuilder::with_capacity(2, 3);
        assert!(b.is_empty());
        b.push(&[0.0, 0.0]);
        b.push(&[1.0, 2.0]);
        b.push(&[-3.0, 4.5]);
        assert_eq!(b.len(), 3);
        assert_eq!(b.build(), sample());
    }

    #[test]
    fn push_and_extend() {
        let mut d = Dataset::empty(2);
        assert_eq!(d.push(&[1.0, 1.0]), 0);
        assert_eq!(d.push(&[2.0, 2.0]), 1);
        let other = sample();
        let first = d.extend_from(&other);
        assert_eq!(first, 2);
        assert_eq!(d.len(), 5);
        assert_eq!(d.point(3), other.point(1));
    }

    #[test]
    #[should_panic(expected = "not a multiple")]
    fn from_flat_validates_len() {
        Dataset::from_flat(3, vec![1.0, 2.0]);
    }

    #[test]
    fn validate_finite_catches_bad_values() {
        assert!(sample().validate_finite().is_ok());
        let bad = Dataset::from_rows(&[vec![1.0, f64::NAN]]);
        let err = bad.validate_finite().unwrap_err();
        assert!(err.contains("point 0"), "{err}");
        let inf = Dataset::from_rows(&[vec![1.0, 2.0], vec![f64::INFINITY, 0.0]]);
        assert!(inf.validate_finite().unwrap_err().contains("point 1"));
    }
}
