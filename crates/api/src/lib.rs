#![warn(missing_docs)]

//! # μDBSCAN — unified entry-point facade
//!
//! This crate is the single front door to the μDBSCAN reproduction. It
//! re-exports the whole core API (`mudbscan-core`: [`MuDbscan`],
//! [`ParMuDbscan`], [`Clustering`], [`naive_dbscan`], …) so existing
//! `use mudbscan::…` code keeps compiling unchanged, and adds:
//!
//! * [`prelude::Runner`] — one fluent builder that constructs any of the
//!   five algorithm families (sequential, parallel, distributed,
//!   streaming, OPTICS) behind the common [`prelude::Cluster`] trait;
//! * [`MuDbscanError`] — the shared error enum every facade-driven `run`
//!   returns (wrapping [`dist::DistError`] and configuration errors).
//!
//! The historical per-family constructors (`MuDbscan::new`,
//! `ParMuDbscan::new(params, threads)`, `MuDbscanD::new(params, cfg)`,
//! `StreamingMuDbscan::new(dim, params)`, `Optics::new`) are deprecated
//! shims kept for one PR; see `docs/API.md` for the migration table.
//!
//! ```
//! use mudbscan::prelude::*;
//!
//! let data = Dataset::from_rows(&[
//!     vec![0.0, 0.0], vec![0.1, 0.0], vec![0.0, 0.1], // a small blob
//!     vec![9.0, 9.0],                                  // an outlier
//! ]);
//! let out = Runner::new(DbscanParams::new(0.5, 3)).run(&data).unwrap();
//! assert_eq!(out.clustering.n_clusters, 1);
//! assert!(out.clustering.is_noise(3));
//! ```

pub mod error;
pub mod prelude;

pub use error::MuDbscanError;
pub use mudbscan_core::*;
