//! Property-based exactness for every sequential baseline: R-DBSCAN,
//! G-DBSCAN and GridDBSCAN must all reproduce naive DBSCAN on arbitrary
//! inputs — and therefore agree with μDBSCAN and with each other.

use baselines::{GDbscan, GridDbscan, RDbscan};
use geom::{Dataset, DbscanParams};
use mudbscan::{check_exact, naive_dbscan};
use proptest::prelude::*;

fn clustered(dim: usize) -> impl Strategy<Value = Vec<Vec<f64>>> {
    (
        prop::collection::vec(prop::collection::vec(-6.0..6.0f64, dim), 1..4),
        prop::collection::vec((0usize..4, prop::collection::vec(-0.8..0.8f64, dim)), 8..100),
        prop::collection::vec(prop::collection::vec(-8.0..8.0f64, dim), 0..12),
    )
        .prop_map(|(centers, offsets, background)| {
            let mut rows = Vec::new();
            for (ci, off) in offsets {
                let c = &centers[ci % centers.len()];
                rows.push(c.iter().zip(&off).map(|(a, b)| a + b).collect());
            }
            rows.extend(background);
            rows
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn rdbscan_exact(rows in clustered(2), eps in 0.2..2.0f64, min_pts in 2usize..8) {
        let data = Dataset::from_rows(&rows);
        let params = DbscanParams::new(eps, min_pts);
        let out = RDbscan::new(params).run(&data);
        let reference = naive_dbscan(&data, &params);
        let rep = check_exact(&out.clustering, &reference, &data, &params);
        prop_assert!(rep.is_exact(), "{rep:?}");
    }

    #[test]
    fn gdbscan_exact(rows in clustered(3), eps in 0.3..2.5f64, min_pts in 2usize..7) {
        let data = Dataset::from_rows(&rows);
        let params = DbscanParams::new(eps, min_pts);
        let out = GDbscan::new(params).run(&data);
        let reference = naive_dbscan(&data, &params);
        let rep = check_exact(&out.clustering, &reference, &data, &params);
        prop_assert!(rep.is_exact(), "{rep:?}");
    }

    #[test]
    fn griddbscan_exact(rows in clustered(2), eps in 0.2..2.0f64, min_pts in 2usize..8) {
        let data = Dataset::from_rows(&rows);
        let params = DbscanParams::new(eps, min_pts);
        let out = GridDbscan::new(params).run(&data).unwrap();
        let reference = naive_dbscan(&data, &params);
        let rep = check_exact(&out.clustering, &reference, &data, &params);
        prop_assert!(rep.is_exact(), "{rep:?}");
    }

    #[test]
    fn all_algorithms_agree_on_counts(rows in clustered(3), eps in 0.4..1.8f64, min_pts in 2usize..6) {
        let data = Dataset::from_rows(&rows);
        let params = DbscanParams::new(eps, min_pts);
        let a = RDbscan::new(params).run(&data).clustering;
        let b = GDbscan::new(params).run(&data).clustering;
        let c = GridDbscan::new(params).run(&data).unwrap().clustering;
        let d = mudbscan::MuDbscan::from_params(params).run(&data).clustering;
        prop_assert_eq!(a.n_clusters, b.n_clusters);
        prop_assert_eq!(b.n_clusters, c.n_clusters);
        prop_assert_eq!(c.n_clusters, d.n_clusters);
        prop_assert_eq!(a.is_core.clone(), b.is_core.clone());
        prop_assert_eq!(b.is_core.clone(), c.is_core.clone());
        prop_assert_eq!(c.is_core.clone(), d.is_core.clone());
        prop_assert_eq!(a.noise_count(), d.noise_count());
    }
}
