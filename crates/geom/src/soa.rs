//! Structure-of-arrays (column-major) coordinate storage.
//!
//! [`Dataset`] stores points row-major — point `i`'s
//! coordinates are contiguous — which is the right layout for handing a
//! single point to a distance call. The ε-query hot path has the opposite
//! access pattern: *one* query point against *many* stored points. The
//! types here hold the same coordinates column-major — all `x₀`s
//! contiguous, then all `x₁`s, … — so the batched kernels in
//! [`crate::kernels`] stream unit-stride columns and autovectorize.
//!
//! * [`PointBlock`] — a fixed-capacity block sized for one R-tree leaf
//!   (tens of points). Columns share one allocation at a fixed stride, so
//!   a leaf carries exactly one heap block instead of two boxed bounds
//!   slices per entry.
//! * [`SoaDataset`] — a whole-dataset column view for full-scan
//!   consumers and the kernel micro-benchmarks.

use crate::kernels;
use crate::{Dataset, Mbr};

/// A fixed-capacity column-major block of points with `u32` item ids —
/// the storage behind an R-tree point leaf.
///
/// Column `k` lives at `cols[k*cap .. k*cap + len]`; slots past `len`
/// are uninitialised padding that no kernel reads. The capacity is fixed
/// at construction (a leaf's capacity is known from the tree's fan-out
/// config), so pushes never reallocate or re-stride.
#[derive(Debug, Clone)]
pub struct PointBlock {
    dim: usize,
    cap: usize,
    items: Vec<u32>,
    cols: Box<[f64]>,
}

impl PointBlock {
    /// Empty block for `dim`-dimensional points holding up to `cap`.
    pub fn with_capacity(dim: usize, cap: usize) -> Self {
        assert!(dim > 0, "dim must be positive");
        assert!(cap > 0, "capacity must be positive");
        Self { dim, cap, items: Vec::with_capacity(cap), cols: vec![0.0; dim * cap].into() }
    }

    /// Number of stored points.
    #[inline]
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// True when no point is stored.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Fixed capacity (also the column stride).
    #[inline]
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// Point dimensionality.
    #[inline]
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Item ids in insertion order.
    #[inline]
    pub fn items(&self) -> &[u32] {
        &self.items
    }

    /// Item id of the point at row `i`.
    #[inline]
    pub fn item(&self, i: usize) -> u32 {
        self.items[i]
    }

    /// Coordinate `k` of the point at row `i`.
    #[inline]
    pub fn coord(&self, i: usize, k: usize) -> f64 {
        debug_assert!(i < self.len() && k < self.dim);
        self.cols[k * self.cap + i]
    }

    /// The filled part of column `k` (unit-stride, length [`len`](Self::len)).
    #[inline]
    pub fn col(&self, k: usize) -> &[f64] {
        &self.cols[k * self.cap..k * self.cap + self.len()]
    }

    /// Raw column storage plus its stride, for handing to the
    /// [`crate::kernels`] primitives.
    #[inline]
    pub fn raw_cols(&self) -> (&[f64], usize) {
        (&self.cols, self.cap)
    }

    /// Append a point. Panics when full or on a dimensionality mismatch.
    pub fn push(&mut self, item: u32, coords: &[f64]) {
        assert_eq!(coords.len(), self.dim, "point dimensionality mismatch");
        let i = self.items.len();
        assert!(i < self.cap, "PointBlock full");
        for (k, &x) in coords.iter().enumerate() {
            self.cols[k * self.cap + i] = x;
        }
        self.items.push(item);
    }

    /// Remove the point at row `i`, shifting later rows left so
    /// insertion order is preserved. Returns the removed item id.
    /// Panics when `i` is out of range.
    pub fn remove(&mut self, i: usize) -> u32 {
        let n = self.len();
        assert!(i < n, "PointBlock::remove out of range");
        for k in 0..self.dim {
            let col = &mut self.cols[k * self.cap..k * self.cap + n];
            col.copy_within(i + 1..n, i);
        }
        self.items.remove(i)
    }

    /// Copy the point at row `i` into `buf` (which must be `dim` long).
    pub fn write_point(&self, i: usize, buf: &mut [f64]) {
        debug_assert_eq!(buf.len(), self.dim);
        for (k, b) in buf.iter_mut().enumerate() {
            *b = self.coord(i, k);
        }
    }

    /// Squared distance from `q` to the point at row `i` — ascending
    /// dimension order, bit-identical to [`crate::dist_sq`] on the
    /// row-major copy.
    #[inline]
    pub fn dist_sq_to(&self, i: usize, q: &[f64]) -> f64 {
        debug_assert_eq!(q.len(), self.dim);
        kernels::dist_sq_strided(&self.cols, self.cap, self.dim, i, q)
    }

    /// Batched squared distances from `q` to every stored point, written
    /// to `out[..len]` with the autovectorizing column kernel.
    #[inline]
    pub fn dist_sq_batch(&self, q: &[f64], out: &mut [f64]) {
        kernels::dist_sq_batch(&self.cols, self.cap, self.len(), self.dim, q, out);
    }

    /// Per-point scalar-loop variant of [`Self::dist_sq_batch`] —
    /// bit-identical results, kept as the equivalence reference.
    #[inline]
    pub fn dist_sq_scalar(&self, q: &[f64], out: &mut [f64]) {
        kernels::dist_sq_scalar(&self.cols, self.cap, self.len(), self.dim, q, out);
    }

    /// Tight bounding box of the stored points (`None` when empty).
    pub fn mbr(&self) -> Option<Mbr> {
        if self.is_empty() {
            return None;
        }
        let mut lo = vec![f64::INFINITY; self.dim];
        let mut hi = vec![f64::NEG_INFINITY; self.dim];
        for k in 0..self.dim {
            for &x in self.col(k) {
                if x < lo[k] {
                    lo[k] = x;
                }
                if x > hi[k] {
                    hi[k] = x;
                }
            }
        }
        Some(Mbr::new(lo, hi))
    }

    /// Owned heap bytes (id vector plus the shared column block).
    pub fn heap_bytes(&self) -> usize {
        self.items.capacity() * std::mem::size_of::<u32>()
            + self.cols.len() * std::mem::size_of::<f64>()
    }
}

/// A whole [`Dataset`] transposed to column-major storage: column `k`
/// occupies `cols[k*len .. (k+1)*len]`. Used by full-scan consumers and
/// the kernel micro-benchmarks; the per-leaf analogue is [`PointBlock`].
#[derive(Debug, Clone)]
pub struct SoaDataset {
    dim: usize,
    len: usize,
    cols: Box<[f64]>,
}

impl SoaDataset {
    /// Transpose `data` into column-major storage.
    pub fn from_dataset(data: &Dataset) -> Self {
        let (dim, len) = (data.dim(), data.len());
        let mut cols = vec![0.0; dim * len].into_boxed_slice();
        for i in 0..len {
            let p = data.point(i as u32);
            for (k, &x) in p.iter().enumerate() {
                cols[k * len + i] = x;
            }
        }
        Self { dim, len, cols }
    }

    /// Number of points.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the dataset is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Point dimensionality.
    #[inline]
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Column `k` (all points' `k`-th coordinate, unit stride).
    #[inline]
    pub fn col(&self, k: usize) -> &[f64] {
        &self.cols[k * self.len..(k + 1) * self.len]
    }

    /// Batched squared distances from `q` to every point, written to
    /// `out[..len]`.
    #[inline]
    pub fn dist_sq_batch(&self, q: &[f64], out: &mut [f64]) {
        kernels::dist_sq_batch(&self.cols, self.len, self.len, self.dim, q, out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dist_sq;

    #[test]
    fn point_block_round_trips() {
        let mut b = PointBlock::with_capacity(3, 8);
        assert!(b.is_empty());
        assert!(b.mbr().is_none());
        for i in 0..5u32 {
            b.push(i * 10, &[i as f64, -(i as f64), 0.5]);
        }
        assert_eq!(b.len(), 5);
        assert_eq!(b.items(), &[0, 10, 20, 30, 40]);
        assert_eq!(b.coord(3, 0), 3.0);
        assert_eq!(b.coord(3, 1), -3.0);
        let mut buf = [0.0; 3];
        b.write_point(4, &mut buf);
        assert_eq!(buf, [4.0, -4.0, 0.5]);
        let m = b.mbr().unwrap();
        assert_eq!(m.lo(), &[0.0, -4.0, 0.5]);
        assert_eq!(m.hi(), &[4.0, 0.0, 0.5]);
        assert!(b.heap_bytes() >= 8 * 3 * 8);
    }

    #[test]
    fn point_block_distances_match_row_major() {
        let mut b = PointBlock::with_capacity(2, 4);
        let rows = [[0.0, 0.0], [3.0, 4.0], [-1.0, 2.5]];
        for (i, r) in rows.iter().enumerate() {
            b.push(i as u32, r);
        }
        let q = [1.0, -2.0];
        let mut batch = [0.0; 3];
        let mut scalar = [0.0; 3];
        b.dist_sq_batch(&q, &mut batch);
        b.dist_sq_scalar(&q, &mut scalar);
        for i in 0..3 {
            let want = dist_sq(&rows[i], &q);
            assert_eq!(batch[i].to_bits(), want.to_bits());
            assert_eq!(scalar[i].to_bits(), want.to_bits());
            assert_eq!(b.dist_sq_to(i, &q).to_bits(), want.to_bits());
        }
    }

    #[test]
    fn point_block_remove_shifts_rows() {
        let mut b = PointBlock::with_capacity(2, 8);
        for i in 0..5u32 {
            b.push(i, &[i as f64, 10.0 + i as f64]);
        }
        assert_eq!(b.remove(1), 1);
        assert_eq!(b.items(), &[0, 2, 3, 4]);
        assert_eq!(b.col(0), &[0.0, 2.0, 3.0, 4.0]);
        assert_eq!(b.col(1), &[10.0, 12.0, 13.0, 14.0]);
        // Remove last, then first.
        assert_eq!(b.remove(3), 4);
        assert_eq!(b.remove(0), 0);
        assert_eq!(b.items(), &[2, 3]);
        assert_eq!(b.col(0), &[2.0, 3.0]);
        let m = b.mbr().unwrap();
        assert_eq!(m.lo(), &[2.0, 12.0]);
        assert_eq!(m.hi(), &[3.0, 13.0]);
        // Freed slots are reusable.
        b.push(9, &[9.0, 19.0]);
        assert_eq!(b.items(), &[2, 3, 9]);
        assert_eq!(b.coord(2, 1), 19.0);
    }

    #[test]
    #[should_panic(expected = "PointBlock full")]
    fn point_block_capacity_enforced() {
        let mut b = PointBlock::with_capacity(1, 2);
        b.push(0, &[0.0]);
        b.push(1, &[1.0]);
        b.push(2, &[2.0]);
    }

    #[test]
    fn soa_dataset_matches_rows() {
        let data = Dataset::from_rows(&[vec![0.0, 1.0], vec![2.0, 3.0], vec![4.0, 5.0]]);
        let soa = SoaDataset::from_dataset(&data);
        assert_eq!(soa.len(), 3);
        assert_eq!(soa.dim(), 2);
        assert_eq!(soa.col(0), &[0.0, 2.0, 4.0]);
        assert_eq!(soa.col(1), &[1.0, 3.0, 5.0]);
        let q = [1.5, -0.5];
        let mut out = [0.0; 3];
        soa.dist_sq_batch(&q, &mut out);
        for i in 0..3 {
            assert_eq!(out[i].to_bits(), dist_sq(data.point(i as u32), &q).to_bits());
        }
        assert!(!soa.is_empty());
        assert!(SoaDataset::from_dataset(&Dataset::empty(2)).is_empty());
    }
}
