#![deny(missing_docs)]

//! # μDBSCAN — unified entry-point facade
//!
//! This crate is the single front door to the μDBSCAN reproduction. It
//! re-exports the whole core API (`mudbscan-core`: [`MuDbscan`],
//! [`ParMuDbscan`], [`Clustering`], [`naive_dbscan`], …) so existing
//! `use mudbscan::…` code keeps compiling unchanged, and adds:
//!
//! * [`prelude::Runner`] — one fluent builder that constructs any of the
//!   seven algorithm families (sequential, parallel, distributed,
//!   out-of-core sharded, streaming, OPTICS, serving) behind the common
//!   [`prelude::Cluster`] trait, plus [`prelude::Runner::serve`] for
//!   the long-running concurrent service shape (`docs/SERVING.md`);
//! * [`prelude::Runner::run_source`] — clustering over any
//!   [`geom::DataSource`], including the memory-mapped on-disk chunk
//!   store ([`data::ChunkedStore`]) that feeds the sharded executor
//!   without materialising the dataset;
//! * [`MuDbscanError`] — the shared error enum every facade-driven `run`
//!   returns (wrapping [`dist::DistError`], `stream::ServeError`,
//!   `data::StoreError`, and configuration errors).
//!
//! The per-family constructors (`MuDbscan::from_params`,
//! `ParMuDbscan::from_params`, `MuDbscanD::from_params`,
//! `StreamingMuDbscan::empty` / `from_dataset`, `Optics::from_params`)
//! remain available as low-level entry points — the facade itself and
//! crates that cannot depend on `mudbscan` (e.g. `dist`) build on them —
//! but applications should reach for [`prelude::Runner`] first; see
//! `docs/API.md`.
//!
//! ```
//! use mudbscan::prelude::*;
//!
//! let data = Dataset::from_rows(&[
//!     vec![0.0, 0.0], vec![0.1, 0.0], vec![0.0, 0.1], // a small blob
//!     vec![9.0, 9.0],                                  // an outlier
//! ]);
//! let out = Runner::new(DbscanParams::new(0.5, 3)).run(&data).unwrap();
//! assert_eq!(out.clustering.n_clusters, 1);
//! assert!(out.clustering.is_noise(3));
//! ```

pub mod error;
pub mod prelude;

/// Compiles and runs the worked example in `docs/SERVING.md` as a
/// doctest, so the serving-layer documentation cannot drift from the
/// real API.
#[cfg(doctest)]
#[doc = include_str!("../../../docs/SERVING.md")]
mod serving_doc {}

pub use error::MuDbscanError;
pub use mudbscan_core::*;
