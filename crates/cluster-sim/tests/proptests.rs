//! Property tests of the BSP engine's message routing: arbitrary
//! communication matrices must be delivered exactly, in both executors.

use cluster_sim::{Bsp, Envelope, ExecMode};
use proptest::prelude::*;

/// A communication plan: for each sender, a list of (dest, payload).
fn plan(p: usize) -> impl Strategy<Value = Vec<Vec<(usize, u64)>>> {
    prop::collection::vec(prop::collection::vec((0..p, any::<u64>()), 0..12), p..=p)
}

fn run_plan(plan: &[Vec<(usize, u64)>], mode: ExecMode) -> Vec<Vec<(usize, u64)>> {
    let p = plan.len();
    let mut bsp = Bsp::new(vec![Vec::<(usize, u64)>::new(); p]).with_mode(mode);
    let plan_ref = plan.to_vec();
    bsp.exchange(
        move |r, _s| plan_ref[r].iter().map(|&(to, v)| Envelope::new(to, v)).collect(),
        |_r, s: &mut Vec<(usize, u64)>, inbox: Vec<(usize, u64)>| {
            *s = inbox;
        },
    );
    bsp.into_states()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn every_message_delivered_exactly_once(plan in (2usize..7).prop_flat_map(plan)) {
        let inboxes = run_plan(&plan, ExecMode::Sequential);
        // Expected inbox of rank r: all (src, v) with (r, v) in src's plan,
        // sorted by src (stable within one sender).
        for (r, inbox) in inboxes.iter().enumerate() {
            let mut want: Vec<(usize, u64)> = plan
                .iter()
                .enumerate()
                .flat_map(|(src, out)| {
                    out.iter().filter(|(to, _)| *to == r).map(move |&(_, v)| (src, v))
                })
                .collect();
            want.sort_by_key(|(src, _)| *src);
            let mut got = inbox.clone();
            got.sort_by_key(|(src, _)| *src);
            // Compare as multisets per source.
            let norm = |v: &[(usize, u64)]| {
                let mut v = v.to_vec();
                v.sort_unstable();
                v
            };
            prop_assert_eq!(norm(&got), norm(&want), "rank {}", r);
        }
    }

    #[test]
    fn threaded_executor_delivers_the_same(plan in (2usize..6).prop_flat_map(plan)) {
        let a = run_plan(&plan, ExecMode::Sequential);
        let b = run_plan(&plan, ExecMode::Threaded);
        // Same inbox contents (ordering within a source may differ; the
        // engine sorts by source only).
        for (ia, ib) in a.iter().zip(&b) {
            let mut x = ia.clone();
            let mut y = ib.clone();
            x.sort_unstable();
            y.sort_unstable();
            prop_assert_eq!(x, y);
        }
    }

    #[test]
    fn allgather_any_values(vals in prop::collection::vec(any::<u32>(), 1..9)) {
        let p = vals.len();
        let vals_ref = vals.clone();
        let mut bsp = Bsp::new(vec![(); p]);
        let got = bsp.allgather(move |r, _s| vals_ref[r]);
        prop_assert_eq!(got, vals);
    }

    #[test]
    fn makespan_monotone_in_steps(n_steps in 1usize..10) {
        let mut bsp = Bsp::new(vec![(); 3]);
        let mut last = 0.0;
        for _ in 0..n_steps {
            bsp.run(|_r, _s| {});
            prop_assert!(bsp.makespan() >= last);
            last = bsp.makespan();
        }
        prop_assert_eq!(bsp.steps(), n_steps);
    }
}
