//! Perf-regression diffing over two `BENCH_*.json` trajectory files.
//!
//! The trajectory's stability contract (docs/BENCH_SCHEMA.md) is what
//! makes this gate possible: at a fixed `points_per_workload` everything
//! except timings is deterministic, so counters, cluster shapes and
//! histogram percentiles compare exactly, while timing metrics get a
//! relative tolerance. The one exception is the multi-threaded parallel
//! arms (`par_mudbscan_t{N}`, N ≥ 2): with dynamic wndq promotions the
//! *set* of executed queries depends on thread interleaving (see
//! docs/OBSERVABILITY.md), so their query-work counters and histograms
//! are only reproducible within a band — [`DiffConfig::interleaved_rel`]
//! — while their clustering shape still compares exactly. The `bench_diff` binary wraps [`diff`] and exits
//! non-zero when any [`Severity::Regression`] finding survives, which is
//! how CI turns the committed trajectory into a perf gate.
//!
//! Two modes:
//!
//! * **same-scale** (default) — both files must have the same
//!   `points_per_workload`; every metric is compared.
//! * **scale-free** (`DiffConfig::scale_free`) — the candidate may have a
//!   different `n` (the CI smoke job emits a small instance against the
//!   committed full-size one); only scale-insensitive observables are
//!   compared: run presence, oracle exactness (including the serving
//!   arm's `final_matches_batch` bit), and `pct_queries_saved` within a
//!   loose absolute tolerance.

use obs::Json;

/// Per-metric tolerances. All defaults are deliberately loose enough for
/// shared CI runners; tighten locally when hunting a specific regression.
#[derive(Debug, Clone)]
pub struct DiffConfig {
    /// Relative slowdown allowed on timing metrics (`wall_secs`,
    /// `virtual_secs`, `tree_construction_makespan`, per-phase seconds):
    /// `candidate > baseline * (1 + time_rel)` is a regression. Timings
    /// only regress by getting *slower* — speedups are reported as
    /// improvements.
    pub time_rel: f64,
    /// Relative drift allowed on deterministic work metrics (counters,
    /// cluster/noise shape, histogram percentiles). The stability
    /// contract says these are bit-stable at fixed `n`, so the default
    /// is 0 — any drift is a behaviour change that must be explained.
    pub counter_rel: f64,
    /// Relative drift allowed on the query-work metrics (counters and
    /// histogram summaries) of thread-interleaved runs
    /// (`par_mudbscan_t{N}` with N ≥ 2). Dynamic wndq promotions make
    /// the set of executed queries interleaving-dependent at t ≥ 2, so
    /// zero tolerance would turn scheduler noise into gate failures;
    /// cluster shapes and exactness still compare exactly. Effective
    /// tolerance is `max(interleaved_rel, counter_rel)`.
    pub interleaved_rel: f64,
    /// Absolute percentage-point drop allowed on `pct_queries_saved`
    /// (higher is better; the paper's headline observable).
    pub pct_saved_abs: f64,
    /// Absolute percentage-point increase allowed on the instrumentation
    /// `overhead_pct`.
    pub overhead_abs: f64,
    /// Compare across different `points_per_workload` values, restricting
    /// the comparison to scale-insensitive observables.
    pub scale_free: bool,
}

impl Default for DiffConfig {
    fn default() -> Self {
        Self {
            time_rel: 0.5,
            counter_rel: 0.0,
            interleaved_rel: 0.25,
            pct_saved_abs: 5.0,
            overhead_abs: 5.0,
            scale_free: false,
        }
    }
}

/// How bad a finding is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Severity {
    /// The candidate is worse than the baseline beyond tolerance — the
    /// gate fails.
    Regression,
    /// The candidate is measurably better (informational).
    Improvement,
    /// Structural note (schema bump, new run, skipped comparison).
    Note,
}

/// One compared metric that deviated (or could not be compared).
#[derive(Debug, Clone)]
pub struct Finding {
    /// `workload/algorithm` (or a structural location).
    pub context: String,
    /// Metric name, e.g. `wall_secs` or `counters/node_visits`.
    pub metric: String,
    /// Baseline value (`NaN` when absent).
    pub baseline: f64,
    /// Candidate value (`NaN` when absent).
    pub candidate: f64,
    /// Classification.
    pub severity: Severity,
    /// Human-readable explanation.
    pub detail: String,
}

/// The full comparison result.
#[derive(Debug, Default)]
pub struct DiffReport {
    /// All findings, in comparison order.
    pub findings: Vec<Finding>,
    /// Metrics compared (including the ones that matched).
    pub compared: usize,
}

impl DiffReport {
    /// True when at least one regression was found.
    pub fn has_regressions(&self) -> bool {
        self.findings.iter().any(|f| f.severity == Severity::Regression)
    }

    /// The regression findings only.
    pub fn regressions(&self) -> Vec<&Finding> {
        self.findings.iter().filter(|f| f.severity == Severity::Regression).collect()
    }

    /// Render a terminal summary.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for f in &self.findings {
            let tag = match f.severity {
                Severity::Regression => "REGRESSION",
                Severity::Improvement => "improvement",
                Severity::Note => "note",
            };
            out.push_str(&format!(
                "{tag:>11}  {} :: {} — {} (baseline {}, candidate {})\n",
                f.context,
                f.metric,
                f.detail,
                fmt_val(f.baseline),
                fmt_val(f.candidate),
            ));
        }
        out.push_str(&format!(
            "{} metrics compared, {} regressions, {} improvements\n",
            self.compared,
            self.findings.iter().filter(|f| f.severity == Severity::Regression).count(),
            self.findings.iter().filter(|f| f.severity == Severity::Improvement).count(),
        ));
        out
    }
}

fn fmt_val(v: f64) -> String {
    if v.is_nan() {
        "absent".to_string()
    } else if v == v.trunc() && v.abs() < 9e15 {
        format!("{v}")
    } else {
        format!("{v:.6}")
    }
}

struct Differ<'a> {
    cfg: &'a DiffConfig,
    report: DiffReport,
}

impl Differ<'_> {
    fn push(
        &mut self,
        ctx: &str,
        metric: &str,
        base: f64,
        cand: f64,
        sev: Severity,
        detail: String,
    ) {
        self.report.findings.push(Finding {
            context: ctx.to_string(),
            metric: metric.to_string(),
            baseline: base,
            candidate: cand,
            severity: sev,
            detail,
        });
    }

    /// A "lower is better" timing metric with relative tolerance.
    fn time_metric(&mut self, ctx: &str, metric: &str, base: f64, cand: f64) {
        self.report.compared += 1;
        if base <= 0.0 {
            return; // nothing meaningful to compare against
        }
        let ratio = cand / base;
        if ratio > 1.0 + self.cfg.time_rel {
            self.push(
                ctx,
                metric,
                base,
                cand,
                Severity::Regression,
                format!("{:.2}x slower (tolerance {:.0}%)", ratio, self.cfg.time_rel * 100.0),
            );
        } else if ratio < 1.0 / (1.0 + self.cfg.time_rel) {
            self.push(ctx, metric, base, cand, Severity::Improvement, format!("{ratio:.2}x"));
        }
    }

    /// A deterministic work metric: relative drift beyond `counter_rel`
    /// in either direction is a regression (a silent behaviour change).
    fn work_metric(&mut self, ctx: &str, metric: &str, base: f64, cand: f64) {
        self.work_metric_banded(ctx, metric, base, cand, self.cfg.counter_rel);
    }

    /// Like [`Self::work_metric`] with an explicit tolerance band — used
    /// for the interleaving-dependent metrics of t ≥ 2 parallel runs.
    fn work_metric_banded(&mut self, ctx: &str, metric: &str, base: f64, cand: f64, rel: f64) {
        self.report.compared += 1;
        let denom = base.abs().max(1.0);
        let drift = (cand - base).abs() / denom;
        if drift > rel {
            self.push(
                ctx,
                metric,
                base,
                cand,
                Severity::Regression,
                format!(
                    "deterministic metric drifted {:+.2}% (tolerance {:.2}%)",
                    100.0 * (cand - base) / denom,
                    rel * 100.0
                ),
            );
        }
    }

    /// A "higher is better" percentage with absolute tolerance.
    fn pct_saved(&mut self, ctx: &str, base: f64, cand: f64) {
        self.report.compared += 1;
        if cand < base - self.cfg.pct_saved_abs {
            self.push(
                ctx,
                "pct_queries_saved",
                base,
                cand,
                Severity::Regression,
                format!(
                    "query savings dropped {:.1} points (tolerance {:.1})",
                    base - cand,
                    self.cfg.pct_saved_abs
                ),
            );
        } else if cand > base + self.cfg.pct_saved_abs {
            self.push(
                ctx,
                "pct_queries_saved",
                base,
                cand,
                Severity::Improvement,
                format!("+{:.1} points", cand - base),
            );
        }
    }
}

fn f(v: &Json, key: &str) -> Option<f64> {
    v.get(key).and_then(Json::as_f64)
}

/// True for run labels whose query schedule depends on thread
/// interleaving: the shared-memory parallel arms with two or more
/// workers. Sequential, t1 and the distributed simulator (deterministic
/// rank schedule) keep the exact stability contract.
fn interleaved(algo: &str) -> bool {
    algo.strip_prefix("par_mudbscan_t").and_then(|t| t.parse::<u32>().ok()).is_some_and(|t| t > 1)
}

fn runs_by_algorithm(w: &Json) -> Vec<(String, &Json)> {
    w.get("runs")
        .and_then(Json::as_array)
        .map(|runs| {
            runs.iter()
                .filter_map(|r| {
                    r.get("algorithm").and_then(Json::as_str).map(|a| (a.to_string(), r))
                })
                .collect()
        })
        .unwrap_or_default()
}

/// Compare `candidate` against `baseline`. Returns an error only for
/// structurally unusable inputs (not JSON trajectories at all); shape
/// mismatches inside valid trajectories become findings instead.
pub fn diff(baseline: &Json, candidate: &Json, cfg: &DiffConfig) -> Result<DiffReport, String> {
    let mut d = Differ { cfg, report: DiffReport::default() };

    let (bv, cv) = (f(baseline, "schema_version"), f(candidate, "schema_version"));
    let (bv, cv) = (
        bv.ok_or("baseline: missing schema_version (not a trajectory file?)")?,
        cv.ok_or("candidate: missing schema_version (not a trajectory file?)")?,
    );
    if bv != cv {
        d.push(
            "schema",
            "schema_version",
            bv,
            cv,
            Severity::Note,
            "schema versions differ; comparing the shared subset".to_string(),
        );
    }

    let bn = f(baseline, "points_per_workload").ok_or("baseline: missing points_per_workload")?;
    let cn = f(candidate, "points_per_workload").ok_or("candidate: missing points_per_workload")?;
    let same_scale = bn == cn;
    if !same_scale && !cfg.scale_free {
        return Err(format!(
            "points_per_workload differs ({bn} vs {cn}); pass --scale-free to compare \
             scale-insensitive observables only"
        ));
    }
    let full = same_scale && !cfg.scale_free;

    let empty = Vec::new();
    let b_workloads = baseline.get("workloads").and_then(Json::as_array).unwrap_or(&empty);
    let c_workloads = candidate.get("workloads").and_then(Json::as_array).unwrap_or(&empty);

    for bw in b_workloads {
        let Some(name) = bw.get("dataset").and_then(Json::as_str) else { continue };
        let Some(cw) =
            c_workloads.iter().find(|w| w.get("dataset").and_then(Json::as_str) == Some(name))
        else {
            d.push(
                name,
                "dataset",
                1.0,
                f64::NAN,
                Severity::Regression,
                "workload missing from candidate".to_string(),
            );
            continue;
        };

        let b_runs = runs_by_algorithm(bw);
        let c_runs = runs_by_algorithm(cw);
        for (algo, br) in &b_runs {
            let ctx = format!("{name}/{algo}");
            let Some((_, cr)) = c_runs.iter().find(|(a, _)| a == algo) else {
                d.push(
                    &ctx,
                    "run",
                    1.0,
                    f64::NAN,
                    Severity::Regression,
                    "algorithm run missing from candidate".to_string(),
                );
                continue;
            };

            // Exactness is non-negotiable in every mode.
            d.report.compared += 1;
            if cr.get("exact").and_then(Json::as_bool) != Some(true) {
                d.push(
                    &ctx,
                    "exact",
                    1.0,
                    0.0,
                    Severity::Regression,
                    "candidate run is not oracle-exact".to_string(),
                );
            }

            // The serving arm's second exactness bit (schema v6): the
            // drained final snapshot must stay bit-identical to a batch
            // run on the same live points. Checked fail-closed at
            // emission, so a committed file can only say true — compared
            // in every mode, like `exact`.
            if br.get("final_matches_batch").is_some() {
                d.report.compared += 1;
                if cr.get("final_matches_batch").and_then(Json::as_bool) != Some(true) {
                    d.push(
                        &ctx,
                        "final_matches_batch",
                        1.0,
                        0.0,
                        Severity::Regression,
                        "drained snapshot no longer matches its batch twin".to_string(),
                    );
                }
            }

            if let (Some(b), Some(c)) = (f(br, "pct_queries_saved"), f(cr, "pct_queries_saved")) {
                d.pct_saved(&ctx, b, c);
            }

            if !full {
                continue;
            }

            for metric in ["wall_secs", "virtual_secs", "tree_construction_makespan"] {
                if let (Some(b), Some(c)) = (f(br, metric), f(cr, metric)) {
                    d.time_metric(&ctx, metric, b, c);
                }
            }
            if let (Some(bp), Some(cp)) = (
                br.get("phases").and_then(Json::as_object),
                cr.get("phases").and_then(Json::as_object),
            ) {
                for (phase, bval) in bp {
                    if let (Some(b), Some(c)) = (
                        bval.as_f64(),
                        cp.iter().find(|(k, _)| k == phase).and_then(|(_, v)| v.as_f64()),
                    ) {
                        d.time_metric(&ctx, &format!("phases/{phase}"), b, c);
                    }
                }
            }

            // Thread-interleaved arms get the banded tolerance on their
            // query-work metrics (the executed-query set is
            // scheduling-dependent at t ≥ 2); everything else stays at
            // the exact `counter_rel` contract. Cluster shapes are exact
            // for every arm — exactness is oracle-enforced at emission.
            let band = if interleaved(algo) {
                cfg.interleaved_rel.max(cfg.counter_rel)
            } else {
                cfg.counter_rel
            };

            // `epochs` and `live_points` exist only on the serving arm
            // (schema v6) and are trace-determined, like cluster shapes.
            for metric in ["clusters", "noise", "epochs", "live_points"] {
                if let (Some(b), Some(c)) = (f(br, metric), f(cr, metric)) {
                    d.work_metric(&ctx, metric, b, c);
                }
            }
            if let (Some(bc), Some(cc)) = (br.get("counters"), cr.get("counters")) {
                for key in [
                    "range_queries",
                    "queries_saved",
                    "dist_computations",
                    "node_visits",
                    "union_ops",
                ] {
                    if let (Some(b), Some(c)) = (f(bc, key), f(cc, key)) {
                        d.work_metric_banded(&ctx, &format!("counters/{key}"), b, c, band);
                    }
                }
            }

            // Ops block (schema v6, the serving arms): the replayed
            // trace's operation totals are a pure function of the
            // workload — drift means the trace generator or the serving
            // layer's expiry/delete semantics changed. The repair census
            // (schema v7) is equally replay-deterministic: which deletes
            // repair locally, how many points each repair touches, and
            // which fall back to a rebuild are functions of the budget
            // and the seeded data, so they diff at zero tolerance too.
            if let (Some(bo), Some(co)) = (br.get("ops"), cr.get("ops")) {
                for key in [
                    "inserts",
                    "deletes",
                    "deletes_ignored",
                    "expiries",
                    "rebuilds",
                    "repairs",
                    "repair_touched_points",
                    "fallback_rebuilds",
                    "reader_queries",
                    "reader_memberships",
                    "reader_threads",
                ] {
                    if let (Some(b), Some(c)) = (f(bo, key), f(co, key)) {
                        d.work_metric(&ctx, &format!("ops/{key}"), b, c);
                    }
                }
            } else if br.get("ops").is_some() {
                d.push(
                    &ctx,
                    "ops",
                    1.0,
                    f64::NAN,
                    Severity::Regression,
                    "ops block missing from candidate".to_string(),
                );
            }

            // Fault block (schema v4): the integer counters are the fault
            // layer's replay signature — deterministic for a pinned plan,
            // so any drift is a behaviour change in injection, retry or
            // recovery. The virtual-second costs compare like timings.
            if let (Some(bf), Some(cf)) = (br.get("fault"), cr.get("fault")) {
                d.report.compared += 1;
                if cf.get("clusters_match_fault_free").and_then(Json::as_bool) != Some(true) {
                    d.push(
                        &ctx,
                        "fault/clusters_match_fault_free",
                        1.0,
                        0.0,
                        Severity::Regression,
                        "recovery no longer reproduces the fault-free clustering".to_string(),
                    );
                }
                for key in [
                    "plan_seed",
                    "crashes",
                    "recoveries",
                    "drops_injected",
                    "retries",
                    "messages_lost",
                    "duplicates_injected",
                    "duplicates_discarded",
                    "reorders_injected",
                    "straggled_steps",
                    "recovery_comm_bytes",
                ] {
                    if let (Some(b), Some(c)) = (f(bf, key), f(cf, key)) {
                        d.work_metric(&ctx, &format!("fault/{key}"), b, c);
                    }
                }
                for key in [
                    "retry_delay_virtual_secs",
                    "recovery_compute_virtual_secs",
                    "recovery_comm_virtual_secs",
                    "recovery_virtual_secs",
                ] {
                    if let (Some(b), Some(c)) = (f(bf, key), f(cf, key)) {
                        d.time_metric(&ctx, &format!("fault/{key}"), b, c);
                    }
                }
            } else if br.get("fault").is_some() {
                d.push(
                    &ctx,
                    "fault",
                    1.0,
                    f64::NAN,
                    Severity::Regression,
                    "fault block missing from candidate".to_string(),
                );
            }

            // Histogram percentile blocks (schema v3): deterministic at
            // fixed n, so they compare like work metrics.
            if let (Some(bh), Some(ch)) = (
                br.get("histograms").and_then(Json::as_object),
                cr.get("histograms").and_then(Json::as_object),
            ) {
                for (key, bsum) in bh {
                    let Some(csum) = ch.iter().find(|(k, _)| k == key).map(|(_, v)| v) else {
                        d.push(
                            &ctx,
                            &format!("histograms/{key}"),
                            1.0,
                            f64::NAN,
                            Severity::Regression,
                            "histogram missing from candidate".to_string(),
                        );
                        continue;
                    };
                    // `recovery/compute_us` (Stopwatch-timed re-execution
                    // of the lost rank) and the serving arm's `serve/*_us`
                    // per-operation latencies are wall-clock histograms:
                    // their percentiles jitter run to run, so they compare
                    // like timings. Counts stay exact for every histogram.
                    let wall_clock = key == "recovery/compute_us"
                        || (key.starts_with("serve/") && key.ends_with("_us"));
                    for q in ["count", "p50", "p95", "p99", "max"] {
                        if let (Some(b), Some(c)) = (f(bsum, q), f(csum, q)) {
                            let metric = format!("histograms/{key}/{q}");
                            if wall_clock && q != "count" {
                                d.time_metric(&ctx, &metric, b, c);
                            } else {
                                d.work_metric_banded(&ctx, &metric, b, c, band);
                            }
                        }
                    }
                }
            }
        }
    }

    // Sharded arm (schema v9). The exactness bits — t1 ≡ t4, both ≡ the
    // in-memory run, the overlap ≡ the naive oracle — are fail-closed at
    // emission at every size, so they gate in every mode. The numeric
    // metrics only compare when both files ran the arm at the same
    // sharded `n` (its scale knob, `EMIT_BENCH_SHARDED_N`, is
    // independent of `points_per_workload`): timings with the timing
    // tolerance, plan-determined work (shard counts, halo sizes, edge
    // counts, cluster shapes) exactly. `peak_resident_bytes` is
    // deliberately not diffed — at t ≥ 2 the set of concurrently
    // resident shards depends on scheduling; the schema gate
    // (`budget_respected`) bounds it instead.
    if let (Some(bs), Some(cs)) = (baseline.get("sharded_scale"), candidate.get("sharded_scale")) {
        let ctx = "sharded_scale";
        d.report.compared += 1;
        if cs.get("identical_t1_t4").and_then(Json::as_bool) != Some(true) {
            d.push(
                ctx,
                "identical_t1_t4",
                1.0,
                0.0,
                Severity::Regression,
                "sharded t1 and t4 no longer bit-identical".to_string(),
            );
        }
        d.report.compared += 1;
        if cs
            .get("oracle_overlap")
            .and_then(|o| o.get("matches_oracle"))
            .and_then(Json::as_bool)
            != Some(true)
        {
            d.push(
                ctx,
                "oracle_overlap/matches_oracle",
                1.0,
                0.0,
                Severity::Regression,
                "sharded overlap run no longer matches the naive oracle".to_string(),
            );
        }
        let empty = Vec::new();
        let b_arms = bs.get("arms").and_then(Json::as_array).unwrap_or(&empty);
        let c_arms = cs.get("arms").and_then(Json::as_array).unwrap_or(&empty);
        let same_sharded_n = f(bs, "n").is_some() && f(bs, "n") == f(cs, "n");
        for ba in b_arms {
            let Some(label) = ba.get("label").and_then(Json::as_str) else { continue };
            let actx = format!("{ctx}/{label}");
            let Some(ca) =
                c_arms.iter().find(|a| a.get("label").and_then(Json::as_str) == Some(label))
            else {
                d.push(
                    &actx,
                    "arm",
                    1.0,
                    f64::NAN,
                    Severity::Regression,
                    "sharded arm missing from candidate".to_string(),
                );
                continue;
            };
            d.report.compared += 1;
            if ca.get("matches_in_memory").and_then(Json::as_bool) != Some(true) {
                d.push(
                    &actx,
                    "matches_in_memory",
                    1.0,
                    0.0,
                    Severity::Regression,
                    "sharded arm no longer matches the in-memory run".to_string(),
                );
            }
            if !same_sharded_n {
                continue;
            }
            for metric in ["makespan_secs", "wall_secs", "plan_secs", "merge_secs", "busy_max_secs"]
            {
                if let (Some(b), Some(c)) = (f(ba, metric), f(ca, metric)) {
                    d.time_metric(&actx, metric, b, c);
                }
            }
            for metric in ["n_shards", "halo_points", "edges", "clusters", "noise", "border_ties"]
            {
                if let (Some(b), Some(c)) = (f(ba, metric), f(ca, metric)) {
                    d.work_metric(&actx, metric, b, c);
                }
            }
        }
    } else if baseline.get("sharded_scale").is_some() {
        d.push(
            "sharded_scale",
            "sharded_scale",
            1.0,
            f64::NAN,
            Severity::Regression,
            "sharded_scale block missing from candidate".to_string(),
        );
    }

    // Instrumentation overhead: absolute percentage points, same-scale
    // only (tiny smoke runs make the percentage meaningless).
    if full {
        if let (Some(b), Some(c)) = (
            baseline.get("overhead").and_then(|o| f(o, "overhead_pct")),
            candidate.get("overhead").and_then(|o| f(o, "overhead_pct")),
        ) {
            d.report.compared += 1;
            if c > b + cfg.overhead_abs {
                d.push(
                    "overhead",
                    "overhead_pct",
                    b,
                    c,
                    Severity::Regression,
                    format!(
                        "instrumentation overhead grew {:.1} points (tolerance {:.1})",
                        c - b,
                        cfg.overhead_abs
                    ),
                );
            }
        }
    }

    Ok(d.report)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mini(n: f64, wall: f64, visits: f64, pct: f64) -> Json {
        Json::parse(&format!(
            r#"{{
              "schema_version": 3,
              "seed": 2019,
              "points_per_workload": {n},
              "workloads": [
                {{
                  "dataset": "W",
                  "runs": [
                    {{
                      "algorithm": "mudbscan_seq",
                      "exact": true,
                      "clusters": 7,
                      "noise": 20,
                      "wall_secs": {wall},
                      "pct_queries_saved": {pct},
                      "phases": {{"tree_construction": {wall}}},
                      "counters": {{"range_queries": 100, "queries_saved": 50,
                                    "dist_computations": 999, "node_visits": {visits},
                                    "union_ops": 42}},
                      "histograms": {{"query/node_visits": {{"count": 100, "p50": 8,
                                      "p95": 16, "p99": 24, "max": 32}}}}
                    }}
                  ]
                }}
              ],
              "overhead": {{"overhead_pct": 1.0}}
            }}"#
        ))
        .expect("valid mini trajectory")
    }

    #[test]
    fn identical_files_produce_no_findings() {
        let a = mini(1000.0, 0.5, 4000.0, 80.0);
        let rep = diff(&a, &a, &DiffConfig::default()).unwrap();
        assert!(!rep.has_regressions(), "{}", rep.render());
        assert!(rep.findings.is_empty());
        assert!(rep.compared > 5);
    }

    #[test]
    fn slowdown_beyond_tolerance_is_a_regression() {
        let base = mini(1000.0, 0.5, 4000.0, 80.0);
        let slow = mini(1000.0, 1.0, 4000.0, 80.0);
        let rep = diff(&base, &slow, &DiffConfig::default()).unwrap();
        assert!(rep.has_regressions());
        assert!(rep.regressions().iter().any(|f| f.metric == "wall_secs"));
        // And the mirror image is an improvement, not a regression.
        let rep2 = diff(&slow, &base, &DiffConfig::default()).unwrap();
        assert!(!rep2.has_regressions(), "{}", rep2.render());
        assert!(rep2.findings.iter().any(|f| f.severity == Severity::Improvement));
    }

    #[test]
    fn counter_drift_is_a_regression_in_both_directions() {
        let base = mini(1000.0, 0.5, 4000.0, 80.0);
        for drifted in [3990.0, 4010.0] {
            let cand = mini(1000.0, 0.5, drifted, 80.0);
            let rep = diff(&base, &cand, &DiffConfig::default()).unwrap();
            assert!(
                rep.regressions().iter().any(|f| f.metric == "counters/node_visits"),
                "drift to {drifted} must regress: {}",
                rep.render()
            );
        }
    }

    #[test]
    fn query_savings_drop_is_a_regression() {
        let base = mini(1000.0, 0.5, 4000.0, 80.0);
        let cand = mini(1000.0, 0.5, 4000.0, 60.0);
        let rep = diff(&base, &cand, &DiffConfig::default()).unwrap();
        assert!(rep.regressions().iter().any(|f| f.metric == "pct_queries_saved"));
    }

    #[test]
    fn scale_mismatch_requires_scale_free_mode() {
        let base = mini(4000.0, 0.5, 4000.0, 80.0);
        let small = mini(500.0, 0.1, 900.0, 78.0);
        assert!(diff(&base, &small, &DiffConfig::default()).is_err());
        let rep =
            diff(&base, &small, &DiffConfig { scale_free: true, ..DiffConfig::default() }).unwrap();
        assert!(!rep.has_regressions(), "{}", rep.render());
    }

    #[test]
    fn scale_free_still_gates_exactness_and_savings() {
        let base = mini(4000.0, 0.5, 4000.0, 80.0);
        let bad = mini(500.0, 0.1, 900.0, 40.0);
        let rep =
            diff(&base, &bad, &DiffConfig { scale_free: true, ..DiffConfig::default() }).unwrap();
        assert!(rep.regressions().iter().any(|f| f.metric == "pct_queries_saved"));
    }

    #[test]
    fn missing_run_is_a_regression() {
        let base = mini(1000.0, 0.5, 4000.0, 80.0);
        let mut cand = mini(1000.0, 0.5, 4000.0, 80.0);
        // Drop the only run from the candidate's workload.
        let workloads = cand.get("workloads").and_then(Json::as_array).unwrap();
        let mut w0 = workloads[0].clone();
        w0.set("runs", Json::Arr(Vec::new()));
        cand.set("workloads", Json::Arr(vec![w0]));
        let rep = diff(&base, &cand, &DiffConfig::default()).unwrap();
        assert!(rep.regressions().iter().any(|f| f.metric == "run"));
    }

    fn mini_with_fault(retries: f64, matches: bool) -> Json {
        let mut j = mini(1000.0, 0.5, 4000.0, 80.0);
        let fault = Json::parse(&format!(
            r#"{{"plan_seed": 2019, "crashes": 1, "recoveries": 1,
                 "drops_injected": 3, "retries": {retries}, "messages_lost": 0,
                 "duplicates_injected": 1, "duplicates_discarded": 1,
                 "reorders_injected": 1, "straggled_steps": 4,
                 "recovery_comm_bytes": 512,
                 "retry_delay_virtual_secs": 0.001,
                 "recovery_virtual_secs": 0.002,
                 "overhead_vs_fault_free_pct": 10.0,
                 "clusters_match_fault_free": {matches}}}"#
        ))
        .unwrap();
        let workloads = j.get("workloads").and_then(Json::as_array).unwrap();
        let mut w0 = workloads[0].clone();
        let runs = w0.get("runs").and_then(Json::as_array).unwrap();
        let mut r0 = runs[0].clone();
        r0.set("fault", fault);
        w0.set("runs", Json::Arr(vec![r0]));
        j.set("workloads", Json::Arr(vec![w0]));
        j
    }

    #[test]
    fn fault_signature_drift_is_a_regression() {
        let base = mini_with_fault(3.0, true);
        let rep = diff(&base, &base, &DiffConfig::default()).unwrap();
        assert!(!rep.has_regressions(), "{}", rep.render());

        let drifted = mini_with_fault(5.0, true);
        let rep = diff(&base, &drifted, &DiffConfig::default()).unwrap();
        assert!(rep.regressions().iter().any(|f| f.metric == "fault/retries"), "{}", rep.render());

        let broken = mini_with_fault(3.0, false);
        let rep = diff(&base, &broken, &DiffConfig::default()).unwrap();
        assert!(
            rep.regressions().iter().any(|f| f.metric == "fault/clusters_match_fault_free"),
            "{}",
            rep.render()
        );

        // Dropping the block entirely is a regression too.
        let plain = mini(1000.0, 0.5, 4000.0, 80.0);
        let rep = diff(&base, &plain, &DiffConfig::default()).unwrap();
        assert!(rep.regressions().iter().any(|f| f.metric == "fault"), "{}", rep.render());
    }

    /// Rewrite the mini trajectory's run label so its metrics compare as
    /// a thread-interleaved arm.
    fn as_interleaved(j: &Json) -> Json {
        Json::parse(&j.render().replace("mudbscan_seq", "par_mudbscan_t4")).unwrap()
    }

    #[test]
    fn interleaved_arm_query_drift_within_band_is_tolerated() {
        let base = as_interleaved(&mini(1000.0, 0.5, 4000.0, 80.0));
        // +1% node_visits drift: a behaviour change for the sequential
        // arm, scheduler noise for t4.
        let cand = as_interleaved(&mini(1000.0, 0.5, 4040.0, 80.0));
        let rep = diff(&base, &cand, &DiffConfig::default()).unwrap();
        assert!(!rep.has_regressions(), "{}", rep.render());

        // Beyond the band the gate still fires.
        let far = as_interleaved(&mini(1000.0, 0.5, 6000.0, 80.0));
        let rep = diff(&base, &far, &DiffConfig::default()).unwrap();
        assert!(
            rep.regressions().iter().any(|f| f.metric == "counters/node_visits"),
            "{}",
            rep.render()
        );

        // And cluster shapes stay exact even for interleaved arms.
        let text = as_interleaved(&mini(1000.0, 0.5, 4000.0, 80.0))
            .render()
            .replace("\"clusters\": 7", "\"clusters\": 8");
        let reshaped = Json::parse(&text).unwrap();
        let rep = diff(&base, &reshaped, &DiffConfig::default()).unwrap();
        assert!(rep.regressions().iter().any(|f| f.metric == "clusters"), "{}", rep.render());
    }

    /// A one-run trajectory shaped like the schema-v6 serving arm:
    /// trace-determined ops totals, wall-clock latency histograms, the
    /// batch-twin exactness bit.
    fn mini_serve(inserts: f64, query_p99: f64, matches: bool) -> Json {
        Json::parse(&format!(
            r#"{{
              "schema_version": 6,
              "seed": 2019,
              "points_per_workload": 1000,
              "workloads": [
                {{
                  "dataset": "W",
                  "runs": [
                    {{
                      "algorithm": "serve_traffic",
                      "exact": true,
                      "final_matches_batch": {matches},
                      "clusters": 5,
                      "noise": 12,
                      "epochs": 8,
                      "live_points": 860,
                      "wall_secs": 0.4,
                      "pct_queries_saved": 80.0,
                      "phases": {{"serve_replay": 0.4}},
                      "ops": {{"inserts": {inserts}, "deletes": 60,
                              "deletes_ignored": 6, "expiries": 74,
                              "rebuilds": 6, "reader_queries": 1000,
                              "reader_memberships": 1000, "reader_threads": 4}},
                      "counters": {{"range_queries": 100, "queries_saved": 50,
                                    "dist_computations": 999, "node_visits": 4000,
                                    "union_ops": 42}},
                      "histograms": {{"serve/query_us": {{"count": 1000, "p50": 4,
                                      "p95": 10, "p99": {query_p99}, "max": 40}}}}
                    }}
                  ]
                }}
              ],
              "overhead": {{"overhead_pct": 1.0}}
            }}"#
        ))
        .expect("valid mini serving trajectory")
    }

    #[test]
    fn serve_latencies_compare_as_timings_but_ops_compare_exactly() {
        let base = mini_serve(1000.0, 20.0, true);
        let rep = diff(&base, &base, &DiffConfig::default()).unwrap();
        assert!(!rep.has_regressions(), "{}", rep.render());

        // A 25% p99 latency bump is inside the 50% timing tolerance —
        // under the zero-tolerance work-metric contract it would fail.
        let jittered = mini_serve(1000.0, 25.0, true);
        let rep = diff(&base, &jittered, &DiffConfig::default()).unwrap();
        assert!(!rep.has_regressions(), "{}", rep.render());

        // Beyond the timing tolerance it is a regression again.
        let slow = mini_serve(1000.0, 80.0, true);
        let rep = diff(&base, &slow, &DiffConfig::default()).unwrap();
        assert!(
            rep.regressions().iter().any(|f| f.metric == "histograms/serve/query_us/p99"),
            "{}",
            rep.render()
        );

        // The trace-determined op totals stay zero-tolerance.
        let drifted = mini_serve(999.0, 20.0, true);
        let rep = diff(&base, &drifted, &DiffConfig::default()).unwrap();
        assert!(rep.regressions().iter().any(|f| f.metric == "ops/inserts"), "{}", rep.render());
    }

    #[test]
    fn serve_batch_twin_drift_is_a_regression_even_scale_free() {
        let base = mini_serve(1000.0, 20.0, true);
        let broken = mini_serve(1000.0, 20.0, false);
        for cfg in [DiffConfig::default(), DiffConfig { scale_free: true, ..DiffConfig::default() }]
        {
            let rep = diff(&base, &broken, &cfg).unwrap();
            assert!(
                rep.regressions().iter().any(|f| f.metric == "final_matches_batch"),
                "{}",
                rep.render()
            );
        }
    }

    /// Attach a schema-v9 `sharded_scale` block to the mini trajectory.
    fn with_sharded(n: f64, identical: bool, matches: bool, edges: f64) -> Json {
        let mut j = mini(1000.0, 0.5, 4000.0, 80.0);
        let block = Json::parse(&format!(
            r#"{{"dataset": "DGB", "n": {n}, "raw_bytes": 24000000,
                 "memory_budget_bytes": 12000000, "shards_requested": 8,
                 "identical_t1_t4": {identical}, "budget_respected": true,
                 "speedup_t1_t4": 3.4,
                 "oracle_overlap": {{"n": 10000, "matches_oracle": true}},
                 "arms": [
                   {{"label": "sharded_t1", "threads": 1, "n_shards": 8,
                     "makespan_secs": 30.0, "wall_secs": 31.0,
                     "plan_secs": 1.0, "merge_secs": 2.0, "busy_max_secs": 27.0,
                     "halo_points": 5000, "edges": {edges},
                     "clusters": 7, "noise": 20,
                     "matches_in_memory": {matches}}},
                   {{"label": "sharded_t4", "threads": 4, "n_shards": 16,
                     "makespan_secs": 9.0, "wall_secs": 31.0,
                     "plan_secs": 1.0, "merge_secs": 2.0, "busy_max_secs": 6.0,
                     "halo_points": 6000, "edges": {edges},
                     "clusters": 7, "noise": 20,
                     "matches_in_memory": true}}
                 ]}}"#
        ))
        .unwrap();
        j.set("sharded_scale", block);
        j
    }

    #[test]
    fn sharded_exactness_bits_gate_in_every_mode() {
        let base = with_sharded(1e6, true, true, 900.0);
        let rep = diff(&base, &base, &DiffConfig::default()).unwrap();
        assert!(!rep.has_regressions(), "{}", rep.render());

        for cfg in [DiffConfig::default(), DiffConfig { scale_free: true, ..DiffConfig::default() }]
        {
            let broken = with_sharded(1e6, false, true, 900.0);
            let rep = diff(&base, &broken, &cfg).unwrap();
            assert!(
                rep.regressions().iter().any(|f| f.metric == "identical_t1_t4"),
                "{}",
                rep.render()
            );
            let drifted = with_sharded(1e6, true, false, 900.0);
            let rep = diff(&base, &drifted, &cfg).unwrap();
            assert!(
                rep.regressions().iter().any(|f| f.metric == "matches_in_memory"),
                "{}",
                rep.render()
            );
        }

        // Dropping the block entirely is a regression.
        let rep = diff(&base, &mini(1000.0, 0.5, 4000.0, 80.0), &DiffConfig::default()).unwrap();
        assert!(rep.regressions().iter().any(|f| f.metric == "sharded_scale"), "{}", rep.render());
    }

    #[test]
    fn sharded_plan_metrics_diff_exactly_at_same_n_only() {
        let base = with_sharded(1e6, true, true, 900.0);
        // Same sharded n: an edge-count drift is a behaviour change.
        let drifted = with_sharded(1e6, true, true, 901.0);
        let rep = diff(&base, &drifted, &DiffConfig::default()).unwrap();
        assert!(rep.regressions().iter().any(|f| f.metric == "edges"), "{}", rep.render());
        // Different sharded n (the CI smoke job): numeric compare skips,
        // only the exactness bits gate.
        let smoke = with_sharded(5e4, true, true, 42.0);
        let rep = diff(&base, &smoke, &DiffConfig::default()).unwrap();
        assert!(!rep.has_regressions(), "{}", rep.render());
    }

    #[test]
    fn histogram_percentile_drift_is_a_regression() {
        let base = mini(1000.0, 0.5, 4000.0, 80.0);
        let mut cand = mini(1000.0, 0.5, 4000.0, 80.0);
        // Bump the p99 inside the candidate's histogram block.
        let text = cand.render().replace("\"p99\": 24", "\"p99\": 48");
        cand = Json::parse(&text).unwrap();
        let rep = diff(&base, &cand, &DiffConfig::default()).unwrap();
        assert!(
            rep.regressions().iter().any(|f| f.metric == "histograms/query/node_visits/p99"),
            "{}",
            rep.render()
        );
    }
}
