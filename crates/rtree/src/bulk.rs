//! Sort-Tile-Recursive (STR) bulk loading (Leutenegger et al., ICDE'97).
//!
//! The auxiliary R-trees of the μR-tree are built *after* micro-cluster
//! membership is final, so their point sets are static — STR packs them
//! into near-100 %-full leaves with low overlap, which is both faster to
//! build and faster to query than repeated insertion. The incremental vs
//! STR choice is one of the ablation benches.

use crate::node::{Entry, LeafData, Node};
use crate::tree::{RTree, RTreeConfig};
use geom::Mbr;

impl RTree {
    /// Build a tree from a static entry set using STR packing.
    pub fn bulk_load(dim: usize, cfg: RTreeConfig, mut entries: Vec<Entry>) -> RTree {
        let _span = obs::span!("rtree_bulk_load");
        let mut tree = RTree::with_config(dim, cfg);
        if entries.is_empty() {
            return tree;
        }
        let len = entries.len();
        str_order(&mut entries, 0, dim, cfg.max_entries);

        // Pack leaves. Blocks get the same capacity insertion-built leaves
        // use (max + 1) so later incremental pushes behave identically.
        let leaf_cap = tree.leaf_cap();
        let mut level: Vec<u32> = Vec::with_capacity(entries.len() / cfg.max_entries + 1);
        let mut iter = entries.into_iter().peekable();
        while iter.peek().is_some() {
            let mut buf: Vec<Entry> = Vec::with_capacity(cfg.max_entries);
            while buf.len() < cfg.max_entries {
                match iter.next() {
                    Some(e) => buf.push(e),
                    None => break,
                }
            }
            let mbr = mbr_of(&buf);
            let id = tree.nodes.len() as u32;
            tree.nodes.push(Node::Leaf { mbr, data: LeafData::from_entries(dim, leaf_cap, buf) });
            level.push(id);
        }
        let mut height = 1;

        // Pack internal levels until a single root remains.
        while level.len() > 1 {
            let mut next = Vec::with_capacity(level.len() / cfg.max_entries + 1);
            for chunk in level.chunks(cfg.max_entries) {
                let mut m = tree.nodes[chunk[0] as usize].mbr().clone();
                for &c in &chunk[1..] {
                    m.merge(tree.nodes[c as usize].mbr());
                }
                let id = tree.nodes.len() as u32;
                tree.nodes.push(Node::Internal { mbr: m, children: chunk.to_vec() });
                next.push(id);
            }
            level = next;
            height += 1;
        }

        tree.root = Some(level[0]);
        tree.len = len;
        tree.height = height;
        if obs::enabled() {
            obs::record_count("rtree/bulk_loaded_entries", len as u64);
            obs::record_count("rtree/bulk_loaded_nodes", tree.nodes.len() as u64);
            // Distribution of bulk-load sizes: one sample per tree, so the
            // μR-tree's many small auxiliary trees vs the one level-1 tree
            // show up as separate modes.
            obs::record_hist("rtree/bulk_load_entries", len as u64);
        }
        tree
    }

    /// Bulk load point items from `(item, coords)` pairs.
    pub fn bulk_load_points(
        dim: usize,
        cfg: RTreeConfig,
        points: impl IntoIterator<Item = (u32, Vec<f64>)>,
    ) -> RTree {
        let entries = points
            .into_iter()
            .map(|(item, coords)| Entry { mbr: Mbr::point(&coords), item })
            .collect();
        RTree::bulk_load(dim, cfg, entries)
    }
}

/// Recursively order entries by STR tiling so that consecutive runs of
/// `leaf_cap` entries are spatially coherent.
fn str_order(entries: &mut [Entry], axis: usize, dim: usize, leaf_cap: usize) {
    if entries.len() <= leaf_cap || axis >= dim {
        return;
    }
    entries.sort_by(|a, b| {
        a.mbr.center(axis).partial_cmp(&b.mbr.center(axis)).unwrap_or(std::cmp::Ordering::Equal)
    });
    if axis + 1 == dim {
        return;
    }
    // Number of slabs along this axis: ceil(P^(1/r)) with P = #leaves,
    // r = remaining axes.
    let p = entries.len().div_ceil(leaf_cap);
    let r = (dim - axis) as f64;
    let slabs = (p as f64).powf(1.0 / r).ceil() as usize;
    let slab_size = entries.len().div_ceil(slabs.max(1));
    for chunk in entries.chunks_mut(slab_size.max(1)) {
        str_order(chunk, axis + 1, dim, leaf_cap);
    }
}

fn mbr_of(entries: &[Entry]) -> Mbr {
    let mut it = entries.iter();
    let mut m = it.next().expect("leaf cannot be empty").mbr.clone();
    for e in it {
        m.merge(&e.mbr);
    }
    m
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pts(n: usize) -> Vec<(u32, Vec<f64>)> {
        // Deterministic pseudo-random 3-d points.
        (0..n as u32)
            .map(|i| {
                let h = |k: u32| {
                    let x = i.wrapping_mul(2654435761).wrapping_add(k.wrapping_mul(40503));
                    (x % 10_000) as f64 / 100.0
                };
                (i, vec![h(1), h(2), h(3)])
            })
            .collect()
    }

    #[test]
    fn bulk_load_valid_and_complete() {
        let points = pts(1000);
        let t = RTree::bulk_load_points(3, RTreeConfig::default(), points.clone());
        assert_eq!(t.len(), 1000);
        t.check_invariants();
        let mut seen = vec![false; 1000];
        t.for_each_item(|i, _| seen[i as usize] = true);
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn bulk_load_empty() {
        let t = RTree::bulk_load(2, RTreeConfig::default(), Vec::new());
        assert!(t.is_empty());
        t.check_invariants();
    }

    #[test]
    fn bulk_load_single_leaf() {
        let points = pts(10);
        let t = RTree::bulk_load_points(3, RTreeConfig::default(), points);
        assert_eq!(t.height(), 1);
        t.check_invariants();
    }

    #[test]
    fn bulk_matches_incremental_queries() {
        let points = pts(500);
        let bulk = RTree::bulk_load_points(3, RTreeConfig::default(), points.clone());
        let mut incr = RTree::new(3);
        for (i, p) in &points {
            incr.insert_point(*i, p);
        }
        for qi in [0usize, 123, 499] {
            let q = &points[qi].1;
            for r in [5.0, 17.0] {
                let mut a = bulk.sphere_neighbors(q, r);
                let mut b = incr.sphere_neighbors(q, r);
                a.sort_unstable();
                b.sort_unstable();
                assert_eq!(a, b);
            }
        }
    }

    #[test]
    fn bulk_leaves_are_packed() {
        let points = pts(1024);
        let cfg = RTreeConfig::default();
        let t = RTree::bulk_load_points(3, cfg, points);
        // STR should produce close to n / max_entries leaves.
        let min_possible = 1024usize.div_ceil(cfg.max_entries);
        let mut leaves = 0usize;
        for id in 0..t.node_count() as u32 {
            // count by walking items per leaf through for_each on nodes —
            // approximate: count nodes with entries via invariant walk.
            let _ = id;
        }
        // Structural proxy: total node count should be small.
        leaves += t.node_count();
        assert!(leaves <= 2 * min_possible + 4, "too many nodes: {leaves}");
    }
}
