//! Clustering output representation and the exactness checker.
//!
//! "Exact clustering" in the paper means: same set of core points, same
//! core-point→cluster membership, and same number of clusters as
//! classical DBSCAN ([§III]); noise is also order-independent, so we check
//! it too. Border-point→cluster assignment *is* order-dependent in DBSCAN
//! itself, so the checker only requires each border point to be assigned
//! to a cluster containing a core point strictly within ε of it.

use geom::{within_sq, Dataset, DbscanParams, PointId};
use unionfind::UnionFind;

/// Cluster label of a noise point.
pub const NOISE: u32 = u32::MAX;

/// The result of any DBSCAN-family algorithm in this workspace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Clustering {
    /// Per point: dense cluster id in `0..n_clusters`, or [`NOISE`].
    pub labels: Vec<u32>,
    /// Per point: true when the point is a core point.
    pub is_core: Vec<bool>,
    /// Number of clusters.
    pub n_clusters: usize,
}

impl Clustering {
    /// Extract a clustering from a union–find forest plus core flags.
    ///
    /// A set is a cluster iff it contains at least one core point; all
    /// other points are noise. Cluster ids are densely numbered in order
    /// of first member appearance, which makes the representation
    /// canonical (independent of which point became the set root).
    pub fn from_union_find(uf: &mut UnionFind, is_core: Vec<bool>) -> Self {
        let n = uf.len();
        assert_eq!(is_core.len(), n);
        let mut root_has_core = vec![false; n];
        for p in 0..n as u32 {
            if is_core[p as usize] {
                root_has_core[uf.find(p) as usize] = true;
            }
        }
        let mut label_of_root = vec![NOISE; n];
        let mut labels = vec![NOISE; n];
        let mut next = 0u32;
        for p in 0..n as u32 {
            let r = uf.find(p) as usize;
            if !root_has_core[r] {
                continue; // noise
            }
            if label_of_root[r] == NOISE {
                label_of_root[r] = next;
                next += 1;
            }
            labels[p as usize] = label_of_root[r];
        }
        Self { labels, is_core, n_clusters: next as usize }
    }

    /// Number of points.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// True when the clustering covers no points.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// True when point `p` is noise.
    pub fn is_noise(&self, p: PointId) -> bool {
        self.labels[p as usize] == NOISE
    }

    /// True when point `p` is a border point (in a cluster but not core).
    pub fn is_border(&self, p: PointId) -> bool {
        !self.is_noise(p) && !self.is_core[p as usize]
    }

    /// Number of noise points.
    pub fn noise_count(&self) -> usize {
        self.labels.iter().filter(|&&l| l == NOISE).count()
    }

    /// Number of core points.
    pub fn core_count(&self) -> usize {
        self.is_core.iter().filter(|&&c| c).count()
    }

    /// Cluster sizes indexed by cluster id.
    pub fn cluster_sizes(&self) -> Vec<usize> {
        let mut sizes = vec![0usize; self.n_clusters];
        for &l in &self.labels {
            if l != NOISE {
                sizes[l as usize] += 1;
            }
        }
        sizes
    }
}

/// Outcome of comparing a candidate clustering against a reference.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExactnessReport {
    /// Candidate and reference agree on the set of core points.
    pub same_core_set: bool,
    /// Core points are partitioned into clusters identically (up to
    /// cluster renumbering).
    pub same_core_partition: bool,
    /// Candidate and reference agree on the set of noise points.
    pub same_noise_set: bool,
    /// Every border point's cluster contains a core point strictly within
    /// ε of it (checked on the candidate).
    pub borders_valid: bool,
}

impl ExactnessReport {
    /// All four criteria hold.
    pub fn is_exact(&self) -> bool {
        self.same_core_set && self.same_core_partition && self.same_noise_set && self.borders_valid
    }
}

/// Compare `candidate` against `reference` under the paper's exactness
/// definition. `data`/`params` are needed for the border-validity check.
pub fn check_exact(
    candidate: &Clustering,
    reference: &Clustering,
    data: &Dataset,
    params: &DbscanParams,
) -> ExactnessReport {
    assert_eq!(candidate.len(), reference.len());
    let n = candidate.len();

    let same_core_set = candidate.is_core == reference.is_core;

    // Core partition: the label pairs (cand, ref) over core points must
    // form a bijection.
    let mut same_core_partition = candidate.n_clusters == reference.n_clusters;
    if same_core_partition {
        let mut fwd = vec![NOISE; candidate.n_clusters];
        let mut bwd = vec![NOISE; reference.n_clusters];
        for p in 0..n {
            if !(candidate.is_core[p] && reference.is_core[p]) {
                continue;
            }
            let a = candidate.labels[p];
            let b = reference.labels[p];
            if a == NOISE || b == NOISE {
                same_core_partition = false; // a core point must be clustered
                break;
            }
            if fwd[a as usize] == NOISE {
                fwd[a as usize] = b;
            } else if fwd[a as usize] != b {
                same_core_partition = false;
                break;
            }
            if bwd[b as usize] == NOISE {
                bwd[b as usize] = a;
            } else if bwd[b as usize] != a {
                same_core_partition = false;
                break;
            }
        }
    }

    let same_noise_set =
        (0..n).all(|p| candidate.is_noise(p as u32) == reference.is_noise(p as u32));

    let borders_valid = (0..n as u32).all(|p| {
        if !candidate.is_border(p) {
            return true;
        }
        let lp = candidate.labels[p as usize];
        let pc = data.point(p);
        (0..n as u32).any(|q| {
            candidate.is_core[q as usize]
                && candidate.labels[q as usize] == lp
                && within_sq(pc, data.point(q), params.eps_sq())
        })
    });

    ExactnessReport { same_core_set, same_core_partition, same_noise_set, borders_valid }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn extraction_from_union_find() {
        let mut uf = UnionFind::new(6);
        uf.union(0, 1);
        uf.union(1, 2); // cluster with core 0
        uf.union(3, 4); // no core -> noise
        let is_core = vec![true, false, false, false, false, false];
        let c = Clustering::from_union_find(&mut uf, is_core);
        assert_eq!(c.n_clusters, 1);
        assert_eq!(c.labels[0], 0);
        assert_eq!(c.labels[1], 0);
        assert_eq!(c.labels[2], 0);
        assert!(c.is_noise(3) && c.is_noise(4) && c.is_noise(5));
        assert!(c.is_border(1));
        assert!(!c.is_border(0));
        assert_eq!(c.noise_count(), 3);
        assert_eq!(c.core_count(), 1);
        assert_eq!(c.cluster_sizes(), vec![3]);
    }

    #[test]
    fn labels_are_canonical_across_root_choice() {
        // Two forests with different union orders must give equal labels.
        let is_core = vec![true, true, false];
        let mut uf1 = UnionFind::new(3);
        uf1.union(0, 1);
        uf1.union(1, 2);
        let mut uf2 = UnionFind::new(3);
        uf2.union(2, 1);
        uf2.union(1, 0);
        let c1 = Clustering::from_union_find(&mut uf1, is_core.clone());
        let c2 = Clustering::from_union_find(&mut uf2, is_core);
        assert_eq!(c1, c2);
    }

    fn line_data() -> (Dataset, DbscanParams) {
        // 0-1-2 clustered, 3 far away.
        (
            Dataset::from_rows(&[vec![0.0], vec![0.4], vec![0.8], vec![10.0]]),
            DbscanParams::new(0.5, 2),
        )
    }

    #[test]
    fn exactness_accepts_identical() {
        let (data, params) = line_data();
        let mut uf = UnionFind::new(4);
        uf.union(0, 1);
        uf.union(1, 2);
        let is_core = vec![true, true, true, false];
        let c = Clustering::from_union_find(&mut uf, is_core);
        let rep = check_exact(&c, &c.clone(), &data, &params);
        assert!(rep.is_exact(), "{rep:?}");
    }

    #[test]
    fn exactness_rejects_core_mismatch() {
        let (data, params) = line_data();
        let a = Clustering {
            labels: vec![0, 0, 0, NOISE],
            is_core: vec![true, true, true, false],
            n_clusters: 1,
        };
        let mut b = a.clone();
        b.is_core[2] = false;
        let rep = check_exact(&a, &b, &data, &params);
        assert!(!rep.same_core_set);
        assert!(!rep.is_exact());
    }

    #[test]
    fn exactness_rejects_split_cluster() {
        let (data, params) = line_data();
        let a = Clustering {
            labels: vec![0, 0, 1, NOISE],
            is_core: vec![true, true, true, false],
            n_clusters: 2,
        };
        let b = Clustering {
            labels: vec![0, 0, 0, NOISE],
            is_core: vec![true, true, true, false],
            n_clusters: 1,
        };
        let rep = check_exact(&a, &b, &data, &params);
        assert!(!rep.same_core_partition);
    }

    #[test]
    fn exactness_rejects_bogus_border_assignment() {
        // Border point 3 assigned to a cluster with no core within eps.
        let data = Dataset::from_rows(&[vec![0.0], vec![0.4], vec![5.0], vec![5.4], vec![0.6]]);
        let params = DbscanParams::new(0.5, 2);
        // Clusters: {0,1,4} and {2,3}; claim 4 belongs to cluster 1 (far).
        let a = Clustering {
            labels: vec![0, 0, 1, 1, 1],
            is_core: vec![true, true, true, true, false],
            n_clusters: 2,
        };
        let b = Clustering {
            labels: vec![0, 0, 1, 1, 0],
            is_core: vec![true, true, true, true, false],
            n_clusters: 2,
        };
        let rep = check_exact(&a, &b, &data, &params);
        assert!(!rep.borders_valid);
        let rep_ok = check_exact(&b, &b.clone(), &data, &params);
        assert!(rep_ok.is_exact());
    }

    #[test]
    fn exactness_rejects_noise_mismatch() {
        let (data, params) = line_data();
        let a = Clustering {
            labels: vec![0, 0, 0, NOISE],
            is_core: vec![true, true, true, false],
            n_clusters: 1,
        };
        let b = Clustering {
            labels: vec![0, 0, 0, 0],
            is_core: vec![true, true, true, false],
            n_clusters: 1,
        };
        let rep = check_exact(&a, &b, &data, &params);
        assert!(!rep.same_noise_set);
    }
}
