//! OPTICS demo: one cluster ordering, many DBSCAN clusterings.
//!
//! Computes the OPTICS ordering of a mixed-density dataset, renders the
//! reachability plot (the classic "valleys are clusters" picture) to an
//! SVG, and extracts exact DBSCAN clusterings at two different radii
//! from the same ordering.
//!
//! ```text
//! cargo run --release --example reachability_plot
//! # -> target/reachability_plot.svg
//! ```

use geom::{Dataset, DbscanParams};
use mudbscan_repro::prelude::*;
use optics::{extract_dbscan, Optics};
use std::io::Write;

fn mixed_density(seed: u64) -> Dataset {
    let mut s = seed;
    let mut r = move || {
        s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        ((s >> 33) as f64 / (1u64 << 31) as f64) - 1.0
    };
    let mut rows = Vec::new();
    // A tight blob, a loose blob, and background noise: only OPTICS shows
    // both density levels at once.
    for _ in 0..300 {
        rows.push(vec![0.0 + 0.3 * r(), 0.0 + 0.3 * r()]);
    }
    for _ in 0..300 {
        rows.push(vec![6.0 + 1.2 * r(), 1.0 + 1.2 * r()]);
    }
    for _ in 0..80 {
        rows.push(vec![10.0 * r() + 3.0, 10.0 * r()]);
    }
    Dataset::from_rows(&rows)
}

fn main() {
    let data = mixed_density(99);
    let gen_params = DbscanParams::new(2.0, 5);
    let out = Optics::from_params(gen_params).run(&data);

    println!("OPTICS ordering of {} points (generating eps = {})", data.len(), gen_params.eps);

    // Reachability plot -> SVG polyline.
    let (w, h) = (900.0f64, 300.0f64);
    let cap = 2.0 * gen_params.eps; // plot ceiling for infinite reach
    let path = std::path::Path::new("target/reachability_plot.svg");
    {
        let mut f = std::io::BufWriter::new(std::fs::File::create(path).unwrap());
        writeln!(
            f,
            r#"<svg xmlns="http://www.w3.org/2000/svg" width="{w}" height="{h}" viewBox="0 0 {w} {h}">"#
        )
        .unwrap();
        writeln!(f, r#"<rect width="100%" height="100%" fill="white"/>"#).unwrap();
        let n = out.order.len() as f64;
        for (i, &p) in out.order.iter().enumerate() {
            let reach = out.reachability[p as usize].min(cap);
            let bar = (reach / cap) * (h - 20.0);
            let x = 10.0 + (i as f64 / n) * (w - 20.0);
            let bw = ((w - 20.0) / n).max(0.5);
            writeln!(
                f,
                r##"<rect x="{x:.1}" y="{:.1}" width="{bw:.2}" height="{bar:.1}" fill="#4e79a7"/>"##,
                h - 10.0 - bar
            )
            .unwrap();
        }
        writeln!(f, "</svg>").unwrap();
    }
    println!("reachability plot written to {}", path.display());

    // One ordering, two exact DBSCAN clusterings.
    for eps_prime in [0.4, 1.6] {
        let c = extract_dbscan(&out, &data, eps_prime);
        let params = DbscanParams::new(eps_prime, gen_params.min_pts);
        let reference = naive_dbscan(&data, &params);
        let exact = check_exact(&c, &reference, &data, &params).is_exact();
        println!(
            "extract at eps' = {eps_prime}: {} clusters, {} noise — exact vs direct DBSCAN: {}",
            c.n_clusters,
            c.noise_count(),
            if exact { "✓" } else { "✗" }
        );
        assert!(exact);
    }
    println!("\nthe tight blob appears at BOTH radii; the loose blob only at eps' = 1.6");
}
