//! SoA kernel equivalence: the batched column-major distance kernel used
//! at point leaves must be **bit-identical** to the per-point scalar
//! fallback — same labels, same core flags, same operation counters,
//! same `query/*` histograms — for every Runner family.
//!
//! Why this holds by construction (and what the test pins): both kernels
//! accumulate the squared distance over dimensions in the same ascending
//! order per point, so every `f64` they produce is the same bit pattern;
//! pruning decisions, emission order and all accounting then agree
//! exactly. A regression in either kernel (reordered accumulation, FMA
//! contraction, a wrong stride) shows up here as a bitwise diff long
//! before it becomes a visible clustering difference.
//!
//! The switch is `rtree::force_scalar_leaf_eval` — process-global, so
//! the whole compare runs under one lock together with the obs windows.

use conformance::{DatasetSpec, Family as DataFamily, FAMILIES};
use geom::{Dataset, DbscanParams};
use mudbscan::prelude::{Family, Runner};
use mudbscan::Clustering;
use obs::Histogram;
use proptest::prelude::*;
use std::sync::Mutex;

/// The obs collector and the scalar-kernel switch are process-global:
/// serialize every measured window.
static OBS_LOCK: Mutex<()> = Mutex::new(());

/// Everything a run observably produces.
#[derive(Debug, PartialEq)]
struct Fingerprint {
    clustering: Clustering,
    /// (node_visits, range_queries, queries_saved, dist_computations,
    /// union_ops).
    counters: (u64, u64, u64, u64, u64),
    hists: Vec<(String, Histogram)>,
}

/// Run `runner` with the leaf-evaluation kernel pinned to `scalar`,
/// capturing clustering, counters and histograms. Caller must hold
/// `OBS_LOCK`.
fn fingerprint(runner: &Runner, data: &Dataset, scalar: bool) -> Fingerprint {
    rtree::force_scalar_leaf_eval(scalar);
    obs::disable_tracing();
    obs::disable();
    obs::reset();
    obs::enable();
    let out = runner.run(data).expect("run failed");
    obs::disable();
    rtree::force_scalar_leaf_eval(false);
    let mut hists = obs::take_report().hists;
    hists.sort_by(|(a, _), (b, _)| a.cmp(b));
    Fingerprint {
        clustering: out.clustering,
        counters: (
            out.counters.node_visits(),
            out.counters.range_queries(),
            out.counters.queries_saved(),
            out.counters.dist_computations(),
            out.counters.union_ops(),
        ),
        hists,
    }
}

/// The five Runner families, each in a deterministic configuration
/// (parallel pinned to one worker — at t=1 there is no interleaving, so
/// any scalar/batched diff is attributable to the kernels alone).
fn runners(params: DbscanParams) -> Vec<(&'static str, Runner)> {
    vec![
        ("sequential", Runner::new(params)),
        ("parallel-t1", Runner::new(params).family(Family::Parallel)),
        ("distributed-p2", Runner::new(params).ranks(2)),
        ("streaming", Runner::new(params).family(Family::Streaming)),
        ("optics", Runner::new(params).family(Family::Optics)),
    ]
}

fn check_case(
    test: &str,
    family: DataFamily,
    n: usize,
    dim: usize,
    seed: u64,
    eps: f64,
    min_pts: usize,
) -> Result<(), TestCaseError> {
    let spec = DatasetSpec { family, n, dim, seed };
    let data = Dataset::from_rows(&spec.rows());
    let params = DbscanParams::new(eps, min_pts);

    let _guard = OBS_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    for (label, runner) in runners(params) {
        let scalar = fingerprint(&runner, &data, true);
        let batched = fingerprint(&runner, &data, false);
        prop_assert_eq!(
            &scalar.clustering,
            &batched.clustering,
            "{}/{}: clustering drifted between scalar and batched kernels",
            test,
            label
        );
        prop_assert_eq!(
            scalar.counters,
            batched.counters,
            "{}/{}: counters drifted between scalar and batched kernels",
            test,
            label
        );
        prop_assert_eq!(
            &scalar.hists,
            &batched.hists,
            "{}/{}: histograms drifted between scalar and batched kernels",
            test,
            label
        );
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn blobs_soa_equivalence(seed in 0u64..u64::MAX / 2, n in 8usize..80, dim in 1usize..9,
                             eps_steps in 1usize..12, min_pts in 1usize..8) {
        check_case("blobs_soa", DataFamily::Blobs, n, dim, seed,
                   eps_steps as f64 * 0.15, min_pts)?;
    }

    #[test]
    fn uniform_soa_equivalence(seed in 0u64..u64::MAX / 2, n in 8usize..80, dim in 1usize..9,
                               eps_steps in 1usize..12, min_pts in 1usize..8) {
        check_case("uniform_soa", DataFamily::Uniform, n, dim, seed,
                   eps_steps as f64 * 0.15, min_pts)?;
    }

    #[test]
    fn chains_soa_equivalence(seed in 0u64..u64::MAX / 2, n in 8usize..80, dim in 1usize..9,
                              eps_steps in 1usize..12, min_pts in 1usize..8) {
        check_case("chains_soa", DataFamily::Chains, n, dim, seed,
                   eps_steps as f64 * 0.15, min_pts)?;
    }

    #[test]
    fn duplicates_soa_equivalence(seed in 0u64..u64::MAX / 2, n in 8usize..80, dim in 1usize..9,
                                  eps_steps in 1usize..12, min_pts in 1usize..8) {
        check_case("duplicates_soa", DataFamily::Duplicates, n, dim, seed,
                   eps_steps as f64 * 0.15, min_pts)?;
    }

    #[test]
    fn mixed_soa_equivalence(seed in 0u64..u64::MAX / 2, n in 8usize..80, dim in 1usize..9,
                             eps_steps in 1usize..12, min_pts in 1usize..8) {
        check_case("mixed_soa", DataFamily::Mixed, n, dim, seed,
                   eps_steps as f64 * 0.15, min_pts)?;
    }
}

/// Deterministic anchor: every dimension 1..=8 and every dataset family
/// on a fixed seed, so the full dim sweep runs on every CI pass (the
/// proptest cases above sample dims randomly).
#[test]
fn soa_equivalence_all_dims_fixed_seed() {
    for dim in 1..=8usize {
        for family in FAMILIES {
            check_case("fixed_seed", family, 48, dim, 0xB0A + dim as u64, 0.6, 4)
                .unwrap_or_else(|e| panic!("dim {dim} {}: {e}", family.as_str()));
        }
    }
}
