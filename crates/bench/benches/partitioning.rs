//! Ablation: kd-tree partitioning (median splits, μDBSCAN-D) vs
//! HPDBSCAN-style cell-block partitioning — cost and halo volume.

use cluster_sim::{CommModel, ExecMode};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dist::hpdbscan::cell_partition;
use partition::kd_partition;
use std::hint::black_box;

fn bench_partitioning(c: &mut Criterion) {
    let dataset = data::galaxy(30_000, 3, 17);
    let eps = 0.8;

    let mut g = c.benchmark_group("partitioning");
    for p in [8usize, 32] {
        g.bench_function(BenchmarkId::new("kd_tree", p), |b| {
            b.iter(|| {
                let out =
                    kd_partition(&dataset, p, eps, ExecMode::Sequential, CommModel::default());
                black_box(out.shards.iter().map(|s| s.halo_ids.len()).sum::<usize>())
            })
        });
        g.bench_function(BenchmarkId::new("cell_blocks", p), |b| {
            b.iter(|| {
                let (shards, _) = cell_partition(&dataset, p, eps);
                black_box(shards.iter().map(|s| s.halo_ids.len()).sum::<usize>())
            })
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_partitioning
}
criterion_main!(benches);
