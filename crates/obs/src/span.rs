//! The span collector: a process-global switch, a thread-local span
//! stack, and mutex-protected aggregation maps.
//!
//! Design constraints (in priority order):
//!
//! 1. **Zero-cost when off.** Every entry point loads one relaxed
//!    `AtomicBool` and returns; no allocation, no lock, no clock read.
//!    Library code can therefore stay permanently instrumented.
//! 2. **Behaviour-neutral.** Instrumentation only reads clocks and writes
//!    to its own maps — it never touches algorithm state. The
//!    `conformance` crate pins this with a differential test (identical
//!    clustering with collection on and off).
//! 3. **Thread-safe.** Spans may be opened and dropped on any thread; the
//!    aggregation maps are shared behind a [`Mutex`]. Spans are
//!    *phase-level* (coarse), so the lock is uncontended in practice —
//!    the measured overhead on the repro_table2 workload is recorded in
//!    EXPERIMENTS.md.
//!
//! Hierarchy comes from a thread-local stack of open span names: a span
//! opened while another is open on the *same thread* is charged to the
//! slash-joined path (`"mudbscan/tree_construction/aux_trees"`). Spans
//! opened on freshly spawned worker threads start a new root — worker
//! phases therefore appear as their own top-level paths, which is what
//! the per-rank/per-thread breakdowns want anyway.

use crate::report::{Report, SpanStat};
use std::cell::RefCell;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;
use std::time::Instant;

static ENABLED: AtomicBool = AtomicBool::new(false);

/// The global aggregation state. One mutex guards all three maps: span
/// drops, counter adds and value adds are all phase-level events.
struct Collector {
    spans: HashMap<String, SpanStat>,
    counts: HashMap<String, u64>,
    values: HashMap<String, f64>,
}

impl Collector {
    fn new() -> Self {
        Self { spans: HashMap::new(), counts: HashMap::new(), values: HashMap::new() }
    }
}

static COLLECTOR: std::sync::LazyLock<Mutex<Collector>> =
    std::sync::LazyLock::new(|| Mutex::new(Collector::new()));

thread_local! {
    /// Names of the spans currently open on this thread, outermost first.
    static STACK: RefCell<Vec<&'static str>> = const { RefCell::new(Vec::new()) };
}

/// Turn collection on. Instrumented code starts recording at the next
/// span/record call; spans already open keep their (pre-enable) path.
pub fn enable() {
    ENABLED.store(true, Ordering::Relaxed);
}

/// Turn collection off. Spans currently open will still record on drop
/// (they captured their start when opened); new ones become no-ops.
pub fn disable() {
    ENABLED.store(false, Ordering::Relaxed);
}

/// Whether collection is currently on. Callers that must *build* data to
/// record (format a name, compute a byte count) should check this first.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Discard all collected data (spans, counts, values). Open spans will
/// still record on drop.
pub fn reset() {
    let mut c = COLLECTOR.lock().expect("obs collector poisoned");
    c.spans.clear();
    c.counts.clear();
    c.values.clear();
}

/// Swap the collected data out into a [`Report`], leaving the collector
/// empty. The enabled flag is not changed.
pub fn take_report() -> Report {
    let mut c = COLLECTOR.lock().expect("obs collector poisoned");
    let mut spans: Vec<(String, SpanStat)> = c.spans.drain().collect();
    let mut counts: Vec<(String, u64)> = c.counts.drain().collect();
    let mut values: Vec<(String, f64)> = c.values.drain().collect();
    spans.sort_by(|a, b| a.0.cmp(&b.0));
    counts.sort_by(|a, b| a.0.cmp(&b.0));
    values.sort_by(|a, b| a.0.cmp(&b.0));
    Report { spans, counts, values }
}

/// Add `n` to the named monotone counter. No-op while disabled.
///
/// ```
/// obs::reset();
/// obs::enable();
/// obs::record_count("mc_dense", 3);
/// obs::record_count("mc_dense", 4);
/// obs::disable();
/// assert_eq!(obs::take_report().count("mc_dense"), 7);
/// ```
pub fn record_count(name: &str, n: u64) {
    if !enabled() {
        return;
    }
    let mut c = COLLECTOR.lock().expect("obs collector poisoned");
    *c.counts.entry(name.to_string()).or_insert(0) += n;
}

/// Add `v` to the named additive value (virtual seconds, ratios, bytes
/// that want to stay fractional). No-op while disabled.
pub fn record_value(name: &str, v: f64) {
    if !enabled() {
        return;
    }
    let mut c = COLLECTOR.lock().expect("obs collector poisoned");
    *c.values.entry(name.to_string()).or_insert(0.0) += v;
}

/// An open phase span. Created by [`span`] / the `span!` macro; records
/// its wall-clock duration under its hierarchical path when dropped.
///
/// The guard is intentionally not `Send`: a span must be dropped on the
/// thread that opened it, because the hierarchy lives in a thread-local
/// stack.
#[must_use = "binding to `_` drops the span immediately; use `let _s = span(..)`"]
#[derive(Debug)]
pub struct Span {
    /// `None` when collection was disabled at open time (no-op guard).
    start: Option<Instant>,
    /// Marker making the type `!Send` (raw pointers are not `Send`).
    _not_send: std::marker::PhantomData<*const ()>,
}

/// Open a phase span named `name`, nested under the spans currently open
/// on this thread. See the crate docs for an example.
pub fn span(name: &'static str) -> Span {
    if !enabled() {
        return Span { start: None, _not_send: std::marker::PhantomData };
    }
    STACK.with(|s| s.borrow_mut().push(name));
    Span { start: Some(Instant::now()), _not_send: std::marker::PhantomData }
}

impl Drop for Span {
    fn drop(&mut self) {
        let Some(start) = self.start else { return };
        let secs = start.elapsed().as_secs_f64();
        let path = STACK.with(|s| {
            let mut stack = s.borrow_mut();
            let path = stack.join("/");
            stack.pop();
            path
        });
        let mut c = COLLECTOR.lock().expect("obs collector poisoned");
        let stat = c.spans.entry(path).or_insert(SpanStat { secs: 0.0, count: 0 });
        stat.secs += secs;
        stat.count += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The collector is process-global, so tests that toggle it must not
    /// interleave. One lock shared by every test in this module.
    static TEST_LOCK: Mutex<()> = Mutex::new(());

    fn locked() -> std::sync::MutexGuard<'static, ()> {
        TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn disabled_spans_record_nothing() {
        let _g = locked();
        reset();
        disable();
        {
            let _s = span("ghost");
            record_count("ghost_count", 5);
            record_value("ghost_value", 1.0);
        }
        let r = take_report();
        assert!(r.spans.is_empty());
        assert!(r.counts.is_empty());
        assert!(r.values.is_empty());
    }

    #[test]
    fn nested_spans_join_paths() {
        let _g = locked();
        reset();
        enable();
        {
            let _outer = span("outer");
            {
                let _inner = span("inner");
            }
            {
                let _inner = span("inner");
            }
        }
        disable();
        let r = take_report();
        assert_eq!(r.span_count("outer"), 1);
        assert_eq!(r.span_count("outer/inner"), 2);
        assert!(r.span_secs("outer") >= r.span_secs("outer/inner"));
    }

    #[test]
    fn spans_from_threads_aggregate() {
        let _g = locked();
        reset();
        enable();
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for _ in 0..8 {
                        let _s = span("worker_phase");
                    }
                });
            }
        });
        disable();
        let r = take_report();
        assert_eq!(r.span_count("worker_phase"), 32);
    }

    #[test]
    fn counts_and_values_accumulate() {
        let _g = locked();
        reset();
        enable();
        record_count("c", 1);
        record_count("c", 2);
        record_value("v", 0.5);
        record_value("v", 0.25);
        disable();
        let r = take_report();
        assert_eq!(r.count("c"), 3);
        assert!((r.value("v") - 0.75).abs() < 1e-12);
        // Missing names read as zero.
        assert_eq!(r.count("absent"), 0);
        assert_eq!(r.value("absent"), 0.0);
    }

    #[test]
    fn take_report_drains() {
        let _g = locked();
        reset();
        enable();
        record_count("once", 1);
        disable();
        assert_eq!(take_report().count("once"), 1);
        assert_eq!(take_report().count("once"), 0);
    }
}
