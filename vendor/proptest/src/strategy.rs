//! Strategy combinators: how test inputs are generated.

use crate::runner::TestRng;
use rand::Rng;
use std::ops::{Range, RangeInclusive};

/// A recipe for producing random values of one type.
///
/// Unlike upstream proptest there is no value tree / shrinking here; see the
/// crate docs for the rationale.
pub trait Strategy {
    type Value: Clone + std::fmt::Debug;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        U: Clone + std::fmt::Debug,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    fn prop_flat_map<S2, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S2: Strategy,
        F: Fn(Self::Value) -> S2,
    {
        FlatMap { inner: self, f }
    }

    fn prop_filter<F>(self, whence: &'static str, f: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter { inner: self, f, whence }
    }
}

/// Always produces the same value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone + std::fmt::Debug>(pub T);

impl<T: Clone + std::fmt::Debug> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, U, F> Strategy for Map<S, F>
where
    S: Strategy,
    U: Clone + std::fmt::Debug,
    F: Fn(S::Value) -> U,
{
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, S2, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

pub struct Filter<S, F> {
    inner: S,
    f: F,
    whence: &'static str,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1000 {
            let v = self.inner.generate(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!("prop_filter {:?} rejected 1000 consecutive values", self.whence);
    }
}

/// Numeric scalars generable from a half-open range strategy (`lo..hi`).
pub trait RangeValue: Copy + PartialOrd + Clone + std::fmt::Debug {
    fn uniform(rng: &mut TestRng, lo: Self, hi: Self) -> Self;
}

macro_rules! impl_range_value {
    ($($t:ty),*) => {$(
        impl RangeValue for $t {
            fn uniform(rng: &mut TestRng, lo: Self, hi: Self) -> Self {
                rng.gen_range(lo..hi)
            }
        }
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                <$t as RangeValue>::uniform(rng, self.start, self.end)
            }
        }
    )*};
}

impl_range_value!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

macro_rules! impl_tuple_strategy {
    ($( ($($s:ident . $idx:tt),+) )*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($( self.$idx.generate(rng), )+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
}

/// Element-count specification for [`vec()`]: a fixed size, `lo..hi`, or
/// `lo..=hi`.
#[derive(Clone, Copy, Debug)]
pub struct SizeRange {
    lo: usize,
    hi_inclusive: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi_inclusive: n }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange { lo: r.start, hi_inclusive: r.end - 1 }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty size range");
        SizeRange { lo: *r.start(), hi_inclusive: *r.end() }
    }
}

impl From<i32> for SizeRange {
    fn from(n: i32) -> Self {
        assert!(n >= 0, "negative vec size");
        SizeRange { lo: n as usize, hi_inclusive: n as usize }
    }
}

impl From<Range<i32>> for SizeRange {
    fn from(r: Range<i32>) -> Self {
        assert!(0 <= r.start && r.start < r.end, "invalid size range");
        SizeRange { lo: r.start as usize, hi_inclusive: (r.end - 1) as usize }
    }
}

pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let n = if self.size.lo == self.size.hi_inclusive {
            self.size.lo
        } else {
            rng.gen_range(self.size.lo..self.size.hi_inclusive + 1)
        };
        (0..n).map(|_| self.element.generate(rng)).collect()
    }
}

/// `prop::collection::vec(element, size)` — size may be a fixed `usize`, a
/// `Range<usize>`, or a `RangeInclusive<usize>`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy { element, size: size.into() }
}
