//! The [`DataSource`] ingestion trait: chunked, column-major access to a
//! point set that may or may not fit in memory.
//!
//! Every consumer of a dataset in this workspace used to take
//! `&geom::Dataset` — one heap allocation holding all coordinates. That
//! caps the reachable `n` at whatever fits in RAM and forces callers to
//! materialize points they only stream over once. `DataSource` is the
//! seam that removes the cap: it exposes the points as a deterministic
//! sequence of fixed-capacity **column-major chunks** (the same layout as
//! [`crate::soa::PointBlock`], stride = chunk capacity), so the batched
//! distance kernels in [`crate::kernels`] run directly on a chunk's
//! storage whether it came from the heap or from a memory-mapped file.
//!
//! Implementors:
//!
//! * [`Dataset`] — in-memory, transposing each chunk on demand (owned
//!   columns). `Runner::run(&data)` is a thin wrapper over
//!   `run_source(&data)` through this impl.
//! * `data::ChunkedStore` — the on-disk mmap store, borrowing columns
//!   straight out of the mapping (zero-copy).
//!
//! The trait is object-safe: the out-of-core executors take
//! `&dyn DataSource`.

use crate::dataset::{Dataset, PointId};
use crate::kernels;

/// Default chunk capacity used by the in-memory [`Dataset`] source and
/// by writers that don't pick their own: large enough that per-chunk
/// overhead vanishes, small enough that a chunk is cache-resident while
/// a kernel streams it.
pub const DEFAULT_CHUNK_CAP: usize = 4096;

/// Column storage of one chunk: borrowed straight from a mapping, or
/// owned when the implementor had to transpose on demand.
pub enum Cols<'a> {
    /// Columns borrowed from the source's own storage (zero-copy).
    Borrowed(&'a [f64]),
    /// Columns materialized for this call.
    Owned(Box<[f64]>),
}

impl std::ops::Deref for Cols<'_> {
    type Target = [f64];
    #[inline]
    fn deref(&self) -> &[f64] {
        match self {
            Cols::Borrowed(s) => s,
            Cols::Owned(b) => b,
        }
    }
}

/// One column-major chunk of points handed out by a [`DataSource`].
///
/// Column `k` lives at `cols[k*stride .. k*stride + len]` — the
/// [`crate::soa::PointBlock`] layout — so `cols`/`stride` feed
/// [`kernels::dist_sq_batch`] directly. Point `i` of the chunk has the
/// global id `base + i`.
pub struct SourceChunk<'a> {
    /// Global id of the chunk's first point.
    pub base: PointId,
    /// Number of points in this chunk.
    pub len: usize,
    /// Point dimensionality.
    pub dim: usize,
    /// Column stride (chunk capacity; `stride >= len`).
    pub stride: usize,
    /// Column-major coordinate storage.
    pub cols: Cols<'a>,
}

impl SourceChunk<'_> {
    /// Coordinate `k` of the chunk's `i`-th point.
    #[inline]
    pub fn coord(&self, i: usize, k: usize) -> f64 {
        debug_assert!(i < self.len && k < self.dim);
        self.cols[k * self.stride + i]
    }

    /// Copy the `i`-th point's coordinates into `buf` (length `dim`).
    #[inline]
    pub fn write_point(&self, i: usize, buf: &mut [f64]) {
        debug_assert_eq!(buf.len(), self.dim);
        for (k, b) in buf.iter_mut().enumerate() {
            *b = self.coord(i, k);
        }
    }

    /// The filled part of column `k` (unit stride, length `len`).
    #[inline]
    pub fn col(&self, k: usize) -> &[f64] {
        &self.cols[k * self.stride..k * self.stride + self.len]
    }

    /// Batched squared distances from `q` to every point of the chunk,
    /// written to `out[..len]` — bit-identical to [`crate::dist_sq`] on
    /// row-major copies (same ascending-dimension accumulation).
    #[inline]
    pub fn dist_sq_batch(&self, q: &[f64], out: &mut [f64]) {
        kernels::dist_sq_batch(&self.cols, self.stride, self.len, self.dim, q, out);
    }
}

/// Chunked, column-major, read-only access to a point set.
///
/// The chunk decomposition is **deterministic**: `chunk(c)` always
/// returns the same points in the same order for a given source, chunk
/// `c` covers global ids `[c*chunk_cap, c*chunk_cap + chunk(c).len)`,
/// and every chunk except possibly the last is full. Implementations
/// must be `Sync` — shard workers read chunks concurrently.
pub trait DataSource: Sync {
    /// Point dimensionality.
    fn dim(&self) -> usize;

    /// Total number of points.
    fn len(&self) -> usize;

    /// True when the source holds no points.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Chunk capacity (points per full chunk; also the column stride).
    fn chunk_cap(&self) -> usize;

    /// Number of chunks (`ceil(len / chunk_cap)`).
    fn n_chunks(&self) -> usize {
        let cap = self.chunk_cap();
        self.len().div_ceil(cap)
    }

    /// The `c`-th chunk. Panics when `c >= n_chunks()`.
    fn chunk(&self, c: usize) -> SourceChunk<'_>;

    /// Fast path for consumers that want a dense in-memory [`Dataset`]:
    /// sources that *are* one return it, others return `None` and the
    /// caller falls back to [`gather_dense`].
    fn as_dataset(&self) -> Option<&Dataset> {
        None
    }

    /// Coordinate bytes of the full point set (`len * dim * 8`) — what a
    /// dense materialization would cost, and the baseline a sharded
    /// run's memory budget is compared against.
    fn coord_bytes(&self) -> usize {
        self.len() * self.dim() * std::mem::size_of::<f64>()
    }
}

impl DataSource for Dataset {
    fn dim(&self) -> usize {
        Dataset::dim(self)
    }

    fn len(&self) -> usize {
        Dataset::len(self)
    }

    fn chunk_cap(&self) -> usize {
        DEFAULT_CHUNK_CAP
    }

    fn chunk(&self, c: usize) -> SourceChunk<'_> {
        let cap = <Self as DataSource>::chunk_cap(self);
        let n = Dataset::len(self);
        let base = c * cap;
        assert!(base < n || (n == 0 && c == 0), "chunk index out of range");
        let len = cap.min(n - base);
        let dim = Dataset::dim(self);
        let mut cols = vec![0.0; dim * cap].into_boxed_slice();
        for i in 0..len {
            let p = self.point((base + i) as PointId);
            for (k, &x) in p.iter().enumerate() {
                cols[k * cap + i] = x;
            }
        }
        SourceChunk { base: base as PointId, len, dim, stride: cap, cols: Cols::Owned(cols) }
    }

    fn as_dataset(&self) -> Option<&Dataset> {
        Some(self)
    }
}

/// Materialize any source as a dense row-major [`Dataset`] (the
/// compatibility path for algorithm families that have no chunked
/// executor yet).
pub fn gather_dense(src: &dyn DataSource) -> Dataset {
    if let Some(d) = src.as_dataset() {
        return d.clone();
    }
    let (dim, n) = (src.dim(), src.len());
    let mut flat = Vec::with_capacity(dim * n);
    let mut buf = vec![0.0; dim];
    for c in 0..src.n_chunks() {
        let ch = src.chunk(c);
        for i in 0..ch.len {
            ch.write_point(i, &mut buf);
            flat.extend_from_slice(&buf);
        }
    }
    Dataset::from_flat(dim, flat)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dist_sq;

    fn sample(n: usize, dim: usize) -> Dataset {
        let mut flat = Vec::with_capacity(n * dim);
        for i in 0..n {
            for k in 0..dim {
                flat.push(i as f64 * 1.5 - k as f64 * 0.25);
            }
        }
        Dataset::from_flat(dim, flat)
    }

    #[test]
    fn dataset_source_chunks_cover_all_points() {
        let d = sample(DEFAULT_CHUNK_CAP + 37, 3);
        let src: &dyn DataSource = &d;
        assert_eq!(src.len(), d.len());
        assert_eq!(src.dim(), 3);
        assert_eq!(src.n_chunks(), 2);
        let mut seen = 0usize;
        let mut buf = [0.0; 3];
        for c in 0..src.n_chunks() {
            let ch = src.chunk(c);
            assert_eq!(ch.base as usize, c * DEFAULT_CHUNK_CAP);
            assert_eq!(ch.stride, DEFAULT_CHUNK_CAP);
            for i in 0..ch.len {
                ch.write_point(i, &mut buf);
                assert_eq!(&buf[..], d.point(ch.base + i as PointId));
                seen += 1;
            }
        }
        assert_eq!(seen, d.len());
    }

    #[test]
    fn chunk_kernels_match_row_major() {
        let d = sample(100, 2);
        let ch = DataSource::chunk(&d, 0);
        let q = [3.25, -1.5];
        let mut out = vec![0.0; ch.len];
        ch.dist_sq_batch(&q, &mut out);
        for i in 0..ch.len {
            let want = dist_sq(d.point(i as PointId), &q);
            assert_eq!(out[i].to_bits(), want.to_bits());
            assert_eq!(ch.coord(i, 0), d.point(i as PointId)[0]);
        }
        assert_eq!(ch.col(1).len(), 100);
    }

    #[test]
    fn gather_dense_round_trips() {
        let d = sample(DEFAULT_CHUNK_CAP * 2 + 5, 4);
        let g = gather_dense(&d);
        assert_eq!(g.len(), d.len());
        assert_eq!(g.dim(), d.dim());
        for i in 0..d.len() as PointId {
            assert_eq!(g.point(i), d.point(i));
        }
    }

    #[test]
    fn empty_source() {
        let d = Dataset::empty(2);
        let src: &dyn DataSource = &d;
        assert!(src.is_empty());
        assert_eq!(src.n_chunks(), 0);
        assert_eq!(src.coord_bytes(), 0);
        assert!(gather_dense(src).is_empty());
    }
}
