//! Replayable failure artifacts.
//!
//! When a differential test finds a (minimized) counterexample it is
//! written to `results/failures/<test>-<seed>.json` at the workspace root.
//! The artifact is self-contained — the exact rows, the parameters, and
//! the names of the disagreeing implementations — so `tests/replay.rs`
//! can re-run it against the current code without re-generating anything.
//!
//! The workspace has no serde (offline build), so this module carries its
//! own writer and a minimal JSON reader sufficient for the artifact
//! schema. Floats are written with Rust's `{:?}` formatting, which
//! round-trips `f64` exactly.

use std::fmt::Write as _;
use std::path::{Path, PathBuf};

/// A minimized, replayable counterexample.
#[derive(Debug, Clone, PartialEq)]
pub struct FailureArtifact {
    /// Name of the test that found it.
    pub test: String,
    /// Generator seed of the failing case (for provenance; the rows are
    /// stored verbatim, replay does not re-generate).
    pub seed: u64,
    /// Dataset family name ([`crate::Family::as_str`]).
    pub family: String,
    /// Dimensionality of the rows.
    pub dim: usize,
    /// ε of the failing run.
    pub eps: f64,
    /// MinPts of the failing run.
    pub min_pts: usize,
    /// Registry names of the implementations that disagreed with the
    /// oracle.
    pub disagreeing: Vec<String>,
    /// The minimized dataset.
    pub rows: Vec<Vec<f64>>,
}

impl FailureArtifact {
    /// Serialize to the artifact JSON schema.
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        s.push_str("{\n");
        let _ = writeln!(s, "  \"test\": {},", quote(&self.test));
        let _ = writeln!(s, "  \"seed\": {},", self.seed);
        let _ = writeln!(s, "  \"family\": {},", quote(&self.family));
        let _ = writeln!(s, "  \"dim\": {},", self.dim);
        let _ = writeln!(s, "  \"eps\": {:?},", self.eps);
        let _ = writeln!(s, "  \"min_pts\": {},", self.min_pts);
        let names: Vec<String> = self.disagreeing.iter().map(|n| quote(n)).collect();
        let _ = writeln!(s, "  \"disagreeing\": [{}],", names.join(", "));
        s.push_str("  \"rows\": [\n");
        for (i, row) in self.rows.iter().enumerate() {
            let cells: Vec<String> = row.iter().map(|v| format!("{v:?}")).collect();
            let sep = if i + 1 < self.rows.len() { "," } else { "" };
            let _ = writeln!(s, "    [{}]{}", cells.join(", "), sep);
        }
        s.push_str("  ]\n}\n");
        s
    }

    /// Parse an artifact back from its JSON form.
    pub fn from_json(text: &str) -> Result<FailureArtifact, String> {
        let value = Json::parse(text)?;
        let obj = value.as_object()?;
        let get = |key: &str| obj.iter().find(|(k, _)| k == key).map(|(_, v)| v);
        let field = |key: &str| get(key).ok_or_else(|| format!("missing field `{key}`"));
        let rows = field("rows")?
            .as_array()?
            .iter()
            .map(|row| row.as_array()?.iter().map(Json::as_f64).collect())
            .collect::<Result<Vec<Vec<f64>>, String>>()?;
        Ok(FailureArtifact {
            test: field("test")?.as_string()?,
            seed: field("seed")?.as_f64()? as u64,
            family: field("family")?.as_string()?,
            dim: field("dim")?.as_f64()? as usize,
            eps: field("eps")?.as_f64()?,
            min_pts: field("min_pts")?.as_f64()? as usize,
            disagreeing: field("disagreeing")?
                .as_array()?
                .iter()
                .map(Json::as_string)
                .collect::<Result<Vec<String>, String>>()?,
            rows,
        })
    }

    /// File name this artifact is stored under.
    pub fn file_name(&self) -> String {
        let safe: String = self
            .test
            .chars()
            .map(|c| if c.is_alphanumeric() || c == '_' || c == '-' { c } else { '-' })
            .collect();
        format!("{safe}-{}.json", self.seed)
    }

    /// Write the artifact into `dir` (created if needed); returns the path.
    pub fn dump_into(&self, dir: &Path) -> std::io::Result<PathBuf> {
        std::fs::create_dir_all(dir)?;
        let path = dir.join(self.file_name());
        std::fs::write(&path, self.to_json())?;
        Ok(path)
    }

    /// Write the artifact to the workspace-default `results/failures/`.
    pub fn dump(&self) -> std::io::Result<PathBuf> {
        self.dump_into(&default_dir())
    }
}

/// `results/failures/` at the workspace root, resolved relative to this
/// crate's manifest so it is independent of the test runner's CWD.
pub fn default_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../../results/failures")
}

fn quote(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// The tiny JSON subset the artifact schema needs: objects, arrays,
/// strings, and numbers.
enum Json {
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    fn parse(text: &str) -> Result<Json, String> {
        let mut p = Parser { bytes: text.as_bytes(), pos: 0 };
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing bytes at offset {}", p.pos));
        }
        Ok(v)
    }

    fn as_object(&self) -> Result<&Vec<(String, Json)>, String> {
        match self {
            Json::Obj(m) => Ok(m),
            _ => Err("expected object".into()),
        }
    }

    fn as_array(&self) -> Result<&Vec<Json>, String> {
        match self {
            Json::Arr(a) => Ok(a),
            _ => Err("expected array".into()),
        }
    }

    fn as_string(&self) -> Result<String, String> {
        match self {
            Json::Str(s) => Ok(s.clone()),
            _ => Err("expected string".into()),
        }
    }

    fn as_f64(&self) -> Result<f64, String> {
        match self {
            Json::Num(v) => Ok(*v),
            _ => Err("expected number".into()),
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while self.pos < self.bytes.len() && self.bytes[self.pos].is_ascii_whitespace() {
            self.pos += 1;
        }
    }

    fn peek(&mut self) -> Result<u8, String> {
        self.skip_ws();
        self.bytes.get(self.pos).copied().ok_or_else(|| "unexpected end of input".to_string())
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek()? == b {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected `{}` at offset {}", b as char, self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek()? {
            b'{' => self.object(),
            b'[' => self.array(),
            b'"' => Ok(Json::Str(self.string()?)),
            _ => self.number(),
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        if self.peek()? == b'}' {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            let key = self.string()?;
            self.expect(b':')?;
            fields.push((key, self.value()?));
            match self.peek()? {
                b',' => self.pos += 1,
                b'}' => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                c => return Err(format!("expected `,` or `}}`, got `{}`", c as char)),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        if self.peek()? == b']' {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.value()?);
            match self.peek()? {
                b',' => self.pos += 1,
                b']' => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                c => return Err(format!("expected `,` or `]`, got `{}`", c as char)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bytes.get(self.pos).copied() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.bytes.get(self.pos).copied() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'n') => out.push('\n'),
                        other => return Err(format!("unsupported escape {other:?}")),
                    }
                    self.pos += 1;
                }
                Some(b) => {
                    out.push(b as char);
                    self.pos += 1;
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        self.skip_ws();
        let start = self.pos;
        while self.pos < self.bytes.len()
            && matches!(self.bytes[self.pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<f64>().map(Json::Num).map_err(|_| format!("bad number `{text}`"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> FailureArtifact {
        FailureArtifact {
            test: "differential::blobs".into(),
            seed: 123456789,
            family: "blobs".into(),
            dim: 3,
            eps: 0.30000000000000004, // deliberately un-pretty: must round-trip
            min_pts: 4,
            disagreeing: vec!["mu-par/t4".into(), "mu-dist/r2".into()],
            rows: vec![vec![0.1, -2.5, 1e-12], vec![7.25, 0.0, -0.0]],
        }
    }

    #[test]
    fn json_round_trip_is_exact() {
        let a = sample();
        let parsed = FailureArtifact::from_json(&a.to_json()).unwrap();
        assert_eq!(parsed, a);
    }

    #[test]
    fn file_name_is_sanitized() {
        assert_eq!(sample().file_name(), "differential--blobs-123456789.json");
    }

    #[test]
    fn parser_rejects_garbage() {
        assert!(FailureArtifact::from_json("{").is_err());
        assert!(FailureArtifact::from_json("{}").is_err()); // missing fields
        assert!(FailureArtifact::from_json("[1, 2]").is_err());
    }

    #[test]
    fn dump_writes_a_parseable_file() {
        let dir = std::env::temp_dir().join("conformance-artifact-test");
        let a = sample();
        let path = a.dump_into(&dir).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(FailureArtifact::from_json(&text).unwrap(), a);
        let _ = std::fs::remove_file(path);
    }
}
