#![warn(missing_docs)]

//! Micro-clusters and the two-level μR-tree (paper §IV-A/§IV-B).
//!
//! A **micro-cluster** `MC(p)` is the set of points lying strictly within
//! ε of a chosen *center point* `p` (including `p` itself); every point
//! belongs to exactly one MC. The **μR-tree** indexes MC centers in a
//! level-1 R-tree and each MC's member points in a per-MC auxiliary
//! R-tree, so an ε-query only ever descends small trees.
//!
//! Classification (with `MinPts`):
//!
//! * **DMC** (dense): the *inner circle* `IC` — members strictly within
//!   ε/2 of the center, center included — has `|IC| >= MinPts`. Then every
//!   IC point is core (Lemma 1): any two IC points are `< ε` apart, so
//!   `IC ⊆ N_ε(q)` for each `q ∈ IC`.
//! * **CMC** (core): `|MC| >= MinPts`; the center is core (Lemma 2).
//! * **SMC** (sparse): everything else.
//!
//! Note on strictness: the paper writes `IC = {s : DIST(s,p) <= ε/2}`, but
//! with the strict `< ε` neighbourhood definition two points at exactly
//! ε/2 from the center could be exactly ε apart and *not* neighbours. We
//! use strict `< ε/2`, which makes Lemma 1 hold unconditionally and keeps
//! the clustering exact (see DESIGN.md).
//!
//! ```
//! use geom::Dataset;
//! use mcs::{build_micro_clusters, BuildOptions};
//! use metrics::Counters;
//!
//! let data = Dataset::from_rows(&[
//!     vec![0.0, 0.0], vec![0.1, 0.0], vec![0.2, 0.1], // tight knot
//!     vec![9.0, 9.0],                                  // far away
//! ]);
//! let counters = Counters::new();
//! let mut tree = build_micro_clusters(&data, 1.0, &BuildOptions::default(), &counters);
//! tree.compute_reachable(&data, &counters);
//! assert_eq!(tree.mc_count(), 2); // the knot shares one MC, the loner gets its own
//!
//! let mut nbhrs = Vec::new();
//! tree.neighborhood(&data, 0, &mut nbhrs);
//! nbhrs.sort_unstable();
//! assert_eq!(nbhrs, vec![0, 1, 2]);
//! ```

pub mod build;
pub mod micro;
pub mod murtree;
pub mod par_build;

pub use build::{build_micro_clusters, BuildOptions};
pub use micro::{McId, McKind, MicroCluster, NO_MC};
pub use murtree::MuRTree;
pub use par_build::{build_micro_clusters_par, ParBuildStats};
