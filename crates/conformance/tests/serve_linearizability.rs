//! Linearizability of the concurrent serving layer.
//!
//! The serving contract (`docs/SERVING.md`) is *snapshot isolation over
//! a linear epoch history*: the writer applies one ingested batch per
//! epoch and publishes an immutable snapshot, so every answer any
//! reader ever observes — no matter how its pins interleave with the
//! writer — must be explained by some published prefix of the op trace.
//! Because answers are pure functions of the pinned [`Snapshot`], it
//! suffices to show that **every observable epoch is bit-identical to
//! the batch oracle replayed over the corresponding trace prefix**,
//! including the deletion and TTL-expiry semantics of the logical epoch
//! clock.
//!
//! Three layers of evidence:
//!
//! * a deterministic seeded trace where *every* epoch is captured via
//!   per-batch `drain` rendezvous and validated in full;
//! * a proptest over random traces where racing reader threads pin
//!   whatever epochs they happen to catch, all of which must validate;
//! * reader-side probe answers re-derived from the model prefix.

use geom::{Dataset, DbscanParams};
use mudbscan::prelude::{Family, Runner, ServeOp, Snapshot};
use mudbscan::{check_exact, naive_dbscan};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

const DIM: usize = 2;

fn params() -> DbscanParams {
    DbscanParams::new(0.3, 3)
}

/// One raw operation of a generated trace, before external ids are
/// resolved. `Delete(raw)` targets `raw % inserted_before_this_batch`
/// (skipped when nothing was inserted yet), so deletes always reference
/// ids assigned in *earlier* batches — the single-handle ingest order
/// makes those ids deterministic.
#[derive(Debug, Clone)]
enum RawOp {
    Insert { coords: Vec<f64>, ttl: Option<u64> },
    Delete { raw: u64 },
}

/// The sequential model of the serving semantics: one entry per live
/// point, in insertion order, mirroring the engine's compacting rebuild.
#[derive(Default, Clone)]
struct Model {
    /// `(ext_id, coords, first_dead_epoch)` for each live point.
    live: Vec<(u64, Vec<f64>, u64)>,
    next_ext: u64,
    epoch: u64,
}

impl Model {
    /// Apply one batch under the engine's rules: bump the epoch, expire
    /// (TTL first), then delete, then insert. Returns the resolved
    /// `ServeOp` batch to feed the real engine.
    fn apply(&mut self, raw: &[RawOp]) -> Vec<ServeOp> {
        self.epoch += 1;
        let epoch = self.epoch;
        self.live.retain(|(_, _, dead_at)| *dead_at > epoch);
        let inserted_before = self.next_ext;
        let mut ops = Vec::new();
        for op in raw {
            match op {
                RawOp::Delete { raw } => {
                    if inserted_before == 0 {
                        continue;
                    }
                    let target = raw % inserted_before;
                    ops.push(ServeOp::delete(target));
                    self.live.retain(|(ext, _, _)| *ext != target);
                }
                RawOp::Insert { coords, ttl } => {
                    let dead_at = ttl.map_or(u64::MAX, |d| epoch.saturating_add(d.max(1)));
                    ops.push(match ttl {
                        Some(d) => ServeOp::insert_ttl(coords.clone(), *d),
                        None => ServeOp::insert(coords.clone()),
                    });
                    self.live.push((self.next_ext, coords.clone(), dead_at));
                    self.next_ext += 1;
                }
            }
        }
        ops
    }

    fn dataset(&self) -> Dataset {
        let mut d = Dataset::empty(DIM);
        for (_, coords, _) in &self.live {
            d.push(coords);
        }
        d
    }

    fn ext_ids(&self) -> Vec<u64> {
        self.live.iter().map(|(e, _, _)| *e).collect()
    }
}

/// Validate one observed snapshot against the model state for its epoch:
/// same live ids in the same order, same coordinates, and a clustering
/// bit-identical to the batch oracle (the facade's one-shot streaming
/// family) on the live prefix — which is itself checked exact against
/// naive DBSCAN. Also spot-checks reader-visible answers: ε-queries and
/// membership lookups must match what the model's live set implies.
fn validate_epoch(snapshot: &Snapshot, model: &Model, ctx: &str) {
    assert_eq!(snapshot.epoch(), model.epoch, "{ctx}: epoch mismatch");
    assert_eq!(snapshot.live_ids(), model.ext_ids().as_slice(), "{ctx}: live ids diverged");
    let expected_data = model.dataset();
    assert_eq!(snapshot.dataset().len(), expected_data.len(), "{ctx}: live point count diverged");
    for (p, coords) in expected_data.iter() {
        assert_eq!(snapshot.dataset().point(p), coords, "{ctx}: point {p} coords diverged");
    }

    let p = params();
    let batch =
        Runner::new(p).family(Family::Streaming).run(&expected_data).expect("batch oracle run");
    assert_eq!(
        *snapshot.clustering(),
        batch.clustering,
        "{ctx}: snapshot clustering is not bit-identical to the batch prefix run"
    );
    if !expected_data.is_empty() {
        let reference = naive_dbscan(&expected_data, &p);
        let report = check_exact(snapshot.clustering(), &reference, &expected_data, &p);
        assert!(report.is_exact(), "{ctx}: snapshot inexact vs naive oracle: {report:?}");
    }

    // Reader-visible answers, re-derived from the model: a published
    // epoch must answer ε-queries with exactly the live ids within ε,
    // and membership with exactly the clustering's label for that id.
    for (i, (ext, coords, _)) in model.live.iter().enumerate().step_by(3) {
        let mut expected: Vec<u64> = model
            .live
            .iter()
            .filter(|(_, c, _)| {
                c.iter().zip(coords).map(|(a, b)| (a - b) * (a - b)).sum::<f64>().sqrt() < p.eps
            })
            .map(|(e, _, _)| *e)
            .collect();
        expected.sort_unstable();
        assert_eq!(
            snapshot.query(coords).expect("probe dimension matches"),
            expected,
            "{ctx}: ε-query answer diverged from the model prefix"
        );
        let m = snapshot.membership(*ext).expect("live id has a membership");
        assert_eq!(m.is_core, snapshot.clustering().is_core[i], "{ctx}: is_core diverged");
        let label = snapshot.clustering().labels[i];
        assert_eq!(
            m.cluster,
            (label != mudbscan::NOISE).then_some(label),
            "{ctx}: cluster label diverged"
        );
    }
}

/// A seeded trace with all three op classes: clustered inserts (blob
/// centers close enough for ε-chains), a TTL on every fifth insert, and
/// deletes of earlier ids sprinkled through the later batches.
fn seeded_trace(seed: u64, batches: usize, per_batch: usize) -> Vec<Vec<RawOp>> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut inserted = 0u64;
    (0..batches)
        .map(|_| {
            (0..per_batch)
                .map(|_| {
                    if inserted > 0 && rng.gen_range(0..5) == 0 {
                        RawOp::Delete { raw: rng.gen_range(0..inserted * 2) }
                    } else {
                        let cx = rng.gen_range(0..3) as f64;
                        let coords =
                            vec![cx + rng.gen_range(-0.25..0.25), cx + rng.gen_range(-0.25..0.25)];
                        let ttl = (rng.gen_range(0..5) == 0).then(|| rng.gen_range(1..3u64));
                        inserted += 1;
                        RawOp::Insert { coords, ttl }
                    }
                })
                .collect()
        })
        .collect()
}

/// Replay a trace against the real engine with `readers` threads racing
/// the writer, capturing every epoch deterministically via per-batch
/// drain *and* whatever epochs the racing readers happen to pin. Every
/// captured epoch is validated against the model prefix.
fn run_and_validate(trace: &[Vec<RawOp>], readers: usize, ctx: &str) {
    let handle = Runner::new(params()).serve(DIM).expect("serving configuration");
    let stop = Arc::new(AtomicBool::new(false));

    std::thread::scope(|s| {
        let mut pinned = Vec::new();
        for _ in 0..readers {
            let h = handle.clone();
            let stop = Arc::clone(&stop);
            pinned.push(s.spawn(move || {
                let mut seen: BTreeMap<u64, Arc<Snapshot>> = BTreeMap::new();
                while !stop.load(Ordering::Relaxed) {
                    let snap = h.pin();
                    seen.entry(snap.epoch()).or_insert(snap);
                    std::thread::yield_now();
                }
                seen
            }));
        }

        // The writer side: one model step and one ingest per batch, with
        // a drain rendezvous capturing each epoch as it is published.
        let mut model = Model::default();
        let mut prefixes: Vec<Model> = Vec::new();
        for raw in trace {
            let ops = model.apply(raw);
            handle.ingest(ops).expect("writer alive");
            let drained = handle.drain().expect("writer alive");
            validate_epoch(&drained.snapshot, &model, &format!("{ctx}/epoch{}", model.epoch));
            prefixes.push(model.clone());
        }
        stop.store(true, Ordering::Relaxed);

        // Whatever the racing readers pinned must be one of the published
        // prefixes, bit-identical — epoch 0 is the empty pre-ingest state.
        for (r, t) in pinned.into_iter().enumerate() {
            let seen = t.join().expect("reader thread");
            for (epoch, snap) in seen {
                if epoch == 0 {
                    assert!(snap.is_empty(), "{ctx}: epoch 0 must be empty");
                    continue;
                }
                let model = &prefixes[(epoch - 1) as usize];
                validate_epoch(&snap, model, &format!("{ctx}/reader{r}/epoch{epoch}"));
            }
        }
    });

    let final_epochs = handle.snapshot_epoch();
    assert_eq!(final_epochs, trace.len() as u64, "{ctx}: one epoch per batch");
}

#[test]
fn every_epoch_of_a_seeded_trace_is_linearizable() {
    let trace = seeded_trace(2019, 6, 40);
    assert!(trace.len() >= 3, "the trace must span at least three epochs");
    run_and_validate(&trace, 4, "seeded");
}

/// Delete-heavy variant: a pure-insert warm-up epoch followed by
/// batches that are ~60% deletions. This drives the writer through the
/// micro-cluster-local repair path (core demotions, component splits,
/// border re-attachment) and — as the live set shrinks under the
/// tombstone count — through the compaction rebuild, while racing
/// readers keep pinning epochs.
fn delete_heavy_trace(seed: u64, batches: usize, per_batch: usize) -> Vec<Vec<RawOp>> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut inserted = 0u64;
    (0..batches)
        .map(|b| {
            (0..per_batch)
                .map(|_| {
                    if b > 0 && inserted > 0 && rng.gen_range(0..5) < 3 {
                        RawOp::Delete { raw: rng.gen_range(0..inserted * 2) }
                    } else {
                        let cx = rng.gen_range(0..3) as f64;
                        let coords =
                            vec![cx + rng.gen_range(-0.25..0.25), cx + rng.gen_range(-0.25..0.25)];
                        inserted += 1;
                        RawOp::Insert { coords, ttl: None }
                    }
                })
                .collect()
        })
        .collect()
}

#[test]
fn delete_heavy_traffic_stays_linearizable() {
    let trace = delete_heavy_trace(77, 6, 40);
    run_and_validate(&trace, 3, "delete-heavy");
}

/// Raw-op strategy: mostly inserts on a coarse lattice (so ε-relations
/// and duplicate coordinates actually occur), occasional TTLs, and a
/// 20% sprinkle of raw deletes.
fn raw_op() -> impl Strategy<Value = RawOp> {
    (0u32..5, proptest::collection::vec(0u32..12, DIM), 0u64..5, 0u64..1_000).prop_map(
        |(kind, grid, ttl, raw)| {
            if kind == 0 {
                RawOp::Delete { raw }
            } else {
                RawOp::Insert {
                    coords: grid.into_iter().map(|g| g as f64 * 0.18).collect(),
                    // ttl ∈ {3, 4} → Some(1 | 2): a TTL on 40% of inserts.
                    // NB `then` (lazy), not `then_some`: the eager form
                    // evaluates `ttl - 2` even when the guard is false
                    // and underflows for ttl ∈ {0, 1}.
                    ttl: (ttl >= 3).then(|| ttl - 2),
                }
            }
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// N readers race the writer over a random multi-epoch trace; every
    /// epoch anyone observes — plus every epoch captured at the drain
    /// rendezvous — must be bit-identical to the batch oracle on the
    /// corresponding trace prefix, TTLs and deletions included.
    #[test]
    fn racing_readers_only_observe_published_prefixes(
        trace in proptest::collection::vec(
            proptest::collection::vec(raw_op(), 0..10),
            3..6,
        )
    ) {
        run_and_validate(&trace, 3, "prop");
    }
}
