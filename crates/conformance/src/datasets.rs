//! Randomized dataset families for differential testing.
//!
//! Each family stresses a different part of the algorithms:
//!
//! * [`Family::Blobs`] — well-separated Gaussian-ish clusters: the common
//!   case, exercises dense/core micro-clusters and wndq labelling.
//! * [`Family::Uniform`] — unstructured points: many sparse MCs, noise.
//! * [`Family::Chains`] — random walks with step lengths near ε:
//!   density-reachability chains spanning many micro-clusters, the
//!   hardest case for merge/union logic (and for halo exchange in the
//!   distributed simulator).
//! * [`Family::Duplicates`] — heavy duplication of a few sites: degenerate
//!   zero distances, MC centers with many coincident members.
//! * [`Family::Mixed`] — blobs embedded in uniform background noise:
//!   border points and noise-rescue paths.
//!
//! Generation is fully deterministic in [`DatasetSpec`]: the same
//! `(family, n, dim, seed)` always yields the same rows, which is what
//! makes failure artifacts replayable.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The dataset families the differential suite draws from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Family {
    /// Separated clusters with small intra-cluster spread.
    Blobs,
    /// Uniform points in a box.
    Uniform,
    /// Random walks with near-ε steps.
    Chains,
    /// A few distinct sites, heavily duplicated.
    Duplicates,
    /// Blobs plus uniform background noise.
    Mixed,
}

/// All families, for exhaustive sweeps.
pub const FAMILIES: [Family; 5] =
    [Family::Blobs, Family::Uniform, Family::Chains, Family::Duplicates, Family::Mixed];

impl Family {
    /// Stable name used in artifacts.
    pub fn as_str(&self) -> &'static str {
        match self {
            Family::Blobs => "blobs",
            Family::Uniform => "uniform",
            Family::Chains => "chains",
            Family::Duplicates => "duplicates",
            Family::Mixed => "mixed",
        }
    }

    /// Inverse of [`Family::as_str`] (artifact replay).
    pub fn from_name(s: &str) -> Option<Family> {
        FAMILIES.into_iter().find(|f| f.as_str() == s)
    }
}

/// A deterministic dataset description: family, size, dimension, seed.
#[derive(Debug, Clone, Copy)]
pub struct DatasetSpec {
    /// Which generator to use.
    pub family: Family,
    /// Number of points.
    pub n: usize,
    /// Dimensionality (the suite sweeps 1–8).
    pub dim: usize,
    /// Generator seed.
    pub seed: u64,
}

impl DatasetSpec {
    /// Generate the rows. Same spec → same rows, always.
    pub fn rows(&self) -> Vec<Vec<f64>> {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let (n, dim) = (self.n, self.dim.max(1));
        match self.family {
            Family::Blobs => blobs(&mut rng, n, dim, 0.0),
            Family::Uniform => uniform(&mut rng, n, dim),
            Family::Chains => chains(&mut rng, n, dim),
            Family::Duplicates => duplicates(&mut rng, n, dim),
            Family::Mixed => blobs(&mut rng, n, dim, 0.4),
        }
    }
}

/// `k` blob centers in [0, 8)^dim, spread 0.3 per axis; `noise_frac` of the
/// points are uniform background instead.
fn blobs(rng: &mut StdRng, n: usize, dim: usize, noise_frac: f64) -> Vec<Vec<f64>> {
    let k = rng.gen_range(1..5usize);
    let centers: Vec<Vec<f64>> =
        (0..k).map(|_| (0..dim).map(|_| rng.gen_range(0.0..8.0)).collect()).collect();
    (0..n)
        .map(|_| {
            if noise_frac > 0.0 && rng.gen_bool(noise_frac) {
                (0..dim).map(|_| rng.gen_range(-1.0..9.0)).collect()
            } else {
                let c = &centers[rng.gen_range(0..k)];
                c.iter().map(|x| x + rng.gen_range(-0.3..0.3)).collect()
            }
        })
        .collect()
}

fn uniform(rng: &mut StdRng, n: usize, dim: usize) -> Vec<Vec<f64>> {
    (0..n).map(|_| (0..dim).map(|_| rng.gen_range(0.0..4.0)).collect()).collect()
}

/// A few random walks whose step length hovers around typical ε values, so
/// clusters are long density-reachability chains rather than balls.
fn chains(rng: &mut StdRng, n: usize, dim: usize) -> Vec<Vec<f64>> {
    let walks = rng.gen_range(1..4usize);
    let mut rows = Vec::with_capacity(n);
    for w in 0..walks {
        let mut pos: Vec<f64> =
            (0..dim).map(|_| rng.gen_range(0.0..6.0) + 10.0 * w as f64).collect();
        let per_walk = n / walks + usize::from(w < n % walks);
        for _ in 0..per_walk {
            rows.push(pos.clone());
            let axis = rng.gen_range(0..dim);
            let step = rng.gen_range(0.05..0.35);
            pos[axis] += if rng.gen_bool(0.5) { step } else { -step };
        }
    }
    rows
}

/// 2–6 distinct sites; every row is one of them, with a small chance of a
/// tiny jitter so exact and near-exact duplicates mix.
fn duplicates(rng: &mut StdRng, n: usize, dim: usize) -> Vec<Vec<f64>> {
    let k = rng.gen_range(2..7usize);
    let sites: Vec<Vec<f64>> =
        (0..k).map(|_| (0..dim).map(|_| rng.gen_range(0.0..3.0)).collect()).collect();
    (0..n)
        .map(|_| {
            let s = &sites[rng.gen_range(0..k)];
            if rng.gen_bool(0.2) {
                s.iter().map(|x| x + rng.gen_range(-0.01..0.01)).collect()
            } else {
                s.clone()
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic_and_sized() {
        for family in FAMILIES {
            for dim in [1, 3, 8] {
                let spec = DatasetSpec { family, n: 33, dim, seed: 99 };
                let a = spec.rows();
                let b = spec.rows();
                assert_eq!(a, b, "{family:?} not deterministic");
                assert_eq!(a.len(), 33, "{family:?} wrong n");
                assert!(a.iter().all(|r| r.len() == dim), "{family:?} wrong dim");
                assert!(
                    a.iter().flatten().all(|v| v.is_finite()),
                    "{family:?} produced non-finite coords"
                );
            }
        }
    }

    #[test]
    fn duplicates_family_actually_duplicates() {
        let spec = DatasetSpec { family: Family::Duplicates, n: 50, dim: 2, seed: 7 };
        let rows = spec.rows();
        let mut sorted: Vec<String> = rows.iter().map(|r| format!("{r:?}")).collect();
        sorted.sort();
        sorted.dedup();
        assert!(sorted.len() < rows.len() / 2, "expected many exact duplicates");
    }
}
