//! End-to-end tests of the `mudbscan` CLI binary.

use std::process::Command;

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_mudbscan"))
}

fn tmp(name: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("mudbscan_cli_{name}_{}", std::process::id()))
}

#[test]
fn generate_then_cluster_roundtrip() {
    let pts = tmp("pts.csv");
    let labels = tmp("labels.csv");

    let out = bin()
        .args(["--generate", "galaxy", "--n", "2000", "--dim", "3", "--seed", "7"])
        .args(["--output", pts.to_str().unwrap()])
        .output()
        .expect("spawn");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));

    let out = bin()
        .args(["--input", pts.to_str().unwrap()])
        .args(["--eps", "0.8", "--min-pts", "5", "--stats"])
        .args(["--output", labels.to_str().unwrap()])
        .output()
        .expect("spawn");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("clusters"), "{stderr}");
    assert!(stderr.contains("queries saved"), "{stderr}");

    // One label per point; labels are ints >= -1.
    let content = std::fs::read_to_string(&labels).unwrap();
    let parsed: Vec<i64> = content.lines().map(|l| l.parse().unwrap()).collect();
    assert_eq!(parsed.len(), 2000);
    assert!(parsed.iter().all(|&l| l >= -1));
    assert!(parsed.iter().any(|&l| l >= 0), "no clusters found");

    std::fs::remove_file(&pts).ok();
    std::fs::remove_file(&labels).ok();
}

#[test]
fn algorithms_agree_via_cli() {
    let pts = tmp("pts2.csv");
    bin()
        .args(["--generate", "uniform", "--n", "500", "--dim", "2", "--seed", "3"])
        .args(["--output", pts.to_str().unwrap()])
        .output()
        .expect("spawn");

    let labels_of = |alg: &str| -> Vec<i64> {
        let labels = tmp(&format!("labels_{alg}.csv"));
        let out = bin()
            .args(["--input", pts.to_str().unwrap()])
            .args(["--eps", "4.0", "--min-pts", "4", "--algorithm", alg])
            .args(["--output", labels.to_str().unwrap()])
            .output()
            .expect("spawn");
        assert!(out.status.success(), "{alg}: {}", String::from_utf8_lossy(&out.stderr));
        let v =
            std::fs::read_to_string(&labels).unwrap().lines().map(|l| l.parse().unwrap()).collect();
        std::fs::remove_file(&labels).ok();
        v
    };

    let mu = labels_of("mu");
    let naive = labels_of("naive");
    // Identical canonical labels: both number clusters by first appearance.
    assert_eq!(mu.len(), naive.len());
    let noise = |v: &[i64]| v.iter().filter(|&&l| l == -1).count();
    assert_eq!(noise(&mu), noise(&naive));
    std::fs::remove_file(&pts).ok();
}

#[test]
fn rejects_bad_input() {
    let bad = tmp("bad.csv");
    std::fs::write(&bad, "1,2\n3,nan\n").unwrap();
    let out = bin()
        .args(["--input", bad.to_str().unwrap(), "--eps", "1", "--min-pts", "2"])
        .output()
        .expect("spawn");
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.to_lowercase().contains("non-finite"), "{stderr}");
    std::fs::remove_file(&bad).ok();
}

#[test]
fn missing_flags_usage_error() {
    let out = bin().output().expect("spawn");
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("usage"));
}
