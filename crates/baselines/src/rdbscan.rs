//! R-DBSCAN: classical DBSCAN with a single R-tree over all points.
//!
//! Performs one ε-neighbourhood query per point (no query saving), with
//! union–find cluster formation. This is the "R-DBSCAN" column of the
//! paper's Table II and the sequential skeleton of PDSDBSCAN.

use crate::BaselineOutput;
use geom::{Dataset, DbscanParams, PointId};
use metrics::{Counters, PhaseTimer, Stopwatch};
use mudbscan::Clustering;
use rtree::{RTree, RTreeConfig};
use unionfind::UnionFind;

/// Classical DBSCAN over a single R-tree.
#[derive(Debug, Clone)]
pub struct RDbscan {
    params: DbscanParams,
    cfg: RTreeConfig,
    /// Build the index by STR bulk loading instead of repeated insertion
    /// (ablation knob; query results are identical).
    pub bulk_load: bool,
}

impl RDbscan {
    /// New instance with default R-tree fan-out and incremental build.
    pub fn new(params: DbscanParams) -> Self {
        Self { params, cfg: RTreeConfig::default(), bulk_load: false }
    }

    /// Override the R-tree fan-out.
    pub fn with_config(mut self, cfg: RTreeConfig) -> Self {
        self.cfg = cfg;
        self
    }

    /// Run on `data`.
    pub fn run(&self, data: &Dataset) -> BaselineOutput {
        let counters = Counters::new();
        let mut phases = PhaseTimer::new();
        let mut sw = Stopwatch::start();
        let _run = obs::span!("rdbscan");

        let step1 = obs::span!("tree_construction");
        let tree = if self.bulk_load {
            RTree::bulk_load_points(data.dim(), self.cfg, data.iter().map(|(i, p)| (i, p.to_vec())))
        } else {
            let mut t = RTree::with_config(data.dim(), self.cfg);
            for (i, p) in data.iter() {
                t.insert_point(i, p);
            }
            t
        };
        drop(step1);
        phases.add_secs("tree_construction", sw.lap());
        let mut peak = tree.heap_bytes();

        let n = data.len();
        let mut uf = UnionFind::new(n);
        let mut is_core = vec![false; n];
        let mut assigned = vec![false; n];
        // Deferred non-core points whose neighbourhoods contained no core
        // yet; resolved after all cores are known (their stored lists make
        // the pass query-free).
        let mut pending: Vec<(PointId, Vec<PointId>)> = Vec::new();
        let mut nbhrs: Vec<PointId> = Vec::new();

        let step2 = obs::span!("clustering");
        for p in data.ids() {
            nbhrs.clear();
            let cost = tree.search_sphere(data.point(p), self.params.eps, |q| nbhrs.push(q));
            counters.count_range_query();
            counters.count_dists(cost.mbr_tests);
            counters.count_node_visits(cost.nodes_visited.max(1));

            if nbhrs.len() >= self.params.min_pts {
                is_core[p as usize] = true;
                assigned[p as usize] = true;
                for &x in &nbhrs {
                    if is_core[x as usize] {
                        uf.union(x, p);
                        counters.count_union();
                    } else if !assigned[x as usize] {
                        uf.union(p, x);
                        counters.count_union();
                        assigned[x as usize] = true;
                    }
                }
            } else if !assigned[p as usize] {
                let mut attached = false;
                for &x in &nbhrs {
                    if is_core[x as usize] {
                        uf.union(x, p);
                        counters.count_union();
                        assigned[p as usize] = true;
                        attached = true;
                        break;
                    }
                }
                if !attached {
                    pending.push((p, nbhrs.clone()));
                }
            }
        }
        drop(step2);
        phases.add_secs("clustering", sw.lap());
        peak = peak.max(
            tree.heap_bytes()
                + uf.heap_bytes()
                + pending.iter().map(|(_, v)| 16 + v.capacity() * 4).sum::<usize>(),
        );

        // Border rescue: some neighbours became core after p was examined.
        let step3 = obs::span!("post_processing");
        for (p, nb) in &pending {
            if assigned[*p as usize] {
                continue;
            }
            for &q in nb {
                if is_core[q as usize] {
                    uf.union(q, *p);
                    counters.count_union();
                    assigned[*p as usize] = true;
                    break;
                }
            }
        }
        drop(step3);
        phases.add_secs("post_processing", sw.lap());

        let clustering = Clustering::from_union_find(&mut uf, is_core);
        BaselineOutput { clustering, counters, phases, peak_heap_bytes: peak }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mudbscan::{check_exact, naive_dbscan};

    fn blob_data() -> Dataset {
        let mut rows = Vec::new();
        let mut s = 99u64;
        let mut r = move || {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1);
            ((s >> 33) as f64 / (1u64 << 31) as f64) - 1.0
        };
        for (cx, cy) in [(0.0, 0.0), (5.0, 1.0), (2.0, 6.0)] {
            for _ in 0..35 {
                rows.push(vec![cx + 0.6 * r(), cy + 0.6 * r()]);
            }
        }
        for _ in 0..12 {
            rows.push(vec![10.0 * r(), 10.0 * r()]);
        }
        Dataset::from_rows(&rows)
    }

    #[test]
    fn exact_vs_naive() {
        let data = blob_data();
        for (eps, min_pts) in [(0.5, 4), (0.8, 6), (0.3, 3)] {
            let params = DbscanParams::new(eps, min_pts);
            let out = RDbscan::new(params).run(&data);
            let reference = naive_dbscan(&data, &params);
            let rep = check_exact(&out.clustering, &reference, &data, &params);
            assert!(rep.is_exact(), "eps={eps} min_pts={min_pts}: {rep:?}");
        }
    }

    #[test]
    fn bulk_and_incremental_agree() {
        let data = blob_data();
        let params = DbscanParams::new(0.6, 5);
        let a = RDbscan::new(params).run(&data);
        let mut alg = RDbscan::new(params);
        alg.bulk_load = true;
        let b = alg.run(&data);
        assert_eq!(a.clustering, b.clustering);
    }

    #[test]
    fn no_queries_saved() {
        let data = blob_data();
        let out = RDbscan::new(DbscanParams::new(0.5, 5)).run(&data);
        assert_eq!(out.counters.range_queries() as usize, data.len());
        assert_eq!(out.counters.queries_saved(), 0);
        assert!(out.peak_heap_bytes > 0);
    }
}
