//! Out-of-core sharded equivalence: the [`Family::Sharded`] executor
//! must be **bit-identical** to the naive oracle — same labels in the
//! same canonical order, same core flags — for every dataset family,
//! for every shard count, for every memory budget, and regardless of
//! whether the input arrives as an in-memory [`Dataset`] or a
//! memory-mapped on-disk chunk store. (Against the in-memory μDBSCAN
//! families the guarantee is paper-exactness: identical cores, core
//! partition and noise — DBSCAN leaves border ties order-defined, and
//! sequential μDBSCAN resolves them by processing order while the
//! sharded merge always picks the minimum-id core neighbour.)
//!
//! Why this holds by construction (and what the test pins): the shard
//! planner attaches the full ε-halo to every shard, so own-point core
//! flags are exact; the merge reconstructs the core partition from
//! per-shard seed groups plus globally-confirmed cross-shard core–core
//! edges; and borders are resolved canonically — each owned non-core
//! point records *all* of its ε-neighbours (there are < MinPts of
//! them), and the merge assigns it to its minimum-id globally-core
//! neighbour, which is exactly `naive_dbscan`'s first-core-wins rule
//! under ascending id order. `Clustering::from_union_find` then
//! canonicalises labels in point-id order, erasing any dependence on
//! shard geometry or thread interleaving.
//!
//! A regression anywhere in that chain (an under-gathered halo, a
//! dropped cross-shard edge, a border resolved by arrival order) shows
//! up here as a bitwise clustering diff.

use conformance::{DatasetSpec, Family as DataFamily, FAMILIES};
use geom::{Dataset, DbscanParams};
use mudbscan::naive_dbscan;
use mudbscan::prelude::{write_store, ChunkedStore, Runner};

fn dataset(family: DataFamily, n: usize, dim: usize, seed: u64) -> Dataset {
    Dataset::from_rows(&DatasetSpec { family, n, dim, seed }.rows())
}

/// Every dataset family × shard counts {1, 2, 4} must match the naive
/// oracle bit-for-bit.
#[test]
fn sharded_matches_oracle_across_families_and_shard_counts() {
    for (fi, family) in FAMILIES.into_iter().enumerate() {
        let data = dataset(family, 600, 3, 0xC0FFEE ^ fi as u64);
        let p = DbscanParams::new(0.6, 4);
        let oracle = naive_dbscan(&data, &p);
        for shards in [1usize, 2, 4] {
            let out = Runner::new(p).shards(shards).run(&data).expect("sharded run");
            assert_eq!(
                out.clustering,
                oracle,
                "{family:?} with {shards} shard(s) diverged from the oracle"
            );
        }
    }
}

/// Against the in-memory sequential run the contract is
/// paper-exactness in both directions: identical core flags, identical
/// core partition, identical noise — only border ties (order-defined
/// in DBSCAN itself) may resolve differently.
#[test]
fn sharded_is_paper_exact_vs_sequential() {
    use mudbscan::check_exact;
    for (fi, family) in FAMILIES.into_iter().enumerate() {
        let data = dataset(family, 600, 3, 0xBEEF ^ fi as u64);
        let p = DbscanParams::new(0.6, 4);
        let seq = Runner::new(p).run(&data).expect("sequential run");
        let shd = Runner::new(p).shards(4).run(&data).expect("sharded run");
        assert!(
            check_exact(&shd.clustering, &seq.clustering, &data, &p).is_exact(),
            "{family:?}: sharded not paper-exact vs sequential"
        );
        assert!(
            check_exact(&seq.clustering, &shd.clustering, &data, &p).is_exact(),
            "{family:?}: sequential not paper-exact vs sharded"
        );
        assert_eq!(shd.clustering.is_core, seq.clustering.is_core, "{family:?}: core flags");
    }
}

/// Shrinking memory budgets force ever more shards; the answer must
/// never move. The tightest budget is far below the raw dataset size,
/// so this also pins that the executor *works* under real pressure.
#[test]
fn sharded_is_budget_invariant() {
    let data = dataset(DataFamily::Mixed, 800, 2, 7);
    let p = DbscanParams::new(0.5, 5);
    let oracle = naive_dbscan(&data, &p);
    let raw = data.len() * data.dim() * std::mem::size_of::<f64>();
    for budget in [raw * 4, raw, raw / 2, raw / 8] {
        let out = Runner::new(p).memory_budget(budget.max(1)).run(&data).expect("sharded run");
        assert_eq!(out.clustering, oracle, "budget {budget} changed the clustering");
    }
}

/// Worker-thread count is a pure throughput knob: t1 and t4 must agree
/// bit-for-bit with each other and the oracle under the same budget.
#[test]
fn sharded_is_thread_invariant() {
    let data = dataset(DataFamily::Chains, 500, 3, 21);
    let p = DbscanParams::new(0.4, 4);
    let oracle = naive_dbscan(&data, &p);
    for threads in [1usize, 2, 4] {
        let out = Runner::new(p).shards(4).threads(threads).run(&data).expect("sharded run");
        assert_eq!(out.clustering, oracle, "t{threads} diverged");
    }
}

/// The mmap-backed store path must agree with the in-memory path for
/// the same logical dataset, at a chunk capacity that forces many
/// chunks and a ragged tail.
#[test]
fn store_and_dataset_paths_are_identical() {
    let data = dataset(DataFamily::Blobs, 700, 4, 99);
    let p = DbscanParams::new(0.7, 4);
    let dir = std::env::temp_dir().join("mudbscan-conformance-sharded");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("blobs.muds");
    write_store(&data, &path, 64).unwrap();
    let store = ChunkedStore::open(&path).unwrap();
    for shards in [1usize, 3] {
        let mem = Runner::new(p).shards(shards).run(&data).expect("in-memory");
        let ooc = Runner::new(p).shards(shards).run_source(&store).expect("store");
        assert_eq!(mem.clustering, ooc.clustering, "{shards} shard(s): store path diverged");
    }
    std::fs::remove_file(&path).ok();
}

/// Points exactly ε apart across a shard boundary: the open-ball
/// convention (strict `<`) means they are NOT neighbours, and the
/// sharded merge must not glue them. Points at ε − δ MUST be glued.
/// The split plane is driven between the two chains by the planner
/// because the two chains are the only mass in the dataset.
#[test]
fn shard_boundary_at_exactly_eps_respects_the_open_ball() {
    let eps = 1.0;
    let p = DbscanParams::new(eps, 3);
    // Two vertical chains of 4 points each, x = 0 and x = eps exactly:
    // each chain is dense (0.4 < eps steps) so every point is core, but
    // the chains are exactly eps apart — open ball says two clusters.
    let mut rows: Vec<Vec<f64>> = Vec::new();
    for i in 0..4 {
        rows.push(vec![0.0, 0.4 * i as f64]);
    }
    for i in 0..4 {
        rows.push(vec![eps, 0.4 * i as f64]);
    }
    let exact = Dataset::from_rows(&rows);
    let oracle = naive_dbscan(&exact, &p);
    for shards in [1usize, 2, 4] {
        let out = Runner::new(p).shards(shards).run(&exact).expect("sharded run");
        assert_eq!(out.clustering, oracle, "exactly-eps pair glued at {shards} shard(s)");
        assert_eq!(out.clustering.n_clusters, 2, "open ball: exactly-eps chains stay separate");
    }
    // Nudge the right chain inside the ball: one cluster, still exact.
    for row in rows.iter_mut().skip(4) {
        row[0] = eps - 1e-9;
    }
    let close = Dataset::from_rows(&rows);
    let oracle = naive_dbscan(&close, &p);
    for shards in [1usize, 2, 4] {
        let out = Runner::new(p).shards(shards).run(&close).expect("sharded run");
        assert_eq!(out.clustering, oracle, "eps-minus-delta pair split at {shards} shard(s)");
        assert_eq!(out.clustering.n_clusters, 1, "inside the ball: chains must merge");
    }
}
