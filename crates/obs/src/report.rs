//! The aggregated output of a collection window.
//!
//! A [`Report`] is what [`crate::take_report`] returns: every span path
//! with its accumulated wall seconds and enter count, plus the named
//! counters and additive values. It converts losslessly to [`crate::Json`]
//! for the `BENCH_*.json` trajectory files.

use crate::json::Json;

/// Accumulated statistics of one span path.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SpanStat {
    /// Total wall-clock seconds across all entries of this path.
    pub secs: f64,
    /// Number of times the span was entered.
    pub count: u64,
}

/// Everything collected between a [`crate::reset`] and a
/// [`crate::take_report`], sorted by name for deterministic output.
#[derive(Debug, Clone, Default)]
pub struct Report {
    /// `(slash-joined path, stats)` for every span, sorted by path.
    pub spans: Vec<(String, SpanStat)>,
    /// `(name, total)` for every monotone counter, sorted by name.
    pub counts: Vec<(String, u64)>,
    /// `(name, total)` for every additive value, sorted by name.
    pub values: Vec<(String, f64)>,
}

impl Report {
    /// Total seconds recorded under `path` (0 when absent).
    pub fn span_secs(&self, path: &str) -> f64 {
        self.spans.iter().find(|(p, _)| p == path).map_or(0.0, |(_, s)| s.secs)
    }

    /// Number of times the span at `path` was entered (0 when absent).
    pub fn span_count(&self, path: &str) -> u64 {
        self.spans.iter().find(|(p, _)| p == path).map_or(0, |(_, s)| s.count)
    }

    /// Value of the named counter (0 when absent).
    pub fn count(&self, name: &str) -> u64 {
        self.counts.iter().find(|(n, _)| n == name).map_or(0, |(_, v)| *v)
    }

    /// Value of the named additive value (0.0 when absent).
    pub fn value(&self, name: &str) -> f64 {
        self.values.iter().find(|(n, _)| n == name).map_or(0.0, |(_, v)| *v)
    }

    /// Convert to a JSON object:
    /// `{"spans": {path: {"secs": s, "count": c}}, "counts": {...},
    /// "values": {...}}`.
    pub fn to_json(&self) -> Json {
        let spans = Json::obj_from(self.spans.iter().map(|(p, s)| {
            (
                p.clone(),
                Json::obj_from([
                    ("secs".to_string(), Json::Num(s.secs)),
                    ("count".to_string(), Json::Num(s.count as f64)),
                ]),
            )
        }));
        let counts =
            Json::obj_from(self.counts.iter().map(|(n, v)| (n.clone(), Json::Num(*v as f64))));
        let values = Json::obj_from(self.values.iter().map(|(n, v)| (n.clone(), Json::Num(*v))));
        Json::obj_from([
            ("spans".to_string(), spans),
            ("counts".to_string(), counts),
            ("values".to_string(), values),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Report {
        Report {
            spans: vec![
                ("a".into(), SpanStat { secs: 1.5, count: 1 }),
                ("a/b".into(), SpanStat { secs: 0.5, count: 3 }),
            ],
            counts: vec![("mc_dense".into(), 42)],
            values: vec![("virtual".into(), 2.25)],
        }
    }

    #[test]
    fn accessors() {
        let r = sample();
        assert_eq!(r.span_secs("a"), 1.5);
        assert_eq!(r.span_count("a/b"), 3);
        assert_eq!(r.count("mc_dense"), 42);
        assert_eq!(r.value("virtual"), 2.25);
        assert_eq!(r.span_secs("missing"), 0.0);
    }

    #[test]
    fn json_round_trip() {
        let js = sample().to_json();
        let text = js.render_pretty();
        let back = Json::parse(&text).unwrap();
        let ab = back.get("spans").and_then(|s| s.get("a/b")).unwrap();
        assert_eq!(ab.get("count").and_then(Json::as_f64), Some(3.0));
        assert_eq!(
            back.get("counts").and_then(|c| c.get("mc_dense")).and_then(Json::as_f64),
            Some(42.0)
        );
        assert_eq!(
            back.get("values").and_then(|v| v.get("virtual")).and_then(Json::as_f64),
            Some(2.25)
        );
    }
}
