//! Offline shim for the subset of `rand` 0.8 used by this workspace.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the tiny slice of the `rand` API it actually calls:
//! [`SeedableRng::seed_from_u64`], [`rngs::StdRng`], and the [`Rng`]
//! convenience methods `gen`, `gen_bool`, and `gen_range`.
//!
//! `StdRng` here is a SplitMix64 generator — statistically fine for test
//! data generation and fully deterministic for a given seed, which is all
//! the workspace needs. It is NOT the CSPRNG the real crate ships, and the
//! exact value streams differ from upstream `rand`.

/// Low-level entropy source: everything builds on `next_u64`.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable construction, matching the `rand` 0.8 entry point the
/// workspace uses (`StdRng::seed_from_u64(seed)`).
pub trait SeedableRng: Sized {
    fn seed_from_u64(state: u64) -> Self;
}

/// Types that can be sampled uniformly from a half-open `lo..hi` range.
pub trait SampleUniform: Copy + PartialOrd {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "gen_range called with empty range");
                let span = (hi as i128 - lo as i128) as u128;
                // Modulo bias is < 2^-64 per draw for the spans used in
                // tests/generators; acceptable for a test-data shim.
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        assert!(lo < hi, "gen_range called with empty range");
        let u = unit_f64(rng.next_u64());
        lo + u * (hi - lo)
    }
}

impl SampleUniform for f32 {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        f64::sample_range(rng, lo as f64, hi as f64) as f32
    }
}

/// Uniform in [0, 1) from 53 random mantissa bits.
fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Types producible by `rng.gen()` (the `Standard` distribution in the
/// real crate).
pub trait Standard: Sized {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        unit_f64(rng.next_u64())
    }
}

impl Standard for f32 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        unit_f64(rng.next_u64()) as f32
    }
}

impl Standard for bool {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// User-facing convenience methods, blanket-implemented for every
/// [`RngCore`] like in the real crate.
pub trait Rng: RngCore {
    fn gen<T: Standard>(&mut self) -> T {
        T::from_rng(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool probability out of range");
        unit_f64(self.next_u64()) < p
    }

    fn gen_range<T: SampleUniform>(&mut self, range: std::ops::Range<T>) -> T {
        T::sample_range(self, range.start, range.end)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic SplitMix64 generator standing in for `rand::rngs::StdRng`.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            StdRng { state }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let f = rng.gen_range(-2.5..7.5f64);
            assert!((-2.5..7.5).contains(&f));
            let u = rng.gen_range(3..17usize);
            assert!((3..17).contains(&u));
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..200 {
            assert!(!rng.gen_bool(0.0));
            assert!(rng.gen_bool(1.0));
        }
    }
}
