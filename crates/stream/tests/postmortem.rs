//! Fault-to-artifact integration tests: every automatic postmortem
//! trigger in the serving writer (injected panic, forced exactness
//! drift, scheduled self-check) must leave a schema-valid artifact
//! behind that parses and replays. CI runs this file as the postmortem
//! smoke step.

use geom::DbscanParams;
use std::path::PathBuf;
use stream::{ServeOp, ServeOptions, ServingMuDbscan};

fn params() -> DbscanParams {
    DbscanParams::new(1.0, 3)
}

/// Scratch dir cleaned up on drop, so test runs never dirty `results/`.
struct TempDir(PathBuf);

impl TempDir {
    fn new(tag: &str) -> Self {
        let dir = std::env::temp_dir().join(format!("mudbscan-pm-{tag}-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        TempDir(dir)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        std::fs::remove_dir_all(&self.0).ok();
    }
}

fn read_artifacts(dir: &PathBuf) -> Vec<obs::Json> {
    let mut paths: Vec<PathBuf> = std::fs::read_dir(dir)
        .map(|rd| rd.filter_map(|e| e.ok().map(|e| e.path())).collect())
        .unwrap_or_default();
    paths.sort();
    paths
        .iter()
        .map(|p| {
            obs::Json::parse(&std::fs::read_to_string(p).expect("read artifact"))
                .expect("artifact parses as JSON")
        })
        .collect()
}

#[test]
fn writer_panic_dumps_a_replayable_postmortem() {
    let tmp = TempDir::new("panic");
    let h = ServingMuDbscan::spawn_with(
        1,
        params(),
        ServeOptions {
            postmortem_dir: Some(tmp.0.clone()),
            panic_at_epoch: Some(3),
            ..Default::default()
        },
    );
    // Two healthy epochs, then the injected panic on the third.
    h.ingest(vec![ServeOp::insert(vec![0.0]), ServeOp::insert(vec![0.5])]).unwrap();
    h.ingest(vec![ServeOp::insert(vec![-0.5])]).unwrap();
    h.ingest(vec![ServeOp::insert(vec![1.0])]).unwrap();
    // The writer died mid-queue: drain must surface WriterGone, not hang.
    assert_eq!(h.drain().unwrap_err(), stream::ServeError::WriterGone);
    let dumps = read_artifacts(&tmp.0);
    assert_eq!(dumps.len(), 1, "exactly one panic dump expected");
    let js = &dumps[0];
    assert_eq!(js.get("reason").and_then(obs::Json::as_str), Some("writer_panic"));
    obs::validate_postmortem(js).expect("panic artifact is schema-valid");
    let entries = obs::parse_dump(js).expect("artifact replays");
    // The final epochs' digests made it into the dump (the panic fired
    // before epoch 3 recorded, so epochs 1 and 2 are the record), plus
    // the probe's note.
    let epochs: Vec<u64> = entries
        .iter()
        .filter_map(|e| match e {
            obs::FlightEntry::Epoch { digest, .. } => Some(digest.epoch),
            _ => None,
        })
        .collect();
    assert_eq!(epochs, vec![1, 2]);
    assert!(entries.iter().any(|e| matches!(
        e,
        obs::FlightEntry::Note { label, .. } if label.contains("panicked")
    )));
    // The surviving snapshot is the last published epoch.
    assert_eq!(h.pin().epoch(), 2);
}

#[test]
fn forced_drift_dumps_and_counts_even_with_repair_disabled() {
    // The CI fault-injection combo: repair disabled (budget 0) plus a
    // forced drift detection — the artifact must be written and the
    // registry must count the drift, while the engine itself stays
    // exact and serving.
    let tmp = TempDir::new("drift");
    let h = ServingMuDbscan::spawn_with(
        1,
        params(),
        ServeOptions {
            repair_budget: Some(0),
            postmortem_dir: Some(tmp.0.clone()),
            force_drift_at: Some(2),
            ..Default::default()
        },
    );
    let ids = h
        .ingest([[0.0], [0.5], [-0.5], [0.2]].iter().map(|r| ServeOp::insert(r.to_vec())).collect())
        .unwrap();
    h.ingest(vec![ServeOp::delete(ids[3])]).unwrap();
    h.drain().unwrap();
    let stats = h.stats();
    assert_eq!(stats.drift_detections(), 1, "forced drift must be counted");
    let dumps = read_artifacts(&tmp.0);
    assert_eq!(dumps.len(), 1);
    assert_eq!(dumps[0].get("reason").and_then(obs::Json::as_str), Some("exactness_drift"));
    obs::validate_postmortem(&dumps[0]).unwrap();
    let entries = obs::parse_dump(&dumps[0]).unwrap();
    // The drifted epoch's digest is in the dump (recorded before the
    // self-check runs), with the forced epoch's fallback decision.
    assert!(entries.iter().any(|e| matches!(
        e,
        obs::FlightEntry::Epoch { digest, .. }
            if digest.epoch == 2 && digest.decision == obs::RemovalDecision::FallbackRebuild
    )));
    assert!(entries.iter().any(|e| matches!(
        e,
        obs::FlightEntry::Note { label, .. } if label.contains("drift")
    )));
    // The engine keeps serving after the dump.
    h.ingest(vec![ServeOp::insert(vec![0.3])]).unwrap();
    assert_eq!(h.drain().unwrap().snapshot.epoch(), 3);
}

#[test]
fn scheduled_self_check_passes_quietly_on_a_healthy_engine() {
    // With real (unforced) self-checks every epoch, a healthy engine
    // must detect no drift and write no artifact.
    let tmp = TempDir::new("healthy");
    let h = ServingMuDbscan::spawn_with(
        2,
        params(),
        ServeOptions {
            postmortem_dir: Some(tmp.0.clone()),
            self_check_every: Some(1),
            ..Default::default()
        },
    );
    let ids = h
        .ingest(
            [[0.0, 0.0], [0.5, 0.0], [0.0, 0.5], [5.0, 5.0]]
                .iter()
                .map(|r| ServeOp::insert(r.to_vec()))
                .collect(),
        )
        .unwrap();
    h.ingest(vec![ServeOp::delete(ids[1]), ServeOp::insert(vec![0.2, 0.2])]).unwrap();
    h.drain().unwrap();
    assert_eq!(h.stats().drift_detections(), 0);
    assert!(read_artifacts(&tmp.0).is_empty(), "healthy engine must not dump");
}
