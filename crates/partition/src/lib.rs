#![warn(missing_docs)]
#![allow(clippy::needless_range_loop)] // dimension-indexed numeric loops are clearer as index loops

//! Spatial data partitioning for μDBSCAN-D (paper §V-A) plus ε-halo
//! exchange (§V-B), implemented as a BSP program on [`cluster_sim::Bsp`].
//!
//! The kd partitioner recursively splits the active rank group on the
//! axis with the largest spread, at a **sampling-based median** (Patwary
//! et al.'s BD-CATS trick: exact medians of billions of points are too
//! expensive, a gathered sample's quantile is used instead). `log₂ p`
//! rounds leave every rank with a box-shaped region and (approximately)
//! `n / p` points.
//!
//! The halo exchange then sends every rank all remote points strictly
//! within ε of its region box, so every local ε-query is answerable
//! without further communication.
//!
//! ```
//! use cluster_sim::{CommModel, ExecMode};
//! use geom::Dataset;
//! use partition::kd_partition;
//!
//! let rows: Vec<Vec<f64>> = (0..64).map(|i| vec![i as f64, (i % 8) as f64]).collect();
//! let data = Dataset::from_rows(&rows);
//! let out = kd_partition(&data, 4, 1.5, ExecMode::Sequential, CommModel::default());
//! assert_eq!(out.shards.len(), 4);
//! let owned: usize = out.shards.iter().map(|s| s.len()).sum();
//! assert_eq!(owned, 64); // every point owned exactly once
//! for shard in &out.shards {
//!     // halo points sit strictly within ε of the shard's region
//!     for h in 0..shard.halo_ids.len() {
//!         assert!(shard.region.min_dist_sq(shard.halo.point(h as u32)) < 1.5 * 1.5);
//!     }
//! }
//! ```

pub mod kdpart;
pub mod sharding;

pub use kdpart::{kd_partition, PartitionOutput, Shard};
pub use sharding::{gather_shard, plan_shards, ShardPlan, ShardingOptions};
