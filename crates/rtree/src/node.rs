//! Arena node representation.

use geom::Mbr;

/// Index of a node in the tree arena.
pub type NodeId = u32;

/// A leaf entry: an item id and its bounding box. For point data the box is
/// degenerate (`lo == hi == point`).
#[derive(Debug, Clone)]
pub struct Entry {
    /// Bounding box of the stored item.
    pub mbr: Mbr,
    /// Caller-defined item identifier (point id, micro-cluster id, …).
    pub item: u32,
}

impl Entry {
    /// Entry for a point item.
    pub fn point(item: u32, coords: &[f64]) -> Self {
        Self { mbr: Mbr::point(coords), item }
    }
}

/// One R-tree node: either an internal node with child node ids or a leaf
/// with item entries. Every node caches the MBR of its contents.
#[derive(Debug, Clone)]
pub enum Node {
    /// Internal node.
    Internal {
        /// Bounding box of all children.
        mbr: Mbr,
        /// Child node ids.
        children: Vec<NodeId>,
    },
    /// Leaf node.
    Leaf {
        /// Bounding box of all entries.
        mbr: Mbr,
        /// Item entries.
        entries: Vec<Entry>,
    },
}

impl Node {
    /// The node's cached bounding box.
    pub fn mbr(&self) -> &Mbr {
        match self {
            Node::Internal { mbr, .. } | Node::Leaf { mbr, .. } => mbr,
        }
    }

    /// True for leaf nodes.
    pub fn is_leaf(&self) -> bool {
        matches!(self, Node::Leaf { .. })
    }

    /// Number of children (internal) or entries (leaf).
    pub fn fanout(&self) -> usize {
        match self {
            Node::Internal { children, .. } => children.len(),
            Node::Leaf { entries, .. } => entries.len(),
        }
    }

    /// Estimated owned heap bytes (child vector / entry vector and the MBRs
    /// they own).
    pub fn heap_bytes(&self) -> usize {
        match self {
            Node::Internal { mbr, children } => {
                mbr.heap_bytes() + children.capacity() * std::mem::size_of::<NodeId>()
            }
            Node::Leaf { mbr, entries } => {
                mbr.heap_bytes()
                    + entries.capacity() * std::mem::size_of::<Entry>()
                    + entries.iter().map(|e| e.mbr.heap_bytes()).sum::<usize>()
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn entry_point_is_degenerate() {
        let e = Entry::point(7, &[1.0, 2.0]);
        assert_eq!(e.item, 7);
        assert_eq!(e.mbr.lo(), e.mbr.hi());
        assert_eq!(e.mbr.volume(), 0.0);
    }

    #[test]
    fn node_accessors() {
        let leaf = Node::Leaf {
            mbr: Mbr::point(&[0.0]),
            entries: vec![Entry::point(0, &[0.0]), Entry::point(1, &[0.5])],
        };
        assert!(leaf.is_leaf());
        assert_eq!(leaf.fanout(), 2);
        assert!(leaf.heap_bytes() > 0);

        let internal = Node::Internal { mbr: Mbr::point(&[0.0]), children: vec![0, 1, 2] };
        assert!(!internal.is_leaf());
        assert_eq!(internal.fanout(), 3);
    }
}
