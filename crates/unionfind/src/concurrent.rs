//! Lock-free concurrent union–find.
//!
//! The classic atomic-parent design (Anderson & Woll; used by Patwary et
//! al.'s shared-memory PDSDBSCAN): parents live in a `Vec<AtomicU32>`,
//! `union` links the *smaller-indexed* root under the larger via
//! compare-exchange and retries on contention, `find` performs lock-free
//! path splitting with benign racy writes.
//!
//! Linking by index order (not rank) gives a total order on roots, which is
//! what makes the CAS loop ABA-free: a root can only ever be replaced by a
//! larger root, so progress is guaranteed.

use std::sync::atomic::{AtomicU32, Ordering};

/// A wait-free-read, lock-free-update disjoint-set forest over `0..len`.
pub struct ConcurrentUnionFind {
    parent: Vec<AtomicU32>,
}

impl ConcurrentUnionFind {
    /// `n` singleton sets.
    pub fn new(n: usize) -> Self {
        assert!(n <= u32::MAX as usize);
        Self { parent: (0..n as u32).map(AtomicU32::new).collect() }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.parent.len()
    }

    /// True when the structure holds no elements.
    pub fn is_empty(&self) -> bool {
        self.parent.is_empty()
    }

    /// Representative of `x`'s set, with lock-free path splitting.
    pub fn find(&self, x: u32) -> u32 {
        let mut x = x;
        loop {
            let p = self.parent[x as usize].load(Ordering::Acquire);
            if p == x {
                return x;
            }
            let gp = self.parent[p as usize].load(Ordering::Acquire);
            if gp == p {
                return p;
            }
            // Path splitting: benign race — any concurrent value is also an
            // ancestor, so pointing x at gp never breaks the forest.
            let _ = self.parent[x as usize].compare_exchange_weak(
                p,
                gp,
                Ordering::AcqRel,
                Ordering::Relaxed,
            );
            x = gp;
        }
    }

    /// Merge the sets of `a` and `b`. Returns `true` when this call
    /// performed the link (i.e. the sets were distinct).
    pub fn union(&self, a: u32, b: u32) -> bool {
        let mut ra = self.find(a);
        let mut rb = self.find(b);
        loop {
            if ra == rb {
                return false;
            }
            // Keep ra < rb so the smaller root is linked under the larger.
            if ra > rb {
                std::mem::swap(&mut ra, &mut rb);
            }
            match self.parent[ra as usize].compare_exchange(
                ra,
                rb,
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(_) => return true,
                Err(_) => {
                    // ra stopped being a root; chase the new roots and retry.
                    ra = self.find(ra);
                    rb = self.find(rb);
                }
            }
        }
    }

    /// True when `a` and `b` currently belong to the same set. Racy under
    /// concurrent unions (as in any concurrent UF); exact once unions
    /// quiesce.
    pub fn same(&self, a: u32, b: u32) -> bool {
        loop {
            let ra = self.find(a);
            let rb = self.find(b);
            if ra == rb {
                return true;
            }
            // ra might have been linked mid-check; confirm it is still root.
            if self.parent[ra as usize].load(Ordering::Acquire) == ra {
                return false;
            }
        }
    }

    /// Snapshot into a sequential [`crate::UnionFind`]-equivalent dense
    /// label vector (call after all unions completed).
    pub fn dense_labels(&self) -> Vec<u32> {
        let n = self.len();
        let mut label_of_root = vec![u32::MAX; n];
        let mut labels = vec![0u32; n];
        let mut next = 0u32;
        for x in 0..n as u32 {
            let r = self.find(x);
            if label_of_root[r as usize] == u32::MAX {
                label_of_root[r as usize] = next;
                next += 1;
            }
            labels[x as usize] = label_of_root[r as usize];
        }
        labels
    }

    /// Number of distinct sets (call after all unions completed).
    pub fn count_sets(&self) -> usize {
        (0..self.len() as u32).filter(|&x| self.find(x) == x).count()
    }

    /// Estimated heap footprint in bytes.
    pub fn heap_bytes(&self) -> usize {
        self.parent.capacity() * 4
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequential_usage_matches_semantics() {
        let uf = ConcurrentUnionFind::new(6);
        assert!(uf.union(0, 1));
        assert!(uf.union(2, 3));
        assert!(!uf.union(0, 1));
        assert!(uf.same(0, 1));
        assert!(!uf.same(1, 2));
        uf.union(1, 2);
        assert!(uf.same(0, 3));
        assert_eq!(uf.count_sets(), 3);
    }

    #[test]
    fn concurrent_chain_union() {
        // Many threads union overlapping chain segments; the result must be
        // one single set regardless of interleaving.
        let n = 2048u32;
        let uf = ConcurrentUnionFind::new(n as usize);
        std::thread::scope(|s| {
            for t in 0..4 {
                let uf = &uf;
                s.spawn(move || {
                    let mut i = t;
                    while i + 1 < n {
                        uf.union(i, i + 1);
                        i += 1;
                    }
                });
            }
        });
        assert_eq!(uf.count_sets(), 1);
        assert!(uf.same(0, n - 1));
    }

    #[test]
    fn concurrent_matches_sequential_partition() {
        use crate::UnionFind;
        // A fixed random-ish edge set applied concurrently and sequentially
        // must produce the same partition.
        let n = 512usize;
        let edges: Vec<(u32, u32)> = (0..2000u64)
            .map(|i| {
                let a = (i.wrapping_mul(2654435761) % n as u64) as u32;
                let b = (i.wrapping_mul(40503) % n as u64) as u32;
                (a, b)
            })
            .collect();

        let mut seq = UnionFind::new(n);
        for &(a, b) in &edges {
            seq.union(a, b);
        }

        let conc = ConcurrentUnionFind::new(n);
        std::thread::scope(|s| {
            for chunk in edges.chunks(500) {
                let conc = &conc;
                s.spawn(move || {
                    for &(a, b) in chunk {
                        conc.union(a, b);
                    }
                });
            }
        });

        assert_eq!(seq.dense_labels(), conc.dense_labels());
    }

    #[test]
    fn union_returns_linked_flag_exactly_once_per_merge() {
        // n-1 successful links produce one set from n singletons; with
        // duplicates, exactly n-1 calls must return true in total.
        let n = 64u32;
        let uf = ConcurrentUnionFind::new(n as usize);
        let mut performed = 0;
        for round in 0..3 {
            for i in 0..n - 1 {
                if uf.union(i, i + 1) {
                    performed += 1;
                }
            }
            if round == 0 {
                assert_eq!(performed, (n - 1) as usize);
            }
        }
        assert_eq!(performed, (n - 1) as usize);
    }
}
