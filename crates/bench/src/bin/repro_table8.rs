//! Table VIII reproduction: per-step execution time and speedup of
//! μDBSCAN-D (32 ranks) over sequential μDBSCAN on the MPAGD8M3D
//! analogue.
//!
//! ```text
//! cargo run --release -p bench --bin repro_table8
//! ```

use bench::{banner, secs, SEED};
use geom::DbscanParams;
use metrics::Table;
use mudbscan::prelude::{RunDetails, Runner};

const PAPER: &[(&str, &str, &str, &str)] = &[
    ("tree construction", "157.46", "1.89", "83.12"),
    ("finding reachable groups", "170.76", "0.96", "176.45"),
    ("clustering", "124.21", "4.72", "26.31"),
    ("post processing", "388.74", "11.12", "34.95"),
    ("merging", "-", "2.34", "-"),
    ("total", "841.21", "23.97", "35.08"),
];

fn main() {
    banner(
        "Table VIII — per-step speedup of μDBSCAN-D (32 ranks) vs μDBSCAN",
        "step-wise times on MPAGD8M3D and the attained speedups",
        "galaxy analogue at 60K points; distributed times are virtual makespans",
    );

    let dataset = data::galaxy(60_000, 3, SEED);
    let params = DbscanParams::new(0.8, 5);

    eprintln!("[sequential] ...");
    let seq = Runner::new(params).run(&dataset).expect("sequential run");
    eprintln!("[distributed p=32] ...");
    let dist = Runner::new(params).ranks(32).run(&dataset).expect("distributed run");
    assert_eq!(seq.clustering.n_clusters, dist.clustering.n_clusters);

    let steps = [
        ("tree construction", "tree_construction"),
        ("finding reachable groups", "finding_reachable"),
        ("clustering", "clustering"),
        ("post processing", "post_processing"),
    ];

    let mut ours = Table::new(&["step", "μDBSCAN (seq)", "μDBSCAN-D (32)", "speedup"]);
    for (label, key) in steps {
        let s = seq.phases.secs(key);
        let d = dist.phases.secs(key);
        ours.row(&[
            label.to_string(),
            secs(s),
            secs(d),
            if d > 0.0 { format!("{:.2}x", s / d) } else { "-".into() },
        ]);
    }
    let merge = dist.phases.secs("merging");
    ours.row(&["merging".into(), "-".into(), secs(merge), "-".into()]);
    let seq_total = seq.phases.total_secs();
    let dist_total = match dist.details {
        RunDetails::Distributed { runtime_secs, .. } => runtime_secs,
        ref other => panic!("expected Distributed details, got {other:?}"),
    };
    ours.row(&[
        "total".into(),
        secs(seq_total),
        secs(dist_total),
        format!("{:.2}x", seq_total / dist_total),
    ]);

    println!("measured:");
    ours.print();

    println!("\npaper values (seconds / speedup):");
    let mut paper = Table::new(&["step", "μDBSCAN (seq)", "μDBSCAN-D (32)", "speedup"]);
    for &(s, a, b, c) in PAPER {
        paper.row_str(&[s, a, b, c]);
    }
    paper.print();

    println!("\nshape checks: every individual step speeds up; reachable-group");
    println!("finding scales super-linearly (smaller level-1 trees per rank);");
    println!("merging is a small additive cost.");
}
