//! Crash recovery for the distributed driver: fault configuration and
//! the checkpointable form of a rank's local result.
//!
//! Recovery is *exact by construction*: a crashed rank's replacement
//! re-executes the deterministic local μDBSCAN over the same owned
//! partition plus the re-requested ε-halo (halo re-request is idempotent
//! — the merge phase is query-free, so nobody observed partial state),
//! and the re-executed [`LocalRun`] is bit-identical to the lost one.
//! A crash *after* the local stage instead restores the rank's
//! [`Checkpoint`] (charged as a transfer) and re-runs only the edge
//! collection, per Theorem 1's merge argument: the merge consumes only
//! exact core flags and cross-partition ε-pairs, both reproducible.

use cluster_sim::{FaultPlan, RetryConfig};
use metrics::{Counters, PhaseTimer};
use mudbscan::Clustering;

use crate::driver::LocalRun;

/// Fault-injection options for a distributed run: the schedule plus the
/// reliable-delivery policy applied to injected message faults.
#[derive(Debug, Clone, Default)]
pub struct FaultConfig {
    /// The deterministic fault schedule (see [`cluster_sim::fault`]).
    pub plan: FaultPlan,
    /// Timeout/retry-with-backoff policy of the delivery layer.
    pub retry: RetryConfig,
}

impl FaultConfig {
    /// A config injecting `plan` under the default retry policy.
    pub fn new(plan: FaultPlan) -> Self {
        Self { plan, retry: RetryConfig::default() }
    }

    /// Override the retry policy.
    pub fn with_retry(mut self, retry: RetryConfig) -> Self {
        self.retry = retry;
        self
    }
}

/// A durable snapshot of one rank's [`LocalRun`], taken after the local
/// clustering superstep. Restoring it onto a replacement rank is charged
/// as a byte transfer by the recovery driver.
#[derive(Debug, Clone)]
pub struct Checkpoint {
    clustering: Clustering,
    phases: PhaseTimer,
    counters: [u64; 5],
    peak_heap_bytes: usize,
}

impl Checkpoint {
    /// Snapshot `run` (cheap: clones the labels/flags and copies the
    /// counter values).
    pub fn capture(run: &LocalRun) -> Self {
        Self {
            clustering: run.clustering.clone(),
            phases: run.phases.clone(),
            counters: [
                run.counters.range_queries(),
                run.counters.queries_saved(),
                run.counters.dist_computations(),
                run.counters.node_visits(),
                run.counters.union_ops(),
            ],
            peak_heap_bytes: run.peak_heap_bytes,
        }
    }

    /// Rebuild the [`LocalRun`] the crashed rank lost.
    pub fn restore(&self) -> LocalRun {
        let [rq, qs, d, nv, u] = self.counters;
        LocalRun {
            clustering: self.clustering.clone(),
            phases: self.phases.clone(),
            counters: Counters::from_raw(rq, qs, d, nv, u),
            peak_heap_bytes: self.peak_heap_bytes,
        }
    }

    /// Estimated serialized size: 4-byte labels + 1-byte core flags per
    /// point, plus the counter block. What the recovery driver charges
    /// for fetching the checkpoint from stable storage.
    pub fn byte_size(&self) -> usize {
        self.clustering.labels.len() * 4 + self.clustering.is_core.len() + 5 * 8
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_run() -> LocalRun {
        let counters = Counters::from_raw(10, 20, 30, 40, 50);
        let mut phases = PhaseTimer::new();
        phases.add_secs("clustering", 0.25);
        LocalRun {
            clustering: Clustering {
                labels: vec![0, 0, 1, mudbscan::NOISE],
                is_core: vec![true, true, true, false],
                n_clusters: 2,
            },
            phases,
            counters,
            peak_heap_bytes: 4096,
        }
    }

    #[test]
    fn checkpoint_round_trips() {
        let run = sample_run();
        let ck = Checkpoint::capture(&run);
        let restored = ck.restore();
        assert_eq!(restored.clustering, run.clustering);
        assert_eq!(restored.counters.range_queries(), 10);
        assert_eq!(restored.counters.queries_saved(), 20);
        assert_eq!(restored.counters.dist_computations(), 30);
        assert_eq!(restored.counters.node_visits(), 40);
        assert_eq!(restored.counters.union_ops(), 50);
        assert_eq!(restored.peak_heap_bytes, 4096);
        assert!((restored.phases.secs("clustering") - 0.25).abs() < 1e-12);
        assert_eq!(ck.byte_size(), 4 * 4 + 4 + 40);
    }
}
