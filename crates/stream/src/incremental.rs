//! The insertion-incremental algorithm.

use geom::{Dataset, DbscanParams, PointId};
use mcs::{build_micro_clusters_par, BuildOptions};
use metrics::Counters;
use mudbscan::Clustering;
use rtree::{RTree, RTreeConfig};
use unionfind::UnionFind;

/// One online micro-cluster: a center point and an incrementally built
/// auxiliary R-tree over its members.
struct StreamMc {
    /// Kept for diagnostics/debugging even though queries go through `aux`.
    #[allow(dead_code)]
    center: PointId,
    aux: RTree,
    members: u32,
}

/// Outcome of [`StreamingMuDbscan::try_remove`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RemoveOutcome {
    /// The point was removed and connectivity over the affected
    /// component(s) was repaired locally.
    Removed {
        /// Number of surviving points the repair examined: the cores
        /// walked by the no-split probe plus the re-anchored borders
        /// and demoted cores when the fast path commits
        /// ([`StreamingMuDbscan::try_remove`]), or the members of the
        /// affected component(s) when the union replay runs. 0 when
        /// the removed point was noise or an unanchoring border.
        touched: usize,
    },
    /// The affected region holds more than `budget` surviving points;
    /// **nothing was mutated**. The caller should fall back to a full
    /// rebuild ([`StreamingMuDbscan::from_dataset`] over the live set).
    ExceedsBudget {
        /// Size of the region a repair would have to replay.
        component: usize,
    },
}

/// Streaming μDBSCAN: insert points one at a time; the clustering of the
/// prefix seen so far is always exactly classical DBSCAN's. Points can
/// also be removed exactly ([`Self::try_remove`]): a removal tombstones
/// the internal id and repairs connectivity locally over the affected
/// component instead of rebuilding the whole structure.
pub struct StreamingMuDbscan {
    params: DbscanParams,
    data: Dataset,
    /// Level-1 R-tree over MC centers (item = MC index).
    level1: RTree,
    mcs: Vec<StreamMc>,
    /// `counts[p] = |N_ε(p)|` over the live points inserted so far (self
    /// included; 0 for tombstoned points).
    counts: Vec<u32>,
    uf: UnionFind,
    /// Union–find element of every point. Insertions mint the element
    /// in lock-step with the id; excision ([`Self::uf_excise`]) swaps
    /// in a fresh singleton element and leaves the old one behind as
    /// an unreferenced *ghost* inside its set, which is how the
    /// no-split fast path detaches a point from a set that cannot be
    /// reset member-by-member.
    uf_slot: Vec<PointId>,
    is_core: Vec<bool>,
    assigned: Vec<bool>,
    /// `live[p]` is false once `p` has been removed. Tombstoned points
    /// keep their internal id (dataset slots are never compacted) but
    /// are deleted from their MC's aux tree, so no ε-query returns them.
    live: Vec<bool>,
    dead_count: usize,
    /// Micro-cluster index of every point (tombstones keep their last
    /// value; it is only read for live points).
    mc_of: Vec<u32>,
    counters: Counters,
}

impl StreamingMuDbscan {
    /// Empty stream for `dim`-dimensional points, for point-at-a-time
    /// ingestion via [`Self::insert`] / [`Self::extend_from`]. When the
    /// whole dataset is available up front, prefer
    /// [`Self::from_dataset`] (parallel bulk load) or the
    /// `mudbscan::prelude::Runner` facade.
    pub fn empty(dim: usize, params: DbscanParams) -> Self {
        Self {
            params,
            data: Dataset::empty(dim),
            level1: RTree::new(dim),
            mcs: Vec::new(),
            counts: Vec::new(),
            uf: UnionFind::new(0),
            uf_slot: Vec::new(),
            is_core: Vec::new(),
            assigned: Vec::new(),
            live: Vec::new(),
            dead_count: 0,
            mc_of: Vec::new(),
            counters: Counters::new(),
        }
    }

    /// Bulk-load a dataset that is fully available up front, then keep
    /// streaming: the μR-tree is built with the tiled parallel
    /// constructor ([`build_micro_clusters_par`]), every ε-neighbourhood
    /// is computed in parallel against it, and the disjoint-set union
    /// rules are replayed sequentially in id order. The resulting
    /// structure is a valid streaming state — [`Self::snapshot`] is
    /// exactly the batch DBSCAN clustering, and later [`Self::insert`]
    /// calls continue incrementally from it.
    ///
    /// This is the low-level entry point the facade builds on:
    /// applications should run `Runner::new(params)
    /// .family(Family::Streaming)` (one-shot batch) or `Runner::serve`
    /// (long-running concurrent service, `docs/SERVING.md`) and only
    /// reach for this constructor when embedding the engine directly.
    /// Point-at-a-time ingestion via [`Self::empty`] +
    /// [`Self::extend_from`] remains the sequential path.
    pub fn from_dataset(data: &Dataset, params: DbscanParams) -> Self {
        let n = data.len();
        let dim = data.dim();
        let counters = Counters::new();
        let threads = std::thread::available_parallelism().map_or(4, |p| p.get());
        let opts = BuildOptions { parallel: true, ..BuildOptions::default() };
        let (mut tree, _stats) =
            build_micro_clusters_par(data, params.eps, &opts, threads, &counters);
        tree.compute_reachable(data, &counters);

        // Exact ε-neighbourhoods (self included) for every point, in
        // parallel over disjoint id ranges.
        let mut nbhd: Vec<Vec<PointId>> = vec![Vec::new(); n];
        if n > 0 {
            let chunk = n.div_ceil(threads).max(1);
            let tree_ref = &tree;
            std::thread::scope(|scope| {
                let mut handles = Vec::new();
                for (c, slot) in nbhd.chunks_mut(chunk).enumerate() {
                    handles.push(scope.spawn(move || {
                        let local = Counters::new();
                        for (k, dst) in slot.iter_mut().enumerate() {
                            let p = (c * chunk + k) as PointId;
                            let cost = tree_ref.neighborhood(data, p, dst);
                            local.count_range_query();
                            local.count_dists(cost.mbr_tests);
                            local.count_node_visits(cost.nodes_visited.max(1));
                        }
                        local
                    }));
                }
                for h in handles {
                    counters.absorb(&h.join().expect("neighborhood worker panicked"));
                }
            });
        }

        // Replay the same union rules `insert`/`make_core` apply, in id
        // order: deterministic, and exact by the classical DBSCAN
        // argument (border ties may attach differently than some other
        // insertion order, which DBSCAN itself leaves unspecified).
        let min_pts = params.min_pts as u32;
        let counts: Vec<u32> = nbhd.iter().map(|nb| nb.len() as u32).collect();
        let is_core: Vec<bool> = counts.iter().map(|&c| c >= min_pts).collect();
        let mut uf = UnionFind::new(n);
        let mut assigned = vec![false; n];
        for p in 0..n {
            if !is_core[p] {
                continue;
            }
            assigned[p] = true;
            for &q in &nbhd[p] {
                let qi = q as usize;
                if qi == p {
                    continue;
                }
                if is_core[qi] {
                    uf.union(q, p as PointId);
                    counters.count_union();
                } else if !assigned[qi] {
                    uf.union(p as PointId, q);
                    counters.count_union();
                    assigned[qi] = true;
                }
            }
        }

        // Convert the μR-tree into the online representation: the level-1
        // tree maps to MC indices, each MC keeps its (STR-packed) aux
        // tree, and both keep accepting incremental insertions. Every
        // member sits strictly within ε of its MC center, so the online
        // 2ε center-search invariant holds.
        let level1 = RTree::bulk_load_points(
            dim,
            RTreeConfig::default(),
            tree.mcs.iter().enumerate().map(|(i, mc)| (i as u32, data.point(mc.center).to_vec())),
        );
        let mut mc_of = vec![u32::MAX; n];
        for (i, mc) in tree.mcs.iter().enumerate() {
            for &p in &mc.members {
                mc_of[p as usize] = i as u32;
            }
        }
        debug_assert!(mc_of.iter().all(|&m| m != u32::MAX), "MCs must partition the dataset");
        let mcs = std::mem::take(&mut tree.mcs)
            .into_iter()
            .map(|mc| {
                let members = mc.members.len() as u32;
                let aux = mc.aux.unwrap_or_else(|| {
                    let mut t = RTree::with_config(dim, RTreeConfig::default());
                    for &p in &mc.members {
                        t.insert_point(p, data.point(p));
                    }
                    t
                });
                StreamMc { center: mc.center, aux, members }
            })
            .collect();

        Self {
            params,
            data: data.clone(),
            level1,
            mcs,
            counts,
            uf,
            uf_slot: (0..n as PointId).collect(),
            is_core,
            assigned,
            live: vec![true; n],
            dead_count: 0,
            mc_of,
            counters,
        }
    }

    /// Points ingested so far, tombstoned removals included — this is
    /// the size of the internal id space, not the live population (see
    /// [`Self::live_len`]).
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True before the first insertion.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// True when `p` has been ingested and not removed.
    pub fn is_live(&self, p: PointId) -> bool {
        self.live[p as usize]
    }

    /// Number of live (never-removed) points.
    pub fn live_len(&self) -> usize {
        self.data.len() - self.dead_count
    }

    /// Number of tombstoned removals still occupying internal ids.
    /// Grows until the owner compacts by rebuilding from the live set.
    pub fn dead_len(&self) -> usize {
        self.dead_count
    }

    /// Number of micro-clusters currently maintained.
    pub fn mc_count(&self) -> usize {
        self.mcs.len()
    }

    /// The density parameters.
    pub fn params(&self) -> DbscanParams {
        self.params
    }

    /// Operation counters (queries, distances, unions).
    pub fn counters(&self) -> &Counters {
        &self.counters
    }

    /// Coordinates of an ingested point.
    pub fn point(&self, p: PointId) -> &[f64] {
        self.data.point(p)
    }

    /// The ingested points, in insertion order.
    pub fn dataset(&self) -> &Dataset {
        &self.data
    }

    /// Root of `p`'s disjoint set, through the slot indirection.
    fn uf_root(&self, p: PointId) -> PointId {
        self.uf.find_const(self.uf_slot[p as usize])
    }

    /// Union the sets of points `a` and `b`, through the slot
    /// indirection.
    fn uf_union(&mut self, a: PointId, b: PointId) {
        let (sa, sb) = (self.uf_slot[a as usize], self.uf_slot[b as usize]);
        self.uf.union(sa, sb);
    }

    /// Detach `p` from its disjoint set by minting it a fresh singleton
    /// element. The old element stays behind as an unreferenced ghost
    /// inside its set — nothing maps to it, so it can never leak the
    /// set's identity — which makes excision sound where
    /// [`UnionFind::reset_to_singleton`] (a whole-set contract) is
    /// not: other members' parent chains may run through the old
    /// element, and they keep doing so harmlessly.
    fn uf_excise(&mut self, p: PointId) {
        self.uf_slot[p as usize] = self.uf.push();
    }

    /// ε-neighbourhood of arbitrary coordinates over the current prefix
    /// (strict `< ε`), via the micro-cluster index.
    fn query(&self, coords: &[f64]) -> Vec<PointId> {
        let eps = self.params.eps;
        let mut mcs_hit: Vec<u32> = Vec::new();
        self.level1.search_sphere(coords, 2.0 * eps, |mc| mcs_hit.push(mc));
        let mut out = Vec::new();
        for mc in mcs_hit {
            let cost = self.mcs[mc as usize].aux.search_sphere(coords, eps, |q| out.push(q));
            self.counters.count_dists(cost.mbr_tests);
        }
        self.counters.count_range_query();
        out
    }

    /// Ingest one point; returns its id. On return, [`Self::snapshot`]
    /// is exactly the DBSCAN clustering of all points inserted so far.
    pub fn insert(&mut self, coords: &[f64]) -> PointId {
        assert_eq!(coords.len(), self.data.dim(), "dimensionality mismatch");
        let min_pts = self.params.min_pts as u32;

        // Neighbours BEFORE p is added (p joins its own count below).
        let nbhrs = self.query(coords);

        let p = self.data.push(coords);
        self.counts.push(nbhrs.len() as u32 + 1);
        self.is_core.push(false);
        self.assigned.push(false);
        self.live.push(true);
        let slot = self.uf.push();
        self.uf_slot.push(slot);

        // Micro-cluster maintenance: join the first MC whose center is
        // strictly within ε, else start a new one. (A removed center
        // leaves its MC behind as a *virtual* center: the level-1 entry
        // and the members-within-ε invariant both stay valid.)
        let (hit, probe_cost) = self.level1.first_in_sphere(coords, self.params.eps);
        self.counters.count_node_visits(probe_cost.nodes_visited.max(1));
        self.counters.count_dists(probe_cost.mbr_tests);
        match hit {
            Some(mc) => {
                self.mcs[mc as usize].aux.insert_point(p, coords);
                self.mcs[mc as usize].members += 1;
                self.mc_of.push(mc);
            }
            None => {
                let id = self.mcs.len() as u32;
                let mut aux = RTree::with_config(self.data.dim(), RTreeConfig::default());
                aux.insert_point(p, coords);
                self.mcs.push(StreamMc { center: p, aux, members: 1 });
                self.level1.insert_point(id, coords);
                self.mc_of.push(id);
            }
        }

        // Bump neighbour counts; collect promotions (count crossing
        // MinPts exactly now).
        let mut promoted: Vec<PointId> = Vec::new();
        for &q in &nbhrs {
            self.counts[q as usize] += 1;
            if self.counts[q as usize] == min_pts && !self.is_core[q as usize] {
                promoted.push(q);
            }
        }

        // Process p itself.
        if self.counts[p as usize] >= min_pts {
            self.make_core(p, &nbhrs);
        } else {
            for &q in &nbhrs {
                if self.is_core[q as usize] {
                    self.uf_union(q, p);
                    self.counters.count_union();
                    self.assigned[p as usize] = true;
                    break;
                }
            }
        }

        // Process promotions: each newly-core point wires up its edges
        // with one ε-query.
        for q in promoted {
            if self.is_core[q as usize] {
                continue; // p's processing might have promoted q already
            }
            let qn = self.query(self.data.point(q)).to_vec();
            // Re-check: the stored count is authoritative, the query must
            // agree (self included).
            debug_assert_eq!(qn.len() as u32, self.counts[q as usize]);
            self.make_core(q, &qn);
        }
        p
    }

    /// Mark `x` core and apply the disjoint-set union rules against its
    /// neighbour list.
    fn make_core(&mut self, x: PointId, nbhrs: &[PointId]) {
        self.is_core[x as usize] = true;
        self.assigned[x as usize] = true;
        for &q in nbhrs {
            if q == x {
                continue;
            }
            if self.is_core[q as usize] {
                self.uf_union(q, x);
                self.counters.count_union();
            } else if !self.assigned[q as usize] {
                self.uf_union(x, q);
                self.counters.count_union();
                self.assigned[q as usize] = true;
            }
        }
    }

    /// Remove the live point `p` exactly, repairing connectivity locally
    /// whatever the blast radius. Returns the number of surviving points
    /// the repair replayed. Panics when `p` is unknown or already dead.
    pub fn remove(&mut self, p: PointId) -> usize {
        match self.try_remove(p, usize::MAX) {
            RemoveOutcome::Removed { touched } => touched,
            RemoveOutcome::ExceedsBudget { .. } => unreachable!("unbounded budget"),
        }
    }

    /// Remove the live point `p` exactly — but only when the repair
    /// region holds at most `budget` surviving points; otherwise return
    /// [`RemoveOutcome::ExceedsBudget`] **without mutating anything**, so
    /// the caller can fall back to a full rebuild.
    ///
    /// The repair is micro-cluster-local in the paper's sense: `p` is
    /// deleted from its MC's aux R-tree (one [`rtree::RTree::remove`]
    /// with MBR shrink), every live ε-neighbour's count is decremented,
    /// cores that fall below MinPts are demoted, and connectivity is
    /// repaired in two tiers:
    ///
    /// 1. **No-split fast path** (`no_split_repair`): a bounded
    ///    probe tries to certify that deleting `p` and the demoted
    ///    cores from the core graph cannot split any component. When it
    ///    succeeds the union–find is already correct restricted to the
    ///    surviving cores — only the capture (`assigned`) of the
    ///    demoted cores and of the borders they or `p` anchored needs
    ///    re-resolving, a constant-size repair even when the component
    ///    is the whole dataset. This is what keeps deletions cheap in
    ///    one-giant-cluster regimes, where the replay below would cost
    ///    as much as a rebuild.
    /// 2. **Component replay**: because the union–find cannot unsplit,
    ///    connectivity is otherwise recomputed over the affected
    ///    components: `p`'s own component plus the component of every
    ///    demoted core (a border `p` can sit between clusters, so these
    ///    need not coincide). Those members are reset to singletons
    ///    (sound because parent chains never leave a set) and the exact
    ///    union rules of [`Self::from_dataset`] are replayed over them
    ///    in id order, one ε-query per surviving core. Borders whose
    ///    every in-component anchor was demoted are re-attached with
    ///    one ε-query each, since they may still be held by a core of
    ///    an untouched component.
    ///
    /// Deletions never promote (counts only decrease), so the replay is
    /// closed over the affected components: a core in the region cannot
    /// union outside it (a cross-component core edge would have merged
    /// the components before the removal).
    pub fn try_remove(&mut self, p: PointId, budget: usize) -> RemoveOutcome {
        let pi = p as usize;
        assert!(pi < self.data.len() && self.live[pi], "remove of a dead or unknown point");
        let min_pts = self.params.min_pts as u32;
        let coords = self.data.point(p).to_vec();

        // ε-neighbours while p is still indexed (p included).
        let nbhrs = self.query(&coords);
        debug_assert_eq!(nbhrs.len() as u32, self.counts[pi]);

        if !self.assigned[pi] {
            // p is noise: no live core has p in its ε-ball (any such
            // core would have captured p at promotion or insert time),
            // so no neighbour can be demoted and no component is
            // affected — constant-size repair.
            self.detach(p, &coords);
            for &q in &nbhrs {
                if q != p {
                    self.counts[q as usize] -= 1;
                    debug_assert!(
                        !self.is_core[q as usize] || self.counts[q as usize] >= min_pts,
                        "a noise removal demoted a core"
                    );
                }
            }
            return RemoveOutcome::Removed { touched: 0 };
        }

        // Cores that lose the core property when p leaves (count would
        // drop to MinPts - 1). All are within ε of p, but p may be a
        // border shared between clusters, so their components can
        // differ from p's.
        let demoted: Vec<PointId> = nbhrs
            .iter()
            .copied()
            .filter(|&q| q != p && self.is_core[q as usize] && self.counts[q as usize] == min_pts)
            .collect();

        if let Some(outcome) = self.no_split_repair(p, &coords, &nbhrs, &demoted, budget) {
            return outcome;
        }

        let mut roots: Vec<PointId> = vec![self.uf_root(p)];
        for &d in &demoted {
            let r = self.uf_root(d);
            if !roots.contains(&r) {
                roots.push(r);
            }
        }
        let comp: Vec<PointId> = (0..self.data.len() as PointId)
            .filter(|&q| self.live[q as usize] && roots.contains(&self.uf_root(q)))
            .collect();
        let touched = comp.len() - 1; // p itself is in `comp`
        if touched > budget {
            return RemoveOutcome::ExceedsBudget { component: touched };
        }

        // Commit: drop p, decrement neighbour counts, apply demotions.
        self.detach(p, &coords);
        for &q in &nbhrs {
            if q != p {
                self.counts[q as usize] -= 1;
            }
        }
        for &d in &demoted {
            self.is_core[d as usize] = false;
        }

        // Local union–find repair: reset every member of the affected
        // sets (p included — parent chains are intra-set, so a whole-set
        // reset cannot dangle; ghost elements left in these sets by
        // earlier excisions are unreferenced either way), then replay
        // the exact `from_dataset` union rules in id order over the
        // surviving cores.
        for &q in &comp {
            self.uf.reset_to_singleton(self.uf_slot[q as usize]);
            self.assigned[q as usize] = false;
        }
        for &q in &comp {
            if q == p || !self.is_core[q as usize] {
                continue;
            }
            let qn = self.query(self.data.point(q));
            debug_assert_eq!(qn.len() as u32, self.counts[q as usize]);
            self.make_core(q, &qn);
        }
        // Borders whose every in-component anchor was demoted may still
        // be held by a core of an untouched component.
        for &q in &comp {
            if q == p || self.is_core[q as usize] || self.assigned[q as usize] {
                continue;
            }
            let qn = self.query(self.data.point(q));
            if let Some(&c) = qn.iter().find(|&&c| self.is_core[c as usize]) {
                self.uf_union(c, q);
                self.counters.count_union();
                self.assigned[q as usize] = true;
            }
        }
        RemoveOutcome::Removed { touched }
    }

    /// Upper bound on ε-queries the no-split probe may spend walking
    /// the surviving core graph before giving up and handing the
    /// removal to the component replay. Each BFS expansion costs one
    /// ε-query, so this caps the probe's overhead at a small constant
    /// multiple of an insert even when the component is the whole
    /// dataset. Dense interiors usually certify with **zero**
    /// expansions (the seed cores are pairwise within ε); the cap only
    /// bites on stringy components, where the replay fallback is cheap
    /// anyway.
    const NO_SPLIT_PROBE_CAP: usize = 64;

    /// Fast tier of [`Self::try_remove`]: certify that deleting `p`
    /// (when core) and the `demoted` cores from the core graph cannot
    /// split a component, then repair without touching the union–find.
    ///
    /// **Certificate.** Any core path between two surviving cores that
    /// ran through a removed vertex enters and leaves the removed set
    /// via *seed* cores — surviving cores within ε of `p` or of a
    /// demoted core. So a component stays connected iff its seeds stay
    /// mutually connected in the surviving core graph (and with ≤ 1
    /// seed no split is possible at all). Seeds are grouped per old
    /// component root (when `p` is core every demoted core shares its
    /// root via the core–core edge, so there is one group; a border
    /// `p` can demote cores in several components). Each group is
    /// certified in two steps: seeds pairwise within ε are core–core
    /// neighbours, hence already connected — if that relation alone
    /// joins the whole group (the common case in dense interiors) the
    /// certificate is free; otherwise a BFS over the surviving core
    /// graph, capped at [`Self::NO_SPLIT_PROBE_CAP`] expansions, tries
    /// to connect the seed sub-groups. Exhausting the frontier first
    /// means the component genuinely splits; either that or hitting
    /// the cap returns `None` and the replay tier takes over.
    ///
    /// **Repair.** With no split, the union–find restricted to the
    /// surviving cores is already exact ([`Self::canonical_snapshot`]
    /// reads only the core partition plus the `assigned` flags), so
    /// the commit is: tombstone `p`, decrement neighbour counts, drop
    /// the demoted cores' core flags, and re-resolve capture exactly
    /// where a core vertex vanished — each demoted core and each
    /// assigned border within ε of `p`-when-core or of a demoted core
    /// is excised from its old set ([`Self::uf_excise`]) and, when it
    /// keeps a surviving anchor core (one ε-query per border),
    /// re-attached to the minimum-id one. The excision is what keeps
    /// later *insertions* sound: a stale set membership would let a
    /// future promotion or capture union two unrelated components
    /// through the moved point.
    ///
    /// Returns `None` to fall through to the replay tier; the repair
    /// region (`touched` = probed cores + re-anchored borders +
    /// demoted cores) is a subset of the replay's affected components,
    /// so a `touched` over budget falls through too and the replay
    /// tier reports the exact blast radius in
    /// [`RemoveOutcome::ExceedsBudget`].
    fn no_split_repair(
        &mut self,
        p: PointId,
        coords: &[f64],
        nbhrs: &[PointId],
        demoted: &[PointId],
        budget: usize,
    ) -> Option<RemoveOutcome> {
        let p_core = self.is_core[p as usize];
        let alive_core = |s: &Self, q: PointId| -> bool {
            q != p && s.is_core[q as usize] && !demoted.contains(&q)
        };
        // Neighbour lists of the demoted cores while everything is
        // still indexed. Nothing is mutated until the certificate is in
        // hand, so a `None` return leaves the state untouched.
        let demoted_nbhrs: Vec<Vec<PointId>> =
            demoted.iter().map(|&d| self.query(self.data.point(d))).collect();

        // Seed groups, keyed by old component root.
        let mut groups: Vec<(PointId, Vec<PointId>)> = Vec::new();
        let add_seed =
            |groups: &mut Vec<(PointId, Vec<PointId>)>, root: PointId, q: PointId| match groups
                .iter_mut()
                .find(|(r, _)| *r == root)
            {
                Some((_, seeds)) => {
                    if !seeds.contains(&q) {
                        seeds.push(q);
                    }
                }
                None => groups.push((root, vec![q])),
            };
        if p_core {
            let root = self.uf_root(p);
            for &q in nbhrs {
                if alive_core(self, q) {
                    add_seed(&mut groups, root, q);
                }
            }
        }
        for (i, &d) in demoted.iter().enumerate() {
            let root = self.uf_root(d);
            debug_assert!(
                !p_core || root == self.uf_root(p),
                "a demoted core shares a core edge with a core p, hence its component"
            );
            for &q in &demoted_nbhrs[i] {
                if alive_core(self, q) {
                    add_seed(&mut groups, root, q);
                }
            }
        }

        let eps_sq = self.params.eps * self.params.eps;
        let mut probes = 0usize;
        let mut touched = demoted.len();
        for (_, seeds) in &mut groups {
            seeds.sort_unstable();
            touched += seeds.len();
            if seeds.len() < 2 {
                continue;
            }
            // Free certificate first: seeds pairwise strictly within ε
            // are core–core neighbours, already connected. Label the
            // seed sub-groups that relation induces.
            let s = seeds.len();
            let mut label: Vec<usize> = (0..s).collect();
            for i in 0..s {
                for j in (i + 1)..s {
                    if geom::dist_sq(self.data.point(seeds[i]), self.data.point(seeds[j])) < eps_sq
                    {
                        let (a, b) = (label[i], label[j]);
                        if a != b {
                            let keep = a.min(b);
                            for l in label.iter_mut() {
                                if *l == a || *l == b {
                                    *l = keep;
                                }
                            }
                        }
                    }
                }
            }
            self.counters.count_dists((s * (s - 1) / 2) as u64);
            if label.iter().all(|&l| l == 0) {
                continue;
            }
            // BFS over the surviving core graph: start from sub-group
            // 0's seeds, absorb a whole sub-group whenever any of its
            // seeds is reached, succeed when none is pending.
            let mut pending: Vec<usize> = label.iter().copied().filter(|&l| l != 0).collect();
            pending.sort_unstable();
            pending.dedup();
            fn absorb(
                seeds: &[PointId],
                label: &[usize],
                l: usize,
                visited: &mut std::collections::HashSet<PointId>,
                frontier: &mut std::collections::VecDeque<PointId>,
            ) {
                for (i, &q) in seeds.iter().enumerate() {
                    if label[i] == l && visited.insert(q) {
                        frontier.push_back(q);
                    }
                }
            }
            let mut visited: std::collections::HashSet<PointId> = std::collections::HashSet::new();
            let mut frontier = std::collections::VecDeque::new();
            absorb(seeds, &label, 0, &mut visited, &mut frontier);
            while let Some(c) = frontier.pop_front() {
                if pending.is_empty() {
                    break;
                }
                if probes == Self::NO_SPLIT_PROBE_CAP {
                    return None;
                }
                probes += 1;
                let mut cn = self.query(self.data.point(c));
                cn.sort_unstable();
                for q in cn {
                    if alive_core(self, q) && visited.insert(q) {
                        frontier.push_back(q);
                        if let Some(i) = seeds.iter().position(|&t| t == q) {
                            let l = label[i];
                            if let Ok(k) = pending.binary_search(&l) {
                                pending.remove(k);
                                absorb(seeds, &label, l, &mut visited, &mut frontier);
                            }
                        }
                    }
                }
            }
            if !pending.is_empty() {
                return None; // a genuine split: the replay tier must run
            }
            touched += visited.len().saturating_sub(seeds.len());
        }

        // Borders at risk of losing their last anchor: the assigned
        // non-cores within ε of a vanished core vertex.
        let mut recheck: Vec<PointId> = Vec::new();
        let at_risk = |s: &Self, q: PointId| -> bool {
            q != p && !s.is_core[q as usize] && s.assigned[q as usize]
        };
        if p_core {
            recheck.extend(nbhrs.iter().copied().filter(|&q| at_risk(self, q)));
        }
        for list in &demoted_nbhrs {
            recheck.extend(list.iter().copied().filter(|&q| at_risk(self, q)));
        }
        recheck.sort_unstable();
        recheck.dedup();
        touched += recheck.len();
        if touched > budget {
            return None;
        }

        // Commit: drop p, decrement neighbour counts, apply demotions.
        self.detach(p, coords);
        self.uf_excise(p);
        for &q in nbhrs {
            if q != p {
                self.counts[q as usize] -= 1;
            }
        }
        for &d in demoted {
            self.is_core[d as usize] = false;
        }
        // Re-resolve capture against the post-removal core flags: a
        // membership scan per demoted core (its neighbour list is in
        // hand), one ε-query per at-risk border (p is gone from the
        // index, so the query cannot return it). Every such point is
        // excised from the raw union–find first — its old set may no
        // longer hold any of its anchors, and a later promotion or
        // capture through a stale membership would union two unrelated
        // components — then points that keep an anchor re-attach to
        // their minimum-id surviving one.
        for (i, &d) in demoted.iter().enumerate() {
            self.uf_excise(d);
            let anchor =
                demoted_nbhrs[i].iter().copied().filter(|&q| self.is_core[q as usize]).min();
            self.assigned[d as usize] = anchor.is_some();
            if let Some(a) = anchor {
                self.uf_union(a, d);
                self.counters.count_union();
            }
        }
        for &q in &recheck {
            self.uf_excise(q);
            let qn = self.query(self.data.point(q));
            let anchor = qn.into_iter().filter(|&c| self.is_core[c as usize]).min();
            self.assigned[q as usize] = anchor.is_some();
            if let Some(a) = anchor {
                self.uf_union(a, q);
                self.counters.count_union();
            }
        }
        Some(RemoveOutcome::Removed { touched })
    }

    /// Tombstone `p`: delete it from its MC's aux tree (so no ε-query
    /// ever returns it again) and clear its clustering state. The MC's
    /// center may become *virtual* (the removed point), which keeps both
    /// the level-1 2ε search invariant and the members-within-ε bound
    /// intact; an emptied MC simply stops matching queries.
    fn detach(&mut self, p: PointId, coords: &[f64]) {
        let mc = self.mc_of[p as usize] as usize;
        let removed = self.mcs[mc].aux.remove_point(p, coords);
        debug_assert!(removed, "point missing from its micro-cluster aux tree");
        self.mcs[mc].members -= 1;
        self.live[p as usize] = false;
        self.dead_count += 1;
        self.is_core[p as usize] = false;
        self.assigned[p as usize] = false;
        self.counts[p as usize] = 0;
    }

    /// Extract the clustering of the points ingested so far, indexed by
    /// internal id. Tombstoned points appear as noise singletons; the
    /// live-compacted form is [`Self::canonical_snapshot`].
    ///
    /// On an insert-only stream this is exactly DBSCAN over the prefix.
    /// After removals the no-split fast path of [`Self::try_remove`]
    /// re-anchors a moved border to its *minimum-id* surviving core —
    /// the same tie classical DBSCAN leaves unspecified and the replay
    /// resolves by id order — so border attachment here can differ
    /// from some particular insertion order while staying exact;
    /// [`Self::canonical_snapshot`] is the order-independent view.
    pub fn snapshot(&mut self) -> Clustering {
        use std::collections::hash_map::Entry;
        // Materialise the point-level partition through the slot
        // indirection: the raw union–find may hold ghost elements from
        // excisions, so its element space is not the id space.
        let n = self.data.len();
        let mut uf = UnionFind::new(n);
        let mut rep: std::collections::HashMap<PointId, PointId> = std::collections::HashMap::new();
        for p in 0..n as PointId {
            match rep.entry(self.uf_root(p)) {
                Entry::Occupied(e) => {
                    uf.union(*e.get(), p);
                }
                Entry::Vacant(e) => {
                    e.insert(p);
                }
            }
        }
        Clustering::from_union_find(&mut uf, self.is_core.clone())
    }

    /// The clustering of the current **live** points (insertion order,
    /// compacted over tombstones) with border ties resolved canonically:
    /// every border point joins the cluster of its **minimum-id core
    /// neighbour**, which is exactly the attachment
    /// [`Self::from_dataset`] produces when it replays the union rules
    /// in id order. [`Self::snapshot`]'s border attachment depends on
    /// insertion order (classical DBSCAN leaves the tie unspecified),
    /// so two orders of the same points can disagree on borders while
    /// both being exact. This method re-resolves the ties, making the
    /// result compare `==` against a batch run on the compacted live
    /// set — the serving layer ([`crate::serve`]) publishes canonical
    /// snapshots for precisely that bit-identical epoch contract.
    /// (Compaction preserves insertion order, so the minimum internal
    /// id and the minimum compacted id pick the same anchor.)
    ///
    /// Costs one ε-query per captured border point; core components
    /// are copied from the incremental union–find (they are already
    /// order-independent).
    pub fn canonical_snapshot(&self) -> Clustering {
        use std::collections::hash_map::Entry;
        let n = self.data.len();
        // Compacted position of every live point.
        let mut pos = vec![u32::MAX; n];
        let mut live_n = 0u32;
        for (slot, &alive) in pos.iter_mut().zip(&self.live) {
            if alive {
                *slot = live_n;
                live_n += 1;
            }
        }
        let mut uf = UnionFind::new(live_n as usize);
        // Each incremental union–find set holds exactly one core
        // component plus the borders it captured; restricted to cores
        // the partition is order-independent. Copy it by unioning every
        // core point with the first core seen in its set. (Tombstones
        // are never core, so they cannot leak in.)
        let mut rep: std::collections::HashMap<PointId, u32> = std::collections::HashMap::new();
        for (p, &cpos) in pos.iter().enumerate() {
            if !self.is_core[p] {
                continue;
            }
            match rep.entry(self.uf_root(p as PointId)) {
                Entry::Occupied(e) => {
                    uf.union(*e.get(), cpos);
                }
                Entry::Vacant(e) => {
                    e.insert(cpos);
                }
            }
        }
        // Re-attach each captured border to its minimum-id core
        // neighbour (fresh unions only: the incremental attachment is
        // deliberately not copied).
        for p in 0..n {
            if !self.live[p] || self.is_core[p] || !self.assigned[p] {
                continue;
            }
            let anchor = self
                .query(self.data.point(p as PointId))
                .into_iter()
                .filter(|&q| self.is_core[q as usize])
                .min()
                .expect("assigned border point must have a core neighbour");
            uf.union(pos[anchor as usize], pos[p]);
        }
        let is_core: Vec<bool> =
            (0..n).filter(|&p| self.live[p]).map(|p| self.is_core[p]).collect();
        Clustering::from_union_find(&mut uf, is_core)
    }

    /// Convenience: bulk-ingest a dataset in row order.
    pub fn extend_from(&mut self, data: &Dataset) {
        for (_, coords) in data.iter() {
            self.insert(coords);
        }
    }

    /// Exactness self-check: rebuild a throwaway twin engine from the
    /// compacted live points and compare canonical snapshots. `true`
    /// means this engine's incremental state still reproduces the batch
    /// answer bit-identically — the invariant the whole crate promises.
    ///
    /// This costs a full batch run plus one canonical snapshot on each
    /// side, so it is a *debugging/auditing* probe (the serving layer's
    /// [`crate::ServeOptions::self_check_every`] schedules it sparsely),
    /// not something to call per epoch in production. The twin's
    /// operation counters are discarded; `self` is not mutated.
    pub fn verify_against_batch(&self) -> bool {
        let mut data = Dataset::empty(self.data.dim());
        for p in 0..self.len() {
            if self.is_live(p as PointId) {
                data.push(self.point(p as PointId));
            }
        }
        let twin = StreamingMuDbscan::from_dataset(&data, self.params());
        twin.canonical_snapshot() == self.canonical_snapshot()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mudbscan::{check_exact, naive_dbscan};

    fn blobs(n_per: usize, seed: u64) -> Dataset {
        let mut rows = Vec::new();
        let mut s = seed;
        let mut r = move || {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((s >> 33) as f64 / (1u64 << 31) as f64) - 1.0
        };
        for (cx, cy) in [(0.0, 0.0), (6.0, 2.0)] {
            for _ in 0..n_per {
                rows.push(vec![cx + 0.7 * r(), cy + 0.7 * r()]);
            }
        }
        for _ in 0..n_per / 4 {
            rows.push(vec![12.0 * r(), 12.0 * r()]);
        }
        Dataset::from_rows(&rows)
    }

    #[test]
    fn final_state_matches_batch_dbscan() {
        let data = blobs(60, 5);
        let params = DbscanParams::new(0.6, 5);
        let mut s = StreamingMuDbscan::empty(2, params);
        s.extend_from(&data);
        let got = s.snapshot();
        let want = naive_dbscan(&data, &params);
        let rep = check_exact(&got, &want, &data, &params);
        assert!(rep.is_exact(), "{rep:?}");
    }

    #[test]
    fn every_prefix_is_exact() {
        let data = blobs(25, 9);
        let params = DbscanParams::new(0.6, 4);
        let mut s = StreamingMuDbscan::empty(2, params);
        for (i, coords) in data.iter() {
            s.insert(coords);
            // Check a sample of prefixes (every 7th) to keep the O(n²)
            // oracle affordable.
            if i % 7 != 6 {
                continue;
            }
            let prefix_rows: Vec<Vec<f64>> = (0..=i).map(|j| data.point(j).to_vec()).collect();
            let prefix = Dataset::from_rows(&prefix_rows);
            let got = s.snapshot();
            let want = naive_dbscan(&prefix, &params);
            let rep = check_exact(&got, &want, &prefix, &params);
            assert!(rep.is_exact(), "prefix {}: {rep:?}", i + 1);
        }
    }

    #[test]
    fn promotion_on_crossing_minpts() {
        // Points arrive so that an early point becomes core only later.
        let params = DbscanParams::new(1.0, 3);
        let mut s = StreamingMuDbscan::empty(1, params);
        s.insert(&[0.0]); // will become core once 2 more arrive
        s.insert(&[10.0]); // far away
        assert_eq!(s.snapshot().n_clusters, 0);
        s.insert(&[0.5]);
        assert_eq!(s.snapshot().n_clusters, 0); // counts: 2 < 3
        s.insert(&[-0.5]);
        let c = s.snapshot();
        assert_eq!(c.n_clusters, 1);
        assert!(c.is_core[0], "point 0 must be promoted to core");
        assert!(c.is_noise(1));
    }

    #[test]
    fn noise_rescued_when_core_appears() {
        let params = DbscanParams::new(1.0, 3);
        let mut s = StreamingMuDbscan::empty(1, params);
        s.insert(&[0.9]); // will be border of the core at 0
        s.insert(&[0.0]);
        s.insert(&[-0.9]);
        // All three mutually... 0.9 and -0.9 are 1.8 apart (not
        // neighbours); point 1 sees all three -> core; 0 and 2 border.
        let c = s.snapshot();
        assert_eq!(c.n_clusters, 1);
        assert!(c.is_core[1]);
        assert!(c.is_border(0) && c.is_border(2));
    }

    #[test]
    fn mc_structure_stays_small() {
        let data = blobs(80, 13);
        let params = DbscanParams::new(0.6, 5);
        let mut s = StreamingMuDbscan::empty(2, params);
        s.extend_from(&data);
        assert!(s.mc_count() < s.len() / 2, "m = {} vs n = {}", s.mc_count(), s.len());
        assert!(s.counters().range_queries() > 0);
    }

    #[test]
    fn bulk_load_matches_batch_dbscan() {
        let data = blobs(60, 33);
        let params = DbscanParams::new(0.6, 5);
        let mut s = StreamingMuDbscan::from_dataset(&data, params);
        assert_eq!(s.len(), data.len());
        assert!(s.mc_count() > 0);
        let got = s.snapshot();
        let want = naive_dbscan(&data, &params);
        let rep = check_exact(&got, &want, &data, &params);
        assert!(rep.is_exact(), "{rep:?}");
    }

    #[test]
    fn bulk_load_agrees_with_point_at_a_time_ingestion() {
        let data = blobs(40, 37);
        let params = DbscanParams::new(0.6, 4);
        let mut bulk = StreamingMuDbscan::from_dataset(&data, params);
        let mut seq = StreamingMuDbscan::empty(2, params);
        seq.extend_from(&data);
        let a = bulk.snapshot();
        let b = seq.snapshot();
        assert_eq!(a.n_clusters, b.n_clusters);
        assert_eq!(a.is_core, b.is_core);
        assert_eq!(a.noise_count(), b.noise_count());
    }

    #[test]
    fn inserts_after_bulk_load_stay_exact() {
        let data = blobs(40, 41);
        let split = data.len() - 15;
        let head_rows: Vec<Vec<f64>> = (0..split).map(|j| data.point(j as u32).to_vec()).collect();
        let head = Dataset::from_rows(&head_rows);
        let params = DbscanParams::new(0.6, 4);
        let mut s = StreamingMuDbscan::from_dataset(&head, params);
        for j in split..data.len() {
            s.insert(data.point(j as u32));
        }
        let got = s.snapshot();
        let want = naive_dbscan(&data, &params);
        let rep = check_exact(&got, &want, &data, &params);
        assert!(rep.is_exact(), "{rep:?}");
    }

    #[test]
    fn canonical_snapshot_is_bit_identical_to_bulk_load() {
        let data = blobs(40, 37);
        let params = DbscanParams::new(0.6, 4);
        let mut bulk = StreamingMuDbscan::from_dataset(&data, params);
        let mut seq = StreamingMuDbscan::empty(2, params);
        seq.extend_from(&data);
        let want = bulk.snapshot();
        // Point-at-a-time ingestion may attach border ties differently;
        // the canonical snapshot re-resolves them to the bulk answer.
        assert_eq!(seq.canonical_snapshot(), want);
        // The bulk state is already canonical.
        assert_eq!(bulk.canonical_snapshot(), want);
        // And canonicalisation must itself be exact DBSCAN.
        let rep =
            check_exact(&seq.canonical_snapshot(), &naive_dbscan(&data, &params), &data, &params);
        assert!(rep.is_exact(), "{rep:?}");
    }

    #[test]
    fn bulk_load_empty_dataset() {
        let data = Dataset::empty(3);
        let mut s = StreamingMuDbscan::from_dataset(&data, DbscanParams::new(1.0, 4));
        assert!(s.is_empty());
        assert_eq!(s.snapshot().n_clusters, 0);
        s.insert(&[0.0, 0.0, 0.0]);
        assert_eq!(s.len(), 1);
    }

    /// Compacted live dataset of a streaming engine (insertion order).
    fn live_dataset(s: &StreamingMuDbscan) -> Dataset {
        let rows: Vec<Vec<f64>> =
            (0..s.len() as u32).filter(|&p| s.is_live(p)).map(|p| s.point(p).to_vec()).collect();
        Dataset::from_rows(&rows)
    }

    #[test]
    fn remove_matches_batch_on_survivors() {
        let data = blobs(30, 17);
        let params = DbscanParams::new(0.6, 4);
        let mut s = StreamingMuDbscan::from_dataset(&data, params);
        // Remove a pseudo-random half of the points one at a time; after
        // each removal the canonical snapshot must be bit-identical to a
        // batch run over the compacted survivors.
        let mut victim = 7u32;
        for step in 0..data.len() / 2 {
            victim = (victim.wrapping_mul(48271) + 13) % data.len() as u32;
            while !s.is_live(victim) {
                victim = (victim + 1) % data.len() as u32;
            }
            s.remove(victim);
            assert!(!s.is_live(victim));
            assert_eq!(s.live_len(), data.len() - step - 1);
            let survivors = live_dataset(&s);
            let batch = StreamingMuDbscan::from_dataset(&survivors, params);
            assert_eq!(
                s.canonical_snapshot(),
                batch.canonical_snapshot(),
                "step {step}: repaired state diverged from batch on survivors"
            );
        }
        // And the end state is exact DBSCAN.
        let survivors = live_dataset(&s);
        let rep = check_exact(
            &s.canonical_snapshot(),
            &naive_dbscan(&survivors, &params),
            &survivors,
            &params,
        );
        assert!(rep.is_exact(), "{rep:?}");
    }

    #[test]
    fn remove_then_insert_interleaved_stays_exact() {
        let data = blobs(25, 29);
        let params = DbscanParams::new(0.6, 4);
        let mut s = StreamingMuDbscan::empty(2, params);
        let mut live: Vec<u32> = Vec::new();
        for (i, coords) in data.iter() {
            live.push(s.insert(coords));
            if i % 4 == 3 {
                let k = (i as usize * 31) % live.len();
                let victim = live.swap_remove(k);
                s.remove(victim);
            }
            if i % 9 != 8 {
                continue;
            }
            let survivors = live_dataset(&s);
            let batch = StreamingMuDbscan::from_dataset(&survivors, params);
            assert_eq!(s.canonical_snapshot(), batch.canonical_snapshot(), "after insert {i}");
        }
    }

    #[test]
    fn try_remove_budget_zero_leaves_state_untouched() {
        let params = DbscanParams::new(1.0, 3);
        let mut s = StreamingMuDbscan::empty(1, params);
        for x in [0.0, 0.5, -0.5, 0.2] {
            s.insert(&[x]);
        }
        let before = s.canonical_snapshot();
        // Point 0 is core in a 4-point component: the repair region has
        // 3 survivors, over any 0 budget.
        match s.try_remove(0, 0) {
            RemoveOutcome::ExceedsBudget { component } => assert_eq!(component, 3),
            other => panic!("expected ExceedsBudget, got {other:?}"),
        }
        assert!(s.is_live(0));
        assert_eq!(s.live_len(), 4);
        assert_eq!(s.canonical_snapshot(), before, "failed try_remove must not mutate");
        // With budget = 3 the same removal succeeds.
        assert_eq!(s.try_remove(0, 3), RemoveOutcome::Removed { touched: 3 });
        assert_eq!(s.live_len(), 3);
    }

    #[test]
    fn dense_interior_removal_repairs_under_tiny_budget() {
        // One dense 10×10 grid cluster. Removing an interior core must
        // go through the no-split fast path: the budget (25) is far
        // below the component size (99 survivors), so the component
        // replay would return ExceedsBudget — only the seed-clique
        // certificate lets the removal commit, and it must still be
        // bit-exact against a batch run on the survivors.
        let rows: Vec<Vec<f64>> = (0..10)
            .flat_map(|i| (0..10).map(move |j| vec![f64::from(i) * 0.2, f64::from(j) * 0.2]))
            .collect();
        let data = Dataset::from_rows(&rows);
        let params = DbscanParams::new(0.45, 4);
        let mut s = StreamingMuDbscan::from_dataset(&data, params);
        assert_eq!(s.canonical_snapshot().n_clusters, 1);
        match s.try_remove(55, 25) {
            RemoveOutcome::Removed { touched } => {
                assert!(touched <= 25, "fast repair examined {touched} points")
            }
            other => panic!("dense interior removal fell back to the replay: {other:?}"),
        }
        let survivors = live_dataset(&s);
        let batch = StreamingMuDbscan::from_dataset(&survivors, params);
        assert_eq!(s.canonical_snapshot(), batch.canonical_snapshot());
    }

    #[test]
    fn chain_split_removal_still_exact() {
        // A 1-d chain at pitch 0.5: removing a mid-chain core genuinely
        // splits the cluster, so the fast path must hand the removal to
        // the component replay and the result must match a batch run.
        let rows: Vec<Vec<f64>> = (0..20).map(|i| vec![f64::from(i) * 0.5]).collect();
        let data = Dataset::from_rows(&rows);
        let params = DbscanParams::new(0.6, 3);
        let mut s = StreamingMuDbscan::from_dataset(&data, params);
        assert_eq!(s.canonical_snapshot().n_clusters, 1);
        s.remove(10);
        let survivors = live_dataset(&s);
        let batch = StreamingMuDbscan::from_dataset(&survivors, params);
        assert_eq!(s.canonical_snapshot(), batch.canonical_snapshot());
        assert_eq!(s.canonical_snapshot().n_clusters, 2, "mid-chain removal must split");
    }

    #[test]
    fn orphaned_border_recapture_does_not_leak_old_component() {
        // The stale-membership hazard behind the union–find excision:
        // border b (x=0.8) is anchored only by the core at 0.4. Fast-
        // removing that core orphans b; a later insert then promotes a
        // NEW core (1.2) that captures b. Without excision b would
        // still sit in its old set, and that capture would union the
        // old cluster (which still has the core at -0.4) with the new
        // one — one cluster instead of two.
        let params = DbscanParams::new(0.5, 3);
        let mut s = StreamingMuDbscan::empty(1, params);
        for x in [-0.8, -0.4, 0.0, 0.4, 0.8] {
            s.insert(&[x]);
        }
        assert_eq!(s.canonical_snapshot().n_clusters, 1);
        match s.try_remove(3, usize::MAX) {
            RemoveOutcome::Removed { touched } => {
                assert!(touched <= 4, "expected a local repair, examined {touched}")
            }
            other => panic!("{other:?}"),
        }
        s.insert(&[1.2]);
        s.insert(&[1.6]);
        let survivors = live_dataset(&s);
        let batch = StreamingMuDbscan::from_dataset(&survivors, params);
        assert_eq!(s.canonical_snapshot(), batch.canonical_snapshot());
        assert_eq!(s.canonical_snapshot().n_clusters, 2, "recaptured border leaked its old set");
    }

    #[test]
    fn removing_noise_touches_nothing() {
        let params = DbscanParams::new(1.0, 3);
        let mut s = StreamingMuDbscan::empty(1, params);
        for x in [0.0, 0.5, -0.5, 20.0] {
            s.insert(&[x]);
        }
        // Point 3 is isolated noise: even a zero budget repairs it.
        assert_eq!(s.try_remove(3, 0), RemoveOutcome::Removed { touched: 0 });
        assert_eq!(s.canonical_snapshot().n_clusters, 1);
    }

    #[test]
    fn remove_shared_border_demotes_across_clusters() {
        // Two 1-d clusters sharing the border point at x = 0:
        // left cores need it to stay core, so removing it must demote
        // and split — across a component boundary from p's own cluster.
        let params = DbscanParams::new(1.1, 3);
        let mut s = StreamingMuDbscan::empty(1, params);
        let pts = [-2.0, -1.0, 0.0, 1.0, 2.0, 1.5];
        for x in pts {
            s.insert(&[x]);
        }
        let c = s.canonical_snapshot();
        assert!(c.n_clusters >= 1);
        let shared = 2u32; // x = 0.0
        s.remove(shared);
        let survivors = live_dataset(&s);
        let batch = StreamingMuDbscan::from_dataset(&survivors, params);
        assert_eq!(s.canonical_snapshot(), batch.canonical_snapshot());
        let rep = check_exact(
            &s.canonical_snapshot(),
            &naive_dbscan(&survivors, &params),
            &survivors,
            &params,
        );
        assert!(rep.is_exact(), "{rep:?}");
    }

    #[test]
    #[should_panic(expected = "dead or unknown")]
    fn double_remove_panics() {
        let mut s = StreamingMuDbscan::empty(1, DbscanParams::new(1.0, 3));
        s.insert(&[0.0]);
        s.remove(0);
        s.remove(0);
    }

    #[test]
    fn order_independence_of_canonical_quantities() {
        let data = blobs(40, 21);
        let params = DbscanParams::new(0.6, 4);
        let mut fwd = StreamingMuDbscan::empty(2, params);
        fwd.extend_from(&data);
        let ids: Vec<u32> = data.ids().rev().collect();
        let rev_data = data.gather(&ids);
        let mut rev = StreamingMuDbscan::empty(2, params);
        rev.extend_from(&rev_data);
        let a = fwd.snapshot();
        let b = rev.snapshot();
        assert_eq!(a.n_clusters, b.n_clusters);
        assert_eq!(a.noise_count(), b.noise_count());
        assert_eq!(a.core_count(), b.core_count());
    }
}
