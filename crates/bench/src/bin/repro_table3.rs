//! Table III reproduction: percentage split-up of μDBSCAN's execution
//! time over its four steps.
//!
//! ```text
//! cargo run --release -p bench --bin repro_table3
//! ```

use bench::{banner, SEED};
use metrics::Table;
use mudbscan::prelude::Runner;

const PAPER: &[(&str, &str, &str, &str, &str)] = &[
    ("3DSRN", "31.49%", "0.08%", "10.06%", "63.09%"),
    ("DGB0.5M3D", "20.46%", "27.73%", "15.27%", "36.53%"),
    ("MPAGB6M3D", "15.11%", "13.92%", "13.55%", "57.42%"),
    ("KDDB145K14D", "0.75%", "0.01%", "2.56%", "96.68%"),
];

fn main() {
    banner(
        "Table III — % split-up of μDBSCAN steps",
        "tree construction / finding reachable groups / clustering / post-processing",
        "same four datasets as the paper, scaled analogues",
    );

    let wanted = ["3DSRN", "DGB0.5M3D", "MPAGB6M3D", "KDDB145K14D"];

    // Two profiles: the paper-faithful per-member post-processing scan
    // (Algorithm 7 as written) and this implementation's MC-granularity
    // skip (see Runner::disable_post_core_mc_skip).
    for (label, faithful) in [
        ("paper-faithful Algorithm 7 (per-member scan)", true),
        ("optimised (MC-granularity skip)", false),
    ] {
        let mut ours = Table::new(&[
            "dataset",
            "tree constr.",
            "reachable",
            "clustering",
            "post-proc.",
            "total",
        ]);
        for spec in data::paper_table2_specs() {
            if !wanted.contains(&spec.name) {
                continue;
            }
            let dataset = spec.generate(SEED);
            eprintln!("[{} / {label}] ...", spec.name);
            let out = Runner::new(spec.params)
                .disable_post_core_mc_skip(faithful)
                .run(&dataset)
                .expect("sequential run");
            let pct = |name: &str| {
                let total = out.phases.total_secs();
                if total > 0.0 {
                    format!("{:.2}%", 100.0 * out.phases.secs(name) / total)
                } else {
                    "-".into()
                }
            };
            ours.row(&[
                spec.name.to_string(),
                pct("tree_construction"),
                pct("finding_reachable"),
                pct("clustering"),
                pct("post_processing"),
                format!("{:.2} s", out.phases.total_secs()),
            ]);
        }
        println!("measured — {label}:");
        ours.print();
        println!();
    }

    println!("\npaper values:");
    let mut paper =
        Table::new(&["dataset", "tree constr.", "reachable", "clustering", "post-proc."]);
    for &(name, a, b, c, d) in PAPER {
        paper.row_str(&[name, a, b, c, d]);
    }
    paper.print();

    println!("\nshape checks: post-processing dominates where query savings are");
    println!("high (3DSRN, KDDB14: many wndq-cores to stitch); tree construction");
    println!("is a significant share on low-d data; reachable-group time is");
    println!("negligible when few MCs form (KDDB14).");
}
