//! Arena node representation.
//!
//! Leaves distinguish two storage layouts: arbitrary-box entries
//! ([`LeafData::Boxes`] — the level-1 μR-tree over MC MBRs, partition
//! cell trees) and degenerate point entries packed column-major
//! ([`LeafData::Points`] — aux trees, center trees, every flat point
//! index). The point layout is the structure-of-arrays half of the
//! distance-kernel fast path: one shared coordinate block per leaf
//! instead of two boxed corner slices per entry, so a leaf scan is a
//! batched [`geom::kernels`] call over unit-stride columns.

use geom::soa::PointBlock;
use geom::Mbr;

/// Index of a node in the tree arena.
pub type NodeId = u32;

/// A leaf entry: an item id and its bounding box. For point data the box is
/// degenerate (`lo == hi == point`).
#[derive(Debug, Clone)]
pub struct Entry {
    /// Bounding box of the stored item.
    pub mbr: Mbr,
    /// Caller-defined item identifier (point id, micro-cluster id, …).
    pub item: u32,
}

impl Entry {
    /// Entry for a point item.
    pub fn point(item: u32, coords: &[f64]) -> Self {
        Self { mbr: Mbr::point(coords), item }
    }
}

/// Storage behind one leaf node.
#[derive(Debug, Clone)]
pub enum LeafData {
    /// Arbitrary (possibly extended) boxes, one [`Entry`] each.
    Boxes(Vec<Entry>),
    /// Degenerate point entries in a column-major [`PointBlock`].
    Points(PointBlock),
}

impl LeafData {
    /// Build leaf storage from entries, choosing the point layout when
    /// every entry is degenerate and fits a block of `cap` slots.
    /// Entry order is preserved in both layouts — query charging and
    /// short-circuit semantics depend on it.
    pub fn from_entries(dim: usize, cap: usize, entries: Vec<Entry>) -> Self {
        if entries.len() <= cap && entries.iter().all(|e| e.mbr.is_degenerate()) {
            let mut block = PointBlock::with_capacity(dim, cap);
            for e in &entries {
                block.push(e.item, e.mbr.lo());
            }
            LeafData::Points(block)
        } else {
            LeafData::Boxes(entries)
        }
    }

    /// Number of stored entries.
    pub fn len(&self) -> usize {
        match self {
            LeafData::Boxes(entries) => entries.len(),
            LeafData::Points(block) => block.len(),
        }
    }

    /// True when no entry is stored.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Item id of the entry at position `i`.
    pub fn item(&self, i: usize) -> u32 {
        match self {
            LeafData::Boxes(entries) => entries[i].item,
            LeafData::Points(block) => block.item(i),
        }
    }

    /// Append an entry, preserving order. A non-degenerate entry (or a
    /// full block) demotes a point leaf to the box layout.
    pub fn push(&mut self, entry: Entry, dim: usize) {
        match self {
            LeafData::Boxes(entries) => entries.push(entry),
            LeafData::Points(block) => {
                if entry.mbr.is_degenerate() && block.len() < block.capacity() {
                    block.push(entry.item, entry.mbr.lo());
                } else {
                    let mut entries =
                        std::mem::replace(self, LeafData::Boxes(Vec::new())).into_entries(dim);
                    entries.push(entry);
                    *self = LeafData::Boxes(entries);
                }
            }
        }
    }

    /// Remove the entry at position `i`, preserving the order of the
    /// remaining entries in both layouts. Returns the removed item id.
    pub fn remove(&mut self, i: usize) -> u32 {
        match self {
            LeafData::Boxes(entries) => entries.remove(i).item,
            LeafData::Points(block) => block.remove(i),
        }
    }

    /// Materialise the entries in storage order (degenerate boxes for the
    /// point layout) — used by node splits, which repartition via boxes.
    pub fn into_entries(self, dim: usize) -> Vec<Entry> {
        match self {
            LeafData::Boxes(entries) => entries,
            LeafData::Points(block) => {
                let mut buf = vec![0.0; dim];
                (0..block.len())
                    .map(|i| {
                        block.write_point(i, &mut buf);
                        Entry::point(block.item(i), &buf)
                    })
                    .collect()
            }
        }
    }

    /// The bounding box of the entry at position `i` (materialised for
    /// the point layout).
    pub fn entry_mbr(&self, i: usize) -> Mbr {
        match self {
            LeafData::Boxes(entries) => entries[i].mbr.clone(),
            LeafData::Points(block) => {
                let mut buf = vec![0.0; block.dim()];
                block.write_point(i, &mut buf);
                Mbr::point(&buf)
            }
        }
    }

    /// Estimated owned heap bytes.
    pub fn heap_bytes(&self) -> usize {
        match self {
            LeafData::Boxes(entries) => {
                entries.capacity() * std::mem::size_of::<Entry>()
                    + entries.iter().map(|e| e.mbr.heap_bytes()).sum::<usize>()
            }
            LeafData::Points(block) => block.heap_bytes(),
        }
    }
}

/// One R-tree node: either an internal node with child node ids or a leaf
/// with item entries. Every node caches the MBR of its contents.
#[derive(Debug, Clone)]
pub enum Node {
    /// Internal node.
    Internal {
        /// Bounding box of all children.
        mbr: Mbr,
        /// Child node ids.
        children: Vec<NodeId>,
    },
    /// Leaf node.
    Leaf {
        /// Bounding box of all entries.
        mbr: Mbr,
        /// Entry storage (boxes or a column-major point block).
        data: LeafData,
    },
}

impl Node {
    /// The node's cached bounding box.
    pub fn mbr(&self) -> &Mbr {
        match self {
            Node::Internal { mbr, .. } | Node::Leaf { mbr, .. } => mbr,
        }
    }

    /// True for leaf nodes.
    pub fn is_leaf(&self) -> bool {
        matches!(self, Node::Leaf { .. })
    }

    /// Number of children (internal) or entries (leaf).
    pub fn fanout(&self) -> usize {
        match self {
            Node::Internal { children, .. } => children.len(),
            Node::Leaf { data, .. } => data.len(),
        }
    }

    /// Estimated owned heap bytes (child vector / entry storage and the
    /// MBRs they own).
    pub fn heap_bytes(&self) -> usize {
        match self {
            Node::Internal { mbr, children } => {
                mbr.heap_bytes() + children.capacity() * std::mem::size_of::<NodeId>()
            }
            Node::Leaf { mbr, data } => mbr.heap_bytes() + data.heap_bytes(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn entry_point_is_degenerate() {
        let e = Entry::point(7, &[1.0, 2.0]);
        assert_eq!(e.item, 7);
        assert_eq!(e.mbr.lo(), e.mbr.hi());
        assert_eq!(e.mbr.volume(), 0.0);
    }

    #[test]
    fn node_accessors() {
        let leaf = Node::Leaf {
            mbr: Mbr::point(&[0.0]),
            data: LeafData::from_entries(
                1,
                4,
                vec![Entry::point(0, &[0.0]), Entry::point(1, &[0.5])],
            ),
        };
        assert!(leaf.is_leaf());
        assert_eq!(leaf.fanout(), 2);
        assert!(leaf.heap_bytes() > 0);

        let internal = Node::Internal { mbr: Mbr::point(&[0.0]), children: vec![0, 1, 2] };
        assert!(!internal.is_leaf());
        assert_eq!(internal.fanout(), 3);
    }

    #[test]
    fn point_entries_pick_the_block_layout() {
        let entries = vec![Entry::point(0, &[0.0, 1.0]), Entry::point(1, &[2.0, 3.0])];
        let data = LeafData::from_entries(2, 8, entries);
        assert!(matches!(data, LeafData::Points(_)), "all-point leaves must pack column-major");
        assert_eq!(data.len(), 2);
        assert_eq!(data.item(1), 1);
        assert_eq!(data.entry_mbr(1), Mbr::point(&[2.0, 3.0]));
        // Round trip preserves order and coordinates.
        let back = data.into_entries(2);
        assert_eq!(back.len(), 2);
        assert_eq!(back[0].item, 0);
        assert_eq!(back[1].mbr.lo(), &[2.0, 3.0]);
    }

    #[test]
    fn extended_boxes_pick_the_box_layout() {
        let entries = vec![
            Entry::point(0, &[0.0, 0.0]),
            Entry { mbr: Mbr::new(vec![1.0, 1.0], vec![2.0, 2.0]), item: 1 },
        ];
        let data = LeafData::from_entries(2, 8, entries);
        assert!(matches!(data, LeafData::Boxes(_)));
    }

    #[test]
    fn pushing_a_box_demotes_a_point_leaf() {
        let mut data = LeafData::from_entries(2, 8, vec![Entry::point(0, &[0.0, 0.0])]);
        assert!(matches!(data, LeafData::Points(_)));
        data.push(Entry { mbr: Mbr::new(vec![1.0, 1.0], vec![2.0, 2.0]), item: 1 }, 2);
        assert!(matches!(data, LeafData::Boxes(_)), "mixed content must fall back to boxes");
        assert_eq!(data.len(), 2);
        assert_eq!(data.item(0), 0, "demotion must preserve entry order");
    }
}
