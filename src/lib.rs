#![warn(missing_docs)]

//! # mudbscan-repro — μDBSCAN (CLUSTER 2019) in Rust
//!
//! Umbrella crate re-exporting the whole workspace. Most users want:
//!
//! * [`mudbscan::prelude::Runner`] — the unified entry point over all
//!   seven algorithm families (sequential, parallel, distributed,
//!   out-of-core sharded — fed from a memory-mapped chunk store via
//!   [`mudbscan::prelude::Runner::run_source`] — streaming, OPTICS,
//!   serving — the last via [`mudbscan::prelude::Runner::serve`], see
//!   `docs/SERVING.md`);
//! * [`data`] — synthetic dataset generators;
//! * [`baselines`] — R-DBSCAN / G-DBSCAN / GridDBSCAN comparators.
//!
//! ```
//! use mudbscan_repro::prelude::*;
//!
//! let dataset = data::gaussian_mixture(2_000, 3, 4, 1.5, 0.05, 42);
//! let out = Runner::new(DbscanParams::new(1.0, 5)).run(&dataset).unwrap();
//! println!("{} clusters, {} noise points, {:.1}% queries saved",
//!          out.clustering.n_clusters,
//!          out.clustering.noise_count(),
//!          out.counters.pct_queries_saved());
//! ```

pub use baselines;
pub use cluster_sim;
pub use data;
pub use dist;
pub use geom;
pub use mcs;
pub use metrics;
pub use mudbscan;
pub use optics;
pub use partition;
pub use rtree;
pub use stream;
pub use unionfind;

/// The items most programs need.
pub mod prelude {
    pub use baselines::{GDbscan, GridDbscan, RDbscan};
    pub use data;
    pub use dist::DistConfig;
    pub use mudbscan::prelude::{
        write_store, ChunkedStore, Cluster, Clustering, Counters, DataSource, Dataset,
        DbscanParams, Family, Fault, FaultConfig, FaultPlan, FaultStats, Membership,
        MuDbscanError, RetryConfig, RunDetails, RunOutput, Runner, ServeHandle, ServeOp,
        ServeOptions, Snapshot, StoreError, NOISE,
    };
    pub use mudbscan::{check_exact, naive_dbscan};
}
