//! Cross-crate integration: every exact algorithm in the workspace must
//! produce the identical DBSCAN clustering on every catalog analogue.

use baselines::{GDbscan, GridDbscan, RDbscan};
use geom::{Dataset, DbscanParams};
use mudbscan::{check_exact, naive_dbscan, Clustering, MuDbscan};

fn exactness(
    c: &Clustering,
    reference: &Clustering,
    data: &Dataset,
    params: &DbscanParams,
    tag: &str,
) {
    let rep = check_exact(c, reference, data, params);
    assert!(rep.is_exact(), "{tag}: {rep:?}");
}

#[test]
fn all_exact_algorithms_agree_on_catalog_analogues() {
    for spec in data::paper_table2_specs() {
        // Small instances keep the O(n²) oracle affordable.
        let n = 1_000;
        let dataset = spec.generate_n(n, 7);
        let params = spec.params;
        let reference = naive_dbscan(&dataset, &params);

        let mu = MuDbscan::from_params(params).run(&dataset);
        exactness(&mu.clustering, &reference, &dataset, &params, spec.name);

        let rd = RDbscan::new(params).run(&dataset);
        exactness(&rd.clustering, &reference, &dataset, &params, spec.name);

        let gd = GDbscan::new(params).run(&dataset);
        exactness(&gd.clustering, &reference, &dataset, &params, spec.name);

        // GridDBSCAN only where the neighbour-cell structure fits (it
        // memory-errors at d >= 14, reproducing the paper).
        match GridDbscan::new(params).run(&dataset) {
            Ok(grid) => exactness(&grid.clustering, &reference, &dataset, &params, spec.name),
            Err(e) => assert!(spec.dim >= 10, "{}: unexpected grid failure {e}", spec.name),
        }
    }
}

#[test]
fn query_savings_match_paper_regimes() {
    // The paper's Table II: dense, locally-uniform datasets save most
    // queries (3DSRN 81%, KDDB >96%); the diffuse DGB galaxy data saves
    // the least (43.6%).
    let specs = data::paper_table2_specs();
    let mut savings = std::collections::HashMap::new();
    for spec in &specs {
        let dataset = spec.generate_n(4_000, 3);
        let out = MuDbscan::from_params(spec.params).run(&dataset);
        savings.insert(spec.name, out.counters.pct_queries_saved());
    }
    assert!(savings["KDDB145K14D"] > 60.0, "KDDB14 saved {:.1}%", savings["KDDB145K14D"]);
    assert!(savings["3DSRN"] > 40.0, "3DSRN saved {:.1}%", savings["3DSRN"]);
    for (name, pct) in &savings {
        assert!(*pct > 5.0 && *pct <= 100.0, "{name}: implausible saving {pct:.1}%");
    }
}

#[test]
fn micro_cluster_counts_are_far_below_n() {
    for spec in data::paper_table2_specs().into_iter().take(4) {
        let n = 4_000;
        let dataset = spec.generate_n(n, 5);
        let out = MuDbscan::from_params(spec.params).run(&dataset);
        assert!(out.mc_count * 2 < n, "{}: m = {} not << n = {n}", spec.name, out.mc_count);
    }
}

#[test]
fn io_roundtrip_preserves_clustering() {
    let dataset = data::galaxy(2_000, 3, 21);
    let params = DbscanParams::new(0.8, 5);
    let tmp = std::env::temp_dir().join("mudbscan_integration_io.bin");
    data::io::write_bin(&dataset, &tmp).unwrap();
    let back = data::io::read_bin(&tmp).unwrap();
    std::fs::remove_file(&tmp).ok();
    let a = MuDbscan::from_params(params).run(&dataset);
    let b = MuDbscan::from_params(params).run(&back);
    assert_eq!(a.clustering, b.clustering);
}

#[test]
fn clustering_invariant_under_point_order() {
    // "Exact" means order-independent cores/partition/noise: shuffle the
    // dataset and compare canonical quantities.
    let dataset = data::gaussian_mixture(2_000, 3, 3, 1.5, 0.1, 77);
    let params = DbscanParams::new(1.0, 5);
    let ids: Vec<u32> = {
        let mut v: Vec<u32> = dataset.ids().collect();
        // Deterministic shuffle.
        let mut s = 1234u64;
        for i in (1..v.len()).rev() {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let j = (s >> 33) as usize % (i + 1);
            v.swap(i, j);
        }
        v
    };
    let shuffled = dataset.gather(&ids);

    let a = MuDbscan::from_params(params).run(&dataset);
    let b = MuDbscan::from_params(params).run(&shuffled);
    assert_eq!(a.clustering.n_clusters, b.clustering.n_clusters);
    assert_eq!(a.clustering.noise_count(), b.clustering.noise_count());
    assert_eq!(a.clustering.core_count(), b.clustering.core_count());
    // Per-point core flags map through the permutation.
    for (new_idx, &old_id) in ids.iter().enumerate() {
        assert_eq!(
            a.clustering.is_core[old_id as usize], b.clustering.is_core[new_idx],
            "core flag changed under reordering"
        );
    }
}
