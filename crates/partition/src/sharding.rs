//! Budget-sized spatial sharding over a chunked [`DataSource`].
//!
//! [`kd_partition`](crate::kd_partition) simulates μDBSCAN-D's
//! partitioning as a BSP rank program over an in-memory dataset. The
//! out-of-core path needs the same *geometry* — kd cells cut at sampled
//! medians, ε-halos per cell — but driven by streaming passes over a
//! source that never fits in memory, and sized so each shard's resident
//! coordinates respect a memory budget. That is what [`plan_shards`]
//! does:
//!
//! 1. **Scan pass** — one pass over the chunks computes the exact global
//!    bounding box and a deterministic strided coordinate sample.
//! 2. **Sample kd build** — the sample is split recursively at medians
//!    (axis of widest region spread) until the leaf count reaches
//!    `min_shards` and every leaf's *estimated* owned bytes fit
//!    `max_shard_bytes`.
//! 3. **Count-and-refine passes** — exact owned counts per leaf are
//!    measured by streaming every point down the split tree; leaves
//!    whose exact bytes still exceed the bound are re-split using
//!    leaf-local samples collected in the same pass. Skewed data
//!    converges in a round or two; pathological duplicates (unsplittable
//!    leaves) are accepted as-is.
//!
//! The resulting [`ShardPlan`] is a pure function of the source and
//! options — same inputs, same shards — and is shared read-only across
//! shard workers. [`gather_shard`] then materializes one shard (owned
//! points + ε-halo) with a single chunk scan; ownership is a strict
//! descent (`coord < split` → left, else right) and halo membership is
//! the open-ball test `region.min_dist_sq(p) < ε²`, exactly the
//! conventions of the BSP partitioner, so the downstream merge logic is
//! unchanged.

use crate::kdpart::Shard;
use geom::{DataSource, Dataset, Mbr, PointId};

/// Target size of the global scan-pass sample.
const GLOBAL_SAMPLE_TARGET: usize = 32_768;
/// Target size of a per-leaf refinement sample.
const LEAF_SAMPLE_TARGET: usize = 2_048;
/// Maximum count-and-refine rounds before accepting residual oversize.
const MAX_REFINE_ROUNDS: usize = 4;

/// Options for [`plan_shards`].
#[derive(Debug, Clone)]
pub struct ShardingOptions {
    /// Minimum number of shards to cut (the planner splits the most
    /// populous leaf until reaching this count).
    pub min_shards: usize,
    /// Upper bound on one shard's owned coordinate bytes
    /// (`count * dim * 8`); `None` leaves shard sizes to `min_shards`
    /// alone. Callers deriving this from a whole-run memory budget
    /// should divide by the worker count and leave slack for halos.
    pub max_shard_bytes: Option<usize>,
}

impl Default for ShardingOptions {
    fn default() -> Self {
        Self { min_shards: 1, max_shard_bytes: None }
    }
}

enum PlanNode {
    Split { axis: usize, split: f64, left: usize, right: usize },
    Leaf { shard: usize },
}

/// A deterministic spatial shard layout: a kd split tree whose leaves
/// are the shards, with exact owned counts and per-shard regions.
pub struct ShardPlan {
    dim: usize,
    eps: f64,
    nodes: Vec<PlanNode>,
    regions: Vec<Mbr>,
    counts: Vec<usize>,
}

impl ShardPlan {
    /// Number of shards (tree leaves).
    pub fn n_shards(&self) -> usize {
        self.regions.len()
    }

    /// Point dimensionality.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// The ε the halos were planned for.
    pub fn eps(&self) -> f64 {
        self.eps
    }

    /// Shard regions (kd cells clipped from the global bounding box).
    pub fn regions(&self) -> &[Mbr] {
        &self.regions
    }

    /// Exact owned point counts per shard.
    pub fn counts(&self) -> &[usize] {
        &self.counts
    }

    /// Owned coordinate bytes of the largest shard.
    pub fn max_shard_bytes(&self) -> usize {
        self.counts.iter().map(|&c| c * self.dim * 8).max().unwrap_or(0)
    }

    /// The shard owning point `p`: strict descent, `coord < split` goes
    /// left, `coord >= split` goes right.
    #[inline]
    pub fn owner(&self, p: &[f64]) -> usize {
        let mut node = 0usize;
        loop {
            match &self.nodes[node] {
                PlanNode::Split { axis, split, left, right } => {
                    node = if p[*axis] < *split { *left } else { *right };
                }
                PlanNode::Leaf { shard } => return *shard,
            }
        }
    }
}

struct BuildLeaf {
    node: usize,
    region: Mbr,
    /// Row indices into the sample backing this leaf.
    rows: Vec<usize>,
    /// Estimated (or, after a count pass, exact) owned point count.
    est_count: f64,
    splittable: bool,
}

struct Sample {
    dim: usize,
    rows: Vec<f64>, // row-major
}

impl Sample {
    fn len(&self) -> usize {
        self.rows.len() / self.dim.max(1)
    }
    fn point(&self, i: usize) -> &[f64] {
        &self.rows[i * self.dim..(i + 1) * self.dim]
    }
}

/// Median of the leaf's sample values on `axis`; `None` when a split at
/// that value cannot separate the rows (all values equal).
fn median_split(sample: &Sample, rows: &[usize], axis: usize) -> Option<f64> {
    let mut vals: Vec<f64> = rows.iter().map(|&r| sample.point(r)[axis]).collect();
    vals.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let split = vals[vals.len() / 2];
    // Strict-< routing: a split at the minimum sends everything right.
    if split > vals[0] {
        Some(split)
    } else {
        None
    }
}

/// Pick the axis with the widest sample spread inside the leaf.
fn widest_axis(sample: &Sample, rows: &[usize], dim: usize) -> usize {
    let mut best = (f64::NEG_INFINITY, 0usize);
    for k in 0..dim {
        let mut lo = f64::INFINITY;
        let mut hi = f64::NEG_INFINITY;
        for &r in rows {
            let x = sample.point(r)[k];
            lo = lo.min(x);
            hi = hi.max(x);
        }
        let spread = hi - lo;
        if spread > best.0 {
            best = (spread, k);
        }
    }
    best.1
}

/// Split `leaves[li]` at its sample median on the widest axis (falling
/// back to the other axes), replacing the parent leaf with the left
/// child in place and appending the right child — deterministic leaf
/// ordering. Returns false (marking the leaf unsplittable) when no
/// separating median exists on any axis.
fn split_leaf(
    sample: &Sample,
    nodes: &mut Vec<PlanNode>,
    leaves: &mut Vec<BuildLeaf>,
    li: usize,
) -> bool {
    let dim = sample.dim;
    let axis0 = widest_axis(sample, &leaves[li].rows, dim);
    // Try the widest axis first, then the rest in order.
    let mut axes: Vec<usize> = vec![axis0];
    axes.extend((0..dim).filter(|&k| k != axis0));
    for axis in axes {
        if let Some(split) = median_split(sample, &leaves[li].rows, axis) {
            let parent_node = leaves[li].node;
            let (mut lrows, mut rrows) = (Vec::new(), Vec::new());
            for &r in &leaves[li].rows {
                if sample.point(r)[axis] < split {
                    lrows.push(r);
                } else {
                    rrows.push(r);
                }
            }
            let total = leaves[li].rows.len() as f64;
            let est = leaves[li].est_count;
            let (lest, rest) = if total > 0.0 {
                (est * lrows.len() as f64 / total, est * rrows.len() as f64 / total)
            } else {
                (0.0, 0.0)
            };
            let reg = &leaves[li].region;
            let mut lhi = reg.hi().to_vec();
            lhi[axis] = lhi[axis].min(split);
            let mut rlo = reg.lo().to_vec();
            rlo[axis] = rlo[axis].max(split);
            let llo = reg.lo().to_vec();
            let mut rhi = reg.hi().to_vec();
            for k in 0..dim {
                if llo[k] > lhi[k] {
                    lhi[k] = llo[k];
                }
                if rlo[k] > rhi[k] {
                    rhi[k] = rlo[k];
                }
            }
            let lnode = nodes.len();
            nodes.push(PlanNode::Leaf { shard: usize::MAX });
            let rnode = nodes.len();
            nodes.push(PlanNode::Leaf { shard: usize::MAX });
            nodes[parent_node] = PlanNode::Split { axis, split, left: lnode, right: rnode };
            let left = BuildLeaf {
                node: lnode,
                region: Mbr::new(llo, lhi),
                rows: lrows,
                est_count: lest,
                splittable: true,
            };
            let right = BuildLeaf {
                node: rnode,
                region: Mbr::new(rlo, rhi),
                rows: rrows,
                est_count: rest,
                splittable: true,
            };
            leaves[li] = left;
            leaves.push(right);
            return true;
        }
    }
    leaves[li].splittable = false;
    false
}

/// Build a deterministic shard plan for `src`.
///
/// Runs `2 + r` streaming passes over the source (scan, then one count
/// pass per refinement round, `r <= 4`), holding only samples and
/// counters in memory — never the point set.
pub fn plan_shards(src: &dyn DataSource, eps: f64, opts: &ShardingOptions) -> ShardPlan {
    assert!(eps > 0.0 && eps.is_finite(), "eps must be positive and finite");
    let dim = src.dim();
    let n = src.len();

    // Pass 1: exact bounding box + strided global sample.
    let stride = (n / GLOBAL_SAMPLE_TARGET).max(1);
    let mut lo = vec![f64::INFINITY; dim];
    let mut hi = vec![f64::NEG_INFINITY; dim];
    let mut rows = Vec::new();
    let mut buf = vec![0.0; dim];
    let mut next_sample = 0usize;
    for c in 0..src.n_chunks() {
        let ch = src.chunk(c);
        for k in 0..dim {
            for &x in ch.col(k) {
                if x < lo[k] {
                    lo[k] = x;
                }
                if x > hi[k] {
                    hi[k] = x;
                }
            }
        }
        let base = ch.base as usize;
        while next_sample < base + ch.len {
            ch.write_point(next_sample - base, &mut buf);
            rows.extend_from_slice(&buf);
            next_sample += stride;
        }
    }
    let global_box = if n == 0 {
        Mbr::new(vec![0.0; dim], vec![0.0; dim])
    } else {
        Mbr::new(lo, hi)
    };
    let sample = Sample { dim, rows };

    // Sample kd build.
    let mut nodes = vec![PlanNode::Leaf { shard: usize::MAX }];
    let mut leaves = vec![BuildLeaf {
        node: 0,
        region: global_box,
        rows: (0..sample.len()).collect(),
        est_count: n as f64,
        splittable: n > 0,
    }];
    let bytes_of = |count: f64| count * dim as f64 * 8.0;
    let min_shards = opts.min_shards.max(1);
    loop {
        let need_count = leaves.len() < min_shards;
        // Largest estimated leaf that still needs splitting.
        let mut pick: Option<usize> = None;
        for (i, l) in leaves.iter().enumerate() {
            if !l.splittable {
                continue;
            }
            let oversized = opts
                .max_shard_bytes
                .map(|b| bytes_of(l.est_count) > b as f64)
                .unwrap_or(false);
            if need_count || oversized {
                match pick {
                    Some(p) if leaves[p].est_count >= l.est_count => {}
                    _ => pick = Some(i),
                }
            }
        }
        let Some(li) = pick else { break };
        split_leaf(&sample, &mut nodes, &mut leaves, li);
    }

    // Count-and-refine passes: exact counts, re-splitting leaves whose
    // true size exceeds the bound.
    let leaf_shard_assignment = |nodes: &mut [PlanNode], leaves: &[BuildLeaf]| {
        for (s, l) in leaves.iter().enumerate() {
            nodes[l.node] = PlanNode::Leaf { shard: s };
        }
    };
    leaf_shard_assignment(&mut nodes, &leaves);
    let mut counts = vec![0usize; leaves.len()];
    for round in 0..=MAX_REFINE_ROUNDS {
        // Which leaves should this pass also sample (previous round found
        // them oversized)?
        counts = vec![0usize; leaves.len()];
        let plan_view = ShardPlan {
            dim,
            eps,
            nodes: std::mem::take(&mut nodes),
            regions: Vec::new(),
            counts: Vec::new(),
        };
        let mut leaf_samples: Vec<Vec<f64>> = vec![Vec::new(); leaves.len()];
        let sample_stride: Vec<usize> = leaves
            .iter()
            .map(|l| ((l.est_count as usize) / LEAF_SAMPLE_TARGET).max(1))
            .collect();
        let want_samples = round < MAX_REFINE_ROUNDS && opts.max_shard_bytes.is_some();
        for c in 0..src.n_chunks() {
            let ch = src.chunk(c);
            for i in 0..ch.len {
                ch.write_point(i, &mut buf);
                let s = plan_view.owner(&buf);
                if want_samples && counts[s] % sample_stride[s] == 0 {
                    leaf_samples[s].extend_from_slice(&buf);
                }
                counts[s] += 1;
            }
        }
        nodes = plan_view.nodes;
        for (s, l) in leaves.iter_mut().enumerate() {
            l.est_count = counts[s] as f64;
        }
        let Some(max_bytes) = opts.max_shard_bytes else { break };
        let oversized: Vec<usize> = (0..leaves.len())
            .filter(|&s| leaves[s].splittable && bytes_of(counts[s] as f64) > max_bytes as f64)
            .collect();
        if oversized.is_empty() || round == MAX_REFINE_ROUNDS {
            break;
        }
        // Re-split each oversized leaf with its own fresh sample.
        for &s in &oversized {
            let leaf_sample = Sample { dim, rows: std::mem::take(&mut leaf_samples[s]) };
            if leaf_sample.len() == 0 {
                continue;
            }
            // Work queue of leaf indices (in `leaves`) still oversized.
            leaves[s].rows = (0..leaf_sample.len()).collect();
            let mut queue = vec![s];
            while let Some(li) = queue.pop() {
                if bytes_of(leaves[li].est_count) <= max_bytes as f64 || !leaves[li].splittable {
                    continue;
                }
                if split_leaf(&leaf_sample, &mut nodes, &mut leaves, li) {
                    queue.push(li);
                    queue.push(leaves.len() - 1);
                }
            }
        }
        leaf_shard_assignment(&mut nodes, &leaves);
    }

    leaf_shard_assignment(&mut nodes, &leaves);
    ShardPlan {
        dim,
        eps,
        nodes,
        regions: leaves.iter().map(|l| l.region.clone()).collect(),
        counts,
    }
}

/// Materialize shard `s` of `plan` — owned points plus ε-halo — with one
/// streaming pass over the chunks.
///
/// Own membership is the plan's strict descent; halo membership is the
/// open-ball region test `min_dist_sq(p) < ε²` against the shard's
/// region, matching [`kd_partition`]'s halo exchange, which makes the
/// halo *complete*: every point within ε of any owned point is present.
pub fn gather_shard(src: &dyn DataSource, plan: &ShardPlan, s: usize) -> Shard {
    let dim = plan.dim();
    let eps_sq = plan.eps() * plan.eps();
    let region = plan.regions()[s].clone();
    let mut ids = Vec::with_capacity(plan.counts()[s]);
    let mut own = Vec::with_capacity(plan.counts()[s] * dim);
    let mut halo_ids = Vec::new();
    let mut halo = Vec::new();
    let mut buf = vec![0.0; dim];
    for c in 0..src.n_chunks() {
        let ch = src.chunk(c);
        for i in 0..ch.len {
            ch.write_point(i, &mut buf);
            let gid = ch.base + i as PointId;
            if plan.owner(&buf) == s {
                ids.push(gid);
                own.extend_from_slice(&buf);
            } else if region.min_dist_sq(&buf) < eps_sq {
                halo_ids.push(gid);
                halo.extend_from_slice(&buf);
            }
        }
    }
    Shard {
        ids,
        data: Dataset::from_flat(dim, own),
        halo_ids,
        halo: Dataset::from_flat(dim, halo),
        region,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use geom::dist_euclidean;

    fn blob(n: usize, dim: usize) -> Dataset {
        let mut rows = Vec::new();
        let mut s = 77u64;
        let mut r = move || {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(17);
            ((s >> 33) as f64 / (1u64 << 31) as f64) - 1.0
        };
        for _ in 0..n {
            rows.push((0..dim).map(|_| 10.0 * r()).collect());
        }
        Dataset::from_rows(&rows)
    }

    #[test]
    fn plan_partitions_every_point_once() {
        let d = blob(2000, 3);
        let plan = plan_shards(&d, 0.5, &ShardingOptions { min_shards: 4, max_shard_bytes: None });
        assert!(plan.n_shards() >= 4);
        assert_eq!(plan.counts().iter().sum::<usize>(), 2000);
        let mut seen = vec![false; 2000];
        for s in 0..plan.n_shards() {
            let shard = gather_shard(&d, &plan, s);
            assert_eq!(shard.len(), plan.counts()[s]);
            for (i, &id) in shard.ids.iter().enumerate() {
                assert!(!seen[id as usize]);
                seen[id as usize] = true;
                assert_eq!(shard.data.point(i as u32), d.point(id));
                assert!(shard.region.contains_point(shard.data.point(i as u32)));
            }
        }
        assert!(seen.iter().all(|&x| x));
    }

    #[test]
    fn byte_bound_limits_shard_sizes() {
        let d = blob(4000, 2);
        let bound = 500 * 2 * 8; // ≤ 500 points per shard
        let plan = plan_shards(
            &d,
            0.5,
            &ShardingOptions { min_shards: 1, max_shard_bytes: Some(bound) },
        );
        assert!(plan.n_shards() >= 8);
        assert!(
            plan.max_shard_bytes() <= bound,
            "max shard bytes {} > bound {bound}",
            plan.max_shard_bytes()
        );
    }

    #[test]
    fn halos_are_complete() {
        let d = blob(600, 2);
        let eps = 1.0;
        let plan = plan_shards(&d, eps, &ShardingOptions { min_shards: 4, max_shard_bytes: None });
        let shards: Vec<Shard> = (0..plan.n_shards()).map(|s| gather_shard(&d, &plan, s)).collect();
        for s in &shards {
            let halo_set: std::collections::HashSet<u32> = s.halo_ids.iter().copied().collect();
            let own_set: std::collections::HashSet<u32> = s.ids.iter().copied().collect();
            for qid in 0..d.len() as u32 {
                if own_set.contains(&qid) {
                    continue;
                }
                let q = d.point(qid);
                let needed =
                    (0..s.len()).any(|i| dist_euclidean(s.data.point(i as u32), q) < eps);
                if needed {
                    assert!(halo_set.contains(&qid), "missing halo point {qid}");
                }
            }
            // Soundness: halo points are near the region and not owned.
            for (i, hid) in s.halo_ids.iter().enumerate() {
                assert!(!own_set.contains(hid));
                assert!(s.region.min_dist_sq(s.halo.point(i as u32)) < eps * eps);
            }
        }
    }

    #[test]
    fn identical_points_terminate() {
        let d = Dataset::from_rows(&vec![vec![3.0, 3.0]; 256]);
        let plan = plan_shards(
            &d,
            0.5,
            &ShardingOptions { min_shards: 4, max_shard_bytes: Some(64) },
        );
        // Unsplittable: everything lands in one shard, but nothing is lost.
        assert_eq!(plan.counts().iter().sum::<usize>(), 256);
    }

    #[test]
    fn empty_source_gives_one_empty_shard() {
        let d = Dataset::empty(3);
        let plan = plan_shards(&d, 0.5, &ShardingOptions::default());
        assert_eq!(plan.n_shards(), 1);
        assert_eq!(plan.counts(), &[0]);
        let s = gather_shard(&d, &plan, 0);
        assert!(s.is_empty());
    }

    #[test]
    fn plan_is_deterministic() {
        let d = blob(1500, 3);
        let opts = ShardingOptions { min_shards: 3, max_shard_bytes: Some(300 * 3 * 8) };
        let a = plan_shards(&d, 0.7, &opts);
        let b = plan_shards(&d, 0.7, &opts);
        assert_eq!(a.n_shards(), b.n_shards());
        assert_eq!(a.counts(), b.counts());
        for (ra, rb) in a.regions().iter().zip(b.regions()) {
            assert_eq!(ra, rb);
        }
    }
}
