//! Mergeable log-bucketed histograms (HDR-style) with a **fixed bucket
//! layout**, so merging per-thread or per-rank histograms is exact,
//! commutative and deterministic: the merged bucket vector — and every
//! percentile derived from it — is bit-identical regardless of merge
//! order.
//!
//! ## Bucket layout
//!
//! Values are non-negative integers (node visits, candidate counts,
//! nanoseconds, bytes). The layout is log-linear with 8 sub-buckets per
//! octave (power of two):
//!
//! * `v < 8` maps to bucket `v` exactly (one bucket per value);
//! * otherwise, with `exp = floor(log2 v) ≥ 3`, the three bits below the
//!   leading bit select one of 8 sub-buckets:
//!   `index = 8·(exp − 2) + ((v >> (exp − 3)) & 7)`.
//!
//! Every `u64` maps to one of [`NUM_BUCKETS`] = 496 buckets, and a
//! bucket's width is 1/8 of its octave, so any reported quantile is at
//! most 12.5 % below the true value. Percentiles are reported as the
//! **lower bound** of the bucket containing the requested rank — a
//! deterministic function of the bucket vector alone, which is what makes
//! cross-thread and cross-rank comparisons in `bench-diff` exact.
//!
//! The exact `count`, `sum` and `max` are carried alongside the buckets
//! (they are cheap and merge exactly), so `max` in reports is never
//! quantised.

use crate::json::Json;

/// Sub-buckets per octave: 2³ = 8, giving ≤ 12.5 % quantisation error.
const SUB_BITS: u32 = 3;

/// Total number of buckets in the fixed layout (indices `0..496`).
pub const NUM_BUCKETS: usize = 8 * 62;

/// Map a value to its bucket index in the fixed layout.
#[inline]
pub fn bucket_index(v: u64) -> usize {
    if v < 8 {
        v as usize
    } else {
        let exp = 63 - v.leading_zeros();
        let sub = (v >> (exp - SUB_BITS)) & 7;
        (8 * (exp - 2) + sub as u32) as usize
    }
}

/// Lower bound (smallest value) of bucket `i`. Inverse of
/// [`bucket_index`] up to quantisation: `bucket_lower_bound(bucket_index(v)) <= v`.
#[inline]
pub fn bucket_lower_bound(i: usize) -> u64 {
    if i < 8 {
        i as u64
    } else {
        let exp = (i / 8 + 2) as u32;
        let sub = (i % 8) as u64;
        (1u64 << exp) + (sub << (exp - SUB_BITS))
    }
}

/// A mergeable log-bucketed histogram over `u64` samples.
///
/// ```
/// use obs::Histogram;
/// let mut h = Histogram::new();
/// for v in [1u64, 2, 2, 100, 10_000] {
///     h.record(v);
/// }
/// assert_eq!(h.count(), 5);
/// assert_eq!(h.max(), 10_000);
/// assert_eq!(h.percentile(0.50), 2); // exact below 8
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Histogram {
    /// Bucket counts, lazily grown; logical length is [`NUM_BUCKETS`].
    buckets: Vec<u64>,
    count: u64,
    sum: u128,
    max: u64,
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one sample.
    #[inline]
    pub fn record(&mut self, v: u64) {
        self.record_n(v, 1);
    }

    /// Record `n` identical samples.
    #[inline]
    pub fn record_n(&mut self, v: u64, n: u64) {
        if n == 0 {
            return;
        }
        let idx = bucket_index(v);
        if self.buckets.len() <= idx {
            self.buckets.resize(idx + 1, 0);
        }
        self.buckets[idx] += n;
        self.count += n;
        self.sum += v as u128 * n as u128;
        self.max = self.max.max(v);
    }

    /// Fold another histogram into this one. Bucket-wise addition:
    /// commutative and associative, so any merge order over any grouping
    /// of per-thread/per-rank histograms yields bit-identical state.
    pub fn merge(&mut self, other: &Histogram) {
        if self.buckets.len() < other.buckets.len() {
            self.buckets.resize(other.buckets.len(), 0);
        }
        for (i, &c) in other.buckets.iter().enumerate() {
            self.buckets[i] += c;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.max = self.max.max(other.max);
    }

    /// The per-window delta `self − earlier`, where `earlier` is a
    /// previous snapshot of the *same* cumulative histogram (the window
    /// algebra behind `obs::live`).
    ///
    /// Buckets, `count` and `sum` subtract exactly, so summing every
    /// window of a poll sequence reproduces the cumulative state
    /// bit-identically ([`Self::merge`] of all windows `==` the final
    /// snapshot). The window `max` cannot always be recovered from two
    /// cumulative states, so the rule is: if `self.max > earlier.max`
    /// the maximum arrived inside this window and is carried exactly;
    /// otherwise the window max falls back to the lower bound of the
    /// window's highest non-empty bucket (0 for an empty window). The
    /// window that first observes the global maximum always carries it
    /// exactly and later windows can never exceed it, so the merged
    /// `max` is exact too.
    pub fn diff(&self, earlier: &Histogram) -> Histogram {
        let mut buckets = self.buckets.clone();
        for (i, &c) in earlier.buckets.iter().enumerate() {
            if i < buckets.len() {
                buckets[i] = buckets[i].saturating_sub(c);
            }
        }
        let max = if self.max > earlier.max {
            self.max
        } else {
            buckets.iter().rposition(|&c| c > 0).map(bucket_lower_bound).unwrap_or(0)
        };
        Histogram {
            buckets,
            count: self.count.saturating_sub(earlier.count),
            sum: self.sum.saturating_sub(earlier.sum),
            max,
        }
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Exact sum of all samples.
    pub fn sum(&self) -> u128 {
        self.sum
    }

    /// Exact maximum sample (0 when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// True when no samples have been recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Mean of the recorded samples (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Non-empty buckets as `(index, count)` pairs, ascending by index.
    pub fn nonzero_buckets(&self) -> impl Iterator<Item = (usize, u64)> + '_ {
        self.buckets.iter().enumerate().filter(|(_, &c)| c > 0).map(|(i, &c)| (i, c))
    }

    /// The `q`-quantile (`q ∈ [0, 1]`), reported as the lower bound of
    /// the bucket containing rank `ceil(q·count)` — a deterministic
    /// function of the bucket vector. Returns 0 when empty.
    pub fn percentile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return bucket_lower_bound(i);
            }
        }
        self.max
    }

    /// Percentile summary as JSON:
    /// `{"count", "sum", "max", "mean", "p50", "p90", "p95", "p99"}`.
    pub fn summary_json(&self) -> Json {
        Json::obj_from([
            ("count".to_string(), Json::Num(self.count as f64)),
            ("sum".to_string(), Json::Num(self.sum as f64)),
            ("max".to_string(), Json::Num(self.max as f64)),
            ("mean".to_string(), Json::Num(self.mean())),
            ("p50".to_string(), Json::Num(self.percentile(0.50) as f64)),
            ("p90".to_string(), Json::Num(self.percentile(0.90) as f64)),
            ("p95".to_string(), Json::Num(self.percentile(0.95) as f64)),
            ("p99".to_string(), Json::Num(self.percentile(0.99) as f64)),
        ])
    }

    /// Full JSON: the summary plus the sparse bucket vector as
    /// `"buckets": [[index, count], ...]` (non-empty buckets only).
    pub fn to_json(&self) -> Json {
        let mut js = self.summary_json();
        let buckets: Vec<Json> = self
            .nonzero_buckets()
            .map(|(i, c)| Json::Arr(vec![Json::Num(i as f64), Json::Num(c as f64)]))
            .collect();
        js.set("buckets", Json::Arr(buckets));
        js
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn layout_round_trips() {
        for v in (0u64..4096).chain([1u64 << 20, (1 << 20) + 12345, u64::MAX / 3, u64::MAX]) {
            let i = bucket_index(v);
            assert!(i < NUM_BUCKETS, "index {i} out of range for {v}");
            let lb = bucket_lower_bound(i);
            assert!(lb <= v, "lower bound {lb} above value {v}");
            if i + 1 < NUM_BUCKETS {
                assert!(bucket_lower_bound(i + 1) > v, "value {v} not below next bucket");
            }
            // ≤ 12.5 % quantisation error.
            assert!((v - lb) as f64 <= 0.125 * v as f64 + 1e-9, "bucket too wide at {v}");
        }
    }

    #[test]
    fn lower_bounds_strictly_increase() {
        for i in 1..NUM_BUCKETS {
            assert!(bucket_lower_bound(i) > bucket_lower_bound(i - 1), "not monotone at {i}");
        }
        assert_eq!(bucket_index(bucket_lower_bound(NUM_BUCKETS - 1)), NUM_BUCKETS - 1);
    }

    #[test]
    fn exact_below_eight() {
        let mut h = Histogram::new();
        for v in 0..8u64 {
            h.record_n(v, v + 1);
        }
        assert_eq!(h.count(), 36);
        assert_eq!(h.percentile(1.0 / 36.0), 0);
        assert_eq!(h.percentile(1.0), 7);
        assert_eq!(h.max(), 7);
        assert_eq!(h.sum(), (0..8u64).map(|v| (v * (v + 1)) as u128).sum());
    }

    #[test]
    fn percentiles_are_bucket_lower_bounds() {
        let mut h = Histogram::new();
        for v in [10u64, 100, 1000, 10_000, 100_000] {
            h.record(v);
        }
        for q in [0.1, 0.5, 0.9, 0.99, 1.0] {
            let p = h.percentile(q);
            assert_eq!(p, bucket_lower_bound(bucket_index(p)), "q={q} not a lower bound");
        }
        assert_eq!(h.percentile(0.2), bucket_lower_bound(bucket_index(10)));
        assert_eq!(h.percentile(1.0), bucket_lower_bound(bucket_index(100_000)));
        assert_eq!(h.max(), 100_000);
    }

    #[test]
    fn merge_is_order_independent() {
        // Three shards with interleaved values; every merge order (and a
        // pairwise tree) must produce bit-identical state.
        let mut shards = Vec::new();
        for s in 0..3u64 {
            let mut h = Histogram::new();
            for k in 0..200u64 {
                h.record(s * 7 + k * k % 5000);
            }
            shards.push(h);
        }
        let orders: [[usize; 3]; 6] =
            [[0, 1, 2], [0, 2, 1], [1, 0, 2], [1, 2, 0], [2, 0, 1], [2, 1, 0]];
        let mut merged: Vec<Histogram> = Vec::new();
        for order in orders {
            let mut acc = Histogram::new();
            for i in order {
                acc.merge(&shards[i]);
            }
            merged.push(acc);
        }
        // Tree-shaped merge: (0+1) + 2 with the pair pre-merged.
        let mut pair = shards[0].clone();
        pair.merge(&shards[1]);
        pair.merge(&shards[2]);
        merged.push(pair);
        for m in &merged[1..] {
            assert_eq!(m, &merged[0], "merge order changed histogram state");
            assert_eq!(m.percentile(0.5), merged[0].percentile(0.5));
            assert_eq!(m.percentile(0.99), merged[0].percentile(0.99));
        }
    }

    #[test]
    fn diff_windows_merge_back_to_cumulative() {
        // Poll a growing cumulative histogram at arbitrary boundaries;
        // merging the per-window deltas must reproduce the cumulative
        // state bit-identically (buckets, count, sum *and* max).
        let mut cum = Histogram::new();
        let mut prev = Histogram::new();
        let mut merged = Histogram::new();
        let samples: Vec<u64> = (0..500u64).map(|k| (k * k) % 9000).collect();
        for chunk in samples.chunks(57) {
            for &v in chunk {
                cum.record(v);
            }
            let window = cum.diff(&prev);
            prev = cum.clone();
            merged.merge(&window);
        }
        assert_eq!(merged, cum, "window sums must be bit-identical to the cumulative state");
        // An empty window reads as empty, with no phantom max.
        let w = cum.diff(&cum);
        assert!(w.is_empty());
        assert_eq!(w.max(), 0);
        assert_eq!(w.sum(), 0);
        // A window that does not contain the global max reports a
        // quantised (lower-bound) max no larger than the true one.
        let mut later = cum.clone();
        later.record(100); // well below the global max
        let w = later.diff(&cum);
        assert_eq!(w.count(), 1);
        assert!(w.max() <= 100);
        assert_eq!(w.max(), bucket_lower_bound(bucket_index(100)));
    }

    #[test]
    fn json_summary_shape() {
        let mut h = Histogram::new();
        h.record_n(3, 10);
        h.record(500);
        let js = h.to_json();
        assert_eq!(js.get("count").and_then(Json::as_f64), Some(11.0));
        assert_eq!(js.get("max").and_then(Json::as_f64), Some(500.0));
        assert_eq!(js.get("p50").and_then(Json::as_f64), Some(3.0));
        let buckets = js.get("buckets").and_then(Json::as_array).unwrap();
        assert_eq!(buckets.len(), 2);
        let text = js.render_pretty();
        assert!(Json::parse(&text).is_ok());
    }

    #[test]
    fn empty_histogram() {
        let h = Histogram::new();
        assert!(h.is_empty());
        assert_eq!(h.percentile(0.5), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.mean(), 0.0);
    }
}
