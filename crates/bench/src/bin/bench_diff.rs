//! Compare two `BENCH_*.json` trajectory files and fail on perf or
//! behaviour regressions.
//!
//! ```text
//! bench_diff BASELINE.json CANDIDATE.json [options]
//!
//!   --time-tol <rel>       slowdown tolerance on timing metrics
//!                          (default 0.5 = +50%)
//!   --counter-tol <rel>    drift tolerance on deterministic work metrics
//!                          (default 0 — they are bit-stable at fixed n)
//!   --interleaved-tol <rel> drift tolerance on the query-work metrics of
//!                          t ≥ 2 parallel arms, whose executed-query set
//!                          is thread-interleaving-dependent (default 0.25)
//!   --pct-saved-tol <pts>  absolute tolerance on pct_queries_saved
//!                          (default 5 points)
//!   --overhead-tol <pts>   absolute tolerance on overhead_pct
//!                          (default 5 points)
//!   --scale-free           allow different points_per_workload; compare
//!                          only scale-insensitive observables
//! ```
//!
//! Exit codes: 0 — no regressions; 1 — at least one regression; 2 —
//! usage or unreadable/unparseable input.

use bench::diff::{diff, DiffConfig};
use obs::Json;

fn usage() -> ! {
    eprintln!(
        "usage: bench_diff BASELINE.json CANDIDATE.json \
         [--time-tol REL] [--counter-tol REL] [--interleaved-tol REL] \
         [--pct-saved-tol PTS] [--overhead-tol PTS] [--scale-free]"
    );
    std::process::exit(2);
}

fn load(path: &str) -> Json {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("bench_diff: cannot read {path}: {e}");
        std::process::exit(2);
    });
    Json::parse(&text).unwrap_or_else(|e| {
        eprintln!("bench_diff: {path} is not valid JSON: {e}");
        std::process::exit(2);
    })
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut paths: Vec<&str> = Vec::new();
    let mut cfg = DiffConfig::default();

    let mut i = 0;
    while i < args.len() {
        let arg = args[i].as_str();
        let mut tol = |cfgv: &mut f64| {
            i += 1;
            let Some(v) = args.get(i).and_then(|v| v.parse::<f64>().ok()) else { usage() };
            *cfgv = v;
        };
        match arg {
            "--time-tol" => tol(&mut cfg.time_rel),
            "--counter-tol" => tol(&mut cfg.counter_rel),
            "--interleaved-tol" => tol(&mut cfg.interleaved_rel),
            "--pct-saved-tol" => tol(&mut cfg.pct_saved_abs),
            "--overhead-tol" => tol(&mut cfg.overhead_abs),
            "--scale-free" => cfg.scale_free = true,
            "--help" | "-h" => usage(),
            _ if arg.starts_with("--") => usage(),
            _ => paths.push(arg),
        }
        i += 1;
    }
    if paths.len() != 2 {
        usage();
    }

    let baseline = load(paths[0]);
    let candidate = load(paths[1]);
    let report = match diff(&baseline, &candidate, &cfg) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("bench_diff: {e}");
            std::process::exit(2);
        }
    };

    print!("{}", report.render());
    if report.has_regressions() {
        eprintln!("bench_diff: FAIL — {} regression(s)", report.regressions().len());
        std::process::exit(1);
    }
    println!("bench_diff: OK ({} vs {})", paths[0], paths[1]);
}
