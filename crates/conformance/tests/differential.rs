//! Proptest-driven differential runs: every registered implementation vs
//! the O(n²) `naive_dbscan` oracle, over randomized datasets from all five
//! families, 1–8 dimensions, and randomized (ε, MinPts).
//!
//! On disagreement the harness minimizes the dataset (re-checking against
//! the oracle at every shrink step) and dumps a replay artifact to
//! `results/failures/` — the failure message carries the path. Case counts
//! are capped in CI via `PROPTEST_CASES`; a failing run prints the
//! `PROPTEST_SEED` that reproduces it.

use conformance::{differential, DatasetSpec, Family, FAMILIES};
use geom::DbscanParams;
use proptest::prelude::*;

/// One differential case; ε is drawn as a multiple of 0.15 so the sweep
/// crosses the interesting density regimes of every family.
fn check(
    test: &str,
    family: Family,
    n: usize,
    dim: usize,
    seed: u64,
    eps: f64,
    min_pts: usize,
) -> Result<(), TestCaseError> {
    let spec = DatasetSpec { family, n, dim, seed };
    let params = DbscanParams::new(eps, min_pts);
    let result = differential(test, &spec, &params);
    prop_assert!(result.is_ok(), "{}", result.unwrap_err());
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn blobs_conform(seed in 0u64..u64::MAX / 2, n in 4usize..64, dim in 1usize..9,
                     eps_steps in 1usize..12, min_pts in 1usize..8) {
        check("blobs_conform", Family::Blobs, n, dim, seed, eps_steps as f64 * 0.15, min_pts)?;
    }

    #[test]
    fn uniform_conform(seed in 0u64..u64::MAX / 2, n in 4usize..64, dim in 1usize..9,
                       eps_steps in 1usize..12, min_pts in 1usize..8) {
        check("uniform_conform", Family::Uniform, n, dim, seed, eps_steps as f64 * 0.15, min_pts)?;
    }

    #[test]
    fn chains_conform(seed in 0u64..u64::MAX / 2, n in 4usize..64, dim in 1usize..9,
                      eps_steps in 1usize..12, min_pts in 1usize..8) {
        check("chains_conform", Family::Chains, n, dim, seed, eps_steps as f64 * 0.15, min_pts)?;
    }

    #[test]
    fn duplicates_conform(seed in 0u64..u64::MAX / 2, n in 4usize..64, dim in 1usize..9,
                          eps_steps in 1usize..12, min_pts in 1usize..8) {
        check("duplicates_conform", Family::Duplicates, n, dim, seed, eps_steps as f64 * 0.15, min_pts)?;
    }

    #[test]
    fn mixed_conform(seed in 0u64..u64::MAX / 2, n in 4usize..64, dim in 1usize..9,
                     eps_steps in 1usize..12, min_pts in 1usize..8) {
        check("mixed_conform", Family::Mixed, n, dim, seed, eps_steps as f64 * 0.15, min_pts)?;
    }
}

/// A deterministic (ε, MinPts) grid sweep over one fixed dataset per
/// family: parameter regimes are covered even when `PROPTEST_CASES` is
/// tiny in CI.
#[test]
fn parameter_sweep_all_families() {
    for family in FAMILIES {
        for dim in [2usize, 3] {
            let spec = DatasetSpec { family, n: 40, dim, seed: 0xC0FFEE + dim as u64 };
            for eps in [0.1, 0.3, 0.7, 1.5] {
                for min_pts in [1usize, 2, 4, 8] {
                    let params = DbscanParams::new(eps, min_pts);
                    if let Err(msg) = differential("parameter_sweep", &spec, &params) {
                        panic!("{:?} dim={dim} eps={eps} min_pts={min_pts}: {msg}", family);
                    }
                }
            }
        }
    }
}

/// Degenerate shapes that randomized generation rarely hits.
#[test]
fn degenerate_datasets_conform() {
    let cases: Vec<(&str, Vec<Vec<f64>>, f64, usize)> = vec![
        ("single-point", vec![vec![1.0, 2.0]], 0.5, 1),
        ("all-identical", vec![vec![3.0]; 9], 0.5, 4),
        // Points pairwise exactly ε apart: strict `< ε` means no neighbours.
        ("exactly-eps-lattice", (0..6).map(|i| vec![i as f64]).collect(), 1.0, 2),
        ("two-far-points", vec![vec![0.0, 0.0], vec![100.0, 100.0]], 1.0, 1),
    ];
    for (name, rows, eps, min_pts) in cases {
        let outcome = conformance::run_case(&rows, &DbscanParams::new(eps, min_pts));
        assert!(outcome.disagreements.is_empty(), "{name}: {:?}", outcome.disagreements);
    }
}
