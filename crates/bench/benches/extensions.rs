//! Benchmarks of the extension algorithms: streaming ingestion, OPTICS
//! ordering, and the shared-memory parallel variant — all against the
//! batch sequential μDBSCAN on the same workload.

use criterion::{criterion_group, criterion_main, Criterion};
use geom::DbscanParams;
use mudbscan::{MuDbscan, ParMuDbscan};
use optics::Optics;
use std::hint::black_box;
use stream::StreamingMuDbscan;

fn bench_extensions(c: &mut Criterion) {
    let dataset = data::galaxy(8_000, 3, 23);
    let params = DbscanParams::new(0.8, 5);

    let mut g = c.benchmark_group("extensions");
    g.bench_function("batch_mudbscan", |b| {
        b.iter(|| black_box(MuDbscan::from_params(params).run(&dataset).clustering.n_clusters))
    });
    g.bench_function("parallel_mudbscan_4t", |b| {
        b.iter(|| {
            black_box(ParMuDbscan::from_params(params, 4).run(&dataset).clustering.n_clusters)
        })
    });
    g.bench_function("streaming_ingest_all", |b| {
        b.iter(|| {
            let mut s = StreamingMuDbscan::empty(3, params);
            s.extend_from(&dataset);
            black_box(s.snapshot().n_clusters)
        })
    });
    g.bench_function("optics_ordering", |b| {
        b.iter(|| black_box(Optics::from_params(params).run(&dataset).order.len()))
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_extensions
}
criterion_main!(benches);
