#![warn(missing_docs)]

//! # cluster-sim — a deterministic BSP distributed-memory simulator
//!
//! The paper evaluates μDBSCAN-D on a 32-node MPI cluster. This crate is
//! the workspace's substitute: a **bulk-synchronous-parallel** engine in
//! which `p` ranks own private state and communicate only through typed
//! messages routed by the engine between supersteps.
//!
//! Why BSP is a faithful model here: every phase of μDBSCAN-D (sampling
//! based kd-partitioning, ε-halo exchange, independent local clustering,
//! merge-edge exchange) is bulk-synchronous in the original MPI code too —
//! computation alternates with collective communication.
//!
//! ## Virtual time
//!
//! Each rank carries a **virtual clock**. In [`ExecMode::Sequential`]
//! (default, exact on a single-core host) the engine runs ranks one after
//! another, measures each rank's compute time per superstep, and advances
//! the *makespan* by the per-step maximum plus an α–β communication cost
//! (`latency + max-per-rank-bytes / bandwidth`, the BSP `L + g·h` term).
//! Speedup numbers derived from the makespan therefore reproduce the
//! *shape* of real cluster scaling even when the host has one core.
//!
//! [`ExecMode::Threaded`] runs every rank's closure on a real OS thread
//! per superstep — same results, used to demonstrate that the rank
//! programs are genuinely data-parallel (no hidden shared state).
//!
//! ```
//! use cluster_sim::{Bsp, Envelope};
//!
//! // Four ranks compute locally, then shift their results around a ring.
//! let mut bsp = Bsp::new(vec![0u64; 4]);
//! bsp.phase("compute");
//! bsp.run(|rank, state| *state = (rank as u64 + 1) * 100);
//! bsp.phase("shift");
//! bsp.exchange(
//!     |rank, state| vec![Envelope::new((rank + 1) % 4, *state)],
//!     |_rank, state, inbox| *state = inbox[0].1,
//! );
//! assert_eq!(bsp.states(), &[400, 100, 200, 300]);
//! assert!(bsp.makespan() > 0.0);
//! assert!(bsp.phase_times().secs("shift") > 0.0);
//! ```
//!
//! ## Fault injection
//!
//! The [`fault`] module injects deterministic, seed-addressed
//! [`FaultPlan`]s at the router: fail-stop crashes at a chosen
//! superstep, message drop/duplication/reorder on chosen links, and
//! stragglers that skew a rank's virtual clock. A reliable delivery
//! layer (timeout/retry-with-backoff, [`RetryConfig`]) and
//! [`Bsp::recover`] (re-execute a crashed rank without advancing the
//! superstep counter) let the distributed algorithms produce
//! bit-identical output under faults; [`FaultStats::replay_signature`]
//! pins the exact counter trace for replay gating. See
//! `docs/API.md` for the cookbook.

pub mod bsp;
pub mod fault;
pub mod msgsize;

pub use bsp::{Bsp, CommModel, Envelope, ExecMode, RankClock};
pub use fault::{Fault, FaultPlan, FaultStats, RetryConfig};
pub use msgsize::MsgSize;
