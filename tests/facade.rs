//! Facade round-trip: for every family, a [`Runner`]-built instance must
//! produce a clustering bit-identical to the directly-built (low-level)
//! construction it wraps, and every low-level constructor must remain
//! usable on its own.

use dist::{DistConfig, MuDbscanD};
use mudbscan::prelude::{Family, RunDetails, Runner};
use mudbscan::{Clustering, MuDbscan, ParMuDbscan};
use optics::{extract_dbscan, Optics};
use stream::StreamingMuDbscan;

/// Runs `runner` and returns its clustering, panicking with `tag` context
/// on any facade-level error.
fn via_runner(runner: Runner, data: &geom::Dataset, tag: &str) -> Clustering {
    runner.run(data).unwrap_or_else(|e| panic!("{tag}: facade run failed: {e}")).clustering
}

#[test]
fn runner_output_is_bit_identical_to_direct_construction() {
    for spec in data::paper_table2_specs().iter().take(3) {
        let dataset = spec.generate_n(600, 13);
        let params = spec.params;
        let tag = spec.name;

        // Sequential: Runner::new(params) vs MuDbscan::from_params(params).
        let direct = MuDbscan::from_params(params).run(&dataset).clustering;
        assert_eq!(via_runner(Runner::new(params), &dataset, tag), direct, "{tag}: sequential");

        // Parallel: .threads(4) vs ParMuDbscan::from_params(params, 4).
        let direct = ParMuDbscan::from_params(params, 4).run(&dataset).clustering;
        assert_eq!(
            via_runner(Runner::new(params).threads(4), &dataset, tag),
            direct,
            "{tag}: parallel"
        );

        // Distributed: .ranks(4) vs MuDbscanD::from_params(params, DistConfig::new(4)).
        let direct =
            MuDbscanD::from_params(params, DistConfig::new(4)).run(&dataset).unwrap().clustering;
        assert_eq!(
            via_runner(Runner::new(params).ranks(4), &dataset, tag),
            direct,
            "{tag}: distributed"
        );

        // Streaming: .family(Family::Streaming) vs bulk-loaded snapshot.
        let direct = StreamingMuDbscan::from_dataset(&dataset, params).snapshot();
        assert_eq!(
            via_runner(Runner::new(params).family(Family::Streaming), &dataset, tag),
            direct,
            "{tag}: streaming"
        );

        // OPTICS: .family(Family::Optics) vs extract_dbscan at eps' = eps.
        let direct =
            extract_dbscan(&Optics::from_params(params).run(&dataset), &dataset, params.eps);
        assert_eq!(
            via_runner(Runner::new(params).family(Family::Optics), &dataset, tag),
            direct,
            "{tag}: optics"
        );
    }
}

#[test]
fn run_details_report_the_resolved_family() {
    let spec = &data::paper_table2_specs()[0];
    let dataset = spec.generate_n(200, 5);
    let params = spec.params;

    let out = Runner::new(params).ranks(2).run(&dataset).unwrap();
    let RunDetails::Distributed { ranks, supersteps, ref fault_stats, .. } = out.details else {
        panic!("expected distributed details");
    };
    assert_eq!(ranks, 2);
    assert!(supersteps > 0);
    assert!(fault_stats.is_quiet(), "fault-free run must report quiet fault stats");

    let out = Runner::new(params).threads(2).run(&dataset).unwrap();
    assert!(matches!(out.details, RunDetails::Parallel { .. }));
}

#[test]
fn low_level_constructors_compile_and_run() {
    let spec = &data::paper_table2_specs()[0];
    let dataset = spec.generate_n(120, 3);
    let params = spec.params;
    let oracle = mudbscan::naive_dbscan(&dataset, &params);

    // Each per-family type must remain usable without the facade (the
    // facade and crates like `dist` build on these entry points).
    assert_eq!(MuDbscan::from_params(params).run(&dataset).clustering, oracle);
    assert_eq!(ParMuDbscan::from_params(params, 2).run(&dataset).clustering, oracle);
    assert_eq!(
        MuDbscanD::from_params(params, DistConfig::new(2)).run(&dataset).unwrap().clustering,
        oracle
    );
    let mut stream = StreamingMuDbscan::empty(dataset.dim(), params);
    for p in 0..dataset.len() {
        stream.insert(dataset.point(p as geom::PointId));
    }
    assert_eq!(stream.snapshot(), oracle);
    let optics_out = Optics::from_params(params).run(&dataset);
    assert_eq!(extract_dbscan(&optics_out, &dataset, params.eps), oracle);
}
