#![deny(missing_docs)]

//! # stream — insertion-incremental μDBSCAN and its serving layer
//!
//! The paper closes with "this approach can also be adopted to fast
//! clustering of data streams". This crate implements that extension
//! twice over:
//!
//! * [`StreamingMuDbscan`] — the single-owner engine: ingest points one
//!   at a time and, **after every insertion, hold exactly the DBSCAN
//!   clustering of the points seen so far** (validated against the
//!   batch oracle in the tests);
//! * [`serve::ServingMuDbscan`] — the concurrent serving layer on top:
//!   a writer thread applies batched inserts **plus deletions and
//!   TTL expiry**, publishing immutable epoch [`serve::Snapshot`]s that
//!   any number of reader threads answer from without blocking on
//!   writers. Reach it through `Runner::serve` on the facade (see
//!   `docs/SERVING.md`).
//!
//! The incremental semantics follow Ester et al.'s IncrementalDBSCAN
//! (1998) specialised to insertions, accelerated with the paper's
//! micro-cluster machinery:
//!
//! * points are assigned to ε-ball micro-clusters maintained online
//!   (level-1 R-tree over centers, one incremental aux R-tree per MC);
//! * an ε-query for a point only searches MCs whose center is strictly
//!   within 2ε (a point within ε of `p` is within ε of its own center,
//!   so its center is within 2ε of `p`);
//! * per-point ε-neighbour **counts** are maintained instead of lists:
//!   inserting `p` increments the count of each of its neighbours;
//!   points whose count crosses `MinPts` are *promoted* to core and run
//!   one ε-query each to wire up their cluster edges — everything else
//!   needs no recomputation.
//!
//! Deletions are exact too, and **local**: removing a point
//! ([`StreamingMuDbscan::try_remove`]) tombstones it, deletes it from
//! its MC's aux R-tree, decrements its live neighbours' counts and
//! demotes cores that fall below `MinPts` — then, because a deletion
//! can split clusters and the union–find cannot unsplit, replays the
//! union rules only over the affected component(s). The serving layer
//! applies removals through this repair per-op and falls back to an
//! exact rebuild over the compacted live set when the blast radius
//! exceeds its budget (see [`serve`]); either way every published
//! epoch stays bit-identical to a batch run on the same points.
//!
//! ```
//! use geom::DbscanParams;
//! use stream::StreamingMuDbscan;
//!
//! let mut s = StreamingMuDbscan::empty(1, DbscanParams::new(1.0, 3));
//! s.insert(&[0.0]);
//! s.insert(&[0.5]);
//! assert_eq!(s.snapshot().n_clusters, 0); // two points, nobody core yet
//! s.insert(&[-0.5]);
//! let c = s.snapshot();
//! assert_eq!(c.n_clusters, 1); // the middle point crossed MinPts
//! assert!(c.is_core[0]);
//! ```

pub mod incremental;
pub mod serve;

pub use incremental::{RemoveOutcome, StreamingMuDbscan};
pub use serve::{
    Drained, ExtId, Membership, ServeError, ServeHandle, ServeOp, ServeOptions, ServeStats,
    ServingMuDbscan, Snapshot,
};
