//! The `stream` and `optics` front-ends now build their μR-tree with the
//! tiled parallel constructor when the full dataset is available up
//! front. Neither algorithm's *output* may depend on which construction
//! ran: OPTICS only consumes exact ε-neighbourhoods (identical under
//! either build), and the streaming bulk loader replays the same union
//! rules the incremental path applies. These tests pin that equality —
//! and that the sequential paths stay reachable under `with_options` /
//! point-at-a-time ingestion.

use conformance::{DatasetSpec, FAMILIES};
use geom::{Dataset, DbscanParams};
use mcs::BuildOptions;
use mudbscan::{check_exact, naive_dbscan};
use optics::Optics;
use stream::StreamingMuDbscan;

#[test]
fn optics_parallel_build_output_equals_sequential_build() {
    for family in FAMILIES {
        let spec = DatasetSpec { family, n: 250, dim: 3, seed: 2019 };
        let data = Dataset::from_rows(&spec.rows());
        let params = DbscanParams::new(0.6, 5);

        let par = Optics::from_params(params).run(&data); // parallel build default
        let seq = Optics::from_params(params).with_options(BuildOptions::default()).run(&data);

        let label = family.as_str();
        assert_eq!(par.order, seq.order, "{label}: OPTICS order depends on the build path");
        assert_eq!(par.reachability, seq.reachability, "{label}: reachability drifted");
        assert_eq!(par.core_distance, seq.core_distance, "{label}: core distances drifted");
    }
}

#[test]
fn optics_parallel_build_extraction_stays_exact() {
    let spec = DatasetSpec { family: FAMILIES[0], n: 250, dim: 3, seed: 7 };
    let data = Dataset::from_rows(&spec.rows());
    let out = Optics::from_params(DbscanParams::new(0.8, 5)).run(&data);
    for eps_prime in [0.4, 0.8] {
        let got = optics::extract_dbscan(&out, &data, eps_prime);
        let params = DbscanParams::new(eps_prime, 5);
        let want = naive_dbscan(&data, &params);
        let rep = check_exact(&got, &want, &data, &params);
        assert!(rep.is_exact(), "eps'={eps_prime}: {rep:?}");
    }
}

#[test]
fn stream_bulk_load_equals_incremental_ingestion() {
    for family in FAMILIES {
        let spec = DatasetSpec { family, n: 250, dim: 3, seed: 2019 };
        let data = Dataset::from_rows(&spec.rows());
        let params = DbscanParams::new(0.6, 5);

        let mut bulk = StreamingMuDbscan::from_dataset(&data, params);
        let mut incr = StreamingMuDbscan::empty(data.dim(), params);
        incr.extend_from(&data);

        let a = bulk.snapshot();
        let b = incr.snapshot();
        let label = family.as_str();
        // Canonical quantities must match exactly; the label partition is
        // additionally pinned against the oracle (border ties may attach
        // differently between ingestion orders, which DBSCAN allows).
        assert_eq!(a.is_core, b.is_core, "{label}: core flags depend on the build path");
        assert_eq!(a.n_clusters, b.n_clusters, "{label}: cluster count drifted");
        assert_eq!(a.noise_count(), b.noise_count(), "{label}: noise count drifted");
        let want = naive_dbscan(&data, &params);
        let rep = check_exact(&a, &want, &data, &params);
        assert!(rep.is_exact(), "{label}: bulk load inexact: {rep:?}");
    }
}

#[test]
fn stream_inserts_after_bulk_load_stay_exact() {
    let spec = DatasetSpec { family: FAMILIES[0], n: 260, dim: 3, seed: 11 };
    let data = Dataset::from_rows(&spec.rows());
    let params = DbscanParams::new(0.6, 5);
    let split = 200;
    let head_rows: Vec<Vec<f64>> = (0..split).map(|j| data.point(j).to_vec()).collect();
    let head = Dataset::from_rows(&head_rows);

    let mut s = StreamingMuDbscan::from_dataset(&head, params);
    for j in split..data.len() as u32 {
        s.insert(data.point(j));
    }
    let got = s.snapshot();
    let want = naive_dbscan(&data, &params);
    let rep = check_exact(&got, &want, &data, &params);
    assert!(rep.is_exact(), "incremental continuation after bulk load inexact: {rep:?}");
}
