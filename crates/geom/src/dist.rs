//! Euclidean distance kernels.
//!
//! All clustering hot loops compare *squared* distances against a
//! precomputed ε² to avoid `sqrt` calls; the early-exit variant
//! [`within_sq`] additionally abandons the accumulation as soon as the
//! partial sum exceeds the threshold, which pays off at high dimension
//! (the paper's KDDB datasets go up to 74-d).
//!
//! All comparisons are **strict** (`< ε`, never `≤`): the paper's core
//! arguments are triangle-inequality chains over strict bounds — Lemma 1
//! (two points strictly within ε/2 of an MC center are strictly within ε
//! of each other) and Lemma 3 (a point's ε-neighbours live in MCs whose
//! centers are strictly within 3ε) — and mixing in a `≤` anywhere would
//! silently change which points count as neighbours.

/// Squared Euclidean distance between two equal-length coordinate slices.
#[inline]
pub fn dist_sq(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    let mut acc = 0.0;
    for (x, y) in a.iter().zip(b.iter()) {
        let d = x - y;
        acc += d * d;
    }
    acc
}

/// Euclidean distance between two equal-length coordinate slices.
#[inline]
pub fn dist_euclidean(a: &[f64], b: &[f64]) -> f64 {
    dist_sq(a, b).sqrt()
}

/// `true` iff `DIST(a, b) < threshold` (strict, matching the paper's
/// ε-neighbourhood definition), evaluated on squared values.
#[inline]
pub fn within(a: &[f64], b: &[f64], threshold: f64) -> bool {
    within_sq(a, b, threshold * threshold)
}

/// `true` iff `DIST(a, b)² < threshold_sq`, abandoning the accumulation
/// early once the partial sum already exceeds the bound.
///
/// The early exit is checked every 4 components so low dimensions do not pay
/// branch overhead on every term.
#[inline]
pub fn within_sq(a: &[f64], b: &[f64], threshold_sq: f64) -> bool {
    debug_assert_eq!(a.len(), b.len());
    let mut acc = 0.0;
    let mut chunks = a.chunks_exact(4).zip(b.chunks_exact(4));
    for (ca, cb) in &mut chunks {
        for k in 0..4 {
            let d = ca[k] - cb[k];
            acc += d * d;
        }
        if acc >= threshold_sq {
            return false;
        }
    }
    let ra = &a[a.len() - a.len() % 4..];
    let rb = &b[b.len() - b.len() % 4..];
    for (x, y) in ra.iter().zip(rb.iter()) {
        let d = x - y;
        acc += d * d;
    }
    acc < threshold_sq
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dist_sq_basic() {
        assert_eq!(dist_sq(&[0.0, 0.0], &[3.0, 4.0]), 25.0);
        assert_eq!(dist_euclidean(&[0.0, 0.0], &[3.0, 4.0]), 5.0);
        assert_eq!(dist_sq(&[1.5], &[1.5]), 0.0);
    }

    #[test]
    fn within_is_strict() {
        // Exactly at the threshold must be excluded (paper: DIST < eps).
        assert!(!within(&[0.0, 0.0], &[3.0, 4.0], 5.0));
        assert!(within(&[0.0, 0.0], &[3.0, 4.0], 5.0 + 1e-9));
        assert!(within(&[0.0], &[0.0], 1e-12));
    }

    #[test]
    fn within_sq_matches_dist_sq_high_dim() {
        // 7-d exercises both the chunked part and the remainder.
        let a = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0];
        let b = [7.0, 6.0, 5.0, 4.0, 3.0, 2.0, 1.0];
        let d2 = dist_sq(&a, &b);
        assert!(within_sq(&a, &b, d2 + 1e-12));
        assert!(!within_sq(&a, &b, d2));
        assert!(!within_sq(&a, &b, d2 - 1e-12));
    }

    /// Pin the paper's open-ball convention — `DIST(p, q) < ε`, never `<=` —
    /// for point pairs *exactly* ε apart, across dimensionalities and for
    /// every comparison surface a query path goes through: `within`,
    /// `within_sq` against ε², and `Mbr` pruning (`min_dist_sq` /
    /// `intersects_sphere` on a degenerate point-MBR).
    ///
    /// All constructions use distances that are exactly representable in
    /// binary floating point (axis-aligned offsets and 3-4-5 / all-ones
    /// diagonals), so `dist_sq == eps_sq` holds with equality, not merely to
    /// within rounding.
    #[test]
    fn open_ball_convention_exactly_eps_apart() {
        use crate::mbr::Mbr;

        // (a, b, eps) with DIST(a, b) == eps exactly.
        let cases: Vec<(Vec<f64>, Vec<f64>, f64)> = vec![
            // 1-d, axis offset.
            (vec![0.0], vec![2.0], 2.0),
            // 2-d, 3-4-5 triangle.
            (vec![0.0, 0.0], vec![3.0, 4.0], 5.0),
            // 4-d all-ones diagonal: dist_sq = 4, eps = 2.
            (vec![0.0; 4], vec![1.0; 4], 2.0),
            // 5-d: exercises chunk + remainder with an exact sum.
            (vec![0.0; 5], vec![2.0, 0.0, 0.0, 0.0, 0.0], 2.0),
            // 8-d: ones on four axes → dist_sq = 4, eps = 2; exercises a
            // full chunk plus an all-zero remainder.
            (vec![0.0; 8], vec![1.0, 1.0, 1.0, 1.0, 0.0, 0.0, 0.0, 0.0], 2.0),
        ];
        for (a, b, eps) in &cases {
            let eps_sq = eps * eps;
            assert_eq!(dist_sq(a, b), eps_sq, "construction broken: distance not exactly eps");

            // Point-to-point: exactly ε apart is OUTSIDE the neighbourhood.
            assert!(!within(a, b, *eps), "within must be strict at eps={eps}");
            assert!(!within_sq(a, b, eps_sq), "within_sq must be strict");
            // Identical points are always inside (distance 0 < ε).
            assert!(within(a, a, *eps));

            // Index pruning must agree with the point predicate: a point-MBR
            // exactly ε from the query centre may be pruned — and at any
            // radius beyond ε it must not be.
            let leaf = Mbr::point(b);
            assert!(leaf.min_dist_sq(a) >= eps_sq, "pruning disagrees with within_sq");
            assert!(!leaf.intersects_sphere(a, *eps), "sphere test must be strict");
            assert!(leaf.intersects_sphere(a, eps * (1.0 + 1e-9)));
        }
    }

    #[test]
    fn within_sq_early_exit_correct() {
        // First chunk alone exceeds the bound: must still answer correctly.
        let a = [100.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0];
        let b = [0.0; 8];
        assert!(!within_sq(&a, &b, 1.0));
        assert!(within_sq(&a, &b, 10001.0));
    }
}
