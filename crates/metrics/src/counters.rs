//! Operation counters.
//!
//! [`Counters`] is the single-threaded variant used inside the sequential
//! algorithms (interior mutability via `Cell` so read-only query paths can
//! still count); [`SharedCounters`] is the atomic variant shared across the
//! ranks of the distributed simulator or worker threads.

use std::cell::Cell;
use std::sync::atomic::{AtomicU64, Ordering};

/// Per-run operation counters for a sequential algorithm.
///
/// The fields map directly to paper quantities:
/// * `range_queries` — ε-neighbourhood queries actually executed,
/// * `queries_saved` — points labelled core/cluster-member *without* a
///   query (wndq-core points; Table II "% query saves"),
/// * `dist_computations` — point-to-point distance evaluations,
/// * `node_visits` — R-tree / grid-cell node inspections.
#[derive(Debug, Default)]
pub struct Counters {
    range_queries: Cell<u64>,
    queries_saved: Cell<u64>,
    dist_computations: Cell<u64>,
    node_visits: Cell<u64>,
    union_ops: Cell<u64>,
}

impl Counters {
    /// Fresh zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Counters initialised with explicit values (used to snapshot the
    /// atomic [`SharedCounters`]).
    pub fn from_raw(
        range_queries: u64,
        queries_saved: u64,
        dists: u64,
        node_visits: u64,
        unions: u64,
    ) -> Self {
        let c = Self::default();
        c.range_queries.set(range_queries);
        c.queries_saved.set(queries_saved);
        c.dist_computations.set(dists);
        c.node_visits.set(node_visits);
        c.union_ops.set(unions);
        c
    }

    /// Record one executed ε-neighbourhood query.
    #[inline]
    pub fn count_range_query(&self) {
        self.range_queries.set(self.range_queries.get() + 1);
    }

    /// Record one query avoided thanks to wndq-core labelling.
    #[inline]
    pub fn count_query_saved(&self) {
        self.queries_saved.set(self.queries_saved.get() + 1);
    }

    /// Record `n` distance computations.
    #[inline]
    pub fn count_dists(&self, n: u64) {
        self.dist_computations.set(self.dist_computations.get() + n);
    }

    /// Record one index-node visit.
    #[inline]
    pub fn count_node_visit(&self) {
        self.node_visits.set(self.node_visits.get() + 1);
    }

    /// Record `n` index-node visits at once (e.g. a whole
    /// `QueryCost::nodes_visited` batch).
    #[inline]
    pub fn count_node_visits(&self, n: u64) {
        self.node_visits.set(self.node_visits.get() + n);
    }

    /// Record one union–find UNION operation.
    #[inline]
    pub fn count_union(&self) {
        self.union_ops.set(self.union_ops.get() + 1);
    }

    /// Executed ε-queries.
    pub fn range_queries(&self) -> u64 {
        self.range_queries.get()
    }

    /// Queries avoided.
    pub fn queries_saved(&self) -> u64 {
        self.queries_saved.get()
    }

    /// Distance evaluations.
    pub fn dist_computations(&self) -> u64 {
        self.dist_computations.get()
    }

    /// Index-node visits.
    pub fn node_visits(&self) -> u64 {
        self.node_visits.get()
    }

    /// UNION operations.
    pub fn union_ops(&self) -> u64 {
        self.union_ops.get()
    }

    /// Fraction of queries saved out of all points that *would* need one in
    /// classical DBSCAN: `saved / (saved + executed)`, as a percentage.
    pub fn pct_queries_saved(&self) -> f64 {
        let saved = self.queries_saved.get() as f64;
        let total = saved + self.range_queries.get() as f64;
        if total == 0.0 {
            0.0
        } else {
            100.0 * saved / total
        }
    }

    /// Fold another counter set into this one (used to aggregate per-rank
    /// counters after a simulated distributed run).
    pub fn absorb(&self, other: &Counters) {
        self.range_queries.set(self.range_queries.get() + other.range_queries.get());
        self.queries_saved.set(self.queries_saved.get() + other.queries_saved.get());
        self.dist_computations.set(self.dist_computations.get() + other.dist_computations.get());
        self.node_visits.set(self.node_visits.get() + other.node_visits.get());
        self.union_ops.set(self.union_ops.get() + other.union_ops.get());
    }
}

/// Thread-safe counters with the same semantics as [`Counters`].
#[derive(Debug, Default)]
pub struct SharedCounters {
    range_queries: AtomicU64,
    queries_saved: AtomicU64,
    dist_computations: AtomicU64,
    node_visits: AtomicU64,
    union_ops: AtomicU64,
}

impl SharedCounters {
    /// Fresh zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one executed ε-neighbourhood query.
    #[inline]
    pub fn count_range_query(&self) {
        self.range_queries.fetch_add(1, Ordering::Relaxed);
    }

    /// Record one query avoided.
    #[inline]
    pub fn count_query_saved(&self) {
        self.queries_saved.fetch_add(1, Ordering::Relaxed);
    }

    /// Record `n` distance computations.
    #[inline]
    pub fn count_dists(&self, n: u64) {
        self.dist_computations.fetch_add(n, Ordering::Relaxed);
    }

    /// Record one index-node visit.
    #[inline]
    pub fn count_node_visit(&self) {
        self.node_visits.fetch_add(1, Ordering::Relaxed);
    }

    /// Record `n` index-node visits at once (one fetch-add for a whole
    /// `QueryCost`-sized batch).
    #[inline]
    pub fn count_node_visits(&self, n: u64) {
        self.node_visits.fetch_add(n, Ordering::Relaxed);
    }

    /// Record one UNION operation.
    #[inline]
    pub fn count_union(&self) {
        self.union_ops.fetch_add(1, Ordering::Relaxed);
    }

    /// Executed ε-queries.
    pub fn range_queries(&self) -> u64 {
        self.range_queries.load(Ordering::Relaxed)
    }

    /// Queries avoided.
    pub fn queries_saved(&self) -> u64 {
        self.queries_saved.load(Ordering::Relaxed)
    }

    /// Distance evaluations.
    pub fn dist_computations(&self) -> u64 {
        self.dist_computations.load(Ordering::Relaxed)
    }

    /// Index-node visits.
    pub fn node_visits(&self) -> u64 {
        self.node_visits.load(Ordering::Relaxed)
    }

    /// UNION operations.
    pub fn union_ops(&self) -> u64 {
        self.union_ops.load(Ordering::Relaxed)
    }

    /// Percentage of queries saved (see [`Counters::pct_queries_saved`]).
    pub fn pct_queries_saved(&self) -> f64 {
        let saved = self.queries_saved() as f64;
        let total = saved + self.range_queries() as f64;
        if total == 0.0 {
            0.0
        } else {
            100.0 * saved / total
        }
    }

    /// Snapshot into a sequential [`Counters`]. All five fields carry over
    /// (node visits included — an earlier version of this signature dropped
    /// them, which the `from_raw_round_trips` test now pins).
    pub fn snapshot(&self) -> Counters {
        Counters::from_raw(
            self.range_queries(),
            self.queries_saved(),
            self.dist_computations(),
            self.node_visits(),
            self.union_ops(),
        )
    }

    /// Fold a sequential counter set into this shared one.
    pub fn absorb(&self, other: &Counters) {
        self.range_queries.fetch_add(other.range_queries(), Ordering::Relaxed);
        self.queries_saved.fetch_add(other.queries_saved(), Ordering::Relaxed);
        self.dist_computations.fetch_add(other.dist_computations(), Ordering::Relaxed);
        self.node_visits.fetch_add(other.node_visits(), Ordering::Relaxed);
        self.union_ops.fetch_add(other.union_ops(), Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let c = Counters::new();
        c.count_range_query();
        c.count_range_query();
        c.count_query_saved();
        c.count_dists(10);
        c.count_node_visit();
        c.count_union();
        assert_eq!(c.range_queries(), 2);
        assert_eq!(c.queries_saved(), 1);
        assert_eq!(c.dist_computations(), 10);
        assert_eq!(c.node_visits(), 1);
        assert_eq!(c.union_ops(), 1);
    }

    #[test]
    fn pct_queries_saved() {
        let c = Counters::new();
        assert_eq!(c.pct_queries_saved(), 0.0);
        for _ in 0..96 {
            c.count_query_saved();
        }
        for _ in 0..4 {
            c.count_range_query();
        }
        assert!((c.pct_queries_saved() - 96.0).abs() < 1e-12);
    }

    #[test]
    fn absorb_merges() {
        let a = Counters::new();
        let b = Counters::new();
        a.count_range_query();
        b.count_range_query();
        b.count_query_saved();
        a.absorb(&b);
        assert_eq!(a.range_queries(), 2);
        assert_eq!(a.queries_saved(), 1);
    }

    #[test]
    fn shared_counters_from_threads() {
        let c = SharedCounters::new();
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for _ in 0..100 {
                        c.count_range_query();
                        c.count_dists(2);
                    }
                });
            }
        });
        assert_eq!(c.range_queries(), 400);
        assert_eq!(c.dist_computations(), 800);
    }

    #[test]
    fn from_raw_round_trips() {
        // Every field survives a SharedCounters -> Counters snapshot —
        // in particular node_visits, which from_raw used to drop.
        let s = SharedCounters::new();
        s.count_range_query();
        s.count_query_saved();
        s.count_dists(3);
        s.count_node_visit();
        s.count_node_visits(4);
        s.count_union();
        let snap = s.snapshot();
        assert_eq!(snap.range_queries(), 1);
        assert_eq!(snap.queries_saved(), 1);
        assert_eq!(snap.dist_computations(), 3);
        assert_eq!(snap.node_visits(), 5);
        assert_eq!(snap.union_ops(), 1);

        // And the reverse direction (absorb) keeps node visits too.
        let s2 = SharedCounters::new();
        s2.absorb(&snap);
        assert_eq!(s2.node_visits(), 5);
        let direct = Counters::from_raw(7, 6, 5, 4, 3);
        assert_eq!(direct.node_visits(), 4);
    }

    #[test]
    fn shared_absorbs_sequential() {
        let s = SharedCounters::new();
        let c = Counters::new();
        c.count_query_saved();
        c.count_union();
        s.absorb(&c);
        assert_eq!(s.queries_saved(), 1);
        assert_eq!(s.union_ops(), 1);
    }
}
