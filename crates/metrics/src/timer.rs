//! Phase timing.
//!
//! [`PhaseTimer`] accumulates wall-clock time per named phase and renders
//! the percentage split-ups reported in Tables III and VII of the paper.

use std::time::{Duration, Instant};

/// A simple restartable stopwatch.
#[derive(Debug)]
pub struct Stopwatch {
    started: Instant,
}

impl Stopwatch {
    /// Start timing now.
    pub fn start() -> Self {
        Self { started: Instant::now() }
    }

    /// Elapsed time since start (or last reset).
    pub fn elapsed(&self) -> Duration {
        self.started.elapsed()
    }

    /// Elapsed seconds as `f64`.
    pub fn secs(&self) -> f64 {
        self.elapsed().as_secs_f64()
    }

    /// Reset the start point to now.
    pub fn reset(&mut self) {
        self.started = Instant::now();
    }

    /// Elapsed seconds, then reset — convenient for phase-to-phase timing.
    pub fn lap(&mut self) -> f64 {
        let s = self.secs();
        self.reset();
        s
    }
}

/// CPU time consumed by the *calling thread* so far, in seconds.
///
/// On Linux this reads `CLOCK_THREAD_CPUTIME_ID`, so the value excludes
/// time the thread spent descheduled. That distinction is what makes
/// per-worker busy times meaningful on machines with fewer cores than
/// worker threads: wall clock cannot show a parallel phase shrinking
/// when all workers share one core, but the per-worker busy maximum (the
/// phase's critical path, the same convention the distributed simulator
/// uses for per-rank phase maxima) can. Off Linux it falls back to wall
/// time from a process-wide epoch, which degrades gracefully to "busy ==
/// wall" semantics.
pub fn thread_cpu_secs() -> f64 {
    #[cfg(target_os = "linux")]
    {
        #[repr(C)]
        struct Timespec {
            tv_sec: i64,
            tv_nsec: i64,
        }
        extern "C" {
            fn clock_gettime(clk_id: i32, tp: *mut Timespec) -> i32;
        }
        const CLOCK_THREAD_CPUTIME_ID: i32 = 3;
        let mut ts = Timespec { tv_sec: 0, tv_nsec: 0 };
        // SAFETY: `ts` is a valid, writable timespec matching the libc ABI.
        if unsafe { clock_gettime(CLOCK_THREAD_CPUTIME_ID, &mut ts) } == 0 {
            return ts.tv_sec as f64 + ts.tv_nsec as f64 * 1e-9;
        }
    }
    wall_epoch_secs()
}

/// Seconds since a lazily initialised process-wide epoch (the fallback
/// clock for [`thread_cpu_secs`] on non-Linux targets).
fn wall_epoch_secs() -> f64 {
    static EPOCH: std::sync::OnceLock<Instant> = std::sync::OnceLock::new();
    EPOCH.get_or_init(Instant::now).elapsed().as_secs_f64()
}

/// Measures the calling thread's busy (on-CPU) time across a region.
///
/// Start it at the top of a worker's run loop and read [`BusyTimer::secs`]
/// when the worker finishes; the maximum over workers is the stage's
/// critical-path cost.
#[derive(Debug)]
pub struct BusyTimer {
    start: f64,
}

impl BusyTimer {
    /// Start measuring from the calling thread's current CPU time.
    pub fn start() -> Self {
        Self { start: thread_cpu_secs() }
    }

    /// Busy seconds since [`BusyTimer::start`], clamped non-negative.
    pub fn secs(&self) -> f64 {
        (thread_cpu_secs() - self.start).max(0.0)
    }
}

/// Accumulates durations under phase names, preserving first-seen order.
#[derive(Debug, Default, Clone)]
pub struct PhaseTimer {
    phases: Vec<(String, Duration)>,
}

impl PhaseTimer {
    /// Empty timer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add `d` to phase `name`, creating the phase on first use.
    pub fn add(&mut self, name: &str, d: Duration) {
        if let Some(e) = self.phases.iter_mut().find(|(n, _)| n == name) {
            e.1 += d;
        } else {
            self.phases.push((name.to_string(), d));
        }
    }

    /// Add seconds to phase `name`.
    pub fn add_secs(&mut self, name: &str, secs: f64) {
        self.add(name, Duration::from_secs_f64(secs.max(0.0)));
    }

    /// Time the closure and charge it to `name`, returning its result.
    pub fn time<T>(&mut self, name: &str, f: impl FnOnce() -> T) -> T {
        let t = Instant::now();
        let out = f();
        self.add(name, t.elapsed());
        out
    }

    /// Seconds recorded for `name` (0 when absent).
    pub fn secs(&self, name: &str) -> f64 {
        self.phases.iter().find(|(n, _)| n == name).map(|(_, d)| d.as_secs_f64()).unwrap_or(0.0)
    }

    /// Total seconds across all phases.
    pub fn total_secs(&self) -> f64 {
        self.phases.iter().map(|(_, d)| d.as_secs_f64()).sum()
    }

    /// `(name, seconds, percent-of-total)` rows in first-seen order.
    pub fn split_up(&self) -> Vec<(String, f64, f64)> {
        let total = self.total_secs();
        self.phases
            .iter()
            .map(|(n, d)| {
                let s = d.as_secs_f64();
                let pct = if total > 0.0 { 100.0 * s / total } else { 0.0 };
                (n.clone(), s, pct)
            })
            .collect()
    }

    /// Take the per-phase maxima of two timers — the BSP makespan rule:
    /// each superstep costs as much as its slowest rank.
    pub fn max_merge(&mut self, other: &PhaseTimer) {
        for (name, d) in &other.phases {
            if let Some(e) = self.phases.iter_mut().find(|(n, _)| n == name) {
                if *d > e.1 {
                    e.1 = *d;
                }
            } else {
                self.phases.push((name.clone(), *d));
            }
        }
    }

    /// Iterate phases in first-seen order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, Duration)> {
        self.phases.iter().map(|(n, d)| (n.as_str(), *d))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stopwatch_monotone() {
        let mut sw = Stopwatch::start();
        let a = sw.secs();
        let b = sw.secs();
        assert!(b >= a);
        let lap = sw.lap();
        assert!(lap >= 0.0);
        assert!(sw.secs() <= lap + 1.0);
    }

    #[test]
    fn phases_accumulate_in_order() {
        let mut t = PhaseTimer::new();
        t.add_secs("build", 1.0);
        t.add_secs("query", 3.0);
        t.add_secs("build", 1.0);
        assert_eq!(t.secs("build"), 2.0);
        assert_eq!(t.secs("query"), 3.0);
        assert_eq!(t.secs("absent"), 0.0);
        assert_eq!(t.total_secs(), 5.0);
        let rows = t.split_up();
        assert_eq!(rows[0].0, "build");
        assert!((rows[0].2 - 40.0).abs() < 1e-9);
        assert!((rows[1].2 - 60.0).abs() < 1e-9);
    }

    #[test]
    fn time_closure_returns_value() {
        let mut t = PhaseTimer::new();
        let v = t.time("work", || 42);
        assert_eq!(v, 42);
        assert!(t.secs("work") >= 0.0);
        assert_eq!(t.iter().count(), 1);
    }

    #[test]
    fn max_merge_takes_per_phase_max() {
        let mut a = PhaseTimer::new();
        a.add_secs("x", 1.0);
        a.add_secs("y", 5.0);
        let mut b = PhaseTimer::new();
        b.add_secs("x", 3.0);
        b.add_secs("z", 2.0);
        a.max_merge(&b);
        assert_eq!(a.secs("x"), 3.0);
        assert_eq!(a.secs("y"), 5.0);
        assert_eq!(a.secs("z"), 2.0);
    }

    #[test]
    fn busy_timer_tracks_cpu_work() {
        let t = BusyTimer::start();
        // Monotone and non-negative even with no work done.
        assert!(t.secs() >= 0.0);
        // Spin enough that the thread-CPU clock must advance.
        let mut acc = 0u64;
        while t.secs() < 1e-4 {
            acc = acc.wrapping_mul(6364136223846793005).wrapping_add(1);
            std::hint::black_box(acc);
        }
        let a = t.secs();
        let b = t.secs();
        assert!(a > 0.0);
        assert!(b >= a);
    }

    #[test]
    fn busy_time_excludes_sleep_on_linux() {
        // On Linux the busy clock must not advance (much) across a sleep;
        // on the wall-clock fallback it degenerates to wall time, so only
        // assert the Linux behaviour where we know the clock is real.
        if cfg!(target_os = "linux") {
            let t = BusyTimer::start();
            std::thread::sleep(Duration::from_millis(30));
            assert!(t.secs() < 0.025, "sleep counted as busy: {}", t.secs());
        }
    }

    #[test]
    fn empty_split_up() {
        let t = PhaseTimer::new();
        assert!(t.split_up().is_empty());
        assert_eq!(t.total_secs(), 0.0);
    }
}
