//! The thread-backed, out-of-core sharded executor.
//!
//! [`crate::MuDbscanD`] runs the partition → local μDBSCAN → merge
//! pipeline as BSP rank programs on a *simulated* cluster, charging a
//! virtual clock. This module runs the same shard programs on real OS
//! threads over a chunked [`DataSource`] that never needs to fit in
//! memory: a deterministic [`partition::ShardPlan`] cuts budget-sized
//! spatial cells, each worker thread claims shards off a shared queue,
//! materializes one shard at a time (owned points + ε-halo), clusters it
//! with the exact sequential μDBSCAN, and emits a compact summary; a
//! final sequential merge stitches the summaries into the global
//! clustering.
//!
//! ## Exactness: bit-identical to the in-memory oracle
//!
//! The merge is built so the output equals `naive_dbscan` *structurally*
//! — for any shard count, memory budget, or thread count:
//!
//! 1. **Core flags are exact.** A shard's ε-halo contains every remote
//!    point strictly within ε of its region, so an owned point's full
//!    ε-neighbourhood is present locally and its core flag is the true
//!    one.
//! 2. **The core partition is exact.** Every core–core ε-pair is either
//!    shard-internal (both points in one shard's combined view — the
//!    local run unions them) or cross-shard (the remote point is in the
//!    halo — the edge query collects it, and the merge unions it once
//!    the remote flag is confirmed core). Seeds union each local
//!    cluster's core members (own cores plus locally-core halo points,
//!    which are truly core because a shard can only *under*-mark halo
//!    cores).
//! 3. **Borders resolve canonically.** The reference attaches each
//!    non-core point to its minimum-id core ε-neighbour. Each shard
//!    records, per owned non-core point, the sorted global ids of all
//!    its ε-neighbours (complete, by halo completeness; short, since a
//!    non-core point has fewer than MinPts of them); the merge picks the
//!    first globally-core candidate. No shard-geometry-dependent
//!    tie-break survives into the output.
//!
//! `Clustering::from_union_find` then canonicalizes labels in point-id
//! order, which makes the whole clustering — labels, core flags, noise —
//! bit-identical to `naive_dbscan` for any shard geometry. The
//! conformance suite (`conformance/tests/sharded_equivalence.rs`) pins
//! this across dataset families × shard counts × budgets. Against the
//! single-heap μDBSCAN families the output is paper-exact (identical
//! cores, core partition and noise); a border point strictly within ε
//! of cores in *two* clusters may join the other one, because the
//! in-memory algorithm resolves that tie by processing order (a CMC
//! member is pre-assigned to its center's cluster without a query —
//! that is the wndq saving) while this executor always picks the
//! minimum-id core neighbour. DBSCAN itself leaves the choice
//! order-defined; `check_exact` accepts both.
//!
//! ## Timing: wall vs makespan
//!
//! Worker wall-clock on a loaded or single-core host is not a stable
//! CI observable (see `docs/BENCH_SCHEMA.md`). The executor therefore
//! reports, alongside real `wall_secs`, a **makespan**: sequential
//! planning wall + the *maximum per-worker thread-CPU busy time*
//! ([`metrics::BusyTimer`]) + sequential merge wall. On an idle
//! multi-core host the two coincide; on a single-core host the makespan
//! is what the wall-clock would be with real cores, which is what the
//! t1→t4 speedup gate measures.

use geom::{DataSource, Dataset, DbscanParams, PointId};
use metrics::{BusyTimer, Counters, Stopwatch};
use mudbscan::{Clustering, MuDbscan, NOISE};
use partition::{gather_shard, plan_shards, ShardPlan, ShardingOptions};
use rtree::{RTree, RTreeConfig};
use std::sync::atomic::{AtomicUsize, Ordering};
use unionfind::UnionFind;

/// Configuration of a sharded run.
#[derive(Debug, Clone, Copy)]
pub struct ShardedOptions {
    /// Minimum shard count (`None` → the worker thread count).
    pub shards: Option<usize>,
    /// Bound on resident shard coordinate bytes across in-flight
    /// workers; the planner cuts shards so one shard's owned
    /// coordinates fit `budget / (2 * threads)`, leaving the other half
    /// for halos and slack. `None` → shard sizes follow `shards` alone.
    pub memory_budget: Option<usize>,
    /// Worker threads clustering shards concurrently.
    pub threads: usize,
    /// Micro-cluster build options forwarded to each local μDBSCAN.
    pub build: mcs::BuildOptions,
}

impl Default for ShardedOptions {
    fn default() -> Self {
        Self { shards: None, memory_budget: None, threads: 1, build: mcs::BuildOptions::default() }
    }
}

/// Result of [`ShardedMuDbscan::run_source`].
#[derive(Debug)]
pub struct ShardedOutput {
    /// The global clustering, bit-identical to the in-memory oracle.
    pub clustering: Clustering,
    /// Aggregated operation counters over all shards (local stages plus
    /// halo/border merge queries).
    pub counters: Counters,
    /// Number of shards the plan cut.
    pub n_shards: usize,
    /// Worker threads used.
    pub threads: usize,
    /// Wall seconds spent planning (scan + sample splits + count passes).
    pub plan_wall_secs: f64,
    /// Wall seconds spent in the final sequential merge.
    pub merge_wall_secs: f64,
    /// Maximum per-worker thread-CPU busy seconds (gather + local
    /// clustering + edge/border queries).
    pub busy_max_secs: f64,
    /// Total thread-CPU busy seconds across workers.
    pub busy_total_secs: f64,
    /// `plan_wall + busy_max + merge_wall` — the multi-core-equivalent
    /// runtime the t1→t4 speedup gate compares (see module docs).
    pub makespan_secs: f64,
    /// Real end-to-end wall seconds (host- and load-dependent).
    pub wall_secs: f64,
    /// High-water mark of tracked resident shard bytes (combined
    /// own+halo coordinates + ids of all in-flight shards).
    pub peak_resident_bytes: usize,
    /// Total halo points materialized across shards.
    pub halo_points: u64,
    /// Cross-shard candidate edges collected.
    pub edges: u64,
}

/// One shard's compact contribution to the merge.
struct ShardSummary {
    shard: usize,
    /// (global id, exact core flag) for every owned point.
    own: Vec<(PointId, bool)>,
    /// Core member gids per local cluster (own cores + locally-core halo).
    groups: Vec<Vec<PointId>>,
    /// Owned non-core points with the sorted gids of all ε-neighbours.
    borders: Vec<(PointId, Vec<PointId>)>,
    /// (own core gid, halo gid) cross-shard candidate pairs.
    edges: Vec<(PointId, PointId)>,
    counters: Counters,
    halo_len: usize,
}

/// The out-of-core sharded μDBSCAN executor. Prefer the facade:
/// `mudbscan::prelude::Runner::new(params).shards(8).run_source(&store)`.
#[derive(Debug, Clone)]
pub struct ShardedMuDbscan {
    params: DbscanParams,
    opts: ShardedOptions,
}

impl ShardedMuDbscan {
    /// New executor with the given density parameters and options.
    pub fn new(params: DbscanParams, opts: ShardedOptions) -> Self {
        assert!(opts.threads >= 1, "threads must be at least 1");
        Self { params, opts }
    }

    /// Cluster every point of `src`.
    pub fn run_source(&self, src: &dyn DataSource) -> ShardedOutput {
        let run_span = obs::span!("sharded");
        let total_sw = Stopwatch::start();
        let n = src.len();
        let threads = self.opts.threads.max(1);

        // Plan: deterministic function of (source, eps, shards, budget).
        let plan_sw = Stopwatch::start();
        let min_shards = self.opts.shards.unwrap_or(threads).max(1);
        let max_shard_bytes =
            self.opts.memory_budget.map(|b| (b / (2 * threads)).max(1));
        let plan =
            plan_shards(src, self.params.eps, &ShardingOptions { min_shards, max_shard_bytes });
        let plan_wall_secs = plan_sw.secs();
        let n_shards = plan.n_shards();

        // Workers claim shards off a shared counter; each materializes,
        // clusters, and summarizes one shard at a time.
        let next = AtomicUsize::new(0);
        let resident = AtomicUsize::new(0);
        let peak = AtomicUsize::new(0);
        let workers = threads.min(n_shards).max(1);
        let params = self.params;
        let build = self.opts.build;
        let mut summaries: Vec<ShardSummary> = Vec::with_capacity(n_shards);
        let mut busy: Vec<f64> = Vec::with_capacity(workers);
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    let next = &next;
                    let resident = &resident;
                    let peak = &peak;
                    let plan = &plan;
                    scope.spawn(move || {
                        let timer = BusyTimer::start();
                        let mut out = Vec::new();
                        loop {
                            let s = next.fetch_add(1, Ordering::Relaxed);
                            if s >= n_shards {
                                break;
                            }
                            out.push(run_shard(src, plan, s, &params, &build, resident, peak));
                        }
                        (out, timer.secs())
                    })
                })
                .collect();
            for h in handles {
                let (mut out, secs) = h.join().expect("shard worker panicked");
                summaries.append(&mut out);
                busy.push(secs);
            }
        });
        summaries.sort_by_key(|s| s.shard);
        let busy_max_secs = busy.iter().copied().fold(0.0, f64::max);
        let busy_total_secs: f64 = busy.iter().sum();

        // Sequential merge: exact flags, core-partition unions, canonical
        // border resolution (module docs lay out why this reproduces the
        // oracle bit-for-bit).
        let merge_sw = Stopwatch::start();
        let counters = Counters::new();
        let mut is_core = vec![false; n];
        for sm in &summaries {
            for &(gid, core) in &sm.own {
                is_core[gid as usize] = core;
            }
        }
        let mut uf = UnionFind::new(n);
        let mut edges = 0u64;
        let mut halo_points = 0u64;
        for sm in &summaries {
            for group in &sm.groups {
                for w in group.windows(2) {
                    uf.union(w[0], w[1]);
                    counters.count_union();
                }
            }
            for &(x, y) in &sm.edges {
                debug_assert!(is_core[x as usize]);
                if is_core[y as usize] {
                    uf.union(x, y);
                    counters.count_union();
                }
            }
            for (b, cands) in &sm.borders {
                if let Some(&c) = cands.iter().find(|&&c| is_core[c as usize]) {
                    uf.union(c, *b);
                    counters.count_union();
                }
            }
            counters.absorb(&sm.counters);
            edges += sm.edges.len() as u64;
            halo_points += sm.halo_len as u64;
        }
        let clustering = Clustering::from_union_find(&mut uf, is_core);
        let merge_wall_secs = merge_sw.secs();

        let makespan_secs = plan_wall_secs + busy_max_secs + merge_wall_secs;
        let wall_secs = total_sw.secs();
        let peak_resident_bytes = peak.load(Ordering::Relaxed);
        if obs::enabled() {
            obs::record_count("shard/shards", n_shards as u64);
            obs::record_count("shard/halo_points", halo_points);
            obs::record_count("shard/edges", edges);
            obs::record_count("shard/peak_resident_bytes", peak_resident_bytes as u64);
            obs::record_value("shard/plan_secs", plan_wall_secs);
            obs::record_value("shard/merge_secs", merge_wall_secs);
            obs::record_value("shard/busy_max_secs", busy_max_secs);
            obs::record_value("shard/makespan_secs", makespan_secs);
            for &c in plan.counts() {
                obs::record_hist("shard/owned_points", c as u64);
            }
        }
        drop(run_span);

        ShardedOutput {
            clustering,
            counters,
            n_shards,
            threads,
            plan_wall_secs,
            merge_wall_secs,
            busy_max_secs,
            busy_total_secs,
            makespan_secs,
            wall_secs,
            peak_resident_bytes,
            halo_points,
            edges,
        }
    }
}

/// Materialize, cluster and summarize one shard.
fn run_shard(
    src: &dyn DataSource,
    plan: &ShardPlan,
    s: usize,
    params: &DbscanParams,
    build: &mcs::BuildOptions,
    resident: &AtomicUsize,
    peak: &AtomicUsize,
) -> ShardSummary {
    let shard_span = obs::span!("shard");
    let mut shard = gather_shard(src, plan, s);
    let own_n = shard.len();
    let halo_len = shard.halo_ids.len();
    let dim = plan.dim();

    // Fold the halo into one combined dataset (own points first) and
    // drop the separate copies, so tracked residency is what's actually
    // held: combined coordinates + the id vectors.
    let mut combined = std::mem::replace(&mut shard.data, Dataset::empty(dim));
    combined.extend_from(&shard.halo);
    shard.halo = Dataset::empty(dim);
    let bytes = combined.len() * dim * 8 + (own_n + halo_len) * 4;
    let now = resident.fetch_add(bytes, Ordering::Relaxed) + bytes;
    peak.fetch_max(now, Ordering::Relaxed);

    // Exact local clustering over the combined view.
    let out = MuDbscan::from_params(*params).with_options(*build).run(&combined);
    let labels = &out.clustering.labels;
    let own = (0..own_n).map(|i| (shard.ids[i], out.clustering.is_core[i])).collect();

    // Seeds: core members (gids) per local cluster — own cores plus
    // locally-core halo points (truly core: a shard only under-marks
    // halo cores). Grouped by local label.
    let mut group_of: std::collections::HashMap<u32, Vec<PointId>> =
        std::collections::HashMap::new();
    for i in 0..combined.len() {
        if !out.clustering.is_core[i] || labels[i] == NOISE {
            continue;
        }
        let gid = if i < own_n { shard.ids[i] } else { shard.halo_ids[i - own_n] };
        group_of.entry(labels[i]).or_default().push(gid);
    }
    let mut group_labels: Vec<u32> = group_of.keys().copied().collect();
    group_labels.sort_unstable();
    let groups: Vec<Vec<PointId>> =
        group_labels.into_iter().map(|l| group_of.remove(&l).unwrap()).collect();

    // One R-tree over the combined view answers both merge query kinds.
    let tree = RTree::bulk_load_points(
        dim,
        RTreeConfig::default(),
        (0..combined.len()).map(|i| (i as u32, combined.point(i as u32).to_vec())),
    );

    // Border candidates: every owned non-core point lists ALL its
    // ε-neighbours' global ids, sorted — the merge picks the minimum-id
    // globally-core one, reproducing the oracle's scan order.
    let mut borders = Vec::new();
    for i in 0..own_n {
        if out.clustering.is_core[i] {
            continue;
        }
        let q = combined.point(i as u32);
        let mut cands: Vec<PointId> = Vec::new();
        let cost = tree.search_sphere(q, params.eps, |x| {
            if x as usize != i {
                let gid = if (x as usize) < own_n {
                    shard.ids[x as usize]
                } else {
                    shard.halo_ids[x as usize - own_n]
                };
                cands.push(gid);
            }
        });
        out.counters.count_range_query();
        out.counters.count_dists(cost.mbr_tests);
        out.counters.count_node_visits(cost.nodes_visited.max(1));
        cands.sort_unstable();
        if obs::enabled() {
            obs::record_hist("shard/border_candidates", cands.len() as u64);
        }
        borders.push((shard.ids[i], cands));
    }

    // Cross-shard edges: each halo point against owned cores.
    let mut edges = Vec::new();
    for h in 0..halo_len {
        let q = combined.point((own_n + h) as u32);
        let hid = shard.halo_ids[h];
        let mut hits: Vec<u32> = Vec::new();
        let cost = tree.search_sphere(q, params.eps, |x| {
            if (x as usize) < own_n && out.clustering.is_core[x as usize] {
                hits.push(x);
            }
        });
        out.counters.count_range_query();
        out.counters.count_dists(cost.mbr_tests);
        out.counters.count_node_visits(cost.nodes_visited.max(1));
        if obs::enabled() {
            obs::record_hist("halo/node_visits", cost.nodes_visited.max(1));
        }
        for x in hits {
            edges.push((shard.ids[x as usize], hid));
        }
    }

    resident.fetch_sub(bytes, Ordering::Relaxed);
    drop(shard_span);
    ShardSummary {
        shard: s,
        own,
        groups,
        borders,
        edges,
        counters: out.counters,
        halo_len,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mudbscan::naive_dbscan;

    fn blob(n: usize, dim: usize, seed: u64) -> Dataset {
        let mut rows = Vec::new();
        let mut s = seed;
        let mut r = move || {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(29);
            ((s >> 33) as f64 / (1u64 << 31) as f64) - 1.0
        };
        for _ in 0..n {
            rows.push((0..dim).map(|_| 6.0 * r()).collect());
        }
        Dataset::from_rows(&rows)
    }

    fn run(d: &Dataset, params: DbscanParams, opts: ShardedOptions) -> ShardedOutput {
        ShardedMuDbscan::new(params, opts).run_source(d)
    }

    #[test]
    fn bit_identical_to_naive_across_shard_counts() {
        let d = blob(500, 3, 9);
        let params = DbscanParams::new(0.9, 5);
        let want = naive_dbscan(&d, &params);
        for shards in [1, 2, 4, 7] {
            let out = run(
                &d,
                params,
                ShardedOptions { shards: Some(shards), threads: 2, ..Default::default() },
            );
            assert_eq!(out.clustering, want, "shards={shards}");
            assert!(out.n_shards >= shards || out.n_shards >= 1);
            assert!(out.makespan_secs > 0.0);
        }
    }

    #[test]
    fn bit_identical_under_memory_budget() {
        let d = blob(800, 2, 4);
        let params = DbscanParams::new(0.7, 4);
        let want = naive_dbscan(&d, &params);
        // ~100 points per shard bound → many shards.
        let out = run(
            &d,
            params,
            ShardedOptions {
                memory_budget: Some(100 * 2 * 8 * 2 * 2),
                threads: 2,
                ..Default::default()
            },
        );
        assert!(out.n_shards > 2, "budget did not induce splitting: {}", out.n_shards);
        assert_eq!(out.clustering, want);
        assert!(out.peak_resident_bytes > 0);
    }

    #[test]
    fn thread_count_does_not_change_output() {
        let d = blob(600, 3, 17);
        let params = DbscanParams::new(0.8, 5);
        let a = run(&d, params, ShardedOptions { shards: Some(6), threads: 1, ..Default::default() });
        let b = run(&d, params, ShardedOptions { shards: Some(6), threads: 4, ..Default::default() });
        assert_eq!(a.clustering, b.clustering);
        assert_eq!(a.n_shards, b.n_shards);
        assert_eq!(a.edges, b.edges);
        assert_eq!(a.halo_points, b.halo_points);
    }

    #[test]
    fn min_pts_one_has_no_borders() {
        let d = blob(200, 2, 3);
        let params = DbscanParams::new(0.5, 1);
        let want = naive_dbscan(&d, &params);
        let out = run(&d, params, ShardedOptions { shards: Some(3), ..Default::default() });
        assert_eq!(out.clustering, want);
        assert_eq!(out.clustering.noise_count(), 0); // min_pts=1: everything core
    }

    #[test]
    fn empty_and_tiny_inputs() {
        let params = DbscanParams::new(0.5, 3);
        let empty = Dataset::empty(2);
        let out = run(&empty, params, ShardedOptions { shards: Some(4), ..Default::default() });
        assert_eq!(out.clustering.labels.len(), 0);
        let one = Dataset::from_rows(&[vec![1.0, 2.0]]);
        let out = run(&one, params, ShardedOptions { shards: Some(4), ..Default::default() });
        assert_eq!(out.clustering, naive_dbscan(&one, &params));
    }
}
