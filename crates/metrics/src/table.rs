//! Minimal aligned-column table renderer used by the `repro_*` harness
//! binaries to print paper-style tables to stdout.

use std::fmt::Write as _;

/// A simple text table: a header row plus data rows, rendered with columns
/// padded to the widest cell.
#[derive(Debug, Clone)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Start a table with the given column headers.
    pub fn new(header: &[&str]) -> Self {
        Self { header: header.iter().map(|s| s.to_string()).collect(), rows: Vec::new() }
    }

    /// Append a data row; must match the header width.
    pub fn row(&mut self, cells: &[String]) -> &mut Self {
        assert_eq!(cells.len(), self.header.len(), "row width mismatch");
        self.rows.push(cells.to_vec());
        self
    }

    /// Append a row of `&str` cells.
    pub fn row_str(&mut self, cells: &[&str]) -> &mut Self {
        let owned: Vec<String> = cells.iter().map(|s| s.to_string()).collect();
        self.row(&owned)
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when no data row was added.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Render with space-padded columns and a separator line.
    pub fn render(&self) -> String {
        let ncols = self.header.len();
        let mut width = vec![0usize; ncols];
        for (i, h) in self.header.iter().enumerate() {
            width[i] = h.chars().count();
        }
        for r in &self.rows {
            for (i, c) in r.iter().enumerate() {
                width[i] = width[i].max(c.chars().count());
            }
        }
        let mut out = String::new();
        let write_row = |out: &mut String, cells: &[String]| {
            for (i, c) in cells.iter().enumerate() {
                let pad = width[i] - c.chars().count();
                let _ = write!(out, "{}{}", c, " ".repeat(pad));
                if i + 1 < ncols {
                    out.push_str("  ");
                }
            }
            out.push('\n');
        };
        write_row(&mut out, &self.header);
        let total: usize = width.iter().sum::<usize>() + 2 * (ncols - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for r in &self.rows {
            write_row(&mut out, r);
        }
        out
    }

    /// Print the rendered table to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }
}

/// Format a float with `prec` decimals (harness convenience).
pub fn fmt_f(x: f64, prec: usize) -> String {
    format!("{:.*}", prec, x)
}

/// Format seconds adaptively (ms below 1 s).
pub fn fmt_secs(s: f64) -> String {
    if s < 1.0 {
        format!("{:.1} ms", s * 1e3)
    } else {
        format!("{:.2} s", s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_pads_columns() {
        let mut t = Table::new(&["name", "value"]);
        t.row_str(&["a", "1"]).row_str(&["longer", "22"]);
        let out = t.render();
        let lines: Vec<_> = out.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("name"));
        assert!(lines[1].chars().all(|c| c == '-'));
        assert!(lines[2].starts_with("a "));
        assert!(lines[3].starts_with("longer"));
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn row_width_checked() {
        Table::new(&["a", "b"]).row_str(&["only-one"]);
    }

    #[test]
    fn float_formatting() {
        assert_eq!(fmt_f(2.345, 2), "2.35");
        assert_eq!(fmt_secs(0.0123), "12.3 ms");
        assert_eq!(fmt_secs(12.3), "12.30 s");
    }
}
