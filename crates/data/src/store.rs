//! The chunked on-disk dataset store (`MUDS` format): column-major SoA
//! chunks behind a memory map, read through [`geom::DataSource`].
//!
//! Layout (all integers little-endian):
//!
//! ```text
//! offset  size  field
//! 0       4     magic "MUDS"
//! 4       4     format version (u32, currently 1)
//! 8       4     dim (u32, > 0)
//! 12      4     chunk_cap (u32, > 0; points per full chunk)
//! 16      8     n (u64, total points; must fit PointId = u32)
//! 24      8     n_chunks (u64, = ceil(n / chunk_cap))
//! 32      32    reserved, zero
//! 64      —     payload: n_chunks chunks of chunk_cap*dim f64 (LE)
//! ```
//!
//! Within chunk `c`, column `k` occupies the `chunk_cap` doubles at
//! payload offset `(c*dim + k) * chunk_cap` — the exact
//! [`geom::PointBlock`] stride layout, so a mapped chunk feeds
//! [`geom::kernels::dist_sq_batch`] with zero copies. Every chunk is
//! written at full stride (the last chunk's tail rows are zero padding),
//! which keeps chunk offsets a pure multiplication and makes the file
//! size a closed-form validation check.
//!
//! The 64-byte header keeps the payload 8-byte aligned in the mapping
//! (`mmap` returns page-aligned addresses), so the f64 reinterpretation
//! is alignment-safe. On non-unix or big-endian targets the store falls
//! back to a validating heap read of the same bytes.

use geom::{Cols, DataSource, Dataset, PointId, SourceChunk};
use std::fs::File;
use std::io::{self, BufWriter, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

const MAGIC: &[u8; 4] = b"MUDS";
/// Current format version written by [`StoreWriter`].
pub const STORE_VERSION: u32 = 1;
const HEADER_BYTES: u64 = 64;
const F64_BYTES: u64 = std::mem::size_of::<f64>() as u64;

/// Typed failure of the chunked store (creation, validation, mapping).
///
/// `Clone + PartialEq + Eq` so it can ride inside
/// `mudbscan::MuDbscanError` (which derives the same).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StoreError {
    /// An OS-level IO operation failed; `op` names it, `msg` is the
    /// stringified `io::Error`.
    Io {
        /// The failing operation ("open", "read", "write", "mmap", …).
        op: &'static str,
        /// Stringified OS error.
        msg: String,
    },
    /// The file does not start with the `MUDS` magic.
    BadMagic,
    /// The file's format version is not supported.
    BadVersion(u32),
    /// A header field is inconsistent (zero dim, bad chunk count,
    /// trailing bytes, …).
    BadHeader(String),
    /// The payload is shorter than the header promises — a torn write
    /// or truncated copy.
    Truncated {
        /// Total file size the header implies.
        expected_bytes: u64,
        /// Actual file size.
        actual_bytes: u64,
    },
    /// A pushed point's dimensionality does not match the store's.
    DimMismatch {
        /// The store's dimensionality.
        expected: usize,
        /// The offending point's length.
        got: usize,
    },
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::Io { op, msg } => write!(f, "store {op} failed: {msg}"),
            StoreError::BadMagic => write!(f, "not a MUDS store (bad magic)"),
            StoreError::BadVersion(v) => {
                write!(f, "unsupported MUDS version {v} (supported: {STORE_VERSION})")
            }
            StoreError::BadHeader(why) => write!(f, "corrupt MUDS header: {why}"),
            StoreError::Truncated { expected_bytes, actual_bytes } => write!(
                f,
                "truncated MUDS store: header implies {expected_bytes} bytes, file has {actual_bytes}"
            ),
            StoreError::DimMismatch { expected, got } => {
                write!(f, "point dimensionality {got} does not match store dim {expected}")
            }
        }
    }
}

impl std::error::Error for StoreError {}

fn io_err(op: &'static str) -> impl Fn(io::Error) -> StoreError {
    move |e| StoreError::Io { op, msg: e.to_string() }
}

/// Streaming writer for the `MUDS` format. Points are staged
/// column-major and flushed one full-stride chunk at a time; `finish`
/// seals the header. Dropping a writer without `finish` leaves a file
/// that [`ChunkedStore::open`] rejects (placeholder header).
pub struct StoreWriter {
    file: BufWriter<File>,
    dim: usize,
    chunk_cap: usize,
    n: u64,
    n_chunks: u64,
    /// Column-major staging buffer, `dim * chunk_cap` doubles.
    buf: Vec<f64>,
    buf_len: usize,
}

impl StoreWriter {
    /// Create (truncate) `path` and return a writer for `dim`-dimensional
    /// points with the given chunk capacity.
    pub fn create(path: &Path, dim: usize, chunk_cap: usize) -> Result<Self, StoreError> {
        if dim == 0 {
            return Err(StoreError::BadHeader("dim must be positive".into()));
        }
        if chunk_cap == 0 {
            return Err(StoreError::BadHeader("chunk_cap must be positive".into()));
        }
        let mut file = BufWriter::new(File::create(path).map_err(io_err("create"))?);
        // Placeholder header: all zeros (bad magic), replaced by finish().
        file.write_all(&[0u8; HEADER_BYTES as usize]).map_err(io_err("write"))?;
        Ok(Self {
            file,
            dim,
            chunk_cap,
            n: 0,
            n_chunks: 0,
            buf: vec![0.0; dim * chunk_cap],
            buf_len: 0,
        })
    }

    /// Point dimensionality of the store being written.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Points written so far.
    pub fn len(&self) -> u64 {
        self.n
    }

    /// True when no point has been pushed yet.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    fn flush_chunk(&mut self) -> Result<(), StoreError> {
        for &x in &self.buf {
            self.file.write_all(&x.to_le_bytes()).map_err(io_err("write"))?;
        }
        self.buf.iter_mut().for_each(|x| *x = 0.0); // deterministic padding
        self.buf_len = 0;
        self.n_chunks += 1;
        Ok(())
    }

    /// Append one point.
    pub fn push(&mut self, p: &[f64]) -> Result<(), StoreError> {
        if p.len() != self.dim {
            return Err(StoreError::DimMismatch { expected: self.dim, got: p.len() });
        }
        for (k, &x) in p.iter().enumerate() {
            self.buf[k * self.chunk_cap + self.buf_len] = x;
        }
        self.buf_len += 1;
        self.n += 1;
        if self.buf_len == self.chunk_cap {
            self.flush_chunk()?;
        }
        Ok(())
    }

    /// Append every point of `data` in id order.
    pub fn push_dataset(&mut self, data: &Dataset) -> Result<(), StoreError> {
        for (_, p) in data.iter() {
            self.push(p)?;
        }
        Ok(())
    }

    /// Flush the trailing partial chunk, seal the header, and sync the
    /// file to disk.
    pub fn finish(mut self) -> Result<(), StoreError> {
        if self.buf_len > 0 {
            self.flush_chunk()?;
        }
        if self.n > u32::MAX as u64 {
            return Err(StoreError::BadHeader(format!(
                "{} points exceed the u32 PointId space",
                self.n
            )));
        }
        let mut header = [0u8; HEADER_BYTES as usize];
        header[0..4].copy_from_slice(MAGIC);
        header[4..8].copy_from_slice(&STORE_VERSION.to_le_bytes());
        header[8..12].copy_from_slice(&(self.dim as u32).to_le_bytes());
        header[12..16].copy_from_slice(&(self.chunk_cap as u32).to_le_bytes());
        header[16..24].copy_from_slice(&self.n.to_le_bytes());
        header[24..32].copy_from_slice(&self.n_chunks.to_le_bytes());
        self.file.flush().map_err(io_err("write"))?;
        let f = self.file.get_mut();
        f.seek(SeekFrom::Start(0)).map_err(io_err("seek"))?;
        f.write_all(&header).map_err(io_err("write"))?;
        f.sync_all().map_err(io_err("sync"))?;
        Ok(())
    }
}

/// Write `data` to `path` as a `MUDS` store with the given chunk
/// capacity (use [`geom::DEFAULT_CHUNK_CAP`] when unsure).
pub fn write_store(data: &Dataset, path: &Path, chunk_cap: usize) -> Result<(), StoreError> {
    let mut w = StoreWriter::create(path, data.dim(), chunk_cap)?;
    w.push_dataset(data)?;
    w.finish()
}

#[cfg(all(unix, target_endian = "little"))]
mod mapping {
    //! Read-only `mmap` of a file via raw syscalls (std links libc on
    //! unix, so the extern declarations resolve without a new crate).
    use std::fs::File;
    use std::io;
    use std::os::unix::io::AsRawFd;

    extern "C" {
        fn mmap(
            addr: *mut core::ffi::c_void,
            len: usize,
            prot: i32,
            flags: i32,
            fd: i32,
            offset: i64,
        ) -> *mut core::ffi::c_void;
        fn munmap(addr: *mut core::ffi::c_void, len: usize) -> i32;
    }

    const PROT_READ: i32 = 1;
    const MAP_PRIVATE: i32 = 2;

    pub struct Mmap {
        ptr: *const u8,
        len: usize,
    }

    // Read-only mapping of an immutable file: safe to share.
    unsafe impl Send for Mmap {}
    unsafe impl Sync for Mmap {}

    impl Mmap {
        pub fn map(file: &File, len: usize) -> io::Result<Self> {
            if len == 0 {
                return Ok(Self { ptr: std::ptr::NonNull::<u8>::dangling().as_ptr(), len: 0 });
            }
            let ptr = unsafe {
                mmap(std::ptr::null_mut(), len, PROT_READ, MAP_PRIVATE, file.as_raw_fd(), 0)
            };
            if ptr as isize == -1 {
                return Err(io::Error::last_os_error());
            }
            Ok(Self { ptr: ptr as *const u8, len })
        }

        pub fn bytes(&self) -> &[u8] {
            unsafe { std::slice::from_raw_parts(self.ptr, self.len) }
        }
    }

    impl Drop for Mmap {
        fn drop(&mut self) {
            if self.len > 0 {
                unsafe { munmap(self.ptr as *mut core::ffi::c_void, self.len) };
            }
        }
    }
}

enum Backing {
    /// Payload doubles borrowed from a live memory map.
    #[cfg(all(unix, target_endian = "little"))]
    Mapped(mapping::Mmap),
    /// Payload doubles decoded onto the heap (fallback targets, or a
    /// mapping whose alignment could not be proven).
    Heap(Box<[f64]>),
}

/// A validated, opened `MUDS` store. Implements [`DataSource`], handing
/// out chunk columns **borrowed straight from the mapping** — opening a
/// store costs one header read plus an `mmap`, independent of `n`.
pub struct ChunkedStore {
    path: PathBuf,
    dim: usize,
    chunk_cap: usize,
    n: usize,
    n_chunks: usize,
    backing: Backing,
}

impl ChunkedStore {
    /// Open and validate `path`. Every header field is cross-checked
    /// against the file size before any point is touched, so a torn or
    /// corrupt store fails here with a typed [`StoreError`] instead of
    /// panicking mid-run.
    pub fn open(path: &Path) -> Result<Self, StoreError> {
        let mut file = File::open(path).map_err(io_err("open"))?;
        let file_len = file.metadata().map_err(io_err("stat"))?.len();
        if file_len < HEADER_BYTES {
            return Err(StoreError::Truncated {
                expected_bytes: HEADER_BYTES,
                actual_bytes: file_len,
            });
        }
        let mut header = [0u8; HEADER_BYTES as usize];
        file.read_exact(&mut header).map_err(io_err("read"))?;
        if &header[0..4] != MAGIC {
            return Err(StoreError::BadMagic);
        }
        let version = u32::from_le_bytes(header[4..8].try_into().unwrap());
        if version != STORE_VERSION {
            return Err(StoreError::BadVersion(version));
        }
        let dim = u32::from_le_bytes(header[8..12].try_into().unwrap()) as usize;
        let chunk_cap = u32::from_le_bytes(header[12..16].try_into().unwrap()) as usize;
        let n = u64::from_le_bytes(header[16..24].try_into().unwrap());
        let n_chunks = u64::from_le_bytes(header[24..32].try_into().unwrap());
        if dim == 0 {
            return Err(StoreError::BadHeader("zero dimension".into()));
        }
        if chunk_cap == 0 {
            return Err(StoreError::BadHeader("zero chunk capacity".into()));
        }
        if n > u32::MAX as u64 {
            return Err(StoreError::BadHeader(format!(
                "{n} points exceed the u32 PointId space"
            )));
        }
        let want_chunks = n.div_ceil(chunk_cap as u64);
        if n_chunks != want_chunks {
            return Err(StoreError::BadHeader(format!(
                "chunk count {n_chunks} inconsistent with n={n}, chunk_cap={chunk_cap} (want {want_chunks})"
            )));
        }
        if header[32..64].iter().any(|&b| b != 0) {
            return Err(StoreError::BadHeader("reserved header bytes not zero".into()));
        }
        let payload_f64s = n_chunks
            .checked_mul(chunk_cap as u64)
            .and_then(|c| c.checked_mul(dim as u64))
            .ok_or_else(|| StoreError::BadHeader("payload size overflows".into()))?;
        let expected_bytes = HEADER_BYTES + payload_f64s * F64_BYTES;
        if file_len < expected_bytes {
            return Err(StoreError::Truncated { expected_bytes, actual_bytes: file_len });
        }
        if file_len > expected_bytes {
            return Err(StoreError::BadHeader(format!(
                "{} trailing bytes past the payload",
                file_len - expected_bytes
            )));
        }
        let backing = Self::back(&mut file, expected_bytes, payload_f64s as usize)?;
        Ok(Self {
            path: path.to_path_buf(),
            dim,
            chunk_cap,
            n: n as usize,
            n_chunks: n_chunks as usize,
            backing,
        })
    }

    #[cfg(all(unix, target_endian = "little"))]
    fn back(file: &mut File, file_len: u64, payload_f64s: usize) -> Result<Backing, StoreError> {
        match mapping::Mmap::map(file, file_len as usize) {
            Ok(m) => {
                let data = &m.bytes()[HEADER_BYTES as usize..];
                // Page-aligned base + 64-byte header keeps f64 alignment;
                // fall back to a heap read rather than assume it.
                if data.as_ptr() as usize % std::mem::align_of::<f64>() == 0 {
                    Ok(Backing::Mapped(m))
                } else {
                    Self::heap_back(file, payload_f64s)
                }
            }
            Err(_) => Self::heap_back(file, payload_f64s),
        }
    }

    #[cfg(not(all(unix, target_endian = "little")))]
    fn back(file: &mut File, _file_len: u64, payload_f64s: usize) -> Result<Backing, StoreError> {
        Self::heap_back(file, payload_f64s)
    }

    fn heap_back(file: &mut File, payload_f64s: usize) -> Result<Backing, StoreError> {
        file.seek(SeekFrom::Start(HEADER_BYTES)).map_err(io_err("seek"))?;
        let mut r = io::BufReader::new(file);
        let mut floats = Vec::with_capacity(payload_f64s);
        let mut b8 = [0u8; 8];
        for _ in 0..payload_f64s {
            r.read_exact(&mut b8).map_err(io_err("read"))?;
            floats.push(f64::from_le_bytes(b8));
        }
        Ok(Backing::Heap(floats.into_boxed_slice()))
    }

    /// All payload doubles (every chunk at full stride, concatenated).
    fn floats(&self) -> &[f64] {
        match &self.backing {
            #[cfg(all(unix, target_endian = "little"))]
            Backing::Mapped(m) => {
                let data = &m.bytes()[HEADER_BYTES as usize..];
                // Alignment was checked at open time.
                unsafe {
                    std::slice::from_raw_parts(data.as_ptr() as *const f64, data.len() / 8)
                }
            }
            Backing::Heap(h) => h,
        }
    }

    /// The path this store was opened from.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// True when the payload is served by a live memory map (as opposed
    /// to the heap-decoded fallback).
    pub fn is_mapped(&self) -> bool {
        match &self.backing {
            #[cfg(all(unix, target_endian = "little"))]
            Backing::Mapped(_) => true,
            Backing::Heap(_) => false,
        }
    }

    /// File bytes the store occupies on disk.
    pub fn file_bytes(&self) -> u64 {
        HEADER_BYTES + (self.n_chunks as u64) * (self.chunk_cap as u64) * (self.dim as u64) * F64_BYTES
    }
}

impl DataSource for ChunkedStore {
    fn dim(&self) -> usize {
        self.dim
    }

    fn len(&self) -> usize {
        self.n
    }

    fn chunk_cap(&self) -> usize {
        self.chunk_cap
    }

    fn n_chunks(&self) -> usize {
        self.n_chunks
    }

    fn chunk(&self, c: usize) -> SourceChunk<'_> {
        assert!(c < self.n_chunks, "chunk index out of range");
        let base = c * self.chunk_cap;
        let len = self.chunk_cap.min(self.n - base);
        let per_chunk = self.chunk_cap * self.dim;
        let cols = &self.floats()[c * per_chunk..(c + 1) * per_chunk];
        SourceChunk {
            base: base as PointId,
            len,
            dim: self.dim,
            stride: self.chunk_cap,
            cols: Cols::Borrowed(cols),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::gaussian_mixture;
    use geom::gather_dense;

    fn tmp(name: &str) -> PathBuf {
        std::env::temp_dir().join(format!("mudbscan_store_{name}_{}", std::process::id()))
    }

    #[test]
    fn round_trip_matches_dataset() {
        let d = gaussian_mixture(1000, 3, 4, 2.0, 0.3, 11);
        let path = tmp("roundtrip");
        write_store(&d, &path, 128).unwrap();
        let s = ChunkedStore::open(&path).unwrap();
        assert_eq!(DataSource::len(&s), d.len());
        assert_eq!(DataSource::dim(&s), 3);
        assert_eq!(s.n_chunks(), 1000usize.div_ceil(128));
        let back = gather_dense(&s);
        assert_eq!(back, d);
        #[cfg(all(unix, target_endian = "little"))]
        assert!(s.is_mapped());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn chunk_columns_are_zero_copy_kernel_ready() {
        let d = gaussian_mixture(300, 2, 2, 1.0, 0.2, 7);
        let path = tmp("kernel");
        write_store(&d, &path, 64).unwrap();
        let s = ChunkedStore::open(&path).unwrap();
        let q = [0.5, -0.5];
        for c in 0..s.n_chunks() {
            let ch = s.chunk(c);
            let mut out = vec![0.0; ch.len];
            ch.dist_sq_batch(&q, &mut out);
            for i in 0..ch.len {
                let want = geom::dist_sq(d.point(ch.base + i as u32), &q);
                assert_eq!(out[i].to_bits(), want.to_bits());
            }
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn truncated_chunk_is_rejected() {
        let d = gaussian_mixture(200, 3, 2, 1.0, 0.2, 3);
        let path = tmp("trunc");
        write_store(&d, &path, 64).unwrap();
        let full = std::fs::metadata(&path).unwrap().len();
        let f = std::fs::OpenOptions::new().write(true).open(&path).unwrap();
        f.set_len(full - 100).unwrap(); // tear the last chunk
        drop(f);
        match ChunkedStore::open(&path).err() {
            Some(StoreError::Truncated { expected_bytes, actual_bytes }) => {
                assert_eq!(expected_bytes, full);
                assert_eq!(actual_bytes, full - 100);
            }
            other => panic!("expected Truncated, got {other:?}"),
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn dim_mismatch_is_rejected() {
        let path = tmp("dim");
        let mut w = StoreWriter::create(&path, 3, 16).unwrap();
        w.push(&[1.0, 2.0, 3.0]).unwrap();
        assert_eq!(
            w.push(&[1.0, 2.0]),
            Err(StoreError::DimMismatch { expected: 3, got: 2 })
        );
        drop(w);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn unreadable_and_corrupt_files_are_rejected() {
        // Missing file → Io.
        match ChunkedStore::open(Path::new("/nonexistent/mudbscan.muds")).err() {
            Some(StoreError::Io { op, .. }) => assert_eq!(op, "open"),
            other => panic!("expected Io, got {other:?}"),
        }
        // Wrong magic → BadMagic.
        let path = tmp("magic");
        std::fs::write(&path, [b'X'; 64]).unwrap();
        assert!(matches!(ChunkedStore::open(&path), Err(StoreError::BadMagic)));
        // Unfinished writer leaves a zeroed header → BadMagic too.
        let unfinished = tmp("unfinished");
        let mut w = StoreWriter::create(&unfinished, 2, 8).unwrap();
        w.push(&[0.0, 0.0]).unwrap();
        drop(w); // no finish()
        assert!(matches!(ChunkedStore::open(&unfinished), Err(StoreError::BadMagic)));
        // Bad version.
        let vpath = tmp("version");
        let mut hdr = [0u8; 64];
        hdr[0..4].copy_from_slice(b"MUDS");
        hdr[4..8].copy_from_slice(&99u32.to_le_bytes());
        std::fs::write(&vpath, hdr).unwrap();
        assert!(matches!(ChunkedStore::open(&vpath), Err(StoreError::BadVersion(99))));
        for p in [path, unfinished, vpath] {
            std::fs::remove_file(&p).ok();
        }
    }

    #[test]
    fn header_inconsistencies_are_rejected() {
        let d = gaussian_mixture(50, 2, 1, 1.0, 0.2, 5);
        let path = tmp("hdr");
        write_store(&d, &path, 16).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        // Corrupt the chunk count.
        bytes[24..32].copy_from_slice(&7u64.to_le_bytes());
        std::fs::write(&path, &bytes).unwrap();
        assert!(matches!(ChunkedStore::open(&path), Err(StoreError::BadHeader(_))));
        // Trailing garbage past the payload.
        write_store(&d, &path, 16).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        bytes.extend_from_slice(&[0u8; 9]);
        std::fs::write(&path, &bytes).unwrap();
        assert!(matches!(ChunkedStore::open(&path), Err(StoreError::BadHeader(_))));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn empty_store_round_trips() {
        let path = tmp("empty");
        StoreWriter::create(&path, 4, 32).unwrap().finish().unwrap();
        let s = ChunkedStore::open(&path).unwrap();
        assert!(DataSource::is_empty(&s));
        assert_eq!(s.n_chunks(), 0);
        assert!(gather_dense(&s).is_empty());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn display_messages_name_the_failure() {
        let e = StoreError::Truncated { expected_bytes: 100, actual_bytes: 50 };
        assert!(e.to_string().contains("truncated"));
        assert!(StoreError::BadMagic.to_string().contains("magic"));
        assert!(StoreError::DimMismatch { expected: 3, got: 2 }.to_string().contains("3"));
    }
}
