//! RP-DBSCAN-style ρ-approximate distributed DBSCAN (Song & Lee,
//! SIGMOD'18).
//!
//! RP-DBSCAN's pitch: skip spatial partitioning entirely — partition
//! *randomly* (free), summarise the space in a **two-level cell
//! dictionary** that every rank receives, and cluster with ρ-approximate
//! neighbour counting on the dictionary. The price is approximation: with
//! ρ < 1 some neighbour sets are under/over-counted, so cluster counts
//! can deviate from exact DBSCAN (the behaviour the μDBSCAN paper points
//! out for approximate competitors). Our port keeps that character:
//!
//! * cells of side ε/√d; per-rank sub-dictionaries (count + centroid per
//!   cell) are allgathered into the global dictionary;
//! * a point's approximate neighbour count sums (a) exact distances to
//!   points in its own rank's shard, unavailable cross-rank, replaced by
//!   (b) whole-cell counts for dictionary cells entirely inside the ε-
//!   ball, and (c) cells partially overlapping the ball counted when
//!   their centroid is within ρ·ε;
//! * core cells (holding ≥1 approximate core point) are unioned when
//!   their centroids are within ε; points label by their cell.
//!
//! The output is intentionally **approximate** — tests assert structural
//! sanity (blobs found, deviation bounded), not exactness.

use cluster_sim::{Bsp, CommModel, ExecMode};
use geom::{dist_sq, Dataset, DbscanParams, Mbr, PointId};
use metrics::{Counters, PhaseTimer};
use mudbscan::{Clustering, NOISE};
use rtree::{RTree, RTreeConfig};
use unionfind::UnionFind;

/// The ρ-approximate random-partitioning algorithm.
#[derive(Debug, Clone)]
pub struct RpDbscan {
    params: DbscanParams,
    ranks: usize,
    /// Approximation parameter ρ ∈ (0, 1]; the paper's authors suggest
    /// 0.99 (used in the μDBSCAN comparison too).
    pub rho: f64,
    mode: ExecMode,
    comm: CommModel,
}

/// Output of an RP-DBSCAN run.
#[derive(Debug)]
pub struct RpOutput {
    /// The (approximate) clustering.
    pub clustering: Clustering,
    /// Virtual-time phase split-up.
    pub phases: PhaseTimer,
    /// Bytes communicated (dictionary allgather).
    pub comm_bytes: u64,
    /// Aggregated counters.
    pub counters: Counters,
}

#[derive(Clone)]
struct CellStat {
    key: Vec<i32>,
    count: u32,
    centroid: Vec<f64>,
}

struct RpRank {
    ids: Vec<PointId>,
    data: Dataset,
    dict: Vec<CellStat>,
    core: Vec<bool>,
    cell_of: Vec<usize>, // index into the *global* dictionary, filled later
}

impl RpDbscan {
    /// New instance with ρ = 0.99 over `ranks` simulated ranks.
    pub fn new(params: DbscanParams, ranks: usize) -> Self {
        Self { params, ranks, rho: 0.99, mode: ExecMode::Sequential, comm: CommModel::default() }
    }

    /// Run on `data`.
    pub fn run(&self, data: &Dataset) -> RpOutput {
        let dim = data.dim();
        let eps = self.params.eps;
        let side = eps / (dim as f64).sqrt();
        let p = self.ranks;

        // Random (hash-based, seeded) partitioning — RP-DBSCAN's "free"
        // distribution step.
        let mut per_rank_ids: Vec<Vec<PointId>> = vec![Vec::new(); p];
        for id in data.ids() {
            let h = (id as u64).wrapping_mul(0x9E3779B97F4A7C15) >> 33;
            per_rank_ids[(h % p as u64) as usize].push(id);
        }
        let states: Vec<RpRank> = per_rank_ids
            .into_iter()
            .map(|ids| RpRank {
                data: data.gather(&ids),
                ids,
                dict: Vec::new(),
                core: Vec::new(),
                cell_of: Vec::new(),
            })
            .collect();
        let mut bsp = Bsp::new(states).with_mode(self.mode).with_comm(self.comm);

        // Phase 1: per-rank sub-dictionaries.
        bsp.phase("cell_dictionary");
        bsp.run(|_r, s: &mut RpRank| {
            let dim = s.data.dim();
            let mut map: std::collections::HashMap<Vec<i32>, (u32, Vec<f64>)> =
                std::collections::HashMap::new();
            for (_, coords) in s.data.iter() {
                let key: Vec<i32> = coords.iter().map(|&x| (x / side).floor() as i32).collect();
                let e = map.entry(key).or_insert_with(|| (0, vec![0.0; dim]));
                e.0 += 1;
                for (a, b) in e.1.iter_mut().zip(coords) {
                    *a += b;
                }
            }
            s.dict = map
                .into_iter()
                .map(|(key, (count, sum))| CellStat {
                    key,
                    count,
                    centroid: sum.iter().map(|x| x / count as f64).collect(),
                })
                .collect();
            s.dict.sort_by(|a, b| a.key.cmp(&b.key));
        });

        // Allgather the dictionary (count + centroid per cell).
        let gathered = bsp.allgather(|_r, s: &mut RpRank| {
            s.dict
                .iter()
                .flat_map(|c| {
                    let mut v: Vec<f64> = c.key.iter().map(|&k| k as f64).collect();
                    v.push(c.count as f64);
                    v.extend_from_slice(&c.centroid);
                    v
                })
                .collect::<Vec<f64>>()
        });
        // Merge into the global dictionary (orchestrator — every rank
        // would hold an identical copy).
        let rec = 2 * dim + 1;
        let mut global: std::collections::HashMap<Vec<i32>, (u32, Vec<f64>)> =
            std::collections::HashMap::new();
        for flat in &gathered {
            for chunk in flat.chunks_exact(rec) {
                let key: Vec<i32> = chunk[..dim].iter().map(|&x| x as i32).collect();
                let count = chunk[dim] as u32;
                let centroid = &chunk[dim + 1..];
                let e = global.entry(key).or_insert_with(|| (0, vec![0.0; dim]));
                for (a, b) in e.1.iter_mut().zip(centroid) {
                    *a += b * count as f64;
                }
                e.0 += count;
            }
        }
        let mut dict: Vec<CellStat> = global
            .into_iter()
            .map(|(key, (count, wsum))| CellStat {
                key,
                count,
                centroid: wsum.iter().map(|x| x / count as f64).collect(),
            })
            .collect();
        dict.sort_by(|a, b| a.key.cmp(&b.key));

        // Spatial index over cell centroids for range lookups.
        let cell_tree = RTree::bulk_load_points(
            dim,
            RTreeConfig::default(),
            dict.iter().enumerate().map(|(i, c)| (i as u32, c.centroid.clone())),
        );
        let cell_box = |c: &CellStat| -> Mbr {
            let lo: Vec<f64> = c.key.iter().map(|&k| k as f64 * side).collect();
            let hi: Vec<f64> = lo.iter().map(|x| x + side).collect();
            Mbr::new(lo, hi)
        };
        let cell_diag = side * (dim as f64).sqrt();

        // Phase 2: ρ-approximate core marking per rank.
        bsp.phase("core_marking");
        let rho_eps_sq = (self.rho * eps) * (self.rho * eps);
        let eps_sq = eps * eps;
        {
            let dict = &dict;
            let cell_tree = &cell_tree;
            bsp.run(move |_r, s: &mut RpRank| {
                s.core = vec![false; s.ids.len()];
                s.cell_of = vec![usize::MAX; s.ids.len()];
                for (i, coords) in s.data.iter() {
                    // Locate own cell.
                    let key: Vec<i32> = coords.iter().map(|&x| (x / side).floor() as i32).collect();
                    let ci = dict.binary_search_by(|c| c.key.cmp(&key)).expect("own cell");
                    s.cell_of[i as usize] = ci;
                    // Candidate cells: centroid within eps + diag.
                    let mut approx = 0u64;
                    cell_tree.search_sphere(coords, eps + cell_diag, |cid| {
                        let c = &dict[cid as usize];
                        let b = cell_box(c);
                        // Fully-inside cells count wholly; partial cells
                        // count when their centroid is within rho*eps.
                        let far = dist_sq(coords, b.lo()).max(dist_sq(coords, b.hi()));
                        if far < eps_sq || dist_sq(coords, &c.centroid) < rho_eps_sq {
                            approx += c.count as u64;
                        }
                    });
                    if approx >= self.params.min_pts as u64 {
                        s.core[i as usize] = true;
                    }
                }
            });
        }

        // Gather per-cell core flags.
        let core_cells_per_rank = bsp.allgather(|_r, s: &mut RpRank| {
            let mut v: Vec<u32> = s
                .cell_of
                .iter()
                .zip(&s.core)
                .filter(|(_, &c)| c)
                .map(|(&ci, _)| ci as u32)
                .collect();
            v.sort_unstable();
            v.dedup();
            v
        });
        let mut cell_is_core = vec![false; dict.len()];
        for v in &core_cells_per_rank {
            for &ci in v {
                cell_is_core[ci as usize] = true;
            }
        }

        // Phase 3: cell-graph clustering — union core cells with
        // centroids within ε.
        bsp.phase("cell_graph_merge");
        let mut cell_uf = UnionFind::new(dict.len());
        let counters = Counters::new();
        for (ci, c) in dict.iter().enumerate() {
            if !cell_is_core[ci] {
                continue;
            }
            cell_tree.search_sphere(&c.centroid, eps, |other| {
                if cell_is_core[other as usize] && other as usize != ci {
                    cell_uf.union(ci as u32, other);
                    counters.count_union();
                }
            });
        }

        // Labels: core-cell points get their cell's cluster; points in
        // non-core cells attach to the nearest core cell centroid within
        // ε, else noise.
        let mut cluster_of_root: std::collections::HashMap<u32, u32> =
            std::collections::HashMap::new();
        let mut next = 0u32;
        let mut labels = vec![NOISE; data.len()];
        let mut is_core_global = vec![false; data.len()];
        for s in bsp.states() {
            for (i, &gid) in s.ids.iter().enumerate() {
                let ci = s.cell_of[i];
                is_core_global[gid as usize] = s.core[i];
                let target_cell = if cell_is_core[ci] {
                    Some(ci)
                } else {
                    // Nearest core cell centroid strictly within eps.
                    let coords = s.data.point(i as u32);
                    let mut best: Option<(f64, usize)> = None;
                    cell_tree.search_sphere(coords, eps, |other| {
                        if cell_is_core[other as usize] {
                            let d = dist_sq(coords, &dict[other as usize].centroid);
                            if best.is_none_or(|(bd, _)| d < bd) {
                                best = Some((d, other as usize));
                            }
                        }
                    });
                    best.map(|(_, c)| c)
                };
                if let Some(tc) = target_cell {
                    let root = cell_uf.find(tc as u32);
                    let label = *cluster_of_root.entry(root).or_insert_with(|| {
                        let l = next;
                        next += 1;
                        l
                    });
                    labels[gid as usize] = label;
                }
            }
        }

        let clustering = Clustering { labels, is_core: is_core_global, n_clusters: next as usize };
        RpOutput {
            clustering,
            phases: bsp.phase_times().clone(),
            comm_bytes: bsp.comm_bytes(),
            counters,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mudbscan::naive_dbscan;

    fn blob_data() -> Dataset {
        let mut rows = Vec::new();
        let mut s = 13u64;
        let mut r = move || {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(29);
            ((s >> 33) as f64 / (1u64 << 31) as f64) - 1.0
        };
        for (cx, cy) in [(0.0, 0.0), (20.0, 20.0)] {
            for _ in 0..80 {
                rows.push(vec![cx + 1.0 * r(), cy + 1.0 * r()]);
            }
        }
        Dataset::from_rows(&rows)
    }

    #[test]
    fn finds_well_separated_blobs() {
        let data = blob_data();
        let params = DbscanParams::new(0.8, 5);
        let out = RpDbscan::new(params, 4).run(&data);
        // Approximate, but two far-apart dense blobs must not be merged
        // and must both be found.
        assert_eq!(out.clustering.n_clusters, 2, "blobs misdetected");
        // Points of one blob share a label.
        let l0 = out.clustering.labels[0];
        assert!(out.clustering.labels[..80].iter().filter(|&&l| l == l0).count() >= 80 * 9 / 10);
    }

    #[test]
    fn deviation_from_exact_is_bounded() {
        let data = blob_data();
        let params = DbscanParams::new(0.8, 5);
        let exact = naive_dbscan(&data, &params);
        let approx = RpDbscan::new(params, 4).run(&data);
        let diff = (approx.clustering.core_count() as i64 - exact.core_count() as i64).abs();
        assert!(
            (diff as f64) < 0.25 * data.len() as f64,
            "approximate core count wildly off: {diff}"
        );
    }

    #[test]
    fn deterministic_across_rank_counts_structure() {
        let data = blob_data();
        let params = DbscanParams::new(0.8, 5);
        let a = RpDbscan::new(params, 2).run(&data);
        let b = RpDbscan::new(params, 8).run(&data);
        // The dictionary is global, so the cell graph (and cluster count)
        // must not depend on the partitioning.
        assert_eq!(a.clustering.n_clusters, b.clustering.n_clusters);
        assert!(a.comm_bytes > 0 && b.comm_bytes > 0);
    }
}
