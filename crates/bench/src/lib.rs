#![warn(missing_docs)]

//! Shared helpers for the `repro_*` harness binaries.
//!
//! Every binary regenerates one table or figure of the paper on the
//! scaled synthetic analogues, printing our measured values next to the
//! paper's reported ones. Absolute numbers differ (single host vs a
//! 32-node cluster, synthetic vs proprietary data); the quantities that
//! must match are the *shapes*: who wins, by what rough factor, where
//! the crossovers and failures are. See EXPERIMENTS.md for the recorded
//! outcomes.

pub mod diff;

use std::time::Instant;

/// Time a closure, returning `(result, seconds)`.
pub fn timed<T>(f: impl FnOnce() -> T) -> (T, f64) {
    let t = Instant::now();
    let out = f();
    (out, t.elapsed().as_secs_f64())
}

/// Standard banner for a harness binary.
pub fn banner(exp: &str, paper_desc: &str, scale_note: &str) {
    println!("================================================================");
    println!("μDBSCAN reproduction — {exp}");
    println!("paper: {paper_desc}");
    println!("scale: {scale_note}");
    println!("================================================================\n");
}

/// Format seconds compactly.
pub fn secs(s: f64) -> String {
    if s < 0.001 {
        format!("{:.0} µs", s * 1e6)
    } else if s < 1.0 {
        format!("{:.1} ms", s * 1e3)
    } else {
        format!("{s:.2} s")
    }
}

/// Format a ratio as `x.xx×`.
pub fn times(x: f64) -> String {
    format!("{x:.2}x")
}

/// The deterministic seed all harnesses use.
pub const SEED: u64 = 2019;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn formatting() {
        assert_eq!(secs(0.0000006), "1 µs");
        assert_eq!(secs(0.5), "500.0 ms");
        assert_eq!(secs(12.345), "12.35 s");
        assert_eq!(times(2.5), "2.50x");
    }

    #[test]
    fn timed_returns_value() {
        let (v, s) = timed(|| 7 * 6);
        assert_eq!(v, 42);
        assert!(s >= 0.0);
    }
}
