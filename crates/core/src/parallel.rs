//! Shared-memory parallel μDBSCAN — the paper's stated future work
//! ("extend this approach to leverage multiple cores available in each
//! computing node").
//!
//! The sequential algorithm's steps parallelise as follows:
//!
//! * μR-tree construction uses the tiled deterministic parallel builder
//!   ([`mcs::build_micro_clusters_par`]) by default — the sequential scan
//!   is inherently ordered, so the parallel path tiles space into 2ε
//!   cells, scans tiles on workers and reconciles boundary conflicts
//!   sequentially (pin `BuildOptions::default()` via
//!   [`ParMuDbscan::with_options`] to recover the paper's exact
//!   construction order);
//! * MC classification, `PROCESS-REM-POINTS` and `POST-PROCESSING-*` run
//!   on a pool of worker threads over disjoint chunks, sharing a
//!   lock-free [`ConcurrentUnionFind`] and per-point atomic flags.
//!
//! Exactness under concurrency hinges on one rule: a **non-core**
//! neighbour may be claimed by at most one cluster, so the
//! `assigned` flag is a CAS gate — only the winning thread performs the
//! union. Core–core unions are unconditional (always valid), and
//! wndq-core promotion uses a CAS on the core flag the same way. All
//! orderings produce *a* valid DBSCAN border assignment, and cores /
//! noise / the core partition are order-independent — so the result
//! passes the same exactness oracle as the sequential algorithm.

use crate::clustering::Clustering;
use geom::{dist_sq, Dataset, DbscanParams, PointId};
use mcs::{build_micro_clusters, build_micro_clusters_par, BuildOptions, McKind, ParBuildStats};
use metrics::{PhaseTimer, SharedCounters, Stopwatch};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Mutex;
use unionfind::ConcurrentUnionFind;

/// Shared-memory parallel μDBSCAN.
#[derive(Debug, Clone)]
pub struct ParMuDbscan {
    params: DbscanParams,
    opts: BuildOptions,
    threads: usize,
}

/// Output of a parallel run.
#[derive(Debug)]
pub struct ParOutput {
    /// The exact DBSCAN clustering.
    pub clustering: Clustering,
    /// Shared operation counters.
    pub counters: SharedCounters,
    /// Wall-clock phase split-up.
    pub phases: PhaseTimer,
    /// Number of micro-clusters.
    pub mc_count: usize,
    /// Diagnostics from the parallel construction path (`None` when the
    /// sequential builder ran, i.e. `BuildOptions::parallel` was off).
    /// `build_stats.makespan_secs` is the construction critical path:
    /// sequential stage walls plus the per-worker busy maximum of each
    /// parallel stage — the number that scales with threads even on
    /// machines with fewer cores than workers.
    pub build_stats: Option<ParBuildStats>,
}

struct Flags {
    core: Vec<AtomicBool>,
    wndq: Vec<AtomicBool>,
    assigned: Vec<AtomicBool>,
}

impl Flags {
    fn new(n: usize) -> Self {
        Self {
            core: (0..n).map(|_| AtomicBool::new(false)).collect(),
            wndq: (0..n).map(|_| AtomicBool::new(false)).collect(),
            assigned: (0..n).map(|_| AtomicBool::new(false)).collect(),
        }
    }

    /// CAS-claim a non-core point for a cluster; true when this caller
    /// won and must perform the union.
    fn claim(&self, p: PointId) -> bool {
        self.assigned[p as usize]
            .compare_exchange(false, true, Ordering::AcqRel, Ordering::Acquire)
            .is_ok()
    }

    /// CAS-promote a point to core; true when this caller won.
    ///
    /// SeqCst is load-bearing, not caution: exactness needs every core–core
    /// pair within ε to be unioned by at least one side. When threads A and
    /// B concurrently discover cores r and p with both points already
    /// `assigned` (step-1b MC membership makes the later `claim` fail and
    /// with it the fallback union), the only remaining union is the
    /// `core[x]` check in the scan loop — and "A promotes r then reads
    /// core[p], B promotes p then reads core[r]" is exactly the
    /// store-buffering litmus test, where acquire/release (and x86-TSO
    /// hardware) permit BOTH to read `false`, splitting one cluster in two.
    /// A single total order over the promotes and core-loads (SeqCst here
    /// and in [`Flags::is_core`]) forbids that outcome: whichever promote
    /// comes second in the total order, that thread's subsequent load sees
    /// the other's promote.
    fn promote(&self, p: PointId) -> bool {
        self.core[p as usize]
            .compare_exchange(false, true, Ordering::SeqCst, Ordering::SeqCst)
            .is_ok()
    }

    /// SeqCst core-flag read — pairs with [`Flags::promote`]; see there.
    fn is_core(&self, p: PointId) -> bool {
        self.core[p as usize].load(Ordering::SeqCst)
    }
}

impl ParMuDbscan {
    /// New instance with `threads` worker threads. Uses the tiled parallel
    /// micro-cluster builder; override with [`ParMuDbscan::with_options`]
    /// (e.g. `BuildOptions::default()` for the sequential scan).
    ///
    /// Low-level entry point; applications should prefer
    /// `mudbscan::prelude::Runner::new(params).threads(threads)`.
    pub fn from_params(params: DbscanParams, threads: usize) -> Self {
        assert!(threads >= 1);
        Self { params, opts: BuildOptions { parallel: true, ..Default::default() }, threads }
    }

    /// Override micro-cluster construction options.
    pub fn with_options(mut self, opts: BuildOptions) -> Self {
        self.opts = opts;
        self
    }

    /// Run on `data`.
    pub fn run(&self, data: &Dataset) -> ParOutput {
        let n = data.len();
        let params = self.params;
        let counters = SharedCounters::new();
        let mut phases = PhaseTimer::new();
        let mut sw = Stopwatch::start();
        let run_span = obs::span!("par_mudbscan");

        // Step 1: μR-tree — tiled parallel construction by default, the
        // sequential Algorithm-3 scan when `opts.parallel` is off. Both
        // paths count through a sequential `Counters` absorbed once, so
        // t1 snapshots stay comparable with `MuDbscan`.
        let step1 = obs::span!("tree_construction");
        let seq_counters = metrics::Counters::new();
        let (mut tree, build_stats) = if self.opts.parallel {
            let (tree, stats) =
                build_micro_clusters_par(data, params.eps, &self.opts, self.threads, &seq_counters);
            (tree, Some(stats))
        } else {
            (build_micro_clusters(data, params.eps, &self.opts, &seq_counters), None)
        };
        counters.absorb(&seq_counters);
        drop(step1);
        phases.add_secs("tree_construction", sw.lap());

        // Step 2 (parallel): reachable lists (independent per MC — but
        // computed via &mut self in the sequential API, so parallelise by
        // computing into a side vector).
        let step2 = obs::span!("finding_reachable");
        let reach: Vec<Vec<mcs::McId>> = {
            let level1 = tree.level1();
            let r = 3.0 * params.eps;
            let mcs_ref = &tree.mcs;
            let counters = &counters;
            parallel_map_chunks(self.threads, mcs_ref.len(), |range| {
                let mut out = Vec::with_capacity(range.len());
                for i in range {
                    let mut list = Vec::new();
                    let cost =
                        level1.search_sphere(data.point(mcs_ref[i].center), r, |mc| list.push(mc));
                    counters.count_dists(cost.mbr_tests);
                    counters.count_node_visits(cost.nodes_visited.max(1));
                    out.push(list);
                }
                out
            })
        };
        for (mc, list) in tree.mcs.iter_mut().zip(reach) {
            mc.reach = list;
        }
        drop(step2);
        phases.add_secs("finding_reachable", sw.lap());

        // Step 1b (parallel-safe, run after reach for better locality):
        // classify MCs, label wndq-cores, preliminary unions.
        let step3 = obs::span!("clustering");
        let uf = ConcurrentUnionFind::new(n);
        let flags = Flags::new(n);
        let wndq_list: Mutex<Vec<PointId>> = Mutex::new(Vec::new());
        {
            let tree = &tree;
            let flags = &flags;
            let uf = &uf;
            let counters = &counters;
            let wndq_list = &wndq_list;
            parallel_for_chunks(self.threads, tree.mcs.len(), move |range| {
                let mut local_wndq = Vec::new();
                for mi in range {
                    let mc = &tree.mcs[mi];
                    match mc.kind(&params) {
                        McKind::Dense => {
                            for q in mc.inner_circle(data, params.eps) {
                                if flags.promote(q) {
                                    flags.wndq[q as usize].store(true, Ordering::Release);
                                    local_wndq.push(q);
                                }
                            }
                            for &p in &mc.members {
                                // Membership is exclusive, so this thread
                                // owns these points' assignment.
                                flags.assigned[p as usize].store(true, Ordering::Release);
                                uf.union(mc.center, p);
                                counters.count_union();
                            }
                        }
                        McKind::Core => {
                            if flags.promote(mc.center) {
                                flags.wndq[mc.center as usize].store(true, Ordering::Release);
                                local_wndq.push(mc.center);
                            }
                            for &p in &mc.members {
                                flags.assigned[p as usize].store(true, Ordering::Release);
                                uf.union(mc.center, p);
                                counters.count_union();
                            }
                        }
                        McKind::Sparse => {}
                    }
                }
                wndq_list.lock().expect("poisoned").extend(local_wndq);
            });
        }

        // Step 3 (parallel): PROCESS-REM-POINTS. Unlike the sequential
        // version, dynamically promoted wndq-cores may already have been
        // queried by another thread — that costs extra queries but never
        // correctness.
        let noise_list: Mutex<Vec<(PointId, Vec<PointId>)>> = Mutex::new(Vec::new());
        let half = params.eps / 2.0;
        let half_sq = half * half;
        {
            let tree = &tree;
            let flags = &flags;
            let uf = &uf;
            let counters = &counters;
            let wndq_list = &wndq_list;
            let noise_list = &noise_list;
            parallel_for_chunks(self.threads, n, move |range| {
                let mut local_noise = Vec::new();
                let mut local_wndq = Vec::new();
                let mut nbhrs: Vec<PointId> = Vec::new();
                for pi in range {
                    let p = pi as PointId;
                    if flags.wndq[pi].load(Ordering::Acquire) {
                        counters.count_query_saved();
                        continue;
                    }
                    nbhrs.clear();
                    let cost = tree.neighborhood(data, p, &mut nbhrs);
                    counters.count_range_query();
                    counters.count_dists(cost.mbr_tests);
                    counters.count_node_visits(cost.nodes_visited.max(1));
                    // Mirrors the sequential `process_rem_points` site:
                    // histogram merging is commutative, so as long as the
                    // executed query set is identical the merged
                    // histograms are bit-identical across thread counts.
                    if obs::enabled() {
                        obs::record_hist("query/node_visits", cost.nodes_visited.max(1));
                        obs::record_hist("query/candidates", nbhrs.len() as u64);
                        // Same key as the sequential site: leaf_evals is a
                        // function of the visited node set, so it stays
                        // bit-identical across thread counts.
                        obs::record_hist("query/leaf_evals", cost.candidates);
                    }

                    if nbhrs.len() < params.min_pts {
                        if !flags.assigned[pi].load(Ordering::Acquire) {
                            let mut attached = false;
                            for &x in &nbhrs {
                                if flags.is_core(x) {
                                    if flags.claim(p) {
                                        uf.union(x, p);
                                        counters.count_union();
                                    }
                                    attached = true;
                                    break;
                                }
                            }
                            if !attached {
                                local_noise.push((p, nbhrs.clone()));
                            }
                        }
                        continue;
                    }

                    flags.promote(p);
                    flags.assigned[pi].store(true, Ordering::Release);
                    for &x in &nbhrs {
                        if flags.is_core(x) {
                            uf.union(x, p);
                            counters.count_union();
                        } else if flags.claim(x) {
                            uf.union(p, x);
                            counters.count_union();
                        } else if flags.is_core(x) {
                            // x was promoted between the first check and the
                            // failed claim: the core-core union is mandatory.
                            uf.union(x, p);
                            counters.count_union();
                        }
                    }

                    let pc = data.point(p);
                    let inner =
                        nbhrs.iter().filter(|&&q| dist_sq(pc, data.point(q)) < half_sq).count();
                    counters.count_dists(nbhrs.len() as u64);
                    if inner >= params.min_pts {
                        for &q in &nbhrs {
                            if dist_sq(pc, data.point(q)) < half_sq && flags.promote(q) {
                                flags.wndq[q as usize].store(true, Ordering::Release);
                                local_wndq.push(q);
                                uf.union(p, q);
                                counters.count_union();
                                flags.assigned[q as usize].store(true, Ordering::Release);
                            }
                        }
                    }
                }
                noise_list.lock().expect("poisoned").extend(local_noise);
                wndq_list.lock().expect("poisoned").extend(local_wndq);
            });
        }
        drop(step3);
        phases.add_secs("clustering", sw.lap());

        // Step 4 (parallel): post-processing.
        let step4 = obs::span!("post_processing");
        let wndq_list = wndq_list.into_inner().expect("poisoned");
        let eps_sq = params.eps_sq();
        {
            let tree = &tree;
            let flags = &flags;
            let uf = &uf;
            let counters = &counters;
            let wndq_list = &wndq_list;
            parallel_for_chunks(self.threads, wndq_list.len(), move |range| {
                for i in range {
                    let p = wndq_list[i];
                    let pc = data.point(p);
                    for &mc_id in tree.reach_of(p) {
                        let mc = &tree.mcs[mc_id as usize];
                        if mc.mbr.min_dist_sq(pc) >= eps_sq {
                            continue;
                        }
                        if mc.kind(&params) != McKind::Sparse {
                            // Whole MC is one cluster (see the sequential
                            // version); the racy same() check is safe —
                            // "same" is monotone under unions.
                            if uf.same(p, mc.center) {
                                continue;
                            }
                            let aux = mc.aux.as_ref().expect("aux built");
                            let mut hit = None;
                            let cost = aux.search_sphere(pc, params.eps, |q| {
                                if hit.is_none() && q != p && flags.is_core(q) {
                                    hit = Some(q);
                                }
                            });
                            // Mirrors the sequential post_processing_core
                            // site exactly, so seq/par counter snapshots
                            // stay comparable.
                            counters.count_range_query();
                            counters.count_dists(cost.mbr_tests);
                            counters.count_node_visits(cost.nodes_visited.max(1));
                            if obs::enabled() {
                                obs::record_hist("postproc/node_visits", cost.nodes_visited.max(1));
                            }
                            if let Some(q) = hit {
                                uf.union(p, q);
                                counters.count_union();
                            }
                            continue;
                        }
                        for &q in &mc.members {
                            if q == p || !flags.is_core(q) {
                                continue;
                            }
                            if uf.same(p, q) {
                                continue;
                            }
                            counters.count_dists(1);
                            if dist_sq(pc, data.point(q)) < eps_sq {
                                uf.union(p, q);
                                counters.count_union();
                            }
                        }
                    }
                }
            });
        }
        let noise_list = noise_list.into_inner().expect("poisoned");
        {
            let flags = &flags;
            let uf = &uf;
            let counters = &counters;
            let noise_list = &noise_list;
            parallel_for_chunks(self.threads, noise_list.len(), move |range| {
                for i in range {
                    let (p, ref nbhrs) = noise_list[i];
                    if flags.is_core(p) || flags.assigned[p as usize].load(Ordering::Acquire) {
                        continue;
                    }
                    for &q in nbhrs {
                        if flags.is_core(q) {
                            if flags.claim(p) {
                                uf.union(q, p);
                                counters.count_union();
                            }
                            break;
                        }
                    }
                }
            });
        }
        drop(step4);
        phases.add_secs("post_processing", sw.lap());

        if obs::enabled() {
            let (dense, core, sparse) = tree.kind_histogram(&params);
            obs::record_count("mc/dense", dense as u64);
            obs::record_count("mc/core", core as u64);
            obs::record_count("mc/sparse", sparse as u64);
            obs::record_count("queries/executed", counters.range_queries());
            obs::record_count("queries/saved", counters.queries_saved());
            obs::record_count("threads", self.threads as u64);
        }
        drop(run_span);

        // Extract the clustering.
        let is_core: Vec<bool> = flags.core.iter().map(|b| b.load(Ordering::Acquire)).collect();
        let mut seq_uf = unionfind::UnionFind::new(n);
        for x in 0..n as u32 {
            let r = uf.find(x);
            if r != x {
                seq_uf.union(r, x);
            }
        }
        let clustering = Clustering::from_union_find(&mut seq_uf, is_core);
        ParOutput { clustering, counters, phases, mc_count: tree.mc_count(), build_stats }
    }
}

/// Run `f` over disjoint index chunks on `threads` scoped threads.
fn parallel_for_chunks(threads: usize, len: usize, f: impl Fn(std::ops::Range<usize>) + Sync) {
    if len == 0 {
        return;
    }
    let next = AtomicUsize::new(0);
    let chunk = (len / (threads * 8)).max(64);
    std::thread::scope(|s| {
        for _ in 0..threads {
            let f = &f;
            let next = &next;
            s.spawn(move || loop {
                let start = next.fetch_add(chunk, Ordering::Relaxed);
                if start >= len {
                    break;
                }
                f(start..(start + chunk).min(len));
            });
        }
    });
}

/// Like [`parallel_for_chunks`] but collects per-index results in order.
fn parallel_map_chunks<T: Send>(
    threads: usize,
    len: usize,
    f: impl Fn(std::ops::Range<usize>) -> Vec<T> + Sync,
) -> Vec<T> {
    if len == 0 {
        return Vec::new();
    }
    let chunk = (len / (threads * 8)).max(64);
    let slots: Vec<Mutex<Option<Vec<T>>>> =
        (0..len.div_ceil(chunk)).map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    std::thread::scope(|s| {
        for _ in 0..threads {
            let f = &f;
            let next = &next;
            let slots = &slots;
            s.spawn(move || loop {
                let idx = next.fetch_add(1, Ordering::Relaxed);
                let start = idx * chunk;
                if start >= len {
                    break;
                }
                let out = f(start..(start + chunk).min(len));
                *slots[idx].lock().expect("poisoned") = Some(out);
            });
        }
    });
    slots
        .into_iter()
        .flat_map(|m| m.into_inner().expect("poisoned").expect("chunk not computed"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clustering::check_exact;
    use crate::reference::naive_dbscan;

    fn blobs(seed: u64) -> Dataset {
        let mut rows = Vec::new();
        let mut s = seed;
        let mut r = move || {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((s >> 33) as f64 / (1u64 << 31) as f64) - 1.0
        };
        for (cx, cy) in [(0.0, 0.0), (6.0, 1.0), (2.0, 7.0)] {
            for _ in 0..60 {
                rows.push(vec![cx + 0.7 * r(), cy + 0.7 * r()]);
            }
        }
        for _ in 0..25 {
            rows.push(vec![12.0 * r(), 12.0 * r()]);
        }
        Dataset::from_rows(&rows)
    }

    #[test]
    fn parallel_is_exact_across_thread_counts() {
        let data = blobs(1);
        let params = DbscanParams::new(0.6, 5);
        let reference = naive_dbscan(&data, &params);
        for threads in [1, 2, 4, 8] {
            let out = ParMuDbscan::from_params(params, threads).run(&data);
            let rep = check_exact(&out.clustering, &reference, &data, &params);
            assert!(rep.is_exact(), "threads={threads}: {rep:?}");
        }
    }

    #[test]
    fn parallel_matches_sequential_canon() {
        // Pin the sequential construction path: with it, the MC partition
        // (not just the clustering) must match `MuDbscan` exactly.
        let data = blobs(9);
        let params = DbscanParams::new(0.8, 4);
        let seq = crate::MuDbscan::from_params(params).run(&data);
        let par =
            ParMuDbscan::from_params(params, 4).with_options(BuildOptions::default()).run(&data);
        assert!(par.build_stats.is_none(), "default BuildOptions must select the sequential build");
        assert_eq!(par.clustering.n_clusters, seq.clustering.n_clusters);
        assert_eq!(par.clustering.is_core, seq.clustering.is_core);
        assert_eq!(par.clustering.noise_count(), seq.clustering.noise_count());
        assert_eq!(par.mc_count, seq.mc_count);
    }

    #[test]
    fn parallel_build_matches_sequential_clustering() {
        // The tiled parallel build may partition MCs differently, but the
        // clustering it feeds must still be canon-identical to MuDbscan.
        let data = blobs(9);
        let params = DbscanParams::new(0.8, 4);
        let seq = crate::MuDbscan::from_params(params).run(&data);
        let par = ParMuDbscan::from_params(params, 4).run(&data);
        let stats =
            par.build_stats.expect("ParMuDbscan::from_params must default to the parallel build");
        assert!(stats.tiles > 0);
        assert_eq!(par.clustering.n_clusters, seq.clustering.n_clusters);
        assert_eq!(par.clustering.is_core, seq.clustering.is_core);
        assert_eq!(par.clustering.noise_count(), seq.clustering.noise_count());
    }

    #[test]
    fn repeated_runs_are_stable() {
        // Thread interleavings may differ, but the canonical clustering
        // quantities must not.
        let data = blobs(33);
        let params = DbscanParams::new(0.5, 4);
        let first = ParMuDbscan::from_params(params, 4).run(&data);
        for _ in 0..5 {
            let out = ParMuDbscan::from_params(params, 4).run(&data);
            assert_eq!(out.clustering.n_clusters, first.clustering.n_clusters);
            assert_eq!(out.clustering.is_core, first.clustering.is_core);
            assert_eq!(out.clustering.noise_count(), first.clustering.noise_count());
        }
    }

    /// Regression test for the store-buffering race fixed in
    /// [`Flags::promote`] / [`Flags::is_core`] (see the comment there).
    ///
    /// The dataset is engineered to maximise the racy window: many pairs of
    /// points that (a) are members of *different* core MCs — so step 1b
    /// marks them `assigned` and the `claim` fallback union is dead — and
    /// (b) are within ε of each other and only proven core by their own
    /// step-3 query. Two threads scanning such a pair concurrently must
    /// still produce the core–core union on at least one side; with the
    /// old acquire/release promote both sides could miss it and split a
    /// cluster. The race window is sub-microsecond, so we run many
    /// repetitions at a high thread count and check full exactness (the
    /// oracle catches a split cluster as a core-partition mismatch).
    #[test]
    fn stress_border_claim_vs_promotion_race() {
        // Pairs of MCs ~1.3 apart (eps = 1.5): centers of adjacent MCs are
        // separated by more than eps (so they form distinct MCs) while rim
        // members of one MC sit within eps of rim members of the next.
        let mut rows = Vec::new();
        for g in 0..40 {
            let x = g as f64 * 10.0;
            for (cx, cy) in [(x, 0.0), (x + 1.6, 0.0)] {
                // MinPts members per MC, spread on a rim so inner_count
                // stays below MinPts (no wndq shortcut: every point is
                // proven core by its own step-3 query).
                for k in 0..5 {
                    let a = k as f64 * std::f64::consts::TAU / 5.0;
                    rows.push(vec![cx + 0.7 * a.cos(), cy + 0.7 * a.sin()]);
                }
            }
        }
        let data = Dataset::from_rows(&rows);
        let params = DbscanParams::new(1.5, 4);
        let reference = naive_dbscan(&data, &params);
        let threads = std::thread::available_parallelism().map_or(8, |p| p.get().max(8));
        for rep in 0..50 {
            let out = ParMuDbscan::from_params(params, threads).run(&data);
            let rep_report = check_exact(&out.clustering, &reference, &data, &params);
            assert!(
                rep_report.is_exact(),
                "rep {rep} threads={threads}: {rep_report:?} (got {} clusters, want {})",
                out.clustering.n_clusters,
                reference.n_clusters
            );
        }
    }

    #[test]
    fn counters_and_phases_populated() {
        let data = blobs(5);
        let out = ParMuDbscan::from_params(DbscanParams::new(0.6, 5), 3).run(&data);
        assert!(out.counters.range_queries() > 0);
        assert!(out.counters.union_ops() > 0);
        assert!(out.phases.total_secs() > 0.0);
    }
}
