//! Table IV reproduction: peak memory consumption of the four sequential
//! algorithms (deterministic deep-size accounting of each algorithm's
//! structures; see metrics::mem).
//!
//! ```text
//! cargo run --release -p bench --bin repro_table4
//! ```

use baselines::{GDbscan, GridDbscan, RDbscan};
use bench::{banner, SEED};
use metrics::mem::human_bytes;
use metrics::Table;
use mudbscan::prelude::{RunDetails, Runner};

const PAPER: &[(&str, &str, &str, &str, &str)] = &[
    ("3DSRN", "125 MB", "50 MB", "458 MB", "158 MB"),
    ("DGB0.5M3D", "143 MB", "74 MB", "617 MB", "261 MB"),
    ("MPAGB6M3D", "2178 MB", "killed", "9844 MB", "2530 MB"),
    ("KDDB145K14D", "61 MB", "32 MB", "20.17 GB", "67 MB"),
];

fn main() {
    banner(
        "Table IV — peak memory consumption",
        "peak structure memory of R-DBSCAN / G-DBSCAN / GridDBSCAN / μDBSCAN",
        "deep-size accounting of index + working structures on scaled analogues",
    );

    let wanted = ["3DSRN", "DGB0.5M3D", "MPAGB6M3D", "KDDB145K14D"];
    let mut ours =
        Table::new(&["dataset", "R-DBSCAN", "G-DBSCAN", "GridDBSCAN", "μDBSCAN", "grid/μ ratio"]);

    for spec in data::paper_table2_specs() {
        if !wanted.contains(&spec.name) {
            continue;
        }
        let dataset = spec.generate(SEED);
        let params = spec.params;
        eprintln!("[{}] ...", spec.name);

        let r = RDbscan::new(params).run(&dataset).peak_heap_bytes;
        let g = GDbscan::new(params).run(&dataset).peak_heap_bytes;
        let mu_out = Runner::new(params).run(&dataset).expect("sequential run");
        let mu = match mu_out.details {
            RunDetails::Sequential { peak_heap_bytes, .. } => peak_heap_bytes,
            ref other => panic!("expected Sequential details, got {other:?}"),
        };
        let (grid_str, ratio) = match GridDbscan::new(params).run(&dataset) {
            Ok(out) => (
                human_bytes(out.peak_heap_bytes),
                format!("{:.1}x", out.peak_heap_bytes as f64 / mu as f64),
            ),
            Err(e) => (format!("MemErr ({e})"), "inf".into()),
        };

        ours.row(&[
            spec.name.to_string(),
            human_bytes(r),
            human_bytes(g),
            grid_str,
            human_bytes(mu),
            ratio,
        ]);
    }

    println!("measured (structure deep sizes):");
    ours.print();

    println!("\npaper values (resident set of the C++ binaries):");
    let mut paper = Table::new(&["dataset", "R-DBSCAN", "G-DBSCAN", "GridDBSCAN", "μDBSCAN"]);
    for &(name, a, b, c, d) in PAPER {
        paper.row_str(&[name, a, b, c, d]);
    }
    paper.print();

    println!("\nshape checks: G-DBSCAN smallest (no index); R-DBSCAN < μDBSCAN");
    println!("(single R-tree vs two-level μR-tree); GridDBSCAN largest and");
    println!("exploding with dimension (MemErr at d=14).");
}
