#![deny(missing_docs)]
#![allow(clippy::needless_range_loop)] // dimension-indexed numeric loops are clearer as index loops

//! Geometric primitives shared by every crate in the μDBSCAN workspace.
//!
//! The central type is [`Dataset`], a structure-of-arrays container holding
//! `n` points of dimension `d` in one flat `Vec<f64>`. All algorithms refer
//! to points by [`PointId`] and borrow coordinate slices from the dataset,
//! which keeps the hot loops allocation-free and cache-friendly.
//!
//! The crate also provides:
//!
//! * Euclidean distance kernels with early-exit variants ([`dist`]),
//! * axis-aligned minimum bounding rectangles ([`Mbr`]) with the
//!   box/box and box/sphere predicates the R-tree and μR-tree need,
//! * ε-region helpers (`reg_ε(p)` from the paper is [`Mbr::around_point`]).
//!
//! ```
//! use geom::{dist_euclidean, within, Dataset, DbscanParams, Mbr};
//!
//! let data = Dataset::from_rows(&[vec![0.0, 0.0], vec![3.0, 4.0]]);
//! assert_eq!(dist_euclidean(data.point(0), data.point(1)), 5.0);
//! assert!(!within(data.point(0), data.point(1), 5.0)); // strict <
//!
//! let region = Mbr::around_point(data.point(0), 1.0); // reg_ε(p)
//! assert!(region.contains_point(&[0.5, -0.5]));
//!
//! let params = DbscanParams::new(0.5, 5);
//! assert_eq!(params.eps_sq(), 0.25);
//! ```

pub mod dataset;
pub mod dist;
pub mod kernels;
pub mod mbr;
pub mod soa;
pub mod source;

pub use dataset::{Dataset, DatasetBuilder, PointId};
pub use dist::{dist_euclidean, dist_sq, within, within_sq};
pub use mbr::Mbr;
pub use soa::{PointBlock, SoaDataset};
pub use source::{gather_dense, Cols, DataSource, SourceChunk, DEFAULT_CHUNK_CAP};

/// DBSCAN density parameters, shared by every algorithm in the workspace.
///
/// `eps` is the neighbourhood radius (strict: `DIST(p, q) < eps` puts `q`
/// in `N_eps(p)`), `min_pts` is the core-point threshold
/// (`|N_eps(p)| >= min_pts`, with `p` counting itself).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DbscanParams {
    /// Neighbourhood radius ε.
    pub eps: f64,
    /// Minimum number of ε-neighbours (including the point itself) for a
    /// point to be a core point.
    pub min_pts: usize,
}

impl DbscanParams {
    /// Create a parameter set, validating that ε is positive and finite and
    /// `min_pts >= 1`.
    pub fn new(eps: f64, min_pts: usize) -> Self {
        assert!(eps.is_finite() && eps > 0.0, "eps must be positive and finite");
        assert!(min_pts >= 1, "min_pts must be at least 1");
        Self { eps, min_pts }
    }

    /// ε² — precomputed once so hot loops compare squared distances.
    #[inline]
    pub fn eps_sq(&self) -> f64 {
        self.eps * self.eps
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn params_basic() {
        let p = DbscanParams::new(2.0, 5);
        assert_eq!(p.eps, 2.0);
        assert_eq!(p.min_pts, 5);
        assert_eq!(p.eps_sq(), 4.0);
    }

    #[test]
    #[should_panic(expected = "eps must be positive")]
    fn params_reject_zero_eps() {
        DbscanParams::new(0.0, 5);
    }

    #[test]
    #[should_panic(expected = "min_pts")]
    fn params_reject_zero_minpts() {
        DbscanParams::new(1.0, 0);
    }
}
