//! R*-tree split (Beckmann, Kriegel, Schneider, Seeger — SIGMOD'90),
//! selectable via [`crate::RTreeConfig::split`].
//!
//! Where Guttman's quadratic split picks seed pairs by wasted volume and
//! greedily assigns the rest, the R* split is deterministic and
//! distribution-aware:
//!
//! 1. **ChooseSplitAxis** — for each axis, sort the boxes by lower then
//!    by upper coordinate and evaluate every legal distribution
//!    `(m..=M+1-m)`; the axis with the minimum *margin sum* wins.
//! 2. **ChooseSplitIndex** — on the winning axis, pick the distribution
//!    with minimal *overlap* between the two groups (ties: minimal total
//!    volume).
//!
//! The R* split produces lower-overlap trees on skewed data at a small
//! construction cost — the `queries` criterion bench compares both.

use geom::Mbr;

/// Compute an R* split of `boxes`: returns the two index groups.
pub(crate) fn rstar_partition(boxes: &[&Mbr], min_entries: usize) -> (Vec<usize>, Vec<usize>) {
    let n = boxes.len();
    debug_assert!(n >= 2 * min_entries, "split called on a non-overfull node");
    let dim = boxes[0].dim();
    let m = min_entries;

    // ChooseSplitAxis: minimise the margin sum over all distributions,
    // considering both lower- and upper-sorted orders per axis.
    let mut best_axis = 0usize;
    let mut best_axis_margin = f64::INFINITY;
    let mut best_axis_order: Vec<usize> = Vec::new();

    for axis in 0..dim {
        for by_upper in [false, true] {
            let mut order: Vec<usize> = (0..n).collect();
            order.sort_by(|&a, &b| {
                let (ka, kb) = if by_upper {
                    (boxes[a].hi()[axis], boxes[b].hi()[axis])
                } else {
                    (boxes[a].lo()[axis], boxes[b].lo()[axis])
                };
                ka.partial_cmp(&kb).unwrap_or(std::cmp::Ordering::Equal)
            });
            let margin_sum: f64 = distributions(&order, m)
                .map(|(left, right)| mbr_of(boxes, left).margin() + mbr_of(boxes, right).margin())
                .sum();
            if margin_sum < best_axis_margin {
                best_axis_margin = margin_sum;
                best_axis = axis;
                best_axis_order = order;
            }
        }
    }
    let _ = best_axis;

    // ChooseSplitIndex: minimal overlap, ties by total volume, then by
    // total margin — the margin tie-break matters for degenerate
    // (collinear) boxes where every volume is zero.
    let order = best_axis_order;
    let mut best: Option<(f64, f64, f64, usize)> = None; // (overlap, volume, margin, k)
    for (k, (left, right)) in distributions(&order, m).enumerate() {
        let lb = mbr_of(boxes, left);
        let rb = mbr_of(boxes, right);
        let overlap = intersection_volume(&lb, &rb);
        let volume = lb.volume() + rb.volume();
        let margin = lb.margin() + rb.margin();
        if best.is_none_or(|(bo, bv, bm, _)| (overlap, volume, margin) < (bo, bv, bm)) {
            best = Some((overlap, volume, margin, k));
        }
    }
    let (_, _, _, k) = best.expect("at least one distribution");
    let split_at = m + k;
    let ga = order[..split_at].to_vec();
    let gb = order[split_at..].to_vec();
    (ga, gb)
}

/// All legal distributions of a sorted order into a prefix of length
/// `m + k` and the remaining suffix, for `k in 0..=n - 2m`.
fn distributions(order: &[usize], m: usize) -> impl Iterator<Item = (&[usize], &[usize])> {
    let n = order.len();
    (0..=(n - 2 * m)).map(move |k| order.split_at(m + k))
}

fn mbr_of(boxes: &[&Mbr], idx: &[usize]) -> Mbr {
    let mut it = idx.iter();
    let mut acc = boxes[*it.next().expect("non-empty group")].clone();
    for &i in it {
        acc.merge(boxes[i]);
    }
    acc
}

/// Volume of the intersection of two boxes (0 when disjoint).
fn intersection_volume(a: &Mbr, b: &Mbr) -> f64 {
    let mut v = 1.0;
    for k in 0..a.dim() {
        let lo = a.lo()[k].max(b.lo()[k]);
        let hi = a.hi()[k].min(b.hi()[k]);
        if hi <= lo {
            return 0.0;
        }
        v *= hi - lo;
    }
    v
}

#[cfg(test)]
mod tests {
    use super::*;

    fn point_boxes(pts: &[[f64; 2]]) -> Vec<Mbr> {
        pts.iter().map(|p| Mbr::point(p)).collect()
    }

    #[test]
    fn splits_clearly_separated_groups() {
        // Two obvious clusters on the x axis: the split must not mix them.
        let pts: Vec<[f64; 2]> = (0..4)
            .map(|i| [i as f64 * 0.1, 0.0])
            .chain((0..4).map(|i| [100.0 + i as f64 * 0.1, 0.0]))
            .collect();
        let boxes = point_boxes(&pts);
        let refs: Vec<&Mbr> = boxes.iter().collect();
        let (ga, gb) = rstar_partition(&refs, 2);
        let left_of = |g: &[usize]| g.iter().all(|&i| pts[i][0] < 50.0);
        let right_of = |g: &[usize]| g.iter().all(|&i| pts[i][0] > 50.0);
        assert!(
            (left_of(&ga) && right_of(&gb)) || (left_of(&gb) && right_of(&ga)),
            "R* split mixed the clusters: {ga:?} | {gb:?}"
        );
    }

    #[test]
    fn respects_min_entries_and_covers_all() {
        let pts: Vec<[f64; 2]> =
            (0..11).map(|i| [(i * 7 % 11) as f64, (i * 3 % 5) as f64]).collect();
        let boxes = point_boxes(&pts);
        let refs: Vec<&Mbr> = boxes.iter().collect();
        let (ga, gb) = rstar_partition(&refs, 4);
        assert!(ga.len() >= 4 && gb.len() >= 4);
        let mut all: Vec<usize> = ga.iter().chain(gb.iter()).copied().collect();
        all.sort_unstable();
        assert_eq!(all, (0..11).collect::<Vec<_>>());
    }

    #[test]
    fn intersection_volume_cases() {
        let a = Mbr::new(vec![0.0, 0.0], vec![2.0, 2.0]);
        let b = Mbr::new(vec![1.0, 1.0], vec![3.0, 3.0]);
        assert_eq!(intersection_volume(&a, &b), 1.0);
        let c = Mbr::new(vec![5.0, 5.0], vec![6.0, 6.0]);
        assert_eq!(intersection_volume(&a, &c), 0.0);
        assert_eq!(intersection_volume(&a, &a), 4.0);
    }
}
