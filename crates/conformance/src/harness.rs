//! The differential driver: one dataset, every implementation, one oracle.

use geom::{Dataset, DbscanParams};
use mudbscan::{check_exact, naive_dbscan, ExactnessReport};

use crate::artifact::FailureArtifact;
use crate::datasets::DatasetSpec;
use crate::registry::registry;
use crate::shrink::minimize;

/// What running the full registry on one dataset produced.
#[derive(Debug)]
pub struct CaseOutcome {
    /// Implementations that declined the input, with their reason (e.g.
    /// GridDBSCAN's memory budget at high dimension).
    pub skipped: Vec<(String, String)>,
    /// Implementations whose clustering was not exact, with the failed
    /// criteria.
    pub disagreements: Vec<(String, ExactnessReport)>,
}

/// Run every registered implementation on `rows` and compare each result
/// against the [`naive_dbscan`] oracle.
pub fn run_case(rows: &[Vec<f64>], params: &DbscanParams) -> CaseOutcome {
    let data = Dataset::from_rows(rows);
    let reference = naive_dbscan(&data, params);
    let mut outcome = CaseOutcome { skipped: Vec::new(), disagreements: Vec::new() };
    for imp in registry() {
        match imp.run(&data, params) {
            Err(reason) => outcome.skipped.push((imp.name().to_string(), reason)),
            Ok(clustering) => {
                let report = check_exact(&clustering, &reference, &data, params);
                if !report.is_exact() {
                    outcome.disagreements.push((imp.name().to_string(), report));
                }
            }
        }
    }
    outcome
}

/// Run one differential case end to end: generate the dataset from `spec`,
/// compare every implementation against the oracle, and on any
/// disagreement minimize the dataset, dump a replay artifact, and return
/// an error describing where it was written.
pub fn differential(test: &str, spec: &DatasetSpec, params: &DbscanParams) -> Result<(), String> {
    let rows = spec.rows();
    let outcome = run_case(&rows, params);
    if outcome.disagreements.is_empty() {
        return Ok(());
    }

    // Shrink while *any* implementation still disagrees with the oracle —
    // every candidate is re-clustered and re-checked, so the minimized
    // rows are a genuine counterexample, not an artifact of the shrinker.
    let minimized = minimize(rows, |rs| !run_case(rs, params).disagreements.is_empty());
    let final_outcome = run_case(&minimized, params);
    let disagreeing: Vec<String> =
        final_outcome.disagreements.iter().map(|(name, _)| name.clone()).collect();

    let artifact = FailureArtifact {
        test: test.to_string(),
        seed: spec.seed,
        family: spec.family.as_str().to_string(),
        dim: spec.dim,
        eps: params.eps,
        min_pts: params.min_pts,
        disagreeing: disagreeing.clone(),
        rows: minimized,
    };
    let location = match artifact.dump() {
        Ok(path) => path.display().to_string(),
        Err(e) => format!("<artifact dump failed: {e}>"),
    };
    Err(format!(
        "{} implementation(s) disagree with naive_dbscan on a {}-point {} dataset \
         (eps={}, min_pts={}, seed={}): [{}]; minimized counterexample written to {} — \
         replay it with `cargo test -p conformance --test replay`",
        disagreeing.len(),
        artifact.rows.len(),
        artifact.family,
        params.eps,
        params.min_pts,
        spec.seed,
        disagreeing.join(", "),
        location,
    ))
}

/// Re-run a stored artifact against the current registry.
pub fn replay(artifact: &FailureArtifact) -> CaseOutcome {
    let params = DbscanParams::new(artifact.eps, artifact.min_pts);
    run_case(&artifact.rows, &params)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datasets::Family;

    #[test]
    fn clean_case_reports_no_disagreements() {
        let spec = DatasetSpec { family: Family::Blobs, n: 24, dim: 2, seed: 11 };
        differential("harness-smoke", &spec, &DbscanParams::new(0.4, 3)).unwrap();
    }

    #[test]
    fn grid_baseline_skip_is_recorded_not_failed() {
        // GridDBSCAN declines very high dimensions (3^d neighbour cells);
        // that must surface as a skip, never a disagreement.
        let spec = DatasetSpec { family: Family::Uniform, n: 16, dim: 8, seed: 3 };
        let outcome = run_case(&spec.rows(), &DbscanParams::new(0.8, 3));
        assert!(outcome.disagreements.is_empty(), "{:?}", outcome.disagreements);
    }
}
