#![warn(missing_docs)]

//! Dataset generators, the catalog of paper-dataset analogues, and
//! simple file IO.
//!
//! The paper's evaluation uses real datasets we cannot redistribute
//! (Millennium-run galaxy catalogues, a road network, UCI datasets).
//! Each generator below is a *seeded synthetic analogue* reproducing the
//! spatial character that drives the measured phenomena — cluster
//! granularity (number of micro-clusters), density contrast (% queries
//! saved), dimensionality (grid blow-up) — as justified in DESIGN.md §2.

//! ```
//! // Deterministic: the same seed reproduces the same dataset.
//! let a = data::galaxy(1_000, 3, 42);
//! let b = data::galaxy(1_000, 3, 42);
//! assert_eq!(a, b);
//! assert_eq!(a.dim(), 3);
//!
//! // The catalog carries the paper's Table II rows as scaled analogues.
//! let specs = data::paper_table2_specs();
//! assert_eq!(specs.len(), 8);
//! assert_eq!(specs[0].name, "3DSRN");
//! ```

pub mod catalog;
pub mod generators;
pub mod io;
pub mod plot;
pub mod store;

pub use catalog::{paper_table2_specs, DatasetSpec, GeneratorKind};
pub use store::{write_store, ChunkedStore, StoreError, StoreWriter};
pub use generators::{
    drifting_stream, galaxy, gaussian_mixture, household, kddbio, road_network, uniform, Normal,
};
