//! Catalog of paper-dataset analogues with the density parameters used
//! in the paper's tables, rescaled to the synthetic generators'
//! `[0, 100]^d` coordinate range and to laptop-feasible sizes.

use crate::generators;
use geom::{Dataset, DbscanParams};

/// Which generator backs a catalog entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GeneratorKind {
    /// Road-network analogue (3-d).
    RoadNetwork,
    /// Galaxy-catalogue analogue (any dimension).
    Galaxy,
    /// Household-power analogue (5-d).
    Household,
    /// KDD-Cup-04 Bio analogue (high dimension).
    KddBio,
}

/// One paper-dataset analogue.
#[derive(Debug, Clone)]
pub struct DatasetSpec {
    /// Paper dataset name (e.g. "3DSRN").
    pub name: &'static str,
    /// Size used in the paper (for the printed comparison).
    pub paper_n: &'static str,
    /// Dimensionality.
    pub dim: usize,
    /// Our default (scaled) size.
    pub default_n: usize,
    /// Density parameters for the analogue's coordinate scale.
    pub params: DbscanParams,
    /// Backing generator.
    pub kind: GeneratorKind,
}

impl DatasetSpec {
    /// Generate the dataset at its default size.
    pub fn generate(&self, seed: u64) -> Dataset {
        self.generate_n(self.default_n, seed)
    }

    /// Generate the dataset at an explicit size.
    pub fn generate_n(&self, n: usize, seed: u64) -> Dataset {
        match self.kind {
            GeneratorKind::RoadNetwork => generators::road_network(n, seed),
            GeneratorKind::Galaxy => generators::galaxy(n, self.dim, seed),
            GeneratorKind::Household => generators::household(n, seed),
            GeneratorKind::KddBio => generators::kddbio(n, self.dim, seed),
        }
    }
}

/// The eight Table II dataset analogues, in the paper's row order.
///
/// ε values are tuned to the generators' scale so each analogue exhibits
/// the paper row's qualitative regime (MC count scale, % queries saved).
pub fn paper_table2_specs() -> Vec<DatasetSpec> {
    vec![
        DatasetSpec {
            name: "3DSRN",
            paper_n: "0.43M",
            dim: 3,
            default_n: 30_000,
            params: DbscanParams::new(0.35, 5),
            kind: GeneratorKind::RoadNetwork,
        },
        DatasetSpec {
            name: "DGB0.5M3D",
            paper_n: "0.5M",
            dim: 3,
            default_n: 30_000,
            params: DbscanParams::new(0.8, 5),
            kind: GeneratorKind::Galaxy,
        },
        DatasetSpec {
            name: "HHP0.5M5D",
            paper_n: "0.5M",
            dim: 5,
            default_n: 20_000,
            params: DbscanParams::new(5.0, 6),
            kind: GeneratorKind::Household,
        },
        DatasetSpec {
            name: "MPAGB6M3D",
            paper_n: "6M",
            dim: 3,
            default_n: 60_000,
            params: DbscanParams::new(0.8, 5),
            kind: GeneratorKind::Galaxy,
        },
        DatasetSpec {
            name: "FOF56M3D",
            paper_n: "56M",
            dim: 3,
            default_n: 80_000,
            params: DbscanParams::new(1.4, 6),
            kind: GeneratorKind::Galaxy,
        },
        DatasetSpec {
            name: "MPAGD100M3D",
            paper_n: "100M",
            dim: 3,
            default_n: 100_000,
            params: DbscanParams::new(0.7, 5),
            kind: GeneratorKind::Galaxy,
        },
        DatasetSpec {
            name: "KDDB145K14D",
            paper_n: "145K",
            dim: 14,
            default_n: 10_000,
            params: DbscanParams::new(45.0, 5),
            kind: GeneratorKind::KddBio,
        },
        DatasetSpec {
            name: "KDDB145K24D",
            paper_n: "143K",
            dim: 24,
            default_n: 8_000,
            params: DbscanParams::new(70.0, 5),
            kind: GeneratorKind::KddBio,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_has_paper_rows() {
        let specs = paper_table2_specs();
        assert_eq!(specs.len(), 8);
        assert_eq!(specs[0].name, "3DSRN");
        assert_eq!(specs[6].dim, 14);
    }

    #[test]
    fn generation_respects_spec() {
        for spec in paper_table2_specs() {
            let d = spec.generate_n(500, 42);
            assert_eq!(d.len(), 500);
            assert_eq!(d.dim(), spec.dim, "{}", spec.name);
        }
    }

    #[test]
    fn specs_cluster_sensibly() {
        // Each analogue must produce a non-degenerate clustering at its
        // catalogued parameters: some clusters, not everything noise, not
        // one giant cluster swallowing all points.
        for spec in paper_table2_specs() {
            let n = 3_000.min(spec.default_n);
            let d = spec.generate_n(n, 1);
            let out = mudbscan::MuDbscan::from_params(spec.params).run(&d);
            assert!(
                out.clustering.n_clusters >= 1,
                "{}: no clusters at eps={}",
                spec.name,
                spec.params.eps
            );
            let noise = out.clustering.noise_count() as f64 / n as f64;
            assert!(noise < 0.9, "{}: {:.0}% noise", spec.name, noise * 100.0);
        }
    }
}
