//! Ablation: micro-cluster construction — the 2ε deferral rule
//! (DESIGN.md §7.1) and STR vs incremental auxiliary trees (§7.4).

use criterion::{criterion_group, criterion_main, Criterion};
use mcs::{build_micro_clusters, BuildOptions};
use metrics::Counters;
use std::hint::black_box;

fn bench_construction(c: &mut Criterion) {
    let dataset = data::galaxy(20_000, 3, 11);
    let eps = 0.8;

    let mut g = c.benchmark_group("mc_construction");
    let variants = [
        ("default", BuildOptions::default()),
        ("no_2eps_deferral", BuildOptions { two_eps_deferral: false, ..Default::default() }),
        ("incremental_aux", BuildOptions { str_aux: false, ..Default::default() }),
    ];
    for (name, opts) in variants {
        g.bench_function(name, |b| {
            b.iter(|| {
                let counters = Counters::new();
                let t = build_micro_clusters(&dataset, eps, &opts, &counters);
                black_box(t.mc_count())
            })
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_construction
}
criterion_main!(benches);
