//! Property tests: R-tree queries must agree with linear scans for any
//! point set, any query center and any radius, under both construction
//! methods.

use geom::{dist_euclidean, Mbr};
use proptest::prelude::*;
use rtree::{RTree, RTreeConfig};

fn points(dim: usize, max_n: usize) -> impl Strategy<Value = Vec<Vec<f64>>> {
    prop::collection::vec(prop::collection::vec(-100.0..100.0f64, dim), 1..max_n)
}

fn scan_sphere(pts: &[Vec<f64>], c: &[f64], r: f64) -> Vec<u32> {
    let mut v: Vec<u32> = pts
        .iter()
        .enumerate()
        .filter(|(_, p)| dist_euclidean(c, p) < r)
        .map(|(i, _)| i as u32)
        .collect();
    v.sort_unstable();
    v
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn incremental_sphere_query_exact(
        pts in points(3, 200),
        c in prop::collection::vec(-100.0..100.0f64, 3),
        r in 0.1..150.0f64,
    ) {
        let mut t = RTree::with_config(3, RTreeConfig::new(8, 4));
        for (i, p) in pts.iter().enumerate() {
            t.insert_point(i as u32, p);
        }
        t.check_invariants();
        let mut got = t.sphere_neighbors(&c, r);
        got.sort_unstable();
        prop_assert_eq!(got, scan_sphere(&pts, &c, r));
    }

    #[test]
    fn bulk_sphere_query_exact(
        pts in points(2, 300),
        c in prop::collection::vec(-100.0..100.0f64, 2),
        r in 0.1..150.0f64,
    ) {
        let items = pts.iter().enumerate().map(|(i, p)| (i as u32, p.clone()));
        let t = RTree::bulk_load_points(2, RTreeConfig::new(8, 4), items);
        t.check_invariants();
        let mut got = t.sphere_neighbors(&c, r);
        got.sort_unstable();
        prop_assert_eq!(got, scan_sphere(&pts, &c, r));
    }

    #[test]
    fn box_query_exact(
        pts in points(2, 200),
        lo in prop::collection::vec(-100.0..0.0f64, 2),
        ext in prop::collection::vec(0.0..100.0f64, 2),
    ) {
        let hi: Vec<f64> = lo.iter().zip(&ext).map(|(l, e)| l + e).collect();
        let q = Mbr::new(lo, hi);
        let mut t = RTree::new(2);
        for (i, p) in pts.iter().enumerate() {
            t.insert_point(i as u32, p);
        }
        let mut got = Vec::new();
        t.search_box(&q, |i| got.push(i));
        got.sort_unstable();
        let mut want: Vec<u32> = pts
            .iter()
            .enumerate()
            .filter(|(_, p)| q.contains_point(p))
            .map(|(i, _)| i as u32)
            .collect();
        want.sort_unstable();
        prop_assert_eq!(got, want);
    }

    #[test]
    fn tree_mbr_covers_everything(pts in points(3, 150)) {
        let mut t = RTree::new(3);
        for (i, p) in pts.iter().enumerate() {
            t.insert_point(i as u32, p);
        }
        let m = t.mbr().unwrap().clone();
        for p in &pts {
            prop_assert!(m.contains_point(p));
        }
    }
}
