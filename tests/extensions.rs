//! Integration across the extension algorithms: batch, parallel,
//! streaming, distributed and OPTICS-extracted clusterings must all
//! coincide on the canonical quantities for the same data + parameters.

use geom::DbscanParams;
use mudbscan::{Clustering, MuDbscan, ParMuDbscan};
use optics::{extract_dbscan, Optics};
use stream::StreamingMuDbscan;

fn canon(c: &Clustering) -> (usize, usize, Vec<bool>) {
    (c.n_clusters, c.noise_count(), c.is_core.clone())
}

#[test]
fn five_ways_to_the_same_clustering() {
    let dataset = data::galaxy(3_000, 3, 101);
    let params = DbscanParams::new(0.8, 5);

    let batch = MuDbscan::from_params(params).run(&dataset).clustering;

    let par = ParMuDbscan::from_params(params, 3).run(&dataset).clustering;
    assert_eq!(canon(&par), canon(&batch), "parallel");

    let mut s = StreamingMuDbscan::empty(3, params);
    s.extend_from(&dataset);
    let streamed = s.snapshot();
    assert_eq!(canon(&streamed), canon(&batch), "streaming");

    let d = dist::MuDbscanD::from_params(params, dist::DistConfig::new(6))
        .run(&dataset)
        .unwrap()
        .clustering;
    assert_eq!(canon(&d), canon(&batch), "distributed");

    let optics_out = Optics::from_params(params).run(&dataset);
    let extracted = extract_dbscan(&optics_out, &dataset, params.eps);
    assert_eq!(canon(&extracted), canon(&batch), "optics extraction");
}

#[test]
fn quality_indices_confirm_equivalence() {
    let dataset = data::road_network(2_500, 33);
    let params = DbscanParams::new(0.4, 5);
    let a = MuDbscan::from_params(params).run(&dataset).clustering;
    let b = ParMuDbscan::from_params(params, 4).run(&dataset).clustering;
    // Border assignment is order-dependent (threads race for contested
    // borders), so compare the CANONICAL core partition: mask non-core
    // points to noise on both sides; the masked partitions must then be
    // identical and score exactly 1.0 on both indices.
    let core_only = |c: &Clustering| {
        let mut m = c.clone();
        for (p, l) in m.labels.iter_mut().enumerate() {
            if !m.is_core[p] {
                *l = mudbscan::NOISE;
            }
        }
        m
    };
    let (ca, cb) = (core_only(&a), core_only(&b));
    assert!((mudbscan::adjusted_rand_index(&ca, &cb) - 1.0).abs() < 1e-12);
    assert!((mudbscan::normalized_mutual_information(&ca, &cb) - 1.0).abs() < 1e-9);
    // And on the full labelings the agreement must still be near-perfect
    // (only contested borders may differ).
    assert!(mudbscan::adjusted_rand_index(&a, &b) > 0.98);
}

#[test]
fn eps_suggestion_feeds_the_pipeline() {
    let dataset = data::gaussian_mixture(2_000, 2, 3, 1.0, 0.05, 9);
    let min_pts = 5;
    let eps = mudbscan::suggest_eps(&dataset, min_pts, 2).expect("knee exists");
    assert!(eps > 0.0 && eps.is_finite());
    let c = MuDbscan::from_params(DbscanParams::new(eps, min_pts)).run(&dataset).clustering;
    // The k-dist knee on three well-separated blobs must find real
    // structure: at least one cluster, and the blobs not all merged with
    // the background into a single everything-cluster.
    assert!(c.n_clusters >= 1);
    assert!(c.n_clusters <= 12, "eps suggestion fragmenting: {}", c.n_clusters);
}

#[test]
fn streaming_matches_distributed_on_catalog_analogue() {
    let spec = &data::paper_table2_specs()[0]; // 3DSRN
    let dataset = spec.generate_n(2_000, 5);
    let params = spec.params;
    let mut s = StreamingMuDbscan::empty(dataset.dim(), params);
    s.extend_from(&dataset);
    let streamed = s.snapshot();
    let d = dist::MuDbscanD::from_params(params, dist::DistConfig::new(4))
        .run(&dataset)
        .unwrap()
        .clustering;
    assert_eq!(canon(&streamed), canon(&d));
}
