//! The generic distributed driver: local clustering per rank inside BSP
//! supersteps, cross-partition edge collection, and the exact merge
//! replay.

use cluster_sim::{Bsp, CommModel, Envelope, ExecMode, FaultStats, RankClock};
use geom::{Dataset, DbscanParams, PointId};
use metrics::{Counters, PhaseTimer, Stopwatch};
use mudbscan::{Clustering, NOISE};
use partition::Shard;
use rtree::{RTree, RTreeConfig};
use unionfind::UnionFind;

use crate::recovery::{Checkpoint, FaultConfig};

/// What a local clustering stage returns for one rank.
pub struct LocalRun {
    /// Clustering over the rank's combined (own + halo) points; own
    /// points come first.
    pub clustering: Clustering,
    /// The rank's wall-clock phase split-up.
    pub phases: PhaseTimer,
    /// The rank's operation counters.
    pub counters: Counters,
    /// The rank's estimated peak structure bytes.
    pub peak_heap_bytes: usize,
}

/// A failed distributed run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DistError {
    /// A rank's local stage failed (message carries rank + cause) — e.g.
    /// GridDBSCAN exceeding its memory budget.
    Local(usize, String),
}

impl std::fmt::Display for DistError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DistError::Local(rank, msg) => write!(f, "rank {rank}: {msg}"),
        }
    }
}

impl std::error::Error for DistError {}

/// Result of a distributed run.
#[derive(Debug)]
pub struct DistOutput {
    /// The global clustering over all `n` points.
    pub clustering: Clustering,
    /// Per-phase virtual makespans: `partitioning`, `halo_exchange`,
    /// the local phases (per-phase maxima over ranks), and `merging`.
    pub phases: PhaseTimer,
    /// Total virtual runtime *excluding* partitioning and halo exchange —
    /// the quantity the paper reports ("we do not include data
    /// partitioning ... while computing the speedup").
    pub runtime_secs: f64,
    /// Bytes communicated (partitioning + halos + merge edges).
    pub comm_bytes: u64,
    /// Aggregated operation counters over all ranks.
    pub counters: Counters,
    /// Number of ranks.
    pub ranks: usize,
    /// Maximum estimated per-rank structure bytes (for capacity claims).
    pub max_rank_heap_bytes: usize,
    /// Per-rank virtual-clock totals (compute/comm split and bytes),
    /// indexed by rank — the per-rank BSP timeline summary the bench
    /// schema (v3) reports.
    pub rank_clocks: Vec<RankClock>,
    /// BSP supersteps executed.
    pub supersteps: usize,
    /// Fault/recovery counters (all zero on a fault-free run). The
    /// integer fields replay deterministically for a fixed plan seed.
    pub fault_stats: FaultStats,
}

/// A cross-partition candidate pair: own point `x` (with its exact core
/// flag) strictly within ε of halo point `y`.
type Edge = (PointId, PointId, bool);

struct RankState {
    shard: Shard,
    combined: Dataset,
    own_n: usize,
    local: Option<Result<LocalRun, String>>,
    edges: Vec<Edge>,
    /// Exact core/assigned flags for this rank's own points, filled after
    /// the local stage.
    own_core: Vec<bool>,
    heap_bytes: usize,
    /// Decoded cross-partition edges received during the merge exchange
    /// (only rank 0, which hosts the union replay, fills this). The
    /// replay consumes THESE edges — delivery faults on the exchange are
    /// load-bearing, not cosmetic.
    merge_edges: Vec<Edge>,
}

/// Run a distributed DBSCAN: `local` clusters one rank's combined
/// dataset; the driver handles edge collection and the merge.
///
/// `shards` comes from a partitioner ([`partition::kd_partition`] or
/// [`crate::hpdbscan`]'s cell partitioner); `part_phases` are its virtual
/// times, folded into the output phase report.
///
/// With `faults`, the BSP engine injects the configured [`FaultConfig`]
/// and this driver recovers every crash: a rank lost during the local
/// stage re-requests its ε-halo (idempotent — the merge is query-free)
/// and re-executes the deterministic `local` closure; a rank lost during
/// edge collection restores its post-local-stage [`Checkpoint`] and
/// re-runs only the edge queries. Either way the recovered output is
/// bit-identical to the fault-free run, and all recovery work is charged
/// to the virtual clock under a `recovery` phase.
#[allow(clippy::too_many_arguments)] // mirrors the phases of an MPI driver: data, partitioning output, params, engine config, fault options, local stage
pub fn run_distributed(
    n_total: usize,
    shards: Vec<Shard>,
    part_phases: PhaseTimer,
    part_comm_bytes: u64,
    params: &DbscanParams,
    mode: ExecMode,
    comm: CommModel,
    faults: Option<&FaultConfig>,
    local: impl Fn(usize, &Dataset, usize) -> Result<LocalRun, String> + Sync,
) -> Result<DistOutput, DistError> {
    let p = shards.len();
    let states: Vec<RankState> = shards
        .into_iter()
        .map(|shard| {
            let mut combined = shard.data.clone();
            combined.extend_from(&shard.halo);
            let own_n = shard.len();
            RankState {
                shard,
                combined,
                own_n,
                local: None,
                edges: Vec::new(),
                own_core: Vec::new(),
                heap_bytes: 0,
                merge_edges: Vec::new(),
            }
        })
        .collect();

    let run_span = obs::span!("dist");
    let mut bsp = Bsp::new(states).with_mode(mode).with_comm(comm);
    if let Some(fc) = faults {
        bsp = bsp.with_fault_plan(fc.plan.clone()).with_retry(fc.retry);
    }

    // The local-stage superstep body — shared with crash recovery, which
    // re-executes exactly this closure on the replacement rank.
    let local_step = |r: usize, s: &mut RankState| {
        let run = local(r, &s.combined, s.own_n);
        if let Ok(run) = &run {
            s.own_core = run.clustering.is_core[..s.own_n].to_vec();
            s.heap_bytes = run.peak_heap_bytes;
        }
        s.local = Some(run);
    };

    // Local clustering superstep.
    let local_span = obs::span!("local_clustering");
    bsp.phase("local_clustering");
    bsp.run(local_step);

    // Recover ranks that crashed during local clustering: the
    // replacement re-requests the ε-halo (its owned partition is
    // durable) and re-runs the deterministic local stage from scratch.
    for r in bsp.crashed_ranks() {
        bsp.phase("recovery");
        let halo_bytes = {
            let s = &bsp.states()[r];
            (s.shard.halo.len() * s.shard.halo.dim() * 8 + s.shard.halo_ids.len() * 4) as u64
        };
        bsp.charge_recovery_comm(r, halo_bytes);
        bsp.recover(r, local_step);
    }
    for (r, s) in bsp.states().iter().enumerate() {
        if let Some(Err(msg)) = &s.local {
            return Err(DistError::Local(r, msg.clone()));
        }
    }

    drop(local_span);

    // Snapshot every rank's local result so a crash later in the
    // program restores state instead of recomputing the whole local
    // stage (capture itself models an async write to stable storage and
    // is not charged; the restore transfer is).
    let checkpoints: Vec<Option<Checkpoint>> = if faults.is_some() {
        bsp.states()
            .iter()
            .map(|s| match &s.local {
                Some(Ok(run)) => Some(Checkpoint::capture(run)),
                _ => None,
            })
            .collect()
    } else {
        Vec::new()
    };

    // Edge collection superstep: index own points, query each halo point.
    let merge_span = obs::span!("merging");
    bsp.phase("merging");
    let edge_step = |_r: usize, s: &mut RankState| {
        if s.shard.halo_ids.is_empty() {
            return;
        }
        let own_tree = RTree::bulk_load_points(
            s.combined.dim(),
            RTreeConfig::default(),
            (0..s.own_n).map(|i| (i as u32, s.shard.data.point(i as u32).to_vec())),
        );
        let run = match s.local.as_ref() {
            Some(Ok(run)) => run,
            _ => return,
        };
        for (h, &hid) in s.shard.halo_ids.iter().enumerate() {
            let coords = s.shard.halo.point(h as u32);
            let mut hits = Vec::new();
            let cost = own_tree.search_sphere(coords, params.eps, |x| hits.push(x));
            // Halo probes are range queries like any other: count their
            // node visits and MBR tests too (accounting hole until v3).
            run.counters.count_range_query();
            run.counters.count_dists(cost.mbr_tests);
            run.counters.count_node_visits(cost.nodes_visited.max(1));
            if obs::enabled() {
                obs::record_hist("halo/node_visits", cost.nodes_visited.max(1));
            }
            for x in hits {
                let gx = s.shard.ids[x as usize];
                let x_core = run.clustering.is_core[x as usize];
                s.edges.push((gx, hid, x_core));
            }
        }
    };
    bsp.run(edge_step);

    // Recover ranks that crashed during edge collection: fail-stop lost
    // the rank's volatile memory, so restore the post-local-stage
    // checkpoint (charged as a transfer) and re-run only the edge
    // queries.
    for r in bsp.crashed_ranks() {
        bsp.phase("recovery");
        let ck = checkpoints[r].as_ref().expect("rank checkpointed after the local stage").clone();
        {
            let s = &mut bsp.states_mut()[r];
            s.local = None;
            s.own_core.clear();
            s.edges.clear();
        }
        bsp.charge_recovery_comm(r, ck.byte_size() as u64);
        bsp.recover(r, |r, s| {
            let run = ck.restore();
            s.own_core = run.clustering.is_core[..s.own_n].to_vec();
            s.heap_bytes = run.peak_heap_bytes;
            s.local = Some(Ok(run));
            edge_step(r, s);
        });
    }

    // Exchange edges (models the all-to-all of merge pairs; routed to
    // rank 0, which hosts the union replay in this simulation). Rank 0
    // decodes what it actually RECEIVED — the merge below runs over the
    // delivered edges, so drops/duplicates/reorders must be healed by
    // the delivery layer for the replay to stay exact.
    bsp.phase("merging");
    bsp.exchange(
        |_r, s: &mut RankState| {
            if s.edges.is_empty() {
                Vec::new()
            } else {
                let flat: Vec<u64> = s
                    .edges
                    .iter()
                    .map(|&(x, y, c)| ((x as u64) << 33) | ((y as u64) << 1) | c as u64)
                    .collect();
                vec![Envelope::new(0, flat)]
            }
        },
        |r, s: &mut RankState, inbox: Vec<(usize, Vec<u64>)>| {
            if r == 0 {
                for (_src, flat) in inbox {
                    s.merge_edges.extend(flat.into_iter().map(|v| {
                        ((v >> 33) as PointId, ((v >> 1) & 0xffff_ffff) as PointId, v & 1 == 1)
                    }));
                }
            }
        },
    );

    // Global merge replay (orchestrator side, timed into "merging").
    let sw = Stopwatch::start();
    let mut is_core = vec![false; n_total];
    let mut assigned = vec![false; n_total];
    let mut uf = UnionFind::new(n_total);
    let counters = Counters::new();

    // Exact flags + seeds from every rank's own points.
    for s in bsp.states() {
        let run = match s.local.as_ref() {
            Some(Ok(run)) => run,
            _ => unreachable!("checked above"),
        };
        let labels = &run.clustering.labels;
        // Seed the global forest with each local cluster: all OWN members,
        // plus locally-core HALO members. A locally-core halo point is
        // truly core (a rank sees a subset of a halo point's true
        // neighbourhood, so it can only under-mark), and it reached the
        // local cluster through a chain of truly-core pivots — so these
        // unions are always valid. Crucially, they carry own *border*
        // points that were attached via a halo-core pivot into the right
        // global set; skipping them (and relying on the edge replay) loses
        // those points, because their `assigned` flag blocks the
        // border-guarded edge rule.
        let mut rep: std::collections::HashMap<u32, PointId> = std::collections::HashMap::new();
        for (i, &gid) in s.shard.ids.iter().enumerate() {
            is_core[gid as usize] = run.clustering.is_core[i];
            let l = labels[i];
            if l == NOISE {
                continue;
            }
            assigned[gid as usize] = true;
            match rep.entry(l) {
                std::collections::hash_map::Entry::Occupied(e) => {
                    uf.union(*e.get(), gid);
                    counters.count_union();
                }
                std::collections::hash_map::Entry::Vacant(e) => {
                    e.insert(gid);
                }
            }
        }
        for (h, &gid) in s.shard.halo_ids.iter().enumerate() {
            let i = s.own_n + h;
            if !run.clustering.is_core[i] {
                continue; // non-core halo points: the owner's word stands
            }
            let l = labels[i];
            if l == NOISE {
                continue;
            }
            match rep.entry(l) {
                std::collections::hash_map::Entry::Occupied(e) => {
                    uf.union(*e.get(), gid);
                    counters.count_union();
                }
                std::collections::hash_map::Entry::Vacant(e) => {
                    e.insert(gid);
                }
            }
        }
        counters.absorb(&run.counters);
    }

    // Replay the cross-partition edges with exact flags — over the edges
    // rank 0 actually received in the exchange (delivery order is the
    // per-sender send order, so the border-guarded unions replay
    // identically to a fault-free run).
    for &(x, y, x_core) in &bsp.states()[0].merge_edges {
        debug_assert_eq!(is_core[x as usize], x_core);
        let y_core = is_core[y as usize];
        if x_core && y_core {
            uf.union(x, y);
            counters.count_union();
        } else if x_core && !assigned[y as usize] {
            uf.union(x, y);
            counters.count_union();
            assigned[y as usize] = true;
        } else if y_core && !x_core && !assigned[x as usize] {
            uf.union(y, x);
            counters.count_union();
            assigned[x as usize] = true;
        }
    }
    let replay_secs = sw.secs();
    drop(merge_span);

    // Assemble the phase report: partitioning + per-phase local maxima +
    // merging.
    let mut phases = part_phases;
    let mut local_max = PhaseTimer::new();
    let mut max_heap = 0usize;
    for s in bsp.states() {
        if let Some(Ok(run)) = &s.local {
            local_max.max_merge(&run.phases);
        }
        max_heap = max_heap.max(s.heap_bytes);
    }
    for (name, d) in local_max.iter() {
        phases.add(name, d);
    }
    let merging_secs = bsp.phase_times().secs("merging") + replay_secs;
    phases.add_secs("merging", merging_secs);
    let recovery_secs = bsp.phase_times().secs("recovery");
    if recovery_secs > 0.0 {
        phases.add_secs("recovery", recovery_secs);
    }

    let runtime_secs =
        phases.total_secs() - phases.secs("partitioning") - phases.secs("halo_exchange");

    let comm_bytes = part_comm_bytes + bsp.comm_bytes();
    if obs::enabled() {
        obs::record_count("dist/ranks", p as u64);
        obs::record_count("dist/comm_bytes", comm_bytes);
        obs::record_count("dist/edges", bsp.states().iter().map(|s| s.edges.len() as u64).sum());
        obs::record_count(
            "dist/halo_points",
            bsp.states().iter().map(|s| s.shard.halo_ids.len() as u64).sum(),
        );
        obs::record_value("dist/virtual_makespan_secs", bsp.makespan());
        obs::record_value("dist/merge_replay_secs", replay_secs);
    }
    let fault_stats = bsp.fault_stats().clone();
    if obs::enabled() && !fault_stats.is_quiet() {
        obs::record_value("recovery/virtual_secs", phases.secs("recovery"));
        obs::record_count("recovery/bytes", fault_stats.recovery_comm_bytes);
    }
    drop(run_span);
    let rank_clocks = bsp.rank_clocks().to_vec();
    let supersteps = bsp.steps();
    let clustering = Clustering::from_union_find(&mut uf, is_core);

    Ok(DistOutput {
        clustering,
        phases,
        runtime_secs,
        comm_bytes,
        counters,
        ranks: p,
        max_rank_heap_bytes: max_heap,
        rank_clocks,
        supersteps,
        fault_stats,
    })
}
