//! ASCII rendering of traces: a per-lane timeline and a flamegraph-style
//! aggregation, so a trace is readable in the terminal without loading
//! it into Perfetto.
//!
//! Both renderers consume a drained [`Trace`]. The timeline draws one
//! row per reconstructed wall span (grouped by thread, nested spans
//! indented by depth) plus one row per BSP rank on the virtual clock
//! (`#` = compute, `~` = comm), which makes per-rank load imbalance
//! visible as ragged bar ends. The flamegraph aggregates wall slices by
//! slash-joined path and prints an indented tree with bars scaled to the
//! total.

use crate::trace::{Event, Trace, WallSlice};
use std::collections::BTreeMap;

/// Per-rank accumulator for the virtual-clock section: `(start, end,
/// is_comm)` slices plus total compute and comm nanoseconds.
type RankLane = (Vec<(u64, u64, bool)>, u64, u64);

fn fmt_secs(ns: u64) -> String {
    let s = ns as f64 / 1e9;
    if s >= 1.0 {
        format!("{s:.3} s")
    } else if s >= 1e-3 {
        format!("{:.3} ms", s * 1e3)
    } else {
        format!("{:.1} µs", s * 1e6)
    }
}

/// Draw `[start, end)` (clamped) as `ch` into a row of `width` cells
/// covering `[t0, t1)`. Always marks at least one cell so short slices
/// stay visible.
fn fill(row: &mut [u8], ch: u8, start: u64, end: u64, t0: u64, t1: u64) {
    let width = row.len();
    if width == 0 || t1 <= t0 {
        return;
    }
    let scale = width as f64 / (t1 - t0) as f64;
    let a = ((start.saturating_sub(t0)) as f64 * scale) as usize;
    let b = ((end.saturating_sub(t0)) as f64 * scale).ceil() as usize;
    let (a, b) = (a.min(width - 1), b.clamp(a + 1, width));
    for cell in &mut row[a..b] {
        *cell = ch;
    }
}

/// Render a per-span timeline: wall section (one row per span, grouped
/// by thread) then a virtual-clock section (one row per BSP rank).
/// `width` is the bar width in characters. At most `max_rows` wall rows
/// are printed (longest-first within each thread); the rest are elided
/// with a note, so huge traces stay terminal-sized.
pub fn render_timeline(trace: &Trace, width: usize, max_rows: usize) -> String {
    let width = width.max(8);
    let mut out = String::new();

    // ---- wall section -------------------------------------------------
    let slices = trace.wall_slices();
    if !slices.is_empty() {
        let t0 = slices.iter().map(|s| s.start_ns).min().unwrap();
        let t1 = slices.iter().map(|s| s.end_ns).max().unwrap().max(t0 + 1);
        out.push_str(&format!(
            "wall clock — {} span(s), window {}\n",
            slices.len(),
            fmt_secs(t1 - t0)
        ));
        let mut by_tid: BTreeMap<u32, Vec<&WallSlice>> = BTreeMap::new();
        for s in &slices {
            by_tid.entry(s.tid).or_default().push(s);
        }
        let mut printed = 0usize;
        let mut elided = 0usize;
        let label_w = slices
            .iter()
            .map(|s| s.path.rsplit('/').next().unwrap_or(&s.path).len() + 2 * s.depth)
            .max()
            .unwrap_or(8)
            .min(40);
        for (tid, rows) in &by_tid {
            out.push_str(&format!("thread t{tid}\n"));
            for s in rows {
                if printed >= max_rows {
                    elided += 1;
                    continue;
                }
                printed += 1;
                let mut bar = vec![b' '; width];
                fill(&mut bar, b'=', s.start_ns, s.end_ns, t0, t1);
                let leaf = s.path.rsplit('/').next().unwrap_or(&s.path);
                let label = format!("{}{}", "  ".repeat(s.depth), leaf);
                out.push_str(&format!(
                    "  {label:<label_w$} |{}| {}\n",
                    String::from_utf8_lossy(&bar),
                    fmt_secs(s.end_ns - s.start_ns)
                ));
            }
        }
        if elided > 0 {
            out.push_str(&format!("  … {elided} more span(s) elided\n"));
        }
    }

    // ---- virtual (BSP rank) section -----------------------------------
    let virt = trace.virtual_slices();
    if !virt.is_empty() {
        let mut t1 = 1u64;
        let mut ranks: BTreeMap<u32, RankLane> = BTreeMap::new();
        for ev in &virt {
            if let Event::Virtual { track, cat, start_ns, dur_ns, .. } = &ev.event {
                let end = start_ns + dur_ns;
                t1 = t1.max(end);
                let e = ranks.entry(*track).or_default();
                let is_comm = cat == "comm";
                e.0.push((*start_ns, end, is_comm));
                if is_comm {
                    e.2 += dur_ns;
                } else {
                    e.1 += dur_ns;
                }
            }
        }
        out.push_str(&format!(
            "bsp virtual clock — {} rank(s), makespan {} (# compute, ~ comm)\n",
            ranks.len(),
            fmt_secs(t1)
        ));
        for (rank, (segs, compute, comm)) in &ranks {
            let mut bar = vec![b' '; width];
            // Draw compute first so comm (the barrier tail) stays visible
            // where they quantise to the same cell.
            for &(a, b, _) in segs.iter().filter(|s| !s.2) {
                fill(&mut bar, b'#', a, b, 0, t1);
            }
            for &(a, b, _) in segs.iter().filter(|s| s.2) {
                fill(&mut bar, b'~', a, b, 0, t1);
            }
            out.push_str(&format!(
                "  rank {rank:<3} |{}| compute {} comm {}\n",
                String::from_utf8_lossy(&bar),
                fmt_secs(*compute),
                fmt_secs(*comm)
            ));
        }
    }

    if out.is_empty() {
        out.push_str("(empty trace)\n");
    }
    out
}

/// Render a flamegraph-style aggregation of the wall spans: paths merged
/// across threads, children indented under parents, bars scaled to the
/// largest root total.
pub fn render_flame(trace: &Trace, width: usize) -> String {
    let width = width.max(8);
    let mut totals: BTreeMap<String, (u64, u64)> = BTreeMap::new(); // path -> (ns, count)
    for s in trace.wall_slices() {
        let e = totals.entry(s.path.clone()).or_default();
        e.0 += s.end_ns - s.start_ns;
        e.1 += 1;
    }
    if totals.is_empty() {
        return "(no wall spans)\n".to_string();
    }
    let root_max = totals
        .iter()
        .filter(|(p, _)| !p.contains('/'))
        .map(|(_, (ns, _))| *ns)
        .max()
        .unwrap_or_else(|| totals.values().map(|(ns, _)| *ns).max().unwrap())
        .max(1);
    let label_w = totals
        .keys()
        .map(|p| {
            let depth = p.matches('/').count();
            p.rsplit('/').next().unwrap().len() + 2 * depth
        })
        .max()
        .unwrap()
        .min(48);
    let mut out = String::new();
    // BTreeMap order is lexicographic on the full path, which places
    // children directly under their parent.
    for (path, (ns, count)) in &totals {
        let depth = path.matches('/').count();
        let leaf = path.rsplit('/').next().unwrap();
        let label = format!("{}{}", "  ".repeat(depth), leaf);
        let bar_len = ((*ns as f64 / root_max as f64) * width as f64).round() as usize;
        let bar = "█".repeat(bar_len.clamp(1, width));
        out.push_str(&format!("{label:<label_w$} {bar:<width$} {:>10}  ×{count}\n", fmt_secs(*ns)));
    }
    out
}

/// Render labelled horizontal meters: one row per `(label, value)`,
/// bars scaled to the largest value. This is the dashboard primitive
/// behind `serve_top` — values are whatever the caller polled (ops per
/// window, latency percentiles), already reduced to a number.
pub fn render_meters(rows: &[(String, f64)], width: usize) -> String {
    let width = width.max(8);
    if rows.is_empty() {
        return "(no meters)\n".to_string();
    }
    let max = rows.iter().map(|(_, v)| *v).fold(0.0f64, f64::max).max(f64::MIN_POSITIVE);
    let label_w = rows.iter().map(|(l, _)| l.len()).max().unwrap().min(40);
    let mut out = String::new();
    for (label, v) in rows {
        let frac = (v / max).clamp(0.0, 1.0);
        let bar_len = (frac * width as f64).round() as usize;
        let bar_len = if *v > 0.0 { bar_len.max(1) } else { 0 };
        let bar = "█".repeat(bar_len);
        let value =
            if *v == v.trunc() && v.abs() < 9e15 { format!("{v}") } else { format!("{v:.2}") };
        out.push_str(&format!("{label:<label_w$} {bar:<width$} {value:>12}\n"));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::TaggedEvent;

    fn mk(tid: u32, seq: u64, event: Event) -> TaggedEvent {
        TaggedEvent { tid, seq, event }
    }

    fn sample() -> Trace {
        Trace {
            events: vec![
                mk(0, 0, Event::Begin { t_ns: 0, name: "mudbscan".into() }),
                mk(0, 1, Event::Begin { t_ns: 100, name: "tree_construction".into() }),
                mk(0, 2, Event::End { t_ns: 4_000 }),
                mk(0, 3, Event::End { t_ns: 10_000 }),
                mk(
                    0,
                    4,
                    Event::Virtual {
                        track: 0,
                        name: "local".into(),
                        cat: "compute".into(),
                        start_ns: 0,
                        dur_ns: 8_000,
                    },
                ),
                mk(
                    0,
                    5,
                    Event::Virtual {
                        track: 1,
                        name: "local".into(),
                        cat: "compute".into(),
                        start_ns: 0,
                        dur_ns: 2_000,
                    },
                ),
                mk(
                    0,
                    6,
                    Event::Virtual {
                        track: 0,
                        name: "local".into(),
                        cat: "comm".into(),
                        start_ns: 8_000,
                        dur_ns: 1_000,
                    },
                ),
            ],
        }
    }

    #[test]
    fn timeline_has_wall_and_virtual_sections() {
        let text = render_timeline(&sample(), 40, 100);
        assert!(text.contains("wall clock"), "{text}");
        assert!(text.contains("tree_construction"), "{text}");
        assert!(text.contains("bsp virtual clock"), "{text}");
        assert!(text.contains("rank 0"), "{text}");
        assert!(text.contains("rank 1"), "{text}");
        assert!(text.contains('#'), "{text}");
        assert!(text.contains('~'), "{text}");
    }

    #[test]
    fn timeline_elides_past_max_rows() {
        let text = render_timeline(&sample(), 40, 1);
        assert!(text.contains("elided"), "{text}");
    }

    #[test]
    fn flame_aggregates_by_path() {
        let text = render_flame(&sample(), 30);
        assert!(text.contains("mudbscan"), "{text}");
        assert!(text.contains("  tree_construction"), "{text}");
        assert!(text.contains("×1"), "{text}");
    }

    #[test]
    fn meters_scale_to_the_largest_value() {
        let rows = vec![
            ("inserts".to_string(), 100.0),
            ("deletes".to_string(), 25.0),
            ("idle".to_string(), 0.0),
        ];
        let text = render_meters(&rows, 20);
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].contains(&"█".repeat(20)), "{text}");
        assert!(lines[1].contains(&"█".repeat(5)), "{text}");
        assert!(!lines[2].contains('█'), "zero draws no bar: {text}");
        assert!(lines[0].ends_with("100"), "{text}");
        assert!(render_meters(&[], 20).contains("no meters"));
    }

    #[test]
    fn empty_trace_renders_placeholder() {
        assert!(render_timeline(&Trace::default(), 40, 10).contains("empty"));
        assert!(render_flame(&Trace::default(), 40).contains("no wall spans"));
    }
}
