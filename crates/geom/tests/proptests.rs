//! Property-based tests for the geometric primitives.

use geom::{dist_euclidean, dist_sq, within_sq, Dataset, Mbr};
use proptest::prelude::*;

fn coord() -> impl Strategy<Value = f64> {
    -1.0e3..1.0e3
}

fn point(dim: usize) -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(coord(), dim)
}

proptest! {
    #[test]
    fn dist_is_symmetric(a in point(5), b in point(5)) {
        prop_assert!((dist_sq(&a, &b) - dist_sq(&b, &a)).abs() < 1e-9);
    }

    #[test]
    fn dist_triangle_inequality(a in point(4), b in point(4), c in point(4)) {
        let ab = dist_euclidean(&a, &b);
        let bc = dist_euclidean(&b, &c);
        let ac = dist_euclidean(&a, &c);
        prop_assert!(ac <= ab + bc + 1e-9);
    }

    #[test]
    fn within_sq_agrees_with_dist_sq(a in point(7), b in point(7), t in 0.0..1.0e7) {
        let exact = dist_sq(&a, &b) < t;
        prop_assert_eq!(within_sq(&a, &b, t), exact);
    }

    #[test]
    fn mbr_merge_contains_both(a in point(3), b in point(3)) {
        let ma = Mbr::point(&a);
        let mb = Mbr::point(&b);
        let m = ma.merged(&mb);
        prop_assert!(m.contains(&ma));
        prop_assert!(m.contains(&mb));
        prop_assert!(m.contains_point(&a));
        prop_assert!(m.contains_point(&b));
    }

    #[test]
    fn mbr_min_dist_zero_iff_inside(p in point(3), q in point(3), r in 0.01..10.0f64) {
        let m = Mbr::around_point(&p, r);
        let inside = m.contains_point(&q);
        let d = m.min_dist_sq(&q);
        prop_assert_eq!(inside, d == 0.0);
    }

    #[test]
    fn sphere_box_filter_is_conservative(c in point(3), p in point(3), r in 0.01..100.0f64) {
        // Every point strictly within r of c must be inside reg_r(c), and
        // the ball around c must intersect any box containing such a point.
        if dist_euclidean(&c, &p) < r {
            let reg = Mbr::around_point(&c, r);
            prop_assert!(reg.contains_point(&p));
            prop_assert!(Mbr::point(&p).intersects_sphere(&c, r));
        }
    }

    #[test]
    fn dataset_bounding_box_contains_all(rows in prop::collection::vec(point(3), 1..40)) {
        let d = Dataset::from_rows(&rows);
        let (lo, hi) = d.bounding_box().unwrap();
        let m = Mbr::new(lo, hi);
        for (_, p) in d.iter() {
            prop_assert!(m.contains_point(p));
        }
    }

    #[test]
    fn dataset_gather_preserves_coords(rows in prop::collection::vec(point(2), 1..30)) {
        let d = Dataset::from_rows(&rows);
        let ids: Vec<_> = d.ids().rev().collect();
        let g = d.gather(&ids);
        for (i, &id) in ids.iter().enumerate() {
            prop_assert_eq!(g.point(i as u32), d.point(id));
        }
    }
}
