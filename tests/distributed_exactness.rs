//! Integration: distributed algorithms vs the sequential oracle across
//! rank counts, generators, execution modes and parameters.

use dist::{DistConfig, HpDbscan, MuDbscanD, PdsDbscanD, RpDbscan};
use geom::DbscanParams;
use mudbscan::{check_exact, naive_dbscan, MuDbscan};

#[test]
fn mudbscan_d_exact_across_generators_and_ranks() {
    let cases = [
        (data::galaxy(2_500, 3, 1), DbscanParams::new(0.8, 5)),
        (data::road_network(2_500, 2), DbscanParams::new(0.4, 5)),
        (data::household(2_000, 3), DbscanParams::new(2.5, 6)),
        (data::kddbio(1_200, 14, 4), DbscanParams::new(18.0, 5)),
    ];
    for (i, (dataset, params)) in cases.iter().enumerate() {
        let reference = naive_dbscan(dataset, params);
        for p in [2, 5, 8] {
            let out = MuDbscanD::from_params(*params, DistConfig::new(p)).run(dataset).unwrap();
            let rep = check_exact(&out.clustering, &reference, dataset, params);
            assert!(rep.is_exact(), "case {i} p={p}: {rep:?}");
        }
    }
}

#[test]
fn all_exact_distributed_algorithms_agree() {
    let dataset = data::galaxy(3_000, 3, 9);
    let params = DbscanParams::new(0.8, 5);
    let seq = MuDbscan::from_params(params).run(&dataset).clustering;

    let mu = MuDbscanD::from_params(params, DistConfig::new(6)).run(&dataset).unwrap().clustering;
    let pds = PdsDbscanD::new(params, DistConfig::new(6)).run(&dataset).unwrap().clustering;
    let hp = HpDbscan::new(params, 6).run(&dataset).unwrap().clustering;

    for (tag, c) in [("μDBSCAN-D", &mu), ("PDSDBSCAN-D", &pds), ("HPDBSCAN", &hp)] {
        assert_eq!(c.n_clusters, seq.n_clusters, "{tag} cluster count");
        assert_eq!(c.is_core, seq.is_core, "{tag} core flags");
        assert_eq!(c.noise_count(), seq.noise_count(), "{tag} noise count");
    }
}

#[test]
fn threaded_executor_reproduces_sequential_executor() {
    let dataset = data::road_network(2_000, 5);
    let params = DbscanParams::new(0.4, 5);
    let a = MuDbscanD::from_params(params, DistConfig::new(4)).run(&dataset).unwrap();
    let b = MuDbscanD::from_params(params, DistConfig::new(4).threaded()).run(&dataset).unwrap();
    assert_eq!(a.clustering, b.clustering);
    assert_eq!(a.comm_bytes, b.comm_bytes);
}

#[test]
fn virtual_speedup_shape_holds() {
    // More ranks => shorter virtual runtime (monotone up to noise): the
    // Fig. 7 shape at miniature scale.
    let dataset = data::galaxy(12_000, 3, 13);
    let params = DbscanParams::new(0.8, 5);
    let t1 = MuDbscanD::from_params(params, DistConfig::new(1)).run(&dataset).unwrap().runtime_secs;
    let t8 = MuDbscanD::from_params(params, DistConfig::new(8)).run(&dataset).unwrap().runtime_secs;
    assert!(
        t8 < t1 * 0.6,
        "8 ranks should be much faster than 1 in virtual time: t1={t1:.3}s t8={t8:.3}s"
    );
}

#[test]
fn rpdbscan_is_approximate_but_sane() {
    let dataset = data::gaussian_mixture(3_000, 3, 3, 1.2, 0.05, 8);
    let params = DbscanParams::new(1.0, 5);
    let exact = naive_dbscan(&dataset, &params);
    let approx = RpDbscan::new(params, 4).run(&dataset);
    // Must find a comparable number of clusters for well-separated blobs.
    assert!(approx.clustering.n_clusters >= 1);
    let delta = (approx.clustering.n_clusters as i64 - exact.n_clusters as i64).abs();
    assert!(delta <= exact.n_clusters as i64 + 3, "cluster count wildly off: {delta}");
}

#[test]
fn rpdbscan_quality_quantified_by_ari() {
    // On well-separated blobs the approximate algorithm should agree
    // with exact DBSCAN almost everywhere (high ARI); on no account may
    // it look like random labels (ARI near 0).
    let dataset = data::gaussian_mixture(4_000, 3, 3, 1.0, 0.02, 11);
    let params = DbscanParams::new(1.2, 5);
    let exact = naive_dbscan(&dataset, &params);
    let approx = RpDbscan::new(params, 4).run(&dataset);
    let ari = mudbscan::adjusted_rand_index(&approx.clustering, &exact);
    let nmi = mudbscan::normalized_mutual_information(&approx.clustering, &exact);
    assert!(ari > 0.5, "ARI {ari:.3} too low — approximation broken");
    assert!(nmi > 0.5, "NMI {nmi:.3} too low");
    // And the exact algorithms must score a perfect 1.0.
    let mu = MuDbscan::from_params(params).run(&dataset).clustering;
    assert!((mudbscan::adjusted_rand_index(&mu, &exact) - 1.0).abs() < 1e-12);
}

#[test]
fn merge_counters_aggregate_rank_work() {
    let dataset = data::galaxy(4_000, 3, 17);
    let params = DbscanParams::new(0.8, 5);
    let out = MuDbscanD::from_params(params, DistConfig::new(4)).run(&dataset).unwrap();
    // Every non-saved local point (own + halo copies) ran one query, plus
    // one per halo point during edge collection.
    assert!(out.counters.range_queries() > 0);
    assert!(out.counters.union_ops() > 0);
    assert!(out.counters.dist_computations() > 0);
}
