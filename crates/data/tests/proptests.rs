//! Property tests for dataset IO and generator invariants.

use geom::Dataset;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn bin_roundtrip_any_dataset(
        rows in prop::collection::vec(prop::collection::vec(-1e6..1e6f64, 4), 1..200),
        tag in 0u32..1_000_000,
    ) {
        let d = Dataset::from_rows(&rows);
        let tmp = std::env::temp_dir().join(format!("mudbscan_prop_{tag}_{}.bin", std::process::id()));
        data::io::write_bin(&d, &tmp).unwrap();
        let back = data::io::read_bin(&tmp).unwrap();
        std::fs::remove_file(&tmp).ok();
        prop_assert_eq!(back, d);
    }

    #[test]
    fn csv_roundtrip_close(
        rows in prop::collection::vec(prop::collection::vec(-1e3..1e3f64, 3), 1..100),
        tag in 0u32..1_000_000,
    ) {
        let d = Dataset::from_rows(&rows);
        let tmp = std::env::temp_dir().join(format!("mudbscan_prop_{tag}_{}.csv", std::process::id()));
        data::io::write_csv(&d, &tmp).unwrap();
        let back = data::io::read_csv(&tmp).unwrap();
        std::fs::remove_file(&tmp).ok();
        prop_assert_eq!(back.len(), d.len());
        prop_assert_eq!(back.dim(), d.dim());
        for (i, p) in d.iter() {
            for (a, b) in p.iter().zip(back.point(i)) {
                prop_assert!((a - b).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn generators_are_finite_and_sized(n in 1usize..2_000, dim in 1usize..8, seed: u64) {
        for d in [
            data::uniform(n, dim, seed),
            data::gaussian_mixture(n, dim, 3, 1.5, 0.1, seed),
            data::galaxy(n, dim.max(2), seed),
            data::kddbio(n, dim.max(2), seed),
        ] {
            prop_assert_eq!(d.len(), n);
            prop_assert!(d.validate_finite().is_ok());
        }
    }
}
