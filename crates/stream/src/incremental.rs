//! The insertion-incremental algorithm.

use geom::{Dataset, DbscanParams, PointId};
use mcs::{build_micro_clusters_par, BuildOptions};
use metrics::Counters;
use mudbscan::Clustering;
use rtree::{RTree, RTreeConfig};
use unionfind::UnionFind;

/// One online micro-cluster: a center point and an incrementally built
/// auxiliary R-tree over its members.
struct StreamMc {
    /// Kept for diagnostics/debugging even though queries go through `aux`.
    #[allow(dead_code)]
    center: PointId,
    aux: RTree,
    members: u32,
}

/// Streaming μDBSCAN: insert points one at a time; the clustering of the
/// prefix seen so far is always exactly classical DBSCAN's.
pub struct StreamingMuDbscan {
    params: DbscanParams,
    data: Dataset,
    /// Level-1 R-tree over MC centers (item = MC index).
    level1: RTree,
    mcs: Vec<StreamMc>,
    /// `counts[p] = |N_ε(p)|` over the points inserted so far (self
    /// included).
    counts: Vec<u32>,
    uf: UnionFind,
    is_core: Vec<bool>,
    assigned: Vec<bool>,
    counters: Counters,
}

impl StreamingMuDbscan {
    /// Empty stream for `dim`-dimensional points, for point-at-a-time
    /// ingestion via [`Self::insert`] / [`Self::extend_from`]. When the
    /// whole dataset is available up front, prefer
    /// [`Self::from_dataset`] (parallel bulk load) or the
    /// `mudbscan::prelude::Runner` facade.
    pub fn empty(dim: usize, params: DbscanParams) -> Self {
        Self {
            params,
            data: Dataset::empty(dim),
            level1: RTree::new(dim),
            mcs: Vec::new(),
            counts: Vec::new(),
            uf: UnionFind::new(0),
            is_core: Vec::new(),
            assigned: Vec::new(),
            counters: Counters::new(),
        }
    }

    /// Bulk-load a dataset that is fully available up front, then keep
    /// streaming: the μR-tree is built with the tiled parallel
    /// constructor ([`build_micro_clusters_par`]), every ε-neighbourhood
    /// is computed in parallel against it, and the disjoint-set union
    /// rules are replayed sequentially in id order. The resulting
    /// structure is a valid streaming state — [`Self::snapshot`] is
    /// exactly the batch DBSCAN clustering, and later [`Self::insert`]
    /// calls continue incrementally from it.
    ///
    /// This is the low-level entry point the facade builds on:
    /// applications should run `Runner::new(params)
    /// .family(Family::Streaming)` (one-shot batch) or `Runner::serve`
    /// (long-running concurrent service, `docs/SERVING.md`) and only
    /// reach for this constructor when embedding the engine directly.
    /// Point-at-a-time ingestion via [`Self::empty`] +
    /// [`Self::extend_from`] remains the sequential path.
    pub fn from_dataset(data: &Dataset, params: DbscanParams) -> Self {
        let n = data.len();
        let dim = data.dim();
        let counters = Counters::new();
        let threads = std::thread::available_parallelism().map_or(4, |p| p.get());
        let opts = BuildOptions { parallel: true, ..BuildOptions::default() };
        let (mut tree, _stats) =
            build_micro_clusters_par(data, params.eps, &opts, threads, &counters);
        tree.compute_reachable(data, &counters);

        // Exact ε-neighbourhoods (self included) for every point, in
        // parallel over disjoint id ranges.
        let mut nbhd: Vec<Vec<PointId>> = vec![Vec::new(); n];
        if n > 0 {
            let chunk = n.div_ceil(threads).max(1);
            let tree_ref = &tree;
            std::thread::scope(|scope| {
                let mut handles = Vec::new();
                for (c, slot) in nbhd.chunks_mut(chunk).enumerate() {
                    handles.push(scope.spawn(move || {
                        let local = Counters::new();
                        for (k, dst) in slot.iter_mut().enumerate() {
                            let p = (c * chunk + k) as PointId;
                            let cost = tree_ref.neighborhood(data, p, dst);
                            local.count_range_query();
                            local.count_dists(cost.mbr_tests);
                            local.count_node_visits(cost.nodes_visited.max(1));
                        }
                        local
                    }));
                }
                for h in handles {
                    counters.absorb(&h.join().expect("neighborhood worker panicked"));
                }
            });
        }

        // Replay the same union rules `insert`/`make_core` apply, in id
        // order: deterministic, and exact by the classical DBSCAN
        // argument (border ties may attach differently than some other
        // insertion order, which DBSCAN itself leaves unspecified).
        let min_pts = params.min_pts as u32;
        let counts: Vec<u32> = nbhd.iter().map(|nb| nb.len() as u32).collect();
        let is_core: Vec<bool> = counts.iter().map(|&c| c >= min_pts).collect();
        let mut uf = UnionFind::new(n);
        let mut assigned = vec![false; n];
        for p in 0..n {
            if !is_core[p] {
                continue;
            }
            assigned[p] = true;
            for &q in &nbhd[p] {
                let qi = q as usize;
                if qi == p {
                    continue;
                }
                if is_core[qi] {
                    uf.union(q, p as PointId);
                    counters.count_union();
                } else if !assigned[qi] {
                    uf.union(p as PointId, q);
                    counters.count_union();
                    assigned[qi] = true;
                }
            }
        }

        // Convert the μR-tree into the online representation: the level-1
        // tree maps to MC indices, each MC keeps its (STR-packed) aux
        // tree, and both keep accepting incremental insertions. Every
        // member sits strictly within ε of its MC center, so the online
        // 2ε center-search invariant holds.
        let level1 = RTree::bulk_load_points(
            dim,
            RTreeConfig::default(),
            tree.mcs.iter().enumerate().map(|(i, mc)| (i as u32, data.point(mc.center).to_vec())),
        );
        let mcs = std::mem::take(&mut tree.mcs)
            .into_iter()
            .map(|mc| {
                let members = mc.members.len() as u32;
                let aux = mc.aux.unwrap_or_else(|| {
                    let mut t = RTree::with_config(dim, RTreeConfig::default());
                    for &p in &mc.members {
                        t.insert_point(p, data.point(p));
                    }
                    t
                });
                StreamMc { center: mc.center, aux, members }
            })
            .collect();

        Self { params, data: data.clone(), level1, mcs, counts, uf, is_core, assigned, counters }
    }

    /// Points ingested so far.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True before the first insertion.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Number of micro-clusters currently maintained.
    pub fn mc_count(&self) -> usize {
        self.mcs.len()
    }

    /// The density parameters.
    pub fn params(&self) -> DbscanParams {
        self.params
    }

    /// Operation counters (queries, distances, unions).
    pub fn counters(&self) -> &Counters {
        &self.counters
    }

    /// Coordinates of an ingested point.
    pub fn point(&self, p: PointId) -> &[f64] {
        self.data.point(p)
    }

    /// The ingested points, in insertion order.
    pub fn dataset(&self) -> &Dataset {
        &self.data
    }

    /// ε-neighbourhood of arbitrary coordinates over the current prefix
    /// (strict `< ε`), via the micro-cluster index.
    fn query(&self, coords: &[f64]) -> Vec<PointId> {
        let eps = self.params.eps;
        let mut mcs_hit: Vec<u32> = Vec::new();
        self.level1.search_sphere(coords, 2.0 * eps, |mc| mcs_hit.push(mc));
        let mut out = Vec::new();
        for mc in mcs_hit {
            let cost = self.mcs[mc as usize].aux.search_sphere(coords, eps, |q| out.push(q));
            self.counters.count_dists(cost.mbr_tests);
        }
        self.counters.count_range_query();
        out
    }

    /// Ingest one point; returns its id. On return, [`Self::snapshot`]
    /// is exactly the DBSCAN clustering of all points inserted so far.
    pub fn insert(&mut self, coords: &[f64]) -> PointId {
        assert_eq!(coords.len(), self.data.dim(), "dimensionality mismatch");
        let min_pts = self.params.min_pts as u32;

        // Neighbours BEFORE p is added (p joins its own count below).
        let nbhrs = self.query(coords);

        let p = self.data.push(coords);
        self.counts.push(nbhrs.len() as u32 + 1);
        self.is_core.push(false);
        self.assigned.push(false);
        let up = self.uf.push();
        debug_assert_eq!(up, p);

        // Micro-cluster maintenance: join the first MC whose center is
        // strictly within ε, else start a new one.
        let (hit, probe_cost) = self.level1.first_in_sphere(coords, self.params.eps);
        self.counters.count_node_visits(probe_cost.nodes_visited.max(1));
        self.counters.count_dists(probe_cost.mbr_tests);
        match hit {
            Some(mc) => {
                self.mcs[mc as usize].aux.insert_point(p, coords);
                self.mcs[mc as usize].members += 1;
            }
            None => {
                let id = self.mcs.len() as u32;
                let mut aux = RTree::with_config(self.data.dim(), RTreeConfig::default());
                aux.insert_point(p, coords);
                self.mcs.push(StreamMc { center: p, aux, members: 1 });
                self.level1.insert_point(id, coords);
            }
        }

        // Bump neighbour counts; collect promotions (count crossing
        // MinPts exactly now).
        let mut promoted: Vec<PointId> = Vec::new();
        for &q in &nbhrs {
            self.counts[q as usize] += 1;
            if self.counts[q as usize] == min_pts && !self.is_core[q as usize] {
                promoted.push(q);
            }
        }

        // Process p itself.
        if self.counts[p as usize] >= min_pts {
            self.make_core(p, &nbhrs);
        } else {
            for &q in &nbhrs {
                if self.is_core[q as usize] {
                    self.uf.union(q, p);
                    self.counters.count_union();
                    self.assigned[p as usize] = true;
                    break;
                }
            }
        }

        // Process promotions: each newly-core point wires up its edges
        // with one ε-query.
        for q in promoted {
            if self.is_core[q as usize] {
                continue; // p's processing might have promoted q already
            }
            let qn = self.query(self.data.point(q)).to_vec();
            // Re-check: the stored count is authoritative, the query must
            // agree (self included).
            debug_assert_eq!(qn.len() as u32, self.counts[q as usize]);
            self.make_core(q, &qn);
        }
        p
    }

    /// Mark `x` core and apply the disjoint-set union rules against its
    /// neighbour list.
    fn make_core(&mut self, x: PointId, nbhrs: &[PointId]) {
        self.is_core[x as usize] = true;
        self.assigned[x as usize] = true;
        for &q in nbhrs {
            if q == x {
                continue;
            }
            if self.is_core[q as usize] {
                self.uf.union(q, x);
                self.counters.count_union();
            } else if !self.assigned[q as usize] {
                self.uf.union(x, q);
                self.counters.count_union();
                self.assigned[q as usize] = true;
            }
        }
    }

    /// Extract the clustering of the points ingested so far.
    pub fn snapshot(&mut self) -> Clustering {
        let is_core = self.is_core.clone();
        Clustering::from_union_find(&mut self.uf, is_core)
    }

    /// The clustering of the current prefix with border ties resolved
    /// canonically: every border point joins the cluster of its
    /// **minimum-id core neighbour**, which is exactly the attachment
    /// [`Self::from_dataset`] produces when it replays the union rules
    /// in id order. [`Self::snapshot`]'s border attachment depends on
    /// insertion order (classical DBSCAN leaves the tie unspecified),
    /// so two orders of the same points can disagree on borders while
    /// both being exact. This method re-resolves the ties, making the
    /// result compare `==` against a batch run on the same points —
    /// the serving layer ([`crate::serve`]) publishes canonical
    /// snapshots for precisely that bit-identical epoch contract.
    ///
    /// Costs one ε-query per captured border point; core components
    /// are copied from the incremental union–find (they are already
    /// order-independent).
    pub fn canonical_snapshot(&self) -> Clustering {
        use std::collections::hash_map::Entry;
        let n = self.data.len();
        let mut uf = UnionFind::new(n);
        // Each incremental union–find set holds exactly one core
        // component plus the borders it captured; restricted to cores
        // the partition is order-independent. Copy it by unioning every
        // core point with the first core seen in its set.
        let mut rep: std::collections::HashMap<PointId, PointId> = std::collections::HashMap::new();
        for p in 0..n {
            if !self.is_core[p] {
                continue;
            }
            match rep.entry(self.uf.find_const(p as PointId)) {
                Entry::Occupied(e) => {
                    uf.union(*e.get(), p as PointId);
                }
                Entry::Vacant(e) => {
                    e.insert(p as PointId);
                }
            }
        }
        // Re-attach each captured border to its minimum-id core
        // neighbour (fresh unions only: the incremental attachment is
        // deliberately not copied).
        for p in 0..n {
            if self.is_core[p] || !self.assigned[p] {
                continue;
            }
            let anchor = self
                .query(self.data.point(p as PointId))
                .into_iter()
                .filter(|&q| self.is_core[q as usize])
                .min()
                .expect("assigned border point must have a core neighbour");
            uf.union(anchor, p as PointId);
        }
        Clustering::from_union_find(&mut uf, self.is_core.clone())
    }

    /// Convenience: bulk-ingest a dataset in row order.
    pub fn extend_from(&mut self, data: &Dataset) {
        for (_, coords) in data.iter() {
            self.insert(coords);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mudbscan::{check_exact, naive_dbscan};

    fn blobs(n_per: usize, seed: u64) -> Dataset {
        let mut rows = Vec::new();
        let mut s = seed;
        let mut r = move || {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((s >> 33) as f64 / (1u64 << 31) as f64) - 1.0
        };
        for (cx, cy) in [(0.0, 0.0), (6.0, 2.0)] {
            for _ in 0..n_per {
                rows.push(vec![cx + 0.7 * r(), cy + 0.7 * r()]);
            }
        }
        for _ in 0..n_per / 4 {
            rows.push(vec![12.0 * r(), 12.0 * r()]);
        }
        Dataset::from_rows(&rows)
    }

    #[test]
    fn final_state_matches_batch_dbscan() {
        let data = blobs(60, 5);
        let params = DbscanParams::new(0.6, 5);
        let mut s = StreamingMuDbscan::empty(2, params);
        s.extend_from(&data);
        let got = s.snapshot();
        let want = naive_dbscan(&data, &params);
        let rep = check_exact(&got, &want, &data, &params);
        assert!(rep.is_exact(), "{rep:?}");
    }

    #[test]
    fn every_prefix_is_exact() {
        let data = blobs(25, 9);
        let params = DbscanParams::new(0.6, 4);
        let mut s = StreamingMuDbscan::empty(2, params);
        for (i, coords) in data.iter() {
            s.insert(coords);
            // Check a sample of prefixes (every 7th) to keep the O(n²)
            // oracle affordable.
            if i % 7 != 6 {
                continue;
            }
            let prefix_rows: Vec<Vec<f64>> = (0..=i).map(|j| data.point(j).to_vec()).collect();
            let prefix = Dataset::from_rows(&prefix_rows);
            let got = s.snapshot();
            let want = naive_dbscan(&prefix, &params);
            let rep = check_exact(&got, &want, &prefix, &params);
            assert!(rep.is_exact(), "prefix {}: {rep:?}", i + 1);
        }
    }

    #[test]
    fn promotion_on_crossing_minpts() {
        // Points arrive so that an early point becomes core only later.
        let params = DbscanParams::new(1.0, 3);
        let mut s = StreamingMuDbscan::empty(1, params);
        s.insert(&[0.0]); // will become core once 2 more arrive
        s.insert(&[10.0]); // far away
        assert_eq!(s.snapshot().n_clusters, 0);
        s.insert(&[0.5]);
        assert_eq!(s.snapshot().n_clusters, 0); // counts: 2 < 3
        s.insert(&[-0.5]);
        let c = s.snapshot();
        assert_eq!(c.n_clusters, 1);
        assert!(c.is_core[0], "point 0 must be promoted to core");
        assert!(c.is_noise(1));
    }

    #[test]
    fn noise_rescued_when_core_appears() {
        let params = DbscanParams::new(1.0, 3);
        let mut s = StreamingMuDbscan::empty(1, params);
        s.insert(&[0.9]); // will be border of the core at 0
        s.insert(&[0.0]);
        s.insert(&[-0.9]);
        // All three mutually... 0.9 and -0.9 are 1.8 apart (not
        // neighbours); point 1 sees all three -> core; 0 and 2 border.
        let c = s.snapshot();
        assert_eq!(c.n_clusters, 1);
        assert!(c.is_core[1]);
        assert!(c.is_border(0) && c.is_border(2));
    }

    #[test]
    fn mc_structure_stays_small() {
        let data = blobs(80, 13);
        let params = DbscanParams::new(0.6, 5);
        let mut s = StreamingMuDbscan::empty(2, params);
        s.extend_from(&data);
        assert!(s.mc_count() < s.len() / 2, "m = {} vs n = {}", s.mc_count(), s.len());
        assert!(s.counters().range_queries() > 0);
    }

    #[test]
    fn bulk_load_matches_batch_dbscan() {
        let data = blobs(60, 33);
        let params = DbscanParams::new(0.6, 5);
        let mut s = StreamingMuDbscan::from_dataset(&data, params);
        assert_eq!(s.len(), data.len());
        assert!(s.mc_count() > 0);
        let got = s.snapshot();
        let want = naive_dbscan(&data, &params);
        let rep = check_exact(&got, &want, &data, &params);
        assert!(rep.is_exact(), "{rep:?}");
    }

    #[test]
    fn bulk_load_agrees_with_point_at_a_time_ingestion() {
        let data = blobs(40, 37);
        let params = DbscanParams::new(0.6, 4);
        let mut bulk = StreamingMuDbscan::from_dataset(&data, params);
        let mut seq = StreamingMuDbscan::empty(2, params);
        seq.extend_from(&data);
        let a = bulk.snapshot();
        let b = seq.snapshot();
        assert_eq!(a.n_clusters, b.n_clusters);
        assert_eq!(a.is_core, b.is_core);
        assert_eq!(a.noise_count(), b.noise_count());
    }

    #[test]
    fn inserts_after_bulk_load_stay_exact() {
        let data = blobs(40, 41);
        let split = data.len() - 15;
        let head_rows: Vec<Vec<f64>> = (0..split).map(|j| data.point(j as u32).to_vec()).collect();
        let head = Dataset::from_rows(&head_rows);
        let params = DbscanParams::new(0.6, 4);
        let mut s = StreamingMuDbscan::from_dataset(&head, params);
        for j in split..data.len() {
            s.insert(data.point(j as u32));
        }
        let got = s.snapshot();
        let want = naive_dbscan(&data, &params);
        let rep = check_exact(&got, &want, &data, &params);
        assert!(rep.is_exact(), "{rep:?}");
    }

    #[test]
    fn canonical_snapshot_is_bit_identical_to_bulk_load() {
        let data = blobs(40, 37);
        let params = DbscanParams::new(0.6, 4);
        let mut bulk = StreamingMuDbscan::from_dataset(&data, params);
        let mut seq = StreamingMuDbscan::empty(2, params);
        seq.extend_from(&data);
        let want = bulk.snapshot();
        // Point-at-a-time ingestion may attach border ties differently;
        // the canonical snapshot re-resolves them to the bulk answer.
        assert_eq!(seq.canonical_snapshot(), want);
        // The bulk state is already canonical.
        assert_eq!(bulk.canonical_snapshot(), want);
        // And canonicalisation must itself be exact DBSCAN.
        let rep =
            check_exact(&seq.canonical_snapshot(), &naive_dbscan(&data, &params), &data, &params);
        assert!(rep.is_exact(), "{rep:?}");
    }

    #[test]
    fn bulk_load_empty_dataset() {
        let data = Dataset::empty(3);
        let mut s = StreamingMuDbscan::from_dataset(&data, DbscanParams::new(1.0, 4));
        assert!(s.is_empty());
        assert_eq!(s.snapshot().n_clusters, 0);
        s.insert(&[0.0, 0.0, 0.0]);
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn order_independence_of_canonical_quantities() {
        let data = blobs(40, 21);
        let params = DbscanParams::new(0.6, 4);
        let mut fwd = StreamingMuDbscan::empty(2, params);
        fwd.extend_from(&data);
        let ids: Vec<u32> = data.ids().rev().collect();
        let rev_data = data.gather(&ids);
        let mut rev = StreamingMuDbscan::empty(2, params);
        rev.extend_from(&rev_data);
        let a = fwd.snapshot();
        let b = rev.snapshot();
        assert_eq!(a.n_clusters, b.n_clusters);
        assert_eq!(a.noise_count(), b.noise_count());
        assert_eq!(a.core_count(), b.core_count());
    }
}
