//! Render the classic DBSCAN picture: arbitrary-shaped clusters (two
//! interleaved moons + a ring + blobs) found exactly by μDBSCAN, written
//! to an SVG scatter.
//!
//! ```text
//! cargo run --release --example visualize
//! # -> target/mudbscan_clusters.svg
//! ```

use geom::{Dataset, DatasetBuilder, DbscanParams};
use mudbscan_repro::prelude::*;

/// Two moons + a ring + a blob + background noise — shapes k-means
/// cannot separate but DBSCAN can.
fn shapes(n: usize, seed: u64) -> Dataset {
    let mut s = seed;
    let mut rng = move || {
        s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        (s >> 33) as f64 / (1u64 << 31) as f64 // [0, 1)
    };
    let mut b = DatasetBuilder::with_capacity(2, n);
    for i in 0..n {
        let u = rng();
        let jx = 0.06 * (2.0 * rng() - 1.0);
        let jy = 0.06 * (2.0 * rng() - 1.0);
        match i % 10 {
            // Upper moon.
            0..=2 => {
                let a = std::f64::consts::PI * u;
                b.push(&[a.cos() + jx, a.sin() + jy]);
            }
            // Lower moon, shifted.
            3..=5 => {
                let a = std::f64::consts::PI * u;
                b.push(&[1.0 - a.cos() + jx, 0.45 - a.sin() + jy]);
            }
            // Ring.
            6 | 7 => {
                let a = std::f64::consts::TAU * u;
                b.push(&[3.2 + 0.8 * a.cos() + jx, 0.2 + 0.8 * a.sin() + jy]);
            }
            // Blob.
            8 => b.push(&[3.2 + 0.3 * (rng() - 0.5), 0.2 + 0.3 * (rng() - 0.5)]),
            // Background noise.
            _ => b.push(&[-1.2 + 5.6 * rng(), -1.4 + 3.2 * rng()]),
        }
    }
    b.build()
}

fn main() {
    let dataset = shapes(6_000, 2019);
    let params = DbscanParams::new(0.13, 8);

    let out = Runner::new(params).run(&dataset).expect("sequential run");
    println!(
        "{} points -> {} clusters, {} noise ({:.1}% queries saved)",
        dataset.len(),
        out.clustering.n_clusters,
        out.clustering.noise_count(),
        out.counters.pct_queries_saved()
    );

    // Exactness even on the weird shapes.
    let reference = naive_dbscan(&dataset, &params);
    assert!(check_exact(&out.clustering, &reference, &dataset, &params).is_exact());
    println!("exact vs naive DBSCAN ✓");

    let path = std::path::Path::new("target/mudbscan_clusters.svg");
    data::plot::write_svg_scatter(&dataset, &out.clustering.labels, path, 900, 540)
        .expect("svg written");
    println!("wrote {}", path.display());
}
