//! GridDBSCAN — grid-based exact DBSCAN (Kumari et al., ICDCN'17).
//!
//! Space is cut into cells of side ε/√d so the cell diagonal is ε. Two
//! consequences drive the algorithm:
//!
//! * a cell whose **tight point bounding box** has diagonal strictly less
//!   than ε and which holds `>= MinPts` points is *dense*: all its points
//!   are mutually ε-neighbours, hence all core — no query needed (this is
//!   the source of GridDBSCAN's ~15 % query savings; the strict-diagonal
//!   check keeps the shortcut exact under the strict `< ε` neighbourhood
//!   definition);
//! * the ε-ball of any point only reaches cells within ⌈√d⌉ cells per
//!   axis, so queries scan a fixed **neighbour-cell list**.
//!
//! The per-cell neighbour-cell lists are materialised exactly as in the
//! original implementation — their count grows as ~(2⌈√d⌉+1)^d, which is
//! what makes GridDBSCAN exhaust memory at high dimension (paper Tables
//! II & IV). We surface that as a deterministic [`GridError::Memory`]
//! instead of thrashing the host.

use crate::BaselineOutput;
use geom::{dist_sq, within_sq, Dataset, DbscanParams, Mbr, PointId};
use metrics::mem::{MemBudget, MemoryLimitExceeded};
use metrics::{Counters, PhaseTimer, Stopwatch};
use mudbscan::Clustering;
use std::collections::HashMap;
use unionfind::UnionFind;

/// Why a GridDBSCAN run could not complete.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GridError {
    /// The neighbour-cell structure would exceed the memory budget — the
    /// paper's "Mem Err" outcome.
    Memory(MemoryLimitExceeded),
}

impl std::fmt::Display for GridError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GridError::Memory(e) => write!(f, "GridDBSCAN: {e}"),
        }
    }
}

impl std::error::Error for GridError {}

/// One grid cell.
#[derive(Debug)]
struct Cell {
    points: Vec<PointId>,
    mbr: Mbr,
}

/// Grid-based exact DBSCAN.
#[derive(Debug, Clone)]
pub struct GridDbscan {
    params: DbscanParams,
    /// Budget for the grid + neighbour-list structures (default 4 GB,
    /// mirroring a 32 GB node with data and working set accounted).
    pub budget: MemBudget,
}

impl GridDbscan {
    /// New instance with the default 4 GB structure budget.
    pub fn new(params: DbscanParams) -> Self {
        Self { params, budget: MemBudget::new(4 << 30) }
    }

    /// Override the memory budget.
    pub fn with_budget(mut self, budget: MemBudget) -> Self {
        self.budget = budget;
        self
    }

    /// Run on `data`; `Err` reproduces the paper's high-dimension memory
    /// failures.
    pub fn run(&self, data: &Dataset) -> Result<BaselineOutput, GridError> {
        let d = data.dim();
        let eps = self.params.eps;
        let min_pts = self.params.min_pts;
        let eps_sq = self.params.eps_sq();
        let side = eps / (d as f64).sqrt();

        let counters = Counters::new();
        let mut phases = PhaseTimer::new();
        let mut sw = Stopwatch::start();
        let _run = obs::span!("griddbscan");

        // Phase 1: bucket points into cells.
        let ph1 = obs::span!("grid_construction");
        let mut index: HashMap<Box<[i32]>, u32> = HashMap::new();
        let mut cells: Vec<Cell> = Vec::new();
        let mut cell_of: Vec<u32> = Vec::with_capacity(data.len());
        let mut key_buf: Vec<i32> = vec![0; d];
        for (p, coords) in data.iter() {
            for (k, &x) in coords.iter().enumerate() {
                key_buf[k] = (x / side).floor() as i32;
            }
            let idx = match index.get(key_buf.as_slice()) {
                Some(&i) => {
                    let c = &mut cells[i as usize];
                    c.points.push(p);
                    c.mbr.merge_point(coords);
                    i
                }
                None => {
                    let i = cells.len() as u32;
                    index.insert(key_buf.clone().into_boxed_slice(), i);
                    cells.push(Cell { points: vec![p], mbr: Mbr::point(coords) });
                    i
                }
            };
            cell_of.push(idx);
        }

        // Neighbour offsets: all integer offsets whose minimal cell-to-cell
        // distance is < ε, i.e. Σ max(0,|o_i|-1)² < d (in side² units).
        // Hard-capped: enumerating beyond a few million offsets is already
        // hopeless (the per-cell neighbour lists would dwarf any budget),
        // so fail fast instead of burning minutes and gigabytes first.
        let max_offsets =
            (self.budget.limit() / (std::mem::size_of::<i32>() * d).max(1)).min(MAX_OFFSETS);
        let offsets = generate_offsets(d, max_offsets).map_err(|needed| {
            GridError::Memory(MemoryLimitExceeded {
                needed: needed
                    .saturating_mul(std::mem::size_of::<i32>() * d)
                    .max(self.budget.limit() + 1),
                limit: self.budget.limit(),
            })
        })?;

        // Materialise per-cell neighbour-cell lists (the memory hog).
        let mut nbr_cells: Vec<Vec<u32>> = Vec::with_capacity(cells.len());
        let mut bytes = offsets.len() * d * std::mem::size_of::<i32>()
            + cells
                .iter()
                .map(|c| 48 + c.points.capacity() * 4 + c.mbr.heap_bytes())
                .sum::<usize>();
        for (key, &ci) in &index {
            let mut list = Vec::new();
            for off in &offsets {
                for (k, o) in off.iter().enumerate() {
                    key_buf[k] = key[k] + o;
                }
                if let Some(&nc) = index.get(key_buf.as_slice()) {
                    list.push(nc);
                }
            }
            bytes += list.capacity() * 4 + 24;
            if let Err(e) = self.budget.check(bytes) {
                return Err(GridError::Memory(e));
            }
            // nbr_cells is indexed by cell id; fill placeholders lazily.
            if nbr_cells.len() <= ci as usize {
                nbr_cells.resize_with(ci as usize + 1, Vec::new);
            }
            nbr_cells[ci as usize] = list;
        }
        if nbr_cells.len() < cells.len() {
            nbr_cells.resize_with(cells.len(), Vec::new);
        }
        drop(ph1);
        phases.add_secs("grid_construction", sw.lap());
        let mut peak = bytes;
        let ph2 = obs::span!("cell_classification");

        // Phase 2: dense cells (>= MinPts points AND tight-MBR diagonal
        // strictly < ε) are all-core.
        let n = data.len();
        let mut uf = UnionFind::new(n);
        let mut is_core = vec![false; n];
        let mut assigned = vec![false; n];
        let mut cell_dense = vec![false; cells.len()];
        for (ci, cell) in cells.iter().enumerate() {
            if cell.points.len() < min_pts {
                continue;
            }
            let diag_sq = dist_sq(cell.mbr.lo(), cell.mbr.hi());
            if diag_sq < eps_sq {
                cell_dense[ci] = true;
                let first = cell.points[0];
                for &p in &cell.points {
                    is_core[p as usize] = true;
                    assigned[p as usize] = true;
                    uf.union(first, p);
                    counters.count_union();
                    counters.count_query_saved();
                }
            }
        }
        drop(ph2);
        phases.add_secs("cell_classification", sw.lap());
        let ph3 = obs::span!("clustering");

        // Phase 3: queries for all points in non-dense cells, restricted to
        // neighbour cells.
        let mut pending: Vec<(PointId, Vec<PointId>)> = Vec::new();
        let mut nbhrs: Vec<PointId> = Vec::new();
        for (p, coords) in data.iter() {
            let ci = cell_of[p as usize];
            if cell_dense[ci as usize] {
                continue; // proven core, query saved
            }
            nbhrs.clear();
            counters.count_range_query();
            for &nc in &nbr_cells[ci as usize] {
                let cell = &cells[nc as usize];
                counters.count_dists(cell.points.len() as u64);
                for &q in &cell.points {
                    if within_sq(coords, data.point(q), eps_sq) {
                        nbhrs.push(q);
                    }
                }
            }
            if nbhrs.len() >= min_pts {
                is_core[p as usize] = true;
                assigned[p as usize] = true;
                for &x in &nbhrs {
                    if is_core[x as usize] {
                        uf.union(x, p);
                        counters.count_union();
                    } else if !assigned[x as usize] {
                        uf.union(p, x);
                        counters.count_union();
                        assigned[x as usize] = true;
                    }
                }
            } else if !assigned[p as usize] {
                let mut attached = false;
                for &x in &nbhrs {
                    if is_core[x as usize] {
                        uf.union(x, p);
                        counters.count_union();
                        assigned[p as usize] = true;
                        attached = true;
                        break;
                    }
                }
                if !attached {
                    pending.push((p, nbhrs.clone()));
                }
            }
        }
        drop(ph3);
        phases.add_secs("clustering", sw.lap());
        peak = peak.max(
            bytes
                + uf.heap_bytes()
                + pending.iter().map(|(_, v)| 16 + v.capacity() * 4).sum::<usize>(),
        );

        let ph4 = obs::span!("post_processing");
        // Phase 4a: stitch dense cells — both endpoints skipped their
        // queries, so cross-cell core links must be established here. One
        // link suffices per cell pair (each dense cell is one cluster).
        for (ci, cell) in cells.iter().enumerate() {
            if !cell_dense[ci] {
                continue;
            }
            for &nc in &nbr_cells[ci] {
                if (nc as usize) <= ci || !cell_dense[nc as usize] {
                    continue;
                }
                let other = &cells[nc as usize];
                if uf.same(cell.points[0], other.points[0]) {
                    continue;
                }
                'pairs: for &p in &cell.points {
                    for &q in &other.points {
                        counters.count_dists(1);
                        if dist_sq(data.point(p), data.point(q)) < eps_sq {
                            uf.union(p, q);
                            counters.count_union();
                            break 'pairs;
                        }
                    }
                }
            }
        }

        // Phase 4b: border rescue from stored neighbourhoods.
        for (p, nb) in &pending {
            if assigned[*p as usize] {
                continue;
            }
            for &q in nb {
                if is_core[q as usize] {
                    uf.union(q, *p);
                    counters.count_union();
                    assigned[*p as usize] = true;
                    break;
                }
            }
        }
        drop(ph4);
        phases.add_secs("post_processing", sw.lap());

        let clustering = Clustering::from_union_find(&mut uf, is_core);
        Ok(BaselineOutput { clustering, counters, phases, peak_heap_bytes: peak })
    }
}

/// Absolute ceiling on enumerated neighbour offsets, regardless of
/// budget: past this the structure cannot be practical at any size.
const MAX_OFFSETS: usize = 2_000_000;

/// Generate all offsets `o ∈ Z^d` with `Σ max(0, |o_i|-1)² < d`; `Err`
/// with the (at-least) count when more than `cap` offsets would be
/// generated.
fn generate_offsets(d: usize, cap: usize) -> Result<Vec<Vec<i32>>, usize> {
    // Cheap lower bound before enumerating anything: every offset with
    // all |o_i| <= 1 qualifies (zero contribution), so at least 3^d
    // offsets exist. When that alone exceeds the cap, fail instantly.
    let lower_bound = 3f64.powi(d as i32);
    if lower_bound > cap as f64 {
        return Err(lower_bound as usize);
    }
    let mut out = Vec::new();
    let mut cur = vec![0i32; d];
    let dmax = d as i64;
    fn rec(
        k: usize,
        d: usize,
        budget_sq: i64,
        cur: &mut Vec<i32>,
        out: &mut Vec<Vec<i32>>,
        cap: usize,
    ) -> Result<(), usize> {
        if k == d {
            out.push(cur.clone());
            if out.len() > cap {
                return Err(out.len());
            }
            return Ok(());
        }
        let reach = (budget_sq as f64).sqrt() as i64 + 1;
        for o in -(reach as i32)..=(reach as i32) {
            let contrib = {
                let a = (o.unsigned_abs() as i64 - 1).max(0);
                a * a
            };
            if contrib < budget_sq {
                cur[k] = o;
                rec(k + 1, d, budget_sq - contrib, cur, out, cap)?;
            }
        }
        Ok(())
    }
    rec(0, d, dmax, &mut cur, &mut out, cap).map(|()| out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mudbscan::{check_exact, naive_dbscan};

    fn blob_data(dim: usize) -> Dataset {
        let mut rows = Vec::new();
        let mut s = 5u64;
        let mut r = move || {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(11);
            ((s >> 33) as f64 / (1u64 << 31) as f64) - 1.0
        };
        for c in [-3.0, 3.0] {
            for _ in 0..45 {
                rows.push((0..dim).map(|_| c + 0.8 * r()).collect());
            }
        }
        for _ in 0..10 {
            rows.push((0..dim).map(|_| 6.0 * r()).collect());
        }
        Dataset::from_rows(&rows)
    }

    #[test]
    fn exact_vs_naive_2d() {
        let data = blob_data(2);
        for (eps, min_pts) in [(0.6, 4), (1.0, 6), (0.35, 3)] {
            let params = DbscanParams::new(eps, min_pts);
            let out = GridDbscan::new(params).run(&data).unwrap();
            let reference = naive_dbscan(&data, &params);
            let rep = check_exact(&out.clustering, &reference, &data, &params);
            assert!(rep.is_exact(), "eps={eps} min_pts={min_pts}: {rep:?}");
        }
    }

    #[test]
    fn exact_vs_naive_3d() {
        let data = blob_data(3);
        let params = DbscanParams::new(0.9, 5);
        let out = GridDbscan::new(params).run(&data).unwrap();
        let reference = naive_dbscan(&data, &params);
        assert!(check_exact(&out.clustering, &reference, &data, &params).is_exact());
    }

    #[test]
    fn saves_queries_on_dense_cells() {
        // A very tight blob: its cell is dense, all points skip queries.
        let mut rows = vec![];
        for i in 0..30 {
            rows.push(vec![0.001 * i as f64, 0.0]);
        }
        let data = Dataset::from_rows(&rows);
        let out = GridDbscan::new(DbscanParams::new(1.0, 5)).run(&data).unwrap();
        assert!(out.counters.queries_saved() > 0);
        assert_eq!(out.clustering.n_clusters, 1);
    }

    #[test]
    fn high_dimension_hits_memory_error() {
        // d = 14 mirrors KDDB145K14D where the paper reports Mem Err.
        let rows: Vec<Vec<f64>> = (0..50).map(|i| vec![i as f64 * 0.1; 14]).collect();
        let data = Dataset::from_rows(&rows);
        let alg = GridDbscan::new(DbscanParams::new(1.0, 5)).with_budget(MemBudget::new(10 << 20)); // 10 MB
        match alg.run(&data) {
            Err(GridError::Memory(e)) => {
                assert!(e.needed > e.limit);
            }
            Ok(_) => panic!("expected a memory error at d=14 with a small budget"),
        }
    }

    #[test]
    fn offsets_small_dims() {
        // d=1: offsets with max(0,|o|-1)^2 < 1 -> o in {-1, 0, 1}.
        let o1 = generate_offsets(1, 1000).unwrap();
        assert_eq!(o1.len(), 3);
        // d=2: |o_i| <= 2 with sum constraint; must include (0,0), (2,0)
        // but exclude (2,2) (contrib 1+1=2 == d fails strict <? (1)+(1)=2,
        // budget 2 -> 1 < 2 ok then 1 < 1 fails -> excluded).
        let o2 = generate_offsets(2, 1000).unwrap();
        assert!(o2.contains(&vec![0, 0]));
        assert!(o2.contains(&vec![2, 0]));
        assert!(!o2.contains(&vec![2, 2]));
    }

    #[test]
    fn offsets_cap_errors() {
        assert!(generate_offsets(10, 100).is_err());
        // d = 14 must fail fast via the 3^d lower bound even with a huge
        // cap (this is the regression guard for the runaway enumeration).
        let t = std::time::Instant::now();
        assert!(generate_offsets(14, MAX_OFFSETS).is_err());
        assert!(t.elapsed().as_millis() < 100, "offset bail-out must be instant");
    }

    #[test]
    fn offsets_match_brute_force_enumeration() {
        for d in [2usize, 3, 4] {
            let got: std::collections::HashSet<Vec<i32>> =
                generate_offsets(d, 10_000_000).unwrap().into_iter().collect();
            // Brute force over a box comfortably containing every
            // qualifying offset.
            let k = (d as f64).sqrt() as i32 + 2;
            let mut want = std::collections::HashSet::new();
            let mut cur = vec![-k; d];
            loop {
                let s: i64 = cur
                    .iter()
                    .map(|&o| {
                        let a = (o.abs() as i64 - 1).max(0);
                        a * a
                    })
                    .sum();
                if s < d as i64 {
                    want.insert(cur.clone());
                }
                // Odometer increment.
                let mut i = 0;
                loop {
                    if i == d {
                        break;
                    }
                    cur[i] += 1;
                    if cur[i] <= k {
                        break;
                    }
                    cur[i] = -k;
                    i += 1;
                }
                if i == d {
                    break;
                }
            }
            assert_eq!(got, want, "d={d}");
        }
    }

    #[test]
    fn strict_diagonal_guard() {
        // Two points exactly ε apart in one cell-shaped blob must NOT be
        // declared mutual neighbours by the dense-cell shortcut.
        let data = Dataset::from_rows(&[vec![0.0, 0.0], vec![0.7, 0.0], vec![0.35, 0.0]]);
        let params = DbscanParams::new(0.7, 3);
        let out = GridDbscan::new(params).run(&data).unwrap();
        let reference = naive_dbscan(&data, &params);
        assert!(check_exact(&out.clustering, &reference, &data, &params).is_exact());
    }
}
