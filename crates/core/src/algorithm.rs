//! The μDBSCAN driver — paper Algorithm 2 and its four steps.
//!
//! Step 1  `BUILD-MICRO-CLUSTERS` + μR-tree ([`mcs::build_micro_clusters`])
//! Step 1b `PROCESS-MICRO-CLUSTERS` (Algorithm 4): DMC/CMC classification,
//!         wndq-core labelling, preliminary clusters.
//! Step 2  `FIND-REACHABLE-MC` (Algorithm 5): 3ε reachable lists.
//! Step 3  `PROCESS-REM-POINTS` (Algorithm 6): restricted ε-queries for the
//!         remaining points, with dynamic wndq-core promotion.
//! Step 4  `POST-PROCESSING-CORE` / `POST-PROCESSING-NOISE`
//!         (Algorithms 7–8): establish the final connections.
//!
//! Border-point unions follow the disjoint-set DBSCAN rule (Patwary et
//! al.): a core point is always unioned with another core neighbour, but a
//! non-core neighbour is unioned only when not yet assigned to a cluster —
//! a border point shared by two clusters must not merge them.

use crate::clustering::Clustering;
use geom::{dist_sq, Dataset, DbscanParams, PointId};
use mcs::{build_micro_clusters, BuildOptions, McKind, MuRTree};
use metrics::{Counters, PhaseTimer, Stopwatch};
use unionfind::UnionFind;

/// Configured μDBSCAN instance.
#[derive(Debug, Clone, Default)]
pub struct MuDbscan {
    params: Option<DbscanParams>,
    opts: BuildOptions,
    /// Skip the dynamic wndq-core promotion of Algorithm 6 step (iii)
    /// (ablation knob; the clustering stays exact either way, only the
    /// number of saved queries changes).
    pub disable_dynamic_promotion: bool,
    /// Disable the MC-granularity skip in POST-PROCESSING-CORE (Algorithm
    /// 7). With the skip (default), a wndq-core point tests one union–find
    /// root per dense/core MC instead of scanning every member — this
    /// implementation improvement collapses the post-processing share of
    /// runtime (the paper's Table III shows 36–97 % without it). Turning
    /// it off reproduces the paper's per-member scan for the ablation
    /// bench; the clustering is identical either way.
    pub disable_post_core_mc_skip: bool,
}

/// Everything a μDBSCAN run produces: the clustering plus the paper's
/// reporting quantities.
#[derive(Debug)]
pub struct MuDbscanOutput {
    /// The exact DBSCAN clustering.
    pub clustering: Clustering,
    /// Query/distance/union counters (Table II's "% query saves").
    pub counters: Counters,
    /// Wall-clock split-up over the four steps (Table III).
    pub phases: PhaseTimer,
    /// Number of micro-clusters formed (`m` in Table II).
    pub mc_count: usize,
    /// Average points per micro-cluster (`r`).
    pub avg_mc_size: f64,
    /// Estimated peak heap bytes of the algorithm's structures (Table IV).
    pub peak_heap_bytes: usize,
}

impl MuDbscan {
    /// New instance with the given density parameters and default build
    /// options.
    ///
    /// This is the low-level entry point used by the facade and by crates
    /// that cannot depend on `mudbscan` (e.g. `dist`); applications should
    /// prefer `mudbscan::prelude::Runner::new(params)`.
    pub fn from_params(params: DbscanParams) -> Self {
        Self {
            params: Some(params),
            opts: BuildOptions::default(),
            disable_dynamic_promotion: false,
            disable_post_core_mc_skip: false,
        }
    }

    /// Override the micro-cluster construction options.
    pub fn with_options(mut self, opts: BuildOptions) -> Self {
        self.opts = opts;
        self
    }

    /// Run on `data`, producing the clustering and all metrics.
    pub fn run(&self, data: &Dataset) -> MuDbscanOutput {
        let params = self.params.expect("params must be set");
        run_mudbscan(
            data,
            &params,
            &self.opts,
            self.disable_dynamic_promotion,
            self.disable_post_core_mc_skip,
        )
    }
}

/// Per-point working state of a run. Exposed (crate-internal shape, public
/// fields) so the distributed driver can run local μDBSCAN and then merge.
pub struct WorkingState {
    /// The μR-tree over the data.
    pub tree: MuRTree,
    /// Union–find forest over the points.
    pub uf: UnionFind,
    /// Core flags.
    pub is_core: Vec<bool>,
    /// wndq tag: point was proven core without a neighbourhood query.
    pub wndq: Vec<bool>,
    /// Point already belongs to some cluster set.
    pub assigned: Vec<bool>,
    /// All wndq-core points, in labelling order (Algorithm 7 input).
    pub wndq_list: Vec<PointId>,
    /// Potential noise points with their stored neighbourhoods
    /// (Algorithm 8 input).
    pub noise_list: Vec<(PointId, Vec<PointId>)>,
}

impl WorkingState {
    /// Estimated heap bytes of the working structures (for Table IV).
    pub fn heap_bytes(&self) -> usize {
        self.tree.heap_bytes()
            + self.uf.heap_bytes()
            + self.is_core.capacity() / 8
            + self.wndq.capacity() / 8
            + self.assigned.capacity() / 8
            + self.wndq_list.capacity() * 4
            + self.noise_list.iter().map(|(_, v)| 16 + v.capacity() * 4).sum::<usize>()
    }
}

fn run_mudbscan(
    data: &Dataset,
    params: &DbscanParams,
    opts: &BuildOptions,
    disable_promotion: bool,
    disable_post_core_mc_skip: bool,
) -> MuDbscanOutput {
    let counters = Counters::new();
    let mut phases = PhaseTimer::new();
    let mut peak = 0usize;
    let run_span = obs::span!("mudbscan");

    // Step 1: micro-clusters + μR-tree, and preliminary clusters.
    let mut sw = Stopwatch::start();
    let step1 = obs::span!("tree_construction");
    let tree = build_micro_clusters(data, params.eps, opts, &counters);
    let mut state = WorkingState {
        tree,
        uf: UnionFind::new(data.len()),
        is_core: vec![false; data.len()],
        wndq: vec![false; data.len()],
        assigned: vec![false; data.len()],
        wndq_list: Vec::new(),
        noise_list: Vec::new(),
    };
    process_micro_clusters(data, params, &mut state, &counters);
    drop(step1);
    phases.add_secs("tree_construction", sw.lap());
    peak = peak.max(state.heap_bytes());

    // Step 2: reachable micro-clusters.
    let step2 = obs::span!("finding_reachable");
    state.tree.compute_reachable(data, &counters);
    drop(step2);
    phases.add_secs("finding_reachable", sw.lap());

    // Step 3: remaining points.
    let step3 = obs::span!("clustering");
    process_rem_points(data, params, &mut state, &counters, disable_promotion);
    drop(step3);
    phases.add_secs("clustering", sw.lap());
    peak = peak.max(state.heap_bytes());

    // Step 4: final connections.
    let step4 = obs::span!("post_processing");
    post_processing_core(data, params, &mut state, &counters, disable_post_core_mc_skip);
    post_processing_noise(&mut state, &counters);
    drop(step4);
    phases.add_secs("post_processing", sw.lap());
    peak = peak.max(state.heap_bytes());

    if obs::enabled() {
        let (dense, core, sparse) = state.tree.kind_histogram(params);
        obs::record_count("mc/dense", dense as u64);
        obs::record_count("mc/core", core as u64);
        obs::record_count("mc/sparse", sparse as u64);
        obs::record_count("queries/executed", counters.range_queries());
        obs::record_count("queries/saved", counters.queries_saved());
        obs::record_count("peak_heap_bytes", peak as u64);
    }
    drop(run_span);

    let mc_count = state.tree.mc_count();
    let avg_mc_size = state.tree.avg_mc_size();
    let clustering = Clustering::from_union_find(&mut state.uf, state.is_core);

    MuDbscanOutput { clustering, counters, phases, mc_count, avg_mc_size, peak_heap_bytes: peak }
}

/// Algorithm 4: classify each MC; label wndq-cores; preliminary unions.
pub fn process_micro_clusters(
    data: &Dataset,
    params: &DbscanParams,
    state: &mut WorkingState,
    counters: &Counters,
) {
    for mc_idx in 0..state.tree.mcs.len() {
        let kind = state.tree.mcs[mc_idx].kind(params);
        match kind {
            McKind::Dense => {
                let mc = &state.tree.mcs[mc_idx];
                let center = mc.center;
                let inner: Vec<PointId> = mc.inner_circle(data, params.eps).collect();
                let members = mc.members.clone();
                for q in inner {
                    if !state.wndq[q as usize] {
                        state.is_core[q as usize] = true;
                        state.wndq[q as usize] = true;
                        state.wndq_list.push(q);
                    }
                }
                for p in members {
                    state.uf.union(center, p);
                    state.assigned[p as usize] = true;
                    counters.count_union();
                }
            }
            McKind::Core => {
                let mc = &state.tree.mcs[mc_idx];
                let center = mc.center;
                let members = mc.members.clone();
                if !state.wndq[center as usize] {
                    state.is_core[center as usize] = true;
                    state.wndq[center as usize] = true;
                    state.wndq_list.push(center);
                }
                for p in members {
                    state.uf.union(center, p);
                    state.assigned[p as usize] = true;
                    counters.count_union();
                }
            }
            McKind::Sparse => {}
        }
    }
}

/// Algorithm 6: ε-queries for every point not tagged wndq-core, with the
/// disjoint-set union rules and dynamic wndq-core promotion.
pub fn process_rem_points(
    data: &Dataset,
    params: &DbscanParams,
    state: &mut WorkingState,
    counters: &Counters,
    disable_promotion: bool,
) {
    let half = params.eps / 2.0;
    let half_sq = half * half;
    let mut nbhrs: Vec<PointId> = Vec::new();

    for p in data.ids() {
        if state.wndq[p as usize] {
            counters.count_query_saved();
            continue;
        }
        nbhrs.clear();
        let cost = state.tree.neighborhood(data, p, &mut nbhrs);
        counters.count_range_query();
        counters.count_dists(cost.mbr_tests);
        counters.count_node_visits(cost.nodes_visited.max(1));
        if obs::enabled() {
            obs::record_hist("query/node_visits", cost.nodes_visited.max(1));
            obs::record_hist("query/candidates", nbhrs.len() as u64);
            // Leaf entries whose exact distance the batched kernels
            // evaluated — the numerator of the kernel-efficiency ratio
            // (leaf_evals / candidates) tracked since schema v5.
            obs::record_hist("query/leaf_evals", cost.candidates);
        }

        if nbhrs.len() < params.min_pts {
            // Non-core: attach to the first core neighbour if unassigned.
            if !state.assigned[p as usize] {
                let mut attached = false;
                for &x in &nbhrs {
                    if state.is_core[x as usize] {
                        state.uf.union(x, p);
                        counters.count_union();
                        state.assigned[p as usize] = true;
                        attached = true;
                        break;
                    }
                }
                if !attached {
                    state.noise_list.push((p, nbhrs.clone()));
                }
            }
            continue;
        }

        // Core point.
        state.is_core[p as usize] = true;
        state.assigned[p as usize] = true;
        for &x in &nbhrs {
            if state.is_core[x as usize] {
                state.uf.union(x, p);
                counters.count_union();
            } else if !state.assigned[x as usize] {
                state.uf.union(p, x);
                counters.count_union();
                state.assigned[x as usize] = true;
            }
        }

        // Step (iii): dynamic promotion — if the ε/2-neighbourhood of p is
        // itself dense, all of it is core (same argument as Lemma 1: any
        // two points strictly within ε/2 of p are strictly within ε of
        // each other).
        if !disable_promotion {
            let pc = data.point(p);
            let inner_count =
                nbhrs.iter().filter(|&&q| dist_sq(pc, data.point(q)) < half_sq).count();
            counters.count_dists(nbhrs.len() as u64);
            if inner_count >= params.min_pts {
                for &q in &nbhrs {
                    if !state.is_core[q as usize] && dist_sq(pc, data.point(q)) < half_sq {
                        state.is_core[q as usize] = true;
                        state.wndq[q as usize] = true;
                        state.wndq_list.push(q);
                        state.uf.union(p, q);
                        counters.count_union();
                        state.assigned[q as usize] = true;
                    }
                }
            }
        }
    }
}

/// Algorithm 7: connect each wndq-core point to core points of *other*
/// clusters strictly within ε, searching only the filtered reachable MCs.
pub fn post_processing_core(
    data: &Dataset,
    params: &DbscanParams,
    state: &mut WorkingState,
    counters: &Counters,
    disable_mc_skip: bool,
) {
    let eps_sq = params.eps_sq();
    for i in 0..state.wndq_list.len() {
        let p = state.wndq_list[i];
        let pc = data.point(p);
        let reach = state.tree.reach_of(p).to_vec();
        for mc_id in reach {
            let mc = &state.tree.mcs[mc_id as usize];
            // Filter: reachable MC must meet the open ε-ball of p.
            if mc.mbr.min_dist_sq(pc) >= eps_sq {
                continue;
            }
            if !disable_mc_skip && mc.kind(params) != McKind::Sparse {
                // Every member of a DMC/CMC was unioned with its center in
                // Algorithm 4 and unions never split, so the whole MC lives
                // in ONE cluster: a single root comparison covers all its
                // members (paper §IV-B4's same-cluster skip, hoisted to MC
                // granularity), and a single union with any in-ε core
                // member connects p to all of them.
                if state.uf.same(p, mc.center) {
                    continue;
                }
                let aux = mc.aux.as_ref().expect("aux trees built");
                let is_core = &state.is_core;
                let mut hit: Option<PointId> = None;
                let cost = aux.search_sphere(pc, params.eps, |q| {
                    if hit.is_none() && q != p && is_core[q as usize] {
                        hit = Some(q);
                    }
                });
                // Same accounting as the other aux query sites: this IS a
                // range query, and its node visits count like any other.
                counters.count_range_query();
                counters.count_dists(cost.mbr_tests);
                counters.count_node_visits(cost.nodes_visited.max(1));
                // Separate histogram key: which aux queries execute here
                // depends on union order, which is interleaving-dependent
                // at t>1 — keep `query/*` strictly deterministic.
                if obs::enabled() {
                    obs::record_hist("postproc/node_visits", cost.nodes_visited.max(1));
                }
                if let Some(q) = hit {
                    state.uf.union(p, q);
                    counters.count_union();
                }
            } else {
                // Sparse MCs are small (< MinPts members): scan directly.
                let members = mc.members.clone();
                for q in members {
                    if q == p || !state.is_core[q as usize] {
                        continue;
                    }
                    // Same-cluster check first — the cheap union–find
                    // lookup skips the distance computation.
                    if state.uf.same(p, q) {
                        continue;
                    }
                    counters.count_dists(1);
                    if dist_sq(pc, data.point(q)) < eps_sq {
                        state.uf.union(p, q);
                        counters.count_union();
                    }
                }
            }
        }
    }
}

/// Algorithm 8: rescue noise points whose stored neighbourhood turned out
/// to contain a core point (one promoted after the point was examined).
pub fn post_processing_noise(state: &mut WorkingState, counters: &Counters) {
    for i in 0..state.noise_list.len() {
        let (p, ref nbhrs) = state.noise_list[i];
        if state.is_core[p as usize] || state.assigned[p as usize] {
            continue;
        }
        for &q in nbhrs {
            if state.is_core[q as usize] {
                state.uf.union(q, p);
                counters.count_union();
                state.assigned[p as usize] = true;
                break;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clustering::check_exact;
    use crate::reference::naive_dbscan;

    fn check_dataset(rows: Vec<Vec<f64>>, eps: f64, min_pts: usize) {
        let data = Dataset::from_rows(&rows);
        let params = DbscanParams::new(eps, min_pts);
        let out = MuDbscan::from_params(params).run(&data);
        let reference = naive_dbscan(&data, &params);
        let rep = check_exact(&out.clustering, &reference, &data, &params);
        assert!(
            rep.is_exact(),
            "not exact ({rep:?}): n={} eps={eps} min_pts={min_pts}, got {} clusters, want {}",
            data.len(),
            out.clustering.n_clusters,
            reference.n_clusters
        );
    }

    fn grid(n: usize, step: f64) -> Vec<Vec<f64>> {
        let mut rows = Vec::new();
        for i in 0..n {
            for j in 0..n {
                rows.push(vec![i as f64 * step, j as f64 * step]);
            }
        }
        rows
    }

    fn blobs() -> Vec<Vec<f64>> {
        let mut rows = Vec::new();
        // Three dense blobs + scattered noise, deterministic LCG jitter.
        let mut s = 42u64;
        let mut r = move || {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((s >> 33) as f64 / (1u64 << 31) as f64) - 1.0
        };
        for (cx, cy) in [(0.0, 0.0), (6.0, 0.0), (3.0, 6.0)] {
            for _ in 0..40 {
                rows.push(vec![cx + 0.5 * r(), cy + 0.5 * r()]);
            }
        }
        for _ in 0..15 {
            rows.push(vec![12.0 * r() + 3.0, 12.0 * r() + 3.0]);
        }
        rows
    }

    #[test]
    fn exact_on_dense_grid() {
        check_dataset(grid(12, 0.4), 0.5, 4);
    }

    #[test]
    fn exact_on_sparse_grid() {
        check_dataset(grid(10, 1.0), 1.1, 5);
    }

    #[test]
    fn exact_on_blobs_various_params() {
        for (eps, min_pts) in [(0.4, 4), (0.6, 5), (1.0, 8), (0.2, 3)] {
            check_dataset(blobs(), eps, min_pts);
        }
    }

    #[test]
    fn exact_on_chain() {
        let rows: Vec<Vec<f64>> = (0..50).map(|i| vec![0.45 * i as f64, 0.0]).collect();
        check_dataset(rows, 0.5, 2);
    }

    #[test]
    fn exact_with_duplicates() {
        let mut rows = vec![vec![1.0, 1.0]; 10];
        rows.extend(vec![vec![5.0, 5.0]; 3]);
        rows.push(vec![3.0, 3.0]);
        check_dataset(rows, 0.5, 5);
    }

    #[test]
    fn exact_in_higher_dimensions() {
        let mut rows = Vec::new();
        let mut s = 7u64;
        let mut r = move || {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1);
            ((s >> 33) as f64 / (1u64 << 31) as f64) - 1.0
        };
        for c in [[0.0; 5], [4.0; 5]] {
            for _ in 0..30 {
                let p: Vec<f64> = c.iter().map(|&x| x + 0.6 * r()).collect();
                rows.push(p);
            }
        }
        check_dataset(rows, 1.0, 6);
    }

    #[test]
    fn saves_queries_on_dense_data() {
        let data = Dataset::from_rows(&grid(20, 0.1));
        let params = DbscanParams::new(0.5, 5);
        let out = MuDbscan::from_params(params).run(&data);
        assert!(
            out.counters.pct_queries_saved() > 50.0,
            "dense data should save most queries, saved {:.1}%",
            out.counters.pct_queries_saved()
        );
        assert!(out.mc_count < data.len() / 4);
        assert!(out.avg_mc_size > 1.0);
        assert!(out.peak_heap_bytes > 0);
        assert!(out.phases.total_secs() > 0.0);
    }

    #[test]
    fn promotion_ablation_stays_exact() {
        let data = Dataset::from_rows(&blobs());
        let params = DbscanParams::new(0.5, 5);
        let mut alg = MuDbscan::from_params(params);
        alg.disable_dynamic_promotion = true;
        let out = alg.run(&data);
        let reference = naive_dbscan(&data, &params);
        assert!(check_exact(&out.clustering, &reference, &data, &params).is_exact());
        // Without promotion at least as many queries are executed.
        let with = MuDbscan::from_params(params).run(&data);
        assert!(out.counters.range_queries() >= with.counters.range_queries());
    }

    #[test]
    fn paper_faithful_postprocessing_stays_exact() {
        let data = Dataset::from_rows(&blobs());
        let params = DbscanParams::new(0.5, 5);
        let mut alg = MuDbscan::from_params(params);
        alg.disable_post_core_mc_skip = true;
        let out = alg.run(&data);
        let reference = naive_dbscan(&data, &params);
        assert!(check_exact(&out.clustering, &reference, &data, &params).is_exact());
        // Identical clustering to the optimised path.
        let opt = MuDbscan::from_params(params).run(&data);
        assert_eq!(out.clustering, opt.clustering);
    }

    /// Pin the POST-PROCESSING-NOISE ordering (Algorithm 8): a noise
    /// candidate whose stored neighbourhood gains a core point only via
    /// Step 3's *dynamic promotion* — after the candidate was examined —
    /// must be rescued into that cluster.
    ///
    /// Construction (ε = 1, MinPts = 5), ids in scan order:
    ///   0  p = (1.4, 0)   the noise candidate; N(p) = {p, q}, examined first
    ///   1  x = (0, 0)     step-3 core whose ε/2-ball holds 5 points → promotes
    ///   2..4 a, b, c      (±0.3, 0), (0, 0.3): x's inner circle
    ///   5  q = (0.45, 0)  in p's MC; promoted by x's query, never queried itself
    ///
    /// MC structure keeps everything Sparse (MC{p,q} has 2 members,
    /// MC{x,a,b,c} has 4 < MinPts), so no step-1b wndq shortcut exists: at
    /// p's turn nothing is core yet and p lands on the noise list. x's
    /// query then promotes q (inner circle {x,a,b,c,q} reaches MinPts), and
    /// q's own turn is skipped as a saved query — q is core *only* through
    /// the promotion. Algorithm 8 must attach p to q's cluster.
    #[test]
    fn noise_rescued_after_dynamic_promotion() {
        let rows = vec![
            vec![1.4, 0.0],  // 0: p
            vec![0.0, 0.0],  // 1: x
            vec![0.3, 0.0],  // 2: a
            vec![-0.3, 0.0], // 3: b
            vec![0.0, 0.3],  // 4: c
            vec![0.45, 0.0], // 5: q
        ];
        let data = Dataset::from_rows(&rows);
        let params = DbscanParams::new(1.0, 5);
        let out = MuDbscan::from_params(params).run(&data);

        // The scenario actually exercised the promotion path: only p and x
        // ran neighbourhood queries; a, b, c, q were all saved by wndq tags.
        assert_eq!(out.counters.range_queries(), 2, "expected only p and x to query");
        assert_eq!(out.counters.queries_saved(), 4, "a, b, c, q must skip their queries");

        // p was rescued: border of the single cluster, not noise.
        assert_eq!(out.clustering.n_clusters, 1);
        assert_eq!(out.clustering.noise_count(), 0);
        assert!(out.clustering.is_border(0), "p must be a border point");
        assert!(!out.clustering.is_core[0]);
        assert_eq!(out.clustering.labels[0], out.clustering.labels[5], "p joins q's cluster");
        for i in 1..6 {
            assert!(out.clustering.is_core[i], "point {i} must be core");
        }

        // And the full oracle agrees (also under the no-promotion ablation,
        // where q instead becomes core through its own later query).
        let reference = naive_dbscan(&data, &params);
        assert!(check_exact(&out.clustering, &reference, &data, &params).is_exact());
        let mut no_promo = MuDbscan::from_params(params);
        no_promo.disable_dynamic_promotion = true;
        let out2 = no_promo.run(&data);
        assert!(check_exact(&out2.clustering, &reference, &data, &params).is_exact());
    }

    #[test]
    fn empty_and_singleton() {
        let data = Dataset::from_rows(&[vec![1.0, 2.0]]);
        let out = MuDbscan::from_params(DbscanParams::new(0.5, 2)).run(&data);
        assert_eq!(out.clustering.n_clusters, 0);
        assert!(out.clustering.is_noise(0));
    }

    #[test]
    fn all_one_cluster_minpts_one() {
        check_dataset(grid(6, 0.3), 0.5, 1);
    }
}
