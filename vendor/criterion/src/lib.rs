//! Offline shim for the subset of `criterion` used by this workspace's
//! benches. There is no crates.io access in the build environment, so this
//! crate provides a minimal wall-clock harness with the same API shape:
//! `criterion_group! { name = ..; config = ..; targets = .. }`,
//! `criterion_main!`, `Criterion::benchmark_group`, `bench_function`,
//! `Bencher::iter`, and `BenchmarkId::new`.
//!
//! Timing methodology is intentionally simple (median of `sample_size`
//! timed batches after a short warm-up); it is good enough for the A/B
//! ablation comparisons the benches make, not for microsecond-accurate
//! statistics.

use std::fmt::Write as _;
use std::time::{Duration, Instant};

#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(name: impl Into<String>, param: impl std::fmt::Display) -> Self {
        let mut id = name.into();
        let _ = write!(id, "/{param}");
        BenchmarkId { id }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

pub struct Bencher {
    samples: Vec<Duration>,
    iters_per_sample: u64,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up to populate caches / JIT-like effects (allocator pools).
        let warm_start = Instant::now();
        while warm_start.elapsed() < Duration::from_millis(20) {
            std::hint::black_box(f());
        }
        let n_samples = self.samples.capacity().max(1);
        for _ in 0..n_samples {
            let t0 = Instant::now();
            for _ in 0..self.iters_per_sample {
                std::hint::black_box(f());
            }
            self.samples.push(t0.elapsed() / self.iters_per_sample as u32);
        }
    }
}

pub struct BenchmarkGroup<'c> {
    criterion: &'c mut Criterion,
    group_name: String,
}

impl BenchmarkGroup<'_> {
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut b = Bencher {
            samples: Vec::with_capacity(self.criterion.sample_size),
            iters_per_sample: 1,
        };
        f(&mut b);
        b.samples.sort_unstable();
        let median = b.samples.get(b.samples.len() / 2).copied().unwrap_or_default();
        println!("bench {}/{}: median {:?}", self.group_name, id.id, median);
        self
    }

    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    pub fn finish(&mut self) {}
}

pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { criterion: self, group_name: name.into() }
    }

    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.benchmark_group("default").bench_function(id, f);
        self
    }
}

/// `black_box` re-export (benches mostly use `std::hint::black_box`
/// directly, but upstream criterion exposes one too).
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

#[macro_export]
macro_rules! criterion_group {
    ( name = $name:ident; config = $config:expr; targets = $( $target:path ),+ $(,)? ) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ( $name:ident, $( $target:path ),+ $(,)? ) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $( $target ),+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ( $( $group:path ),+ $(,)? ) => {
        fn main() {
            $( $group(); )+
        }
    };
}
