//! Batched distance kernels over column-major (structure-of-arrays)
//! coordinate blocks.
//!
//! The hot loop of every ε-query is "squared distance from one query
//! point to many stored points". Row-major storage makes that a chain of
//! short dependent loops (one per point); column-major storage turns it
//! into `dim` long independent loops over unit-stride slices — exactly
//! the shape LLVM autovectorizes without any `core::arch` intrinsics.
//!
//! Two implementations are provided with **bit-identical** results:
//!
//! * [`dist_sq_batch`] — the column-wise kernel. For each dimension `k`
//!   it streams the whole column once, accumulating `(x_k − q_k)²` into a
//!   per-point accumulator array. Unit-stride loads, a broadcast query
//!   coordinate and no branches let the compiler emit packed SIMD.
//! * [`dist_sq_scalar`] — the row-wise reference loop (one point at a
//!   time), retained as the equivalence oracle and as the short-circuit
//!   path where per-point early exit matters more than throughput.
//!
//! Bit-identity holds because both kernels sum each point's squared
//! component differences in ascending dimension order: the per-point
//! floating-point operation *sequence* is the same, only the interleaving
//! across points differs (IEEE 754 addition is deterministic, so
//! interleaving cannot change any individual sum). The
//! `batch_matches_scalar_bitwise` test pins this.
//!
//! Layout contract shared by all kernels: `cols` holds `dim` columns of
//! `stride` floats each; column `k` occupies `cols[k*stride .. k*stride
//! + len]` and entries beyond `len` are ignored padding.

/// Squared Euclidean distances from `q` to each of the `len` points
/// stored column-major in `cols` (see the module docs for the layout),
/// written to `out[..len]` — the autovectorizing column-wise kernel.
///
/// # Panics
/// When `q.len() != dim`, `out.len() < len`, or `cols` is shorter than
/// the layout requires.
#[inline]
pub fn dist_sq_batch(
    cols: &[f64],
    stride: usize,
    len: usize,
    dim: usize,
    q: &[f64],
    out: &mut [f64],
) {
    assert_eq!(q.len(), dim, "query dimensionality mismatch");
    assert!(len <= stride, "len exceeds column stride");
    assert!(cols.len() >= dim * stride, "column block too short");
    let out = &mut out[..len];
    out.fill(0.0);
    for (k, &qk) in q.iter().enumerate() {
        let col = &cols[k * stride..k * stride + len];
        for (acc, &x) in out.iter_mut().zip(col) {
            let d = x - qk;
            *acc += d * d;
        }
    }
}

/// Row-wise reference implementation of [`dist_sq_batch`]: one point at
/// a time, ascending dimension order. Bit-identical to the batch kernel
/// (same per-point operation sequence); kept as the equivalence oracle
/// and for callers that want to stop after a specific point.
#[inline]
pub fn dist_sq_scalar(
    cols: &[f64],
    stride: usize,
    len: usize,
    dim: usize,
    q: &[f64],
    out: &mut [f64],
) {
    assert_eq!(q.len(), dim, "query dimensionality mismatch");
    assert!(len <= stride, "len exceeds column stride");
    assert!(cols.len() >= dim * stride, "column block too short");
    for (i, acc) in out[..len].iter_mut().enumerate() {
        *acc = dist_sq_strided(cols, stride, dim, i, q);
    }
}

/// Squared Euclidean distance from `q` to the single point at row `i` of
/// the column-major block — the per-point primitive both kernels reduce
/// to, and the one short-circuiting scans call directly.
#[inline]
pub fn dist_sq_strided(cols: &[f64], stride: usize, dim: usize, i: usize, q: &[f64]) -> f64 {
    debug_assert!(i < stride);
    let mut acc = 0.0;
    for (k, &qk) in q.iter().take(dim).enumerate() {
        let d = cols[k * stride + i] - qk;
        acc += d * d;
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dist_sq;

    /// Deterministic pseudo-random coordinate (no RNG dependency).
    fn coord(seed: u64, i: usize, k: usize) -> f64 {
        let x = seed
            .wrapping_mul(6364136223846793005)
            .wrapping_add((i as u64).wrapping_mul(1442695040888963407))
            .wrapping_add((k as u64).wrapping_mul(2654435761));
        ((x >> 11) % 100_000) as f64 / 997.0 - 50.0
    }

    fn block(seed: u64, len: usize, stride: usize, dim: usize) -> (Vec<f64>, Vec<Vec<f64>>) {
        let mut cols = vec![f64::NAN; dim * stride]; // NaN padding: must never be read
        let mut rows = vec![vec![0.0; dim]; len];
        for k in 0..dim {
            for i in 0..len {
                let v = coord(seed, i, k);
                cols[k * stride + i] = v;
                rows[i][k] = v;
            }
        }
        (cols, rows)
    }

    #[test]
    fn batch_matches_scalar_bitwise() {
        for dim in 1..=8 {
            for len in [0usize, 1, 3, 31, 32, 33] {
                let stride = len.max(1) + 3;
                let (cols, rows) = block(dim as u64 * 31 + len as u64, len, stride, dim);
                let q: Vec<f64> = (0..dim).map(|k| coord(7, 9999, k)).collect();
                let mut a = vec![f64::NAN; len];
                let mut b = vec![f64::NAN; len];
                dist_sq_batch(&cols, stride, len, dim, &q, &mut a);
                dist_sq_scalar(&cols, stride, len, dim, &q, &mut b);
                for i in 0..len {
                    assert_eq!(a[i].to_bits(), b[i].to_bits(), "dim={dim} len={len} i={i}");
                    // Both must equal the row-major reference kernel too:
                    // same ascending-dimension summation order.
                    assert_eq!(
                        a[i].to_bits(),
                        dist_sq(&rows[i], &q).to_bits(),
                        "dim={dim} len={len} i={i} vs row-major"
                    );
                    assert_eq!(
                        dist_sq_strided(&cols, stride, dim, i, &q).to_bits(),
                        a[i].to_bits()
                    );
                }
            }
        }
    }

    #[test]
    fn padding_is_never_read() {
        // NaN poison beyond `len` must not leak into any output.
        let (cols, _) = block(3, 5, 9, 4);
        let q = [0.25; 4];
        let mut out = vec![0.0; 5];
        dist_sq_batch(&cols, 9, 5, 4, &q, &mut out);
        assert!(out.iter().all(|d| d.is_finite()));
    }

    #[test]
    #[should_panic(expected = "query dimensionality")]
    fn dim_mismatch_panics() {
        let mut out = [0.0; 1];
        dist_sq_batch(&[0.0; 4], 2, 1, 2, &[0.0; 3], &mut out);
    }
}
