//! μDBSCAN-D, PDSDBSCAN-D and GridDBSCAN-D: the three kd-partitioned
//! distributed algorithms (they share partitioning and merge; only the
//! local stage differs).

use crate::driver::{run_distributed, DistError, DistOutput, LocalRun};
use crate::recovery::FaultConfig;
use baselines::{GridDbscan, RDbscan};
use cluster_sim::FaultPlan;
use cluster_sim::{CommModel, ExecMode};
use geom::{Dataset, DbscanParams};
use mcs::BuildOptions;
use metrics::mem::MemBudget;
use mudbscan::MuDbscan;
use partition::kd_partition;

/// Common configuration of the kd-partitioned distributed algorithms.
#[derive(Debug, Clone, Copy)]
pub struct DistConfig {
    /// Number of simulated ranks (`p`).
    pub ranks: usize,
    /// Execution mode of the BSP engine.
    pub mode: ExecMode,
    /// Communication cost model.
    pub comm: CommModel,
    /// Worker threads used *inside* each rank's local μDBSCAN stage —
    /// the paper's future-work "leverage multiple cores available in
    /// each computing node". `1` (default) runs the sequential local
    /// algorithm; `> 1` runs [`mudbscan::ParMuDbscan`] per rank.
    pub local_threads: usize,
}

impl DistConfig {
    /// `p` sequentially simulated ranks with the default network model.
    pub fn new(ranks: usize) -> Self {
        Self { ranks, mode: ExecMode::Sequential, comm: CommModel::default(), local_threads: 1 }
    }

    /// Run the rank programs on real threads.
    pub fn threaded(mut self) -> Self {
        self.mode = ExecMode::Threaded;
        self
    }

    /// Use `t` worker threads inside each rank's local clustering stage.
    pub fn with_local_threads(mut self, t: usize) -> Self {
        assert!(t >= 1);
        self.local_threads = t;
        self
    }
}

/// μDBSCAN-D (paper §V): kd partitioning + local μDBSCAN + merge.
#[derive(Debug, Clone)]
pub struct MuDbscanD {
    params: DbscanParams,
    cfg: DistConfig,
    opts: BuildOptions,
    faults: Option<FaultConfig>,
}

impl MuDbscanD {
    /// New instance.
    ///
    /// Low-level entry point; applications should prefer
    /// `mudbscan::prelude::Runner::new(params).ranks(p)`.
    pub fn from_params(params: DbscanParams, cfg: DistConfig) -> Self {
        Self { params, cfg, opts: BuildOptions::default(), faults: None }
    }

    /// Override micro-cluster construction options.
    pub fn with_options(mut self, opts: BuildOptions) -> Self {
        self.opts = opts;
        self
    }

    /// Inject a fault schedule with retry/recovery options; the run stays
    /// bit-identical to fault-free as long as drops fit the retry budget
    /// (see [`crate::recovery`]).
    pub fn with_faults(mut self, faults: FaultConfig) -> Self {
        self.faults = Some(faults);
        self
    }

    /// Inject `plan` under the default retry policy.
    pub fn with_fault_plan(self, plan: FaultPlan) -> Self {
        self.with_faults(FaultConfig::new(plan))
    }

    /// Run on `data`.
    // The local stage drives the core constructors directly rather than
    // going through the facade — depending on `mudbscan` (the api crate)
    // here would be a dependency cycle.
    pub fn run(&self, data: &Dataset) -> Result<DistOutput, DistError> {
        let part =
            kd_partition(data, self.cfg.ranks, self.params.eps, self.cfg.mode, self.cfg.comm);
        let params = self.params;
        let opts = self.opts;
        let local_threads = self.cfg.local_threads;
        run_distributed(
            data.len(),
            part.shards,
            part.phases,
            part.comm_bytes,
            &params,
            self.cfg.mode,
            self.cfg.comm,
            self.faults.as_ref(),
            move |_rank, combined, _own_n| {
                if local_threads > 1 {
                    let out = mudbscan::ParMuDbscan::from_params(params, local_threads)
                        .with_options(opts)
                        .run(combined);
                    Ok(LocalRun {
                        clustering: out.clustering,
                        phases: out.phases,
                        counters: out.counters.snapshot(),
                        peak_heap_bytes: 0,
                    })
                } else {
                    let out = MuDbscan::from_params(params).with_options(opts).run(combined);
                    Ok(LocalRun {
                        clustering: out.clustering,
                        phases: out.phases,
                        counters: out.counters,
                        peak_heap_bytes: out.peak_heap_bytes,
                    })
                }
            },
        )
    }
}

/// PDSDBSCAN-D (Patwary et al., SC'12): kd partitioning + classical
/// R-tree DBSCAN per rank (every point queried) + merge.
#[derive(Debug, Clone)]
pub struct PdsDbscanD {
    params: DbscanParams,
    cfg: DistConfig,
}

impl PdsDbscanD {
    /// New instance.
    pub fn new(params: DbscanParams, cfg: DistConfig) -> Self {
        Self { params, cfg }
    }

    /// Run on `data`.
    pub fn run(&self, data: &Dataset) -> Result<DistOutput, DistError> {
        let part =
            kd_partition(data, self.cfg.ranks, self.params.eps, self.cfg.mode, self.cfg.comm);
        let params = self.params;
        run_distributed(
            data.len(),
            part.shards,
            part.phases,
            part.comm_bytes,
            &params,
            self.cfg.mode,
            self.cfg.comm,
            None,
            move |_rank, combined, _own_n| {
                let out = RDbscan::new(params).run(combined);
                Ok(LocalRun {
                    clustering: out.clustering,
                    phases: out.phases,
                    counters: out.counters,
                    peak_heap_bytes: out.peak_heap_bytes,
                })
            },
        )
    }
}

/// GridDBSCAN-D: kd partitioning + grid-based local stage + merge. The
/// local stage inherits GridDBSCAN's exponential neighbour-cell memory;
/// a rank exceeding its budget fails the whole run with
/// [`DistError::Local`] — the paper's "Mem Err" rows of Table V.
#[derive(Debug, Clone)]
pub struct GridDbscanD {
    params: DbscanParams,
    cfg: DistConfig,
    /// Per-rank structure memory budget.
    pub budget: MemBudget,
}

impl GridDbscanD {
    /// New instance with a 4 GB per-rank budget.
    pub fn new(params: DbscanParams, cfg: DistConfig) -> Self {
        Self { params, cfg, budget: MemBudget::new(4 << 30) }
    }

    /// Override the per-rank memory budget.
    pub fn with_budget(mut self, budget: MemBudget) -> Self {
        self.budget = budget;
        self
    }

    /// Run on `data`.
    pub fn run(&self, data: &Dataset) -> Result<DistOutput, DistError> {
        let part =
            kd_partition(data, self.cfg.ranks, self.params.eps, self.cfg.mode, self.cfg.comm);
        let params = self.params;
        let budget = self.budget;
        run_distributed(
            data.len(),
            part.shards,
            part.phases,
            part.comm_bytes,
            &params,
            self.cfg.mode,
            self.cfg.comm,
            None,
            move |_rank, combined, _own_n| {
                let out = GridDbscan::new(params)
                    .with_budget(budget)
                    .run(combined)
                    .map_err(|e| e.to_string())?;
                Ok(LocalRun {
                    clustering: out.clustering,
                    phases: out.phases,
                    counters: out.counters,
                    peak_heap_bytes: out.peak_heap_bytes,
                })
            },
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mudbscan::{check_exact, naive_dbscan};

    fn blob_data(n_per: usize) -> Dataset {
        let mut rows = Vec::new();
        let mut s = 77u64;
        let mut r = move || {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(23);
            ((s >> 33) as f64 / (1u64 << 31) as f64) - 1.0
        };
        for (cx, cy, cz) in [(0.0, 0.0, 0.0), (6.0, 2.0, -1.0), (-4.0, 5.0, 3.0)] {
            for _ in 0..n_per {
                rows.push(vec![cx + 0.8 * r(), cy + 0.8 * r(), cz + 0.8 * r()]);
            }
        }
        for _ in 0..n_per / 3 {
            rows.push(vec![10.0 * r(), 10.0 * r(), 10.0 * r()]);
        }
        Dataset::from_rows(&rows)
    }

    #[test]
    fn mudbscan_d_exact_various_ranks() {
        let data = blob_data(60);
        let params = DbscanParams::new(0.7, 5);
        let reference = naive_dbscan(&data, &params);
        for p in [1, 2, 4, 7, 8] {
            let out = MuDbscanD::from_params(params, DistConfig::new(p)).run(&data).unwrap();
            let rep = check_exact(&out.clustering, &reference, &data, &params);
            assert!(rep.is_exact(), "p={p}: {rep:?}");
            assert_eq!(out.ranks, p);
            assert!(out.runtime_secs > 0.0);
        }
    }

    #[test]
    fn pdsdbscan_d_exact() {
        let data = blob_data(50);
        let params = DbscanParams::new(0.7, 5);
        let reference = naive_dbscan(&data, &params);
        let out = PdsDbscanD::new(params, DistConfig::new(4)).run(&data).unwrap();
        let rep = check_exact(&out.clustering, &reference, &data, &params);
        assert!(rep.is_exact(), "{rep:?}");
        // PDSDBSCAN queries every local point (own + halo).
        assert!(out.counters.range_queries() as usize >= data.len());
    }

    #[test]
    fn griddbscan_d_exact_low_dim() {
        let data = blob_data(50);
        let params = DbscanParams::new(0.7, 5);
        let reference = naive_dbscan(&data, &params);
        let out = GridDbscanD::new(params, DistConfig::new(4)).run(&data).unwrap();
        let rep = check_exact(&out.clustering, &reference, &data, &params);
        assert!(rep.is_exact(), "{rep:?}");
    }

    #[test]
    fn griddbscan_d_memory_error_high_dim() {
        let rows: Vec<Vec<f64>> = (0..80).map(|i| vec![0.05 * i as f64; 14]).collect();
        let data = Dataset::from_rows(&rows);
        let params = DbscanParams::new(1.0, 4);
        let alg = GridDbscanD::new(params, DistConfig::new(2)).with_budget(MemBudget::new(5 << 20));
        match alg.run(&data) {
            Err(DistError::Local(_, msg)) => assert!(msg.contains("memory"), "{msg}"),
            Ok(_) => panic!("expected per-rank memory error"),
        }
    }

    #[test]
    fn mudbscan_d_threaded_matches_sequential() {
        let data = blob_data(40);
        let params = DbscanParams::new(0.7, 5);
        let a = MuDbscanD::from_params(params, DistConfig::new(4)).run(&data).unwrap();
        let b = MuDbscanD::from_params(params, DistConfig::new(4).threaded()).run(&data).unwrap();
        assert_eq!(a.clustering, b.clustering);
    }

    #[test]
    fn query_savings_survive_distribution() {
        let data = blob_data(80);
        let params = DbscanParams::new(0.9, 5);
        let out = MuDbscanD::from_params(params, DistConfig::new(4)).run(&data).unwrap();
        assert!(
            out.counters.pct_queries_saved() > 20.0,
            "saved only {:.1}%",
            out.counters.pct_queries_saved()
        );
        let phases: Vec<String> = out.phases.split_up().iter().map(|(n, _, _)| n.clone()).collect();
        for expect in ["partitioning", "tree_construction", "clustering", "merging"] {
            assert!(phases.iter().any(|p| p == expect), "missing phase {expect}: {phases:?}");
        }
    }

    #[test]
    fn multicore_local_ranks_stay_exact() {
        let data = blob_data(50);
        let params = DbscanParams::new(0.7, 5);
        let reference = naive_dbscan(&data, &params);
        let out = MuDbscanD::from_params(params, DistConfig::new(4).with_local_threads(3))
            .run(&data)
            .unwrap();
        let rep = check_exact(&out.clustering, &reference, &data, &params);
        assert!(rep.is_exact(), "{rep:?}");
        // Same clustering as single-threaded local stages.
        let single = MuDbscanD::from_params(params, DistConfig::new(4)).run(&data).unwrap();
        assert_eq!(out.clustering, single.clustering);
    }

    #[test]
    fn agrees_with_sequential_mudbscan() {
        let data = blob_data(45);
        let params = DbscanParams::new(0.6, 4);
        let seq = MuDbscan::from_params(params).run(&data);
        let dist = MuDbscanD::from_params(params, DistConfig::new(5)).run(&data).unwrap();
        let rep = check_exact(&dist.clustering, &seq.clustering, &data, &params);
        assert!(rep.is_exact(), "{rep:?}");
    }
}
