//! Streaming scenario: points arrive one at a time (e.g. live GPS
//! pings) and the clustering is kept **exactly** up to date after every
//! insertion — the paper's future-work extension implemented in the
//! `stream` crate.
//!
//! ```text
//! cargo run --release --example stream_clustering
//! ```

use geom::DbscanParams;
use mudbscan_repro::prelude::*;
use stream::StreamingMuDbscan;

fn main() {
    let params = DbscanParams::new(0.35, 5);
    let feed = data::road_network(12_000, 77);

    println!("streaming μDBSCAN — ingesting {} GPS points one by one\n", feed.len());
    let mut s = StreamingMuDbscan::empty(3, params);

    println!("{:>8} {:>10} {:>8} {:>7} {:>8}", "ingested", "clusters", "noise", "cores", "MCs");
    let mut t = std::time::Instant::now();
    let mut last = 0usize;
    for (i, coords) in feed.iter() {
        s.insert(coords);
        let n = i as usize + 1;
        if n.is_multiple_of(2_000) {
            let snap = s.snapshot();
            let rate = (n - last) as f64 / t.elapsed().as_secs_f64();
            println!(
                "{n:>8} {:>10} {:>8} {:>7} {:>8}   ({rate:.0} pts/s)",
                snap.n_clusters,
                snap.noise_count(),
                snap.core_count(),
                s.mc_count()
            );
            t = std::time::Instant::now();
            last = n;
        }
    }

    // The headline guarantee, live: the final state equals batch DBSCAN.
    let final_snapshot = s.snapshot();
    let batch = Runner::new(params).run(&feed).expect("sequential run");
    assert_eq!(final_snapshot.n_clusters, batch.clustering.n_clusters);
    assert_eq!(final_snapshot.is_core, batch.clustering.is_core);
    assert_eq!(final_snapshot.noise_count(), batch.clustering.noise_count());
    println!("\nfinal streaming state equals batch μDBSCAN exactly ✓");
    println!(
        "({} ε-queries for {} insertions — {:.2} queries/point incl. promotions)",
        s.counters().range_queries(),
        s.len(),
        s.counters().range_queries() as f64 / s.len() as f64
    );
}
