//! Render a Chrome trace-event JSON file (as exported by
//! `obs::Trace::to_chrome_json`, e.g. via `emit_bench`'s
//! `EMIT_BENCH_TRACE_OUT` knob) as an ASCII timeline or flamegraph, or
//! validate its internal consistency.
//!
//! ```text
//! trace_view TRACE.json [--flame] [--check] [--width N] [--rows N]
//! ```
//!
//! * default  — per-thread wall timeline plus the per-rank BSP virtual
//!   timeline (compute `#` vs comm `~` segments)
//! * `--flame` — aggregated span-path flamegraph instead
//! * `--check` — parse the file back into a [`obs::Trace`] and run
//!   [`obs::Trace::validate`]; exit 1 on any inconsistency (the CI trace
//!   smoke step)
//!
//! Exit codes: 0 — ok; 1 — validation failure; 2 — usage/parse error.

use obs::{Json, Trace};

fn usage() -> ! {
    eprintln!("usage: trace_view TRACE.json [--flame] [--check] [--width N] [--rows N]");
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut path: Option<&str> = None;
    let mut flame = false;
    let mut check = false;
    let mut width = 100usize;
    let mut rows = 40usize;

    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--flame" => flame = true,
            "--check" => check = true,
            "--width" => {
                i += 1;
                width = args.get(i).and_then(|v| v.parse().ok()).unwrap_or_else(|| usage());
            }
            "--rows" => {
                i += 1;
                rows = args.get(i).and_then(|v| v.parse().ok()).unwrap_or_else(|| usage());
            }
            "--help" | "-h" => usage(),
            a if a.starts_with("--") => usage(),
            a => {
                if path.is_some() {
                    usage();
                }
                path = Some(a);
            }
        }
        i += 1;
    }
    let Some(path) = path else { usage() };

    let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("trace_view: cannot read {path}: {e}");
        std::process::exit(2);
    });
    let js = Json::parse(&text).unwrap_or_else(|e| {
        eprintln!("trace_view: {path} is not valid JSON: {e}");
        std::process::exit(2);
    });
    let trace = Trace::from_chrome_json(&js).unwrap_or_else(|e| {
        eprintln!("trace_view: {path} is not a Chrome trace export: {e}");
        std::process::exit(2);
    });

    if check {
        match trace.validate() {
            Ok(()) => {
                println!("trace_view: {path} OK ({} events)", trace.len());
                return;
            }
            Err(e) => {
                eprintln!("trace_view: {path} INVALID: {e}");
                std::process::exit(1);
            }
        }
    }

    if flame {
        print!("{}", obs::render::render_flame(&trace, width));
    } else {
        print!("{}", obs::render::render_timeline(&trace, width, rows));
    }
}
