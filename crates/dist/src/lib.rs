#![warn(missing_docs)]

//! Distributed DBSCAN algorithms over the BSP cluster simulator.
//!
//! * [`MuDbscanD`] — the paper's μDBSCAN-D: sampling-based kd-tree
//!   partitioning, ε-halo exchange, independent local μDBSCAN per rank,
//!   and a query-light merge phase over cross-partition ε-pairs.
//! * [`PdsDbscanD`] — Patwary et al.'s PDSDBSCAN-D: same partitioning and
//!   merge, but the local stage is classical R-tree DBSCAN (every point
//!   queried, no wndq-core savings).
//! * [`GridDbscanD`] — distributed GridDBSCAN (inherits the exponential
//!   neighbour-cell memory, so high-d runs return the paper's "Mem Err").
//! * [`HpDbscan`] — HPDBSCAN-style: grid-cell block partitioning with a
//!   load-cost heuristic instead of kd splits, grid-based local stage.
//! * [`RpDbscan`] — RP-DBSCAN-style ρ-approximate algorithm on *random*
//!   (non-spatial) partitioning with a global cell dictionary; the one
//!   intentionally approximate baseline (its cluster-count deviation is
//!   reported, mirroring the paper's observations about approximate
//!   competitors).
//!
//! ## Exactness of the merge (paper §V-C)
//!
//! Each rank clusters its own points plus the ε-halo. Because a rank sees
//! a *subset* of any halo point's true neighbourhood, it can only
//! under-mark halo cores — so every local union is justified by a chain
//! of truly-core pivots, and local clusterings are globally sound. The
//! merge pass then (1) queries each halo point against the rank's own
//! points to enumerate all cross-partition ε-pairs, (2) joins each pair
//! with the *owner's* exact core flags, and (3) replays the disjoint-set
//! union rules (core–core always unions; core–border only if the border
//! point is unassigned). Every cross-partition DBSCAN connection is one
//! such pair, so the global clustering equals sequential DBSCAN — which
//! the integration tests verify against `mudbscan::naive_dbscan`.

//! ```
//! use dist::{DistConfig, MuDbscanD};
//! use geom::DbscanParams;
//!
//! let rows: Vec<Vec<f64>> = (0..100)
//!     .map(|i| vec![0.1 * (i % 50) as f64 + 10.0 * (i / 50) as f64, 0.0])
//!     .collect();
//! let data = geom::Dataset::from_rows(&rows);
//! let out = MuDbscanD::from_params(DbscanParams::new(0.3, 4), DistConfig::new(4))
//!     .run(&data)
//!     .unwrap();
//! assert_eq!(out.clustering.n_clusters, 2); // two strips, one per group of 50
//! assert!(out.runtime_secs > 0.0);
//! ```

pub mod driver;
pub mod hpdbscan;
pub mod mudbscan_d;
pub mod recovery;
pub mod rpdbscan;
pub mod sharded;

pub use driver::{run_distributed, DistError, DistOutput, LocalRun};
pub use hpdbscan::HpDbscan;
pub use mudbscan_d::{DistConfig, GridDbscanD, MuDbscanD, PdsDbscanD};
pub use recovery::{Checkpoint, FaultConfig};
pub use rpdbscan::RpDbscan;
pub use sharded::{ShardedMuDbscan, ShardedOptions, ShardedOutput};
