//! One fluent builder over all seven algorithm families.
//!
//! [`Runner`] replaces the four divergent constructor shapes
//! (`new(params)`, `new(params, threads)`, `new(dim, params)`,
//! `new(params, cfg)`) with a single chain:
//!
//! ```
//! use mudbscan::prelude::*;
//!
//! let data = Dataset::from_rows(&[vec![0.0], vec![0.05], vec![0.1], vec![9.0]]);
//! let params = DbscanParams::new(0.2, 3);
//!
//! // Sequential (the default family)…
//! let seq = Runner::new(params).run(&data).unwrap();
//! // …shared-memory parallel…
//! let par = Runner::new(params).threads(4).run(&data).unwrap();
//! // …and distributed over 2 simulated ranks.
//! let dist = Runner::new(params).ranks(2).run(&data).unwrap();
//! assert_eq!(seq.clustering, par.clustering);
//! assert_eq!(seq.clustering, dist.clustering);
//! ```
//!
//! The family is inferred — `.ranks(p)` selects [`Family::Distributed`],
//! otherwise `.shards(s)` / `.memory_budget(b)` select
//! [`Family::Sharded`], otherwise `.threads(t > 1)` selects
//! [`Family::Parallel`], otherwise [`Family::Sequential`] — or forced
//! with [`Runner::family`] (the only way to reach
//! [`Family::Streaming`], [`Family::Optics`], and the batch shape of
//! [`Family::Serving`]). Configuration that a family cannot honour (a
//! fault plan outside `Distributed`, a shard count or memory budget
//! outside `Sharded`, worker threads on the inherently sequential
//! families, ablation knobs outside `Sequential`) is an
//! [`MuDbscanError::InvalidConfig`] at build time, never silently
//! ignored.
//!
//! Inputs need not be in memory: [`Runner::run_source`] clusters any
//! [`DataSource`] — the in-memory [`Dataset`], or a memory-mapped
//! on-disk [`ChunkedStore`] written by [`write_store`] — and
//! [`Runner::run`] is a thin wrapper over it. The [`Family::Sharded`]
//! executor streams shards from the source under the configured memory
//! budget; its output is deterministic across shard counts, budgets
//! and thread counts — bit-identical to [`naive_dbscan`]'s canonical
//! border rule, and paper-exact against every in-memory family (same
//! cores, core partition and noise; DBSCAN leaves border ties
//! order-defined). See `docs/API.md` for the out-of-core cookbook.
//!
//! The serving family is special: besides the one-shot batch shape
//! above, [`Runner::serve`] starts the long-running concurrent service
//! and hands back a [`ServeHandle`] for batched ingest (inserts,
//! deletions, TTL expiry) and snapshot-isolated queries — tuned via
//! [`Runner::serve_options`]; see `docs/SERVING.md`.

pub use crate::error::MuDbscanError;
pub use cluster_sim::{Fault, FaultPlan, FaultStats, RankClock, RetryConfig};
pub use data::{write_store, ChunkedStore, StoreError, StoreWriter};
pub use dist::{DistError, FaultConfig, ShardedOutput};
pub use geom::{
    gather_dense, Cols, DataSource, Dataset, DbscanParams, PointId, SourceChunk, DEFAULT_CHUNK_CAP,
};
pub use mcs::{BuildOptions, ParBuildStats};
pub use metrics::{Counters, PhaseTimer};
pub use mudbscan_core::{naive_dbscan, Clustering, NOISE};
pub use stream::{
    Drained, ExtId, Membership, RemoveOutcome, ServeError, ServeHandle, ServeOp, ServeOptions,
    ServeStats, ServingMuDbscan, Snapshot,
};

use dist::{DistConfig, MuDbscanD, ShardedMuDbscan, ShardedOptions};
use mudbscan_core::{MuDbscan, ParMuDbscan};
use optics::{extract_dbscan, Optics};
use stream::StreamingMuDbscan;

/// The seven algorithm families the facade can construct.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Family {
    /// Sequential μDBSCAN (paper §IV).
    Sequential,
    /// Shared-memory parallel μDBSCAN.
    Parallel,
    /// μDBSCAN-D over the BSP cluster simulator (paper §V).
    Distributed,
    /// Out-of-core sharded μDBSCAN: spatial shards cut to a memory
    /// budget, clustered on OS threads, merged exactly — bit-identical
    /// to [`naive_dbscan`] for any shard geometry. The one family that
    /// can stream a [`ChunkedStore`] without materialising the dataset.
    Sharded,
    /// Insertion-incremental μDBSCAN, bulk-loaded from the dataset.
    Streaming,
    /// OPTICS ordering with DBSCAN extraction at the generating ε.
    Optics,
    /// The concurrent serving layer over the streaming engine: as a
    /// batch family it ingests the dataset in one epoch and drains; the
    /// long-running handle shape is [`Runner::serve`].
    Serving,
}

impl Family {
    fn name(self) -> &'static str {
        match self {
            Family::Sequential => "Sequential",
            Family::Parallel => "Parallel",
            Family::Distributed => "Distributed",
            Family::Sharded => "Sharded",
            Family::Streaming => "Streaming",
            Family::Optics => "Optics",
            Family::Serving => "Serving",
        }
    }
}

/// Family-specific extras accompanying a [`RunOutput`].
#[derive(Debug)]
pub enum RunDetails {
    /// Sequential μDBSCAN reporting quantities (paper Tables II–IV).
    Sequential {
        /// Number of micro-clusters formed.
        mc_count: usize,
        /// Average points per micro-cluster.
        avg_mc_size: f64,
        /// Estimated peak structure bytes.
        peak_heap_bytes: usize,
    },
    /// Parallel-run extras.
    Parallel {
        /// Number of micro-clusters formed.
        mc_count: usize,
        /// Tiled-construction diagnostics (`None` when the sequential
        /// builder was pinned via options).
        build_stats: Option<ParBuildStats>,
    },
    /// Distributed-run extras.
    Distributed {
        /// Virtual runtime excluding partitioning and halo exchange.
        runtime_secs: f64,
        /// Bytes communicated.
        comm_bytes: u64,
        /// Simulated rank count.
        ranks: usize,
        /// Maximum per-rank structure bytes.
        max_rank_heap_bytes: usize,
        /// Per-rank virtual-clock totals.
        rank_clocks: Vec<RankClock>,
        /// BSP supersteps executed.
        supersteps: usize,
        /// Fault/recovery counters (all zero on a fault-free run).
        fault_stats: FaultStats,
    },
    /// Sharded (out-of-core) run extras. The wall-clock fields follow
    /// the makespan convention of `dist::sharded`: on a single-core
    /// host the per-shard work runs serialised, so `makespan_secs`
    /// (plan + max per-worker busy time + merge) is the modelled
    /// parallel wall time while `wall_secs` is what this host measured.
    Sharded {
        /// Spatial shards the planner cut.
        n_shards: usize,
        /// Worker threads the shard work ran on.
        threads: usize,
        /// Planning wall time (streaming passes over the source).
        plan_secs: f64,
        /// Sequential merge wall time.
        merge_secs: f64,
        /// Maximum per-worker thread-CPU busy time.
        busy_max_secs: f64,
        /// Modelled parallel makespan (plan + busy max + merge).
        makespan_secs: f64,
        /// Measured end-to-end wall time on this host.
        wall_secs: f64,
        /// Peak combined resident shard bytes (own + halo coords/ids).
        peak_resident_bytes: usize,
        /// Halo points gathered across all shards.
        halo_points: u64,
        /// Cross-shard candidate edges examined by the merge.
        edges: u64,
    },
    /// Streaming runs have no extras beyond the snapshot clustering.
    Streaming,
    /// Serving-run extras (batch shape: one ingest epoch, then drain).
    Serving {
        /// Epochs published by the writer (1 for the batch shape).
        epochs: u64,
        /// Points live in the drained snapshot.
        final_points: usize,
    },
    /// The OPTICS ordering the clustering was extracted from.
    Optics {
        /// Point ids in processing order.
        order: Vec<PointId>,
        /// Per-point reachability distances.
        reachability: Vec<f64>,
        /// Per-point core distances at the generating ε.
        core_distance: Vec<f64>,
    },
}

/// Uniform output of any facade-driven run.
#[derive(Debug)]
pub struct RunOutput {
    /// The exact DBSCAN clustering.
    pub clustering: Clustering,
    /// Aggregated operation counters.
    pub counters: Counters,
    /// Wall-clock (or, for `Distributed`, virtual) phase split-up.
    pub phases: PhaseTimer,
    /// Family-specific extras.
    pub details: RunDetails,
}

/// A configured clustering algorithm, ready to run. Everything a
/// [`Runner`] builds implements this, so downstream drivers (the
/// conformance registry, the bench harness) hold `Box<dyn Cluster>`
/// instead of per-family glue.
pub trait Cluster: Sync {
    /// Cluster `data`.
    fn run(&self, data: &Dataset) -> Result<RunOutput, MuDbscanError>;
}

/// Fluent builder over the seven families. See the [module docs](self)
/// for the inference rules; every knob is validated against the resolved
/// family by [`Runner::build`].
#[derive(Debug, Clone)]
pub struct Runner {
    params: DbscanParams,
    family: Option<Family>,
    threads: usize,
    ranks: Option<usize>,
    shards: Option<usize>,
    memory_budget: Option<usize>,
    opts: Option<BuildOptions>,
    serve_opts: Option<ServeOptions>,
    faults: Option<FaultConfig>,
    threaded_ranks: bool,
    disable_dynamic_promotion: bool,
    disable_post_core_mc_skip: bool,
}

impl Runner {
    /// Start a builder with the given density parameters.
    pub fn new(params: DbscanParams) -> Self {
        Self {
            params,
            family: None,
            threads: 1,
            ranks: None,
            shards: None,
            memory_budget: None,
            opts: None,
            serve_opts: None,
            faults: None,
            threaded_ranks: false,
            disable_dynamic_promotion: false,
            disable_post_core_mc_skip: false,
        }
    }

    /// Force a family instead of inferring it from `threads`/`ranks`.
    pub fn family(mut self, family: Family) -> Self {
        self.family = Some(family);
        self
    }

    /// Worker threads: the thread-pool size for [`Family::Parallel`],
    /// the per-rank local threads for [`Family::Distributed`], or the
    /// OS worker threads of [`Family::Sharded`]. Selects `Parallel`
    /// when `> 1` and no other family is implied.
    pub fn threads(mut self, threads: usize) -> Self {
        assert!(threads >= 1, "threads must be >= 1");
        self.threads = threads;
        self
    }

    /// Simulated rank count; selects [`Family::Distributed`] unless a
    /// family was forced.
    pub fn ranks(mut self, ranks: usize) -> Self {
        assert!(ranks >= 1, "ranks must be >= 1");
        self.ranks = Some(ranks);
        self
    }

    /// Minimum spatial shard count for the out-of-core executor;
    /// selects [`Family::Sharded`] unless a family was forced or
    /// [`Runner::ranks`] implies `Distributed`. The planner may cut
    /// *more* shards to honour a memory budget, never fewer.
    pub fn shards(mut self, shards: usize) -> Self {
        assert!(shards >= 1, "shards must be >= 1");
        self.shards = Some(shards);
        self
    }

    /// Total memory budget in bytes for the out-of-core executor;
    /// selects [`Family::Sharded`] unless a family was forced. The
    /// planner sizes shards so that the `threads` concurrently resident
    /// shards (own points + ε-halo, double-buffered) fit the budget.
    pub fn memory_budget(mut self, bytes: usize) -> Self {
        assert!(bytes >= 1, "the memory budget must be positive");
        self.memory_budget = Some(bytes);
        self
    }

    /// Override micro-cluster construction options.
    pub fn options(mut self, opts: BuildOptions) -> Self {
        self.opts = Some(opts);
        self
    }

    /// Serving-layer options for [`Runner::serve`] (and the batch shape
    /// of [`Family::Serving`]): the deletion-repair budget
    /// ([`ServeOptions::repair_budget`], whose default adapts to the
    /// live set size and whose `Some(0)` rebuilds on every structural
    /// deletion — the baseline the benchmark suite compares against),
    /// plus the telemetry knobs — flight-recorder capacity, postmortem
    /// directory, and the exactness self-check cadence
    /// ([`ServeOptions::self_check_every`]). None of them changes
    /// published results. Setting this on any other family is an
    /// [`MuDbscanError::InvalidConfig`].
    pub fn serve_options(mut self, opts: ServeOptions) -> Self {
        self.serve_opts = Some(opts);
        self
    }

    /// Inject a fault plan (under the default retry policy) into a
    /// distributed run; see [`FaultPlan`].
    pub fn fault_plan(self, plan: FaultPlan) -> Self {
        self.faults_config(FaultConfig::new(plan))
    }

    /// Inject a full fault configuration (plan + retry policy).
    pub fn faults_config(mut self, faults: FaultConfig) -> Self {
        self.faults = Some(faults);
        self
    }

    /// Run the distributed rank programs on real threads
    /// ([`cluster_sim::ExecMode::Threaded`]).
    pub fn threaded_ranks(mut self) -> Self {
        self.threaded_ranks = true;
        self
    }

    /// Ablation knob of [`Family::Sequential`]: skip the dynamic
    /// wndq-core promotion (Algorithm 6 step (iii)).
    pub fn disable_dynamic_promotion(mut self, disable: bool) -> Self {
        self.disable_dynamic_promotion = disable;
        self
    }

    /// Ablation knob of [`Family::Sequential`]: disable the
    /// MC-granularity skip in POST-PROCESSING-CORE (Algorithm 7).
    pub fn disable_post_core_mc_skip(mut self, disable: bool) -> Self {
        self.disable_post_core_mc_skip = disable;
        self
    }

    /// The family this configuration resolves to.
    pub fn resolved_family(&self) -> Family {
        self.family.unwrap_or({
            if self.ranks.is_some() {
                Family::Distributed
            } else if self.shards.is_some() || self.memory_budget.is_some() {
                Family::Sharded
            } else if self.threads > 1 {
                Family::Parallel
            } else {
                Family::Sequential
            }
        })
    }

    /// Validate every knob against `family`; the `Err` message names
    /// the offending knob and the family it clashes with.
    fn validate(&self, family: Family) -> Result<(), MuDbscanError> {
        let bad = |knob: &str| {
            Err(MuDbscanError::InvalidConfig(format!(
                "{knob} is not supported by the {} family",
                family.name()
            )))
        };
        if !matches!(family, Family::Distributed) {
            if self.faults.is_some() {
                return bad("a fault plan");
            }
            if self.ranks.is_some() {
                return bad("a rank count");
            }
            if self.threaded_ranks {
                return bad("threaded rank execution");
            }
        }
        if !matches!(family, Family::Sharded) {
            if self.shards.is_some() {
                return bad("a shard count");
            }
            if self.memory_budget.is_some() {
                return bad("a memory budget");
            }
        }
        if !matches!(family, Family::Sequential)
            && (self.disable_dynamic_promotion || self.disable_post_core_mc_skip)
        {
            return bad("an ablation knob");
        }
        if !matches!(family, Family::Parallel | Family::Distributed | Family::Sharded)
            && self.threads > 1
        {
            return bad("a worker-thread count");
        }
        if matches!(family, Family::Streaming | Family::Serving) && self.opts.is_some() {
            return bad("a build-options override");
        }
        if !matches!(family, Family::Serving) && self.serve_opts.is_some() {
            return bad("a serving-options override");
        }
        Ok(())
    }

    /// Validate the configuration and construct the concrete algorithm.
    pub fn build(&self) -> Result<Box<dyn Cluster>, MuDbscanError> {
        let family = self.resolved_family();
        self.validate(family)?;

        Ok(match family {
            Family::Sequential => {
                let mut algo = MuDbscan::from_params(self.params);
                if let Some(opts) = self.opts {
                    algo = algo.with_options(opts);
                }
                algo.disable_dynamic_promotion = self.disable_dynamic_promotion;
                algo.disable_post_core_mc_skip = self.disable_post_core_mc_skip;
                Box::new(Seq { algo })
            }
            Family::Parallel => {
                let mut algo = ParMuDbscan::from_params(self.params, self.threads);
                if let Some(opts) = self.opts {
                    algo = algo.with_options(opts);
                }
                Box::new(Par { algo })
            }
            Family::Distributed => {
                let mut cfg = DistConfig::new(self.ranks.unwrap_or(1));
                if self.threaded_ranks {
                    cfg = cfg.threaded();
                }
                cfg = cfg.with_local_threads(self.threads);
                let mut algo = MuDbscanD::from_params(self.params, cfg);
                if let Some(opts) = self.opts {
                    algo = algo.with_options(opts);
                }
                if let Some(faults) = self.faults.clone() {
                    algo = algo.with_faults(faults);
                }
                Box::new(DistRun { algo })
            }
            Family::Sharded => Box::new(ShardedRun { algo: self.sharded_algo() }),
            Family::Streaming => Box::new(Streaming { params: self.params }),
            Family::Serving => Box::new(ServeRun {
                params: self.params,
                opts: self.serve_opts.clone().unwrap_or_default(),
            }),
            Family::Optics => {
                let mut algo = Optics::from_params(self.params);
                if let Some(opts) = self.opts {
                    algo = algo.with_options(opts);
                }
                Box::new(OpticsRun { algo, eps: self.params.eps })
            }
        })
    }

    fn sharded_algo(&self) -> ShardedMuDbscan {
        ShardedMuDbscan::new(
            self.params,
            ShardedOptions {
                shards: self.shards,
                memory_budget: self.memory_budget,
                threads: self.threads,
                build: self.opts.unwrap_or_default(),
            },
        )
    }

    /// Build and run in one step. Equivalent to
    /// [`Runner::run_source`] — the in-memory [`Dataset`] is just one
    /// [`DataSource`].
    pub fn run(&self, data: &Dataset) -> Result<RunOutput, MuDbscanError> {
        self.run_source(data)
    }

    /// Build and run against any [`DataSource`] — the in-memory
    /// [`Dataset`] or a memory-mapped on-disk [`ChunkedStore`].
    ///
    /// [`Family::Sharded`] streams shards straight from the source
    /// (chunks are never materialised as one dense array); every other
    /// family needs the dense dataset, so a source that is not already
    /// a [`Dataset`] is gathered once via [`gather_dense`].
    ///
    /// ```
    /// use mudbscan::prelude::*;
    ///
    /// let data = Dataset::from_rows(&[vec![0.0], vec![0.05], vec![0.1], vec![9.0]]);
    /// let dir = std::env::temp_dir().join("mudbscan-doc-run-source");
    /// std::fs::create_dir_all(&dir).unwrap();
    /// let path = dir.join("tiny.muds");
    /// write_store(&data, &path, 2).unwrap();
    /// let store = ChunkedStore::open(&path).unwrap();
    ///
    /// let p = DbscanParams::new(0.2, 3);
    /// let in_mem = Runner::new(p).run(&data).unwrap();
    /// let sharded = Runner::new(p).shards(2).run_source(&store).unwrap();
    /// assert_eq!(in_mem.clustering, sharded.clustering); // bit-identical
    /// # std::fs::remove_file(&path).ok();
    /// ```
    pub fn run_source(&self, src: &dyn DataSource) -> Result<RunOutput, MuDbscanError> {
        let family = self.resolved_family();
        self.validate(family)?;
        if matches!(family, Family::Sharded) {
            return Ok(sharded_run_output(self.sharded_algo().run_source(src)));
        }
        match src.as_dataset() {
            Some(data) => self.build()?.run(data),
            None => self.build()?.run(&gather_dense(src)),
        }
    }

    /// Start the long-running serving engine ([`Family::Serving`]) for
    /// `dim`-dimensional points and return a [`ServeHandle`] for
    /// batched ingest (inserts, deletions, TTL expiry) and
    /// snapshot-isolated queries. The engine honours the options set
    /// via [`Runner::serve_options`] (defaults otherwise); the running
    /// engine's telemetry is polled via [`ServeHandle::stats`]. The
    /// configuration is validated like any other build: forcing a
    /// different family first, or setting a knob the serving engine
    /// cannot honour, is an [`MuDbscanError::InvalidConfig`]. See
    /// `docs/SERVING.md` for the architecture and the exactness
    /// contract.
    pub fn serve(&self, dim: usize) -> Result<ServeHandle, MuDbscanError> {
        if let Some(f) = self.family {
            if !matches!(f, Family::Serving) {
                return Err(MuDbscanError::InvalidConfig(format!(
                    "serve() starts the Serving family, but the {} family was forced",
                    f.name()
                )));
            }
        }
        self.validate(Family::Serving)?;
        if dim == 0 {
            return Err(MuDbscanError::InvalidConfig(
                "the served point dimension must be positive".into(),
            ));
        }
        let opts = self.serve_opts.clone().unwrap_or_default();
        Ok(ServingMuDbscan::spawn_with(dim, self.params, opts))
    }

    /// Deprecated spelling of `serve_options(opts).serve(dim)`; one-PR
    /// deprecation shim per the facade's deprecation policy
    /// (`docs/API.md`) — it will be removed in the next PR.
    #[deprecated(note = "use Runner::serve_options(opts).serve(dim) instead")]
    pub fn serve_with(&self, dim: usize, opts: ServeOptions) -> Result<ServeHandle, MuDbscanError> {
        self.clone().serve_options(opts).serve(dim)
    }

    /// The sorted k-distance sample of `data` (descending): each
    /// sampled point's distance to its `k`-th nearest *other* neighbour,
    /// the curve whose knee is the classical ε-selection heuristic
    /// (Ester et al. 1996, §4.2) and the `k = MinPts` summary the bench
    /// harness exports alongside serve telemetry. Sampling strides the
    /// dataset to at most ~2048 points so the probe stays cheap on big
    /// inputs; `k` must be ≥ 1 (an [`MuDbscanError::InvalidConfig`]
    /// otherwise). The runner's density parameters do not affect the
    /// curve — only `k` and the data do.
    ///
    /// ```
    /// use mudbscan::prelude::*;
    ///
    /// let data = Dataset::from_rows(&[vec![0.0], vec![0.1], vec![0.2], vec![9.0]]);
    /// let curve = Runner::new(DbscanParams::new(0.5, 2)).kdist_sample(&data, 2).unwrap();
    /// assert_eq!(curve.len(), data.len());
    /// assert!(curve.windows(2).all(|w| w[0] >= w[1]), "descending");
    /// ```
    pub fn kdist_sample(&self, data: &Dataset, k: usize) -> Result<Vec<f64>, MuDbscanError> {
        if k == 0 {
            return Err(MuDbscanError::InvalidConfig(
                "the k-distance neighbour rank must be >= 1".into(),
            ));
        }
        let sample_every = (data.len() / 2048).max(1);
        Ok(mudbscan_core::k_dist_curve(data, k, sample_every))
    }
}

impl Cluster for Runner {
    fn run(&self, data: &Dataset) -> Result<RunOutput, MuDbscanError> {
        Runner::run(self, data)
    }
}

struct Seq {
    algo: MuDbscan,
}

impl Cluster for Seq {
    fn run(&self, data: &Dataset) -> Result<RunOutput, MuDbscanError> {
        let out = self.algo.run(data);
        Ok(RunOutput {
            clustering: out.clustering,
            counters: out.counters,
            phases: out.phases,
            details: RunDetails::Sequential {
                mc_count: out.mc_count,
                avg_mc_size: out.avg_mc_size,
                peak_heap_bytes: out.peak_heap_bytes,
            },
        })
    }
}

struct Par {
    algo: ParMuDbscan,
}

impl Cluster for Par {
    fn run(&self, data: &Dataset) -> Result<RunOutput, MuDbscanError> {
        let out = self.algo.run(data);
        Ok(RunOutput {
            clustering: out.clustering,
            counters: out.counters.snapshot(),
            phases: out.phases,
            details: RunDetails::Parallel { mc_count: out.mc_count, build_stats: out.build_stats },
        })
    }
}

struct DistRun {
    algo: MuDbscanD,
}

impl Cluster for DistRun {
    fn run(&self, data: &Dataset) -> Result<RunOutput, MuDbscanError> {
        let out = self.algo.run(data)?;
        Ok(RunOutput {
            clustering: out.clustering,
            counters: out.counters,
            phases: out.phases,
            details: RunDetails::Distributed {
                runtime_secs: out.runtime_secs,
                comm_bytes: out.comm_bytes,
                ranks: out.ranks,
                max_rank_heap_bytes: out.max_rank_heap_bytes,
                rank_clocks: out.rank_clocks,
                supersteps: out.supersteps,
                fault_stats: out.fault_stats,
            },
        })
    }
}

struct ShardedRun {
    algo: ShardedMuDbscan,
}

fn sharded_run_output(out: ShardedOutput) -> RunOutput {
    let mut phases = PhaseTimer::new();
    phases.add_secs("planning", out.plan_wall_secs);
    phases.add_secs("shard clustering", out.busy_max_secs);
    phases.add_secs("merging", out.merge_wall_secs);
    RunOutput {
        clustering: out.clustering,
        counters: out.counters,
        phases,
        details: RunDetails::Sharded {
            n_shards: out.n_shards,
            threads: out.threads,
            plan_secs: out.plan_wall_secs,
            merge_secs: out.merge_wall_secs,
            busy_max_secs: out.busy_max_secs,
            makespan_secs: out.makespan_secs,
            wall_secs: out.wall_secs,
            peak_resident_bytes: out.peak_resident_bytes,
            halo_points: out.halo_points,
            edges: out.edges,
        },
    }
}

impl Cluster for ShardedRun {
    fn run(&self, data: &Dataset) -> Result<RunOutput, MuDbscanError> {
        Ok(sharded_run_output(self.algo.run_source(data)))
    }
}

struct Streaming {
    params: DbscanParams,
}

impl Cluster for Streaming {
    fn run(&self, data: &Dataset) -> Result<RunOutput, MuDbscanError> {
        let mut s = StreamingMuDbscan::from_dataset(data, self.params);
        let clustering = s.snapshot();
        let counters = Counters::new();
        counters.absorb(s.counters());
        Ok(RunOutput {
            clustering,
            counters,
            phases: PhaseTimer::new(),
            details: RunDetails::Streaming,
        })
    }
}

struct ServeRun {
    params: DbscanParams,
    opts: ServeOptions,
}

impl Cluster for ServeRun {
    fn run(&self, data: &Dataset) -> Result<RunOutput, MuDbscanError> {
        let handle = ServingMuDbscan::spawn_with(data.dim(), self.params, self.opts.clone());
        handle.ingest(data.iter().map(|(_, c)| ServeOp::insert(c.to_vec())).collect())?;
        let drained = handle.shutdown()?;
        Ok(RunOutput {
            clustering: drained.snapshot.clustering().clone(),
            counters: drained.counters,
            phases: PhaseTimer::new(),
            details: RunDetails::Serving {
                epochs: drained.snapshot.epoch(),
                final_points: drained.snapshot.len(),
            },
        })
    }
}

struct OpticsRun {
    algo: Optics,
    eps: f64,
}

impl Cluster for OpticsRun {
    fn run(&self, data: &Dataset) -> Result<RunOutput, MuDbscanError> {
        let out = self.algo.run(data);
        let clustering = extract_dbscan(&out, data, self.eps);
        Ok(RunOutput {
            clustering,
            counters: out.counters,
            phases: out.phases,
            details: RunDetails::Optics {
                order: out.order,
                reachability: out.reachability,
                core_distance: out.core_distance,
            },
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Dataset {
        Dataset::from_rows(&[vec![0.0, 0.0], vec![0.2, 0.0], vec![0.0, 0.2], vec![8.0, 8.0]])
    }

    #[test]
    fn family_inference() {
        let p = DbscanParams::new(0.5, 3);
        assert_eq!(Runner::new(p).resolved_family(), Family::Sequential);
        assert_eq!(Runner::new(p).threads(4).resolved_family(), Family::Parallel);
        assert_eq!(Runner::new(p).ranks(4).resolved_family(), Family::Distributed);
        assert_eq!(Runner::new(p).threads(4).ranks(4).resolved_family(), Family::Distributed);
        assert_eq!(Runner::new(p).shards(4).resolved_family(), Family::Sharded);
        assert_eq!(Runner::new(p).memory_budget(1 << 20).resolved_family(), Family::Sharded);
        assert_eq!(Runner::new(p).threads(4).shards(2).resolved_family(), Family::Sharded);
        assert_eq!(Runner::new(p).family(Family::Streaming).resolved_family(), Family::Streaming);
    }

    #[test]
    fn invalid_configs_are_rejected() {
        let p = DbscanParams::new(0.5, 3);
        let plan = FaultPlan::new(1).with(Fault::Straggler { rank: 0, slowdown: 2.0 });
        for bad in [
            Runner::new(p).fault_plan(plan.clone()), // faults w/o ranks
            Runner::new(p).threads(4).fault_plan(plan), // faults on Parallel
            Runner::new(p).family(Family::Sequential).ranks(2), // ranks on forced Seq
            Runner::new(p).family(Family::Optics).threads(4), // threads on Optics
            Runner::new(p).family(Family::Streaming).threads(2), // threads on Streaming
            Runner::new(p).family(Family::Streaming).options(BuildOptions::default()),
            Runner::new(p).family(Family::Serving).threads(2), // threads on Serving
            Runner::new(p).family(Family::Serving).options(BuildOptions::default()),
            Runner::new(p).threads(2).disable_dynamic_promotion(true), // knob on Parallel
            Runner::new(p).ranks(2).disable_post_core_mc_skip(true),   // knob on Distributed
            Runner::new(p).family(Family::Sequential).threaded_ranks(),
            Runner::new(p).family(Family::Sequential).shards(2), // shards on forced Seq
            Runner::new(p).family(Family::Parallel).threads(2).memory_budget(1 << 20),
            Runner::new(p).ranks(2).shards(2), // ranks win inference; shards clash
            Runner::new(p).family(Family::Optics).memory_budget(1 << 20),
            Runner::new(p).family(Family::Streaming).shards(2),
            Runner::new(p).shards(2).disable_dynamic_promotion(true), // knob on Sharded
            Runner::new(p).shards(2).fault_plan(FaultPlan::new(1)),   // faults on Sharded
            Runner::new(p).serve_options(ServeOptions::default()), // serve opts on Sequential
            Runner::new(p).shards(2).serve_options(ServeOptions::default()),
        ] {
            match bad.build() {
                Err(MuDbscanError::InvalidConfig(msg)) => {
                    assert!(msg.contains("not supported"), "unexpected message: {msg}")
                }
                other => panic!("expected InvalidConfig, got {:?}", other.map(|_| ())),
            }
        }
    }

    #[test]
    fn all_seven_families_run_and_agree() {
        let data = tiny();
        let p = DbscanParams::new(0.5, 3);
        let reference = naive_dbscan(&data, &p);
        for runner in [
            Runner::new(p),
            Runner::new(p).threads(2),
            Runner::new(p).ranks(2),
            Runner::new(p).shards(2),
            Runner::new(p).shards(2).threads(2).memory_budget(1 << 20),
            Runner::new(p).family(Family::Streaming),
            Runner::new(p).family(Family::Optics),
            Runner::new(p).family(Family::Serving),
        ] {
            let family = runner.resolved_family();
            let out = runner.run(&data).unwrap_or_else(|e| panic!("{family:?}: {e}"));
            assert_eq!(out.clustering, reference, "{family:?} disagrees with the oracle");
        }
    }

    #[test]
    fn serve_handle_round_trip() {
        let data = tiny();
        let p = DbscanParams::new(0.5, 3);
        let handle = Runner::new(p).serve(2).unwrap();
        let ids =
            handle.ingest(data.iter().map(|(_, c)| ServeOp::insert(c.to_vec())).collect()).unwrap();
        assert_eq!(ids.len(), data.len());
        let drained = handle.drain().unwrap();
        assert_eq!(drained.snapshot.epoch(), 1);
        // The served epoch is bit-identical to the batch family's answer.
        let batch = Runner::new(p).family(Family::Serving).run(&data).unwrap();
        assert_eq!(*drained.snapshot.clustering(), batch.clustering);
        assert_eq!(handle.membership(ids[0]), Some(Membership { cluster: Some(0), is_core: true }));
        assert_eq!(handle.membership(ids[3]), Some(Membership { cluster: None, is_core: false }));
    }

    #[test]
    fn serve_options_budget_zero_still_serves_exactly() {
        // `repair_budget: Some(0)` (rebuild on every structural delete)
        // must be reachable from the facade and stay exact.
        let data = tiny();
        let p = DbscanParams::new(0.5, 3);
        let handle = Runner::new(p)
            .serve_options(ServeOptions { repair_budget: Some(0), ..Default::default() })
            .serve(2)
            .unwrap();
        let ids =
            handle.ingest(data.iter().map(|(_, c)| ServeOp::insert(c.to_vec())).collect()).unwrap();
        handle.ingest(vec![ServeOp::delete(ids[0])]).unwrap();
        let drained = handle.shutdown().unwrap();
        let survivors =
            Dataset::from_rows(&data.iter().skip(1).map(|(_, c)| c.to_vec()).collect::<Vec<_>>());
        let oracle = naive_dbscan(&survivors, &p);
        assert_eq!(*drained.snapshot.clustering(), oracle);
    }

    #[test]
    #[allow(deprecated)]
    fn serve_with_shim_still_works_one_more_pr() {
        // PR-5 deprecation policy: the old spelling keeps working for
        // exactly one PR. This pin fails to compile when `serve_with`
        // is deleted, reminding the remover to drop this test with it.
        let p = DbscanParams::new(0.5, 3);
        let handle = Runner::new(p).serve_with(2, ServeOptions::default()).unwrap();
        handle.shutdown().unwrap();
    }

    #[test]
    fn run_source_store_matches_in_memory_for_all_batch_families() {
        // A mmap-backed store fed through run_source must agree with
        // the in-memory dataset for every family: Sharded streams the
        // chunks, everything else goes through the gather_dense path.
        let data = tiny();
        let p = DbscanParams::new(0.5, 3);
        let dir = std::env::temp_dir().join("mudbscan-api-run-source");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("tiny.muds");
        write_store(&data, &path, 3).unwrap();
        let store = ChunkedStore::open(&path).unwrap();
        let reference = naive_dbscan(&data, &p);
        for runner in [
            Runner::new(p),
            Runner::new(p).threads(2),
            Runner::new(p).ranks(2),
            Runner::new(p).shards(2),
            Runner::new(p).memory_budget(1 << 20),
            Runner::new(p).family(Family::Streaming),
            Runner::new(p).family(Family::Optics),
        ] {
            let family = runner.resolved_family();
            let out = runner.run_source(&store).unwrap_or_else(|e| panic!("{family:?}: {e}"));
            assert_eq!(out.clustering, reference, "{family:?} disagrees on the store");
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn store_open_errors_surface_as_io() {
        let dir = std::env::temp_dir().join("mudbscan-api-io-error");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("bogus.muds");
        std::fs::write(&path, b"not a store").unwrap();
        let err = MuDbscanError::from(ChunkedStore::open(&path).err().expect("must fail"));
        assert!(matches!(err, MuDbscanError::Io(_)));
        assert!(err.to_string().contains("dataset store operation failed"));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn serve_rejects_bad_configurations() {
        let p = DbscanParams::new(0.5, 3);
        for bad in [
            Runner::new(p).family(Family::Optics).serve(2),
            Runner::new(p).ranks(2).serve(2),
            Runner::new(p).threads(4).serve(2),
            Runner::new(p).serve(0),
        ] {
            assert!(matches!(bad, Err(MuDbscanError::InvalidConfig(_))));
        }
        // Forcing Serving explicitly is fine.
        assert!(Runner::new(p).family(Family::Serving).serve(3).is_ok());
    }

    #[test]
    fn serve_stats_poll_through_the_facade() {
        let data = tiny();
        let p = DbscanParams::new(0.5, 3);
        let handle = Runner::new(p).serve(2).unwrap();
        handle.ingest(data.iter().map(|(_, c)| ServeOp::insert(c.to_vec())).collect()).unwrap();
        handle.drain().unwrap();
        let stats = handle.stats();
        assert_eq!(stats.epoch, 1);
        assert_eq!(stats.live_points, 4);
        assert_eq!(stats.clusters, 1);
        assert_eq!(stats.window.count("serve/inserts"), 4);
        assert!(stats.render_prom().contains("mudbscan_serve_epochs 1"));
        // A second poll with nothing in between yields an empty window.
        assert_eq!(handle.stats().window.count("serve/inserts"), 0);
    }

    #[test]
    fn kdist_sample_is_descending_and_validates_k() {
        let data = tiny();
        let p = DbscanParams::new(0.5, 3);
        let curve = Runner::new(p).kdist_sample(&data, 3).unwrap();
        assert_eq!(curve.len(), data.len());
        assert!(curve.windows(2).all(|w| w[0] >= w[1]), "curve must be descending: {curve:?}");
        assert!(matches!(
            Runner::new(p).kdist_sample(&data, 0),
            Err(MuDbscanError::InvalidConfig(_))
        ));
    }

    #[test]
    fn details_match_family() {
        let data = tiny();
        let p = DbscanParams::new(0.5, 3);
        let out = Runner::new(p).ranks(2).run(&data).unwrap();
        match out.details {
            RunDetails::Distributed { ranks, fault_stats, .. } => {
                assert_eq!(ranks, 2);
                assert!(fault_stats.is_quiet());
            }
            other => panic!("expected Distributed details, got {other:?}"),
        }
        let out = Runner::new(p).family(Family::Optics).run(&data).unwrap();
        match out.details {
            RunDetails::Optics { order, .. } => assert_eq!(order.len(), data.len()),
            other => panic!("expected Optics details, got {other:?}"),
        }
        let out = Runner::new(p).shards(2).run(&data).unwrap();
        match out.details {
            RunDetails::Sharded { n_shards, threads, peak_resident_bytes, .. } => {
                assert!(n_shards >= 2);
                assert_eq!(threads, 1);
                assert!(peak_resident_bytes > 0);
            }
            other => panic!("expected Sharded details, got {other:?}"),
        }
        assert!(out.phases.secs("merging") >= 0.0);
    }
}
