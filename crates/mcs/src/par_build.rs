//! Parallel, deterministic micro-cluster construction.
//!
//! The sequential builder ([`crate::build_micro_clusters`]) is inherently
//! ordered — every point's placement depends on the MCs created so far —
//! which left Step 1 the last sequential phase of [`ParMuDbscan`]-style
//! runs and, by Amdahl, the bottleneck of the `tree_construction` rows in
//! the bench trajectory. This module replaces it with a tiled pipeline:
//!
//! 1. **Tile** the space into disjoint axis-aligned cells keyed purely on
//!    geometry (`floor((x_d − lo_d) / side)` per dimension). Keying runs
//!    on worker threads — each keys a contiguous id chunk into a local
//!    map, and merging the worker maps in chunk order concatenates each
//!    tile's ascending id runs in order, so the grouped result is
//!    bit-identical to a sequential scan. The side is
//!    `2ε · 2^k` with the smallest `k` such that the number of *occupied*
//!    tiles drops to `max(16, n/64)` — at the minimum side of 2ε every
//!    Algorithm-3 membership/deferral test (strict `< 2ε`) is confined to
//!    the tile itself, and growing the side only shrinks the boundary
//!    surface, so correctness never depends on `k`. Coarsening matters
//!    because with near-empty tiles virtually all placement work would
//!    shift into the sequential reconciliation stage. The search runs on
//!    the key *set* (`floor(key / 2^k)`), not the coordinates, so the
//!    points are keyed exactly once. Afterwards, any tile holding more
//!    than `max(256, n/8)` points is split back into its 2^dim children
//!    (halving the side, never below 2ε) so one dense cell cannot
//!    serialise the scan stage; every final tile records its own side for
//!    the interior test below. The cap is deliberately loose — splitting
//!    shrinks cells and therefore grows the boundary surface the
//!    sequential reconciliation pass must process, so it only fires for
//!    tiles big enough to dominate a worker on their own.
//! 2. **Scan per tile** on worker threads: the Algorithm-3 greedy scan
//!    (ε-join, 2ε-defer, else new center) restricted to the tile's points
//!    in ascending id order against a tile-local center tree. Tiles are
//!    assigned statically (LPT on point counts) so the outcome depends
//!    only on the tile's contents — never on scheduling — and each
//!    worker's busy time reflects a real 1/threads share of the work even
//!    when the host has fewer cores than workers (a greedy stealing queue
//!    would let the first-scheduled worker drain everything on such
//!    hosts).
//! 3. **Reconcile** boundary conflicts. A candidate whose center lies
//!    ≥ ε from every face of its tile is *interior*: no other candidate —
//!    same tile (per-tile scan keeps centers ≥ ε apart) or other tile
//!    (anything beyond the face is ≥ ε away) — can conflict with it, so
//!    it is kept without any query. Conflicts are therefore confined to
//!    the *boundary* candidates, which turns conflict detection into a
//!    neighbourhood query among boundary centers: a static tree over
//!    them is probed **in parallel** (each boundary candidate collects
//!    its ε-neighbours, read-only), and the sequential resolve is then a
//!    pure greedy graph walk in ascending center id — a candidate
//!    dissolves iff an earlier candidate that itself survived lies
//!    strictly within ε (identical to querying previously kept centers,
//!    but with zero tree operations on the critical path). The dissolved
//!    ones' members become *orphans*, re-scanned in ascending id order:
//!    each first tries the *victor* — the earliest kept center that
//!    dissolved its MC, usually within ε since the two centers were (one
//!    distance computation) — and only on a miss falls back to the full
//!    kept-center tree (join within ε, 2ε-defer, else found a new
//!    center). The orphan probes run in parallel too; only the apply
//!    pass (which may create new centers) stays sequential.
//! 4. **Canonicalise and bulk-load**: sort MCs by center id, STR-pack the
//!    level-1 tree, then build every per-MC aux tree on worker threads
//!    (stride-assigned again; they are embarrassingly independent).
//!
//! The resulting partition need not equal the sequential one bit-for-bit
//! — exactness of DBSCAN on top only needs a valid ε-ball cover with
//! exclusive membership — but it satisfies the same invariants (each
//! member strictly within ε of its center, centers pairwise ≥ ε apart,
//! all duplicates share one MC) and is bit-identical across thread
//! counts. Query-cost counters are accumulated per tile and absorbed in
//! tile order, so counter snapshots are thread-count-independent too.
//!
//! Because worker wall-clock cannot shrink on machines with fewer cores
//! than workers, each parallel stage also measures per-worker *busy* time
//! ([`metrics::BusyTimer`]) and reports the stage's critical path (max
//! over workers) — the same convention the distributed simulator uses for
//! per-rank phase maxima. [`ParBuildStats::makespan_secs`] strings the
//! critical paths together with the sequential stages' wall times.
//!
//! [`ParMuDbscan`]: ../mudbscan/struct.ParMuDbscan.html

use crate::build::BuildOptions;
use crate::micro::{McId, MicroCluster, NO_MC};
use crate::murtree::MuRTree;
use geom::{Dataset, PointId};
use metrics::{BusyTimer, Counters, Stopwatch};
use rtree::RTree;
use std::collections::BTreeMap;
use std::sync::Mutex;

/// Diagnostics from one parallel construction run.
#[derive(Debug, Clone, Default)]
pub struct ParBuildStats {
    /// Number of non-empty tiles (after coarsening).
    pub tiles: usize,
    /// Coarsened tile side `2ε · 2^k` (before any adaptive splits of
    /// over-full tiles, which halve the side per split).
    pub tile_side: f64,
    /// Points in the largest tile (the scan stage's balance limit).
    pub largest_tile: usize,
    /// Candidate centers that required a conflict check (center within ε
    /// of a face of their tile); the rest were kept via the interior
    /// fast-path without any query.
    pub boundary_candidates: usize,
    /// Candidate centers dissolved during boundary reconciliation.
    pub boundary_conflicts: usize,
    /// Member points re-scanned because their candidate MC dissolved.
    pub orphans: usize,
    /// Per-worker busy seconds of the point-keying sub-stage of tiling.
    pub keying_busy: Vec<f64>,
    /// Per-worker busy seconds of the tile-scan stage.
    pub tile_scan_busy: Vec<f64>,
    /// Per-worker busy seconds of the boundary conflict-probe stage.
    pub conflict_busy: Vec<f64>,
    /// Per-worker busy seconds of the read-only orphan probe stage.
    pub orphan_busy: Vec<f64>,
    /// Per-worker busy seconds of the aux bulk-load stage.
    pub aux_busy: Vec<f64>,
    /// Critical-path seconds: sequential stage walls plus the per-worker
    /// busy maximum of each parallel stage.
    pub makespan_secs: f64,
}

/// What the parallel conflict probe learned about one boundary
/// candidate: its ε-neighbours among the *other* boundary candidates
/// (ascending boundary index) and what the lookup cost. The sequential
/// resolve walks these lists greedily — no tree is touched there.
struct ConflictProbe {
    neighbors: Vec<u32>,
    dists: u64,
    visits: u64,
}

/// What the read-only probe (stage 3b) learned about one orphan: did the
/// victor center take it, did the static kept tree have an ε (or 2ε)
/// neighbour, and what the lookups cost. Replayed sequentially in orphan
/// order by the apply pass.
struct OrphanProbe {
    victor_hit: bool,
    eps_hit: Option<McId>,
    two_eps_hit: bool,
    dists: u64,
    visits: u64,
}

/// Build all micro-clusters and the μR-tree for `data` using `threads`
/// worker threads. Deterministic: for a fixed dataset and options the
/// output (and the counter totals) are identical for every `threads`.
pub fn build_micro_clusters_par(
    data: &Dataset,
    eps: f64,
    opts: &BuildOptions,
    threads: usize,
    counters: &Counters,
) -> (MuRTree, ParBuildStats) {
    assert!(threads >= 1);
    let _span = obs::span!("mc_build_par");
    let dim = data.dim();
    let mut stats = ParBuildStats::default();
    let mut sw = Stopwatch::start();

    let Some((lo, _hi)) = data.bounding_box() else {
        // Empty dataset: empty tree, nothing to do.
        let level1 = RTree::with_config(dim, opts.level1_cfg);
        return (MuRTree::from_parts(eps, level1, Vec::new(), Vec::new()), stats);
    };

    // Stage 1 (parallel keying, sequential merge + coarsen): geometric
    // tiling. Each worker keys a contiguous id chunk into a local map;
    // merging the worker maps in chunk order concatenates each tile's
    // ascending id runs in order, so the grouped result is identical to
    // a sequential id-order scan. BTreeMap keys give a deterministic
    // (lexicographic cell-coordinate) tile order for free. The
    // coarsening factor depends only on the dataset geometry and n —
    // never on the thread count — so the tile set (and everything
    // downstream) stays thread-count-independent.
    let tiling = obs::span!("tiling");
    let base_side = 2.0 * eps;
    type TileMap = BTreeMap<Vec<i64>, Vec<PointId>>;
    let chunk = data.len().div_ceil(threads).max(1);
    let worker_maps: Vec<Mutex<Option<TileMap>>> = (0..threads).map(|_| Mutex::new(None)).collect();
    {
        let lo = &lo;
        let worker_maps = &worker_maps;
        stats.keying_busy = run_workers(threads, &|worker| {
            let ids = (worker * chunk).min(data.len())..((worker + 1) * chunk).min(data.len());
            let mut local = TileMap::new();
            let mut key = vec![0i64; dim];
            for p in ids {
                let coords = data.point(p as PointId);
                for (k, (&x, &l)) in key.iter_mut().zip(coords.iter().zip(lo)) {
                    *k = ((x - l) / base_side).floor() as i64;
                }
                local.entry(key.clone()).or_default().push(p as PointId);
            }
            *worker_maps[worker].lock().expect("poisoned") = Some(local);
        });
    }
    let keying_wall = sw.lap();
    let mut base = TileMap::new();
    for m in worker_maps {
        for (k, pts) in m.into_inner().expect("poisoned").expect("chunk keyed") {
            base.entry(k).or_default().extend(pts);
        }
    }
    // Coarsen on the key set only: floor(x / (s·2^k)) == floor(key / 2^k),
    // so doubling the side maps straight onto integer key division.
    let target_tiles = (data.len() / 64).max(16);
    let mut factor: i64 = 1;
    // 40 doublings span any representable key range; in practice the
    // occupied count hits the target (or 1) within a handful of steps.
    for _ in 0..40 {
        if base.len() <= target_tiles {
            break;
        }
        let occupied = base
            .keys()
            .map(|k| k.iter().map(|&v| v.div_euclid(factor)).collect::<Vec<i64>>())
            .collect::<std::collections::BTreeSet<_>>()
            .len();
        if occupied <= target_tiles {
            break;
        }
        factor *= 2;
    }
    let side = base_side * factor as f64;
    let mut merged: BTreeMap<Vec<i64>, Vec<PointId>> = BTreeMap::new();
    for (k, pts) in base {
        let coarse: Vec<i64> = k.iter().map(|&v| v.div_euclid(factor)).collect();
        merged.entry(coarse).or_default().extend(pts);
    }
    // Adaptive refinement: coarsening bounds the *count* of tiles but a
    // dense region can still dump most points into one tile, which would
    // cap the scan stage's balance at that tile's cost. Split any tile
    // holding more than `cap` points back into its 2^dim children (side
    // halves, still ≥ 2ε) until it fits or reaches the base side. Each
    // final tile keeps its own (key, side) so the interior test in
    // reconciliation uses the right cell geometry.
    let cap = (data.len() / 8).max(256);
    let mut keys: Vec<Vec<i64>> = Vec::new();
    let mut sides: Vec<f64> = Vec::new();
    let mut tiles: Vec<Vec<PointId>> = Vec::new();
    let mut stack: Vec<(Vec<i64>, i64, Vec<PointId>)> =
        merged.into_iter().rev().map(|(k, pts)| (k, factor, pts)).collect();
    while let Some((k, f, mut pts)) = stack.pop() {
        if f > 1 && pts.len() > cap {
            let half = f / 2;
            let sub_side = base_side * half as f64;
            let mut sub: BTreeMap<Vec<i64>, Vec<PointId>> = BTreeMap::new();
            let mut sk = vec![0i64; dim];
            for &p in &pts {
                let coords = data.point(p);
                for (s, (&x, &l)) in sk.iter_mut().zip(coords.iter().zip(&lo)) {
                    *s = ((x - l) / sub_side).floor() as i64;
                }
                sub.entry(sk.clone()).or_default().push(p);
            }
            // Reverse push keeps the pop order lexicographic.
            for (ck, cpts) in sub.into_iter().rev() {
                stack.push((ck, half, cpts));
            }
        } else {
            pts.sort_unstable(); // base tiles concatenate out of id order
            keys.push(k);
            sides.push(base_side * f as f64);
            tiles.push(pts);
        }
    }
    stats.tiles = tiles.len();
    stats.tile_side = side;
    drop(tiling);
    let tiling_wall = sw.lap();

    // Stage 2 (parallel): Algorithm-3 scan per tile. Tiles are assigned
    // statically (LPT on point counts), results land in per-tile slots
    // and their counters are absorbed in tile order, so neither the
    // partition nor the totals depend on scheduling. The assignment may
    // vary with `threads` — it only decides *who* scans a tile, never
    // the scan's outcome.
    let scan = obs::span!("tile_scan");
    stats.largest_tile = tiles.iter().map(Vec::len).max().unwrap_or(0);
    let scan_plan = lpt_assign(threads, tiles.len(), |i| tiles[i].len());
    type TileScan = (Vec<MicroCluster>, Counters);
    let slots: Vec<Mutex<Option<TileScan>>> = tiles.iter().map(|_| Mutex::new(None)).collect();
    stats.tile_scan_busy = run_workers(threads, &|worker| {
        for &i in &scan_plan[worker] {
            let local = Counters::new();
            let mcs = scan_tile(data, eps, opts, &tiles[i], &local);
            *slots[i].lock().expect("poisoned") = Some((mcs, local));
        }
    });
    // Candidates keep their tile index so reconciliation can test
    // interior-ness against the tile's faces.
    let mut candidates: Vec<(usize, MicroCluster)> = Vec::new();
    for (ti, slot) in slots.into_iter().enumerate() {
        let (mcs, local) = slot.into_inner().expect("poisoned").expect("tile scanned");
        candidates.extend(mcs.into_iter().map(|mc| (ti, mc)));
        counters.absorb(&local);
    }
    drop(scan);
    let scan_wall = sw.lap();

    // Stage 3 (sequential prologue): classify candidates. Ascending
    // center id = "first wins", like the sequential scan order. Interior
    // candidates (center ≥ ε from every tile face) cannot conflict with
    // anything and are kept without a query; conflicts are confined to
    // the boundary candidates, and only *they* can dissolve each other —
    // so conflict detection is a neighbourhood query among boundary
    // centers, over a static STR-packed tree.
    let rec = obs::span!("reconcile");
    candidates.sort_unstable_by_key(|(_, mc)| mc.center);
    let is_interior = |ti: usize, center: &[f64]| -> bool {
        let s = sides[ti];
        keys[ti].iter().zip(center.iter().zip(&lo)).all(|(&k, (&x, &l))| {
            let cell_lo = l + k as f64 * s;
            x - cell_lo >= eps && (cell_lo + s) - x >= eps
        })
    };
    // Indices (into the sorted candidate list) of boundary candidates.
    let mut boundary: Vec<usize> = Vec::new();
    for (ci, (ti, cand)) in candidates.iter().enumerate() {
        if !is_interior(*ti, data.point(cand.center)) {
            boundary.push(ci);
        }
    }
    stats.boundary_candidates = boundary.len();
    let boundary_tree = RTree::bulk_load_points(
        dim,
        opts.level1_cfg,
        boundary
            .iter()
            .enumerate()
            .map(|(bi, &ci)| (bi as u32, data.point(candidates[ci].1.center).to_vec())),
    );
    drop(rec);
    let classify_wall = sw.lap();

    // Stage 3a (parallel): each boundary candidate collects its strict
    // ε-neighbours among the other boundary candidates — read-only probes
    // of the static tree, so parallelising cannot change anything. Costs
    // are replayed in boundary order by the resolve below.
    let conflict_span = obs::span!("conflict_probe");
    let conflict_probes: Vec<Mutex<Option<ConflictProbe>>> =
        boundary.iter().map(|_| Mutex::new(None)).collect();
    if boundary.is_empty() {
        stats.conflict_busy = vec![0.0; threads];
    } else {
        let candidates = &candidates;
        let boundary = &boundary;
        let boundary_tree = &boundary_tree;
        let conflict_probes = &conflict_probes;
        let plan = lpt_assign(threads, boundary.len(), |_| 1);
        stats.conflict_busy = run_workers(threads, &|worker| {
            for &bi in &plan[worker] {
                let c = data.point(candidates[boundary[bi]].1.center);
                let mut neighbors: Vec<u32> = Vec::new();
                let cost = boundary_tree.search_sphere(c, eps, |j| {
                    if j as usize != bi {
                        neighbors.push(j);
                    }
                });
                // Ascending order makes the greedy victor choice (and the
                // early exit on `j < bi`) deterministic.
                neighbors.sort_unstable();
                *conflict_probes[bi].lock().expect("poisoned") = Some(ConflictProbe {
                    neighbors,
                    dists: cost.mbr_tests,
                    visits: cost.nodes_visited.max(1),
                });
            }
        });
    }
    drop(conflict_span);
    let conflict_wall = sw.lap();

    // Stage 3b (sequential): greedy first-wins resolve on the conflict
    // graph — a boundary candidate dissolves iff an earlier (lower center
    // id) boundary candidate that itself survived lies strictly within ε.
    // This is exactly the outcome of querying previously kept centers in
    // order, but the critical path is a pure graph walk: zero tree
    // operations. The dissolved candidate's victor is its earliest kept
    // ε-neighbour (deterministic).
    let keep_span = obs::span!("reconcile_keep");
    let mut kept_flag = vec![true; boundary.len()];
    let mut victor_of: Vec<usize> = vec![usize::MAX; boundary.len()];
    for (bi, slot) in conflict_probes.iter().enumerate() {
        let probe = slot.lock().expect("poisoned").take().expect("boundary probed");
        counters.count_node_visits(probe.visits);
        counters.count_dists(probe.dists);
        let victor = probe
            .neighbors
            .iter()
            .map(|&j| j as usize)
            .take_while(|&j| j < bi)
            .find(|&j| kept_flag[j]);
        if let Some(v) = victor {
            kept_flag[bi] = false;
            victor_of[bi] = v;
            stats.boundary_conflicts += 1;
        }
    }
    let mut kept: Vec<MicroCluster> = Vec::new();
    // Orphans carry the kept index of the center that dissolved their MC.
    let mut orphans: Vec<(PointId, McId)> = Vec::new();
    // Kept index of each surviving boundary candidate; a dissolved one's
    // victor has a smaller boundary index, so its slot is already filled
    // when the loser needs it.
    let mut kept_id: Vec<McId> = vec![NO_MC; boundary.len()];
    let mut b = 0usize;
    for (ci, (_, cand)) in candidates.into_iter().enumerate() {
        if b < boundary.len() && boundary[b] == ci {
            let bi = b;
            b += 1;
            if kept_flag[bi] {
                kept_id[bi] = kept.len() as McId;
                kept.push(cand);
            } else {
                let victor = kept_id[victor_of[bi]];
                debug_assert_ne!(victor, NO_MC);
                orphans.extend(cand.members.iter().map(|&m| (m, victor)));
            }
        } else {
            kept.push(cand);
        }
    }
    stats.orphans = orphans.len();
    orphans.sort_unstable();
    // The orphan re-scan can join *any* kept MC (a dissolved boundary
    // MC's members may fall within ε of an interior center), so its
    // fallback runs against the full kept set, STR-packed in one go.
    let kept_tree = RTree::bulk_load_points(
        dim,
        opts.level1_cfg,
        kept.iter().enumerate().map(|(id, mc)| (id as McId, data.point(mc.center).to_vec())),
    );
    drop(keep_span);
    let keep_wall = sw.lap();

    // Stage 3b (parallel): probe every orphan against *read-only* state —
    // the victor's center first (one distance computation; the victor was
    // within ε of the orphan's old center, so most orphans land there),
    // then the static kept-center tree (ε, and 2ε for deferral). Probes
    // are pure per-orphan functions, so parallelising them cannot change
    // anything; their query costs are replayed into `counters` in orphan
    // order by the apply pass below.
    let probe_span = obs::span!("orphan_probe");
    let probes: Vec<Mutex<Option<OrphanProbe>>> =
        orphans.iter().map(|_| Mutex::new(None)).collect();
    if orphans.is_empty() {
        stats.orphan_busy = vec![0.0; threads];
    } else {
        let kept = &kept;
        let kept_tree = &kept_tree;
        let orphans = &orphans;
        let probes = &probes;
        let probe_plan = lpt_assign(threads, orphans.len(), |_| 1);
        stats.orphan_busy = run_workers(threads, &|worker| {
            for &j in &probe_plan[worker] {
                let (p, victor) = orphans[j];
                let coords = data.point(p);
                let vcenter = data.point(kept[victor as usize].center);
                let mut probe = OrphanProbe {
                    victor_hit: geom::dist_euclidean(coords, vcenter) < eps,
                    eps_hit: None,
                    two_eps_hit: false,
                    dists: 1,
                    visits: 0,
                };
                if !probe.victor_hit {
                    let (hit, cost) = kept_tree.first_in_sphere(coords, eps);
                    probe.visits += cost.nodes_visited.max(1);
                    probe.dists += cost.mbr_tests;
                    probe.eps_hit = hit;
                    if hit.is_none() && opts.two_eps_deferral {
                        let (near, cost2) = kept_tree.first_in_sphere(coords, 2.0 * eps);
                        probe.visits += cost2.nodes_visited.max(1);
                        probe.dists += cost2.mbr_tests;
                        probe.two_eps_hit = near.is_some();
                    }
                }
                *probes[j].lock().expect("poisoned") = Some(probe);
            }
        });
    }
    drop(probe_span);
    let probe_wall = sw.lap();

    // Stage 3c (sequential): apply the probes in orphan order. Only
    // orphans that missed everything consult `new_tree` — the centers
    // created during this very pass, which the static probes cannot see.
    let apply = obs::span!("reconcile_apply");
    let mut new_tree = RTree::with_config(dim, opts.level1_cfg);
    let mut deferred: Vec<PointId> = Vec::new();
    for (j, &(p, victor)) in orphans.iter().enumerate() {
        let probe = probes[j].lock().expect("poisoned").take().expect("orphan probed");
        counters.count_dists(probe.dists);
        counters.count_node_visits(probe.visits);
        let coords = data.point(p);
        let join = |kept: &mut Vec<MicroCluster>, mc: McId| {
            let center = kept[mc as usize].center;
            kept[mc as usize].insert(p, coords, data.point(center), eps);
        };
        if probe.victor_hit {
            join(&mut kept, victor);
        } else if let Some(mc) = probe.eps_hit {
            join(&mut kept, mc);
        } else {
            let new_hit = if new_tree.is_empty() {
                None
            } else {
                let (hit, cost) = new_tree.first_in_sphere(coords, eps);
                counters.count_node_visits(cost.nodes_visited.max(1));
                counters.count_dists(cost.mbr_tests);
                hit
            };
            if let Some(mc) = new_hit {
                join(&mut kept, mc);
            } else if opts.two_eps_deferral && probe.two_eps_hit {
                deferred.push(p);
            } else {
                let near_new = opts.two_eps_deferral && !new_tree.is_empty() && {
                    let (near, cost) = new_tree.first_in_sphere(coords, 2.0 * eps);
                    counters.count_node_visits(cost.nodes_visited.max(1));
                    counters.count_dists(cost.mbr_tests);
                    near.is_some()
                };
                if near_new {
                    deferred.push(p);
                } else {
                    new_tree.insert_point(kept.len() as McId, coords);
                    kept.push(MicroCluster::new(p, coords));
                }
            }
        }
    }
    for p in deferred {
        let coords = data.point(p);
        let (hit, cost) = kept_tree.first_in_sphere(coords, eps);
        counters.count_node_visits(cost.nodes_visited.max(1));
        counters.count_dists(cost.mbr_tests);
        let mut target = hit;
        if target.is_none() && !new_tree.is_empty() {
            let (hit2, cost2) = new_tree.first_in_sphere(coords, eps);
            counters.count_node_visits(cost2.nodes_visited.max(1));
            counters.count_dists(cost2.mbr_tests);
            target = hit2;
        }
        if let Some(mc) = target {
            let center = kept[mc as usize].center;
            kept[mc as usize].insert(p, coords, data.point(center), eps);
        } else {
            new_tree.insert_point(kept.len() as McId, coords);
            kept.push(MicroCluster::new(p, coords));
        }
    }

    // Canonical order: ascending center id, independent of tile layout.
    // The kept list is already sorted unless the orphan pass appended new
    // centers, and when it did not, `kept_tree` already indexes exactly
    // the final MC ids, so the level-1 bulk load can be skipped too.
    let created_new = !new_tree.is_empty();
    if created_new {
        kept.sort_unstable_by_key(|mc| mc.center);
    }
    let mut assignment: Vec<McId> = vec![NO_MC; data.len()];
    for (id, mc) in kept.iter().enumerate() {
        for &m in &mc.members {
            assignment[m as usize] = id as McId;
        }
    }
    let level1 = if created_new {
        RTree::bulk_load_points(
            dim,
            opts.level1_cfg,
            kept.iter().enumerate().map(|(id, mc)| (id as McId, data.point(mc.center).to_vec())),
        )
    } else {
        kept_tree
    };
    drop(apply);
    let apply_wall = sw.lap();

    // Stage 4 (parallel): per-MC aux trees, LPT-assigned on member counts
    // so uneven MC sizes still balance; contention-free.
    let aux_span = obs::span!("aux_trees_par");
    let aux_plan = lpt_assign(threads, kept.len(), |i| kept[i].members.len());
    let built: Mutex<Vec<(usize, RTree)>> = Mutex::new(Vec::with_capacity(kept.len()));
    {
        let kept = &kept;
        let built = &built;
        stats.aux_busy = run_workers(threads, &|worker| {
            let mut local: Vec<(usize, RTree)> = Vec::new();
            for &i in &aux_plan[worker] {
                local.push((i, build_one_aux(data, &kept[i], opts)));
            }
            built.lock().expect("poisoned").extend(local);
        });
    }
    for (i, aux) in built.into_inner().expect("poisoned") {
        kept[i].aux = Some(aux);
    }
    drop(aux_span);
    let aux_wall = sw.lap();

    let max = |xs: &[f64]| xs.iter().cloned().fold(0.0f64, f64::max);
    let key_crit = if threads > 1 { max(&stats.keying_busy).min(keying_wall) } else { keying_wall };
    let scan_crit = if threads > 1 { max(&stats.tile_scan_busy).min(scan_wall) } else { scan_wall };
    let conflict_crit =
        if threads > 1 { max(&stats.conflict_busy).min(conflict_wall) } else { conflict_wall };
    let probe_crit = if threads > 1 { max(&stats.orphan_busy).min(probe_wall) } else { probe_wall };
    let aux_crit = if threads > 1 { max(&stats.aux_busy).min(aux_wall) } else { aux_wall };
    stats.makespan_secs = key_crit
        + tiling_wall
        + scan_crit
        + classify_wall
        + conflict_crit
        + keep_wall
        + probe_crit
        + apply_wall
        + aux_crit;

    if obs::enabled() {
        obs::record_count("mc/count", kept.len() as u64);
        obs::record_count("mc_build_par/tiles", stats.tiles as u64);
        obs::record_count("mc_build_par/largest_tile", stats.largest_tile as u64);
        obs::record_count("mc_build_par/boundary_candidates", stats.boundary_candidates as u64);
        obs::record_value("mc_build_par/tile_side", stats.tile_side);
        obs::record_count("mc_build_par/boundary_conflicts", stats.boundary_conflicts as u64);
        obs::record_count("mc_build_par/orphans", stats.orphans as u64);
        obs::record_value("mc_build_par/tiling_wall_secs", tiling_wall);
        obs::record_value("mc_build_par/reconcile_keep_wall_secs", classify_wall + keep_wall);
        obs::record_value("mc_build_par/reconcile_apply_wall_secs", apply_wall);
        obs::record_value("mc_build_par/keying_busy_max_secs", max(&stats.keying_busy));
        obs::record_value("mc_build_par/tile_scan_busy_max_secs", max(&stats.tile_scan_busy));
        obs::record_value("mc_build_par/conflict_busy_max_secs", max(&stats.conflict_busy));
        obs::record_value("mc_build_par/orphan_busy_max_secs", max(&stats.orphan_busy));
        obs::record_value("mc_build_par/aux_busy_max_secs", max(&stats.aux_busy));
        obs::record_value("mc_build_par/makespan_secs", stats.makespan_secs);
    }
    (MuRTree::from_parts(eps, level1, kept, assignment), stats)
}

/// The Algorithm-3 greedy scan restricted to one tile's points (ascending
/// id order) against a tile-local center tree. Pure function of the tile
/// contents — worker scheduling cannot influence it.
fn scan_tile(
    data: &Dataset,
    eps: f64,
    opts: &BuildOptions,
    pts: &[PointId],
    counters: &Counters,
) -> Vec<MicroCluster> {
    let mut local = RTree::with_config(data.dim(), opts.level1_cfg);
    let mut mcs: Vec<MicroCluster> = Vec::new();
    let mut deferred: Vec<PointId> = Vec::new();
    let create = |p: PointId, coords: &[f64], local: &mut RTree, mcs: &mut Vec<MicroCluster>| {
        local.insert_point(mcs.len() as McId, coords);
        mcs.push(MicroCluster::new(p, coords));
    };
    for &p in pts {
        let coords = data.point(p);
        let (hit, cost) = local.first_in_sphere(coords, eps);
        counters.count_node_visits(cost.nodes_visited.max(1));
        counters.count_dists(cost.mbr_tests);
        if let Some(mc) = hit {
            let center = mcs[mc as usize].center;
            mcs[mc as usize].insert(p, coords, data.point(center), eps);
        } else if opts.two_eps_deferral {
            let (near, cost2) = local.first_in_sphere(coords, 2.0 * eps);
            counters.count_node_visits(cost2.nodes_visited.max(1));
            counters.count_dists(cost2.mbr_tests);
            if near.is_some() {
                deferred.push(p);
            } else {
                create(p, coords, &mut local, &mut mcs);
            }
        } else {
            create(p, coords, &mut local, &mut mcs);
        }
    }
    for p in deferred {
        let coords = data.point(p);
        let (hit, cost) = local.first_in_sphere(coords, eps);
        counters.count_node_visits(cost.nodes_visited.max(1));
        counters.count_dists(cost.mbr_tests);
        if let Some(mc) = hit {
            let center = mcs[mc as usize].center;
            mcs[mc as usize].insert(p, coords, data.point(center), eps);
        } else {
            create(p, coords, &mut local, &mut mcs);
        }
    }
    mcs
}

/// Build one MC's auxiliary tree (STR bulk-load or incremental insertion,
/// per [`BuildOptions::str_aux`]).
fn build_one_aux(data: &Dataset, mc: &MicroCluster, opts: &BuildOptions) -> RTree {
    if opts.str_aux {
        RTree::bulk_load_points(
            data.dim(),
            opts.aux_cfg,
            mc.members.iter().map(|&m| (m, data.point(m).to_vec())),
        )
    } else {
        let mut t = RTree::with_config(data.dim(), opts.aux_cfg);
        for &m in &mc.members {
            t.insert_point(m, data.point(m));
        }
        t
    }
}

/// Deterministic LPT (longest-processing-time-first) assignment of
/// `items` work items to `threads` workers: items sorted by descending
/// weight (ascending index breaks ties) each go to the currently
/// least-loaded worker. The assignment never influences any output —
/// results are keyed by item index — it only balances each worker's busy
/// time, which is what the makespan measures.
fn lpt_assign(threads: usize, items: usize, weight: impl Fn(usize) -> usize) -> Vec<Vec<usize>> {
    let mut order: Vec<usize> = (0..items).collect();
    order.sort_by(|&a, &b| weight(b).cmp(&weight(a)).then(a.cmp(&b)));
    let mut plan: Vec<Vec<usize>> = vec![Vec::new(); threads];
    let mut load: Vec<usize> = vec![0; threads];
    for i in order {
        let w = (0..threads).min_by_key(|&w| (load[w], w)).expect("threads >= 1");
        load[w] += weight(i);
        plan[w].push(i);
    }
    plan
}

/// Spawn `threads` scoped workers, hand each its worker index (the
/// callee looks its share up in an [`lpt_assign`] plan), and return each
/// worker's busy seconds. Static assignment — rather than a shared
/// stealing queue — keeps each worker's share (and therefore its busy
/// time) a fixed function of the work items: on a host with fewer cores
/// than workers a stealing queue degenerates to "whichever worker is
/// scheduled first drains everything", which would make the measured
/// critical path independent of the thread count.
fn run_workers(threads: usize, work: &(dyn Fn(usize) + Sync)) -> Vec<f64> {
    let mut busy = Vec::with_capacity(threads);
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..threads)
            .map(|worker| {
                s.spawn(move || {
                    let t = BusyTimer::start();
                    work(worker);
                    t.secs()
                })
            })
            .collect();
        for h in handles {
            busy.push(h.join().expect("worker panicked"));
        }
    });
    busy
}

#[cfg(test)]
mod tests {
    use super::*;
    use geom::dist_euclidean;

    fn grid(n: usize, step: f64) -> Dataset {
        let mut rows = Vec::new();
        for i in 0..n {
            for j in 0..n {
                rows.push(vec![i as f64 * step, j as f64 * step]);
            }
        }
        Dataset::from_rows(&rows)
    }

    fn check_partition(data: &Dataset, t: &MuRTree, eps: f64) {
        let mut seen = vec![false; data.len()];
        for (id, mc) in t.mcs.iter().enumerate() {
            for &m in &mc.members {
                assert!(!seen[m as usize], "point {m} in two MCs");
                seen[m as usize] = true;
                assert_eq!(t.assignment[m as usize], id as McId);
                assert!(
                    dist_euclidean(data.point(m), data.point(mc.center)) < eps,
                    "member outside its MC ball"
                );
            }
            assert_eq!(mc.center, mc.members[0], "center must be first member");
        }
        assert!(seen.iter().all(|&s| s), "unassigned point");
    }

    fn fingerprint(t: &MuRTree) -> Vec<(PointId, Vec<PointId>)> {
        t.mcs.iter().map(|mc| (mc.center, mc.members.clone())).collect()
    }

    #[test]
    fn partition_invariants_hold() {
        let data = grid(14, 0.4);
        let c = Counters::new();
        let (t, stats) = build_micro_clusters_par(&data, 1.0, &BuildOptions::default(), 4, &c);
        check_partition(&data, &t, 1.0);
        assert!(t.mcs.len() < data.len());
        assert!(stats.tiles > 1, "a spread-out grid must occupy several tiles");
        assert!(c.dist_computations() > 0);
        assert!(c.node_visits() > 0);
        // Centers pairwise >= eps apart (reconciliation's whole job).
        for (i, a) in t.mcs.iter().enumerate() {
            for b in t.mcs.iter().skip(i + 1) {
                assert!(
                    dist_euclidean(data.point(a.center), data.point(b.center)) >= 1.0,
                    "two MC centers within eps"
                );
            }
        }
    }

    #[test]
    fn deterministic_across_thread_counts() {
        let data = grid(13, 0.37);
        let mut baseline = None;
        let mut base_counters = None;
        for threads in [1usize, 2, 3, 4, 8] {
            let c = Counters::new();
            let (t, _) =
                build_micro_clusters_par(&data, 1.0, &BuildOptions::default(), threads, &c);
            check_partition(&data, &t, 1.0);
            let fp = fingerprint(&t);
            let cc = (c.node_visits(), c.dist_computations(), c.range_queries());
            match (&baseline, &base_counters) {
                (None, None) => {
                    baseline = Some(fp);
                    base_counters = Some(cc);
                }
                (Some(b), Some(bc)) => {
                    assert_eq!(&fp, b, "threads={threads}: MC set drifted");
                    assert_eq!(&cc, bc, "threads={threads}: counters drifted");
                }
                _ => unreachable!(),
            }
        }
    }

    #[test]
    fn aux_trees_answer_queries() {
        let data = grid(10, 0.4);
        let c = Counters::new();
        let (t, _) = build_micro_clusters_par(&data, 1.0, &BuildOptions::default(), 3, &c);
        for mc in &t.mcs {
            let aux = mc.aux.as_ref().expect("aux built");
            let mut got = aux.sphere_neighbors(data.point(mc.center), 1.0);
            got.sort_unstable();
            let mut want = mc.members.clone();
            want.sort_unstable();
            assert_eq!(got, want, "aux tree must index exactly the members");
        }
    }

    #[test]
    fn incremental_aux_matches_str() {
        let data = grid(8, 0.4);
        let c = Counters::new();
        let (a, _) = build_micro_clusters_par(&data, 1.0, &BuildOptions::default(), 2, &c);
        let (b, _) = build_micro_clusters_par(
            &data,
            1.0,
            &BuildOptions { str_aux: false, ..Default::default() },
            2,
            &c,
        );
        assert_eq!(fingerprint(&a), fingerprint(&b));
        for (ma, mb) in a.mcs.iter().zip(&b.mcs) {
            let mut na = ma.aux.as_ref().unwrap().sphere_neighbors(data.point(ma.center), 0.7);
            let mut nb = mb.aux.as_ref().unwrap().sphere_neighbors(data.point(ma.center), 0.7);
            na.sort_unstable();
            nb.sort_unstable();
            assert_eq!(na, nb);
        }
    }

    #[test]
    fn duplicate_points_share_one_mc() {
        let data = Dataset::from_rows(&vec![vec![5.0, 5.0]; 20]);
        let c = Counters::new();
        let (t, stats) = build_micro_clusters_par(&data, 1.0, &BuildOptions::default(), 4, &c);
        assert_eq!(t.mcs.len(), 1);
        assert_eq!(t.mcs[0].len(), 20);
        assert_eq!(t.mcs[0].inner_count, 20);
        assert_eq!(stats.tiles, 1);
        assert_eq!(stats.boundary_conflicts, 0);
    }

    #[test]
    fn empty_dataset() {
        let data = Dataset::empty(3);
        let c = Counters::new();
        let (t, stats) = build_micro_clusters_par(&data, 0.5, &BuildOptions::default(), 4, &c);
        assert_eq!(t.mc_count(), 0);
        assert!(t.assignment.is_empty());
        assert_eq!(stats.tiles, 0);
    }

    #[test]
    fn boundary_conflicts_are_resolved() {
        // A tight line of points crossing many tile boundaries: tiles
        // produce conflicting candidates near every boundary, and the
        // reconciliation pass must still yield a valid partition.
        let n = 400;
        let rows: Vec<Vec<f64>> = (0..n).map(|i| vec![i as f64 * 0.11, 0.0]).collect();
        let data = Dataset::from_rows(&rows);
        let c = Counters::new();
        let (t, stats) = build_micro_clusters_par(&data, 1.0, &BuildOptions::default(), 4, &c);
        check_partition(&data, &t, 1.0);
        assert!(stats.tiles > 10);
        // The same outcome at t1 (determinism with real conflicts present).
        let c1 = Counters::new();
        let (t1, _) = build_micro_clusters_par(&data, 1.0, &BuildOptions::default(), 1, &c1);
        assert_eq!(fingerprint(&t), fingerprint(&t1));
        assert_eq!(c.node_visits(), c1.node_visits());
        assert_eq!(c.dist_computations(), c1.dist_computations());
    }

    #[test]
    fn no_deferral_still_partitions() {
        let data = grid(9, 0.45);
        let c = Counters::new();
        let opts = BuildOptions { two_eps_deferral: false, ..Default::default() };
        let (t, _) = build_micro_clusters_par(&data, 1.0, &opts, 3, &c);
        check_partition(&data, &t, 1.0);
    }

    #[test]
    fn stats_and_busy_times_populated() {
        let data = grid(12, 0.4);
        let c = Counters::new();
        let (_, stats) = build_micro_clusters_par(&data, 1.0, &BuildOptions::default(), 3, &c);
        assert_eq!(stats.keying_busy.len(), 3);
        assert_eq!(stats.tile_scan_busy.len(), 3);
        assert_eq!(stats.conflict_busy.len(), 3);
        assert_eq!(stats.orphan_busy.len(), 3);
        assert_eq!(stats.aux_busy.len(), 3);
        assert!(stats.makespan_secs >= 0.0);
        assert!(stats.tiles > 0);
    }
}
