//! Byte-size estimation for messages — feeds the α–β communication cost
//! model (a real MPI run would serialise these payloads).

/// Types that can report their serialised size in bytes.
pub trait MsgSize {
    /// Estimated wire size in bytes.
    fn byte_size(&self) -> usize;
}

macro_rules! prim_msg_size {
    ($($t:ty),*) => {
        $(impl MsgSize for $t {
            fn byte_size(&self) -> usize { std::mem::size_of::<$t>() }
        })*
    };
}

prim_msg_size!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64, bool);

impl MsgSize for () {
    fn byte_size(&self) -> usize {
        0
    }
}

impl<T: MsgSize> MsgSize for Vec<T> {
    fn byte_size(&self) -> usize {
        8 + self.iter().map(|x| x.byte_size()).sum::<usize>()
    }
}

impl<T: MsgSize> MsgSize for Option<T> {
    fn byte_size(&self) -> usize {
        1 + self.as_ref().map_or(0, |x| x.byte_size())
    }
}

impl<A: MsgSize, B: MsgSize> MsgSize for (A, B) {
    fn byte_size(&self) -> usize {
        self.0.byte_size() + self.1.byte_size()
    }
}

impl<A: MsgSize, B: MsgSize, C: MsgSize> MsgSize for (A, B, C) {
    fn byte_size(&self) -> usize {
        self.0.byte_size() + self.1.byte_size() + self.2.byte_size()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives() {
        assert_eq!(3u32.byte_size(), 4);
        assert_eq!(1.5f64.byte_size(), 8);
        assert_eq!(().byte_size(), 0);
        assert_eq!(true.byte_size(), 1);
    }

    #[test]
    fn containers() {
        assert_eq!(vec![1u32, 2, 3].byte_size(), 8 + 12);
        assert_eq!(Some(7u64).byte_size(), 9);
        assert_eq!(None::<u64>.byte_size(), 1);
        assert_eq!((1u32, 2.0f64).byte_size(), 12);
        assert_eq!((1u32, 2u32, vec![0.0f64; 2]).byte_size(), 4 + 4 + 8 + 16);
    }
}
