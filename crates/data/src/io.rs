//! Dataset file IO: CSV (human-friendly) and a raw little-endian f64
//! binary format (`n × dim` doubles prefixed by a 16-byte header), the
//! shape in which the paper's billion-point inputs would be stored.

use geom::Dataset;
use std::fs::File;
use std::io::{self, BufRead, BufReader, BufWriter, Read, Write};
use std::path::Path;

const MAGIC: &[u8; 4] = b"MUDB";

/// Write `data` as CSV (one point per line).
pub fn write_csv(data: &Dataset, path: &Path) -> io::Result<()> {
    let mut w = BufWriter::new(File::create(path)?);
    for (_, p) in data.iter() {
        let mut first = true;
        for x in p {
            if !first {
                w.write_all(b",")?;
            }
            write!(w, "{x}")?;
            first = false;
        }
        w.write_all(b"\n")?;
    }
    w.flush()
}

/// Read a CSV of floats into a dataset.
pub fn read_csv(path: &Path) -> io::Result<Dataset> {
    let r = BufReader::new(File::open(path)?);
    let mut dim = 0usize;
    let mut coords = Vec::new();
    for (ln, line) in r.lines().enumerate() {
        let line = line?;
        let t = line.trim();
        if t.is_empty() {
            continue;
        }
        let row: Result<Vec<f64>, _> = t.split(',').map(|s| s.trim().parse::<f64>()).collect();
        let row = row.map_err(|e| {
            io::Error::new(io::ErrorKind::InvalidData, format!("line {}: {e}", ln + 1))
        })?;
        if dim == 0 {
            dim = row.len();
        } else if row.len() != dim {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("line {}: expected {dim} columns, got {}", ln + 1, row.len()),
            ));
        }
        coords.extend(row);
    }
    if dim == 0 {
        return Err(io::Error::new(io::ErrorKind::InvalidData, "empty CSV"));
    }
    Ok(Dataset::from_flat(dim, coords))
}

/// Write the raw binary format: `MUDB` magic, u32 dim, u64 n, then
/// `n * dim` little-endian f64s.
pub fn write_bin(data: &Dataset, path: &Path) -> io::Result<()> {
    let mut w = BufWriter::new(File::create(path)?);
    w.write_all(MAGIC)?;
    w.write_all(&(data.dim() as u32).to_le_bytes())?;
    w.write_all(&(data.len() as u64).to_le_bytes())?;
    for x in data.coords() {
        w.write_all(&x.to_le_bytes())?;
    }
    w.flush()
}

/// Read the raw binary format.
pub fn read_bin(path: &Path) -> io::Result<Dataset> {
    let mut r = BufReader::new(File::open(path)?);
    let mut magic = [0u8; 4];
    r.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(io::Error::new(io::ErrorKind::InvalidData, "bad magic"));
    }
    let mut b4 = [0u8; 4];
    r.read_exact(&mut b4)?;
    let dim = u32::from_le_bytes(b4) as usize;
    let mut b8 = [0u8; 8];
    r.read_exact(&mut b8)?;
    let n = u64::from_le_bytes(b8) as usize;
    if dim == 0 {
        return Err(io::Error::new(io::ErrorKind::InvalidData, "zero dimension"));
    }
    let mut coords = Vec::with_capacity(n * dim);
    for _ in 0..n * dim {
        r.read_exact(&mut b8)?;
        coords.push(f64::from_le_bytes(b8));
    }
    Ok(Dataset::from_flat(dim, coords))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::gaussian_mixture;

    #[test]
    fn csv_roundtrip() {
        let d = gaussian_mixture(100, 3, 2, 1.0, 0.1, 5);
        let tmp = std::env::temp_dir().join("mudbscan_test_io.csv");
        write_csv(&d, &tmp).unwrap();
        let back = read_csv(&tmp).unwrap();
        assert_eq!(back.len(), d.len());
        assert_eq!(back.dim(), d.dim());
        for (i, p) in d.iter() {
            for (a, b) in p.iter().zip(back.point(i)) {
                assert!((a - b).abs() < 1e-9);
            }
        }
        std::fs::remove_file(&tmp).ok();
    }

    #[test]
    fn bin_roundtrip_is_exact() {
        let d = gaussian_mixture(64, 5, 2, 1.0, 0.1, 6);
        let tmp = std::env::temp_dir().join("mudbscan_test_io.bin");
        write_bin(&d, &tmp).unwrap();
        let back = read_bin(&tmp).unwrap();
        assert_eq!(back, d);
        std::fs::remove_file(&tmp).ok();
    }

    #[test]
    fn bad_inputs_rejected() {
        let tmp = std::env::temp_dir().join("mudbscan_test_bad.bin");
        std::fs::write(&tmp, b"NOPE").unwrap();
        assert!(read_bin(&tmp).is_err());
        std::fs::write(&tmp, b"1,2\n1\n").unwrap();
        assert!(read_csv(&tmp).is_err());
        std::fs::write(&tmp, b"").unwrap();
        assert!(read_csv(&tmp).is_err());
        std::fs::remove_file(&tmp).ok();
    }
}
