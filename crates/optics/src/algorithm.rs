//! The OPTICS ordering algorithm and DBSCAN extraction.

use geom::{dist_euclidean, Dataset, DbscanParams, PointId};
use mcs::{build_micro_clusters, build_micro_clusters_par, BuildOptions};
use metrics::{Counters, PhaseTimer, Stopwatch};
use mudbscan::{Clustering, NOISE};
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Configured OPTICS instance. `params.eps` is the *generating* radius:
/// the ordering supports DBSCAN extraction at every ε′ ≤ ε.
#[derive(Debug, Clone)]
pub struct Optics {
    params: DbscanParams,
    opts: BuildOptions,
}

/// The cluster ordering.
#[derive(Debug)]
pub struct OpticsOutput {
    /// Point ids in processing order.
    pub order: Vec<PointId>,
    /// `reachability[p]` — the reachability distance of point `p`
    /// (`f64::INFINITY` for the first point of each connected component).
    pub reachability: Vec<f64>,
    /// `core_distance[p]` — distance to the `MinPts`-th nearest point
    /// within ε (self included), or `f64::INFINITY` when `p` is not core
    /// at the generating ε.
    pub core_distance: Vec<f64>,
    /// The parameters the ordering was generated with.
    pub params: DbscanParams,
    /// Query/distance counters.
    pub counters: Counters,
    /// Phase timings (tree construction vs ordering).
    pub phases: PhaseTimer,
}

/// Min-heap entry (reversed ordering over the reachability value); stale
/// entries are skipped on pop (lazy decrease-key).
struct Seed {
    reach: f64,
    point: PointId,
}

impl PartialEq for Seed {
    fn eq(&self, other: &Self) -> bool {
        self.reach == other.reach && self.point == other.point
    }
}
impl Eq for Seed {}
impl PartialOrd for Seed {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Seed {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse for a min-heap; tie-break on id for determinism.
        other
            .reach
            .partial_cmp(&self.reach)
            .unwrap_or(Ordering::Equal)
            .then_with(|| other.point.cmp(&self.point))
    }
}

impl Optics {
    /// New instance. OPTICS always sees the full dataset up front, so the
    /// μR-tree is built with the tiled parallel constructor by default;
    /// the ordering itself is unaffected because every ε-neighbourhood is
    /// exact under either construction. Use
    /// `with_options(BuildOptions::default())` to restore the sequential
    /// Algorithm-3 scan.
    ///
    /// Low-level entry point; applications should prefer
    /// `mudbscan::prelude::Runner::new(params).family(Family::Optics)`.
    pub fn from_params(params: DbscanParams) -> Self {
        Self { params, opts: BuildOptions { parallel: true, ..BuildOptions::default() } }
    }

    /// Override μR-tree construction options (`opts.parallel` selects the
    /// tiled parallel constructor vs the sequential scan).
    pub fn with_options(mut self, opts: BuildOptions) -> Self {
        self.opts = opts;
        self
    }

    /// Compute the cluster ordering of `data`.
    pub fn run(&self, data: &Dataset) -> OpticsOutput {
        let n = data.len();
        let params = self.params;
        let counters = Counters::new();
        let mut phases = PhaseTimer::new();
        let mut sw = Stopwatch::start();

        let mut tree = if self.opts.parallel {
            let threads = std::thread::available_parallelism().map_or(4, |p| p.get());
            build_micro_clusters_par(data, params.eps, &self.opts, threads, &counters).0
        } else {
            build_micro_clusters(data, params.eps, &self.opts, &counters)
        };
        tree.compute_reachable(data, &counters);
        phases.add_secs("tree_construction", sw.lap());

        let mut order = Vec::with_capacity(n);
        let mut reachability = vec![f64::INFINITY; n];
        let mut core_distance = vec![f64::INFINITY; n];
        let mut processed = vec![false; n];
        let mut nbhrs: Vec<PointId> = Vec::new();
        let mut dists: Vec<f64> = Vec::new();

        // Expand from every yet-unprocessed point (component starts).
        for start in 0..n as PointId {
            if processed[start as usize] {
                continue;
            }
            let mut heap = BinaryHeap::new();
            heap.push(Seed { reach: f64::INFINITY, point: start });
            while let Some(Seed { reach, point: p }) = heap.pop() {
                if processed[p as usize] {
                    continue; // stale entry
                }
                // Stale if a better reachability was recorded later.
                if reach > reachability[p as usize] {
                    continue;
                }
                processed[p as usize] = true;
                order.push(p);

                // ε-neighbourhood and core distance.
                nbhrs.clear();
                let cost = tree.neighborhood(data, p, &mut nbhrs);
                counters.count_range_query();
                counters.count_dists(cost.mbr_tests);
                let pc = data.point(p);
                dists.clear();
                dists.extend(nbhrs.iter().map(|&q| dist_euclidean(pc, data.point(q))));
                if dists.len() >= params.min_pts {
                    // MinPts-th smallest distance (self included at 0).
                    let k = params.min_pts - 1;
                    let (_, kth, _) =
                        dists.select_nth_unstable_by(k, |a, b| a.partial_cmp(b).unwrap());
                    core_distance[p as usize] = *kth;
                } else {
                    continue; // not core: expands nothing
                }

                let cd = core_distance[p as usize];
                for &q in nbhrs.iter() {
                    if processed[q as usize] {
                        continue;
                    }
                    let d = dist_euclidean(pc, data.point(q));
                    let new_reach = cd.max(d);
                    if new_reach < reachability[q as usize] {
                        reachability[q as usize] = new_reach;
                        heap.push(Seed { reach: new_reach, point: q });
                    }
                }
            }
        }
        phases.add_secs("ordering", sw.lap());
        debug_assert_eq!(order.len(), n);

        OpticsOutput { order, reachability, core_distance, params, counters, phases }
    }
}

/// Horizontal cut: read the DBSCAN clustering at `eps_prime <= ε` off the
/// ordering (ExtractDBSCAN-Clustering of the OPTICS paper, adapted to the
/// strict `< ε` neighbourhood convention), followed by a border-rescue
/// pass that restores full exactness.
///
/// Why the rescue pass: in the classic extraction a border point that was
/// *ordered before* its core neighbour keeps a stale reachability above
/// ε′ and would be labelled noise — the OPTICS paper itself only claims a
/// "nearly indistinguishable" clustering. The converse error cannot
/// happen (reach < ε′ certifies direct density-reachability at ε′), so
/// re-examining the would-be-noise points against the core points is
/// sufficient for exactness — which the tests verify against the naive
/// oracle at arbitrary extraction radii.
pub fn extract_dbscan(out: &OpticsOutput, data: &Dataset, eps_prime: f64) -> Clustering {
    assert!(
        eps_prime <= out.params.eps,
        "extraction radius {} exceeds the generating eps {}",
        eps_prime,
        out.params.eps
    );
    let n = out.order.len();
    let mut labels = vec![NOISE; n];
    let mut is_core = vec![false; n];
    let mut current: Option<u32> = None;
    let mut next = 0u32;

    for &p in &out.order {
        let pi = p as usize;
        if out.reachability[pi] >= eps_prime {
            // Not density-reachable at eps'; starts a cluster iff core.
            if out.core_distance[pi] < eps_prime {
                is_core[pi] = true;
                labels[pi] = next;
                current = Some(next);
                next += 1;
            } else {
                labels[pi] = NOISE;
                current = None;
            }
        } else {
            // Reachable from the current cluster at eps'.
            let c = current.expect("reachable point must follow a cluster start");
            labels[pi] = c;
            if out.core_distance[pi] < eps_prime {
                is_core[pi] = true;
            }
        }
    }
    // Border rescue: a noise-labelled point with a core point strictly
    // within eps' is actually a border point of that core's cluster.
    let noise_points: Vec<u32> = (0..n as u32).filter(|&p| labels[p as usize] == NOISE).collect();
    if !noise_points.is_empty() {
        let core_tree = rtree::RTree::bulk_load_points(
            data.dim(),
            rtree::RTreeConfig::default(),
            (0..n as u32).filter(|&p| is_core[p as usize]).map(|p| (p, data.point(p).to_vec())),
        );
        for p in noise_points {
            if let (Some(q), _cost) = core_tree.first_in_sphere(data.point(p), eps_prime) {
                labels[p as usize] = labels[q as usize];
            }
        }
    }

    Clustering { labels, is_core, n_clusters: next as usize }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mudbscan::{check_exact, naive_dbscan};

    fn blobs(seed: u64) -> Dataset {
        let mut rows = Vec::new();
        let mut s = seed;
        let mut r = move || {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((s >> 33) as f64 / (1u64 << 31) as f64) - 1.0
        };
        for (cx, cy) in [(0.0, 0.0), (5.0, 3.0), (-3.0, 6.0)] {
            for _ in 0..50 {
                rows.push(vec![cx + 0.6 * r(), cy + 0.6 * r()]);
            }
        }
        for _ in 0..20 {
            rows.push(vec![10.0 * r(), 10.0 * r()]);
        }
        Dataset::from_rows(&rows)
    }

    #[test]
    fn ordering_covers_every_point_once() {
        let data = blobs(3);
        let out = Optics::from_params(DbscanParams::new(1.0, 5)).run(&data);
        let mut seen = vec![false; data.len()];
        for &p in &out.order {
            assert!(!seen[p as usize]);
            seen[p as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
        assert!(out.counters.range_queries() as usize >= data.len());
    }

    #[test]
    fn extraction_at_generating_eps_matches_dbscan() {
        let data = blobs(7);
        let params = DbscanParams::new(0.8, 5);
        let out = Optics::from_params(params).run(&data);
        let got = extract_dbscan(&out, &data, params.eps);
        let want = naive_dbscan(&data, &params);
        let rep = check_exact(&got, &want, &data, &params);
        assert!(rep.is_exact(), "{rep:?}");
    }

    #[test]
    fn extraction_below_generating_eps_matches_dbscan() {
        // ONE ordering, MANY clusterings: the whole point of OPTICS.
        let data = blobs(11);
        let out = Optics::from_params(DbscanParams::new(1.2, 5)).run(&data);
        for eps_prime in [0.4, 0.6, 0.9, 1.2] {
            let got = extract_dbscan(&out, &data, eps_prime);
            let params_prime = DbscanParams::new(eps_prime, 5);
            let want = naive_dbscan(&data, &params_prime);
            let rep = check_exact(&got, &want, &data, &params_prime);
            assert!(rep.is_exact(), "eps'={eps_prime}: {rep:?}");
        }
    }

    #[test]
    fn core_distance_characterises_core_points() {
        let data = blobs(13);
        let params = DbscanParams::new(0.9, 6);
        let out = Optics::from_params(params).run(&data);
        let reference = naive_dbscan(&data, &params);
        for p in 0..data.len() {
            let is_core = out.core_distance[p] < params.eps;
            assert_eq!(
                is_core, reference.is_core[p],
                "core_dist vs DBSCAN core flag mismatch at {p}"
            );
        }
    }

    #[test]
    fn reachability_plot_shape() {
        // Dense blob then a gap: reachability within the blob is small,
        // the jump to the outlier is large.
        let mut rows: Vec<Vec<f64>> = (0..30).map(|i| vec![0.05 * i as f64]).collect();
        rows.push(vec![50.0]);
        let data = Dataset::from_rows(&rows);
        let out = Optics::from_params(DbscanParams::new(2.0, 4)).run(&data);
        // The outlier is unreachable (INFINITY) — it is farther than ε.
        assert!(out.reachability[30].is_infinite());
        // Blob members (apart from the start) have small reachability.
        let small =
            out.order.iter().filter(|&&p| p != 30 && out.reachability[p as usize] < 0.5).count();
        assert!(small >= 28, "blob reachability too large: {small}");
    }

    #[test]
    #[should_panic(expected = "exceeds the generating eps")]
    fn extraction_above_eps_rejected() {
        let data = blobs(1);
        let out = Optics::from_params(DbscanParams::new(0.5, 5)).run(&data);
        extract_dbscan(&out, &data, 1.0);
    }

    #[test]
    fn deterministic() {
        let data = blobs(21);
        let params = DbscanParams::new(0.8, 5);
        let a = Optics::from_params(params).run(&data);
        let b = Optics::from_params(params).run(&data);
        assert_eq!(a.order, b.order);
        assert_eq!(a.reachability, b.reachability);
    }
}
