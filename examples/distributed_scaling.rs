//! Distributed scaling demo: run μDBSCAN-D at increasing rank counts on
//! the BSP simulator and print the virtual-time speedup curve (a small
//! interactive version of the paper's Fig. 7).
//!
//! ```text
//! cargo run --release --example distributed_scaling
//! ```

use mudbscan_repro::prelude::*;

fn main() {
    let dataset = data::galaxy(50_000, 3, 11);
    let params = DbscanParams::new(0.8, 5);

    println!("μDBSCAN-D scaling — n={}, dim=3 (virtual BSP makespans)\n", dataset.len());

    let base = MuDbscanD::new(params, DistConfig::new(1)).run(&dataset).unwrap();
    println!(
        "{:>6} {:>12} {:>9} {:>10} {:>12}",
        "ranks", "runtime (s)", "speedup", "clusters", "comm (KiB)"
    );
    println!(
        "{:>6} {:>12.3} {:>9.2} {:>10} {:>12}",
        1,
        base.runtime_secs,
        1.0,
        base.clustering.n_clusters,
        base.comm_bytes / 1024
    );

    for p in [2, 4, 8, 16, 32] {
        let out = MuDbscanD::new(params, DistConfig::new(p)).run(&dataset).unwrap();
        assert_eq!(
            out.clustering.n_clusters, base.clustering.n_clusters,
            "clustering must be identical at every rank count"
        );
        println!(
            "{:>6} {:>12.3} {:>9.2} {:>10} {:>12}",
            p,
            out.runtime_secs,
            base.runtime_secs / out.runtime_secs,
            out.clustering.n_clusters,
            out.comm_bytes / 1024
        );
    }

    println!("\nexact clustering preserved at every scale ✓");
    println!("(speedups are virtual-clock makespans; see DESIGN.md §2 on the BSP model)");
}
