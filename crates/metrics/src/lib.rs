#![deny(missing_docs)]

//! Instrumentation shared by all algorithms: phase timers (Tables III, VII,
//! VIII), operation counters (the "% queries saved" column of Table II),
//! deep-size memory accounting (Table IV) and plain-text table rendering
//! for the reproduction harnesses.

//! ```
//! use metrics::{Counters, PhaseTimer};
//!
//! let c = Counters::new();
//! c.count_range_query();
//! c.count_query_saved();
//! assert_eq!(c.pct_queries_saved(), 50.0);
//!
//! let mut phases = PhaseTimer::new();
//! phases.add_secs("build", 1.0);
//! phases.add_secs("query", 3.0);
//! assert_eq!(phases.split_up()[1].2, 75.0); // query is 75% of the total
//! ```

pub mod counters;
pub mod mem;
pub mod table;
pub mod timer;

pub use counters::{Counters, SharedCounters};
pub use mem::{slice_bytes, vec_bytes, MemUsage};
pub use table::Table;
pub use timer::{thread_cpu_secs, BusyTimer, PhaseTimer, Stopwatch};
