//! Range queries: axis-aligned boxes and open ε-balls.
//!
//! Ball queries use the exact box/sphere distance test
//! ([`geom::Mbr::min_dist_sq`]). Because leaf entries for points carry
//! degenerate MBRs, the same test *is* the strict `DIST(p, q) < r`
//! membership predicate, so `search_sphere` returns the exact open-ball
//! neighbourhood with no post-filtering.
//!
//! `search_sphere` expands nodes best-first from the shared MINDIST heap
//! ([`crate::traversal`]) and evaluates point-layout leaves with one
//! batched column-kernel call. Both changes preserve the query's work
//! profile exactly — same node-visit set, same per-entry distance tests,
//! same matches — they only reorder emission and let the distance loop
//! vectorize. `first_in_sphere` intentionally stays depth-first with
//! per-entry evaluation: its result is *which* item is found first, and
//! the short-circuit accounting charges exactly the entries examined.

use crate::node::{LeafData, Node};
use crate::traversal::{scalar_leaf_eval_forced, Candidate};
use crate::tree::RTree;
use geom::Mbr;
use std::collections::BinaryHeap;

/// Work performed by one query — feeds the paper's query-cost accounting.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct QueryCost {
    /// Tree nodes whose children/entries were scanned.
    pub nodes_visited: u64,
    /// Box/box or box/sphere tests on entries and children.
    pub mbr_tests: u64,
    /// Leaf entries whose exact distance was evaluated (the candidate set
    /// the leaf kernels ran over). A batched leaf charges one per stored
    /// point; a short-circuiting scan charges only the entries it
    /// examined before stopping.
    pub candidates: u64,
    /// Items reported to the visitor.
    pub matches: u64,
}

impl QueryCost {
    /// Accumulate another query's cost.
    pub fn add(&mut self, other: QueryCost) {
        self.nodes_visited += other.nodes_visited;
        self.mbr_tests += other.mbr_tests;
        self.candidates += other.candidates;
        self.matches += other.matches;
    }
}

impl RTree {
    /// Visit every item whose MBR intersects `query` (closed-box overlap).
    pub fn search_box(&self, query: &Mbr, mut visit: impl FnMut(u32)) -> QueryCost {
        let mut cost = QueryCost::default();
        let Some(root) = self.root else { return cost };
        let mut stack = vec![root];
        while let Some(n) = stack.pop() {
            cost.nodes_visited += 1;
            match &self.nodes[n as usize] {
                Node::Internal { children, .. } => {
                    for &c in children {
                        cost.mbr_tests += 1;
                        if self.nodes[c as usize].mbr().intersects(query) {
                            stack.push(c);
                        }
                    }
                }
                Node::Leaf { data: LeafData::Boxes(entries), .. } => {
                    for e in entries {
                        cost.mbr_tests += 1;
                        cost.candidates += 1;
                        if e.mbr.intersects(query) {
                            cost.matches += 1;
                            visit(e.item);
                        }
                    }
                }
                Node::Leaf { data: LeafData::Points(block), .. } => {
                    // A degenerate box intersects `query` iff the point is
                    // inside it (closed bounds) — test coordinates directly.
                    let (lo, hi) = (query.lo(), query.hi());
                    for i in 0..block.len() {
                        cost.mbr_tests += 1;
                        cost.candidates += 1;
                        let inside = (0..block.dim()).all(|k| {
                            let x = block.coord(i, k);
                            lo[k] <= x && x <= hi[k]
                        });
                        if inside {
                            cost.matches += 1;
                            visit(block.item(i));
                        }
                    }
                }
            }
        }
        cost
    }

    /// Visit every item whose MBR intersects the *open* ball of radius `r`
    /// around `center`. For point entries this is exactly
    /// `DIST(center, point) < r`.
    ///
    /// Nodes are expanded best-first (ascending MINDIST); point-layout
    /// leaves are evaluated with one batched kernel call over the leaf's
    /// column block. Matches arrive roughly near-to-far, but the visited
    /// node set — and therefore every [`QueryCost`] counter — is identical
    /// to a depth-first scan with the same strict pruning.
    pub fn search_sphere(&self, center: &[f64], r: f64, mut visit: impl FnMut(u32)) -> QueryCost {
        debug_assert_eq!(center.len(), self.dim());
        let r_sq = r * r;
        let mut cost = QueryCost::default();
        let Some(root) = self.root else { return cost };
        let scalar = scalar_leaf_eval_forced();
        let mut heap = BinaryHeap::new();
        heap.push(Candidate::node(0.0, root));
        let mut dists: Vec<f64> = Vec::new();
        while let Some(c) = heap.pop() {
            cost.nodes_visited += 1;
            match &self.nodes[c.node as usize] {
                Node::Internal { children, .. } => {
                    for &ch in children {
                        cost.mbr_tests += 1;
                        let d = self.nodes[ch as usize].mbr().min_dist_sq(center);
                        if d < r_sq {
                            heap.push(Candidate::node(d, ch));
                        }
                    }
                }
                Node::Leaf { data: LeafData::Boxes(entries), .. } => {
                    for e in entries {
                        cost.mbr_tests += 1;
                        cost.candidates += 1;
                        if e.mbr.min_dist_sq(center) < r_sq {
                            cost.matches += 1;
                            visit(e.item);
                        }
                    }
                }
                Node::Leaf { data: LeafData::Points(block), .. } => {
                    let len = block.len();
                    dists.resize(len, 0.0);
                    if scalar {
                        block.dist_sq_scalar(center, &mut dists);
                    } else {
                        block.dist_sq_batch(center, &mut dists);
                    }
                    cost.mbr_tests += len as u64;
                    cost.candidates += len as u64;
                    for (i, &d) in dists[..len].iter().enumerate() {
                        if d < r_sq {
                            cost.matches += 1;
                            visit(block.item(i));
                        }
                    }
                }
            }
        }
        cost
    }

    /// First item found whose MBR intersects the open ball of radius `r`
    /// around `center` (`None` when nothing qualifies), plus the traversal
    /// cost actually paid. Traversal stops at the first hit — this is the
    /// short-circuit test micro-cluster construction uses ("is there *any*
    /// MC center within ε / 2ε of this point?").
    ///
    /// Earlier versions discarded the [`QueryCost`], which forced the two
    /// construction scan loops to *guess* (a flat one node visit per point
    /// and 1–2 distance tests per hit) — returning the real cost closes
    /// that query-accounting hole.
    ///
    /// Deliberately depth-first with per-entry evaluation: the identity of
    /// the hit seeds micro-cluster construction, and per-entry early exit
    /// charges exactly the entries examined (a batched leaf would either
    /// over-charge past the hit or mis-report the scan cost).
    pub fn first_in_sphere(&self, center: &[f64], r: f64) -> (Option<u32>, QueryCost) {
        let r_sq = r * r;
        let mut cost = QueryCost::default();
        let Some(root) = self.root else { return (None, cost) };
        let mut stack = vec![root];
        while let Some(n) = stack.pop() {
            cost.nodes_visited += 1;
            match &self.nodes[n as usize] {
                Node::Internal { children, .. } => {
                    for &c in children {
                        cost.mbr_tests += 1;
                        if self.nodes[c as usize].mbr().min_dist_sq(center) < r_sq {
                            stack.push(c);
                        }
                    }
                }
                Node::Leaf { data: LeafData::Boxes(entries), .. } => {
                    for e in entries {
                        cost.mbr_tests += 1;
                        cost.candidates += 1;
                        if e.mbr.min_dist_sq(center) < r_sq {
                            cost.matches += 1;
                            return (Some(e.item), cost);
                        }
                    }
                }
                Node::Leaf { data: LeafData::Points(block), .. } => {
                    for i in 0..block.len() {
                        cost.mbr_tests += 1;
                        cost.candidates += 1;
                        if block.dist_sq_to(i, center) < r_sq {
                            cost.matches += 1;
                            return (Some(block.item(i)), cost);
                        }
                    }
                }
            }
        }
        (None, cost)
    }

    /// Collect the ids of all items strictly within `r` of `center`.
    pub fn sphere_neighbors(&self, center: &[f64], r: f64) -> Vec<u32> {
        let mut out = Vec::new();
        self.search_sphere(center, r, |i| out.push(i));
        out
    }

    /// Count items strictly within `r` of `center` without materialising
    /// the neighbour list.
    pub fn count_sphere(&self, center: &[f64], r: f64) -> (usize, QueryCost) {
        let mut n = 0usize;
        let cost = self.search_sphere(center, r, |_| n += 1);
        (n, cost)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::Entry;
    use crate::traversal::force_scalar_leaf_eval;
    use geom::dist_euclidean;

    fn build_grid(n: usize) -> (RTree, Vec<Vec<f64>>) {
        let mut pts = Vec::new();
        for i in 0..n {
            for j in 0..n {
                pts.push(vec![i as f64, j as f64]);
            }
        }
        let mut t = RTree::new(2);
        for (i, p) in pts.iter().enumerate() {
            t.insert_point(i as u32, p);
        }
        (t, pts)
    }

    #[test]
    fn sphere_query_matches_linear_scan() {
        let (t, pts) = build_grid(15);
        for (qi, r) in [(0usize, 1.5), (112, 2.0), (224, 0.5), (37, 3.7)] {
            let q = &pts[qi];
            let mut got = t.sphere_neighbors(q, r);
            got.sort_unstable();
            let mut want: Vec<u32> = pts
                .iter()
                .enumerate()
                .filter(|(_, p)| dist_euclidean(q, p) < r)
                .map(|(i, _)| i as u32)
                .collect();
            want.sort_unstable();
            assert_eq!(got, want, "query {qi} r={r}");
        }
    }

    #[test]
    fn sphere_query_is_strict() {
        let mut t = RTree::new(1);
        t.insert_point(0, &[0.0]);
        t.insert_point(1, &[1.0]);
        // Point 1 at distance exactly 1.0 must be excluded for r = 1.0.
        assert_eq!(t.sphere_neighbors(&[0.0], 1.0), vec![0]);
        let mut both = t.sphere_neighbors(&[0.0], 1.0 + 1e-9);
        both.sort_unstable();
        assert_eq!(both, vec![0, 1]);
    }

    #[test]
    fn node_exactly_eps_away_is_pruned() {
        // ε-boundary pruning at *node* level: a subtree whose MBR face
        // sits exactly ε from the query holds no open-ball member, so
        // best-first expansion must not even visit it. Build two spatially
        // separate leaves by bulk-loading two tight clusters; query from
        // a point exactly ε left of the far cluster's nearest face.
        let cfg = crate::RTreeConfig::new(4, 2);
        let mut pts: Vec<(u32, Vec<f64>)> = Vec::new();
        // Near cluster around x ∈ [0, 3] (ids 0..4), far cluster x ∈ [64, 67].
        for i in 0..4u32 {
            pts.push((i, vec![i as f64, 0.0]));
            pts.push((4 + i, vec![64.0 + i as f64, 0.0]));
        }
        let t = RTree::bulk_load_points(2, cfg, pts);
        // Query exactly eps = 32 left of x = 64 (all powers of two: exact).
        let q = [32.0, 0.0];
        let eps = 32.0;
        let full = t.search_sphere(&q, eps, |i| assert!(i < 4, "far-cluster item {i} leaked"));
        // The far subtree's MBR has min_dist_sq == eps² and must be pruned
        // without a visit; only its parent paid one mbr test for it.
        let wide = t.search_sphere(&q, eps * (1.0 + 1e-9), |_| {});
        assert!(full.nodes_visited < wide.nodes_visited, "exactly-ε subtree must not be visited");
        // Points at x=0 and x=64 are both exactly ε away: excluded (strict).
        assert_eq!(full.matches, 3);
        assert_eq!(wide.matches, 5, "nudging ε outward admits both boundary points");
    }

    #[test]
    fn box_query_matches_linear_scan() {
        let (t, pts) = build_grid(12);
        let q = Mbr::new(vec![2.5, 3.0], vec![6.0, 7.25]);
        let mut got = Vec::new();
        t.search_box(&q, |i| got.push(i));
        got.sort_unstable();
        let mut want: Vec<u32> = pts
            .iter()
            .enumerate()
            .filter(|(_, p)| q.contains_point(p))
            .map(|(i, _)| i as u32)
            .collect();
        want.sort_unstable();
        assert_eq!(got, want);
    }

    #[test]
    fn query_cost_reported() {
        let (t, pts) = build_grid(10);
        let (n, cost) = t.count_sphere(&pts[55], 2.0);
        assert!(n > 0);
        assert!(cost.nodes_visited >= 1);
        assert!(cost.mbr_tests as usize >= n);
        assert!(cost.candidates as usize >= n);
        assert!(cost.candidates <= cost.mbr_tests);
        assert_eq!(cost.matches as usize, n);
        // A tight query must visit far fewer nodes than the whole arena.
        assert!(cost.nodes_visited < t.node_count() as u64);
    }

    #[test]
    fn scalar_and_batched_leaf_eval_agree_bitwise() {
        let (t, pts) = build_grid(13);
        for (qi, r) in [(0usize, 2.5), (84, 3.7), (168, 1.0)] {
            let q = &pts[qi];
            let mut batched = Vec::new();
            let batched_cost = t.search_sphere(q, r, |i| batched.push(i));
            force_scalar_leaf_eval(true);
            let mut scalar = Vec::new();
            let scalar_cost = t.search_sphere(q, r, |i| scalar.push(i));
            force_scalar_leaf_eval(false);
            // Same visit order, same matches, same cost — bit-identical path.
            assert_eq!(batched, scalar, "query {qi} r={r}");
            assert_eq!(batched_cost, scalar_cost);
        }
    }

    #[test]
    fn empty_tree_queries() {
        let t = RTree::new(2);
        assert!(t.sphere_neighbors(&[0.0, 0.0], 10.0).is_empty());
        let mut visited = false;
        t.search_box(&Mbr::around_point(&[0.0, 0.0], 1.0), |_| visited = true);
        assert!(!visited);
    }

    #[test]
    fn non_point_entries() {
        // The level-1 μR-tree stores extended boxes (MC MBRs).
        let mut t = RTree::new(2);
        t.insert(Entry { mbr: Mbr::new(vec![0.0, 0.0], vec![2.0, 2.0]), item: 0 });
        t.insert(Entry { mbr: Mbr::new(vec![5.0, 5.0], vec![6.0, 6.0]), item: 1 });
        // Ball centred between them, radius reaching only the first box.
        let mut got = Vec::new();
        t.search_sphere(&[3.0, 3.0], 1.5, |i| got.push(i));
        assert_eq!(got, vec![0]);
        // Box overlapping only the second.
        let mut got2 = Vec::new();
        t.search_box(&Mbr::new(vec![5.5, 5.5], vec![7.0, 7.0]), |i| got2.push(i));
        assert_eq!(got2, vec![1]);
    }

    #[test]
    fn first_in_sphere_short_circuits() {
        let (t, pts) = build_grid(10);
        // Dense area: must find something within 1.5 of any grid point.
        let (hit, cost) = t.first_in_sphere(&pts[44], 1.5);
        assert!(hit.is_some());
        assert_eq!(cost.matches, 1);
        assert!(cost.nodes_visited >= 1);
        assert!(cost.mbr_tests >= 1);
        // Every leaf entry examined was charged as a candidate, and the
        // short circuit must charge no more than a full evaluation.
        assert!(cost.candidates >= 1);
        let full = t.search_sphere(&pts[44], 1.5, |_| {});
        assert!(cost.nodes_visited <= full.nodes_visited);
        assert!(cost.mbr_tests <= full.mbr_tests);
        assert!(cost.candidates <= full.candidates);
        // Far away: nothing within 3 — but the root was still inspected.
        let (miss, miss_cost) = t.first_in_sphere(&[100.0, 100.0], 3.0);
        assert_eq!(miss, None);
        assert_eq!(miss_cost.matches, 0);
        assert!(miss_cost.nodes_visited >= 1);
        // Strictness: point exactly at distance r is not a hit.
        assert_eq!(t.first_in_sphere(&[-1.0, 0.0], 1.0).0, None);
        assert!(t.first_in_sphere(&[-1.0, 0.0], 1.0 + 1e-9).0.is_some());
        // Empty tree: no hit, zero cost.
        let (none, empty_cost) = RTree::new(2).first_in_sphere(&[0.0, 0.0], 10.0);
        assert_eq!(none, None);
        assert_eq!(empty_cost, QueryCost::default());
    }

    #[test]
    fn query_cost_add() {
        let mut a = QueryCost { nodes_visited: 1, mbr_tests: 2, candidates: 1, matches: 3 };
        a.add(QueryCost { nodes_visited: 10, mbr_tests: 20, candidates: 15, matches: 30 });
        assert_eq!(a, QueryCost { nodes_visited: 11, mbr_tests: 22, candidates: 16, matches: 33 });
    }
}
