#![warn(missing_docs)]
#![allow(clippy::needless_range_loop)] // dimension-indexed numeric loops are clearer as index loops

//! # μDBSCAN — exact micro-cluster-based DBSCAN
//!
//! Reproduction of *μDBSCAN: An Exact Scalable DBSCAN Algorithm for Big
//! Data Exploiting Spatial Locality* (Sarma et al., IEEE CLUSTER 2019).
//!
//! The algorithm produces **exactly** the clustering of classical DBSCAN
//! (same core points, same core→cluster membership, same cluster count,
//! same noise set) while skipping the ε-neighbourhood query for a large
//! fraction of points:
//!
//! 1. the dataset is partitioned into ε-ball **micro-clusters** indexed by
//!    a two-level **μR-tree** (crate [`mcs`]);
//! 2. *dense* and *core* micro-clusters prove their inner-circle points /
//!    centers core **without any query** (paper Lemmas 1–2) — these are
//!    the "wndq-core" points;
//! 3. the remaining points run ε-queries restricted to **reachable**
//!    micro-clusters (Lemma 3), dynamically promoting more wndq-cores;
//! 4. two post-processing passes stitch wndq-core clusters together and
//!    rescue mislabelled noise, establishing every DBSCAN connection
//!    (paper Theorem 1).
//!
//! ## Quickstart
//!
//! ```
//! use geom::{Dataset, DbscanParams};
//! use mudbscan_core::MuDbscan;
//!
//! let data = Dataset::from_rows(&[
//!     vec![0.0, 0.0], vec![0.1, 0.0], vec![0.0, 0.1], // a small blob
//!     vec![9.0, 9.0],                                  // an outlier
//! ]);
//! let out = MuDbscan::from_params(DbscanParams::new(0.5, 3)).run(&data);
//! assert_eq!(out.clustering.n_clusters, 1);
//! assert!(out.clustering.is_noise(3));
//! ```

pub mod algorithm;
pub mod clustering;
pub mod parallel;
pub mod params;
pub mod quality;
pub mod reference;

pub use algorithm::{MuDbscan, MuDbscanOutput};
pub use clustering::{check_exact, Clustering, ExactnessReport, NOISE};
pub use parallel::{ParMuDbscan, ParOutput};
pub use params::{k_dist_curve, suggest_eps};
pub use quality::{adjusted_rand_index, normalized_mutual_information};
pub use reference::naive_dbscan;
