//! External clustering-quality indices: Adjusted Rand Index and
//! Normalised Mutual Information.
//!
//! Used to *quantify* how far an approximate algorithm (RP-DBSCAN-style)
//! deviates from the exact clustering — the paper only reports cluster-
//! count deviations for approximate competitors (e.g. "27 %" for
//! HPDBSCAN); ARI/NMI make that comparison principled. Noise is treated
//! as one extra class, the convention used in the DBSCAN literature.

use crate::clustering::{Clustering, NOISE};

/// Contingency table between two labelings (noise mapped to the last
/// class of each side).
fn contingency(a: &Clustering, b: &Clustering) -> (Vec<Vec<u64>>, Vec<u64>, Vec<u64>) {
    assert_eq!(a.len(), b.len(), "clusterings must cover the same points");
    let ka = a.n_clusters + 1;
    let kb = b.n_clusters + 1;
    let mut table = vec![vec![0u64; kb]; ka];
    let map = |l: u32, k: usize| if l == NOISE { k - 1 } else { l as usize };
    for (&la, &lb) in a.labels.iter().zip(&b.labels) {
        table[map(la, ka)][map(lb, kb)] += 1;
    }
    let row: Vec<u64> = table.iter().map(|r| r.iter().sum()).collect();
    let col: Vec<u64> = (0..kb).map(|j| table.iter().map(|r| r[j]).sum()).collect();
    (table, row, col)
}

fn choose2(x: u64) -> f64 {
    (x as f64) * (x as f64 - 1.0) / 2.0
}

/// Adjusted Rand Index in `[-1, 1]`; `1.0` iff the partitions are
/// identical up to relabeling, ~`0.0` for independent partitions.
pub fn adjusted_rand_index(a: &Clustering, b: &Clustering) -> f64 {
    let n = a.len() as u64;
    if n < 2 {
        return 1.0;
    }
    let (table, row, col) = contingency(a, b);
    let sum_ij: f64 = table.iter().flatten().map(|&x| choose2(x)).sum();
    let sum_a: f64 = row.iter().map(|&x| choose2(x)).sum();
    let sum_b: f64 = col.iter().map(|&x| choose2(x)).sum();
    let total = choose2(n);
    let expected = sum_a * sum_b / total;
    let max = 0.5 * (sum_a + sum_b);
    if (max - expected).abs() < 1e-12 {
        1.0
    } else {
        (sum_ij - expected) / (max - expected)
    }
}

/// Normalised Mutual Information in `[0, 1]` (arithmetic-mean
/// normalisation); `1.0` iff identical up to relabeling.
pub fn normalized_mutual_information(a: &Clustering, b: &Clustering) -> f64 {
    let n = a.len() as f64;
    if a.is_empty() {
        return 1.0;
    }
    let (table, row, col) = contingency(a, b);
    let mut mi = 0.0;
    for (i, r) in table.iter().enumerate() {
        for (j, &nij) in r.iter().enumerate() {
            if nij == 0 {
                continue;
            }
            let nij = nij as f64;
            mi += nij / n * ((nij * n) / (row[i] as f64 * col[j] as f64)).ln();
        }
    }
    let h = |marg: &[u64]| -> f64 {
        marg.iter()
            .filter(|&&x| x > 0)
            .map(|&x| {
                let p = x as f64 / n;
                -p * p.ln()
            })
            .sum()
    };
    let ha = h(&row);
    let hb = h(&col);
    if ha + hb < 1e-12 {
        1.0 // both partitions are single-class: identical structure
    } else {
        (2.0 * mi / (ha + hb)).clamp(0.0, 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn c(labels: Vec<u32>, is_core: Vec<bool>, k: usize) -> Clustering {
        Clustering { labels, is_core, n_clusters: k }
    }

    #[test]
    fn identical_partitions_score_one() {
        let a = c(vec![0, 0, 1, 1, NOISE], vec![true; 5], 2);
        assert!((adjusted_rand_index(&a, &a) - 1.0).abs() < 1e-12);
        assert!((normalized_mutual_information(&a, &a) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn relabeling_is_invariant() {
        let a = c(vec![0, 0, 1, 1, 2, 2], vec![true; 6], 3);
        let b = c(vec![2, 2, 0, 0, 1, 1], vec![true; 6], 3);
        assert!((adjusted_rand_index(&a, &b) - 1.0).abs() < 1e-12);
        assert!((normalized_mutual_information(&a, &b) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn disagreement_lowers_scores() {
        let a = c(vec![0, 0, 0, 1, 1, 1], vec![true; 6], 2);
        let b = c(vec![0, 0, 1, 1, 1, 0], vec![true; 6], 2);
        let ari = adjusted_rand_index(&a, &b);
        assert!(ari < 1.0 && ari > -1.0, "{ari}");
        let nmi = normalized_mutual_information(&a, &b);
        assert!(nmi < 1.0, "{nmi}");
    }

    #[test]
    fn split_cluster_detected() {
        // b splits a's single cluster in half: ARI well below 1.
        let a = c(vec![0; 8], vec![true; 8], 1);
        let b = c(vec![0, 0, 0, 0, 1, 1, 1, 1], vec![true; 8], 2);
        let ari = adjusted_rand_index(&a, &b);
        assert!(ari < 0.6, "{ari}");
    }

    #[test]
    fn noise_counts_as_a_class() {
        let a = c(vec![0, 0, NOISE, NOISE], vec![true, true, false, false], 1);
        let b = c(vec![0, 0, 0, 0], vec![true, true, false, false], 1);
        let ari = adjusted_rand_index(&a, &b);
        assert!(ari < 1.0, "noise difference must matter: {ari}");
    }

    #[test]
    fn symmetric() {
        let a = c(vec![0, 0, 1, 1, NOISE, 2], vec![true; 6], 3);
        let b = c(vec![0, 1, 1, 1, 0, NOISE], vec![true; 6], 2);
        assert!((adjusted_rand_index(&a, &b) - adjusted_rand_index(&b, &a)).abs() < 1e-12);
        let n1 = normalized_mutual_information(&a, &b);
        let n2 = normalized_mutual_information(&b, &a);
        assert!((n1 - n2).abs() < 1e-12);
    }

    #[test]
    fn tiny_inputs() {
        let a = c(vec![0], vec![true], 1);
        assert_eq!(adjusted_rand_index(&a, &a), 1.0);
        assert_eq!(normalized_mutual_information(&a, &a), 1.0);
    }
}
