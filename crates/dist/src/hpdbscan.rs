//! HPDBSCAN-style distributed DBSCAN (Götz et al., MLHPC'15).
//!
//! HPDBSCAN grids the whole space into ε-cells, orders the cells, and
//! assigns contiguous cell blocks to ranks using a **load-cost
//! heuristic** (a cell's query cost grows with its point count), instead
//! of μDBSCAN-D's median-based kd splits. The local stage is grid-based.
//!
//! Two fidelity notes (also in DESIGN.md):
//! * the original implementation produces cluster counts that deviate
//!   from classical DBSCAN (the paper observes ~27 % on FOF56M3D); our
//!   port routes the local results through the same exact merge as the
//!   other algorithms, so it is exactness-fixed — we reproduce its
//!   *performance* profile (cheap partitioning, grid locality), not its
//!   inconsistency;
//! * cell-block partitioning is done orchestrator-side (it is excluded
//!   from the paper's reported runtimes anyway) and charged to the
//!   `partitioning` phase via a stopwatch.

use crate::driver::{run_distributed, DistError, DistOutput, LocalRun};
use baselines::GridDbscan;
use cluster_sim::{CommModel, ExecMode};
use geom::{Dataset, DbscanParams, Mbr, PointId};
use metrics::mem::MemBudget;
use metrics::{PhaseTimer, Stopwatch};
use partition::Shard;
use std::collections::BTreeMap;

/// HPDBSCAN-style distributed grid DBSCAN.
#[derive(Debug, Clone)]
pub struct HpDbscan {
    params: DbscanParams,
    ranks: usize,
    mode: ExecMode,
    comm: CommModel,
    /// Per-rank structure memory budget (inherited by the grid stage).
    pub budget: MemBudget,
}

impl HpDbscan {
    /// New instance over `ranks` simulated ranks.
    pub fn new(params: DbscanParams, ranks: usize) -> Self {
        Self {
            params,
            ranks,
            mode: ExecMode::Sequential,
            comm: CommModel::default(),
            budget: MemBudget::new(4 << 30),
        }
    }

    /// Run on `data`.
    pub fn run(&self, data: &Dataset) -> Result<DistOutput, DistError> {
        let mut phases = PhaseTimer::new();
        let sw = Stopwatch::start();
        let (shards, moved_bytes) = cell_partition(data, self.ranks, self.params.eps);
        phases.add_secs("partitioning", sw.secs());

        let params = self.params;
        let budget = self.budget;
        run_distributed(
            data.len(),
            shards,
            phases,
            moved_bytes,
            &params,
            self.mode,
            self.comm,
            None,
            move |_rank, combined, _own_n| {
                let out = GridDbscan::new(params)
                    .with_budget(budget)
                    .run(combined)
                    .map_err(|e| e.to_string())?;
                Ok(LocalRun {
                    clustering: out.clustering,
                    phases: out.phases,
                    counters: out.counters,
                    peak_heap_bytes: out.peak_heap_bytes,
                })
            },
        )
    }
}

/// Partition by contiguous blocks of lexicographically ordered ε-cells,
/// balancing the HPDBSCAN cost heuristic (cost(cell) = |cell|²,
/// approximating the pairwise work inside a cell). Returns shards with
/// regions = bounding boxes of the assigned points, and ε-halos.
pub fn cell_partition(data: &Dataset, p: usize, eps: f64) -> (Vec<Shard>, u64) {
    assert!(p >= 1);
    let dim = data.dim();

    // Bucket points into ε-cells, ordered lexicographically by cell key.
    let mut cells: BTreeMap<Vec<i32>, Vec<PointId>> = BTreeMap::new();
    for (id, coords) in data.iter() {
        let key: Vec<i32> = coords.iter().map(|&x| (x / eps).floor() as i32).collect();
        cells.entry(key).or_default().push(id);
    }

    // Greedy block assignment by accumulated cost.
    let total_cost: u64 = cells.values().map(|v| (v.len() * v.len()) as u64).sum();
    let target = (total_cost / p as u64).max(1);
    let mut owner_points: Vec<Vec<PointId>> = vec![Vec::new(); p];
    let mut rank = 0usize;
    let mut acc = 0u64;
    for pts in cells.values() {
        if acc >= target && rank + 1 < p {
            rank += 1;
            acc = 0;
        }
        acc += (pts.len() * pts.len()) as u64;
        owner_points[rank].extend_from_slice(pts);
    }

    // Build shards with bounding-box regions.
    let global_box = data
        .bounding_box()
        .map(|(lo, hi)| Mbr::new(lo, hi))
        .unwrap_or_else(|| Mbr::new(vec![0.0; dim], vec![0.0; dim]));
    let mut shards: Vec<Shard> = owner_points
        .iter()
        .map(|ids| {
            let local = data.gather(ids);
            let region = local
                .bounding_box()
                .map(|(lo, hi)| Mbr::new(lo, hi))
                .unwrap_or_else(|| global_box.clone());
            Shard {
                ids: ids.clone(),
                data: local,
                halo_ids: Vec::new(),
                halo: Dataset::empty(dim),
                region,
            }
        })
        .collect();

    // Halo exchange: remote points strictly within ε of a rank's region.
    let eps_sq = eps * eps;
    let mut moved = 0u64;
    for r in 0..p {
        let region = shards[r].region.clone();
        let mut halo_ids = Vec::new();
        let mut coords = Vec::new();
        for (s, shard) in shards.iter().enumerate() {
            if s == r {
                continue;
            }
            for (i, &id) in shard.ids.iter().enumerate() {
                let c = shard.data.point(i as PointId);
                if region.min_dist_sq(c) < eps_sq {
                    halo_ids.push(id);
                    coords.extend_from_slice(c);
                }
            }
        }
        moved += (coords.len() * 8 + halo_ids.len() * 4) as u64;
        shards[r].halo_ids = halo_ids;
        shards[r].halo = Dataset::from_flat(dim, coords);
    }

    (shards, moved)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mudbscan::{check_exact, naive_dbscan};

    fn blob_data() -> Dataset {
        let mut rows = Vec::new();
        let mut s = 3u64;
        let mut r = move || {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(5);
            ((s >> 33) as f64 / (1u64 << 31) as f64) - 1.0
        };
        for (cx, cy) in [(0.0, 0.0), (7.0, 3.0)] {
            for _ in 0..70 {
                rows.push(vec![cx + 0.9 * r(), cy + 0.9 * r()]);
            }
        }
        for _ in 0..20 {
            rows.push(vec![12.0 * r(), 12.0 * r()]);
        }
        Dataset::from_rows(&rows)
    }

    #[test]
    fn cell_partition_complete_and_disjoint() {
        let data = blob_data();
        let (shards, _) = cell_partition(&data, 4, 0.8);
        let mut seen = vec![false; data.len()];
        for s in &shards {
            for &id in &s.ids {
                assert!(!seen[id as usize]);
                seen[id as usize] = true;
            }
        }
        assert!(seen.iter().all(|&x| x));
    }

    #[test]
    fn halos_complete_for_cell_partition() {
        let data = blob_data();
        let eps = 0.8;
        let (shards, _) = cell_partition(&data, 4, eps);
        for s in &shards {
            let halo: std::collections::HashSet<u32> = s.halo_ids.iter().copied().collect();
            for (other_i, other) in shards.iter().enumerate() {
                let _ = other_i;
                for (j, &qid) in other.ids.iter().enumerate() {
                    if s.ids.contains(&qid) {
                        continue;
                    }
                    let q = other.data.point(j as u32);
                    let needed =
                        (0..s.len()).any(|i| geom::dist_euclidean(s.data.point(i as u32), q) < eps);
                    if needed {
                        assert!(halo.contains(&qid));
                    }
                }
            }
        }
    }

    #[test]
    fn hpdbscan_exact_after_merge() {
        let data = blob_data();
        let params = DbscanParams::new(0.6, 5);
        let reference = naive_dbscan(&data, &params);
        for p in [1, 3, 4] {
            let out = HpDbscan::new(params, p).run(&data).unwrap();
            let rep = check_exact(&out.clustering, &reference, &data, &params);
            assert!(rep.is_exact(), "p={p}: {rep:?}");
        }
    }

    #[test]
    fn load_heuristic_spreads_cost() {
        let data = blob_data();
        let (shards, _) = cell_partition(&data, 4, 0.8);
        let nonempty = shards.iter().filter(|s| !s.is_empty()).count();
        assert!(nonempty >= 2, "cost heuristic collapsed everything onto one rank");
    }
}
