//! Shared best-first traversal machinery.
//!
//! Both the ε-range query ([`crate::RTree::search_sphere`]) and k-NN
//! ([`crate::RTree::knn`]) expand tree nodes from a min-heap keyed by
//! MINDIST to the query point. The heap entry lives here so the two
//! traversals share one ordering (and one set of tie-breaks).
//!
//! For a *range* query, best-first expansion visits exactly the node
//! **set** a depth-first scan visits — children are pruned with the same
//! strict `min_dist_sq < r²` test before being pushed, and every pushed
//! node is eventually popped — so all node-visit and distance-test
//! counters are bit-identical to the old depth-first path; only the order
//! in which matches are emitted changes.
//!
//! The module also hosts the process-global leaf-evaluation switch used
//! by the conformance suite to prove the batched column kernel and the
//! per-point scalar loop produce bit-identical clusterings.

use std::cmp::Ordering;
use std::sync::atomic::{AtomicBool, Ordering as AtomicOrdering};

/// Heap entry ordered by *minimum* distance (min-heap via reversed cmp).
/// Ties break on node id, then item id, so traversal order is fully
/// deterministic regardless of heap internals.
pub(crate) struct Candidate {
    /// MINDIST² from the query to this node's MBR (or exact point dist²
    /// for an item candidate).
    pub dist_sq: f64,
    /// Node id when `item` is `None`, else the leaf holding the item.
    pub node: u32,
    /// Item id for leaf-entry candidates (k-NN only).
    pub item: Option<u32>,
}

impl Candidate {
    /// Candidate for expanding a tree node.
    pub fn node(dist_sq: f64, node: u32) -> Self {
        Self { dist_sq, node, item: None }
    }

    /// Candidate for reporting a leaf item (k-NN).
    pub fn item(dist_sq: f64, node: u32, item: u32) -> Self {
        Self { dist_sq, node, item: Some(item) }
    }
}

impl PartialEq for Candidate {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}
impl Eq for Candidate {}
impl PartialOrd for Candidate {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Candidate {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we need the smallest first.
        other
            .dist_sq
            .partial_cmp(&self.dist_sq)
            .unwrap_or(Ordering::Equal)
            .then_with(|| other.node.cmp(&self.node))
            .then_with(|| other.item.cmp(&self.item))
    }
}

/// When set, point-layout leaves are evaluated with the per-point scalar
/// loop instead of the batched column kernel.
static FORCE_SCALAR_LEAF_EVAL: AtomicBool = AtomicBool::new(false);

/// Select the leaf evaluation path for point-layout leaves: `true` forces
/// the per-point scalar reference loop, `false` (the default) uses the
/// batched autovectorizing column kernel. The two are bit-identical (see
/// [`geom::kernels`]); the switch exists so equivalence tests can run the
/// same workload down both paths. Process-global; intended for tests and
/// benchmarks, not concurrent toggling mid-query.
pub fn force_scalar_leaf_eval(on: bool) {
    FORCE_SCALAR_LEAF_EVAL.store(on, AtomicOrdering::Relaxed);
}

/// True when [`force_scalar_leaf_eval`] has switched leaf evaluation to
/// the scalar reference loop.
#[inline]
pub fn scalar_leaf_eval_forced() -> bool {
    FORCE_SCALAR_LEAF_EVAL.load(AtomicOrdering::Relaxed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BinaryHeap;

    #[test]
    fn heap_pops_in_ascending_distance_order() {
        let mut heap = BinaryHeap::new();
        heap.push(Candidate::node(4.0, 1));
        heap.push(Candidate::node(1.0, 2));
        heap.push(Candidate::item(0.25, 2, 7));
        heap.push(Candidate::node(2.5, 3));
        let order: Vec<f64> = std::iter::from_fn(|| heap.pop()).map(|c| c.dist_sq).collect();
        assert_eq!(order, vec![0.25, 1.0, 2.5, 4.0]);
    }

    #[test]
    fn ties_break_by_node_then_item() {
        let mut heap = BinaryHeap::new();
        heap.push(Candidate::item(1.0, 5, 9));
        heap.push(Candidate::node(1.0, 5));
        heap.push(Candidate::node(1.0, 2));
        let a = heap.pop().unwrap();
        let b = heap.pop().unwrap();
        let c = heap.pop().unwrap();
        assert_eq!((a.node, a.item), (2, None));
        assert_eq!((b.node, b.item), (5, None));
        assert_eq!((c.node, c.item), (5, Some(9)));
    }

    #[test]
    fn scalar_switch_round_trips() {
        assert!(!scalar_leaf_eval_forced());
        force_scalar_leaf_eval(true);
        assert!(scalar_leaf_eval_forced());
        force_scalar_leaf_eval(false);
        assert!(!scalar_leaf_eval_forced());
    }
}
