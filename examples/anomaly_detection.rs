//! Anomaly-detection scenario: DBSCAN noise points as anomalies in
//! household power readings (the paper's HHP workload, one of DBSCAN's
//! marquee applications).
//!
//! ```text
//! cargo run --release --example anomaly_detection
//! ```

use geom::dist_euclidean;
use mudbscan_repro::prelude::*;

fn main() {
    let dataset = data::household(25_000, 99);
    let params = DbscanParams::new(2.5, 6);

    println!("household power anomaly detection — n={}, dim=5\n", dataset.len());

    let out = Runner::new(params).run(&dataset).expect("sequential run");
    let c = &out.clustering;

    println!("operating regimes (clusters): {}", c.n_clusters);
    println!(
        "anomalous readings (noise)  : {} ({:.2}%)",
        c.noise_count(),
        100.0 * c.noise_count() as f64 / dataset.len() as f64
    );
    println!("queries saved               : {:.1}%\n", out.counters.pct_queries_saved());

    // Rank anomalies by isolation: distance to the nearest clustered
    // reading (larger = more anomalous).
    let clustered: Vec<u32> = dataset.ids().filter(|&p| !c.is_noise(p)).collect();
    let mut anomalies: Vec<(f64, u32)> = dataset
        .ids()
        .filter(|&p| c.is_noise(p))
        .map(|p| {
            let pc = dataset.point(p);
            let d = clustered
                .iter()
                .map(|&q| dist_euclidean(pc, dataset.point(q)))
                .fold(f64::INFINITY, f64::min);
            (d, p)
        })
        .collect();
    anomalies.sort_by(|a, b| b.0.partial_cmp(&a.0).unwrap());

    println!("top anomalies (isolation = distance to nearest normal reading):");
    println!("{:<8} {:>10}  features", "reading", "isolation");
    for &(iso, p) in anomalies.iter().take(8) {
        let feat: Vec<String> = dataset.point(p).iter().map(|x| format!("{x:6.1}")).collect();
        println!("#{:<7} {:>10.2}  [{}]", p, iso, feat.join(", "));
    }

    // Sanity: every anomaly is truly DBSCAN noise (no core neighbour).
    for &(_, p) in anomalies.iter().take(50) {
        let pc = dataset.point(p);
        let near_core = dataset
            .ids()
            .any(|q| c.is_core[q as usize] && dist_euclidean(pc, dataset.point(q)) < params.eps);
        assert!(!near_core, "point {p} misclassified as noise");
    }
    println!("\nall sampled anomalies verified to have no core neighbour within ε ✓");
}
