#![deny(missing_docs)]

//! # obs — three-layer observability for the μDBSCAN workspace
//!
//! The paper's whole evaluation (§VI, Tables II–VIII) is about *where time
//! goes*: micro-cluster construction vs classification vs the restricted
//! step-3 queries vs post-processing and merge, and how many ε-queries the
//! wndq-core machinery saves. This crate is the measurement substrate that
//! turns those quantities into machine-readable data, in three layers
//! (see `docs/OBSERVABILITY.md` at the repository root):
//!
//! * **aggregates** — hierarchical RAII phase spans that nest via a
//!   thread-local stack (total seconds + enter count per slash-joined
//!   path), monotone `u64` counters and additive `f64` values
//!   (DMC/CMC/SMC classification counts, halo bytes, wndq query saves,
//!   virtual BSP clocks);
//! * **mergeable log-bucketed histograms** ([`hist`]) — HDR-style fixed
//!   bucket layout so per-thread/per-rank merges are exact and
//!   deterministic; span durations feed one automatically, and hot paths
//!   record per-query node visits, candidate counts and per-superstep
//!   comm bytes via [`record_hist`];
//! * **event tracing** ([`trace`]) — per-thread append-only buffers of
//!   span begin/end and instant events plus virtual-clock BSP rank
//!   segments, drained into a [`Trace`] and exported as Chrome
//!   trace-event JSON (Perfetto-loadable) or rendered as an ASCII
//!   timeline/flamegraph ([`render`]).
//!
//! On top of these sits the **live layer** for long-running serving
//! engines: [`live`] provides an instantiable windowed metrics registry
//! (cumulative + per-window snapshots without draining, JSON
//! time-series and a Prometheus-style text exposition via
//! [`live::render_prom`]), and [`recorder`] a bounded flight-recorder
//! ring of recent serve epochs that dumps a schema'd postmortem
//! artifact on faults. The one-shot [`take_report`] is the degenerate
//! case: a single window, polled once, that also clears the state;
//! [`snapshot_report`] is the non-draining variant it is built from.
//!
//! A dependency-free **JSON emitter and parser** ([`json`]) underpins the
//! exports; the `bench` crate's `emit_bench` driver uses it to write the
//! schema-versioned `BENCH_*.json` trajectory (see `docs/BENCH_SCHEMA.md`).
//!
//! Collection is **off by default** and controlled by a process-global
//! switch: every instrumentation point first reads one relaxed atomic and
//! does nothing else when disabled, so instrumented library code pays a
//! few nanoseconds per phase when nobody is observing. Event tracing has
//! a second switch ([`trace::enable_tracing`]) checked only inside the
//! already-enabled branch, so it costs nothing when off. The spans
//! themselves are *phase-level* (a handful to a few thousand per run, not
//! one per point), which keeps the enabled overhead under the 5 % budget
//! recorded in EXPERIMENTS.md.
//!
//! ## Recording spans
//!
//! ```
//! obs::reset();
//! obs::enable();
//! {
//!     let _run = obs::span("mudbscan");
//!     {
//!         let _s = obs::span("tree_construction");
//!         // ... build the micro-clusters ...
//!     } // dropped: charged to "mudbscan/tree_construction"
//!     obs::record_count("mc_dense", 17);
//! }
//! obs::disable();
//!
//! let report = obs::take_report();
//! assert_eq!(report.span_count("mudbscan/tree_construction"), 1);
//! assert_eq!(report.count("mc_dense"), 17);
//! assert!(report.span_secs("mudbscan") >= report.span_secs("mudbscan/tree_construction"));
//! ```
//!
//! ## Exporting a report as JSON
//!
//! ```
//! obs::reset();
//! obs::enable();
//! obs::record_value("bsp/local/compute_virtual_secs", 0.25);
//! obs::disable();
//!
//! let js = obs::take_report().to_json();
//! let text = js.render_pretty();
//! let back = obs::json::Json::parse(&text).unwrap();
//! let v = back.get("values").and_then(|v| v.get("bsp/local/compute_virtual_secs"));
//! assert_eq!(v.and_then(|v| v.as_f64()), Some(0.25));
//! ```

pub mod hist;
pub mod json;
pub mod live;
pub mod recorder;
pub mod render;
pub mod report;
pub mod span;
pub mod trace;

pub use hist::Histogram;
pub use json::Json;
pub use live::{render_prom, LiveSeries, LiveSnapshot, Registry, WindowCursor};
pub use recorder::{
    parse_dump, validate_postmortem, EpochDigest, FlightEntry, FlightRecorder, RemovalDecision,
};
pub use report::{Report, SpanStat};
pub use span::{
    disable, enable, enabled, record_count, record_hist, record_value, reset, snapshot_report,
    span, take_report, Span,
};
pub use trace::{
    disable_tracing, dropped_events, enable_tracing, take_trace, tracing_enabled, Trace,
};

/// Open a phase span: `span!("name")` is shorthand for [`span()`]`("name")`.
///
/// The returned guard must be bound (`let _s = span!(...)`) — binding to
/// `_` drops it immediately and records a zero-length phase.
///
/// ```
/// obs::reset();
/// obs::enable();
/// {
///     let _s = obs::span!("mc_build");
/// }
/// obs::disable();
/// assert_eq!(obs::take_report().span_count("mc_build"), 1);
/// ```
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        $crate::span($name)
    };
}

/// The collector, trace sink and drop counter are process-global, so
/// unit tests that toggle or drain them must not interleave — every
/// such test (across modules) serialises on this one lock.
#[cfg(test)]
pub(crate) mod test_support {
    use std::sync::{Mutex, MutexGuard};

    static GLOBAL_LOCK: Mutex<()> = Mutex::new(());

    pub(crate) fn locked() -> MutexGuard<'static, ()> {
        GLOBAL_LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }
}
