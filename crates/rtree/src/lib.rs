#![warn(missing_docs)]

//! An R-tree (Guttman, SIGMOD'84) implemented from scratch.
//!
//! This is the spatial index underlying three different roles in the
//! workspace:
//!
//! * the **single flat R-tree** used by the classical R-DBSCAN baseline,
//! * the **level-1 μR-tree** over micro-cluster centers/MBRs,
//! * the per-micro-cluster **auxiliary R-trees** over member points.
//!
//! Features: ChooseLeaf insertion with quadratic split, Sort-Tile-Recursive
//! (STR) bulk loading for static point sets, and range queries over both
//! boxes and open ε-balls with an exact box/sphere distance test — for the
//! degenerate (point) MBRs stored in leaves, the sphere test *is* the exact
//! strict `DIST < ε` membership test, so query results need no
//! re-verification.
//!
//! Nodes live in an arena (`Vec<Node>`), children are `u32` indices; no
//! `Box`/`Rc` pointer chasing. Leaves holding only point entries store
//! their coordinates column-major in one shared block
//! ([`geom::soa::PointBlock`]), so sphere queries evaluate a whole leaf
//! with one batched, autovectorizing distance-kernel call; ε-range and
//! k-NN queries share a best-first MINDIST-heap traversal
//! ([`traversal`]).
//!
//! ```
//! use rtree::{RTree, RTreeConfig};
//!
//! // Index four 2-d points, query the open ball around the origin.
//! let mut tree = RTree::new(2);
//! for (id, p) in [[0.0, 0.0], [1.0, 0.0], [0.0, 2.0], [5.0, 5.0]].iter().enumerate() {
//!     tree.insert_point(id as u32, p);
//! }
//! let mut hits = tree.sphere_neighbors(&[0.0, 0.0], 1.5);
//! hits.sort_unstable();
//! assert_eq!(hits, vec![0, 1]); // strict < 1.5: the point at y=2 is out
//!
//! // Static sets are better served by STR bulk loading.
//! let bulk = RTree::bulk_load_points(
//!     2,
//!     RTreeConfig::default(),
//!     (0..100u32).map(|i| (i, vec![i as f64, 0.0])),
//! );
//! assert_eq!(bulk.len(), 100);
//! assert_eq!(bulk.knn(&[42.2, 0.0], 1)[0].0, 42);
//! ```

pub mod bulk;
pub mod knn;
pub mod node;
pub mod query;
pub mod rstar;
pub mod traversal;
pub mod tree;

pub use node::{Entry, LeafData, Node, NodeId};
pub use query::QueryCost;
pub use traversal::{force_scalar_leaf_eval, scalar_leaf_eval_forced};
pub use tree::{RTree, RTreeConfig, SplitStrategy};
