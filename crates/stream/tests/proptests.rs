//! Property test: streaming μDBSCAN equals batch DBSCAN on the full
//! stream and on random prefixes, for arbitrary inputs and parameters.

use geom::{Dataset, DbscanParams};
use mudbscan::{check_exact, naive_dbscan};
use proptest::prelude::*;
use stream::StreamingMuDbscan;

fn clustered(dim: usize) -> impl Strategy<Value = Vec<Vec<f64>>> {
    (
        prop::collection::vec(prop::collection::vec(-6.0..6.0f64, dim), 1..4),
        prop::collection::vec((0usize..4, prop::collection::vec(-0.8..0.8f64, dim)), 8..90),
        prop::collection::vec(prop::collection::vec(-8.0..8.0f64, dim), 0..10),
    )
        .prop_map(|(centers, offsets, background)| {
            let mut rows = Vec::new();
            for (ci, off) in offsets {
                let c = &centers[ci % centers.len()];
                rows.push(c.iter().zip(&off).map(|(a, b)| a + b).collect());
            }
            rows.extend(background);
            rows
        })
}

#[test]
fn exact_under_distribution_drift() {
    // Cluster centers move as the stream advances — the snapshot must
    // still equal batch DBSCAN of everything seen, at several cut points.
    let feed = data::drifting_stream(1_200, 2, 77);
    let params = DbscanParams::new(1.5, 5);
    let mut s = StreamingMuDbscan::empty(2, params);
    for (i, coords) in feed.iter() {
        s.insert(coords);
        let n = i as usize + 1;
        if n.is_multiple_of(400) {
            let prefix_rows: Vec<Vec<f64>> =
                (0..n).map(|j| feed.point(j as u32).to_vec()).collect();
            let prefix = Dataset::from_rows(&prefix_rows);
            let got = s.snapshot();
            let want = naive_dbscan(&prefix, &params);
            let rep = check_exact(&got, &want, &prefix, &params);
            assert!(rep.is_exact(), "prefix {n}: {rep:?}");
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn stream_equals_batch(rows in clustered(2), eps in 0.3..2.0f64, min_pts in 2usize..7) {
        let data = Dataset::from_rows(&rows);
        let params = DbscanParams::new(eps, min_pts);
        let mut s = StreamingMuDbscan::empty(2, params);
        s.extend_from(&data);
        let got = s.snapshot();
        let want = naive_dbscan(&data, &params);
        let rep = check_exact(&got, &want, &data, &params);
        prop_assert!(rep.is_exact(), "{rep:?}");
    }

    #[test]
    fn stream_prefix_exact(rows in clustered(3), eps in 0.4..2.0f64, min_pts in 2usize..6, cut in 0.2..0.9f64) {
        let data = Dataset::from_rows(&rows);
        let params = DbscanParams::new(eps, min_pts);
        let k = ((data.len() as f64 * cut) as usize).max(1);
        let mut s = StreamingMuDbscan::empty(3, params);
        for (i, coords) in data.iter() {
            if (i as usize) >= k {
                break;
            }
            s.insert(coords);
        }
        let prefix_rows: Vec<Vec<f64>> = (0..k).map(|j| data.point(j as u32).to_vec()).collect();
        let prefix = Dataset::from_rows(&prefix_rows);
        let got = s.snapshot();
        let want = naive_dbscan(&prefix, &params);
        let rep = check_exact(&got, &want, &prefix, &params);
        prop_assert!(rep.is_exact(), "prefix {k}: {rep:?}");
    }
}
