//! Fig. 7 reproduction: μDBSCAN-D speedup over sequential μDBSCAN as the
//! number of ranks grows (4 → 32), for several datasets.
//!
//! ```text
//! cargo run --release -p bench --bin repro_fig7
//! ```

use bench::{banner, SEED};
use metrics::Table;
use mudbscan::prelude::*;

fn main() {
    banner(
        "Fig. 7 — scalability of μDBSCAN-D with the number of nodes",
        "speedup vs sequential μDBSCAN for p = 4 / 8 / 16 / 32 on four datasets",
        "analogues at 20K–80K points; virtual makespans (max speedup in the paper: 70)",
    );

    let workloads = [
        ("MPAGD8M3D", data::galaxy(60_000, 3, SEED), DbscanParams::new(0.8, 5)),
        ("FOF56M3D", data::galaxy(80_000, 3, SEED + 4), DbscanParams::new(1.4, 6)),
        ("3DSRN", data::road_network(40_000, SEED), DbscanParams::new(0.35, 5)),
        ("KDDB145K14D", data::kddbio(10_000, 14, SEED), DbscanParams::new(45.0, 5)),
    ];

    let ps = [4usize, 8, 16, 32];
    let mut t = Table::new(&["dataset", "seq (s)", "p=4", "p=8", "p=16", "p=32"]);
    let mut max_speedup = 0.0f64;

    for (name, dataset, params) in &workloads {
        eprintln!("[{name}] sequential ...");
        let seq = Runner::new(*params).run(dataset).expect("sequential run");
        let seq_secs = seq.phases.total_secs();
        let mut cells = vec![name.to_string(), format!("{seq_secs:.2}")];
        for &p in &ps {
            eprintln!("[{name}] p={p} ...");
            let out = Runner::new(*params).ranks(p).run(dataset).expect("distributed run");
            assert_eq!(out.clustering.n_clusters, seq.clustering.n_clusters, "{name} p={p}");
            let runtime_secs = match out.details {
                RunDetails::Distributed { runtime_secs, .. } => runtime_secs,
                ref other => panic!("expected Distributed details, got {other:?}"),
            };
            let sp = seq_secs / runtime_secs;
            max_speedup = max_speedup.max(sp);
            cells.push(format!("{sp:.1}x"));
        }
        t.row(&cells);
    }

    println!("measured speedups (virtual makespans):");
    t.print();
    println!("\nmax speedup observed: {max_speedup:.1}x (paper: up to 70x at 32 nodes;");
    println!("super-linear because per-rank R-trees are smaller than one global tree)");
    println!("\nshape checks: speedup grows monotonically with p for every dataset;");
    println!("super-linear speedups (> p) appear on the tree-bound workloads.");
}
