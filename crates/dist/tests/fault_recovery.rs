//! Exact-recovery integration tests: every fault class injected into
//! μDBSCAN-D must leave the final clustering bit-identical to the
//! fault-free run (the ISSUE's hard guarantee), and a crippled retry
//! budget must visibly break it (proving the injection is load-bearing).

use cluster_sim::{Fault, FaultPlan, RetryConfig};
use dist::{DistConfig, FaultConfig, MuDbscanD};
use geom::{Dataset, DbscanParams};

fn blob_data(n_per: usize) -> Dataset {
    let mut rows = Vec::new();
    let mut s = 77u64;
    let mut r = move || {
        s = s.wrapping_mul(6364136223846793005).wrapping_add(23);
        ((s >> 33) as f64 / (1u64 << 31) as f64) - 1.0
    };
    for (cx, cy, cz) in [(0.0, 0.0, 0.0), (6.0, 2.0, -1.0), (-4.0, 5.0, 3.0)] {
        for _ in 0..n_per {
            rows.push(vec![cx + 0.8 * r(), cy + 0.8 * r(), cz + 0.8 * r()]);
        }
    }
    for _ in 0..n_per / 3 {
        rows.push(vec![10.0 * r(), 10.0 * r(), 10.0 * r()]);
    }
    Dataset::from_rows(&rows)
}

/// A 1-D layout whose only cross-partition attachment is a *border*
/// point, so it travels exclusively through the merge-edge exchange
/// (the halo seeding path in the merge only unions locally-core halo
/// points, and a border point is never one). With eps 0.1 / MinPts 3:
/// a dense left cluster `S` ending at -0.05, a core pivot `x` at 0.0,
/// the border point `y` at 0.09 (sees only x + itself → non-core), and
/// a dense right cluster `R` starting at 0.30 (outside y's ε). The 27
/// points split 13/14 at the median coordinate 0.09, so rank 0 owns
/// S ∪ {x} and rank 1 owns {y} ∪ R — y's attachment to x's cluster
/// crosses the boundary and exists only as an edge message.
const BORDER_ID: u32 = 13;

fn border_bridge_data() -> Dataset {
    let mut rows: Vec<Vec<f64>> = (0..12).map(|i| vec![-0.60 + 0.05 * i as f64]).collect();
    rows.push(vec![0.0]); // x, id 12
    rows.push(vec![0.09]); // y, id BORDER_ID
    rows.extend((0..13).map(|i| vec![0.30 + 0.05 * i as f64]));
    Dataset::from_rows(&rows)
}

fn run_pair(
    data: &Dataset,
    params: DbscanParams,
    ranks: usize,
    faults: FaultConfig,
) -> (dist::DistOutput, dist::DistOutput) {
    let clean = MuDbscanD::from_params(params, DistConfig::new(ranks)).run(data).unwrap();
    let faulted = MuDbscanD::from_params(params, DistConfig::new(ranks))
        .with_faults(faults)
        .run(data)
        .unwrap();
    (clean, faulted)
}

#[test]
fn crash_during_local_stage_recovers_bit_identical() {
    let data = blob_data(50);
    let params = DbscanParams::new(0.7, 5);
    let plan = FaultPlan::new(11).with(Fault::Crash { rank: 1, superstep: 0 });
    let (clean, faulted) = run_pair(&data, params, 4, FaultConfig::new(plan));
    assert_eq!(clean.clustering, faulted.clustering, "recovery must be exact");
    let st = &faulted.fault_stats;
    assert_eq!(st.crashes, 1);
    assert_eq!(st.recoveries, 1);
    assert!(st.recovery_comm_bytes > 0, "halo re-request must be charged");
    assert!(faulted.phases.secs("recovery") > 0.0, "recovery phase must be timed");
    assert!(
        faulted.runtime_secs >= faulted.phases.secs("recovery"),
        "recovery overhead must be part of the reported runtime"
    );
    // Work metrics drift zero: every rank's local work is counted exactly
    // once, recovered or not.
    assert_eq!(clean.counters.range_queries(), faulted.counters.range_queries());
    assert_eq!(clean.counters.dist_computations(), faulted.counters.dist_computations());
    assert_eq!(clean.counters.union_ops(), faulted.counters.union_ops());
}

#[test]
fn crash_during_edge_collection_restores_checkpoint() {
    let data = blob_data(50);
    let params = DbscanParams::new(0.7, 5);
    let plan = FaultPlan::new(13).with(Fault::Crash { rank: 2, superstep: 1 });
    let (clean, faulted) = run_pair(&data, params, 4, FaultConfig::new(plan));
    assert_eq!(clean.clustering, faulted.clustering);
    let st = &faulted.fault_stats;
    assert_eq!((st.crashes, st.recoveries), (1, 1));
    // The restore transfers the checkpoint (labels + flags), not the halo.
    assert!(st.recovery_comm_bytes > 0);
    assert_eq!(clean.counters.range_queries(), faulted.counters.range_queries());
    assert_eq!(clean.counters.node_visits(), faulted.counters.node_visits());
}

#[test]
fn message_faults_within_retry_budget_stay_exact() {
    let data = blob_data(50);
    let params = DbscanParams::new(0.7, 5);
    let plan = FaultPlan::new(17)
        .with(Fault::Drop { superstep: 2, from: 1, to: 0, attempts: 2 })
        .with(Fault::Drop { superstep: 2, from: 3, to: 0, attempts: 3 })
        .with(Fault::Duplicate { superstep: 2, from: 2, to: 0 })
        .with(Fault::Reorder { superstep: 2, to: 0 });
    let (clean, faulted) = run_pair(&data, params, 4, FaultConfig::new(plan));
    assert_eq!(clean.clustering, faulted.clustering, "delivery layer must heal the exchange");
    let st = &faulted.fault_stats;
    assert!(st.retries >= 2, "drops must be retried (got {})", st.retries);
    assert_eq!(st.messages_lost, 0);
    assert!(st.duplicates_discarded >= st.duplicates_injected.min(1));
    assert!(st.retry_delay_secs > 0.0);
    assert!(faulted.comm_bytes > clean.comm_bytes, "retransmissions occupy the wire");
    assert_eq!(clean.counters.union_ops(), faulted.counters.union_ops());
}

#[test]
fn straggler_skews_clock_not_clustering() {
    let data = blob_data(40);
    let params = DbscanParams::new(0.7, 5);
    let plan = FaultPlan::new(19).with(Fault::Straggler { rank: 1, slowdown: 50.0 });
    let (clean, faulted) = run_pair(&data, params, 4, FaultConfig::new(plan));
    assert_eq!(clean.clustering, faulted.clustering);
    assert!(faulted.fault_stats.straggled_steps >= 3, "one per superstep");
    assert!(faulted.runtime_secs > clean.runtime_secs, "skew must lengthen the makespan");
}

#[test]
fn all_fault_classes_combined_stay_exact() {
    let data = blob_data(50);
    let params = DbscanParams::new(0.7, 5);
    let plan = FaultPlan::new(23)
        .with(Fault::Crash { rank: 1, superstep: 0 })
        .with(Fault::Crash { rank: 3, superstep: 1 })
        .with(Fault::Drop { superstep: 2, from: 2, to: 0, attempts: 2 })
        .with(Fault::Duplicate { superstep: 2, from: 0, to: 0 })
        .with(Fault::Reorder { superstep: 2, to: 0 })
        .with(Fault::Straggler { rank: 2, slowdown: 2.0 });
    let (clean, faulted) = run_pair(&data, params, 4, FaultConfig::new(plan));
    assert_eq!(clean.clustering, faulted.clustering);
    let st = &faulted.fault_stats;
    assert_eq!((st.crashes, st.recoveries), (2, 2));
    assert_eq!(clean.counters.range_queries(), faulted.counters.range_queries());
    assert_eq!(clean.counters.union_ops(), faulted.counters.union_ops());
}

#[test]
fn replaying_a_plan_seed_reproduces_the_counters() {
    let data = blob_data(40);
    let params = DbscanParams::new(0.7, 5);
    let plan = FaultPlan::generate(2019, 4, &[0, 1], &[2]);
    let run = |plan: FaultPlan| {
        MuDbscanD::from_params(params, DistConfig::new(4))
            .with_faults(FaultConfig::new(plan))
            .run(&data)
            .unwrap()
    };
    let a = run(plan.clone());
    let b = run(plan);
    assert_eq!(a.clustering, b.clustering);
    assert_eq!(
        a.fault_stats.replay_signature(),
        b.fault_stats.replay_signature(),
        "fault counters must be a pure function of (program, data, plan)"
    );
}

#[test]
fn dropping_merge_edges_without_retries_loses_the_border_point() {
    // Negative control: with reliability disabled, dropping both ranks'
    // edge envelopes severs the only carrier of the cross-partition
    // border attachment — the faulted run must misclassify it as noise.
    // This proves the merge replay really consumes the delivered
    // messages (a cosmetic router would keep the run exact and this
    // test would fail).
    let data = border_bridge_data();
    let params = DbscanParams::new(0.1, 3);
    let clean = MuDbscanD::from_params(params, DistConfig::new(2)).run(&data).unwrap();
    assert_eq!(clean.clustering.n_clusters, 2, "precondition: S∪{{x,y}} and R");
    assert_ne!(clean.clustering.labels[BORDER_ID as usize], mudbscan::NOISE);

    let plan = FaultPlan::new(29)
        .with(Fault::Drop { superstep: 2, from: 0, to: 0, attempts: 1 })
        .with(Fault::Drop { superstep: 2, from: 1, to: 0, attempts: 1 });
    let faulted = MuDbscanD::from_params(params, DistConfig::new(2))
        .with_faults(FaultConfig::new(plan).with_retry(RetryConfig::none()))
        .run(&data)
        .unwrap();
    assert!(faulted.fault_stats.messages_lost >= 1, "drops must actually fire");
    assert_eq!(
        faulted.clustering.labels[BORDER_ID as usize],
        mudbscan::NOISE,
        "the border attachment must be lost with the dropped edges"
    );
    assert_ne!(clean.clustering, faulted.clustering);
    assert!(
        faulted.counters.union_ops() < clean.counters.union_ops(),
        "fewer delivered edges must mean fewer replayed unions"
    );
}
