//! The sampling-based kd-tree partitioner and halo exchange.

use cluster_sim::{Bsp, CommModel, Envelope, ExecMode};
use geom::{Dataset, Mbr, PointId};
use metrics::PhaseTimer;

/// A batch of points on the wire: global ids + flat coordinates.
type PointBatch = (Vec<PointId>, Vec<f64>);

/// Number of sample values each rank contributes per split round.
const SAMPLES_PER_RANK: usize = 64;

/// One rank's share of the data after partitioning.
#[derive(Debug, Clone)]
pub struct Shard {
    /// Global ids of the owned points (parallel to `data`).
    pub ids: Vec<PointId>,
    /// Owned point coordinates.
    pub data: Dataset,
    /// Global ids of the halo points (parallel to `halo`).
    pub halo_ids: Vec<PointId>,
    /// Halo point coordinates — every remote point strictly within ε of
    /// this rank's region.
    pub halo: Dataset,
    /// The rank's box region (kd-tree cell).
    pub region: Mbr,
}

impl Shard {
    fn empty(dim: usize, region: Mbr) -> Self {
        Self {
            ids: Vec::new(),
            data: Dataset::empty(dim),
            halo_ids: Vec::new(),
            halo: Dataset::empty(dim),
            region,
        }
    }

    /// Owned point count.
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// True when the shard owns no points.
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }
}

/// Result of [`kd_partition`].
#[derive(Debug)]
pub struct PartitionOutput {
    /// Per-rank shards (owned points + halos + region).
    pub shards: Vec<Shard>,
    /// Virtual-time split-up of the partitioning steps.
    pub phases: PhaseTimer,
    /// Bytes communicated during partitioning + halo exchange.
    pub comm_bytes: u64,
}

/// Partition `data` across `p` ranks with the sampling-based kd-tree
/// scheme and exchange ε-halos.
///
/// Deterministic: the same inputs always produce the same shards,
/// regardless of `mode`.
pub fn kd_partition(
    data: &Dataset,
    p: usize,
    eps: f64,
    mode: ExecMode,
    comm: CommModel,
) -> PartitionOutput {
    assert!(p >= 1);
    let dim = data.dim();
    let global_box = data
        .bounding_box()
        .map(|(lo, hi)| Mbr::new(lo, hi))
        .unwrap_or_else(|| Mbr::new(vec![0.0; dim], vec![0.0; dim]));

    // Initial distribution: contiguous chunks (simulating parallel I/O).
    let mut states: Vec<Shard> = Vec::with_capacity(p);
    let chunk = data.len().div_ceil(p.max(1)).max(1);
    for r in 0..p {
        let lo = (r * chunk).min(data.len());
        let hi = ((r + 1) * chunk).min(data.len());
        let ids: Vec<PointId> = (lo as PointId..hi as PointId).collect();
        let mut s = Shard::empty(dim, global_box.clone());
        s.data = data.gather(&ids);
        s.ids = ids;
        states.push(s);
    }

    let mut bsp = Bsp::new(states).with_mode(mode).with_comm(comm);
    bsp.phase("partitioning");

    // Active groups of ranks, split until singletons.
    let mut groups: Vec<(usize, usize)> = vec![(0, p)]; // [lo, hi)
    let mut regions: Vec<Mbr> = vec![global_box; p];

    while groups.iter().any(|&(lo, hi)| hi - lo > 1) {
        let group_of: Vec<usize> = rank_to_group(&groups, p);

        // Round step 1: gather per-rank extents and counts; pick, per
        // group, the axis with the widest spread.
        let extents = bsp.allgather(|_r, s: &mut Shard| {
            let bb = s.data.bounding_box();
            let (lo, hi) = bb.unwrap_or((vec![f64::INFINITY; dim], vec![f64::NEG_INFINITY; dim]));
            let mut v = lo;
            v.extend(hi);
            v.push(s.len() as f64);
            v
        });
        let mut axis_of_group = vec![0usize; groups.len()];
        for (gi, &(glo, ghi)) in groups.iter().enumerate() {
            if ghi - glo <= 1 {
                continue;
            }
            let mut best = (f64::NEG_INFINITY, 0usize);
            for k in 0..dim {
                let lo = (glo..ghi).map(|r| extents[r][k]).fold(f64::INFINITY, f64::min);
                let hi = (glo..ghi).map(|r| extents[r][dim + k]).fold(f64::NEG_INFINITY, f64::max);
                let spread = hi - lo;
                if spread > best.0 {
                    best = (spread, k);
                }
            }
            axis_of_group[gi] = best.1;
        }

        // Round step 2: gather samples along the group's axis; compute,
        // per group, the split value at the left-share quantile.
        let samples = {
            let group_of = &group_of;
            let axis_of_group = &axis_of_group;
            bsp.allgather(move |r, s: &mut Shard| {
                let axis = axis_of_group[group_of[r]];
                sample_axis(&s.data, axis, SAMPLES_PER_RANK)
            })
        };
        let mut split_of_group = vec![f64::NAN; groups.len()];
        for (gi, &(glo, ghi)) in groups.iter().enumerate() {
            if ghi - glo <= 1 {
                continue;
            }
            let mut vals: Vec<f64> = (glo..ghi).flat_map(|r| samples[r].iter().copied()).collect();
            vals.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
            let left = (ghi - glo).div_ceil(2);
            let q = left as f64 / (ghi - glo) as f64;
            let idx = ((vals.len() as f64 * q) as usize).min(vals.len().saturating_sub(1));
            split_of_group[gi] = if vals.is_empty() { 0.0 } else { vals[idx] };
        }

        // Round step 3: redistribute points — coord < split goes to the
        // left sub-group, >= split to the right; round-robin inside the
        // destination sub-group for balance.
        {
            let group_of = &group_of;
            let axis_of_group = &axis_of_group;
            let split_of_group = &split_of_group;
            let groups_ref = &groups;
            bsp.exchange(
                move |r, s: &mut Shard| {
                    let gi = group_of[r];
                    let (glo, ghi) = groups_ref[gi];
                    if ghi - glo <= 1 {
                        return Vec::new();
                    }
                    let axis = axis_of_group[gi];
                    let split = split_of_group[gi];
                    let mid = glo + (ghi - glo).div_ceil(2);
                    // Partition local points into per-destination batches.
                    let mut batches: Vec<(Vec<PointId>, Vec<f64>)> =
                        vec![(Vec::new(), Vec::new()); ghi - glo];
                    let (mut li, mut ri) = (0usize, 0usize);
                    let left_n = mid - glo;
                    let right_n = ghi - mid;
                    for (i, &id) in s.ids.iter().enumerate() {
                        let coords = s.data.point(i as PointId);
                        let dest = if coords[axis] < split {
                            let d = glo + li % left_n;
                            li += 1;
                            d
                        } else {
                            let d = mid + ri % right_n;
                            ri += 1;
                            d
                        };
                        let b = &mut batches[dest - glo];
                        b.0.push(id);
                        b.1.extend_from_slice(coords);
                    }
                    s.ids.clear();
                    s.data = Dataset::empty(s.data.dim());
                    batches
                        .into_iter()
                        .enumerate()
                        .filter(|(_, (ids, _))| !ids.is_empty())
                        .map(|(off, batch)| Envelope::new(glo + off, batch))
                        .collect()
                },
                |_r, s: &mut Shard, inbox: Vec<(usize, PointBatch)>| {
                    let dim = s.data.dim();
                    let mut coords = s.data.coords().to_vec();
                    for (_src, (ids, c)) in inbox {
                        s.ids.extend(ids);
                        coords.extend(c);
                    }
                    s.data = Dataset::from_flat(dim, coords);
                },
            );
        }

        // Refine regions and split the groups.
        let mut next_groups = Vec::new();
        for (gi, &(glo, ghi)) in groups.iter().enumerate() {
            if ghi - glo <= 1 {
                next_groups.push((glo, ghi));
                continue;
            }
            let axis = axis_of_group[gi];
            let split = split_of_group[gi];
            let mid = glo + (ghi - glo).div_ceil(2);
            for r in glo..ghi {
                let reg = &regions[r];
                let mut lo = reg.lo().to_vec();
                let mut hi = reg.hi().to_vec();
                if r < mid {
                    hi[axis] = hi[axis].min(split);
                } else {
                    lo[axis] = lo[axis].max(split);
                }
                // Guard against inverted intervals from degenerate splits.
                if lo[axis] > hi[axis] {
                    hi[axis] = lo[axis];
                }
                regions[r] = Mbr::new(lo, hi);
            }
            next_groups.push((glo, mid));
            next_groups.push((mid, ghi));
        }
        groups = next_groups;
    }

    // Store final regions into the shards.
    for (r, s) in bsp.states_mut().iter_mut().enumerate() {
        s.region = regions[r].clone();
    }

    // Halo exchange: every rank receives all remote points strictly within
    // ε of its region box.
    bsp.phase("halo_exchange");
    {
        let regions = &regions;
        let eps_sq = eps * eps;
        bsp.exchange(
            move |r, s: &mut Shard| {
                let mut out: Vec<Envelope<PointBatch>> = Vec::new();
                for (dest, reg) in regions.iter().enumerate() {
                    if dest == r {
                        continue;
                    }
                    let mut ids = Vec::new();
                    let mut coords = Vec::new();
                    for (i, &id) in s.ids.iter().enumerate() {
                        let c = s.data.point(i as PointId);
                        if reg.min_dist_sq(c) < eps_sq {
                            ids.push(id);
                            coords.extend_from_slice(c);
                        }
                    }
                    if !ids.is_empty() {
                        out.push(Envelope::new(dest, (ids, coords)));
                    }
                }
                out
            },
            |_r, s: &mut Shard, inbox: Vec<(usize, PointBatch)>| {
                let dim = s.data.dim();
                let mut coords = Vec::new();
                for (_src, (ids, c)) in inbox {
                    s.halo_ids.extend(ids);
                    coords.extend(c);
                }
                s.halo = Dataset::from_flat(dim, coords);
            },
        );
    }

    let comm_bytes = bsp.comm_bytes();
    let phases = bsp.phase_times().clone();
    PartitionOutput { shards: bsp.into_states(), phases, comm_bytes }
}

fn rank_to_group(groups: &[(usize, usize)], p: usize) -> Vec<usize> {
    let mut v = vec![0usize; p];
    for (gi, &(lo, hi)) in groups.iter().enumerate() {
        for r in lo..hi {
            v[r] = gi;
        }
    }
    v
}

/// Deterministic stride sampling of axis values.
fn sample_axis(data: &Dataset, axis: usize, k: usize) -> Vec<f64> {
    let n = data.len();
    if n == 0 {
        return Vec::new();
    }
    let step = (n / k).max(1);
    (0..n).step_by(step).map(|i| data.point(i as PointId)[axis]).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use geom::dist_euclidean;

    fn blob_data(n: usize) -> Dataset {
        let mut rows = Vec::new();
        let mut s = 31u64;
        let mut r = move || {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(17);
            ((s >> 33) as f64 / (1u64 << 31) as f64) - 1.0
        };
        for _ in 0..n {
            rows.push(vec![10.0 * r(), 10.0 * r(), 10.0 * r()]);
        }
        Dataset::from_rows(&rows)
    }

    fn run(p: usize, n: usize, eps: f64) -> (Dataset, PartitionOutput) {
        let data = blob_data(n);
        let out = kd_partition(&data, p, eps, ExecMode::Sequential, CommModel::default());
        (data, out)
    }

    #[test]
    fn every_point_owned_exactly_once() {
        let (data, out) = run(8, 500, 0.5);
        let mut seen = vec![false; data.len()];
        for s in &out.shards {
            assert_eq!(s.ids.len(), s.data.len());
            for (i, &id) in s.ids.iter().enumerate() {
                assert!(!seen[id as usize], "point {id} owned twice");
                seen[id as usize] = true;
                assert_eq!(s.data.point(i as u32), data.point(id));
            }
        }
        assert!(seen.iter().all(|&x| x), "some point lost");
    }

    #[test]
    fn points_lie_in_their_region() {
        let (_data, out) = run(8, 400, 0.5);
        for s in &out.shards {
            for (i, _) in s.ids.iter().enumerate() {
                assert!(
                    s.region.contains_point(s.data.point(i as u32)),
                    "owned point outside region"
                );
            }
        }
    }

    #[test]
    fn load_is_balanced() {
        let (data, out) = run(8, 800, 0.5);
        let ideal = data.len() / 8;
        for s in &out.shards {
            assert!(
                s.len() <= ideal * 2 + 8 && s.len() + ideal / 2 >= ideal / 2,
                "imbalanced shard: {} vs ideal {}",
                s.len(),
                ideal
            );
        }
    }

    #[test]
    fn halos_are_exactly_the_needed_points() {
        let (data, out) = run(4, 300, 1.0);
        let eps = 1.0;
        for (r, s) in out.shards.iter().enumerate() {
            // Completeness: every remote point within eps of some owned
            // point must be in the halo.
            let halo_set: std::collections::HashSet<u32> = s.halo_ids.iter().copied().collect();
            for (other_r, other) in out.shards.iter().enumerate() {
                if other_r == r {
                    continue;
                }
                for (j, &qid) in other.ids.iter().enumerate() {
                    let q = other.data.point(j as u32);
                    let needed = s
                        .ids
                        .iter()
                        .enumerate()
                        .any(|(i, _)| dist_euclidean(s.data.point(i as u32), q) < eps);
                    if needed {
                        assert!(halo_set.contains(&qid), "rank {r} missing halo point {qid}");
                    }
                }
            }
            // Soundness: halo points are remote and near the region.
            let own: std::collections::HashSet<u32> = s.ids.iter().copied().collect();
            for (i, &hid) in s.halo_ids.iter().enumerate() {
                assert!(!own.contains(&hid), "own point in halo");
                assert!(s.region.min_dist_sq(s.halo.point(i as u32)) < eps * eps);
                assert_eq!(s.halo.point(i as u32), data.point(hid));
            }
        }
    }

    #[test]
    fn single_rank_is_trivial() {
        let (data, out) = run(1, 100, 0.5);
        assert_eq!(out.shards.len(), 1);
        assert_eq!(out.shards[0].len(), data.len());
        assert!(out.shards[0].halo_ids.is_empty());
    }

    #[test]
    fn non_power_of_two_ranks() {
        let (data, out) = run(6, 500, 0.5);
        let total: usize = out.shards.iter().map(|s| s.len()).sum();
        assert_eq!(total, data.len());
        // Regions must tile: no owned point may fall in two regions'
        // interiors (weak check: each owned point in own region).
        for s in &out.shards {
            for i in 0..s.len() {
                assert!(s.region.contains_point(s.data.point(i as u32)));
            }
        }
    }

    #[test]
    fn threaded_matches_sequential() {
        let data = blob_data(300);
        let a = kd_partition(&data, 4, 0.8, ExecMode::Sequential, CommModel::default());
        let b = kd_partition(&data, 4, 0.8, ExecMode::Threaded, CommModel::default());
        for (sa, sb) in a.shards.iter().zip(&b.shards) {
            assert_eq!(sa.ids, sb.ids);
            let mut ha = sa.halo_ids.clone();
            let mut hb = sb.halo_ids.clone();
            ha.sort_unstable();
            hb.sort_unstable();
            assert_eq!(ha, hb);
        }
    }

    #[test]
    fn all_identical_points() {
        // Degenerate: median splits cannot separate identical coordinates;
        // everything may land on one side, but nothing may be lost and the
        // run must terminate.
        let data = Dataset::from_rows(&vec![vec![5.0, 5.0]; 64]);
        let out = kd_partition(&data, 4, 0.5, ExecMode::Sequential, CommModel::default());
        let total: usize = out.shards.iter().map(|s| s.len()).sum();
        assert_eq!(total, 64);
    }

    #[test]
    fn collinear_points() {
        let rows: Vec<Vec<f64>> = (0..100).map(|i| vec![i as f64, 0.0, 0.0]).collect();
        let data = Dataset::from_rows(&rows);
        let out = kd_partition(&data, 8, 1.5, ExecMode::Sequential, CommModel::default());
        let total: usize = out.shards.iter().map(|s| s.len()).sum();
        assert_eq!(total, 100);
        // Splits should all land on axis 0 (the only spread axis), giving
        // reasonable balance.
        let max = out.shards.iter().map(|s| s.len()).max().unwrap();
        assert!(max <= 40, "degenerate balance: max shard {max}");
    }

    #[test]
    fn more_ranks_than_points_terminates() {
        let data = Dataset::from_rows(&[vec![0.0], vec![1.0], vec![2.0]]);
        let out = kd_partition(&data, 8, 0.5, ExecMode::Sequential, CommModel::default());
        let total: usize = out.shards.iter().map(|s| s.len()).sum();
        assert_eq!(total, 3);
        assert_eq!(out.shards.len(), 8);
    }

    #[test]
    fn phases_and_bytes_reported() {
        let (_data, out) = run(4, 200, 0.5);
        assert!(out.comm_bytes > 0);
        assert!(out.phases.secs("partitioning") >= 0.0);
        assert!(out.phases.secs("halo_exchange") >= 0.0);
    }
}
