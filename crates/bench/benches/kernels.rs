//! Distance-kernel micro-benchmarks: the autovectorizing column-major
//! batch kernel vs its per-point scalar reference, at leaf granularity
//! (`PointBlock`, the unit the μR-tree actually evaluates) and as a full
//! dataset scan (`SoaDataset`). The two kernels are bit-identical by
//! construction (same ascending-dimension accumulation per point —
//! pinned by `conformance/tests/soa_equivalence.rs`); this bench
//! measures the throughput gap that justifies keeping both.
//!
//! CI runs one pass in `--test` mode as a smoke check; run the full
//! statistics locally with `cargo bench -p bench --bench kernels`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use geom::soa::{PointBlock, SoaDataset};
use geom::Dataset;
use std::hint::black_box;

/// Leaf-sized blocks: distances from one query to every point of a
/// block, batched vs scalar, across the dimensionalities the paper's
/// workloads use (3-d road network, 5-d household power, 8-d analogue).
fn bench_leaf_kernels(c: &mut Criterion) {
    let cap = 64; // typical μR-tree leaf fanout
    let mut g = c.benchmark_group("leaf_dist_sq");
    for dim in [2usize, 3, 5, 8] {
        let dataset = data::galaxy(cap, dim.min(3), 11);
        let mut block = PointBlock::with_capacity(dim, cap);
        for (i, p) in dataset.iter() {
            let mut coords = vec![0.0; dim];
            for (k, c) in coords.iter_mut().enumerate() {
                *c = p[k % p.len()] + k as f64 * 0.01;
            }
            block.push(i, &coords);
        }
        let q: Vec<f64> = (0..dim).map(|k| 0.3 + k as f64 * 0.1).collect();
        let mut out = vec![0.0; cap];

        g.bench_function(BenchmarkId::new("batch", dim), |b| {
            b.iter(|| {
                block.dist_sq_batch(black_box(&q), &mut out);
                black_box(out[cap - 1])
            })
        });
        g.bench_function(BenchmarkId::new("scalar", dim), |b| {
            b.iter(|| {
                block.dist_sq_scalar(black_box(&q), &mut out);
                black_box(out[cap - 1])
            })
        });
    }
    g.finish();
}

/// Whole-dataset scan: the column-major batch kernel against the
/// row-major `geom::dist_sq` loop a naive scan would use.
fn bench_full_scan(c: &mut Criterion) {
    let n = 20_000;
    let dataset = data::galaxy(n, 3, 7);
    let soa = SoaDataset::from_dataset(&dataset);
    let q = dataset.point(0).to_vec();
    let mut out = vec![0.0; n];

    let mut g = c.benchmark_group("full_scan_dist_sq");
    g.bench_function(BenchmarkId::new("soa_batch", n), |b| {
        b.iter(|| {
            soa.dist_sq_batch(black_box(&q), &mut out);
            black_box(out[n - 1])
        })
    });
    g.bench_function(BenchmarkId::new("rowmajor_scalar", n), |b| {
        b.iter(|| {
            let mut acc = 0.0f64;
            for i in 0..n {
                acc += geom::dist_sq(dataset.point(i as u32), black_box(&q));
            }
            black_box(acc)
        })
    });
    g.finish();
}

/// End-to-end ε-query on a real tree, batched leaves vs the forced
/// scalar fallback — the quantity the PR-6 wall-time gate tracks.
fn bench_tree_queries(c: &mut Criterion) {
    let n = 20_000;
    let eps = 0.8;
    let dataset = data::galaxy(n, 3, 7);
    let tree = rtree::RTree::bulk_load_points(
        3,
        rtree::RTreeConfig::default(),
        dataset.iter().map(|(i, p)| (i, p.to_vec())),
    );
    let queries: Vec<u32> = (0..200).map(|i| (i * 97) % n as u32).collect();
    let run = |tree: &rtree::RTree, dataset: &Dataset| {
        let mut acc = 0usize;
        for &q in &queries {
            let mut hits = 0usize;
            tree.search_sphere(dataset.point(q), eps, |_| hits += 1);
            acc += hits;
        }
        acc
    };

    let mut g = c.benchmark_group("eps_query_kernel");
    g.bench_function(BenchmarkId::new("batched_leaves", n), |b| {
        rtree::force_scalar_leaf_eval(false);
        b.iter(|| black_box(run(&tree, &dataset)))
    });
    g.bench_function(BenchmarkId::new("scalar_leaves", n), |b| {
        rtree::force_scalar_leaf_eval(true);
        b.iter(|| black_box(run(&tree, &dataset)));
        rtree::force_scalar_leaf_eval(false);
    });
    g.finish();
}

criterion_group!(kernels, bench_leaf_kernels, bench_full_scan, bench_tree_queries);
criterion_main!(kernels);
