//! End-to-end algorithm micro-bench: μDBSCAN vs the sequential baselines
//! on one galaxy analogue (Criterion view of Table II's headline), plus
//! the dynamic-promotion ablation.

use baselines::{GridDbscan, RDbscan};
use criterion::{criterion_group, criterion_main, Criterion};
use geom::DbscanParams;
use mudbscan::MuDbscan;
use std::hint::black_box;

fn bench_algorithms(c: &mut Criterion) {
    let dataset = data::galaxy(10_000, 3, 3);
    let params = DbscanParams::new(0.8, 5);

    let mut g = c.benchmark_group("end_to_end");
    g.bench_function("mudbscan", |b| {
        b.iter(|| black_box(MuDbscan::from_params(params).run(&dataset).clustering.n_clusters))
    });
    g.bench_function("mudbscan_no_promotion", |b| {
        let mut alg = MuDbscan::from_params(params);
        alg.disable_dynamic_promotion = true;
        b.iter(|| black_box(alg.run(&dataset).clustering.n_clusters))
    });
    g.bench_function("mudbscan_paper_postproc", |b| {
        let mut alg = MuDbscan::from_params(params);
        alg.disable_post_core_mc_skip = true;
        b.iter(|| black_box(alg.run(&dataset).clustering.n_clusters))
    });
    g.bench_function("rdbscan", |b| {
        b.iter(|| black_box(RDbscan::new(params).run(&dataset).clustering.n_clusters))
    });
    g.bench_function("rdbscan_bulk", |b| {
        let mut alg = RDbscan::new(params);
        alg.bulk_load = true;
        b.iter(|| black_box(alg.run(&dataset).clustering.n_clusters))
    });
    g.bench_function("griddbscan", |b| {
        b.iter(|| black_box(GridDbscan::new(params).run(&dataset).unwrap().clustering.n_clusters))
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_algorithms
}
criterion_main!(benches);
