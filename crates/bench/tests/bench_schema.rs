//! Validate the committed `BENCH_PR10.json` trajectory against the schema
//! documented in `docs/BENCH_SCHEMA.md`.
//!
//! The CI perf-smoke job points `BENCH_SCHEMA_FILE` at a freshly emitted
//! file, so the same assertions guard both the committed artifact and
//! every regeneration — a schema change without a doc/test update fails
//! here, and an exactness drift fails inside `emit_bench` itself (it
//! exits non-zero and never writes the file).

use obs::Json;

/// The algorithms every workload must cover: sequential μDBSCAN, the
/// parallel variant with 1 and 4 threads, μDBSCAN-D with 1 and 4 ranks,
/// (schema v4) the fault-injected 4-rank recovery arm, (schema v6) the
/// served-traffic arm through the concurrent serving layer, and
/// (schema v7) the delete-heavy twin arms — the micro-cluster-local
/// repair path vs the rebuild-every-structural-delete baseline.
const REQUIRED_ALGORITHMS: [&str; 9] = [
    "mudbscan_seq",
    "par_mudbscan_t1",
    "par_mudbscan_t4",
    "mudbscan_d_p1",
    "mudbscan_d_p4",
    "mudbscan_d_p4_faults",
    "serve_traffic",
    "serve_delete_heavy",
    "serve_delete_heavy_rebuild",
];

/// Below this per-workload size the construction critical path is
/// dominated by fixed costs (thread spawn, tiling) and the t1→t4 speedup
/// assertion would be noise, so it is only enforced at or above it.
const MAKESPAN_GATE_MIN_N: f64 = 4000.0;

/// The acceptance bar for the parallel MC build: the t4 construction
/// critical path must beat t1 by at least this factor.
const MAKESPAN_MIN_SPEEDUP: f64 = 1.5;

fn trajectory_path() -> std::path::PathBuf {
    if let Ok(p) = std::env::var("BENCH_SCHEMA_FILE") {
        return p.into();
    }
    // crates/bench -> repository root.
    std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_PR10.json")
}

/// The acceptance budget for the live-telemetry arm of the overhead
/// probe: with the registry polled, the Prometheus exposition rendered
/// and a flight recorder noting while the run computes, the median
/// slowdown must stay under this percentage. Only enforced at bench
/// size — a smoke-sized run finishes in microseconds and the racing
/// poller's fixed costs swamp the quantity being budgeted.
const LIVE_OVERHEAD_BUDGET_PCT: f64 = 5.0;

/// Below this sharded-arm size (its own scale knob, independent of
/// `points_per_workload`) the makespan speedup and the residency budget
/// are fixed-cost noise, so those gates only engage above it.
const SHARDED_GATE_MIN_N: f64 = 1_000_000.0;

/// The acceptance bar for the out-of-core executor: the t4 makespan
/// must beat t1 by at least this factor at full sharded size.
const SHARDED_MIN_SPEEDUP: f64 = 1.5;

fn get_f64(v: &Json, key: &str) -> f64 {
    v.get(key).and_then(Json::as_f64).unwrap_or_else(|| panic!("missing number {key:?}"))
}

#[test]
fn committed_trajectory_matches_schema() {
    let path = trajectory_path();
    let text = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("cannot read {}: {e}", path.display()));
    let root = Json::parse(&text).expect("BENCH_PR10.json must be valid JSON");

    assert_eq!(get_f64(&root, "schema_version"), 9.0, "schema_version must be 9");
    assert_eq!(get_f64(&root, "seed"), 2019.0, "pinned seed");
    let points_per_workload = get_f64(&root, "points_per_workload");
    assert!(points_per_workload >= 100.0);

    let workloads = root.get("workloads").and_then(Json::as_array).expect("workloads array");
    assert!(!workloads.is_empty(), "at least one workload");

    for w in workloads {
        let name = w.get("dataset").and_then(Json::as_str).expect("dataset name");
        for key in ["n", "dim", "eps", "min_pts"] {
            assert!(get_f64(w, key) > 0.0, "{name}: {key} must be positive");
        }
        let reference = w.get("reference").expect("reference block");
        assert!(get_f64(reference, "clusters") >= 1.0, "{name}: oracle found no clusters");

        let runs = w.get("runs").and_then(Json::as_array).expect("runs array");
        let labels: Vec<&str> =
            runs.iter().map(|r| r.get("algorithm").and_then(Json::as_str).unwrap()).collect();
        for required in REQUIRED_ALGORITHMS {
            assert!(labels.contains(&required), "{name}: missing algorithm {required}");
        }

        let mut makespans: Vec<(String, f64)> = Vec::new();
        for r in runs {
            let label = r.get("algorithm").and_then(Json::as_str).unwrap();
            let ctx = format!("{name}/{label}");
            assert_eq!(
                r.get("exact").and_then(Json::as_bool),
                Some(true),
                "{ctx}: every committed run must be oracle-exact"
            );
            assert!(get_f64(r, "wall_secs") > 0.0, "{ctx}: wall_secs");
            let phases = r.get("phases").and_then(Json::as_object).expect("phases object");
            assert!(!phases.is_empty(), "{ctx}: per-phase times required");
            let pct = get_f64(r, "pct_queries_saved");
            assert!((0.0..=100.0).contains(&pct), "{ctx}: pct_queries_saved out of range");
            let counters = r.get("counters").expect("counters block");
            for key in ["range_queries", "queries_saved", "dist_computations", "node_visits"] {
                assert!(
                    counters.get(key).and_then(Json::as_f64).is_some(),
                    "{ctx}: counter {key} missing"
                );
            }
            // Since the from_raw fix, node visits survive every snapshot
            // path (sequential, shared, distributed aggregation).
            assert!(get_f64(counters, "node_visits") > 0.0, "{ctx}: node_visits must be tracked");
            // The serving arms (schema v6/v7) are structurally their own
            // shape: no batch R-tree query histograms or spans — their
            // histograms are wall-clock per-operation latencies — plus
            // the batch-twin exactness bit, the epoch count, and the
            // trace-determined ops block with the repair census.
            if label.starts_with("serve") {
                assert_eq!(
                    r.get("final_matches_batch").and_then(Json::as_bool),
                    Some(true),
                    "{ctx}: drained snapshot must match its batch twin"
                );
                assert!(get_f64(r, "epochs") >= 3.0, "{ctx}: the trace must span several epochs");
                assert!(get_f64(r, "live_points") > 0.0, "{ctx}: live points");
                let ops = r.get("ops").expect("ops block");
                for key in ["inserts", "deletes"] {
                    assert!(get_f64(ops, key) > 0.0, "{ctx}: ops/{key} must be positive");
                }
                // Schema v7: the repair census exists on every serving
                // arm. Repair-enabled arms must actually repair; the
                // rebuild baseline must actually fall back.
                for key in ["repairs", "repair_touched_points", "fallback_rebuilds"] {
                    assert!(
                        ops.get(key).and_then(Json::as_f64).is_some(),
                        "{ctx}: ops/{key} missing (schema v7 repair census)"
                    );
                }
                if label == "serve_delete_heavy_rebuild" {
                    assert!(
                        get_f64(ops, "fallback_rebuilds") >= 1.0,
                        "{ctx}: the budget-0 baseline must rebuild on structural deletes"
                    );
                    assert!(get_f64(ops, "rebuilds") >= 1.0, "{ctx}: rebuild count");
                } else {
                    assert!(
                        get_f64(ops, "repairs") >= 1.0,
                        "{ctx}: deletions must go through the local repair path"
                    );
                }
                if label == "serve_delete_heavy" {
                    assert!(
                        get_f64(ops, "repair_touched_points") >= 1.0,
                        "{ctx}: structural repairs must touch points"
                    );
                }
                // The served-traffic arm additionally races readers and
                // exercises TTL expiry.
                let mut required_hists = vec!["serve/ingest_batch_us", "serve/publish_us"];
                if label == "serve_traffic" {
                    for key in ["expiries", "reader_queries", "reader_memberships"] {
                        assert!(get_f64(ops, key) > 0.0, "{ctx}: ops/{key} must be positive");
                    }
                    assert!(get_f64(ops, "reader_threads") >= 2.0, "{ctx}: concurrent readers");
                    required_hists.extend(["serve/query_us", "serve/membership_us"]);
                }
                // The live-set accounting must close: every insert is
                // still live, expired, or explicitly deleted.
                assert_eq!(
                    get_f64(r, "live_points"),
                    get_f64(ops, "inserts") - get_f64(ops, "expiries") - get_f64(ops, "deletes"),
                    "{ctx}: live-set accounting must close"
                );
                let hists = r.get("histograms").and_then(Json::as_object).expect("histograms");
                for key in required_hists {
                    let h = hists
                        .iter()
                        .find(|(k, _)| k == key)
                        .map(|(_, v)| v)
                        .unwrap_or_else(|| panic!("{ctx}: {key} histogram missing"));
                    assert!(get_f64(h, "count") > 0.0, "{ctx}: empty {key} histogram");
                    let (p50, p99, max) = (get_f64(h, "p50"), get_f64(h, "p99"), get_f64(h, "max"));
                    assert!(
                        p50 <= p99 && p99 <= max,
                        "{ctx}: {key} percentiles must be monotone (p50 {p50} p99 {p99} max {max})"
                    );
                }
                // Schema v8: the live-telemetry contract. The emitter
                // polls `ServeHandle::stats` while the trace replays and
                // is fail-closed on the window algebra, so a committed
                // file must carry the block with `window_sums_match:
                // true` — and the summarised window totals must agree
                // with the cumulative registry on every serve counter.
                let lt = r.get("live_telemetry").expect("live_telemetry block (schema v8)");
                assert!(get_f64(lt, "polls") >= 1.0, "{ctx}: stats must be polled at least once");
                assert_eq!(
                    lt.get("window_sums_match").and_then(Json::as_bool),
                    Some(true),
                    "{ctx}: merged window deltas must sum to the cumulative counters"
                );
                let windows = lt.get("windows").and_then(Json::as_object).expect("windows totals");
                let cumulative =
                    lt.get("cumulative").and_then(Json::as_object).expect("cumulative totals");
                assert!(!windows.is_empty(), "{ctx}: window totals must be summarised");
                for (key, v) in windows {
                    let c = cumulative
                        .iter()
                        .find(|(k, _)| k == key)
                        .and_then(|(_, c)| c.as_f64())
                        .unwrap_or_else(|| panic!("{ctx}: cumulative total {key} missing"));
                    assert_eq!(
                        v.as_f64(),
                        Some(c),
                        "{ctx}: window total {key} must equal its cumulative counter"
                    );
                }
                let win_epochs = windows
                    .iter()
                    .find(|(k, _)| k == "epochs")
                    .and_then(|(_, v)| v.as_f64())
                    .unwrap_or(0.0);
                assert!(
                    win_epochs >= 3.0,
                    "{ctx}: the registry must have counted the trace's epochs"
                );
                // The served-traffic arm additionally carries the
                // k-distance sample summary (k = the workload's MinPts).
                if label == "serve_traffic" {
                    let kd = lt.get("kdist").expect("kdist summary on serve_traffic");
                    assert_eq!(get_f64(kd, "k"), get_f64(w, "min_pts"), "{ctx}: k is MinPts");
                    assert!(get_f64(kd, "samples") > 0.0, "{ctx}: kdist sample size");
                    let (p50, p90, p99) =
                        (get_f64(kd, "p50"), get_f64(kd, "p90"), get_f64(kd, "p99"));
                    assert!(
                        0.0 < p50 && p50 <= p90 && p90 <= p99,
                        "{ctx}: kdist percentiles must be monotone (p50 {p50} p90 {p90} p99 {p99})"
                    );
                }
                continue;
            }
            let obs = r.get("obs").expect("obs report");
            let spans = obs.get("spans").and_then(Json::as_object).expect("obs spans");
            assert!(!spans.is_empty(), "{ctx}: obs spans must be recorded");
            // Schema v3: per-run histogram percentile summaries. Every
            // run performs range queries, so query/node_visits is always
            // present and its percentiles are ordered.
            let hists = r.get("histograms").and_then(Json::as_object).expect("histograms block");
            assert!(!hists.is_empty(), "{ctx}: histograms block must be non-empty");
            let qnv = hists
                .iter()
                .find(|(k, _)| k == "query/node_visits")
                .map(|(_, v)| v)
                .unwrap_or_else(|| panic!("{ctx}: query/node_visits histogram missing"));
            assert!(get_f64(qnv, "count") > 0.0, "{ctx}: empty query/node_visits histogram");
            let (p50, p95, p99, max) = (
                get_f64(qnv, "p50"),
                get_f64(qnv, "p95"),
                get_f64(qnv, "p99"),
                get_f64(qnv, "max"),
            );
            assert!(
                p50 <= p95 && p95 <= p99 && p99 <= max,
                "{ctx}: percentiles must be monotone (p50 {p50} p95 {p95} p99 {p99} max {max})"
            );
            // Schema v5: the leaf kernels charge every exact point–point
            // distance evaluation to query/leaf_evals.
            assert!(
                hists.iter().any(|(k, _)| k == "query/leaf_evals"),
                "{ctx}: query/leaf_evals histogram missing (schema v5)"
            );
            // Shared-memory parallel runs carry the parallel-build
            // critical path (schema v2).
            if label.starts_with("par_mudbscan") {
                let m = get_f64(r, "tree_construction_makespan");
                assert!(m > 0.0, "{ctx}: tree_construction_makespan must be positive");
                makespans.push((label.to_string(), m));
            }
            // Distributed runs must carry the virtual clock and the BSP
            // compute/comm split.
            if label.starts_with("mudbscan_d") {
                assert!(get_f64(r, "virtual_secs") > 0.0, "{ctx}: virtual_secs");
                let values = obs.get("values").and_then(Json::as_object).expect("obs values");
                assert!(
                    values.iter().any(|(k, _)| k.ends_with("/compute_virtual_secs")),
                    "{ctx}: BSP compute split missing"
                );
                assert!(
                    values.iter().any(|(k, _)| k.ends_with("/comm_virtual_secs")),
                    "{ctx}: BSP comm split missing"
                );
                // Schema v3: the per-rank BSP timeline summary.
                let tl = r.get("bsp_timeline").expect("bsp_timeline block");
                assert!(get_f64(tl, "supersteps") > 0.0, "{ctx}: supersteps");
                let ranks = tl.get("ranks").and_then(Json::as_array).expect("ranks array");
                let nranks: f64 = label
                    .strip_prefix("mudbscan_d_p")
                    .unwrap()
                    .chars()
                    .take_while(|c| c.is_ascii_digit())
                    .collect::<String>()
                    .parse()
                    .unwrap();
                assert_eq!(ranks.len() as f64, nranks, "{ctx}: one timeline entry per rank");
                for rank in ranks {
                    assert!(
                        get_f64(rank, "compute_virtual_secs") > 0.0,
                        "{ctx}: rank compute time"
                    );
                    for key in ["rank", "comm_virtual_secs", "bytes_sent", "bytes_received"] {
                        assert!(
                            rank.get(key).and_then(Json::as_f64).is_some(),
                            "{ctx}: rank field {key} missing"
                        );
                    }
                }
                // Distributed runs also carry the per-superstep
                // comm-volume histogram; halo queries only happen with
                // more than one rank.
                let mut required = vec!["bsp/comm_bytes_per_superstep"];
                if nranks > 1.0 {
                    required.push("halo/node_visits");
                }
                for key in required {
                    assert!(hists.iter().any(|(k, _)| k == key), "{ctx}: histogram {key} missing");
                }
            }
            // Schema v4: the faulted arm carries the fault block — the
            // plan's replay signature plus the recovery-overhead costs —
            // and must have recovered exactly (the emitter is fail-closed
            // on recovery drift, so a committed file can only say true).
            if label == "mudbscan_d_p4_faults" {
                let fault = r.get("fault").expect("fault block on the faulted arm");
                assert_eq!(get_f64(fault, "plan_seed"), 2019.0, "{ctx}: pinned plan seed");
                assert!(get_f64(fault, "crashes") >= 1.0, "{ctx}: the plan crashes a rank");
                assert_eq!(
                    get_f64(fault, "recoveries"),
                    get_f64(fault, "crashes"),
                    "{ctx}: every crash must be recovered"
                );
                assert!(get_f64(fault, "drops_injected") >= 1.0, "{ctx}: drops injected");
                assert!(get_f64(fault, "retries") >= 1.0, "{ctx}: retries performed");
                assert_eq!(
                    get_f64(fault, "messages_lost"),
                    0.0,
                    "{ctx}: the default retry budget redelivers everything"
                );
                assert_eq!(
                    get_f64(fault, "duplicates_discarded"),
                    get_f64(fault, "duplicates_injected"),
                    "{ctx}: every duplicate must be discarded"
                );
                assert!(get_f64(fault, "reorders_injected") >= 1.0, "{ctx}: reorders injected");
                assert!(get_f64(fault, "straggled_steps") >= 1.0, "{ctx}: straggled steps");
                assert!(get_f64(fault, "recovery_comm_bytes") > 0.0, "{ctx}: recovery bytes");
                assert!(get_f64(fault, "retry_delay_virtual_secs") > 0.0, "{ctx}: retry delay");
                assert!(
                    get_f64(fault, "recovery_virtual_secs") > 0.0,
                    "{ctx}: recovery phase time"
                );
                assert!(
                    fault.get("overhead_vs_fault_free_pct").and_then(Json::as_f64).is_some(),
                    "{ctx}: overhead_vs_fault_free_pct missing"
                );
                assert_eq!(
                    fault.get("clusters_match_fault_free").and_then(Json::as_bool),
                    Some(true),
                    "{ctx}: recovery must reproduce the fault-free clustering"
                );
            }
        }

        // Schema v7 acceptance gate on the committed file: at bench
        // size, the repair arm's per-batch ingest latency p99 beats the
        // rebuild-every-structural-delete baseline by ≥ 2×. (Skipped for
        // smoke-sized runs, where a rebuild costs microseconds and the
        // ratio is noise.)
        if points_per_workload >= MAKESPAN_GATE_MIN_N {
            let ingest_p99 = |l: &str| {
                let r = runs
                    .iter()
                    .find(|r| r.get("algorithm").and_then(Json::as_str) == Some(l))
                    .unwrap_or_else(|| panic!("{name}: missing {l} run"));
                let hists = r.get("histograms").and_then(Json::as_object).expect("histograms");
                hists
                    .iter()
                    .find(|(k, _)| k == "serve/ingest_batch_us")
                    .map(|(_, h)| get_f64(h, "p99"))
                    .unwrap_or_else(|| panic!("{name}/{l}: ingest_batch_us histogram missing"))
            };
            let repair = ingest_p99("serve_delete_heavy");
            let rebuild = ingest_p99("serve_delete_heavy_rebuild");
            assert!(
                repair * 2.0 <= rebuild,
                "{name}: delete-heavy ingest p99 speedup below 2x \
                 (repair {repair:.0}us vs rebuild {rebuild:.0}us = {:.2}x)",
                rebuild / repair.max(1.0)
            );
        }

        // The parallel build must actually scale: at bench-sized
        // workloads, the t4 construction critical path beats t1 by the
        // acceptance factor. (Skipped for smoke-sized runs where fixed
        // costs dominate.)
        if points_per_workload >= MAKESPAN_GATE_MIN_N {
            let find = |l: &str| {
                makespans
                    .iter()
                    .find(|(label, _)| label == l)
                    .unwrap_or_else(|| panic!("{name}: no makespan for {l}"))
                    .1
            };
            let t1 = find("par_mudbscan_t1");
            let t4 = find("par_mudbscan_t4");
            assert!(
                t4 * MAKESPAN_MIN_SPEEDUP < t1,
                "{name}: tree_construction makespan speedup below {MAKESPAN_MIN_SPEEDUP}x \
                 (t1 {t1:.6}s vs t4 {t4:.6}s = {:.2}x)",
                t1 / t4
            );
        }
    }

    // Schema v9: the out-of-core sharded arm. Exactness bits are
    // fail-closed at emission, so a committed file can only say true;
    // the scaling and residency gates engage at full sharded size.
    let sharded = root.get("sharded_scale").expect("sharded_scale block (schema v9)");
    let sharded_n = get_f64(sharded, "n");
    assert!(sharded_n > 0.0, "sharded_scale: n");
    let raw = get_f64(sharded, "raw_bytes");
    let budget = get_f64(sharded, "memory_budget_bytes");
    assert!(
        0.0 < budget && budget < raw,
        "sharded_scale: the memory budget ({budget}B) must be smaller than the raw dataset \
         ({raw}B) — otherwise the arm proves nothing"
    );
    assert!(get_f64(sharded, "store_file_bytes") > 0.0, "sharded_scale: store bytes");
    assert_eq!(
        sharded.get("identical_t1_t4").and_then(Json::as_bool),
        Some(true),
        "sharded_scale: t1 and t4 must be bit-identical"
    );
    let overlap = sharded.get("oracle_overlap").expect("oracle_overlap block");
    assert!(get_f64(overlap, "n") > 0.0, "sharded_scale: overlap size");
    assert_eq!(
        overlap.get("matches_oracle").and_then(Json::as_bool),
        Some(true),
        "sharded_scale: the overlap run must match the naive oracle"
    );
    let arms = sharded.get("arms").and_then(Json::as_array).expect("sharded arms");
    let mut makespans = std::collections::BTreeMap::new();
    for arm in arms {
        let label = arm.get("label").and_then(Json::as_str).expect("arm label");
        let ctx = format!("sharded_scale/{label}");
        assert_eq!(
            arm.get("matches_in_memory").and_then(Json::as_bool),
            Some(true),
            "{ctx}: must be paper-exact against the in-memory run"
        );
        for key in ["threads", "n_shards", "makespan_secs", "wall_secs", "peak_resident_bytes"] {
            assert!(get_f64(arm, key) > 0.0, "{ctx}: {key} must be positive");
        }
        // Border ties (order-defined in DBSCAN itself) are the only
        // permitted label difference vs the in-memory run; the count is
        // recorded and must be a tiny fraction of the dataset.
        let ties = get_f64(arm, "border_ties");
        assert!(
            ties >= 0.0 && ties <= sharded_n / 1000.0,
            "{ctx}: border_ties {ties} out of range for n={sharded_n}"
        );
        assert!(get_f64(arm, "n_shards") >= get_f64(sharded, "shards_requested"), "{ctx}: shards");
        makespans.insert(label.to_string(), get_f64(arm, "makespan_secs"));
    }
    for required in ["sharded_t1", "sharded_t4"] {
        assert!(makespans.contains_key(required), "sharded_scale: missing arm {required}");
    }
    if sharded_n >= SHARDED_GATE_MIN_N {
        assert_eq!(
            sharded.get("budget_respected").and_then(Json::as_bool),
            Some(true),
            "sharded_scale: peak resident bytes exceeded the memory budget"
        );
        let speedup = get_f64(sharded, "speedup_t1_t4");
        assert!(
            speedup >= SHARDED_MIN_SPEEDUP,
            "sharded_scale: t1→t4 makespan speedup {speedup:.2}x below {SHARDED_MIN_SPEEDUP}x \
             (t1 {:.3}s vs t4 {:.3}s)",
            makespans["sharded_t1"],
            makespans["sharded_t4"]
        );
    }

    // Overhead block: the measured numbers EXPERIMENTS.md quotes.
    let overhead = root.get("overhead").expect("overhead block");
    assert!(get_f64(overhead, "reps") >= 3.0);
    assert!(get_f64(overhead, "median_disabled_secs") > 0.0);
    assert!(get_f64(overhead, "median_enabled_secs") > 0.0);
    assert!(get_f64(overhead, "median_traced_secs") > 0.0, "schema v3: traced arm");
    assert!(overhead.get("overhead_pct").and_then(Json::as_f64).is_some(), "overhead_pct missing");
    assert!(
        overhead.get("tracing_overhead_pct").and_then(Json::as_f64).is_some(),
        "tracing_overhead_pct missing"
    );
    // Schema v8: the live-telemetry arm, budgeted at bench size.
    assert!(get_f64(overhead, "median_live_secs") > 0.0, "schema v8: live-polled arm");
    let live_pct = overhead
        .get("live_overhead_pct")
        .and_then(Json::as_f64)
        .expect("live_overhead_pct missing");
    if get_f64(&root, "points_per_workload") >= MAKESPAN_GATE_MIN_N {
        assert!(
            live_pct < LIVE_OVERHEAD_BUDGET_PCT,
            "live-telemetry overhead {live_pct:.2}% exceeds the {LIVE_OVERHEAD_BUDGET_PCT}% budget"
        );
    }
}
