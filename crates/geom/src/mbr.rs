//! Axis-aligned minimum bounding rectangles (MBRs).
//!
//! Used by the R-tree ([`rtree`](https://docs.rs/rtree)) nodes, the μR-tree
//! level-1 entries (MC bounding boxes) and the spatial partitioner
//! (partition boxes and ε-halo strips). The paper's `reg_ε(p)` — the
//! ε-extended box around a point — is [`Mbr::around_point`], and the
//! MINDIST pruning bound the restricted query of Algorithm 6 applies to
//! each reachable MC's member box is [`Mbr::min_dist_sq`].

/// An axis-aligned box `[lo, hi]` (inclusive on both ends) in `dim()`
/// dimensions.
#[derive(Debug, Clone, PartialEq)]
pub struct Mbr {
    lo: Box<[f64]>,
    hi: Box<[f64]>,
}

impl Mbr {
    /// Construct from corner vectors. `lo[k] <= hi[k]` must hold.
    pub fn new(lo: Vec<f64>, hi: Vec<f64>) -> Self {
        assert_eq!(lo.len(), hi.len(), "corner dimensionality mismatch");
        debug_assert!(
            lo.iter().zip(hi.iter()).all(|(l, h)| l <= h),
            "lo must be <= hi component-wise: {lo:?} vs {hi:?}"
        );
        Self { lo: lo.into_boxed_slice(), hi: hi.into_boxed_slice() }
    }

    /// Degenerate box containing a single point.
    pub fn point(p: &[f64]) -> Self {
        Self::new(p.to_vec(), p.to_vec())
    }

    /// The box `[p - r, p + r]` — the paper's `reg_r(p)`. A sphere of radius
    /// `r` around `p` is contained in this box, so box overlap is a sound
    /// (conservative) filter for sphere queries.
    pub fn around_point(p: &[f64], r: f64) -> Self {
        assert!(r >= 0.0);
        let lo = p.iter().map(|x| x - r).collect();
        let hi = p.iter().map(|x| x + r).collect();
        Self::new(lo, hi)
    }

    /// Dimensionality.
    #[inline]
    pub fn dim(&self) -> usize {
        self.lo.len()
    }

    /// Lower corner.
    #[inline]
    pub fn lo(&self) -> &[f64] {
        &self.lo
    }

    /// Upper corner.
    #[inline]
    pub fn hi(&self) -> &[f64] {
        &self.hi
    }

    /// True when the box is a single point (`lo == hi` in every
    /// dimension) — the shape of an R-tree point entry.
    #[inline]
    pub fn is_degenerate(&self) -> bool {
        self.lo.iter().zip(self.hi.iter()).all(|(l, h)| l == h)
    }

    /// `true` iff `p` lies inside the box (inclusive bounds).
    #[inline]
    pub fn contains_point(&self, p: &[f64]) -> bool {
        debug_assert_eq!(p.len(), self.dim());
        self.lo.iter().zip(p).all(|(l, x)| l <= x) && self.hi.iter().zip(p).all(|(h, x)| x <= h)
    }

    /// `true` iff the two boxes overlap (closed-interval semantics: touching
    /// faces count as overlap, which keeps the filter conservative).
    #[inline]
    pub fn intersects(&self, other: &Mbr) -> bool {
        debug_assert_eq!(self.dim(), other.dim());
        for k in 0..self.dim() {
            if self.hi[k] < other.lo[k] || other.hi[k] < self.lo[k] {
                return false;
            }
        }
        true
    }

    /// `true` iff `other` is entirely inside `self`.
    pub fn contains(&self, other: &Mbr) -> bool {
        for k in 0..self.dim() {
            if other.lo[k] < self.lo[k] || other.hi[k] > self.hi[k] {
                return false;
            }
        }
        true
    }

    /// Squared distance from `p` to the nearest point of the box (0 when
    /// `p` is inside). This makes box/sphere intersection exact: the
    /// *open* ball `(c, r)` meets the box iff `min_dist_sq(c) < r²` —
    /// strict, matching the workspace's open-ball neighbourhood
    /// convention, so a box whose nearest face sits exactly ε away can
    /// never contain an ε-neighbour and must be pruned.
    #[inline]
    pub fn min_dist_sq(&self, p: &[f64]) -> f64 {
        debug_assert_eq!(p.len(), self.dim());
        let mut acc = 0.0;
        for k in 0..self.dim() {
            let x = p[k];
            let d = if x < self.lo[k] {
                self.lo[k] - x
            } else if x > self.hi[k] {
                x - self.hi[k]
            } else {
                0.0
            };
            acc += d * d;
        }
        acc
    }

    /// `true` iff the open ball of radius `r` around `c` intersects the box
    /// (strict: matches the strict `< ε` neighbourhood definition).
    #[inline]
    pub fn intersects_sphere(&self, c: &[f64], r: f64) -> bool {
        self.min_dist_sq(c) < r * r
    }

    /// Grow the box in place so it also covers `other`.
    pub fn merge(&mut self, other: &Mbr) {
        debug_assert_eq!(self.dim(), other.dim());
        for k in 0..self.dim() {
            if other.lo[k] < self.lo[k] {
                self.lo[k] = other.lo[k];
            }
            if other.hi[k] > self.hi[k] {
                self.hi[k] = other.hi[k];
            }
        }
    }

    /// Grow the box in place so it also covers `p`.
    pub fn merge_point(&mut self, p: &[f64]) {
        debug_assert_eq!(p.len(), self.dim());
        for k in 0..self.dim() {
            if p[k] < self.lo[k] {
                self.lo[k] = p[k];
            }
            if p[k] > self.hi[k] {
                self.hi[k] = p[k];
            }
        }
    }

    /// The smallest box covering both inputs.
    pub fn merged(&self, other: &Mbr) -> Mbr {
        let mut m = self.clone();
        m.merge(other);
        m
    }

    /// Hyper-volume of the box. Degenerate boxes have volume 0; for R-tree
    /// split heuristics prefer [`Mbr::margin`] when volumes collapse.
    pub fn volume(&self) -> f64 {
        self.lo.iter().zip(self.hi.iter()).map(|(l, h)| h - l).product()
    }

    /// Sum of edge lengths (the "margin"); a robust tie-breaker when
    /// volumes are zero (collinear points).
    pub fn margin(&self) -> f64 {
        self.lo.iter().zip(self.hi.iter()).map(|(l, h)| h - l).sum()
    }

    /// Volume increase needed for the box to cover `other` — the Guttman
    /// ChooseLeaf criterion.
    pub fn enlargement(&self, other: &Mbr) -> f64 {
        self.merged(other).volume() - self.volume()
    }

    /// Center of the box along axis `k`.
    #[inline]
    pub fn center(&self, k: usize) -> f64 {
        0.5 * (self.lo[k] + self.hi[k])
    }

    /// Expand every face outward by `r` (used to build ε-halo strips of a
    /// partition box).
    pub fn expanded(&self, r: f64) -> Mbr {
        assert!(r >= 0.0);
        Mbr::new(self.lo.iter().map(|x| x - r).collect(), self.hi.iter().map(|x| x + r).collect())
    }

    /// Estimated heap footprint in bytes (two boxed slices).
    pub fn heap_bytes(&self) -> usize {
        2 * self.lo.len() * std::mem::size_of::<f64>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unit() -> Mbr {
        Mbr::new(vec![0.0, 0.0], vec![1.0, 1.0])
    }

    #[test]
    fn contains_point_inclusive() {
        let m = unit();
        assert!(m.contains_point(&[0.0, 0.0]));
        assert!(m.contains_point(&[1.0, 1.0]));
        assert!(m.contains_point(&[0.5, 0.5]));
        assert!(!m.contains_point(&[1.0001, 0.5]));
    }

    #[test]
    fn intersects_touching_counts() {
        let m = unit();
        let touching = Mbr::new(vec![1.0, 0.0], vec![2.0, 1.0]);
        let apart = Mbr::new(vec![1.1, 0.0], vec![2.0, 1.0]);
        assert!(m.intersects(&touching));
        assert!(touching.intersects(&m));
        assert!(!m.intersects(&apart));
    }

    #[test]
    fn min_dist_sq_cases() {
        let m = unit();
        assert_eq!(m.min_dist_sq(&[0.5, 0.5]), 0.0); // inside
        assert_eq!(m.min_dist_sq(&[2.0, 0.5]), 1.0); // face
        assert_eq!(m.min_dist_sq(&[2.0, 2.0]), 2.0); // corner
    }

    #[test]
    fn sphere_intersection_strict() {
        let m = unit();
        // Ball centred at (2, 0.5): closest box point at distance 1.
        assert!(!m.intersects_sphere(&[2.0, 0.5], 1.0)); // open ball misses
        assert!(m.intersects_sphere(&[2.0, 0.5], 1.0 + 1e-9));
    }

    #[test]
    fn face_exactly_eps_away_is_pruned() {
        // The ε-boundary pruning contract on an *extended* (non-point)
        // box: when the nearest face sits exactly ε from the query, the
        // open ε-ball cannot reach any content, so `min_dist_sq == ε²`
        // must not pass the strict filter. All offsets are powers of two,
        // so every quantity is exactly representable.
        let m = Mbr::new(vec![1.0, -8.0], vec![3.0, 8.0]);
        for eps in [0.25f64, 0.5, 1.0, 2.0] {
            let q = [1.0 - eps, 0.0]; // face of x = 1 is exactly eps away
            assert_eq!(m.min_dist_sq(&q), eps * eps);
            assert!(!m.intersects_sphere(&q, eps), "face at exactly eps must be pruned");
            assert!(m.intersects_sphere(&q, eps * (1.0 + 1e-12)));
        }
        // Corner case: query diagonal from a corner with per-axis gaps
        // (3, 4) — min_dist² = 25, so ε = 5 exactly must still prune.
        let q = [1.0 - 3.0, -8.0 - 4.0];
        assert_eq!(m.min_dist_sq(&q), 25.0);
        assert!(!m.intersects_sphere(&q, 5.0));
        assert!(m.intersects_sphere(&q, 5.0 + 1e-9));
    }

    #[test]
    fn degenerate_detection() {
        assert!(Mbr::point(&[1.0, 2.0]).is_degenerate());
        assert!(!unit().is_degenerate());
        // Degenerate in one axis only is still not a point box.
        assert!(!Mbr::new(vec![0.0, 0.0], vec![0.0, 1.0]).is_degenerate());
    }

    #[test]
    fn merge_and_enlargement() {
        let mut m = unit();
        let other = Mbr::new(vec![2.0, 2.0], vec![3.0, 3.0]);
        assert_eq!(m.enlargement(&other), 9.0 - 1.0);
        m.merge(&other);
        assert_eq!(m.lo(), &[0.0, 0.0]);
        assert_eq!(m.hi(), &[3.0, 3.0]);
        assert_eq!(m.volume(), 9.0);
        assert_eq!(m.margin(), 6.0);
    }

    #[test]
    fn merge_point_grows() {
        let mut m = Mbr::point(&[1.0, 1.0]);
        assert_eq!(m.volume(), 0.0);
        m.merge_point(&[-1.0, 3.0]);
        assert_eq!(m.lo(), &[-1.0, 1.0]);
        assert_eq!(m.hi(), &[1.0, 3.0]);
    }

    #[test]
    fn around_point_covers_ball() {
        let m = Mbr::around_point(&[1.0, 2.0], 0.5);
        assert_eq!(m.lo(), &[0.5, 1.5]);
        assert_eq!(m.hi(), &[1.5, 2.5]);
        assert!(m.contains_point(&[1.0, 2.4]));
    }

    #[test]
    fn expanded_halo() {
        let m = unit().expanded(0.25);
        assert_eq!(m.lo(), &[-0.25, -0.25]);
        assert_eq!(m.hi(), &[1.25, 1.25]);
        assert!(m.contains(&unit()));
    }

    #[test]
    fn containment() {
        let m = unit();
        assert!(m.contains(&Mbr::new(vec![0.2, 0.2], vec![0.8, 0.8])));
        assert!(!m.contains(&Mbr::new(vec![0.2, 0.2], vec![1.8, 0.8])));
    }
}
