//! `serve_top` — a refreshing ASCII dashboard over the serving engine's
//! live telemetry, in the spirit of `top(1)`.
//!
//! The default mode spawns a serving engine on a seeded catalog
//! workload, replays a trace of batched inserts, TTL expiries and
//! deletions through it from a background thread, and redraws a frame
//! on every `ServeHandle::stats` poll: the published epoch, live-set
//! size and cluster count, `obs::render::render_meters` bars over the
//! per-window operation counters, and the windowed latency percentiles.
//! Because `stats` serves window *deltas* off the engine's shared
//! cursor, the dashboard is pure observation — polling perturbs neither
//! the clustering nor the counters (see `docs/OBSERVABILITY.md`).
//!
//! ```text
//! cargo run --release -p bench --bin serve_top            # dashboard
//! cargo run --release -p bench --bin serve_top -- --check # CI smoke
//! ```
//!
//! `--check` runs headless and fail-closed for CI: a deterministic
//! two-epoch trace with repair disabled (`repair_budget: Some(0)`) and
//! a forced drift detection at epoch 2, asserting that the merged
//! window deltas sum back to the cumulative registry bit-for-bit, that
//! one frame renders, that the Prometheus exposition carries the serve
//! counters, and that exactly one schema-valid `exactness_drift`
//! postmortem artifact lands in the scratch directory. Exit status 0 on
//! success, 1 with a diagnostic otherwise.
//!
//! Knobs (default mode): `--n <points>` (default 2000), `--frames <k>`
//! (default 40), `--interval-ms <ms>` (poll cadence, default 60).

use data::paper_table2_specs;
use mudbscan::prelude::{Runner, ServeOp, ServeOptions, ServeStats};
use obs::render::render_meters;

/// Operation counters drawn as meter bars, label → registry key.
const METER_KEYS: [(&str, &str); 6] = [
    ("inserts", "serve/inserts"),
    ("deletes", "serve/deletes"),
    ("expiries", "serve/expiries"),
    ("repairs", "serve/repairs"),
    ("rebuilds", "serve/rebuilds"),
    ("queries", "serve/query_us"),
];

fn arg_usize(flag: &str, default: usize) -> usize {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// One dashboard frame rendered from a polled snapshot. The meter rows
/// mix counters with the query histogram's *count* — both are "events
/// this window", which is what a rate display wants.
fn render_frame(stats: &ServeStats, frame: usize) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "serve_top — live μDBSCAN serving telemetry — frame {frame}\n\
         epoch {:>6}  live {:>7}  clusters {:>5}  repairs {:>5}  fallback {:>3}  drift {:>2}\n",
        stats.epoch,
        stats.live_points,
        stats.clusters,
        stats.repairs(),
        stats.fallback_rebuilds(),
        stats.drift_detections(),
    ));
    let rows: Vec<(String, f64)> = METER_KEYS
        .iter()
        .map(|(label, key)| {
            let v = if key.ends_with("_us") {
                stats.window.hist(key).map_or(0, obs::Histogram::count)
            } else {
                stats.window.count(key)
            };
            (format!("win {label}"), v as f64)
        })
        .collect();
    out.push_str(&render_meters(&rows, 36));
    out.push_str(&format!(
        "window latency us  ingest p50/p99 {}/{}  publish p50/p99 {}/{}  query p50/p99 {}/{}\n",
        stats.window_percentile("serve/ingest_batch_us", 0.5),
        stats.window_percentile("serve/ingest_batch_us", 0.99),
        stats.window_percentile("serve/publish_us", 0.5),
        stats.window_percentile("serve/publish_us", 0.99),
        stats.window_percentile("serve/query_us", 0.5),
        stats.window_percentile("serve/query_us", 0.99),
    ));
    out
}

/// The interactive dashboard: replay a seeded trace from a writer
/// thread, poll + redraw until the trace drains (or the frame budget
/// runs out), then leave the final frame on screen.
fn run_dashboard() {
    let n = arg_usize("--n", 2000);
    let frames = arg_usize("--frames", 40);
    let interval = std::time::Duration::from_millis(arg_usize("--interval-ms", 60) as u64);
    let specs = paper_table2_specs();
    let spec = specs.iter().find(|s| s.name == "DGB0.5M3D").expect("catalog spec");
    let data = spec.generate_n(n, bench::SEED);
    let params = spec.params;
    let handle = Runner::new(params).serve(data.dim()).expect("serving configuration");

    // The same trace shape emit_bench's served-traffic arm replays:
    // contiguous insert batches, a two-epoch TTL on every id ≡ 3
    // (mod 11), and deletions of ids ≡ 5 (mod 13) two batches later —
    // paced so the dashboard has something to show each frame.
    let batches = 16usize;
    let chunk = n.div_ceil(batches).max(1);
    let writer = {
        let h = handle.clone();
        let data = data.clone();
        std::thread::spawn(move || {
            for b in 0..batches {
                let mut ops = Vec::new();
                if b >= 2 {
                    let (lo, hi) = (((b - 2) * chunk).min(n), ((b - 1) * chunk).min(n));
                    ops.extend(
                        (lo..hi).filter(|id| id % 13 == 5).map(|id| ServeOp::delete(id as u64)),
                    );
                }
                let (lo, hi) = ((b * chunk).min(n), ((b + 1) * chunk).min(n));
                ops.extend((lo..hi).map(|id| {
                    let coords = data.point(id as u32).to_vec();
                    if id % 11 == 3 {
                        ServeOp::insert_ttl(coords, 2)
                    } else {
                        ServeOp::insert(coords)
                    }
                }));
                h.ingest(ops).expect("writer alive");
                std::thread::sleep(std::time::Duration::from_millis(25));
            }
            h.drain().expect("writer alive");
        })
    };

    let mut frame = 0usize;
    while frame < frames {
        frame += 1;
        let stats = handle.stats();
        let done = writer.is_finished();
        // Clear + home; the frame is small enough to never flicker.
        print!("\x1b[2J\x1b[H{}", render_frame(&stats, frame));
        use std::io::Write as _;
        std::io::stdout().flush().ok();
        if done {
            break;
        }
        std::thread::sleep(interval);
    }
    writer.join().expect("writer thread");
    let fin = handle.stats();
    println!(
        "\ntrace drained: {} epochs, {} live points, {} clusters",
        fin.cumulative.count("serve/epochs"),
        fin.live_points,
        fin.clusters
    );
}

/// The headless CI smoke: deterministic trace, forced fault, fail-closed
/// assertions. Returns a diagnostic instead of panicking so the exit
/// status is a clean 0/1.
fn run_check() -> Result<(), String> {
    let dir = std::env::temp_dir().join(format!("mudbscan-serve-top-check-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    let params = geom::DbscanParams::new(1.0, 3);
    let handle = Runner::new(params)
        .serve_options(ServeOptions {
            repair_budget: Some(0),
            force_drift_at: Some(2),
            postmortem_dir: Some(dir.clone()),
            ..Default::default()
        })
        .serve(1)
        .map_err(|e| format!("spawn failed: {e}"))?;

    let mut series = obs::LiveSeries::new();
    let ids = handle
        .ingest([[0.0], [0.5], [-0.5], [0.2]].iter().map(|r| ServeOp::insert(r.to_vec())).collect())
        .map_err(|e| format!("ingest failed: {e}"))?;
    handle.drain().map_err(|e| format!("drain failed: {e}"))?;
    series.push(handle.stats().window);
    // Epoch 2: a structural delete (budget 0 → fallback rebuild) with
    // the drift detector forced — the postmortem trigger under test.
    handle.ingest(vec![ServeOp::delete(ids[3])]).map_err(|e| format!("ingest failed: {e}"))?;
    handle.drain().map_err(|e| format!("drain failed: {e}"))?;
    let fin = handle.stats();
    series.push(fin.window.clone());

    // The windowed-export contract: merged deltas ≡ cumulative.
    let merged = series.merged();
    if merged.counts != fin.cumulative.counts || merged.hists != fin.cumulative.hists {
        return Err("merged stats windows do not sum to the cumulative registry".to_string());
    }
    if fin.drift_detections() != 1 {
        return Err(format!("expected 1 drift detection, saw {}", fin.drift_detections()));
    }
    // One frame must render, and the exposition must carry the census.
    let frame = render_frame(&fin, 1);
    if !frame.contains("epoch") || frame.lines().count() < 4 {
        return Err("dashboard frame failed to render".to_string());
    }
    println!("{frame}");
    if !fin.render_prom().contains("mudbscan_serve_epochs 2") {
        return Err("Prometheus exposition is missing the serve counters".to_string());
    }
    // Exactly one schema-valid drift postmortem in the scratch dir.
    let mut paths: Vec<_> = std::fs::read_dir(&dir)
        .map_err(|e| format!("postmortem dir unreadable: {e}"))?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .collect();
    paths.sort();
    if paths.len() != 1 {
        return Err(format!("expected exactly one postmortem artifact, found {}", paths.len()));
    }
    let text =
        std::fs::read_to_string(&paths[0]).map_err(|e| format!("artifact unreadable: {e}"))?;
    let js = obs::Json::parse(&text).map_err(|e| format!("artifact is not JSON: {e}"))?;
    if js.get("reason").and_then(obs::Json::as_str) != Some("exactness_drift") {
        return Err("artifact reason is not exactness_drift".to_string());
    }
    obs::validate_postmortem(&js).map_err(|e| format!("artifact fails schema validation: {e}"))?;
    std::fs::remove_dir_all(&dir).ok();
    println!("serve_top --check ok: windows sum to cumulative, drift postmortem is schema-valid");
    Ok(())
}

fn main() {
    if std::env::args().any(|a| a == "--check") {
        if let Err(msg) = run_check() {
            eprintln!("serve_top --check FAILED: {msg}");
            std::process::exit(1);
        }
        return;
    }
    run_dashboard();
}
