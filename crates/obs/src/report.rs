//! The aggregated output of a collection window.
//!
//! A [`Report`] is what [`crate::take_report`] returns: every span path
//! with its accumulated wall seconds, enter count and duration
//! histogram, plus the named counters, additive values and explicit
//! histograms. It converts losslessly to [`crate::Json`] for the
//! `BENCH_*.json` trajectory files.

use crate::hist::Histogram;
use crate::json::Json;

/// Accumulated statistics of one span path.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SpanStat {
    /// Total wall-clock seconds across all entries of this path.
    pub secs: f64,
    /// Number of times the span was entered.
    pub count: u64,
    /// Per-entry durations (nanoseconds) in the fixed log-bucket layout,
    /// so span-latency percentiles merge exactly across threads.
    pub dur_ns: Histogram,
}

/// Everything collected between a [`crate::reset`] and a
/// [`crate::take_report`], sorted by name for deterministic output.
#[derive(Debug, Clone, Default)]
pub struct Report {
    /// `(slash-joined path, stats)` for every span, sorted by path.
    pub spans: Vec<(String, SpanStat)>,
    /// `(name, total)` for every monotone counter, sorted by name.
    pub counts: Vec<(String, u64)>,
    /// `(name, total)` for every additive value, sorted by name.
    pub values: Vec<(String, f64)>,
    /// `(name, histogram)` for every explicitly recorded histogram
    /// ([`crate::record_hist`]), sorted by name.
    pub hists: Vec<(String, Histogram)>,
}

impl Report {
    /// Total seconds recorded under `path` (0 when absent).
    pub fn span_secs(&self, path: &str) -> f64 {
        self.spans.iter().find(|(p, _)| p == path).map_or(0.0, |(_, s)| s.secs)
    }

    /// Number of times the span at `path` was entered (0 when absent).
    pub fn span_count(&self, path: &str) -> u64 {
        self.spans.iter().find(|(p, _)| p == path).map_or(0, |(_, s)| s.count)
    }

    /// Value of the named counter (0 when absent).
    pub fn count(&self, name: &str) -> u64 {
        self.counts.iter().find(|(n, _)| n == name).map_or(0, |(_, v)| *v)
    }

    /// Value of the named additive value (0.0 when absent).
    pub fn value(&self, name: &str) -> f64 {
        self.values.iter().find(|(n, _)| n == name).map_or(0.0, |(_, v)| *v)
    }

    /// The named histogram, when one was recorded.
    pub fn hist(&self, name: &str) -> Option<&Histogram> {
        self.hists.iter().find(|(n, _)| n == name).map(|(_, h)| h)
    }

    /// Convert to a JSON object:
    /// `{"spans": {path: {"secs": s, "count": c, "dur_ns": {...}}},
    /// "counts": {...}, "values": {...}, "hists": {name: {...}}}`.
    ///
    /// Span entries carry their duration-percentile summary only when
    /// samples were recorded (hand-built reports may have empty
    /// histograms). Explicit histograms are emitted in full (summary +
    /// sparse buckets).
    pub fn to_json(&self) -> Json {
        let spans = Json::obj_from(self.spans.iter().map(|(p, s)| {
            let mut js = Json::obj_from([
                ("secs".to_string(), Json::Num(s.secs)),
                ("count".to_string(), Json::Num(s.count as f64)),
            ]);
            if !s.dur_ns.is_empty() {
                js.set("dur_ns", s.dur_ns.summary_json());
            }
            (p.clone(), js)
        }));
        let counts =
            Json::obj_from(self.counts.iter().map(|(n, v)| (n.clone(), Json::Num(*v as f64))));
        let values = Json::obj_from(self.values.iter().map(|(n, v)| (n.clone(), Json::Num(*v))));
        let hists = Json::obj_from(self.hists.iter().map(|(n, h)| (n.clone(), h.to_json())));
        Json::obj_from([
            ("spans".to_string(), spans),
            ("counts".to_string(), counts),
            ("values".to_string(), values),
            ("hists".to_string(), hists),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Report {
        let mut qh = Histogram::new();
        for v in [4u64, 4, 9, 120] {
            qh.record(v);
        }
        let mut dur = Histogram::new();
        dur.record(1_500_000);
        Report {
            spans: vec![
                ("a".into(), SpanStat { secs: 1.5, count: 1, dur_ns: dur }),
                ("a/b".into(), SpanStat { secs: 0.5, count: 3, dur_ns: Histogram::new() }),
            ],
            counts: vec![("mc_dense".into(), 42)],
            values: vec![("virtual".into(), 2.25)],
            hists: vec![("query/node_visits".into(), qh)],
        }
    }

    #[test]
    fn accessors() {
        let r = sample();
        assert_eq!(r.span_secs("a"), 1.5);
        assert_eq!(r.span_count("a/b"), 3);
        assert_eq!(r.count("mc_dense"), 42);
        assert_eq!(r.value("virtual"), 2.25);
        assert_eq!(r.span_secs("missing"), 0.0);
        assert_eq!(r.hist("query/node_visits").unwrap().count(), 4);
        assert!(r.hist("missing").is_none());
    }

    #[test]
    fn json_round_trip() {
        let js = sample().to_json();
        let text = js.render_pretty();
        let back = Json::parse(&text).unwrap();
        let ab = back.get("spans").and_then(|s| s.get("a/b")).unwrap();
        assert_eq!(ab.get("count").and_then(Json::as_f64), Some(3.0));
        assert!(ab.get("dur_ns").is_none(), "empty duration histograms are omitted");
        let a = back.get("spans").and_then(|s| s.get("a")).unwrap();
        assert_eq!(a.get("dur_ns").and_then(|d| d.get("count")).and_then(Json::as_f64), Some(1.0));
        assert_eq!(
            back.get("counts").and_then(|c| c.get("mc_dense")).and_then(Json::as_f64),
            Some(42.0)
        );
        assert_eq!(
            back.get("values").and_then(|v| v.get("virtual")).and_then(Json::as_f64),
            Some(2.25)
        );
        let qh = back.get("hists").and_then(|h| h.get("query/node_visits")).unwrap();
        assert_eq!(qh.get("count").and_then(Json::as_f64), Some(4.0));
        assert_eq!(qh.get("p50").and_then(Json::as_f64), Some(4.0));
        assert!(qh.get("buckets").and_then(Json::as_array).is_some());
    }
}
