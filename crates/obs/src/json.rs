//! A minimal JSON value type with an emitter and a parser.
//!
//! The build environment is offline (no `serde`), and the only JSON this
//! workspace needs is the `BENCH_*.json` benchmark trajectory and the
//! conformance failure artifacts — flat-ish documents written and read by
//! our own code. This module supports exactly RFC 8259 JSON: objects
//! (insertion-ordered), arrays, strings with escapes, finite numbers,
//! booleans and null.
//!
//! ```
//! use obs::Json;
//!
//! let doc = Json::obj_from([
//!     ("schema_version".to_string(), Json::Num(1.0)),
//!     ("name".to_string(), Json::Str("emit_bench".to_string())),
//!     ("phases".to_string(), Json::Arr(vec![Json::Str("clustering".into())])),
//! ]);
//! let text = doc.render_pretty();
//! let back = Json::parse(&text).unwrap();
//! assert_eq!(back.get("schema_version").and_then(Json::as_f64), Some(1.0));
//! assert_eq!(back.get("name").and_then(Json::as_str), Some("emit_bench"));
//! ```

/// A JSON value. Objects preserve insertion order (`Vec` of pairs, not a
/// map) so emitted documents are deterministic and diffs stay readable.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A finite number. Emitted without a fractional part when integral.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; keys keep insertion order and are assumed unique.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Empty object.
    pub fn obj() -> Json {
        Json::Obj(Vec::new())
    }

    /// Object from key/value pairs (insertion order preserved).
    pub fn obj_from(pairs: impl IntoIterator<Item = (String, Json)>) -> Json {
        Json::Obj(pairs.into_iter().collect())
    }

    /// Insert/overwrite `key` in an object; panics on non-objects (the
    /// emit paths build documents statically, so this is a logic error).
    pub fn set(&mut self, key: &str, value: Json) {
        let Json::Obj(pairs) = self else { panic!("Json::set on non-object") };
        if let Some(p) = pairs.iter_mut().find(|(k, _)| k == key) {
            p.1 = value;
        } else {
            pairs.push((key.to_string(), value));
        }
    }

    /// Member lookup on objects; `None` on other variants.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The number, if this is a [`Json::Num`].
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The string slice, if this is a [`Json::Str`].
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean, if this is a [`Json::Bool`].
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The element slice, if this is a [`Json::Arr`].
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The key/value pairs, if this is a [`Json::Obj`].
    pub fn as_object(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(pairs) => Some(pairs),
            _ => None,
        }
    }

    /// Compact single-line rendering.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Two-space-indented rendering with a trailing newline — the format
    /// the committed `BENCH_*.json` files use.
    pub fn render_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        let (nl, pad, pad_in) = match indent {
            Some(w) => ("\n", " ".repeat(w * depth), " ".repeat(w * (depth + 1))),
            None => ("", String::new(), String::new()),
        };
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => out.push_str(&render_number(*n)),
            Json::Str(s) => write_string(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                        if indent.is_none() {
                            out.push(' ');
                        }
                    }
                    out.push_str(nl);
                    out.push_str(&pad_in);
                    item.write(out, indent, depth + 1);
                }
                out.push_str(nl);
                out.push_str(&pad);
                out.push(']');
            }
            Json::Obj(pairs) => {
                if pairs.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                        if indent.is_none() {
                            out.push(' ');
                        }
                    }
                    out.push_str(nl);
                    out.push_str(&pad_in);
                    write_string(out, k);
                    out.push_str(": ");
                    v.write(out, indent, depth + 1);
                }
                out.push_str(nl);
                out.push_str(&pad);
                out.push('}');
            }
        }
    }

    /// Parse a JSON document. Returns a message with the byte offset of
    /// the first error; trailing non-whitespace input is an error.
    pub fn parse(text: &str) -> Result<Json, String> {
        let bytes = text.as_bytes();
        let mut pos = 0usize;
        let v = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing input at byte {pos}"));
        }
        Ok(v)
    }
}

/// Integral values print as integers (counter snapshots stay readable and
/// round-trip exactly); everything else uses shortest-f64 formatting.
fn render_number(n: f64) -> String {
    if n.fract() == 0.0 && n.abs() < 9e15 {
        format!("{}", n as i64)
    } else {
        format!("{n}")
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(b: &[u8], pos: &mut usize, ch: u8) -> Result<(), String> {
    if *pos < b.len() && b[*pos] == ch {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected '{}' at byte {}", ch as char, *pos))
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        None => Err("unexpected end of input".to_string()),
        Some(b'{') => {
            *pos += 1;
            let mut pairs = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(pairs));
            }
            loop {
                skip_ws(b, pos);
                let key = parse_string(b, pos)?;
                skip_ws(b, pos);
                expect(b, pos, b':')?;
                let val = parse_value(b, pos)?;
                pairs.push((key, val));
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(pairs));
                    }
                    _ => return Err(format!("expected ',' or '}}' at byte {}", *pos)),
                }
            }
        }
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(b, pos)?);
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return Err(format!("expected ',' or ']' at byte {}", *pos)),
                }
            }
        }
        Some(b'"') => Ok(Json::Str(parse_string(b, pos)?)),
        Some(b't') => parse_lit(b, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_lit(b, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_lit(b, pos, "null", Json::Null),
        Some(_) => parse_number(b, pos),
    }
}

fn parse_lit(b: &[u8], pos: &mut usize, lit: &str, v: Json) -> Result<Json, String> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(v)
    } else {
        Err(format!("invalid literal at byte {}", *pos))
    }
}

fn parse_number(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    if b.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while *pos < b.len() && matches!(b[*pos], b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-') {
        *pos += 1;
    }
    let text = std::str::from_utf8(&b[start..*pos]).map_err(|e| e.to_string())?;
    let n: f64 = text.parse().map_err(|_| format!("invalid number '{text}' at byte {start}"))?;
    if !n.is_finite() {
        return Err(format!("non-finite number at byte {start}"));
    }
    Ok(Json::Num(n))
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(b, pos, b'"')?;
    let mut out = String::new();
    loop {
        match b.get(*pos) {
            None => return Err("unterminated string".to_string()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = b
                            .get(*pos + 1..*pos + 5)
                            .ok_or_else(|| "truncated \\u escape".to_string())?;
                        let hex = std::str::from_utf8(hex).map_err(|e| e.to_string())?;
                        let code = u32::from_str_radix(hex, 16)
                            .map_err(|_| "bad \\u escape".to_string())?;
                        // Surrogate pairs are not needed by our emitters;
                        // map unpaired surrogates to U+FFFD.
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at byte {}", *pos)),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar (multi-byte aware).
                let rest = std::str::from_utf8(&b[*pos..]).map_err(|e| e.to_string())?;
                let ch = rest.chars().next().expect("non-empty");
                out.push(ch);
                *pos += ch.len_utf8();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_compact_and_pretty() {
        let doc = Json::obj_from([
            ("a".to_string(), Json::Num(1.0)),
            ("b".to_string(), Json::Str("x \"y\" \n z".to_string())),
            ("c".to_string(), Json::Arr(vec![Json::Bool(true), Json::Null, Json::Num(-2.5e-3)])),
            ("empty_obj".to_string(), Json::obj()),
            ("empty_arr".to_string(), Json::Arr(vec![])),
        ]);
        for text in [doc.render(), doc.render_pretty()] {
            assert_eq!(Json::parse(&text).unwrap(), doc, "{text}");
        }
    }

    #[test]
    fn integers_render_without_fraction() {
        assert_eq!(Json::Num(42.0).render(), "42");
        assert_eq!(Json::Num(-7.0).render(), "-7");
        assert_eq!(Json::Num(0.5).render(), "0.5");
        // Huge magnitudes fall back to `Display` (full decimal expansion)
        // but still round-trip exactly.
        let huge = Json::Num(1e300);
        assert_eq!(Json::parse(&huge.render()).unwrap(), huge);
    }

    #[test]
    fn set_and_get() {
        let mut o = Json::obj();
        o.set("k", Json::Num(1.0));
        o.set("k", Json::Num(2.0)); // overwrite, no duplicate key
        o.set("l", Json::Bool(false));
        assert_eq!(o.get("k").and_then(Json::as_f64), Some(2.0));
        assert_eq!(o.as_object().unwrap().len(), 2);
        assert_eq!(o.get("missing"), None);
    }

    #[test]
    fn parse_errors() {
        assert!(Json::parse("").is_err());
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("\"unterminated").is_err());
        assert!(Json::parse("{\"a\":1} trailing").is_err());
        assert!(Json::parse("nul").is_err());
        assert!(Json::parse("1..2").is_err());
    }

    #[test]
    fn parses_nested_documents() {
        let v = Json::parse(r#"{"runs": [{"name": "seq", "phases": {"t": 0.25}}]}"#).unwrap();
        let run = &v.get("runs").unwrap().as_array().unwrap()[0];
        assert_eq!(run.get("name").and_then(Json::as_str), Some("seq"));
        assert_eq!(run.get("phases").and_then(|p| p.get("t")).and_then(Json::as_f64), Some(0.25));
    }

    #[test]
    fn unicode_and_escapes() {
        let v = Json::parse(r#""café μDBSCAN \t ok""#).unwrap();
        assert_eq!(v.as_str(), Some("café μDBSCAN \t ok"));
        let s = Json::Str("μ/ε \u{1}".to_string());
        assert_eq!(Json::parse(&s.render()).unwrap(), s);
    }
}
