//! Property-based exactness: for ANY dataset and ANY (ε, MinPts),
//! μDBSCAN must produce the classical DBSCAN clustering (paper Theorem 1).
//! This is the strongest single test in the repository.

use geom::{Dataset, DbscanParams};
use mudbscan_core::{check_exact, naive_dbscan, MuDbscan};
use proptest::prelude::*;

fn points(dim: usize, max_n: usize) -> impl Strategy<Value = Vec<Vec<f64>>> {
    prop::collection::vec(prop::collection::vec(-10.0..10.0f64, dim), 1..max_n)
}

/// Clustered datasets: a few blob centers with points jittered around
/// them, plus uniform background — stresses DMC/CMC/SMC classification.
fn clustered(dim: usize) -> impl Strategy<Value = Vec<Vec<f64>>> {
    (
        prop::collection::vec(prop::collection::vec(-8.0..8.0f64, dim), 1..4),
        prop::collection::vec((0usize..4, prop::collection::vec(-0.7..0.7f64, dim)), 10..120),
        prop::collection::vec(prop::collection::vec(-10.0..10.0f64, dim), 0..15),
    )
        .prop_map(|(centers, offsets, background)| {
            let mut rows = Vec::new();
            for (ci, off) in offsets {
                let c = &centers[ci % centers.len()];
                rows.push(c.iter().zip(&off).map(|(a, b)| a + b).collect());
            }
            rows.extend(background);
            rows
        })
}

fn run_check(rows: Vec<Vec<f64>>, eps: f64, min_pts: usize) -> Result<(), TestCaseError> {
    let data = Dataset::from_rows(&rows);
    let params = DbscanParams::new(eps, min_pts);
    let out = MuDbscan::from_params(params).run(&data);
    let reference = naive_dbscan(&data, &params);
    let rep = check_exact(&out.clustering, &reference, &data, &params);
    prop_assert!(
        rep.is_exact(),
        "inexact: {rep:?} (n={}, eps={eps}, min_pts={min_pts}, got {} clusters want {})",
        data.len(),
        out.clustering.n_clusters,
        reference.n_clusters
    );
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn exact_on_uniform_2d(rows in points(2, 150), eps in 0.2..4.0f64, min_pts in 1usize..8) {
        run_check(rows, eps, min_pts)?;
    }

    #[test]
    fn exact_on_uniform_3d(rows in points(3, 120), eps in 0.3..5.0f64, min_pts in 2usize..7) {
        run_check(rows, eps, min_pts)?;
    }

    #[test]
    fn exact_on_clustered_2d(rows in clustered(2), eps in 0.2..2.5f64, min_pts in 2usize..9) {
        run_check(rows, eps, min_pts)?;
    }

    #[test]
    fn exact_on_clustered_5d(rows in clustered(5), eps in 0.5..3.0f64, min_pts in 2usize..6) {
        run_check(rows, eps, min_pts)?;
    }

    #[test]
    fn parallel_exact(rows in clustered(2), eps in 0.2..2.0f64, min_pts in 2usize..7, threads in 1usize..6) {
        let data = Dataset::from_rows(&rows);
        let params = DbscanParams::new(eps, min_pts);
        let out = mudbscan_core::ParMuDbscan::from_params(params, threads).run(&data);
        let reference = naive_dbscan(&data, &params);
        let rep = check_exact(&out.clustering, &reference, &data, &params);
        prop_assert!(rep.is_exact(), "threads={threads}: {rep:?}");
    }

    #[test]
    fn exact_without_promotion(rows in clustered(2), eps in 0.2..2.0f64, min_pts in 2usize..7) {
        let data = Dataset::from_rows(&rows);
        let params = DbscanParams::new(eps, min_pts);
        let mut alg = MuDbscan::from_params(params);
        alg.disable_dynamic_promotion = true;
        let out = alg.run(&data);
        let reference = naive_dbscan(&data, &params);
        prop_assert!(check_exact(&out.clustering, &reference, &data, &params).is_exact());
    }
}
