//! Live telemetry: windowed metrics snapshots over cumulative state.
//!
//! The one-shot collector ([`crate::take_report`]) is batch-shaped:
//! counters accumulate globally and are drained exactly once at
//! end-of-run. A long-running serving writer needs the opposite — poll
//! the metrics *while they keep accumulating*, without draining or
//! perturbing anything. This module provides that in three pieces:
//!
//! * [`Registry`] — an instantiable, engine-local metrics store
//!   (counters, additive values, histograms) behind one mutex. Unlike
//!   the process-global collector it has no on/off switch: an engine
//!   that owns a registry is always observable, independent of whether
//!   the global `obs` layer is collecting. [`Registry::add_counts`]
//!   records a *batch* of counter increments under a single lock
//!   acquisition, so logically paired counters (e.g. an epoch's op
//!   census) can never be observed torn by a concurrent poller.
//! * [`WindowCursor`] — turns cumulative snapshots into per-window
//!   deltas ([`Report::delta_since`]). The **window algebra** is the
//!   contract: every poll advances the cursor's baseline, so the
//!   windows of any poll sequence *partition* the cumulative state —
//!   merging them all ([`Report::merge`]) reproduces the cumulative
//!   counters and histograms **bit-identically**. Multiple pollers
//!   sharing one cursor (behind a mutex) therefore split the stream
//!   between them without ever double- or under-counting.
//! * Exports — [`LiveSeries`] collects polled windows into a JSON
//!   time-series, and [`render_prom`] renders any [`Report`] as a
//!   dependency-free Prometheus-style text exposition.
//!
//! The existing one-shot report is the degenerate case of all this: a
//! single window polled once, from the beginning of time, that also
//! clears the state (`take_report` ≡ snapshot + clear).

use crate::hist::Histogram;
use crate::json::Json;
use crate::report::Report;
use std::collections::HashMap;
use std::sync::{Mutex, PoisonError};

/// An instantiable live-metrics store: cumulative counters, additive
/// values and log-bucketed histograms behind one mutex, snapshotted on
/// demand without draining.
///
/// ```
/// use obs::live::{Registry, WindowCursor};
/// let reg = Registry::new();
/// reg.add_counts(&[("ops/a", 2), ("ops/b", 2)]);
/// reg.record_hist("lat_us", 15);
/// let mut cursor = WindowCursor::new();
/// let s1 = cursor.poll(&reg);
/// assert_eq!(s1.window.count("ops/a"), 2);
/// reg.add_count("ops/a", 3);
/// let s2 = cursor.poll(&reg);
/// assert_eq!(s2.window.count("ops/a"), 3); // delta since the last poll
/// assert_eq!(s2.cumulative.count("ops/a"), 5);
/// ```
#[derive(Debug, Default)]
pub struct Registry {
    inner: Mutex<State>,
}

#[derive(Debug, Default)]
struct State {
    counts: HashMap<String, u64>,
    values: HashMap<String, f64>,
    hists: HashMap<String, Histogram>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Lock the store, recovering from poisoning (the critical sections
    /// below are short and panic-free, so the maps stay consistent).
    fn state(&self) -> std::sync::MutexGuard<'_, State> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Add `n` to the named monotone counter.
    pub fn add_count(&self, name: &str, n: u64) {
        *self.state().counts.entry(name.to_string()).or_insert(0) += n;
    }

    /// Add a batch of counter increments under **one** lock
    /// acquisition: a concurrent poller observes either none or all of
    /// them, so logically paired counters can never tear.
    pub fn add_counts(&self, pairs: &[(&str, u64)]) {
        let mut s = self.state();
        for (name, n) in pairs {
            *s.counts.entry((*name).to_string()).or_insert(0) += n;
        }
    }

    /// Add `v` to the named additive value.
    pub fn add_value(&self, name: &str, v: f64) {
        *self.state().values.entry(name.to_string()).or_insert(0.0) += v;
    }

    /// Record one sample into the named histogram.
    pub fn record_hist(&self, name: &str, v: u64) {
        self.state().hists.entry(name.to_string()).or_default().record(v);
    }

    /// A sorted, non-draining snapshot of the cumulative state (the
    /// registry has no spans, so `spans` is always empty).
    pub fn cumulative(&self) -> Report {
        let s = self.state();
        let mut counts: Vec<(String, u64)> =
            s.counts.iter().map(|(k, &v)| (k.clone(), v)).collect();
        let mut values: Vec<(String, f64)> =
            s.values.iter().map(|(k, &v)| (k.clone(), v)).collect();
        let mut hists: Vec<(String, Histogram)> =
            s.hists.iter().map(|(k, v)| (k.clone(), v.clone())).collect();
        counts.sort_by(|a, b| a.0.cmp(&b.0));
        values.sort_by(|a, b| a.0.cmp(&b.0));
        hists.sort_by(|a, b| a.0.cmp(&b.0));
        Report { spans: Vec::new(), counts, values, hists }
    }
}

/// One poll result: the delta since the previous poll through the same
/// cursor, plus the cumulative state both were computed from — taken
/// from a single registry snapshot, so the pair is always coherent
/// (`cumulative` = sum of every window polled so far, bit-identically
/// for counters and histograms).
#[derive(Debug, Clone)]
pub struct LiveSnapshot {
    /// What accumulated since the previous poll (everything since the
    /// beginning, on the first poll).
    pub window: Report,
    /// The cumulative state at poll time.
    pub cumulative: Report,
}

/// The windowing state of one poll sequence: remembers the cumulative
/// snapshot of the previous poll so the next one returns a delta. Share
/// one cursor (behind a mutex) between concurrent pollers and their
/// windows partition the metric stream exactly; give each poller its
/// own cursor and each sees the full stream independently.
#[derive(Debug, Default)]
pub struct WindowCursor {
    baseline: Report,
}

impl WindowCursor {
    /// A cursor whose first poll returns everything recorded so far.
    pub fn new() -> Self {
        Self::default()
    }

    /// Poll a [`Registry`]: snapshot, delta against the baseline,
    /// advance the baseline.
    pub fn poll(&mut self, reg: &Registry) -> LiveSnapshot {
        self.advance(reg.cumulative())
    }

    /// Poll the process-global collector ([`crate::snapshot_report`])
    /// the same way — mid-run polling of the global aggregates without
    /// draining them.
    pub fn poll_global(&mut self) -> LiveSnapshot {
        self.advance(crate::snapshot_report())
    }

    fn advance(&mut self, cumulative: Report) -> LiveSnapshot {
        let window = cumulative.delta_since(&self.baseline);
        self.baseline = cumulative.clone();
        LiveSnapshot { window, cumulative }
    }
}

/// An ordered collection of polled windows — the JSON time-series
/// export of a poll sequence.
#[derive(Debug, Default)]
pub struct LiveSeries {
    windows: Vec<Report>,
}

impl LiveSeries {
    /// An empty series.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append one polled window.
    pub fn push(&mut self, window: Report) {
        self.windows.push(window);
    }

    /// Number of windows collected.
    pub fn len(&self) -> usize {
        self.windows.len()
    }

    /// True when no windows were collected.
    pub fn is_empty(&self) -> bool {
        self.windows.is_empty()
    }

    /// The windows in poll order.
    pub fn windows(&self) -> &[Report] {
        &self.windows
    }

    /// Merge every window into one report. When the windows come from a
    /// single shared cursor this equals the cumulative state at the
    /// last poll — counters and histograms bit-identically.
    pub fn merged(&self) -> Report {
        let mut out = Report::default();
        for w in &self.windows {
            out.merge(w);
        }
        out
    }

    /// JSON time-series: `{"windows": [<report>, ...]}` with one
    /// [`Report::to_json`] object per window, in poll order.
    pub fn to_json(&self) -> Json {
        Json::obj_from([(
            "windows".to_string(),
            Json::Arr(self.windows.iter().map(Report::to_json).collect()),
        )])
    }
}

/// Sanitise a metric name for the Prometheus exposition format:
/// `[a-zA-Z0-9_:]` pass through, everything else (the workspace's `/`
/// separators in particular) becomes `_`.
fn prom_name(prefix: &str, name: &str) -> String {
    let mut out = String::with_capacity(prefix.len() + name.len() + 1);
    for c in prefix.chars().chain(Some('_')).chain(name.chars()) {
        if c.is_ascii_alphanumeric() || c == '_' || c == ':' {
            out.push(c);
        } else {
            out.push('_');
        }
    }
    out
}

fn prom_num(v: f64) -> String {
    if v == v.trunc() && v.abs() < 9e15 {
        format!("{v}")
    } else {
        format!("{v:.6}")
    }
}

/// Render a [`Report`] as a dependency-free Prometheus-style text
/// exposition: counters as `counter`, values as `gauge`, histograms as
/// `summary` (quantiles plus `_sum`/`_count`), and spans as a pair of
/// counters (`_seconds_total`, `_entries_total`). Names are prefixed
/// and sanitised (characters outside `[a-zA-Z0-9_:]` map to `_`, so
/// `serve/inserts` renders as `serve_inserts`).
///
/// ```
/// use obs::live::{render_prom, Registry};
/// let reg = Registry::new();
/// reg.add_count("serve/inserts", 7);
/// let text = render_prom(&reg.cumulative(), "mudbscan");
/// assert!(text.contains("# TYPE mudbscan_serve_inserts counter"));
/// assert!(text.contains("mudbscan_serve_inserts 7"));
/// ```
pub fn render_prom(report: &Report, prefix: &str) -> String {
    let mut out = String::new();
    for (name, v) in &report.counts {
        let n = prom_name(prefix, name);
        out.push_str(&format!("# TYPE {n} counter\n{n} {v}\n"));
    }
    for (name, v) in &report.values {
        let n = prom_name(prefix, name);
        out.push_str(&format!("# TYPE {n} gauge\n{n} {}\n", prom_num(*v)));
    }
    for (name, h) in &report.hists {
        let n = prom_name(prefix, name);
        out.push_str(&format!("# TYPE {n} summary\n"));
        for (q, label) in [(0.5, "0.5"), (0.9, "0.9"), (0.99, "0.99")] {
            out.push_str(&format!("{n}{{quantile=\"{label}\"}} {}\n", h.percentile(q)));
        }
        out.push_str(&format!("{n}_sum {}\n{n}_count {}\n", h.sum(), h.count()));
    }
    for (path, s) in &report.spans {
        let n = prom_name(prefix, path);
        out.push_str(&format!("# TYPE {n}_seconds_total counter\n"));
        out.push_str(&format!("{n}_seconds_total {}\n", prom_num(s.secs)));
        out.push_str(&format!("# TYPE {n}_entries_total counter\n"));
        out.push_str(&format!("{n}_entries_total {}\n", s.count));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn windows_partition_the_stream() {
        let reg = Registry::new();
        let mut cursor = WindowCursor::new();
        let mut series = LiveSeries::new();
        for round in 1..=5u64 {
            reg.add_counts(&[("a", round), ("b", 1)]);
            reg.record_hist("h", round * 100);
            series.push(cursor.poll(&reg).window);
        }
        let last = cursor.poll(&reg); // empty window, same cumulative
        assert_eq!(last.window.count("a"), 0);
        assert!(last.window.hist("h").unwrap().is_empty());
        let merged = series.merged();
        assert_eq!(merged.counts, last.cumulative.counts, "window sums must be bit-identical");
        assert_eq!(merged.hists, last.cumulative.hists);
        assert_eq!(merged.count("a"), 15);
        assert_eq!(merged.count("b"), 5);
    }

    #[test]
    fn concurrent_pollers_never_observe_a_torn_window() {
        // Writers bump two paired counters through `add_counts`; any
        // window in which the pair differs was torn. Pollers share one
        // cursor, so their windows must also partition the stream.
        let reg = Registry::new();
        let cursor = Mutex::new(WindowCursor::new());
        let windows = Mutex::new(Vec::new());
        std::thread::scope(|s| {
            for _ in 0..2 {
                s.spawn(|| {
                    for _ in 0..500 {
                        reg.add_counts(&[("pair/a", 1), ("pair/b", 1)]);
                    }
                });
            }
            for _ in 0..3 {
                s.spawn(|| {
                    for _ in 0..40 {
                        let snap = cursor.lock().unwrap_or_else(|e| e.into_inner()).poll(&reg);
                        assert_eq!(
                            snap.window.count("pair/a"),
                            snap.window.count("pair/b"),
                            "torn window: paired counters split across polls"
                        );
                        assert_eq!(
                            snap.cumulative.count("pair/a"),
                            snap.cumulative.count("pair/b"),
                            "torn cumulative snapshot"
                        );
                        windows.lock().unwrap_or_else(|e| e.into_inner()).push(snap.window);
                        std::thread::yield_now();
                    }
                });
            }
        });
        // Final poll catches whatever the racing pollers missed.
        let last = cursor.lock().unwrap_or_else(|e| e.into_inner()).poll(&reg);
        let mut merged = Report::default();
        for w in windows.lock().unwrap_or_else(|e| e.into_inner()).iter() {
            merged.merge(w);
        }
        merged.merge(&last.window);
        assert_eq!(merged.count("pair/a"), 1000);
        assert_eq!(merged.counts, last.cumulative.counts);
    }

    #[test]
    fn series_exports_a_json_time_series() {
        let reg = Registry::new();
        let mut cursor = WindowCursor::new();
        let mut series = LiveSeries::new();
        reg.add_count("x", 1);
        series.push(cursor.poll(&reg).window);
        reg.add_count("x", 2);
        series.push(cursor.poll(&reg).window);
        assert_eq!(series.len(), 2);
        let js = series.to_json();
        let text = js.render_pretty();
        let back = Json::parse(&text).unwrap();
        let windows = back.get("windows").and_then(Json::as_array).unwrap();
        assert_eq!(windows.len(), 2);
        let w1 = windows[1].get("counts").and_then(|c| c.get("x")).and_then(Json::as_f64);
        assert_eq!(w1, Some(2.0));
    }

    #[test]
    fn render_prom_covers_every_kind() {
        use crate::report::SpanStat;
        let reg = Registry::new();
        reg.add_count("serve/inserts", 42);
        reg.add_value("ratio", 0.5);
        for v in [10u64, 20, 30] {
            reg.record_hist("serve/query_us", v);
        }
        let mut report = reg.cumulative();
        report.spans.push((
            "serve/publish".to_string(),
            SpanStat { secs: 1.25, count: 3, dur_ns: Histogram::new() },
        ));
        let text = render_prom(&report, "mudbscan");
        assert!(text.contains("# TYPE mudbscan_serve_inserts counter"));
        assert!(text.contains("mudbscan_serve_inserts 42"));
        assert!(text.contains("# TYPE mudbscan_ratio gauge"));
        assert!(text.contains("mudbscan_ratio 0.5"));
        assert!(text.contains("# TYPE mudbscan_serve_query_us summary"));
        assert!(text.contains("mudbscan_serve_query_us{quantile=\"0.5\"}"));
        assert!(text.contains("mudbscan_serve_query_us_count 3"));
        assert!(text.contains("mudbscan_serve_query_us_sum 60"));
        assert!(text.contains("mudbscan_serve_publish_seconds_total 1.25"));
        assert!(text.contains("mudbscan_serve_publish_entries_total 3"));
        // No raw slashes survive in metric names.
        for line in text.lines().filter(|l| !l.starts_with('#')) {
            let name = line.split([' ', '{']).next().unwrap();
            assert!(!name.contains('/'), "unsanitised name: {name}");
        }
    }

    #[test]
    fn global_polling_coexists_with_the_one_shot_drain() {
        let _g = crate::test_support::locked();
        crate::reset();
        crate::enable();
        crate::record_count("g", 4);
        let mut cursor = WindowCursor::new();
        let s1 = cursor.poll_global();
        crate::record_count("g", 6);
        let s2 = cursor.poll_global();
        crate::disable();
        assert_eq!(s1.window.count("g"), 4);
        assert_eq!(s2.window.count("g"), 6);
        assert_eq!(s2.cumulative.count("g"), 10);
        // Polling drained nothing: the one-shot report still sees it all.
        assert_eq!(crate::take_report().count("g"), 10);
        crate::reset();
    }
}
