//! Degenerate-input audit: `n = 0`, `n < MinPts`, and all-points-identical
//! at n ≥ 10⁴, pushed through micro-cluster construction (sequential and
//! parallel), `MuDbscan`, `ParMuDbscan` and `MuDbscanD`.
//!
//! These are the inputs where index construction historically panics
//! (empty bounding boxes, `members[0]` on empty MC lists, zero distances
//! everywhere) — each case is pinned here so a regression fails loudly
//! instead of resurfacing in a user's first `run()` on an empty frame.

use dist::{DistConfig, MuDbscanD};
use geom::{Dataset, DbscanParams};
use mcs::{build_micro_clusters, build_micro_clusters_par, BuildOptions};
use metrics::Counters;
use mudbscan::{check_exact, naive_dbscan, Clustering, MuDbscan, ParMuDbscan};

fn params() -> DbscanParams {
    DbscanParams::new(0.5, 5)
}

/// Run every algorithm family and hand each clustering to `verify`.
fn all_algorithms(data: &Dataset, params: &DbscanParams, mut verify: impl FnMut(&str, Clustering)) {
    verify("mu-seq", MuDbscan::from_params(*params).run(data).clustering);
    for threads in [1, 4] {
        verify(
            &format!("mu-par/t{threads}"),
            ParMuDbscan::from_params(*params, threads).run(data).clustering,
        );
        verify(
            &format!("mu-par/t{threads}/seq-build"),
            ParMuDbscan::from_params(*params, threads)
                .with_options(BuildOptions::default())
                .run(data)
                .clustering,
        );
    }
    for ranks in [1, 4] {
        verify(
            &format!("mu-dist/r{ranks}"),
            MuDbscanD::from_params(*params, DistConfig::new(ranks))
                .run(data)
                .expect("dist run on degenerate input")
                .clustering,
        );
    }
}

#[test]
fn empty_dataset_yields_empty_clustering() {
    let data = Dataset::empty(3);
    let p = params();

    let c = Counters::new();
    let tree = build_micro_clusters(&data, p.eps, &BuildOptions::default(), &c);
    assert_eq!(tree.mc_count(), 0);
    assert!(tree.assignment.is_empty());

    let (ptree, stats) = build_micro_clusters_par(&data, p.eps, &BuildOptions::default(), 4, &c);
    assert_eq!(ptree.mc_count(), 0);
    assert_eq!(stats.tiles, 0);

    all_algorithms(&data, &p, |name, clustering| {
        assert_eq!(clustering.n_clusters, 0, "{name}");
        assert_eq!(clustering.noise_count(), 0, "{name}");
        assert!(clustering.labels.is_empty(), "{name}");
        assert!(clustering.is_core.is_empty(), "{name}");
    });
}

#[test]
fn below_min_pts_is_all_noise() {
    // Three mutually-within-ε points with MinPts = 5: nothing can be core,
    // everything is noise, and the oracle agrees.
    let data = Dataset::from_rows(&[vec![0.0, 0.0, 0.0], vec![0.1, 0.0, 0.0], vec![0.2, 0.0, 0.0]]);
    let p = params();
    let reference = naive_dbscan(&data, &p);
    assert_eq!(reference.n_clusters, 0);
    assert_eq!(reference.noise_count(), 3);

    all_algorithms(&data, &p, |name, clustering| {
        let rep = check_exact(&clustering, &reference, &data, &p);
        assert!(rep.is_exact(), "{name}: {rep:?}");
        assert_eq!(clustering.n_clusters, 0, "{name}");
        assert_eq!(clustering.noise_count(), 3, "{name}");
    });
}

#[test]
fn single_point_is_noise() {
    let data = Dataset::from_rows(&[vec![1.0, 2.0, 3.0]]);
    let p = params();

    let c = Counters::new();
    let tree = build_micro_clusters(&data, p.eps, &BuildOptions::default(), &c);
    assert_eq!(tree.mc_count(), 1);
    assert_eq!(tree.mcs[0].members, vec![0]);

    all_algorithms(&data, &p, |name, clustering| {
        assert_eq!(clustering.n_clusters, 0, "{name}");
        assert_eq!(clustering.noise_count(), 1, "{name}");
        assert!(!clustering.is_core[0], "{name}");
    });
}

#[test]
fn ten_thousand_identical_points_form_one_cluster() {
    // All-points-identical at n = 10⁴: one MC with 10⁴ coincident members,
    // every pairwise distance zero. The O(n²) oracle is deliberately
    // skipped at this size — the structural outcome is forced: every point
    // has 10⁴ - 1 zero-distance neighbours, so all are core and the whole
    // dataset is one cluster.
    let n = 10_000;
    let data = Dataset::from_rows(&vec![vec![7.0, 7.0, 7.0]; n]);
    let p = params();

    let c = Counters::new();
    let tree = build_micro_clusters(&data, p.eps, &BuildOptions::default(), &c);
    assert_eq!(tree.mc_count(), 1);
    assert_eq!(tree.mcs[0].len(), n);
    assert_eq!(tree.mcs[0].inner_count as usize, n);

    let (ptree, stats) = build_micro_clusters_par(&data, p.eps, &BuildOptions::default(), 4, &c);
    assert_eq!(ptree.mc_count(), 1);
    assert_eq!(ptree.mcs[0].len(), n);
    assert_eq!(stats.tiles, 1);
    assert_eq!(stats.boundary_conflicts, 0);

    all_algorithms(&data, &p, |name, clustering| {
        assert_eq!(clustering.n_clusters, 1, "{name}");
        assert_eq!(clustering.noise_count(), 0, "{name}");
        assert!(clustering.is_core.iter().all(|&c| c), "{name}: every point must be core");
        assert!(
            clustering.labels.iter().all(|&l| l == clustering.labels[0]),
            "{name}: one cluster label"
        );
    });
}
