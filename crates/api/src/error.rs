//! The shared error type of the facade.

use data::StoreError;
use dist::DistError;
use stream::ServeError;

/// Everything a facade-driven run can fail with.
///
/// Algorithms in this workspace are total over valid inputs — the
/// runtime failures are configuration mistakes caught by
/// [`crate::prelude::Runner::build`], distributed local-stage errors
/// (e.g. a rank's GridDBSCAN exceeding its memory budget) surfaced as
/// [`DistError`], and serving-layer failures surfaced as
/// [`ServeError`] — a dimension mismatch at ingest/query time, a
/// handle used after its writer thread shut down, or a postmortem
/// artifact that could not be written
/// ([`stream::ServeError::Postmortem`], an I/O failure that leaves the
/// engine itself serving), and on-disk dataset failures surfaced as
/// [`StoreError`] — a truncated or corrupt chunk store, a dimension
/// mismatch between the store header and the runner, or a plain
/// filesystem error while writing or mapping chunks.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MuDbscanError {
    /// The builder was given an inconsistent configuration (the message
    /// names the offending knob and the family it clashes with).
    InvalidConfig(String),
    /// A distributed run failed.
    Dist(DistError),
    /// A serving-layer operation failed.
    Serve(ServeError),
    /// An on-disk dataset (chunked store) operation failed.
    Io(StoreError),
}

impl std::fmt::Display for MuDbscanError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MuDbscanError::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
            MuDbscanError::Dist(e) => write!(f, "distributed run failed: {e}"),
            MuDbscanError::Serve(e) => write!(f, "serving operation failed: {e}"),
            MuDbscanError::Io(e) => write!(f, "dataset store operation failed: {e}"),
        }
    }
}

impl std::error::Error for MuDbscanError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            MuDbscanError::Dist(e) => Some(e),
            MuDbscanError::Serve(e) => Some(e),
            MuDbscanError::Io(e) => Some(e),
            MuDbscanError::InvalidConfig(_) => None,
        }
    }
}

impl From<DistError> for MuDbscanError {
    fn from(e: DistError) -> Self {
        MuDbscanError::Dist(e)
    }
}

impl From<ServeError> for MuDbscanError {
    fn from(e: ServeError) -> Self {
        MuDbscanError::Serve(e)
    }
}

impl From<StoreError> for MuDbscanError {
    fn from(e: StoreError) -> Self {
        MuDbscanError::Io(e)
    }
}
