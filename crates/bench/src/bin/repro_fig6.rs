//! Fig. 6 reproduction: μDBSCAN-D runtime as dimensionality grows
//! (KDDBIO samples at d = 14 / 24 / 44 / 74), 32 ranks.
//!
//! ```text
//! cargo run --release -p bench --bin repro_fig6
//! ```

use bench::{banner, secs, SEED};
use metrics::Table;
use mudbscan::prelude::*;

/// Paper series: 8.15 s (14d) → 460.83 s (74d), a 56x growth.
const PAPER: &[(usize, &str)] = &[(14, "8.15"), (24, "~60"), (44, "~200"), (74, "460.83")];

fn main() {
    banner(
        "Fig. 6 — μDBSCAN-D runtime vs dimensionality",
        "KDDBIO145K sampled at d = 14 / 24 / 44 / 74, 32 nodes",
        "kddbio analogue at 5K points; ε grows with √d to keep cluster counts stable",
    );

    let n = 5_000;
    let mut t = Table::new(&["d", "eps", "runtime", "clusters", "growth vs d=14"]);
    let mut first = None;
    for &d in &[14usize, 24, 44, 74] {
        // Scale ε like √d so the number of clusters stays comparable
        // (the paper "kept the number of clusters almost same for each
        // dataset sample"). n is kept modest: at d = 74 every R-tree
        // degenerates to near-linear scans (the paper's 460 s row), so
        // the analogue is already minutes of single-core work.
        let eps = 45.0 * (d as f64 / 14.0).sqrt();
        let dataset = data::kddbio(n, d, SEED);
        eprintln!("[d={d}] eps={eps:.0} ...");
        let out = Runner::new(DbscanParams::new(eps, 5))
            .ranks(32)
            .run(&dataset)
            .expect("distributed run");
        let r = match out.details {
            RunDetails::Distributed { runtime_secs, .. } => runtime_secs,
            ref other => panic!("expected Distributed details, got {other:?}"),
        };
        if first.is_none() {
            first = Some(r);
        }
        t.row(&[
            d.to_string(),
            format!("{eps:.0}"),
            secs(r),
            out.clustering.n_clusters.to_string(),
            format!("{:.1}x", r / first.unwrap()),
        ]);
    }

    println!("measured:");
    t.print();

    println!("\npaper series (seconds; intermediate points read off the figure):");
    let mut p = Table::new(&["d", "runtime (s)"]);
    for &(d, s) in PAPER {
        p.row(&[d.to_string(), s.to_string()]);
    }
    p.print();

    println!("\nshape check: runtime grows steeply and monotonically with d");
    println!("(paper: 56x from 14d to 74d — per-distance cost and R-tree");
    println!("overlap both grow with dimension).");
}
