//! Table VII reproduction: percentage split-up of μDBSCAN-D's phases
//! (including the merge) on 32 simulated ranks.
//!
//! ```text
//! cargo run --release -p bench --bin repro_table7
//! ```

use bench::{banner, SEED};
use geom::DbscanParams;
use metrics::Table;
use mudbscan::prelude::{RunDetails, Runner};

const PAPER: &[(&str, &str, &str, &str, &str, &str)] = &[
    ("FOF28M14D", "4.19%", "1.04%", "80.94%", "8.52%", "3.88%"),
    ("MPAGD100M3D", "8.09%", "3.95%", "25.32%", "40.99%", "1.83%"),
    ("FOF56M3D", "26.39%", "1.6%", "10.74%", "39.4%", "2.27%"),
];

fn main() {
    banner(
        "Table VII — % split-up of μDBSCAN-D steps (32 ranks)",
        "tree construction / reachable groups / clustering / post-processing / merging",
        "galaxy analogues at 20K–100K points; virtual per-phase makespans",
    );

    let workloads = [
        ("FOF28M14D", data::galaxy(20_000, 14, SEED), DbscanParams::new(16.0, 5)),
        ("MPAGD100M3D", data::galaxy(100_000, 3, SEED), DbscanParams::new(0.7, 5)),
        ("FOF56M3D", data::galaxy(80_000, 3, SEED), DbscanParams::new(1.4, 6)),
    ];

    let mut ours = Table::new(&[
        "dataset",
        "tree constr.",
        "reachable",
        "clustering",
        "post-proc.",
        "merging",
    ]);

    for (name, dataset, params) in &workloads {
        eprintln!("[{name}] ...");
        let out = Runner::new(*params).ranks(32).run(dataset).expect("distributed run");
        // Percentages over the reported runtime (partitioning excluded,
        // as in the paper).
        let total = match out.details {
            RunDetails::Distributed { runtime_secs, .. } => runtime_secs,
            ref other => panic!("expected Distributed details, got {other:?}"),
        };
        let pct = |phase: &str| format!("{:.2}%", 100.0 * out.phases.secs(phase) / total);
        ours.row(&[
            name.to_string(),
            pct("tree_construction"),
            pct("finding_reachable"),
            pct("clustering"),
            pct("post_processing"),
            pct("merging"),
        ]);
    }

    println!("measured:");
    ours.print();

    println!("\npaper values:");
    let mut paper = Table::new(&[
        "dataset",
        "tree constr.",
        "reachable",
        "clustering",
        "post-proc.",
        "merging",
    ]);
    for &(name, a, b, c, d, e) in PAPER {
        paper.row_str(&[name, a, b, c, d, e]);
    }
    paper.print();

    println!("\nshape notes: in the paper merging stays < 4% of a much larger");
    println!("local runtime. Our local phases are faster (MC-skip post-processing,");
    println!("small analogues), and our merge *includes* the per-halo-point edge");
    println!("queries that restore exactness (DESIGN.md §8.3) — so the merge");
    println!("SHARE is inflated here even though its absolute cost is a few");
    println!("milliseconds. The claims that do transfer: merge cost scales with");
    println!("the halo fraction, not with n, and clustering dominates at high d");
    println!("among the local phases.");
}
