#![warn(missing_docs)]

//! # optics — density-based cluster ordering on the μR-tree
//!
//! OPTICS (Ankerst et al., SIGMOD'99) generalises DBSCAN: instead of one
//! clustering at a fixed ε, it produces an *ordering* of the points with
//! per-point **reachability distances**, from which the DBSCAN clustering
//! at **any** ε′ ≤ ε can be read off with a horizontal cut. The μDBSCAN
//! authors' group maintains a companion parallel OPTICS (ICDCN'15,
//! cited as \[27\] by the paper); this crate brings the same capability to
//! this workspace, reusing the μR-tree for all neighbourhood queries.
//!
//! Semantics follow this workspace's strict conventions: `N_ε(p)` uses
//! `DIST < ε` and the core distance is the `MinPts`-th smallest distance
//! among `N_ε(p)` (self included, at distance 0), so
//! `core_dist(p) < ε′  ⟺  p is a DBSCAN core at ε′` for every ε′ ≤ ε.
//!
//! [`extract_dbscan`] at ε′ then yields exactly the DBSCAN cores,
//! core partition and noise of a direct run at ε′ — which the tests
//! verify against the naive oracle, cross-validating both
//! implementations. [`cluster_tree`] goes further and extracts the
//! *hierarchy* of clusters across all density levels at once (Sander et
//! al., PAKDD'03).
//!
//! ```
//! use geom::{Dataset, DbscanParams};
//! use optics::{extract_dbscan, Optics};
//!
//! let data = Dataset::from_rows(&[
//!     vec![0.0], vec![0.2], vec![0.4], // tight clump
//!     vec![5.0],                       // outlier
//! ]);
//! let out = Optics::from_params(DbscanParams::new(1.0, 3)).run(&data);
//! assert_eq!(out.order.len(), 4);
//! let clustering = extract_dbscan(&out, &data, 1.0);
//! assert_eq!(clustering.n_clusters, 1);
//! assert!(clustering.is_noise(3));
//! ```

pub mod algorithm;
pub mod tree;

pub use algorithm::{extract_dbscan, Optics, OpticsOutput};
pub use tree::{cluster_tree, ClusterNode, TreeParams};
