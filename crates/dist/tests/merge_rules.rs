//! Focused tests of the distributed merge semantics on hand-built
//! geometries where the correct cross-partition behaviour is known by
//! construction.

use dist::{DistConfig, MuDbscanD};
use geom::{Dataset, DbscanParams};
use mudbscan::{check_exact, naive_dbscan};

/// A dense chain crossing the partition boundary: the two halves MUST be
/// merged into one cluster by the merge phase.
#[test]
fn chain_across_partition_boundary_merges() {
    let rows: Vec<Vec<f64>> = (0..60).map(|i| vec![0.4 * i as f64, 0.0]).collect();
    let data = Dataset::from_rows(&rows);
    let params = DbscanParams::new(0.5, 3);
    for p in [2, 3, 4, 8] {
        let out = MuDbscanD::from_params(params, DistConfig::new(p)).run(&data).unwrap();
        assert_eq!(out.clustering.n_clusters, 1, "p={p}: chain split by partitioning");
        assert_eq!(out.clustering.noise_count(), 0);
    }
}

/// Two dense blobs separated by slightly more than ε, each split across
/// ranks: the merge must NOT join them.
#[test]
fn separate_blobs_stay_separate() {
    let mut rows = Vec::new();
    for i in 0..30 {
        rows.push(vec![0.01 * i as f64, 0.0]);
        rows.push(vec![0.01 * i as f64, 2.0]); // 2.0 > eps away
    }
    let data = Dataset::from_rows(&rows);
    let params = DbscanParams::new(0.5, 4);
    let out = MuDbscanD::from_params(params, DistConfig::new(4)).run(&data).unwrap();
    assert_eq!(out.clustering.n_clusters, 2);
}

/// A border point sitting exactly between two dense blobs, with the kd
/// split likely running through it: it must join exactly one cluster and
/// must not merge them (the border-guard rule across ranks).
#[test]
fn shared_border_point_does_not_merge_clusters() {
    let mut rows = Vec::new();
    for i in 0..6 {
        rows.push(vec![-1.0 - 0.05 * i as f64]); // left blob
        rows.push(vec![1.0 + 0.05 * i as f64]); // right blob
    }
    rows.push(vec![0.0]); // the contested border point
    let data = Dataset::from_rows(&rows);
    // eps 1.05: the middle point sees one core on each side but has only
    // 3 neighbours < MinPts 4.
    let params = DbscanParams::new(1.05, 4);
    let reference = naive_dbscan(&data, &params);
    assert_eq!(reference.n_clusters, 2);
    for p in [2, 3, 5] {
        let out = MuDbscanD::from_params(params, DistConfig::new(p)).run(&data).unwrap();
        let rep = check_exact(&out.clustering, &reference, &data, &params);
        assert!(rep.is_exact(), "p={p}: {rep:?}");
        assert_eq!(out.clustering.n_clusters, 2, "p={p}: clusters merged via border");
        assert!(out.clustering.is_border(12), "p={p}");
    }
}

/// A point whose ONLY core neighbour lives on another rank: the noise
/// rescue must work across the partition boundary.
#[test]
fn cross_rank_noise_rescue() {
    let mut rows = Vec::new();
    // A tight core blob.
    for i in 0..5 {
        rows.push(vec![0.1 * i as f64, 0.0]);
    }
    // A lone point within eps of the blob edge only.
    rows.push(vec![0.4 + 0.8, 0.0]); // index 5
                                     // Far-away filler so partitioning has something to split.
    for i in 0..6 {
        rows.push(vec![50.0 + i as f64, 50.0]);
    }
    let data = Dataset::from_rows(&rows);
    let params = DbscanParams::new(0.9, 5);
    let reference = naive_dbscan(&data, &params);
    assert!(reference.is_border(5), "test geometry: point 5 should be border");
    for p in [2, 4] {
        let out = MuDbscanD::from_params(params, DistConfig::new(p)).run(&data).unwrap();
        let rep = check_exact(&out.clustering, &reference, &data, &params);
        assert!(rep.is_exact(), "p={p}: {rep:?}");
        assert!(out.clustering.is_border(5), "p={p}: border point lost to noise");
    }
}

/// Duplicated coordinates across the boundary region must not confuse
/// ownership or the halo (regression guard for id/coordinate mixups).
#[test]
fn duplicate_points_across_ranks() {
    let mut rows = vec![vec![1.0, 1.0]; 12];
    rows.extend(vec![vec![9.0, 9.0]; 12]);
    rows.push(vec![5.0, 5.0]);
    let data = Dataset::from_rows(&rows);
    let params = DbscanParams::new(0.5, 5);
    let reference = naive_dbscan(&data, &params);
    for p in [2, 5] {
        let out = MuDbscanD::from_params(params, DistConfig::new(p)).run(&data).unwrap();
        let rep = check_exact(&out.clustering, &reference, &data, &params);
        assert!(rep.is_exact(), "p={p}: {rep:?}");
        assert_eq!(out.clustering.n_clusters, 2);
        assert!(out.clustering.is_noise(24));
    }
}

/// More ranks than points: empty shards must be handled gracefully.
#[test]
fn more_ranks_than_points() {
    let rows: Vec<Vec<f64>> = (0..5).map(|i| vec![0.2 * i as f64]).collect();
    let data = Dataset::from_rows(&rows);
    let params = DbscanParams::new(0.5, 2);
    let out = MuDbscanD::from_params(params, DistConfig::new(8)).run(&data).unwrap();
    let reference = naive_dbscan(&data, &params);
    assert!(check_exact(&out.clustering, &reference, &data, &params).is_exact());
}
