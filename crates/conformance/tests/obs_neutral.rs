//! Instrumentation must be behaviour-neutral: the `obs` spans and
//! counters woven through the hot paths only read clocks and write to
//! their own maps, so clustering output with collection **on** must be
//! bit-identical to output with collection **off**, for every algorithm
//! family the trajectory file covers.

use conformance::{DatasetSpec, Family};
use dist::{DistConfig, MuDbscanD};
use geom::{Dataset, DbscanParams};
use mudbscan::{Clustering, MuDbscan, ParMuDbscan};

fn seeded_dataset() -> Dataset {
    let spec = DatasetSpec { family: Family::Blobs, n: 400, dim: 3, seed: 2019 };
    Dataset::from_rows(&spec.rows())
}

/// The obs collector is process-global and the test harness runs tests on
/// parallel threads: serialize every enable/disable window.
static OBS_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

/// Run `f` once with obs disabled and once enabled, asserting identical
/// clusterings. Leaves the global collector disabled and drained.
fn assert_neutral(label: &str, f: impl Fn() -> Clustering) {
    let _guard = OBS_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    obs::disable();
    obs::reset();
    let plain = f();

    obs::reset();
    obs::enable();
    let instrumented = f();
    obs::disable();
    let report = obs::take_report();

    assert_eq!(plain, instrumented, "{label}: clustering changed when obs collection was enabled");
    assert_eq!(plain.n_clusters, instrumented.n_clusters, "{label}: cluster count drifted");
    assert!(!report.spans.is_empty(), "{label}: the instrumented run must actually record spans");
}

#[test]
fn sequential_mudbscan_is_obs_neutral() {
    let data = seeded_dataset();
    let params = DbscanParams::new(0.6, 5);
    assert_neutral("mudbscan_seq", || MuDbscan::new(params).run(&data).clustering);
}

#[test]
fn parallel_mudbscan_is_obs_neutral() {
    let data = seeded_dataset();
    let params = DbscanParams::new(0.6, 5);
    for threads in [1, 4] {
        assert_neutral(&format!("par_mudbscan_t{threads}"), || {
            ParMuDbscan::new(params, threads).run(&data).clustering
        });
    }
}

#[test]
fn distributed_mudbscan_is_obs_neutral() {
    let data = seeded_dataset();
    let params = DbscanParams::new(0.6, 5);
    for ranks in [1, 4] {
        assert_neutral(&format!("mudbscan_d_p{ranks}"), || {
            MuDbscanD::new(params, DistConfig::new(ranks)).run(&data).expect("dist run").clustering
        });
    }
}

#[test]
fn baselines_are_obs_neutral() {
    let data = seeded_dataset();
    let params = DbscanParams::new(0.6, 5);
    assert_neutral("rdbscan", || baselines::RDbscan::new(params).run(&data).clustering);
    assert_neutral("gdbscan", || baselines::GDbscan::new(params).run(&data).clustering);
    assert_neutral("griddbscan", || {
        baselines::GridDbscan::new(params).run(&data).expect("within budget").clustering
    });
}
