//! Sequential union–find with union by rank and configurable path
//! compaction (full compression, halving, or none — ablated in the
//! benchmark suite, following Patwary/Blair/Manne SEA'10).

/// Path-compaction strategy applied during `find`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Compaction {
    /// Full path compression (two-pass find).
    Full,
    /// Path halving (single pass, every node points to its grandparent).
    #[default]
    Halving,
    /// No compaction — baseline for the ablation bench.
    None,
}

/// A disjoint-set forest over `0..len` with union by rank.
#[derive(Debug, Clone)]
pub struct UnionFind {
    parent: Vec<u32>,
    rank: Vec<u8>,
    compaction: Compaction,
}

impl UnionFind {
    /// `n` singleton sets with the default compaction (halving).
    pub fn new(n: usize) -> Self {
        Self::with_compaction(n, Compaction::default())
    }

    /// `n` singleton sets with an explicit compaction strategy.
    pub fn with_compaction(n: usize, compaction: Compaction) -> Self {
        assert!(n <= u32::MAX as usize, "UnionFind supports at most u32::MAX elements");
        Self { parent: (0..n as u32).collect(), rank: vec![0; n], compaction }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.parent.len()
    }

    /// Append a fresh singleton element, returning its id (used by the
    /// streaming algorithm, which grows the forest one point at a time).
    pub fn push(&mut self) -> u32 {
        let id = self.parent.len();
        assert!(id < u32::MAX as usize);
        self.parent.push(id as u32);
        self.rank.push(0);
        id as u32
    }

    /// True when the structure holds no elements.
    pub fn is_empty(&self) -> bool {
        self.parent.is_empty()
    }

    /// Representative of `x`'s set.
    #[inline]
    pub fn find(&mut self, x: u32) -> u32 {
        match self.compaction {
            Compaction::Halving => {
                let mut x = x;
                loop {
                    let p = self.parent[x as usize];
                    if p == x {
                        return x;
                    }
                    let gp = self.parent[p as usize];
                    self.parent[x as usize] = gp;
                    x = gp;
                }
            }
            Compaction::Full => {
                let mut root = x;
                while self.parent[root as usize] != root {
                    root = self.parent[root as usize];
                }
                let mut cur = x;
                while cur != root {
                    let next = self.parent[cur as usize];
                    self.parent[cur as usize] = root;
                    cur = next;
                }
                root
            }
            Compaction::None => {
                let mut x = x;
                while self.parent[x as usize] != x {
                    x = self.parent[x as usize];
                }
                x
            }
        }
    }

    /// Representative of `x`'s set without mutating the forest (no
    /// compaction). Useful when only a shared reference is available.
    #[inline]
    pub fn find_const(&self, x: u32) -> u32 {
        let mut x = x;
        while self.parent[x as usize] != x {
            x = self.parent[x as usize];
        }
        x
    }

    /// Merge the sets of `a` and `b`; returns the surviving root.
    pub fn union(&mut self, a: u32, b: u32) -> u32 {
        let ra = self.find(a);
        let rb = self.find(b);
        if ra == rb {
            return ra;
        }
        let (hi, lo) =
            if self.rank[ra as usize] >= self.rank[rb as usize] { (ra, rb) } else { (rb, ra) };
        self.parent[lo as usize] = hi;
        if self.rank[hi as usize] == self.rank[lo as usize] {
            self.rank[hi as usize] += 1;
        }
        hi
    }

    /// Reset `x` to a fresh singleton: it becomes its own root with rank
    /// 0 and belongs to no other set.
    ///
    /// **Safety contract (checked by the caller, not here):** this is
    /// only sound when *every* element of `x`'s current set is reset in
    /// the same pass. Resetting one member while others still point at
    /// (or through) it would corrupt the forest — parent chains are
    /// intra-set, so resetting a whole set at once cannot dangle. The
    /// streaming engine uses this to rebuild one component locally after
    /// a deletion instead of reconstructing the entire forest.
    pub fn reset_to_singleton(&mut self, x: u32) {
        self.parent[x as usize] = x;
        self.rank[x as usize] = 0;
    }

    /// True when `a` and `b` are in the same set.
    pub fn same(&mut self, a: u32, b: u32) -> bool {
        self.find(a) == self.find(b)
    }

    /// Number of distinct sets.
    pub fn count_sets(&mut self) -> usize {
        let n = self.len();
        (0..n as u32).filter(|&x| self.find(x) == x).count()
    }

    /// Number of distinct sets among the given elements only.
    pub fn count_sets_among(&mut self, elems: impl Iterator<Item = u32>) -> usize {
        let mut roots: Vec<u32> = elems.map(|x| self.find(x)).collect();
        roots.sort_unstable();
        roots.dedup();
        roots.len()
    }

    /// Map every element to a dense set label in `0..count_sets()`,
    /// numbered by first appearance. This canonical form makes two
    /// clusterings comparable regardless of which element became root.
    pub fn dense_labels(&mut self) -> Vec<u32> {
        let n = self.len();
        let mut label_of_root = vec![u32::MAX; n];
        let mut labels = vec![0u32; n];
        let mut next = 0u32;
        for x in 0..n as u32 {
            let r = self.find(x);
            if label_of_root[r as usize] == u32::MAX {
                label_of_root[r as usize] = next;
                next += 1;
            }
            labels[x as usize] = label_of_root[r as usize];
        }
        labels
    }

    /// Estimated heap footprint in bytes.
    pub fn heap_bytes(&self) -> usize {
        self.parent.capacity() * 4 + self.rank.capacity()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn singletons_initially() {
        let mut uf = UnionFind::new(5);
        assert_eq!(uf.len(), 5);
        assert_eq!(uf.count_sets(), 5);
        for x in 0..5 {
            assert_eq!(uf.find(x), x);
        }
    }

    #[test]
    fn union_merges_transitively() {
        let mut uf = UnionFind::new(6);
        uf.union(0, 1);
        uf.union(2, 3);
        assert!(uf.same(0, 1));
        assert!(!uf.same(1, 2));
        uf.union(1, 2);
        assert!(uf.same(0, 3));
        assert_eq!(uf.count_sets(), 3); // {0,1,2,3} {4} {5}
    }

    #[test]
    fn union_idempotent() {
        let mut uf = UnionFind::new(3);
        let r1 = uf.union(0, 1);
        let r2 = uf.union(0, 1);
        assert_eq!(r1, r2);
        assert_eq!(uf.count_sets(), 2);
    }

    #[test]
    fn all_compactions_agree() {
        // Same union sequence must yield the same partition under every
        // compaction strategy.
        let ops = [(0u32, 1u32), (2, 3), (4, 5), (1, 2), (6, 7), (5, 6), (0, 9)];
        let mut results = Vec::new();
        for c in [Compaction::Full, Compaction::Halving, Compaction::None] {
            let mut uf = UnionFind::with_compaction(10, c);
            for &(a, b) in &ops {
                uf.union(a, b);
            }
            results.push(uf.dense_labels());
        }
        assert_eq!(results[0], results[1]);
        assert_eq!(results[1], results[2]);
    }

    #[test]
    fn dense_labels_canonical() {
        let mut uf = UnionFind::new(5);
        uf.union(3, 4);
        uf.union(0, 2);
        let labels = uf.dense_labels();
        // First appearance order: 0 -> 0, 1 -> 1, 2 -> 0, 3 -> 2, 4 -> 2.
        assert_eq!(labels, vec![0, 1, 0, 2, 2]);
    }

    #[test]
    fn find_const_matches_find() {
        let mut uf = UnionFind::new(8);
        uf.union(1, 2);
        uf.union(2, 5);
        for x in 0..8 {
            assert_eq!(uf.find_const(x), uf.clone().find(x));
        }
    }

    #[test]
    fn count_sets_among_subset() {
        let mut uf = UnionFind::new(6);
        uf.union(0, 1);
        uf.union(2, 3);
        assert_eq!(uf.count_sets_among([0u32, 1, 2].into_iter()), 2);
        assert_eq!(uf.count_sets_among([4u32, 5].into_iter()), 2);
        assert_eq!(uf.count_sets_among(std::iter::empty()), 0);
    }

    #[test]
    fn reset_whole_set_rebuilds_cleanly() {
        let mut uf = UnionFind::new(8);
        uf.union(0, 1);
        uf.union(1, 2);
        uf.union(2, 3);
        uf.union(5, 6);
        // Reset the whole {0,1,2,3} set; {5,6} and singletons untouched.
        for x in 0..4 {
            uf.reset_to_singleton(x);
        }
        for x in 0..4u32 {
            assert_eq!(uf.find(x), x);
        }
        assert!(uf.same(5, 6));
        assert_eq!(uf.count_sets(), 7);
        // Re-union a different shape over the reset elements.
        uf.union(0, 3);
        uf.union(1, 2);
        assert!(uf.same(0, 3));
        assert!(uf.same(1, 2));
        assert!(!uf.same(0, 1));
        assert_eq!(uf.count_sets(), 5);
    }

    #[test]
    fn long_chain_compresses() {
        let n = 10_000;
        let mut uf = UnionFind::new(n);
        for i in 0..(n as u32 - 1) {
            uf.union(i, i + 1);
        }
        assert_eq!(uf.count_sets(), 1);
        assert!(uf.same(0, n as u32 - 1));
    }
}
