//! Naive O(n²) DBSCAN — the ground-truth oracle for every exactness test
//! in the workspace (Ester et al., KDD'96 semantics, expressed with
//! union–find so border assignment follows the same first-come rule as
//! the optimised implementations).

use crate::clustering::Clustering;
use geom::{within_sq, Dataset, DbscanParams};
use unionfind::UnionFind;

/// Classical DBSCAN by exhaustive pairwise distance computation.
///
/// Semantics:
/// * `N_ε(p) = { q : DIST(p, q) < ε }` (strict), `p` included;
/// * `p` is core iff `|N_ε(p)| >= MinPts`;
/// * clusters are the connected components of core points under the
///   `DIST < ε` relation; each border point joins the cluster of the
///   first core neighbour in scan order; the rest is noise.
pub fn naive_dbscan(data: &Dataset, params: &DbscanParams) -> Clustering {
    let n = data.len();
    let eps_sq = params.eps_sq();
    let mut is_core = vec![false; n];

    // Pass 1: neighbour counts -> core flags.
    for p in 0..n {
        let pc = data.point(p as u32);
        let mut count = 0usize;
        for q in 0..n {
            if within_sq(pc, data.point(q as u32), eps_sq) {
                count += 1;
            }
        }
        is_core[p] = count >= params.min_pts;
    }

    // Pass 2: union core-core edges; attach borders to their first core
    // neighbour in scan order.
    let mut uf = UnionFind::new(n);
    for p in 0..n {
        if !is_core[p] {
            continue;
        }
        let pc = data.point(p as u32);
        for q in (p + 1)..n {
            if is_core[q] && within_sq(pc, data.point(q as u32), eps_sq) {
                uf.union(p as u32, q as u32);
            }
        }
    }
    for p in 0..n {
        if is_core[p] {
            continue;
        }
        let pc = data.point(p as u32);
        for q in 0..n {
            if is_core[q] && within_sq(pc, data.point(q as u32), eps_sq) {
                uf.union(q as u32, p as u32);
                break;
            }
        }
    }

    Clustering::from_union_find(&mut uf, is_core)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn two_blobs_and_noise() {
        let data = Dataset::from_rows(&[
            vec![0.0, 0.0],
            vec![0.3, 0.0],
            vec![0.0, 0.3], // blob A
            vec![10.0, 10.0],
            vec![10.3, 10.0],
            vec![10.0, 10.3], // blob B
            vec![5.0, 5.0],   // lone noise
        ]);
        let c = naive_dbscan(&data, &DbscanParams::new(0.5, 3));
        assert_eq!(c.n_clusters, 2);
        assert!(c.is_noise(6));
        assert_eq!(c.labels[0], c.labels[1]);
        assert_eq!(c.labels[3], c.labels[4]);
        assert_ne!(c.labels[0], c.labels[3]);
        assert_eq!(c.core_count(), 6);
    }

    #[test]
    fn chain_connectivity() {
        // A chain of points each 0.4 apart: with MinPts=2 every point is
        // core and the whole chain is one cluster.
        let rows: Vec<Vec<f64>> = (0..20).map(|i| vec![0.4 * i as f64]).collect();
        let data = Dataset::from_rows(&rows);
        let c = naive_dbscan(&data, &DbscanParams::new(0.5, 2));
        assert_eq!(c.n_clusters, 1);
        assert_eq!(c.noise_count(), 0);
        assert_eq!(c.core_count(), 20);
    }

    #[test]
    fn border_point_between_two_clusters() {
        // Dense blobs left and right; a single point in the middle within
        // eps of a core on each side. It must be border (assigned to
        // exactly one cluster), and the clusters must NOT merge.
        let mut rows = vec![];
        for i in 0..4 {
            rows.push(vec![-1.0 - 0.1 * i as f64]); // left blob: 0..4
        }
        for i in 0..4 {
            rows.push(vec![1.0 + 0.1 * i as f64]); // right blob: 4..8
        }
        rows.push(vec![0.0]); // middle point: 8
        let data = Dataset::from_rows(&rows);
        // eps 1.05: middle sees cores at -1.0 and 1.0 but has only 3
        // neighbours (itself + 2) < MinPts 4 -> border.
        let c = naive_dbscan(&data, &DbscanParams::new(1.05, 4));
        assert_eq!(c.n_clusters, 2, "shared border must not merge clusters");
        assert!(c.is_border(8));
        assert!(!c.is_noise(8));
    }

    #[test]
    fn minpts_one_makes_everything_core() {
        let data = Dataset::from_rows(&[vec![0.0], vec![100.0]]);
        let c = naive_dbscan(&data, &DbscanParams::new(0.5, 1));
        assert_eq!(c.n_clusters, 2);
        assert_eq!(c.noise_count(), 0);
    }

    #[test]
    fn strict_eps_boundary() {
        // Two points exactly eps apart are NOT neighbours.
        let data = Dataset::from_rows(&[vec![0.0], vec![1.0]]);
        let c = naive_dbscan(&data, &DbscanParams::new(1.0, 2));
        assert_eq!(c.n_clusters, 0);
        assert_eq!(c.noise_count(), 2);
    }
}
