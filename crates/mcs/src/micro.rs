//! The micro-cluster record and its classification.

use geom::{dist_sq, Dataset, DbscanParams, Mbr, PointId};
use rtree::{RTree, RTreeConfig};

/// Index of a micro-cluster in the [`crate::MuRTree`]'s MC list.
pub type McId = u32;

/// Sentinel for "point not assigned to any MC yet".
pub const NO_MC: McId = u32::MAX;

/// Classification of a micro-cluster (paper §IV-B definitions ii–iv).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum McKind {
    /// Dense micro-cluster: `|IC| >= MinPts` — every inner-circle point is
    /// core without a neighbourhood query.
    Dense,
    /// Core micro-cluster: `|MC| >= MinPts` — the center is core without a
    /// neighbourhood query.
    Core,
    /// Sparse micro-cluster: nothing can be concluded.
    Sparse,
}

/// One micro-cluster: an ε-ball around a center point and its members.
#[derive(Debug, Clone)]
pub struct MicroCluster {
    /// The center point (a dataset point, `MC(p).center == p`).
    pub center: PointId,
    /// All member points, center included (assignment is exclusive: each
    /// dataset point belongs to exactly one MC).
    pub members: Vec<PointId>,
    /// Bounding box of the member points (tight, not the ε-ball box).
    pub mbr: Mbr,
    /// Number of members strictly within ε/2 of the center (center
    /// included) — `|IC|`.
    pub inner_count: u32,
    /// Auxiliary R-tree over the member points (level 2 of the μR-tree);
    /// built once membership is final.
    pub aux: Option<RTree>,
    /// Ids of reachable MCs — centers strictly within 3ε (self included).
    pub reach: Vec<McId>,
}

impl MicroCluster {
    /// A fresh MC containing only its center.
    pub fn new(center: PointId, coords: &[f64]) -> Self {
        Self {
            center,
            members: vec![center],
            mbr: Mbr::point(coords),
            inner_count: 1, // the center is inside its own inner circle
            aux: None,
            reach: Vec::new(),
        }
    }

    /// Number of member points.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// True when the MC holds only its center... which cannot happen after
    /// construction (the center is always a member), so this is `false` in
    /// practice; provided for API completeness.
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// Add a member point, maintaining the MBR and the inner-circle count.
    pub fn insert(&mut self, p: PointId, coords: &[f64], center_coords: &[f64], eps: f64) {
        debug_assert!(dist_sq(coords, center_coords) < eps * eps);
        self.members.push(p);
        self.mbr.merge_point(coords);
        let half = eps / 2.0;
        if dist_sq(coords, center_coords) < half * half {
            self.inner_count += 1;
        }
    }

    /// Classify with respect to `MinPts` (paper Algorithm 4 conditions).
    pub fn kind(&self, params: &DbscanParams) -> McKind {
        if self.inner_count as usize >= params.min_pts {
            McKind::Dense
        } else if self.members.len() >= params.min_pts {
            McKind::Core
        } else {
            McKind::Sparse
        }
    }

    /// Member points strictly within ε/2 of the center (the inner circle),
    /// center included.
    pub fn inner_circle<'a>(
        &'a self,
        data: &'a Dataset,
        eps: f64,
    ) -> impl Iterator<Item = PointId> + 'a {
        let half_sq = (eps / 2.0) * (eps / 2.0);
        let c = data.point(self.center);
        self.members.iter().copied().filter(move |&m| dist_sq(data.point(m), c) < half_sq)
    }

    /// Build the auxiliary R-tree over the member points via STR packing.
    pub fn build_aux(&mut self, data: &Dataset, cfg: RTreeConfig) {
        let pts = self.members.iter().map(|&m| (m, data.point(m).to_vec()));
        self.aux = Some(RTree::bulk_load_points(data.dim(), cfg, pts));
    }

    /// Estimated owned heap bytes (members, reach list, aux tree, MBR).
    pub fn heap_bytes(&self) -> usize {
        self.members.capacity() * std::mem::size_of::<PointId>()
            + self.reach.capacity() * std::mem::size_of::<McId>()
            + self.mbr.heap_bytes()
            + self.aux.as_ref().map_or(0, |t| t.heap_bytes())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn data() -> Dataset {
        Dataset::from_rows(&[
            vec![0.0, 0.0],  // 0: center
            vec![0.3, 0.0],  // 1: inner (dist 0.3 < 0.5)
            vec![0.0, 0.45], // 2: inner
            vec![0.8, 0.0],  // 3: outer ring
            vec![0.0, 0.5],  // 4: exactly eps/2 -> NOT inner (strict)
        ])
    }

    #[test]
    fn insert_tracks_inner_circle_strictly() {
        let d = data();
        let eps = 1.0;
        let mut mc = MicroCluster::new(0, d.point(0));
        for p in 1..5u32 {
            mc.insert(p, d.point(p), d.point(0), eps);
        }
        assert_eq!(mc.len(), 5);
        assert_eq!(mc.inner_count, 3); // center + points 1, 2
        let ic: Vec<_> = mc.inner_circle(&d, eps).collect();
        assert_eq!(ic, vec![0, 1, 2]);
    }

    #[test]
    fn classification_thresholds() {
        let d = data();
        let eps = 1.0;
        let mut mc = MicroCluster::new(0, d.point(0));
        for p in 1..5u32 {
            mc.insert(p, d.point(p), d.point(0), eps);
        }
        // inner_count = 3, |MC| = 5.
        assert_eq!(mc.kind(&DbscanParams::new(eps, 3)), McKind::Dense);
        assert_eq!(mc.kind(&DbscanParams::new(eps, 4)), McKind::Core);
        assert_eq!(mc.kind(&DbscanParams::new(eps, 5)), McKind::Core);
        assert_eq!(mc.kind(&DbscanParams::new(eps, 6)), McKind::Sparse);
    }

    #[test]
    fn aux_tree_answers_queries() {
        let d = data();
        let mut mc = MicroCluster::new(0, d.point(0));
        for p in 1..5u32 {
            mc.insert(p, d.point(p), d.point(0), 1.0);
        }
        mc.build_aux(&d, RTreeConfig::default());
        let aux = mc.aux.as_ref().unwrap();
        let mut n = aux.sphere_neighbors(&[0.0, 0.0], 0.5);
        n.sort_unstable();
        assert_eq!(n, vec![0, 1, 2]); // strict: point 4 at exactly 0.5 excluded
        assert!(mc.heap_bytes() > 0);
    }

    #[test]
    fn mbr_is_tight() {
        let d = data();
        let mut mc = MicroCluster::new(0, d.point(0));
        for p in 1..5u32 {
            mc.insert(p, d.point(p), d.point(0), 1.0);
        }
        assert_eq!(mc.mbr.lo(), &[0.0, 0.0]);
        assert_eq!(mc.mbr.hi(), &[0.8, 0.5]);
    }
}
